// Forced-tier conformance grid for the int8 elementwise/reduction family.
//
// The vectorized elementwise family (src/kernels/elementwise.h) ships three
// compute tiers (AVX2 / generic GNU-vector / scalar) selected at invoke time,
// plus plan-time Q31 requant prep and LUT builds. This grid pins the family
// down the same way tests/test_dwconv_grid.cc pins dwconv:
//
//  - ops: Add / Sub (same-shape and [N,1,1,C]-broadcast, with fused
//    activation cycling), Mul (same-shape and broadcast, the squeeze-excite
//    gate pattern), global Mean, and the LUT activations Logistic /
//    HardSwish / Tanh;
//  - geometry: channels {1, 3, 5, 8, 9, 16, 24, 64} straddling the 8-lane
//    int32 block (sub-vector, exact, one-past, multi-block) x batch {1, 2},
//    with per-case randomized asymmetric calibration ranges so scales and
//    zero points differ across operands and cells;
//  - int8 cells assert opt-vs-ref within one output quantum (double rescale
//    vs Q31 fixed point, the documented one-step discrepancy) — and
//    *bit-exact* agreement between every compiled-in tier, LUT activations
//    additionally bit-exact vs the reference (same table builder);
//  - every cell asserts steady-state invoke performs zero heap allocations
//    (global operator-new counter + AllocStats events) and zero Q31/LUT
//    builds after plan construction (elementwise_pack_events()).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <new>
#include <vector>

#include "src/graph/builder.h"
#include "src/interpreter/interpreter.h"
#include "src/kernels/elementwise.h"
#include "src/quant/quantizer.h"
#include "src/tensor/alloc_stats.h"
#include "src/tensor/tensor_stats.h"

// --- global operator new/delete instrumentation -----------------------------

namespace {
std::atomic<std::uint64_t> g_heap_allocs{0};
}  // namespace

void* operator new(std::size_t size) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  void* p = nullptr;
  if (posix_memalign(&p, static_cast<std::size_t>(align), size ? size : 1) != 0) {
    throw std::bad_alloc();
  }
  return p;
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace mlexray {
namespace {

Tensor random_input(Shape shape, Pcg32& rng, float lo = -2.0f,
                    float hi = 2.0f) {
  Tensor t = Tensor::f32(shape);
  float* p = t.data<float>();
  for (std::int64_t i = 0; i < t.num_elements(); ++i) {
    p[i] = rng.uniform(lo, hi);
  }
  return t;
}

// One quantization step of a quantized model's (dequantized f32) output.
float output_quantum(const Graph& qm) {
  const Node& out = qm.node(qm.outputs[0]);
  if (out.type == OpType::kDequantize) {
    return qm.node(out.inputs[0]).output_quant.scale();
  }
  return out.output_quant.scale();
}

bool outputs_bit_equal(const Tensor& a, const Tensor& b) {
  if (a.num_elements() != b.num_elements()) return false;
  return std::memcmp(a.raw_data(), b.raw_data(),
                     static_cast<std::size_t>(a.num_elements()) *
                         sizeof(float)) == 0;
}

std::vector<float> snapshot(const Tensor& t) {
  const float* p = t.data<float>();
  return std::vector<float>(p, p + t.num_elements());
}

enum class EwOp {
  kAdd,
  kAddBcast,
  kSub,
  kSubBcast,
  kMul,
  kMulBcast,
  kMean,
  kLogistic,
  kHardSwish,
  kTanh,
};

const char* ew_op_name(EwOp op) {
  switch (op) {
    case EwOp::kAdd: return "Add";
    case EwOp::kAddBcast: return "AddBcast";
    case EwOp::kSub: return "Sub";
    case EwOp::kSubBcast: return "SubBcast";
    case EwOp::kMul: return "Mul";
    case EwOp::kMulBcast: return "MulBcast";
    case EwOp::kMean: return "Mean";
    case EwOp::kLogistic: return "Logistic";
    case EwOp::kHardSwish: return "HardSwish";
    case EwOp::kTanh: return "Tanh";
  }
  return "?";
}

bool is_binary(EwOp op) {
  switch (op) {
    case EwOp::kAdd:
    case EwOp::kAddBcast:
    case EwOp::kSub:
    case EwOp::kSubBcast:
    case EwOp::kMul:
    case EwOp::kMulBcast:
      return true;
    default:
      return false;
  }
}

bool is_broadcast(EwOp op) {
  return op == EwOp::kAddBcast || op == EwOp::kSubBcast ||
         op == EwOp::kMulBcast;
}

// LUT cells must be bit-exact vs the reference: both paths call the
// identical build_i8_lut on the identical quant params.
bool is_lut(EwOp op) {
  return op == EwOp::kLogistic || op == EwOp::kHardSwish || op == EwOp::kTanh;
}

struct EwGridCase {
  EwOp op;
  std::int64_t channels;
  std::int64_t batch;
  Activation act;      // fused clamp, Add/Sub only
  std::uint32_t seed;  // drives per-case asymmetric calibration ranges

  friend std::ostream& operator<<(std::ostream& os, const EwGridCase& c) {
    return os << ew_op_name(c.op) << "/ch" << c.channels << "/b" << c.batch
              << "/act" << static_cast<int>(c.act) << "/seed" << c.seed;
  }
};

std::vector<EwGridCase> make_grid() {
  // Channel counts straddle the 8-lane int32 vector block: below, at, one
  // past, and multi-block, so both the steady vector loop and the scalar
  // tail are exercised on every tier.
  const std::int64_t channels[] = {1, 3, 5, 8, 9, 16, 24, 64};
  const EwOp ops[] = {EwOp::kAdd,      EwOp::kAddBcast, EwOp::kSub,
                      EwOp::kSubBcast, EwOp::kMul,      EwOp::kMulBcast,
                      EwOp::kMean,     EwOp::kLogistic, EwOp::kHardSwish,
                      EwOp::kTanh};
  const Activation acts[] = {Activation::kNone, Activation::kRelu,
                             Activation::kRelu6};
  std::vector<EwGridCase> grid;
  std::uint32_t i = 0;
  for (EwOp op : ops) {
    for (std::int64_t ch : channels) {
      for (std::int64_t batch : {1, 2}) {
        // Cycle the fused activation on Add/Sub (the only builders that
        // take one) so clamp ranges are covered without tripling the grid.
        const bool fusable = op == EwOp::kAdd || op == EwOp::kAddBcast ||
                             op == EwOp::kSub || op == EwOp::kSubBcast;
        const Activation act = fusable ? acts[i % 3] : Activation::kNone;
        grid.push_back({op, ch, batch, act, 1000 + i});
        ++i;
      }
    }
  }
  return grid;
}

class ElementwiseGrid : public ::testing::TestWithParam<EwGridCase> {
 protected:
  void TearDown() override {
    set_elementwise_tier_for_testing(ElementwiseTier::kAuto);
  }
};

// Invokes `interp` under every forced tier and asserts each result is
// byte-identical to `want` (the kAuto result).
void expect_all_tiers_bit_equal(Interpreter& interp,
                                const std::vector<float>& want,
                                const EwGridCase& c) {
  for (ElementwiseTier tier :
       {ElementwiseTier::kGenericVector, ElementwiseTier::kScalar}) {
    set_elementwise_tier_for_testing(tier);
    interp.invoke();
    const Tensor& out = interp.output(0);
    ASSERT_EQ(static_cast<std::size_t>(out.num_elements()), want.size()) << c;
    EXPECT_EQ(std::memcmp(out.raw_data(), want.data(),
                          want.size() * sizeof(float)),
              0)
        << c << " diverges under tier " << static_cast<int>(tier);
  }
  set_elementwise_tier_for_testing(ElementwiseTier::kAuto);
}

// Steady-state contract: invoke never touches the heap, never registers
// tensor/arena allocations, and never rebuilds Q31 tables / LUTs once the
// plan exists. `packs_at_prepare` is the elementwise_pack_events() reading
// taken right after interpreter construction.
void expect_steady_state_clean(Interpreter& interp,
                               std::uint64_t packs_at_prepare,
                               const EwGridCase& c) {
  interp.invoke();  // warmup may grow the scratch arena
  EXPECT_EQ(elementwise_pack_events(), packs_at_prepare)
      << c << ": first invoke rebuilt Q31/LUT state despite the plan";
  const std::uint64_t events_before = AllocStats::instance().alloc_events();
  const std::uint64_t heap_before = g_heap_allocs.load();
  const std::size_t high_water_before =
      interp.scratch_arena().high_water_bytes();
  for (int i = 0; i < 3; ++i) interp.invoke();
  EXPECT_EQ(AllocStats::instance().alloc_events(), events_before)
      << c << ": steady-state invoke registered allocations";
  EXPECT_EQ(g_heap_allocs.load(), heap_before)
      << c << ": steady-state invoke touched the heap";
  EXPECT_EQ(elementwise_pack_events(), packs_at_prepare)
      << c << ": steady-state invoke rebuilt Q31/LUT state";
  EXPECT_EQ(interp.scratch_arena().high_water_bytes(), high_water_before)
      << c << ": steady-state invoke grew the scratch arena";
}

// Builds the per-case single-elementwise-op model. Binary ops take a second
// graph input (broadcast variants shape it [N,1,1,C], the squeeze-excite
// gate layout).
Graph build_case_model(const EwGridCase& c, Shape in_shape, Shape b_shape) {
  Pcg32 rng(4242);
  GraphBuilder b("ewgrid", &rng);
  int x = b.input(in_shape);
  int out = -1;
  switch (c.op) {
    case EwOp::kAdd:
    case EwOp::kAddBcast:
      out = b.add(x, b.input(b_shape, DType::kF32, "gate"), c.act, "op");
      break;
    case EwOp::kSub:
    case EwOp::kSubBcast:
      out = b.sub(x, b.input(b_shape, DType::kF32, "gate"), c.act, "op");
      break;
    case EwOp::kMul:
    case EwOp::kMulBcast:
      out = b.mul(x, b.input(b_shape, DType::kF32, "gate"), "op");
      break;
    case EwOp::kMean: out = b.mean(x, "op"); break;
    case EwOp::kLogistic: out = b.sigmoid(x, "op"); break;
    case EwOp::kHardSwish: out = b.hardswish(x, "op"); break;
    case EwOp::kTanh: out = b.tanh(x, "op"); break;
  }
  return b.finish({out});
}

TEST_P(ElementwiseGrid, OptMatchesRefAcrossTiers) {
  const EwGridCase& c = GetParam();
  const Shape in_shape{c.batch, 5, 7, c.channels};
  const Shape b_shape = is_broadcast(c.op)
                            ? Shape{c.batch, 1, 1, c.channels}
                            : in_shape;
  Graph m = build_case_model(c, in_shape, b_shape);

  // Per-case asymmetric data ranges: operand scales and zero points differ
  // across cells and across the two operands of a binary op.
  Pcg32 range_rng(c.seed);
  const float a_lo = range_rng.uniform(-4.0f, -0.5f);
  const float a_hi = range_rng.uniform(0.5f, 4.0f);
  const float b_lo = range_rng.uniform(-4.0f, -0.5f);
  const float b_hi = range_rng.uniform(0.5f, 4.0f);

  Pcg32 drng(99 + c.seed);
  Tensor input = random_input(in_shape, drng, a_lo, a_hi);
  Tensor gate = random_input(b_shape, drng, b_lo, b_hi);

  auto observe_inputs = [&](Calibrator& calib, Pcg32& crng) {
    if (is_binary(c.op)) {
      calib.observe({random_input(in_shape, crng, a_lo, a_hi),
                     random_input(b_shape, crng, b_lo, b_hi)});
    } else {
      calib.observe({random_input(in_shape, crng, a_lo, a_hi)});
    }
  };

  Calibrator calib(&m);
  Pcg32 crng(7 + c.seed);
  for (int i = 0; i < 5; ++i) observe_inputs(calib, crng);
  if (is_binary(c.op)) {
    calib.observe({input, gate});
  } else {
    calib.observe({input});
  }
  Graph qm = quantize_model(m, calib);

  RefOpResolver ref;
  BuiltinOpResolver opt;
  Interpreter ri(&qm, &ref);
  const std::uint64_t packs_at_prepare_probe = elementwise_pack_events();
  Interpreter oi(&qm, &opt, /*num_threads=*/2);
  // Exactly one Q31 table / LUT build at plan time for the single
  // elementwise node; Quantize/Dequantize nodes must not tick the counter.
  EXPECT_EQ(elementwise_pack_events(), packs_at_prepare_probe + 1) << c;
  const std::uint64_t packs_at_prepare = elementwise_pack_events();
  ri.set_input(0, input);
  oi.set_input(0, input);
  if (is_binary(c.op)) {
    ri.set_input(1, gate);
    oi.set_input(1, gate);
  }
  ri.invoke();
  oi.invoke();
  if (is_lut(c.op)) {
    // Same build_i8_lut, same quant params: the optimized LUT path must be
    // bit-stable vs the reference, not merely within a quantum.
    EXPECT_TRUE(outputs_bit_equal(ri.output(0), oi.output(0))) << c;
  } else {
    // Double-rescale (ref) vs Q31 fixed point (opt): at most one quantum.
    EXPECT_LE(linf_error(ri.output(0), oi.output(0)),
              1.001f * output_quantum(qm))
        << c;
  }
  // The conformance core: every compiled-in tier, including the scalar
  // reference tier, produces bit-identical integer output.
  expect_all_tiers_bit_equal(oi, snapshot(oi.output(0)), c);
  expect_steady_state_clean(oi, packs_at_prepare, c);
}

INSTANTIATE_TEST_SUITE_P(OpChannelsBatchActRanges, ElementwiseGrid,
                         ::testing::ValuesIn(make_grid()));

// --- adversarial requant scales ---------------------------------------------

// A real output multiplier >= 1 (possible when the consumer's scale is much
// finer than the product of the producer scales) forces the positive-shift
// path, which the vector epilogue cannot express; the family routes such
// spans to the scalar tier on *every* tier. Hand-shrink the output scale
// after quantization and assert the cross-tier and vs-ref contracts hold.
class ElementwiseAdversarial : public ::testing::Test {
 protected:
  void TearDown() override {
    set_elementwise_tier_for_testing(ElementwiseTier::kAuto);
  }
};

TEST_F(ElementwiseAdversarial, PositiveOutShiftStaysConformant) {
  for (OpType type : {OpType::kMul, OpType::kAdd}) {
    Pcg32 rng(21);
    GraphBuilder b("ewadv", &rng);
    const Shape in_shape{1, 4, 4, 12};
    int x = b.input(in_shape);
    int g = b.input(in_shape, DType::kF32, "gate");
    int out = type == OpType::kMul ? b.mul(x, g, "op")
                                   : b.add(x, g, Activation::kNone, "op");
    Graph m = b.finish({out});
    Calibrator calib(&m);
    Pcg32 crng(22);
    for (int i = 0; i < 4; ++i) {
      calib.observe({random_input(in_shape, crng, -3.0f, 1.0f),
                     random_input(in_shape, crng, -1.0f, 3.0f)});
    }
    Graph qm = quantize_model(m, calib);
    // Shrink the elementwise output scale until the real requant multiplier
    // exceeds 1 (Add folds a 2^20 left shift into its multiplier, so it
    // needs a far finer scale than Mul). Outputs saturate heavily; that is
    // the point.
    const float adversarial_scale =
        type == OpType::kMul ? 1.0f / 8192.0f : 1.0f / (1 << 26);
    for (Node& n : qm.nodes) {
      if (n.type == type) {
        n.output_quant = QuantParams::per_tensor(adversarial_scale, 3);
      }
    }
    RefOpResolver ref;
    BuiltinOpResolver opt;
    Interpreter ri(&qm, &ref);
    Interpreter oi(&qm, &opt);
    Pcg32 drng(23);
    Tensor input = random_input(in_shape, drng, -3.0f, 1.0f);
    Tensor gate = random_input(in_shape, drng, -1.0f, 3.0f);
    ri.set_input(0, input);
    oi.set_input(0, input);
    ri.set_input(1, gate);
    oi.set_input(1, gate);
    ri.invoke();
    oi.invoke();
    EXPECT_LE(linf_error(ri.output(0), oi.output(0)),
              1.001f * output_quantum(qm))
        << op_type_name(type);
    expect_all_tiers_bit_equal(
        oi, snapshot(oi.output(0)),
        EwGridCase{type == OpType::kMul ? EwOp::kMul : EwOp::kAdd, 12, 1,
                   Activation::kNone, 0});
  }
}

// --- no-plan fallback --------------------------------------------------------

// Without a plan (ctx.prepared == nullptr, e.g. the trainer's forward pass)
// the int8 kernels build their Q31 tables / LUTs in per-call scratch:
// results must be identical, and elementwise_pack_events() must tick once
// per invoke — proof the counter actually observes the fallback the plan is
// eliminating.
TEST(ElementwiseFallback, PacksPerCallWithoutPlanAndMatchesPlanned) {
  Pcg32 rng(31);
  GraphBuilder b("ewfall", &rng);
  const Shape in_shape{1, 6, 6, 16};
  int x = b.input(in_shape);
  int g = b.input(in_shape, DType::kF32, "gate");
  int a = b.add(x, g, Activation::kRelu, "op");
  int s = b.sigmoid(a, "gateact");
  Graph m = b.finish({s});
  Calibrator calib(&m);
  Pcg32 crng(32);
  for (int i = 0; i < 4; ++i) {
    calib.observe({random_input(in_shape, crng), random_input(in_shape, crng)});
  }
  Graph qm = quantize_model(m, calib);
  BuiltinOpResolver opt;
  Interpreter planned(&qm, &opt);
  Pcg32 drng(33);
  Tensor input = random_input(in_shape, drng);
  Tensor gate = random_input(in_shape, drng);
  planned.set_input(0, input);
  planned.set_input(1, gate);
  planned.invoke();

  // Drive the same int8 kernels through bare KernelContexts (no prepared
  // storage), as a plan-less caller would, feeding them the planned run's
  // quantized activations.
  for (OpType type : {OpType::kAdd, OpType::kSigmoid}) {
    const Node* node = nullptr;
    for (const Node& n : qm.nodes) {
      if (n.type == type) node = &n;
    }
    ASSERT_NE(node, nullptr) << op_type_name(type);
    Tensor out(DType::kI8, node->output_shape);
    out.quant() = node->output_quant;
    ScratchArena arena;
    KernelContext ctx;
    ctx.node = node;
    for (int in : node->inputs) {
      ctx.inputs.push_back(&planned.node_output(in));
    }
    ctx.output = &out;
    ctx.arena = &arena;
    const KernelEntry& entry = opt.find(*node);
    const std::uint64_t packs_before = elementwise_pack_events();
    entry.invoke(ctx);
    arena.reset();
    entry.invoke(ctx);
    EXPECT_EQ(elementwise_pack_events(), packs_before + 2)
        << op_type_name(type)
        << ": per-call fallback must rebuild on every invoke";
    const Tensor& want = planned.node_output(node->id);
    ASSERT_EQ(want.num_elements(), out.num_elements());
    EXPECT_EQ(std::memcmp(want.raw_data(), out.raw_data(),
                          static_cast<std::size_t>(out.num_elements())),
              0)
        << op_type_name(type);
  }
}

}  // namespace
}  // namespace mlexray
