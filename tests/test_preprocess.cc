#include <gtest/gtest.h>

#include <cmath>

#include "src/common/rng.h"
#include "src/preprocess/audio.h"
#include "src/preprocess/image.h"
#include "src/preprocess/text.h"
#include "src/tensor/tensor_stats.h"

namespace mlexray {
namespace {

Tensor solid_image(int h, int w, std::uint8_t r, std::uint8_t g,
                   std::uint8_t b) {
  Tensor img = Tensor::u8(Shape{h, w, 3});
  std::uint8_t* p = img.data<std::uint8_t>();
  for (std::int64_t i = 0; i < static_cast<std::int64_t>(h) * w; ++i) {
    p[i * 3 + 0] = r;
    p[i * 3 + 1] = g;
    p[i * 3 + 2] = b;
  }
  return img;
}

TEST(ImageOps, U8ToF32PreservesValues) {
  Tensor img = solid_image(2, 2, 10, 20, 30);
  Tensor f = image_u8_to_f32(img);
  EXPECT_FLOAT_EQ(f.data<float>()[0], 10.0f);
  EXPECT_FLOAT_EQ(f.data<float>()[2], 30.0f);
}

TEST(ImageOps, SwapRedBlue) {
  Tensor f = image_u8_to_f32(solid_image(1, 1, 10, 20, 30));
  Tensor s = swap_red_blue(f);
  EXPECT_FLOAT_EQ(s.data<float>()[0], 30.0f);
  EXPECT_FLOAT_EQ(s.data<float>()[1], 20.0f);
  EXPECT_FLOAT_EQ(s.data<float>()[2], 10.0f);
}

TEST(ImageOps, SwapIsInvolution) {
  Pcg32 rng(3);
  Tensor img = Tensor::u8(Shape{4, 5, 3});
  auto* p = img.data<std::uint8_t>();
  for (std::int64_t i = 0; i < img.num_elements(); ++i) {
    p[i] = static_cast<std::uint8_t>(rng.next_below(256));
  }
  Tensor f = image_u8_to_f32(img);
  EXPECT_TRUE(all_close(swap_red_blue(swap_red_blue(f)), f, 0.0));
}

TEST(ImageOps, Rotate90Geometry) {
  // 2x3 image; pixel (0,0) must land at (0, h-1) = (0,1).
  Tensor f = Tensor::f32(Shape{2, 3, 1});
  f.data<float>()[0] = 7.0f;  // (y=0,x=0)
  Tensor r = rotate90_clockwise(f);
  EXPECT_EQ(r.shape(), (Shape{3, 2, 1}));
  // (y,x) -> (x, h-1-y): (0,0) -> (0,1)
  EXPECT_FLOAT_EQ(r.data<float>()[0 * 2 + 1], 7.0f);
}

TEST(ImageOps, RotateFourTimesIsIdentity) {
  Pcg32 rng(4);
  Tensor img = Tensor::f32(Shape{5, 5, 3});
  float* p = img.data<float>();
  for (std::int64_t i = 0; i < img.num_elements(); ++i) p[i] = rng.uniform(0, 255);
  Tensor r = img;
  for (int i = 0; i < 4; ++i) r = rotate90_clockwise(r);
  EXPECT_TRUE(all_close(r, img, 0.0));
}

TEST(ImageOps, NormalizeRangeMapping) {
  Tensor f = Tensor::f32(Shape{1, 2, 1}, {0.0f, 255.0f});
  Tensor n = normalize_image(f, -1.0f, 1.0f);
  EXPECT_FLOAT_EQ(n.data<float>()[0], -1.0f);
  EXPECT_FLOAT_EQ(n.data<float>()[1], 1.0f);
  Tensor n01 = normalize_image(f, 0.0f, 1.0f);
  EXPECT_FLOAT_EQ(n01.data<float>()[1], 1.0f);
}

TEST(ImageOps, ResizeAreaAverageConstantImage) {
  Tensor f = image_u8_to_f32(solid_image(9, 9, 90, 90, 90));
  Tensor r = resize_area_average(f, 3, 3);
  for (std::int64_t i = 0; i < r.num_elements(); ++i) {
    EXPECT_NEAR(r.data<float>()[i], 90.0f, 1e-3);
  }
}

TEST(ImageOps, ResizeBilinearConstantImage) {
  Tensor f = image_u8_to_f32(solid_image(9, 9, 90, 90, 90));
  Tensor r = resize_bilinear(f, 4, 4);
  for (std::int64_t i = 0; i < r.num_elements(); ++i) {
    EXPECT_NEAR(r.data<float>()[i], 90.0f, 1e-3);
  }
}

TEST(ImageOps, AreaAverageAntiAliasesFineChecker) {
  // 3px checker downsampled 3:1 — area-average flattens it, bilinear leaves
  // residual structure (the §2 resize hazard).
  const int n = 96;
  Tensor img = Tensor::f32(Shape{n, n, 1});
  float* p = img.data<float>();
  for (int y = 0; y < n; ++y) {
    for (int x = 0; x < n; ++x) {
      p[y * n + x] = ((y / 2) + (x / 2)) % 2 == 0 ? 200.0f : 55.0f;
    }
  }
  Tensor area = resize_area_average(img, 32, 32);
  Tensor bil = resize_bilinear(img, 32, 32);
  TensorSummary sa = summarize(area);
  TensorSummary sb = summarize(bil);
  // Area-average flattens the sub-sample texture to near-uniform gray while
  // bilinear point-sampling aliases it into residual moire contrast.
  EXPECT_LT(sa.stddev * 2.0, sb.stddev);
}

TEST(ImagePipeline, CorrectPipelineMatchesSpec) {
  InputSpec spec;
  spec.height = 8;
  spec.width = 8;
  spec.channels = 3;
  spec.range_lo = -1.0f;
  spec.range_hi = 1.0f;
  Tensor sensor = solid_image(16, 16, 255, 128, 0);
  Tensor out = run_image_pipeline(sensor, {spec, PreprocBug::kNone});
  EXPECT_EQ(out.shape(), (Shape{1, 8, 8, 3}));
  EXPECT_NEAR(out.data<float>()[0], 1.0f, 1e-3);            // R=255 -> 1
  EXPECT_NEAR(out.data<float>()[2], -1.0f, 1e-3);           // B=0 -> -1
}

TEST(ImagePipeline, EachBugChangesOutput) {
  InputSpec spec;
  spec.height = 8;
  spec.width = 8;
  spec.channels = 3;
  spec.range_lo = -1.0f;
  spec.range_hi = 1.0f;
  Pcg32 rng(9);
  Tensor sensor = Tensor::u8(Shape{24, 24, 3});
  auto* p = sensor.data<std::uint8_t>();
  for (std::int64_t i = 0; i < sensor.num_elements(); ++i) {
    p[i] = static_cast<std::uint8_t>(rng.next_below(256));
  }
  Tensor correct = run_image_pipeline(sensor, {spec, PreprocBug::kNone});
  for (PreprocBug bug : {PreprocBug::kWrongResize, PreprocBug::kWrongChannelOrder,
                         PreprocBug::kWrongNormalization, PreprocBug::kRotated90}) {
    Tensor buggy = run_image_pipeline(sensor, {spec, bug});
    EXPECT_FALSE(all_close(buggy, correct, 1e-4))
        << preproc_bug_name(bug) << " should alter the output";
  }
}

TEST(ImagePipeline, ChannelBugIsExactlyASwap) {
  InputSpec spec;
  spec.height = 8;
  spec.width = 8;
  spec.channels = 3;
  Pcg32 rng(10);
  Tensor sensor = Tensor::u8(Shape{16, 16, 3});
  auto* p = sensor.data<std::uint8_t>();
  for (std::int64_t i = 0; i < sensor.num_elements(); ++i) {
    p[i] = static_cast<std::uint8_t>(rng.next_below(256));
  }
  Tensor correct = run_image_pipeline(sensor, {spec, PreprocBug::kNone});
  Tensor buggy = run_image_pipeline(sensor, {spec, PreprocBug::kWrongChannelOrder});
  // Swapping R/B of the buggy output recovers the correct one (the paper's
  // channel_assertion logic).
  float* q = buggy.data<float>();
  for (std::int64_t i = 0; i < buggy.num_elements() / 3; ++i) {
    std::swap(q[i * 3], q[i * 3 + 2]);
  }
  EXPECT_TRUE(all_close(buggy, correct, 1e-5));
}

// --- audio ---

TEST(Audio, FftMatchesDftOnImpulse) {
  std::vector<std::complex<float>> data(8, {0.0f, 0.0f});
  data[0] = {1.0f, 0.0f};
  fft_inplace(data);
  for (const auto& v : data) {
    EXPECT_NEAR(v.real(), 1.0f, 1e-5);
    EXPECT_NEAR(v.imag(), 0.0f, 1e-5);
  }
}

TEST(Audio, FftDetectsPureTone) {
  const int n = 128;
  std::vector<float> frame(n);
  for (int i = 0; i < n; ++i) {
    frame[i] = std::sin(2.0f * 3.14159265f * 8.0f * i / n);  // bin 8
  }
  auto mags = magnitude_spectrum(frame);
  std::size_t peak = 0;
  for (std::size_t i = 1; i < mags.size(); ++i) {
    if (mags[i] > mags[peak]) peak = i;
  }
  EXPECT_EQ(peak, 8u);
}

TEST(Audio, FftRequiresPowerOfTwo) {
  std::vector<std::complex<float>> data(12);
  EXPECT_THROW(fft_inplace(data), MlxError);
}

TEST(Audio, SpectrogramShape) {
  std::vector<float> wave(2048, 0.1f);
  SpectrogramConfig cfg;  // 128 frame, 64 hop
  Tensor spec = spectrogram(wave, cfg);
  EXPECT_EQ(spec.shape(), (Shape{1, 31, 64, 1}));
}

TEST(Audio, ScaleBugChangesSpectrogram) {
  std::vector<float> wave(2048);
  for (std::size_t i = 0; i < wave.size(); ++i) {
    wave[i] = std::sin(0.3f * static_cast<float>(i));
  }
  AudioPipelineConfig correct;
  AudioPipelineConfig buggy;
  buggy.bug = AudioBug::kWrongScale;
  Tensor a = run_audio_pipeline(wave, correct);
  Tensor b = run_audio_pipeline(wave, buggy);
  EXPECT_FALSE(all_close(a, b, 1e-3));
}

// --- text ---

TEST(Text, TokenizeSplitsOnNonAlnum) {
  auto tokens = tokenize("Hello, world! it's 42");
  ASSERT_EQ(tokens.size(), 5u);
  EXPECT_EQ(tokens[0], "Hello");
  EXPECT_EQ(tokens[3], "s");
  EXPECT_EQ(tokens[4], "42");
}

TEST(Text, VocabularyRanksByFrequency) {
  Vocabulary v = Vocabulary::build({"b", "a", "a", "c", "a", "b"}, 16);
  EXPECT_EQ(v.lookup("a"), 2);  // most frequent gets the first real id
  EXPECT_EQ(v.lookup("b"), 3);
  EXPECT_EQ(v.lookup("zzz"), Vocabulary::kUnknown);
}

TEST(Text, EncodePadsAndTruncates) {
  Vocabulary v = Vocabulary::build({"good", "bad"}, 8);
  TextPipelineConfig cfg;
  cfg.max_len = 4;
  Tensor t = encode_text("good bad good bad good", v, cfg);
  EXPECT_EQ(t.shape(), (Shape{1, 4}));
  Tensor t2 = encode_text("good", v, cfg);
  EXPECT_EQ(t2.data<std::int32_t>()[1], Vocabulary::kPad);
}

TEST(Text, CaseFoldControlsTokenIds) {
  Vocabulary v = Vocabulary::build({"great"}, 8);
  TextPipelineConfig folded;
  folded.max_len = 2;
  TextPipelineConfig raw = folded;
  raw.case_fold = false;
  Tensor a = encode_text("Great", v, folded);
  Tensor b = encode_text("Great", v, raw);
  EXPECT_EQ(a.data<std::int32_t>()[0], v.lookup("great"));
  EXPECT_EQ(b.data<std::int32_t>()[0], Vocabulary::kUnknown);
}

}  // namespace
}  // namespace mlexray
