#include <gtest/gtest.h>

#include <cmath>

#include "src/graph/builder.h"
#include "src/interpreter/device_profile.h"
#include "src/interpreter/interpreter.h"
#include "src/models/zoo.h"
#include "src/tensor/tensor_stats.h"

namespace mlexray {
namespace {

TEST(Interpreter, InvokeProducesFiniteOutputs) {
  Pcg32 rng(1);
  GraphBuilder b("m", &rng);
  int x = b.input(Shape{1, 8, 8, 3});
  int c = b.conv2d(x, 4, 3, 3, 2, Padding::kSame, Activation::kRelu, "c1");
  int g = b.mean(c, "gap");
  int logits = b.fully_connected(g, 3, Activation::kNone, "logits");
  int prob = b.softmax(logits, "prob");
  Graph m = b.finish({prob});
  RefOpResolver ref;
  Interpreter interp(&m, &ref);
  Tensor input = Tensor::f32(Shape{1, 8, 8, 3});
  input.fill(0.5f);
  interp.set_input(0, input);
  interp.invoke();
  const float* p = interp.output(0).data<float>();
  float sum = 0;
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(std::isfinite(p[i]));
    sum += p[i];
  }
  EXPECT_NEAR(sum, 1.0f, 1e-5);
}

TEST(Interpreter, ShapeMismatchThrows) {
  Pcg32 rng(2);
  GraphBuilder b("m", &rng);
  int x = b.input(Shape{1, 4, 4, 1});
  Graph m = b.finish({x});
  RefOpResolver ref;
  Interpreter interp(&m, &ref);
  EXPECT_THROW(interp.set_input(0, Tensor::f32(Shape{1, 5, 5, 1})), MlxError);
}

TEST(Interpreter, PerNodeLatenciesRecorded) {
  Pcg32 rng(3);
  GraphBuilder b("m", &rng);
  int x = b.input(Shape{1, 16, 16, 8});
  int c = b.conv2d(x, 8, 3, 3, 1, Padding::kSame, Activation::kNone, "c1");
  Graph m = b.finish({c});
  RefOpResolver ref;
  Interpreter interp(&m, &ref);
  Tensor input = Tensor::f32(Shape{1, 16, 16, 8});
  interp.set_input(0, input);
  interp.invoke();
  const InvokeStats& stats = interp.last_stats();
  EXPECT_GT(stats.total_ms, 0.0);
  EXPECT_GT(stats.per_node_ms[1], 0.0);
  EXPECT_EQ(stats.per_node_ms[0], 0.0);  // input node costs nothing
}

TEST(Interpreter, PrepareAndInvokeStatsSeparated) {
  Pcg32 rng(21);
  GraphBuilder b("m", &rng);
  int x = b.input(Shape{1, 16, 16, 8});
  int c = b.conv2d(x, 8, 3, 3, 1, Padding::kSame, Activation::kRelu, "c1");
  Graph m = b.finish({c});
  BuiltinOpResolver opt;
  Interpreter interp(&m, &opt);
  // Prepare happened at construction, before any invoke.
  EXPECT_GT(interp.last_stats().prepare_ms, 0.0);
  EXPECT_EQ(interp.last_stats().invoke_count, 0);
  EXPECT_EQ(interp.plan().steps().size(), 1u);

  Tensor input = Tensor::f32(Shape{1, 16, 16, 8});
  input.fill(0.25f);
  interp.set_input(0, input);
  interp.invoke();
  interp.invoke();
  const InterpreterStats& stats = interp.last_stats();
  EXPECT_EQ(stats.invoke_count, 2);
  // per_node_ms holds the last invoke only; totals accumulate across both.
  EXPECT_GT(stats.per_node_total_ms[1], stats.per_node_ms[1]);
  EXPECT_GE(stats.cumulative_ms, stats.total_ms);
  // prepare_ms is a one-time cost: invoking again must not change it.
  const double prepare_before = stats.prepare_ms;
  interp.invoke();
  EXPECT_EQ(interp.last_stats().prepare_ms, prepare_before);
}

TEST(Interpreter, PerNodeStatsResetEachInvoke) {
  Pcg32 rng(22);
  GraphBuilder b("m", &rng);
  int x = b.input(Shape{1, 8, 8, 4});
  int r = b.relu(x, "r");
  Graph m = b.finish({r});
  RefOpResolver ref;
  Interpreter interp(&m, &ref);
  Tensor input = Tensor::f32(Shape{1, 8, 8, 4});
  interp.set_input(0, input);
  interp.invoke();
  double first = interp.last_stats().per_node_ms[1];
  interp.invoke();
  // per_node_ms is a fresh per-invoke reading; if invoke accumulated into it
  // the identity total == first + last would not hold.
  EXPECT_DOUBLE_EQ(interp.last_stats().per_node_total_ms[1],
                   first + interp.last_stats().per_node_ms[1]);
}

TEST(Interpreter, UnsupportedOpFailsAtPrepareTime) {
  Pcg32 rng(23);
  GraphBuilder b("emb", &rng);
  int ids = b.input(Shape{1, 4}, DType::kI32, "tokens");
  int e = b.embedding(ids, 10, 4, "emb");
  Graph m = b.finish({e});
  m.node(e).output_dtype = DType::kI8;  // no int8 embedding kernel exists
  RefOpResolver ref;
  // The plan resolves kernels at construction: failure surfaces in Prepare,
  // not on the first invoke.
  EXPECT_THROW(Interpreter(&m, &ref), MlxError);
}

TEST(Interpreter, NodeOutputsRetained) {
  Pcg32 rng(4);
  GraphBuilder b("m", &rng);
  int x = b.input(Shape{1, 4, 4, 2});
  int r = b.relu(x, "r");
  int s = b.softmax(r, "s");
  Graph m = b.finish({s});
  RefOpResolver ref;
  Interpreter interp(&m, &ref);
  Tensor input = Tensor::f32(Shape{1, 4, 4, 2});
  input.fill(-1.0f);
  interp.set_input(0, input);
  interp.invoke();
  // relu output of -1 inputs is all zeros; retained per-layer.
  TensorSummary sum = summarize(interp.node_output(r));
  EXPECT_EQ(sum.max, 0.0f);
}

TEST(Interpreter, RefAndOptimizedAgreeOnZooModel) {
  ZooModel zm = build_mobilenet_v2_mini(5);
  RefOpResolver ref;
  BuiltinOpResolver opt;
  Interpreter ri(&zm.model, &ref);
  Interpreter oi(&zm.model, &opt, 2);
  Pcg32 rng(6);
  Tensor input = Tensor::f32(Shape{1, 32, 32, 3});
  float* p = input.data<float>();
  for (std::int64_t i = 0; i < input.num_elements(); ++i) p[i] = rng.uniform(-1, 1);
  ri.set_input(0, input);
  oi.set_input(0, input);
  ri.invoke();
  oi.invoke();
  EXPECT_LT(linf_error(ri.output(0), oi.output(0)), 1e-4);
}

TEST(DeviceProfile, CostScalesWithModelSize) {
  ZooModel small = build_mobilenet_v1_mini(7);
  ZooModel large = build_resnet50v2_mini(7);
  const DeviceProfile& dev = DeviceProfile::pixel4_cpu();
  EXPECT_GT(modeled_graph_latency_ms(large.model, dev),
            modeled_graph_latency_ms(small.model, dev));
}

TEST(DeviceProfile, GpuFasterThanCpuOnFloat) {
  ZooModel zm = build_mobilenet_v2_mini(8);
  double cpu = modeled_graph_latency_ms(zm.model, DeviceProfile::pixel4_cpu());
  double gpu = modeled_graph_latency_ms(zm.model, DeviceProfile::pixel4_gpu());
  EXPECT_GT(cpu, gpu);
}

TEST(DeviceProfile, Pixel4FasterThanPixel3) {
  ZooModel zm = build_mobilenet_v2_mini(9);
  EXPECT_LT(modeled_graph_latency_ms(zm.model, DeviceProfile::pixel4_cpu()),
            modeled_graph_latency_ms(zm.model, DeviceProfile::pixel3_cpu()));
}

TEST(DeviceProfile, EmulatorPenalizesFloatConvs) {
  ZooModel zm = build_mobilenet_v2_mini(10);
  double device = modeled_graph_latency_ms(zm.model, DeviceProfile::pixel4_cpu());
  double emu = modeled_graph_latency_ms(zm.model, DeviceProfile::emulator_x86());
  EXPECT_GT(emu, 5.0 * device);  // the paper's Table-4 emulator column shape
}

TEST(DeviceProfile, ConvCostFormula) {
  Pcg32 rng(11);
  GraphBuilder b("c", &rng);
  int x = b.input(Shape{1, 8, 8, 2});
  int c = b.conv2d(x, 4, 3, 3, 1, Padding::kSame, Activation::kNone, "c1");
  Graph m = b.finish({c});
  NodeCost cost = estimate_node_cost(m, m.node(c));
  // flops = 2 * out_elems * kh*kw*in_ch = 2 * (8*8*4) * 18
  EXPECT_DOUBLE_EQ(cost.flops, 2.0 * 8 * 8 * 4 * 3 * 3 * 2);
  EXPECT_GT(cost.bytes, 0.0);
}

}  // namespace
}  // namespace mlexray
