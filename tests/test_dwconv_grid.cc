// Exhaustive DepthwiseConv2D kernel-conformance grid.
//
// The vectorized dwconv family (src/kernels/dwconv.h) ships with three
// compute tiers (AVX2 / generic GNU-vector / scalar) selected at invoke
// time, plus plan-time weight packing. This grid pins the whole family down
// so future tiers cannot silently diverge:
//
//  - geometry: stride {1, 2} x padding {Same, Valid} x depth_multiplier
//    {1, 2} x channels {1..4, 7, 8, 15, 16, 17, 64} (covering sub-vector,
//    exact-vector, and vector-tail channel counts for both the 16-lane int8
//    and 8-lane f32 blocks) x batch {1, 4}, in f32 and int8 with
//    per-channel weight scales and asymmetric activation zero points;
//  - f32 cells assert *bit-exact* opt-vs-ref output (the vector tiers keep
//    the reference kernel's per-channel accumulation order);
//  - int8 cells assert opt-vs-ref within one output quantum — the reference
//    path requantizes through a double multiply while the optimized path
//    uses Q31 fixed point, the same intentional one-step discrepancy the
//    main kernel grid documents (paper §4.4) — and *bit-exact* agreement
//    between every compiled-in tier (integer accumulation is exact, so the
//    AVX2, generic-vector, and scalar tiers must agree to the bit; the
//    scalar tier plays the role of the conformance reference);
//  - every cell asserts steady-state invoke performs zero heap allocations
//    (global operator-new counter + AllocStats events) and zero dwconv
//    weight packs after plan construction (dwconv_pack_events()).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <new>
#include <vector>

#include "src/graph/builder.h"
#include "src/interpreter/interpreter.h"
#include "src/kernels/dwconv.h"
#include "src/quant/quantizer.h"
#include "src/tensor/alloc_stats.h"
#include "src/tensor/tensor_stats.h"

// --- global operator new/delete instrumentation -----------------------------

namespace {
std::atomic<std::uint64_t> g_heap_allocs{0};
}  // namespace

void* operator new(std::size_t size) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  void* p = nullptr;
  if (posix_memalign(&p, static_cast<std::size_t>(align), size ? size : 1) != 0) {
    throw std::bad_alloc();
  }
  return p;
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace mlexray {
namespace {

Tensor random_input(Shape shape, Pcg32& rng, float lo = -2.0f,
                    float hi = 2.0f) {
  Tensor t = Tensor::f32(shape);
  float* p = t.data<float>();
  for (std::int64_t i = 0; i < t.num_elements(); ++i) {
    p[i] = rng.uniform(lo, hi);
  }
  return t;
}

// One quantization step of a quantized model's (dequantized f32) output.
float output_quantum(const Graph& qm) {
  const Node& out = qm.node(qm.outputs[0]);
  if (out.type == OpType::kDequantize) {
    return qm.node(out.inputs[0]).output_quant.scale();
  }
  return out.output_quant.scale();
}

bool outputs_bit_equal(const Tensor& a, const Tensor& b) {
  if (a.num_elements() != b.num_elements()) return false;
  return std::memcmp(a.raw_data(), b.raw_data(),
                     static_cast<std::size_t>(a.num_elements()) *
                         sizeof(float)) == 0;
}

std::vector<float> snapshot(const Tensor& t) {
  const float* p = t.data<float>();
  return std::vector<float>(p, p + t.num_elements());
}

struct DwGridCase {
  int stride;
  Padding padding;
  int depth_mult;
  std::int64_t channels;
  std::int64_t batch;
  bool quantized;
  Activation act;

  friend std::ostream& operator<<(std::ostream& os, const DwGridCase& c) {
    return os << "s" << c.stride
              << (c.padding == Padding::kSame ? "/Same" : "/Valid") << "/dm"
              << c.depth_mult << "/ch" << c.channels << "/b" << c.batch
              << "/act" << static_cast<int>(c.act)
              << (c.quantized ? "/i8" : "/f32");
  }
};

std::vector<DwGridCase> make_grid() {
  // Channel counts straddle the vector widths: below, at, and one past both
  // the 8-lane f32 block and the 16-lane int8 block, plus a multi-block
  // count (64) exercising the steady vector loop.
  const std::int64_t channels[] = {1, 2, 3, 4, 7, 8, 15, 16, 17, 64};
  const Activation acts[] = {Activation::kNone, Activation::kRelu,
                             Activation::kRelu6};
  std::vector<DwGridCase> grid;
  int i = 0;
  for (int stride : {1, 2}) {
    for (Padding padding : {Padding::kSame, Padding::kValid}) {
      for (int dm : {1, 2}) {
        for (std::int64_t ch : channels) {
          for (std::int64_t batch : {1, 4}) {
            for (bool quantized : {false, true}) {
              // Cycle the fused activation so clamp ranges are covered
              // without tripling an already 320-cell grid.
              grid.push_back({stride, padding, dm, ch, batch, quantized,
                              acts[i++ % 3]});
            }
          }
        }
      }
    }
  }
  return grid;
}

class DwConvGrid : public ::testing::TestWithParam<DwGridCase> {
 protected:
  void TearDown() override {
    set_dwconv_tier_for_testing(DwConvTier::kAuto);
  }
};

// Invokes `interp` under every forced tier and asserts each result is
// byte-identical to `want` (the kAuto result).
void expect_all_tiers_bit_equal(Interpreter& interp,
                                const std::vector<float>& want,
                                const DwGridCase& c) {
  for (DwConvTier tier :
       {DwConvTier::kGenericVector, DwConvTier::kScalar}) {
    set_dwconv_tier_for_testing(tier);
    interp.invoke();
    const Tensor& out = interp.output(0);
    ASSERT_EQ(static_cast<std::size_t>(out.num_elements()), want.size()) << c;
    EXPECT_EQ(std::memcmp(out.raw_data(), want.data(),
                          want.size() * sizeof(float)),
              0)
        << c << " diverges under tier " << static_cast<int>(tier);
  }
  set_dwconv_tier_for_testing(DwConvTier::kAuto);
}

// Steady-state contract: invoke never touches the heap, never registers
// tensor/arena allocations, and never re-packs dwconv weights once the plan
// exists. `packs_since_prepare` is the dwconv_pack_events() reading taken
// right after interpreter construction.
void expect_steady_state_clean(Interpreter& interp,
                               std::uint64_t packs_at_prepare,
                               const DwGridCase& c) {
  interp.invoke();  // warmup may grow the scratch arena
  EXPECT_EQ(dwconv_pack_events(), packs_at_prepare)
      << c << ": first invoke re-packed dwconv weights despite the plan";
  const std::uint64_t events_before = AllocStats::instance().alloc_events();
  const std::uint64_t heap_before = g_heap_allocs.load();
  const std::size_t high_water_before =
      interp.scratch_arena().high_water_bytes();
  for (int i = 0; i < 3; ++i) interp.invoke();
  EXPECT_EQ(AllocStats::instance().alloc_events(), events_before)
      << c << ": steady-state invoke registered allocations";
  EXPECT_EQ(g_heap_allocs.load(), heap_before)
      << c << ": steady-state invoke touched the heap";
  EXPECT_EQ(dwconv_pack_events(), packs_at_prepare)
      << c << ": steady-state invoke re-packed dwconv weights";
  EXPECT_EQ(interp.scratch_arena().high_water_bytes(), high_water_before)
      << c << ": steady-state invoke grew the scratch arena";
}

TEST_P(DwConvGrid, OptMatchesRefAcrossTiers) {
  const DwGridCase& c = GetParam();
  Pcg32 rng(4242);
  GraphBuilder b("dwgrid", &rng);
  const Shape in_shape{c.batch, 9, 9, c.channels};
  int x = b.input(in_shape);
  b.depthwise_conv2d(x, 3, 3, c.stride, c.padding, c.act, "op",
                     c.depth_mult);
  Graph m = b.finish({1});

  Pcg32 drng(99);
  Tensor input = random_input(in_shape, drng);

  RefOpResolver ref;
  BuiltinOpResolver opt;
  if (!c.quantized) {
    Interpreter ri(&m, &ref);
    const std::uint64_t packs_at_prepare_probe = dwconv_pack_events();
    Interpreter oi(&m, &opt, /*num_threads=*/2);
    // f32 filters are panel-shaped as stored: nothing packs, ever.
    EXPECT_EQ(dwconv_pack_events(), packs_at_prepare_probe) << c;
    const std::uint64_t packs_at_prepare = dwconv_pack_events();
    ri.set_input(0, input);
    oi.set_input(0, input);
    ri.invoke();
    oi.invoke();
    // Vector lanes run the reference accumulation order per channel, so
    // float output must match to the bit — any geometry, ordering, or
    // contraction divergence fails loudly.
    EXPECT_TRUE(outputs_bit_equal(ri.output(0), oi.output(0))) << c;
    expect_all_tiers_bit_equal(oi, snapshot(oi.output(0)), c);
    expect_steady_state_clean(oi, packs_at_prepare, c);
  } else {
    Calibrator calib(&m);
    Pcg32 crng(7);
    for (int i = 0; i < 5; ++i) {
      calib.observe({random_input(in_shape, crng)});
    }
    calib.observe({input});
    // Default quantizer options: per-channel weight scales (axis 3 for
    // depthwise), asymmetric activation zero points.
    Graph qm = quantize_model(m, calib);
    Interpreter ri(&qm, &ref);
    const std::uint64_t packs_at_prepare_probe = dwconv_pack_events();
    Interpreter oi(&qm, &opt, /*num_threads=*/2);
    EXPECT_EQ(dwconv_pack_events(), packs_at_prepare_probe + 1) << c;
    const std::uint64_t packs_at_prepare = dwconv_pack_events();
    ri.set_input(0, input);
    oi.set_input(0, input);
    ri.invoke();
    oi.invoke();
    // Double-rescale (ref) vs Q31 fixed point (opt): at most one quantum.
    EXPECT_LE(linf_error(ri.output(0), oi.output(0)),
              1.001f * output_quantum(qm))
        << c;
    // The conformance core: every compiled-in tier, including the scalar
    // reference tier, produces bit-identical integer output.
    expect_all_tiers_bit_equal(oi, snapshot(oi.output(0)), c);
    expect_steady_state_clean(oi, packs_at_prepare, c);
  }
}

INSTANTIATE_TEST_SUITE_P(StridePadDepthChannelsBatchDtype, DwConvGrid,
                         ::testing::ValuesIn(make_grid()));

// --- no-plan fallback --------------------------------------------------------

// Without a plan (ctx.prepared == nullptr, e.g. the trainer's forward pass)
// the int8 kernel builds its panels and tables in per-call scratch: results
// must be identical, and dwconv_pack_events() must tick once per invoke —
// proof the counter actually observes the fallback the plan is eliminating.
// (f32 has no fallback cost: its filter is used in place on both paths.)
TEST(DwConvFallback, PacksPerCallWithoutPlanAndMatchesPlanned) {
  Pcg32 rng(11);
  GraphBuilder b("dwfall", &rng);
  const Shape in_shape{1, 8, 8, 16};
  int x = b.input(in_shape);
  b.depthwise_conv2d(x, 3, 3, 1, Padding::kSame, Activation::kRelu, "op");
  Graph m = b.finish({1});
  Calibrator calib(&m);
  Pcg32 crng(13);
  for (int i = 0; i < 4; ++i) calib.observe({random_input(in_shape, crng)});
  Graph qm = quantize_model(m, calib);
  BuiltinOpResolver opt;
  Interpreter planned(&qm, &opt);
  Pcg32 drng(12);
  Tensor input = random_input(in_shape, drng);
  planned.set_input(0, input);
  planned.invoke();

  // Drive the same int8 kernel through a bare KernelContext (no prepared
  // storage), as a plan-less caller would, feeding it the planned run's
  // quantized activation.
  const Node* dw = nullptr;
  for (const Node& n : qm.nodes) {
    if (n.type == OpType::kDepthwiseConv2D) dw = &n;
  }
  ASSERT_NE(dw, nullptr);
  const Tensor& quantized_in = planned.node_output(dw->inputs[0]);
  Tensor out(DType::kI8, dw->output_shape);
  out.quant() = dw->output_quant;
  ScratchArena arena;
  KernelContext ctx;
  ctx.node = dw;
  ctx.inputs.push_back(&quantized_in);
  ctx.output = &out;
  ctx.arena = &arena;
  const KernelEntry& entry = opt.find(*dw);
  const std::uint64_t packs_before = dwconv_pack_events();
  entry.invoke(ctx);
  arena.reset();
  entry.invoke(ctx);
  EXPECT_EQ(dwconv_pack_events(), packs_before + 2)
      << "per-call fallback must pack on every invoke";
  const Tensor& want = planned.node_output(dw->id);
  ASSERT_EQ(want.num_elements(), out.num_elements());
  EXPECT_EQ(std::memcmp(want.raw_data(), out.raw_data(),
                        static_cast<std::size_t>(out.num_elements())),
            0);
}

}  // namespace
}  // namespace mlexray
