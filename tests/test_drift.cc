// Fleet drift detection: streaming digests, Engine canary shadowing, and the
// .mlxtrace aggregation subsystem (src/drift/).
//
// Locks in the contracts the drift subsystem claims:
//  - the KLL-style quantile sketch tracks exact quantiles within a
//    conservative rank-error bound, and merging shard sketches is
//    equivalent (within that bound) to sketching the concatenated stream;
//  - int8/uint8 digests are exact: histogram-256 merges losslessly and
//    quantiles/moments equal the offline computation bit-for-bit;
//  - digests round-trip the v2 wire format, and v1 trace files (no digest
//    section) still load;
//  - TraceBuffer digest capture equals digesting the raw captured tensors;
//  - Engine canary mode reproduces the offline Fig-6 verdict online: with a
//    bug-emulation variant as the canary reference, the streaming
//    first-suspect layer matches DeploymentValidator::per_layer_drift on
//    full traces of the same runs;
//  - the DriftAggregator ranks the outlier device and localizes the fleet
//    first suspect from digest-only traces.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <vector>

#include "src/common/file_io.h"
#include "src/core/monitor.h"
#include "src/core/validation.h"
#include "src/drift/aggregator.h"
#include "src/drift/digest.h"
#include "src/graph/builder.h"
#include "src/interpreter/engine.h"
#include "src/interpreter/interpreter.h"
#include "src/quant/quantizer.h"

namespace mlexray {
namespace {

Tensor random_input(Shape shape, Pcg32& rng) {
  Tensor t = Tensor::f32(shape);
  float* p = t.data<float>();
  for (std::int64_t i = 0; i < t.num_elements(); ++i) {
    p[i] = rng.uniform(-2.0f, 2.0f);
  }
  return t;
}

Graph conv_stack_model(Pcg32* rng) {
  GraphBuilder b("stack", rng);
  int x = b.input(Shape{1, 16, 16, 8});
  int c1 = b.conv2d(x, 16, 3, 3, 1, Padding::kSame, Activation::kRelu, "c1");
  int d = b.depthwise_conv2d(c1, 3, 3, 2, Padding::kSame, Activation::kRelu6,
                             "dw");
  int c2 = b.conv2d(d, 16, 1, 1, 1, Padding::kSame, Activation::kNone, "c2");
  int fc = b.fully_connected(c2, 10, Activation::kNone, "fc");
  return b.finish({fc});
}

// Bug-emulation variant: same architecture and node names, but one layer's
// filter is scaled — the "wrong weights shipped" class of deployment bug.
// Layers before it stay bit-identical; the perturbed layer and everything
// downstream drift.
Graph perturbed_conv_stack(std::uint64_t seed, const std::string& layer,
                           float factor) {
  Pcg32 rng(seed);
  Graph g = conv_stack_model(&rng);
  bool found = false;
  for (Node& node : g.nodes) {
    if (node.name != layer) continue;
    Tensor& w = node.weights.at(0);
    float* p = w.data<float>();
    for (std::int64_t i = 0; i < w.num_elements(); ++i) p[i] *= factor;
    found = true;
  }
  MLX_CHECK(found) << "no layer named " << layer;
  return g;
}

// Fraction of `sorted` strictly below v: the empirical rank of a sketch
// answer, for rank-error assertions against the exact stream.
double rank_of(const std::vector<float>& sorted, float v) {
  const auto it = std::lower_bound(sorted.begin(), sorted.end(), v);
  return static_cast<double>(it - sorted.begin()) /
         static_cast<double>(sorted.size());
}

constexpr double kQueryGrid[] = {0.01, 0.05, 0.1, 0.25, 0.5,
                                 0.75, 0.9,  0.95, 0.99};

// Conservative end-to-end rank bound for this sketch geometry (kLevelCap=32).
// The expected KLL error is far smaller; the tests assert the loose bound so
// they stay deterministic-seed-robust rather than tuned to one stream.
constexpr double kRankBound = 0.08;

TEST(QuantileSketch, TracksExactQuantilesWithinRankBound) {
  constexpr int kN = 20000;
  Pcg32 rng(301);
  QuantileSketch sketch;
  std::vector<float> values;
  values.reserve(kN);
  for (int i = 0; i < kN; ++i) {
    // A skewed mixture, not just uniform: two modes of different widths.
    const float v = (i % 3 == 0) ? rng.uniform(-4.0f, -2.0f)
                                 : rng.uniform(0.0f, 1.0f);
    values.push_back(v);
    sketch.add(v);
  }
  EXPECT_EQ(sketch.weight(), static_cast<std::uint64_t>(kN))
      << "compaction must preserve total weight";
  std::sort(values.begin(), values.end());
  for (double q : kQueryGrid) {
    const double rank = rank_of(values, sketch.quantile(q));
    EXPECT_NEAR(rank, q, kRankBound) << "quantile " << q;
  }
  // Resetting forgets the stream.
  sketch.reset();
  EXPECT_TRUE(sketch.empty());
  EXPECT_EQ(sketch.weight(), 0u);
}

// The mergeable-sketch contract the fleet aggregator rests on: a digest
// merged over N shards answers like a digest of the concatenated stream.
// Moments are exact either way; quantiles obey the same rank bound.
TEST(LayerDigest, MergedShardsMatchConcatenatedStream) {
  constexpr int kShards = 6;
  // Each shard's sketch stride-samples under kSketchSampleBudget; merged and
  // whole digests see the identical sampled subset, and the rank bound below
  // absorbs the sampling noise (~750 samples across shards).
  constexpr std::int64_t kShardElems = 2000;
  Pcg32 rng(311);

  std::vector<float> all;
  LayerDigest merged;
  merged.reset();
  LayerDigest whole;
  whole.reset();
  std::vector<Tensor> shards;
  for (int s = 0; s < kShards; ++s) {
    Tensor t = Tensor::f32(Shape{kShardElems});
    float* p = t.data<float>();
    for (std::int64_t i = 0; i < kShardElems; ++i) {
      p[i] = rng.uniform(-1.0f, 1.0f) + 0.5f * static_cast<float>(s);
    }
    all.insert(all.end(), p, p + kShardElems);
    LayerDigest shard;
    shard.reset();
    shard.accumulate(t);
    merged.merge(shard);
    shards.push_back(std::move(t));
  }
  for (const Tensor& t : shards) whole.accumulate(t);

  const std::int64_t n = static_cast<std::int64_t>(all.size());
  double exact_sum = 0.0;
  for (float v : all) exact_sum += v;
  std::vector<float> sorted = all;
  std::sort(sorted.begin(), sorted.end());

  for (const LayerDigest* d : {&merged, &whole}) {
    EXPECT_EQ(d->count, static_cast<std::uint64_t>(n));
    // Moments are exact over every element regardless of sharding.
    EXPECT_NEAR(d->mean(), exact_sum / static_cast<double>(n), 1e-6);
    EXPECT_EQ(d->real_min(), static_cast<double>(sorted.front()));
    EXPECT_EQ(d->real_max(), static_cast<double>(sorted.back()));
    for (double q : kQueryGrid) {
      const double rank =
          rank_of(sorted, static_cast<float>(d->quantile(q)));
      EXPECT_NEAR(rank, q, kRankBound)
          << (d == &merged ? "merged" : "whole") << " quantile " << q;
    }
  }
  // The two digests also agree with each other distributionally.
  EXPECT_LT(digest_drift(merged, whole), 0.05);
}

TEST(LayerDigest, Int8HistogramMergesExactly) {
  Pcg32 rng(321);
  const QuantParams qp = QuantParams::per_tensor(0.05f, -3);
  auto make = [&](std::int64_t n) {
    Tensor t = Tensor::i8(Shape{n});
    t.quant() = qp;
    std::int8_t* p = t.data<std::int8_t>();
    for (std::int64_t i = 0; i < n; ++i) {
      p[i] = static_cast<std::int8_t>(rng.uniform(-100.0f, 100.0f));
    }
    return t;
  };
  // Both under kIntHistSampleBudget, so every element lands in the histogram
  // and all derived statistics are exact.
  Tensor a = make(150);
  Tensor b = make(250);

  LayerDigest da;
  da.reset();
  da.accumulate(a);
  LayerDigest db;
  db.reset();
  db.accumulate(b);
  LayerDigest merged = da;
  merged.merge(db);

  LayerDigest whole;
  whole.reset();
  whole.accumulate(a);
  whole.accumulate(b);

  // Histograms over the 256-value domain merge losslessly: every derived
  // statistic is bit-identical with the single-pass digest.
  EXPECT_EQ(merged.count, whole.count);
  EXPECT_EQ(0, std::memcmp(merged.hist, whole.hist, sizeof(merged.hist)));
  EXPECT_EQ(merged.isum, whole.isum);
  EXPECT_EQ(merged.isum_sq, whole.isum_sq);
  EXPECT_DOUBLE_EQ(merged.mean(), whole.mean());
  EXPECT_DOUBLE_EQ(merged.stddev(), whole.stddev());
  for (double q : kQueryGrid) {
    EXPECT_DOUBLE_EQ(merged.quantile(q), whole.quantile(q));
  }
  EXPECT_EQ(digest_tv_distance(merged, whole), 0.0);
  EXPECT_EQ(digest_drift(merged, whole), 0.0);

  // And the exact quantiles dequantize: compare against offline sort. The
  // digest dequantizes with the tensor's f32 scale, so the oracle must too.
  const double scale = static_cast<double>(qp.scales[0]);
  std::vector<double> real;
  for (const Tensor* t : {&a, &b}) {
    const std::int8_t* p = t->data<std::int8_t>();
    for (std::int64_t i = 0; i < t->num_elements(); ++i) {
      real.push_back(scale * (p[i] - (-3)));
    }
  }
  std::sort(real.begin(), real.end());
  const double p50 = merged.quantile(0.5);
  // Nearest-rank on an exact histogram: within one quant step of the sorted
  // stream's nearest-rank answer.
  EXPECT_NEAR(p50, real[real.size() / 2], scale + 1e-12);
  EXPECT_DOUBLE_EQ(merged.real_min(), real.front());
  EXPECT_DOUBLE_EQ(merged.real_max(), real.back());
}

// The capture-cost contract: one accumulate() call inserts a bounded number
// of samples no matter how large the layer is, while float moments stay
// exact over every element.
TEST(LayerDigest, LargeLayersRespectSamplingBudgets) {
  Pcg32 rng(341);
  constexpr std::int64_t kBig = 100000;
  Tensor f = random_input(Shape{kBig}, rng);

  LayerDigest df;
  df.reset();
  df.accumulate(f);
  // Moments cover all elements; the sketch holds at most the budget.
  EXPECT_EQ(df.count, static_cast<std::uint64_t>(kBig));
  double exact_sum = 0.0;
  float mx = -std::numeric_limits<float>::infinity();
  const float* p = f.data<float>();
  for (std::int64_t i = 0; i < kBig; ++i) {
    exact_sum += p[i];
    mx = std::max(mx, p[i]);
  }
  EXPECT_NEAR(df.mean(), exact_sum / kBig, 1e-6);
  EXPECT_EQ(df.real_max(), static_cast<double>(mx));
  EXPECT_LE(df.sketch.weight(),
            static_cast<std::uint64_t>(LayerDigest::kSketchSampleBudget));
  EXPECT_GE(df.sketch.weight(),
            static_cast<std::uint64_t>(LayerDigest::kSketchSampleBudget / 2));

  Tensor q = Tensor::i8(Shape{kBig});
  q.quant() = QuantParams::per_tensor(0.02f, 0);
  for (std::int64_t i = 0; i < kBig; ++i) {
    q.data<std::int8_t>()[i] =
        static_cast<std::int8_t>(rng.uniform(-90.0f, 90.0f));
  }
  LayerDigest dq;
  dq.reset();
  dq.accumulate(q);
  // The histogram digests the stride-sampled subset and count matches it.
  EXPECT_LE(dq.count,
            static_cast<std::uint64_t>(LayerDigest::kIntHistSampleBudget));
  EXPECT_GE(dq.count,
            static_cast<std::uint64_t>(LayerDigest::kIntHistSampleBudget / 2));
  std::uint64_t hist_total = 0;
  for (int b = 0; b < 256; ++b) hist_total += dq.hist[b];
  EXPECT_EQ(hist_total, dq.count);
  // A uniform stride over i.i.d. data is still an unbiased sample: the
  // histogram median lands near the true median (0 ± a few quant steps).
  EXPECT_NEAR(dq.quantile(0.5), 0.0, 5 * 0.02);
}

TEST(DigestWire, RoundTripsFloatAndIntDigests) {
  Pcg32 rng(331);
  Tensor f = random_input(Shape{1, 8, 8, 8}, rng);
  LayerDigest df;
  df.reset();
  df.accumulate(f);

  Tensor q = Tensor::i8(Shape{512});
  q.quant() = QuantParams::per_tensor(0.1f, 7);
  for (std::int64_t i = 0; i < q.num_elements(); ++i) {
    q.data<std::int8_t>()[i] = static_cast<std::int8_t>(rng.uniform(-50, 50));
  }
  LayerDigest dq;
  dq.reset();
  dq.accumulate(q);

  for (const LayerDigest* d : {&df, &dq}) {
    BinaryWriter w;
    serialize_digest(w, *d);
    BinaryReader r(w.bytes());
    const LayerDigest back = deserialize_digest(r);
    EXPECT_TRUE(r.at_end()) << "digest wire frame has trailing bytes";
    EXPECT_EQ(back.dtype, d->dtype);
    EXPECT_EQ(back.count, d->count);
    EXPECT_DOUBLE_EQ(back.mean(), d->mean());
    EXPECT_DOUBLE_EQ(back.stddev(), d->stddev());
    EXPECT_DOUBLE_EQ(back.real_min(), d->real_min());
    EXPECT_DOUBLE_EQ(back.real_max(), d->real_max());
    for (double qq : kQueryGrid) {
      EXPECT_DOUBLE_EQ(back.quantile(qq), d->quantile(qq));
    }
    EXPECT_EQ(digest_drift(back, *d), 0.0);
  }
  // The sparse bin encoding reconstructs the full histogram bit-for-bit.
  BinaryWriter w;
  serialize_digest(w, dq);
  BinaryReader r(w.bytes());
  const LayerDigest back = deserialize_digest(r);
  EXPECT_EQ(0, std::memcmp(back.hist, dq.hist, sizeof(dq.hist)));
  EXPECT_EQ(back.scale, dq.scale);
  EXPECT_EQ(back.zero_point, dq.zero_point);
}

TEST(TraceFormat, V1FilesWithoutDigestSectionStillLoad) {
  // A hand-written v1 stream: v1 magic, no digest section after latencies —
  // exactly what every pre-digest .mlxtrace on disk looks like.
  FrameTrace f;
  f.frame_id = 0;
  f.layer_names = {"a", "b"};
  Pcg32 rng(341);
  f.layer_outputs.push_back(random_input(Shape{4}, rng));
  f.layer_outputs.push_back(random_input(Shape{6}, rng));
  f.layer_latency_ms = {0.25, 0.5};
  f.scalars["latency.inference_ms"] = 1.0;

  BinaryWriter w;
  w.write_u32(0x4d4c5854u);  // "TXLM": trace format v1
  w.write_string("legacy");
  w.write_u32(1);
  serialize_frame(w, f, kTraceVersion1);
  const auto path =
      std::filesystem::temp_directory_path() / "mlx_drift_v1.mlxtrace";
  write_file(path, w.bytes());

  Trace back = load_trace(path);
  std::filesystem::remove(path);
  EXPECT_EQ(back.pipeline_name, "legacy");
  ASSERT_EQ(back.frames.size(), 1u);
  const FrameTrace& g = back.frames[0];
  EXPECT_EQ(g.layer_names, f.layer_names);
  ASSERT_EQ(g.layer_outputs.size(), 2u);
  EXPECT_EQ(0, std::memcmp(g.layer_outputs[0].raw_data(),
                           f.layer_outputs[0].raw_data(),
                           f.layer_outputs[0].byte_size()));
  EXPECT_DOUBLE_EQ(g.scalar("latency.inference_ms"), 1.0);
  EXPECT_TRUE(g.layer_digests.empty());
}

TEST(TraceFormat, V2RoundTripsDigestsAndV1RefusesThem) {
  FrameTrace f;
  f.frame_id = 3;
  f.layer_names = {"a"};
  Pcg32 rng(351);
  Tensor t = random_input(Shape{64}, rng);
  LayerDigest d;
  d.reset();
  d.accumulate(t);
  f.layer_digests.push_back(d);

  Trace trace;
  trace.pipeline_name = "digests";
  trace.frames.push_back(f);
  const auto path =
      std::filesystem::temp_directory_path() / "mlx_drift_v2.mlxtrace";
  save_trace(trace, path);  // current format: v2
  Trace back = load_trace(path);
  std::filesystem::remove(path);
  ASSERT_EQ(back.frames.size(), 1u);
  ASSERT_EQ(back.frames[0].layer_digests.size(), 1u);
  const LayerDigest& bd = back.frames[0].layer_digests[0];
  EXPECT_EQ(bd.count, d.count);
  EXPECT_DOUBLE_EQ(bd.mean(), d.mean());
  EXPECT_EQ(digest_drift(bd, d), 0.0);

  // The v1 writer must refuse frames that carry digests rather than drop
  // them silently.
  BinaryWriter w;
  EXPECT_THROW(serialize_frame(w, f, kTraceVersion1), MlxError);
}

TEST(DigestCapture, ObserverDigestsMatchDirectAccumulate) {
  Pcg32 rng_a(361), rng_b(361);  // identical weights
  Graph ga = conv_stack_model(&rng_a);
  Graph gb = conv_stack_model(&rng_b);
  BuiltinOpResolver opt;
  Pcg32 drng(362);
  std::vector<Tensor> inputs;
  for (int i = 0; i < 3; ++i) {
    inputs.push_back(random_input(Shape{1, 16, 16, 8}, drng));
  }

  // Digest-mode capture (the fleet monitoring mode)...
  Interpreter ia(&ga, &opt);
  MonitorOptions digest_opts;
  digest_opts.per_layer_outputs = false;
  digest_opts.per_layer_digests = true;
  EdgeMLMonitor ma(digest_opts);
  ma.observe(ia);
  // ...and raw-output capture of the same run, as the digest ground truth.
  Interpreter ib(&gb, &opt);
  MonitorOptions raw_opts;
  raw_opts.per_layer_outputs = true;
  EdgeMLMonitor mb(raw_opts);
  mb.observe(ib);

  auto run_frame = [](EdgeMLMonitor& monitor, Interpreter& interp,
                      const Tensor& in) {
    interp.set_input(0, in);
    monitor.on_inf_start();
    interp.invoke();
    monitor.on_inf_stop(interp);
    monitor.next_frame();
  };
  for (const Tensor& in : inputs) {
    run_frame(ma, ia, in);
    run_frame(mb, ib, in);
  }
  ma.unobserve(ia);
  mb.unobserve(ib);

  const Trace& digest_trace = ma.trace();
  const Trace& raw_trace = mb.trace();
  ASSERT_EQ(digest_trace.frames.size(), inputs.size());
  for (std::size_t fi = 0; fi < inputs.size(); ++fi) {
    const FrameTrace& fd = digest_trace.frames[fi];
    const FrameTrace& fr = raw_trace.frames[fi];
    ASSERT_EQ(fd.layer_names, fr.layer_names);
    ASSERT_EQ(fd.layer_digests.size(), fd.layer_names.size());
    EXPECT_TRUE(fd.layer_outputs.empty())
        << "digest mode must not capture raw tensors";
    // frame_layer_digests() digests the raw capture on the fly; the
    // streaming capture must agree exactly (same accumulate order).
    const std::vector<LayerDigest> want = frame_layer_digests(fr);
    ASSERT_EQ(want.size(), fd.layer_digests.size());
    for (std::size_t i = 0; i < want.size(); ++i) {
      const LayerDigest& got = fd.layer_digests[i];
      EXPECT_EQ(got.count, want[i].count) << fd.layer_names[i];
      EXPECT_EQ(got.dtype, want[i].dtype);
      EXPECT_DOUBLE_EQ(got.mean(), want[i].mean());
      EXPECT_DOUBLE_EQ(got.real_min(), want[i].real_min());
      EXPECT_DOUBLE_EQ(got.real_max(), want[i].real_max());
      for (double q : {0.1, 0.5, 0.9}) {
        EXPECT_DOUBLE_EQ(got.quantile(q), want[i].quantile(q))
            << fd.layer_names[i] << " q=" << q;
      }
    }
  }
}

TEST(DigestCapture, QuantizedLayersTakeTheExactHistogramPath) {
  Pcg32 rng(371);
  Graph m = conv_stack_model(&rng);
  Calibrator calib(&m);
  Pcg32 crng(372);
  for (int i = 0; i < 4; ++i) {
    calib.observe({random_input(Shape{1, 16, 16, 8}, crng)});
  }
  Graph qm = quantize_model(m, calib);
  BuiltinOpResolver opt;
  Interpreter interp(&qm, &opt);
  MonitorOptions opts;
  opts.per_layer_digests = true;
  EdgeMLMonitor monitor(opts);
  monitor.observe(interp);
  Pcg32 drng(373);
  interp.set_input(0, random_input(Shape{1, 16, 16, 8}, drng));
  monitor.on_inf_start();
  interp.invoke();
  monitor.on_inf_stop(interp);
  monitor.next_frame();
  monitor.unobserve(interp);

  const FrameTrace& f = monitor.trace().frames.at(0);
  int int8_digests = 0;
  for (std::size_t i = 0; i < f.layer_digests.size(); ++i) {
    const LayerDigest& d = f.layer_digests[i];
    const Tensor& retained =
        interp.node_output(interp.plan().steps()[i].node->id);
    EXPECT_EQ(d.dtype, retained.dtype());
    if (d.integer_path()) {
      ++int8_digests;
      EXPECT_GT(d.scale, 0.0f) << "int digest lost its quant params";
      std::uint64_t total = 0;
      for (int b = 0; b < 256; ++b) total += d.hist[b];
      EXPECT_EQ(total, d.count) << "histogram does not cover every element";
    }
  }
  EXPECT_GT(int8_digests, 0) << "quantized model produced no int8 digests";
}

// --- canary mode -------------------------------------------------------------

// The acceptance criterion: the canary's streaming first-suspect verdict
// matches the offline per_layer_drift verdict for the same bug, with the
// bug-emulation variant registered as the canary reference.
TEST(Canary, FirstSuspectMatchesOfflinePerLayerDrift) {
  constexpr std::uint64_t kSeed = 401;
  // Multiplicative weight bugs cap out low under range normalization (the
  // reference range grows with the same factor), so the threshold sits below
  // per_layer_drift's 0.1 default: c2 lands at ~0.063, clean layers at 0.
  constexpr double kThreshold = 0.05;
  const std::string bug_layer = "c2";
  BuiltinOpResolver opt;
  Pcg32 rng_prod(kSeed);
  Graph prod = conv_stack_model(&rng_prod);
  Graph reference = perturbed_conv_stack(kSeed, bug_layer, 1.75f);

  Pcg32 drng(402);
  std::vector<Tensor> inputs;
  for (int i = 0; i < 6; ++i) {
    inputs.push_back(random_input(Shape{1, 16, 16, 8}, drng));
  }

  // Online: serve `prod`, shadow every release through the bug variant.
  Engine engine(&opt);
  engine.load("m", prod);
  CanaryOptions copts;
  copts.shadow_every = 1;
  copts.drift_threshold = kThreshold;
  engine.enable_canary("m", reference, nullptr, copts);
  std::vector<CanaryShadowEvent> events;
  engine.set_canary_observer(
      "m", [&](const CanaryShadowEvent& e) { events.push_back(e); });
  for (const Tensor& in : inputs) {
    SessionLease lease = engine.acquire("m");
    lease->set_input(0, in);
    lease->invoke();
  }
  const CanaryReport online = engine.canary_report("m");

  // Offline: full traces of the same two pipelines over the same inputs,
  // through the paper's per-layer validation.
  MonitorOptions mopts;
  mopts.per_layer_outputs = true;
  Trace edge_trace, ref_trace;
  {
    Pcg32 rng_again(kSeed);
    Graph prod_again = conv_stack_model(&rng_again);
    Interpreter interp(&prod_again, &opt);
    EdgeMLMonitor monitor(mopts);
    monitor.observe(interp);
    for (const Tensor& in : inputs) {
      interp.set_input(0, in);
      monitor.on_inf_start();
      interp.invoke();
      monitor.on_inf_stop(interp);
      monitor.next_frame();
    }
    edge_trace = monitor.take_trace();
    monitor.unobserve(interp);
  }
  {
    Graph ref_again = perturbed_conv_stack(kSeed, bug_layer, 1.75f);
    Interpreter interp(&ref_again, &opt);
    EdgeMLMonitor monitor(mopts);
    monitor.observe(interp);
    for (const Tensor& in : inputs) {
      interp.set_input(0, in);
      monitor.on_inf_start();
      interp.invoke();
      monitor.on_inf_stop(interp);
      monitor.next_frame();
    }
    ref_trace = monitor.take_trace();
    monitor.unobserve(interp);
  }
  DeploymentValidator validator;
  const PerLayerReport offline = validator.per_layer_drift(
      edge_trace, ref_trace, ErrorMetric::kNormalizedRmse, kThreshold);

  ASSERT_TRUE(offline.first_suspect.has_value());
  EXPECT_EQ(*offline.first_suspect, bug_layer);
  ASSERT_TRUE(online.enabled);
  EXPECT_EQ(online.shadowed, inputs.size());
  EXPECT_EQ(online.skipped_busy, 0u);
  EXPECT_EQ(online.skipped_layout, 0u);
  EXPECT_EQ(online.reference_errors, 0u);
  ASSERT_TRUE(online.first_suspect.has_value());
  EXPECT_EQ(*online.first_suspect, *offline.first_suspect)
      << "streaming canary and offline per_layer_drift disagree";

  // Layer-by-layer: the canary's running means match the offline averages
  // (same metric, same frames), and layers before the bug are clean.
  ASSERT_EQ(online.layers.size(), offline.drifts.size());
  for (std::size_t i = 0; i < online.layers.size(); ++i) {
    EXPECT_EQ(online.layers[i].layer, offline.drifts[i].layer);
    EXPECT_NEAR(online.layers[i].mean_error, offline.drifts[i].error, 1e-9);
    EXPECT_EQ(online.layers[i].suspect, offline.drifts[i].suspect);
    EXPECT_EQ(online.layers[i].samples, inputs.size());
    if (online.layers[i].layer == bug_layer) break;
    EXPECT_LT(online.layers[i].mean_error, 1e-9)
        << "layer before the bug drifted: " << online.layers[i].layer;
  }

  // The shadow-event stream localized the divergence per frame too.
  ASSERT_EQ(events.size(), inputs.size());
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].shadow_index, i + 1);
    EXPECT_EQ(events[i].first_divergent_layer, bug_layer);
    EXPECT_GE(events[i].first_divergent_step, 0);
    EXPECT_GT(events[i].max_layer_error, kThreshold);
  }
}

TEST(Canary, SamplesConfiguredFractionAndSurfacesPoolStats) {
  BuiltinOpResolver opt;
  Pcg32 rng_a(411), rng_b(411);
  Engine engine(&opt);
  engine.load("m", conv_stack_model(&rng_a));
  CanaryOptions copts;
  copts.shadow_every = 4;
  engine.enable_canary("m", conv_stack_model(&rng_b), nullptr, copts);

  Pcg32 drng(412);
  Tensor input = random_input(Shape{1, 16, 16, 8}, drng);
  constexpr int kInvokes = 12;
  for (int i = 0; i < kInvokes; ++i) {
    SessionLease lease = engine.acquire("m");
    lease->set_input(0, input);
    lease->invoke();
  }

  const EnginePoolStats stats = engine.pool_stats("m");
  EXPECT_TRUE(stats.canary_enabled);
  EXPECT_EQ(stats.canary_shadowed, static_cast<std::uint64_t>(kInvokes) / 4);
  EXPECT_EQ(stats.canary_skipped, 0u);
  EXPECT_EQ(stats.canary_reference_errors, 0u);
  // Identical weights: nothing drifts, no suspects.
  EXPECT_EQ(stats.canary_suspect_layers, 0u);
  const CanaryReport report = engine.canary_report("m");
  EXPECT_EQ(report.shadowed, static_cast<std::uint64_t>(kInvokes) / 4);
  EXPECT_FALSE(report.first_suspect.has_value());
  for (const CanaryLayerDrift& layer : report.layers) {
    EXPECT_LT(layer.mean_error, 1e-9) << layer.layer;
  }

  EXPECT_TRUE(engine.disable_canary("m"));
  EXPECT_FALSE(engine.disable_canary("m"));
  EXPECT_FALSE(engine.canary_report("m").enabled);
  EXPECT_FALSE(engine.pool_stats("m").canary_enabled);
}

TEST(Canary, SurvivesHotSwapByRemappingLayerNames) {
  BuiltinOpResolver opt;
  Pcg32 rng_a(421), rng_ref(421);
  Engine engine(&opt);
  engine.load("m", conv_stack_model(&rng_a));
  CanaryOptions copts;
  copts.shadow_every = 1;
  engine.enable_canary("m", conv_stack_model(&rng_ref), nullptr, copts);

  Pcg32 drng(422);
  Tensor input = random_input(Shape{1, 16, 16, 8}, drng);
  auto serve_once = [&] {
    SessionLease lease = engine.acquire("m");
    lease->set_input(0, input);
    lease->invoke();
  };
  serve_once();
  EXPECT_EQ(engine.canary_report("m").shadowed, 1u);

  // Hot-swap to different weights (same names/layout): the canary remaps by
  // node name and keeps accumulating — now against a model that drifts.
  Pcg32 rng_b(423);
  engine.load("m", conv_stack_model(&rng_b));
  serve_once();
  serve_once();
  const CanaryReport report = engine.canary_report("m");
  EXPECT_EQ(report.shadowed, 3u);
  EXPECT_EQ(report.skipped_layout, 0u);
  // v2 has different weights than the reference, so drift is now nonzero.
  double worst = 0.0;
  for (const CanaryLayerDrift& layer : report.layers) {
    worst = std::max(worst, layer.mean_error);
  }
  EXPECT_GT(worst, 0.0);

  // A swap to an incompatible input layout stops shadowing (counted, not
  // crashed) instead of replaying mismatched inputs through the reference.
  Pcg32 rng_c(424);
  GraphBuilder b("stack", &rng_c);
  int x = b.input(Shape{1, 8, 8, 4});
  int fc = b.fully_connected(x, 10, Activation::kNone, "fc");
  engine.load("m", b.finish({fc}));
  {
    SessionLease lease = engine.acquire("m");
    Tensor small = random_input(Shape{1, 8, 8, 4}, drng);
    lease->set_input(0, small);
    lease->invoke();
  }
  const CanaryReport after = engine.canary_report("m");
  EXPECT_EQ(after.shadowed, 3u) << "mismatched layout must not be shadowed";
  EXPECT_EQ(after.skipped_layout, 1u);
}

// --- fleet aggregation -------------------------------------------------------

// Records a digest-only trace of `frames` invokes of `graph`.
Trace record_digest_trace(Graph& graph, const BuiltinOpResolver& opt,
                          std::uint64_t input_seed, int frames) {
  Interpreter interp(&graph, &opt);
  MonitorOptions opts;
  opts.per_layer_digests = true;
  EdgeMLMonitor monitor(opts);
  monitor.observe(interp);
  Pcg32 drng(input_seed);
  for (int i = 0; i < frames; ++i) {
    interp.set_input(0, random_input(Shape{1, 16, 16, 8}, drng));
    monitor.on_inf_start();
    interp.invoke();
    monitor.on_inf_stop(interp);
    monitor.next_frame();
  }
  Trace t = monitor.take_trace();
  monitor.unobserve(interp);
  return t;
}

TEST(FleetAggregator, RanksOutlierDeviceAndLocalizesSuspectLayer) {
  constexpr std::uint64_t kSeed = 431;
  // Sits between the healthy devices' input+sketch sampling noise (<= ~0.087
  // at fc over 16 merged frames) and the bug device's drift at the perturbed
  // layer (~0.185 at c2); all runs are seeded, so the margin is
  // deterministic.
  constexpr double kThreshold = 0.12;
  const std::string bug_layer = "c2";
  BuiltinOpResolver opt;

  // Reference: a raw per-layer-output trace (workstation run) — the
  // aggregator digests it on the fly.
  Trace ref_trace;
  {
    Pcg32 rng(kSeed);
    Graph g = conv_stack_model(&rng);
    Interpreter interp(&g, &opt);
    MonitorOptions opts;
    opts.per_layer_outputs = true;
    EdgeMLMonitor monitor(opts);
    monitor.observe(interp);
    Pcg32 drng(4310);
    for (int i = 0; i < 16; ++i) {
      interp.set_input(0, random_input(Shape{1, 16, 16, 8}, drng));
      monitor.on_inf_start();
      interp.invoke();
      monitor.on_inf_stop(interp);
      monitor.next_frame();
    }
    ref_trace = monitor.take_trace();
    monitor.unobserve(interp);
  }

  // Two healthy devices (same model, device-local inputs) and one device
  // running the bug-emulation variant.
  Pcg32 rng_g1(kSeed), rng_g2(kSeed);
  Graph good1 = conv_stack_model(&rng_g1);
  Graph good2 = conv_stack_model(&rng_g2);
  Graph bad = perturbed_conv_stack(kSeed, bug_layer, 1.75f);
  Trace t_good1 = record_digest_trace(good1, opt, 4321, 16);
  Trace t_good2 = record_digest_trace(good2, opt, 4322, 16);
  Trace t_bad = record_digest_trace(bad, opt, 4323, 16);

  DriftAggregator agg(kThreshold);
  agg.set_reference(ref_trace);
  agg.add_trace("device-good-1", t_good1);
  agg.add_trace("device-good-2", t_good2);
  agg.add_trace("device-bad", t_bad);
  EXPECT_EQ(agg.device_count(), 3u);
  EXPECT_EQ(agg.frame_count(), 48u);

  const FleetReport report = agg.report();
  EXPECT_EQ(report.devices, 3u);
  ASSERT_EQ(report.outliers.size(), 3u);
  EXPECT_EQ(report.outliers[0].device_id, "device-bad")
      << "outlier ranking did not surface the bug-emulation device first";
  EXPECT_GT(report.outliers[0].max_drift, kThreshold);
  ASSERT_TRUE(report.outliers[0].first_suspect.has_value());
  EXPECT_EQ(*report.outliers[0].first_suspect, bug_layer);
  // Healthy devices stay under threshold at every layer.
  for (std::size_t i = 1; i < report.outliers.size(); ++i) {
    EXPECT_FALSE(report.outliers[i].first_suspect.has_value())
        << report.outliers[i].device_id;
    EXPECT_LT(report.outliers[i].max_drift, kThreshold);
  }
  // The fleet verdict is the modal per-device first suspect.
  ASSERT_TRUE(report.first_suspect.has_value());
  EXPECT_EQ(*report.first_suspect, bug_layer);
  // One bad device out of three: no layer's p50 crosses the threshold, so
  // nothing is flagged fleet-wide (the outlier ranking carries the signal).
  for (const FleetLayerDrift& layer : report.layers) {
    EXPECT_FALSE(layer.suspect) << layer.layer;
    EXPECT_EQ(layer.devices, 3u);
    EXPECT_LE(layer.min_drift, layer.p50_drift);
    EXPECT_LE(layer.p50_drift, layer.p90_drift);
    EXPECT_LE(layer.p90_drift, layer.max_drift);
  }

  const std::string rendered = render_fleet_report(report);
  EXPECT_NE(rendered.find("device-bad"), std::string::npos);
  EXPECT_NE(rendered.find("fleet first suspect: " + bug_layer),
            std::string::npos);

  // The offline digest validator reaches the same per-device verdict from
  // the digest-only trace (no raw tensors to diff pairwise).
  DeploymentValidator validator;
  const PerLayerReport bad_report =
      validator.per_layer_digest_drift(t_bad, ref_trace, kThreshold);
  ASSERT_TRUE(bad_report.first_suspect.has_value());
  EXPECT_EQ(*bad_report.first_suspect, bug_layer);
  const PerLayerReport good_report =
      validator.per_layer_digest_drift(t_good1, ref_trace, kThreshold);
  EXPECT_FALSE(good_report.first_suspect.has_value());
}

}  // namespace
}  // namespace mlexray
