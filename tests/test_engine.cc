// Concurrent serving: the Model/Session split and the Engine session pool.
//
// Locks in the prepare-once/serve-many contracts the serving API claims:
//  - sessions over one shared Model are bit-exact with a standalone
//    Interpreter, in f32 and int8;
//  - prepared storage is built once per Model: gemm_b_pack_events() does
//    not grow with session count, and every session reports the same
//    shared prepared_bytes;
//  - T threads invoking one Model through pooled Engine sessions produce
//    bit-identical outputs to a single session run sequentially;
//  - steady-state acquire/invoke/release performs zero heap allocations,
//    enforced with the same operator-new counter + AllocStats events
//    test_kernel_grid.cc uses for bare invoke;
//  - releasing a lease returns the session to the free list and a later
//    acquire reuses it (same pointer, observer cleared).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <new>
#include <string>
#include <thread>
#include <vector>

#include "src/core/monitor.h"
#include "src/graph/builder.h"
#include "src/interpreter/engine.h"
#include "src/interpreter/interpreter.h"
#include "src/interpreter/invoke_observer.h"
#include "src/kernels/dwconv.h"
#include "src/kernels/gemm.h"
#include "src/quant/quantizer.h"
#include "src/tensor/alloc_stats.h"

// --- global operator new/delete instrumentation -----------------------------

namespace {
std::atomic<std::uint64_t> g_heap_allocs{0};
}  // namespace

void* operator new(std::size_t size) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  void* p = nullptr;
  if (posix_memalign(&p, static_cast<std::size_t>(align), size ? size : 1) != 0) {
    throw std::bad_alloc();
  }
  return p;
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace mlexray {
namespace {

Tensor random_input(Shape shape, Pcg32& rng) {
  Tensor t = Tensor::f32(shape);
  float* p = t.data<float>();
  for (std::int64_t i = 0; i < t.num_elements(); ++i) {
    p[i] = rng.uniform(-2.0f, 2.0f);
  }
  return t;
}

Graph conv_stack_graph(Pcg32* rng) {
  GraphBuilder b("stack", rng);
  int x = b.input(Shape{1, 16, 16, 8});
  int c1 = b.conv2d(x, 16, 3, 3, 1, Padding::kSame, Activation::kRelu, "c1");
  int d = b.depthwise_conv2d(c1, 3, 3, 2, Padding::kSame, Activation::kRelu6,
                             "dw");
  int c2 = b.conv2d(d, 16, 1, 1, 1, Padding::kSame, Activation::kNone, "c2");
  int fc = b.fully_connected(c2, 10, Activation::kNone, "fc");
  return b.finish({fc});
}

Graph quantized_conv_stack_graph(Pcg32* rng) {
  Graph m = conv_stack_graph(rng);
  Calibrator calib(&m);
  Pcg32 crng(172);
  for (int i = 0; i < 4; ++i) {
    calib.observe({random_input(Shape{1, 16, 16, 8}, crng)});
  }
  return quantize_model(m, calib);
}

void expect_bit_identical(const Tensor& a, const Tensor& b) {
  ASSERT_EQ(a.dtype(), b.dtype());
  ASSERT_EQ(a.byte_size(), b.byte_size());
  EXPECT_EQ(std::memcmp(a.raw_data(), b.raw_data(), a.byte_size()), 0);
}

// --- Model/Session sharing ---------------------------------------------------

TEST(ModelSessionSplit, TwoSessionsShareOnePreparedModel) {
  Pcg32 rng(71);
  Graph graph = conv_stack_graph(&rng);
  BuiltinOpResolver opt;

  // Standalone interpreter: the pre-split execution path.
  Interpreter interp(&graph, &opt);

  const std::uint64_t packs_before_model = gemm_b_pack_events();
  Model model(&graph, &opt);
  const std::uint64_t packs_for_model =
      gemm_b_pack_events() - packs_before_model;
  EXPECT_GT(model.prepared_bytes(), 0u);

  // Creating sessions must not re-pack anything: prepare ran once at Model
  // build.
  Session a(&model);
  Session b(&model);
  EXPECT_EQ(gemm_b_pack_events(), packs_before_model + packs_for_model)
      << "session construction re-packed GEMM B panels";

  // Both sessions report the same shared prepared storage.
  EXPECT_EQ(a.last_stats().prepared_bytes, model.prepared_bytes());
  EXPECT_EQ(b.last_stats().prepared_bytes, model.prepared_bytes());

  Pcg32 drng(72);
  Tensor x0 = random_input(Shape{1, 16, 16, 8}, drng);
  Tensor x1 = random_input(Shape{1, 16, 16, 8}, drng);

  // Interleave invokes across the two sessions with different inputs: each
  // session's activations are private, so results must match a standalone
  // interpreter bit-for-bit.
  a.set_input(0, x0);
  b.set_input(0, x1);
  a.invoke();
  b.invoke();
  interp.set_input(0, x0);
  interp.invoke();
  expect_bit_identical(a.output(0), interp.output(0));
  interp.set_input(0, x1);
  interp.invoke();
  expect_bit_identical(b.output(0), interp.output(0));

  EXPECT_EQ(gemm_b_pack_events(), packs_before_model + packs_for_model)
      << "invoking sessions re-packed GEMM B panels";
}

TEST(ModelSessionSplit, QuantizedSessionsMatchInterpreterBitExact) {
  Pcg32 rng(81);
  Graph qgraph = quantized_conv_stack_graph(&rng);
  BuiltinOpResolver opt;
  Interpreter interp(&qgraph, &opt);
  Model model(&qgraph, &opt);
  Session s(&model);
  EXPECT_GT(model.prepared_bytes(), 0u);

  Pcg32 drng(82);
  for (int i = 0; i < 3; ++i) {
    Tensor x = random_input(Shape{1, 16, 16, 8}, drng);
    s.set_input(0, x);
    s.invoke();
    interp.set_input(0, x);
    interp.invoke();
    expect_bit_identical(s.output(0), interp.output(0));
  }
}

TEST(ModelSessionSplit, ModelCanOwnItsGraph) {
  Pcg32 rng(91);
  BuiltinOpResolver opt;
  Pcg32 drng(92);
  Tensor x = random_input(Shape{1, 16, 16, 8}, drng);

  Graph graph = conv_stack_graph(&rng);
  Tensor want;
  {
    Interpreter interp(&graph, &opt);
    interp.set_input(0, x);
    interp.invoke();
    want = interp.output(0);  // deep copy: `graph` is about to be moved out
  }

  // Owning Model: the graph is moved in; the hollowed-out original must not
  // be referenced again (the non-owning Interpreter above is gone).
  Model model(std::move(graph), &opt);
  Session s(&model);
  s.set_input(0, x);
  s.invoke();
  expect_bit_identical(s.output(0), want);
}

// --- Engine pool -------------------------------------------------------------

TEST(EnginePool, LeaseReuseAndPoolAccounting) {
  Pcg32 rng(101);
  BuiltinOpResolver opt;
  Engine engine(&opt);
  engine.load("stack", conv_stack_graph(&rng));
  EXPECT_EQ(engine.model_count(), 1u);
  ASSERT_NE(engine.find("stack"), nullptr);
  EXPECT_EQ(engine.find("missing"), nullptr);

  Session* first = nullptr;
  {
    SessionLease lease = engine.acquire("stack");
    ASSERT_TRUE(lease);
    first = lease.get();
  }
  // Released back to the free list: the next acquire reuses the session.
  {
    SessionLease lease = engine.acquire("stack");
    EXPECT_EQ(lease.get(), first) << "free-listed session was not reused";
    // Two concurrent leases need a second session.
    SessionLease second = engine.acquire("stack");
    EXPECT_NE(second.get(), first);
    const EnginePoolStats stats = engine.pool_stats("stack");
    EXPECT_EQ(stats.sessions_created, 2u);
    EXPECT_EQ(stats.sessions_free, 0u);
    EXPECT_EQ(stats.leases_issued, 3u);
    EXPECT_GT(stats.prepared_bytes, 0u);
  }
  const EnginePoolStats stats = engine.pool_stats("stack");
  EXPECT_EQ(stats.sessions_created, 2u);
  EXPECT_EQ(stats.sessions_free, 2u);
}

TEST(EnginePool, ReleaseClearsObserver) {
  // A TraceBuffer left attached by a previous leaseholder must never fire
  // into freed memory for the next one.
  class CountingObserver : public InvokeObserver {
   public:
    void on_invoke_end(const SessionStats&) override { ++count; }
    int count = 0;
  };
  Pcg32 rng(111);
  BuiltinOpResolver opt;
  Engine engine(&opt);
  engine.load("stack", conv_stack_graph(&rng));
  CountingObserver observer;
  Pcg32 drng(112);
  Tensor x = random_input(Shape{1, 16, 16, 8}, drng);
  {
    SessionLease lease = engine.acquire("stack");
    lease->set_observer(&observer);
    lease->set_input(0, x);
    lease->invoke();
    EXPECT_EQ(observer.count, 1);
  }
  {
    SessionLease lease = engine.acquire("stack");
    EXPECT_EQ(lease->observer(), nullptr)
        << "released session kept its previous observer attached";
    lease->set_input(0, x);
    lease->invoke();
    EXPECT_EQ(observer.count, 1);
  }
}

TEST(EnginePool, MonitorReattachesToReacquiredSession) {
  // Engine::release clears the session's observer; a monitor re-observing
  // the same pooled session after a release/acquire round trip must
  // re-attach its buffer, not early-return on the pointer match.
  Pcg32 rng(115);
  BuiltinOpResolver opt;
  Engine engine(&opt);
  engine.load("stack", conv_stack_graph(&rng));
  EdgeMLMonitor monitor;
  Pcg32 drng(116);
  Tensor x = random_input(Shape{1, 16, 16, 8}, drng);
  Session* observed = nullptr;
  {
    SessionLease lease = engine.acquire("stack");
    observed = lease.get();
    monitor.observe(*lease);
    EXPECT_EQ(lease->observer(), &monitor.buffer());
    // No unobserve: releasing the lease clears the session's observer while
    // the monitor still points at it (single-threaded, so this is safe).
  }
  EXPECT_EQ(observed->observer(), nullptr);
  {
    SessionLease lease = engine.acquire("stack");
    ASSERT_EQ(lease.get(), observed);  // same pooled session came back
    monitor.observe(*lease);
    EXPECT_EQ(lease->observer(), &monitor.buffer())
        << "monitor did not re-attach to the re-acquired session";
    lease->set_input(0, x);
    monitor.on_inf_start();
    lease->invoke();
    monitor.on_inf_stop(*lease);
    EXPECT_TRUE(monitor.buffer().captured_invoke())
        << "push capture missed the invoke after re-observe";
    monitor.unobserve(*lease);
  }
}

TEST(EnginePool, SteadyStateAcquireInvokeReleaseIsHeapFree) {
  Pcg32 rng(121);
  BuiltinOpResolver opt;
  Engine engine(&opt);
  const std::string name = "stack";
  engine.load(name, conv_stack_graph(&rng));
  Pcg32 drng(122);
  Tensor x = random_input(Shape{1, 16, 16, 8}, drng);

  // Warm the pool (session built, arena grown) and the lease cycle.
  for (int i = 0; i < 2; ++i) {
    SessionLease lease = engine.acquire(name);
    lease->set_input(0, x);
    lease->invoke();
  }

  const std::uint64_t events_before = AllocStats::instance().alloc_events();
  const std::size_t bytes_before = AllocStats::instance().current_bytes();
  const std::uint64_t gemm_packs_before = gemm_b_pack_events();
  const std::uint64_t dw_packs_before = dwconv_pack_events();
  const std::uint64_t heap_before = g_heap_allocs.load();
  for (int i = 0; i < 5; ++i) {
    SessionLease lease = engine.acquire(name);
    lease->set_input(0, x);
    // The guarded path shares the plain invoke()'s zero-alloc walk; checking
    // it here keeps the serving entry point honest too.
    EXPECT_TRUE(lease->try_invoke().ok());
    lease.release();
  }
  EXPECT_EQ(AllocStats::instance().alloc_events(), events_before)
      << "steady-state serving registered new tensor/arena allocations";
  EXPECT_EQ(AllocStats::instance().current_bytes(), bytes_before);
  EXPECT_EQ(g_heap_allocs.load(), heap_before)
      << "steady-state acquire/try_invoke/release touched the heap";
  EXPECT_EQ(gemm_b_pack_events(), gemm_packs_before)
      << "steady-state serving re-packed GEMM B panels";
  EXPECT_EQ(dwconv_pack_events(), dw_packs_before)
      << "steady-state serving re-packed depthwise weights";
}

// --- versioned lifecycle -----------------------------------------------------

TEST(EngineLifecycle, HotSwapPinsOutstandingLeasesAndDrainsTheOldVersion) {
  Pcg32 rng_a(151);
  Pcg32 rng_b(152);
  BuiltinOpResolver opt;
  Engine engine(&opt);
  const std::string name = "stack";
  Pcg32 drng(153);
  Tensor x = random_input(Shape{1, 16, 16, 8}, drng);

  engine.load(name, conv_stack_graph(&rng_a));
  Tensor want_v1;
  {
    SessionLease lease = engine.acquire(name);
    EXPECT_EQ(lease.version(), 1u);
    lease->set_input(0, x);
    lease->invoke();
    want_v1 = lease->output(0);  // deep copy
  }

  // Hold a v1 lease across the swap: it must keep serving v1 bit-exactly.
  SessionLease pinned = engine.acquire(name);
  pinned->set_input(0, x);
  pinned->invoke();
  expect_bit_identical(pinned->output(0), want_v1);

  const std::size_t bytes_before_swap = AllocStats::instance().current_bytes();
  engine.load(name, conv_stack_graph(&rng_b));  // hot-swap to v2

  EnginePoolStats stats = engine.pool_stats(name);
  EXPECT_EQ(stats.serving_version, 2u);
  EXPECT_EQ(stats.live_versions, 2u);
  EXPECT_EQ(stats.draining_versions, 1u);
  EXPECT_EQ(stats.leases_outstanding, 1u);
  EXPECT_GT(stats.prepared_bytes_total, stats.prepared_bytes)
      << "draining v1's prepared storage should still be accounted";

  // New acquires land on v2, whose weights differ from v1.
  Tensor want_v2;
  {
    SessionLease lease = engine.acquire(name);
    EXPECT_EQ(lease.version(), 2u);
    lease->set_input(0, x);
    lease->invoke();
    want_v2 = lease->output(0);
    EXPECT_NE(
        std::memcmp(want_v2.raw_data(), want_v1.raw_data(), want_v2.byte_size()),
        0)
        << "v2 should produce different outputs (different random weights)";
  }

  // The pinned lease still runs v1 after the swap.
  pinned->set_input(0, x);
  pinned->invoke();
  expect_bit_identical(pinned->output(0), want_v1);

  // Releasing the last v1 lease retires the version: sessions + prepared
  // storage freed, tracked allocations drop below the pre-release level.
  const std::size_t bytes_before_release =
      AllocStats::instance().current_bytes();
  pinned.release();
  stats = engine.pool_stats(name);
  EXPECT_EQ(stats.live_versions, 1u);
  EXPECT_EQ(stats.draining_versions, 0u);
  EXPECT_EQ(stats.versions_retired, 1u);
  EXPECT_EQ(stats.leases_outstanding, 0u);
  EXPECT_LT(AllocStats::instance().current_bytes(), bytes_before_release)
      << "retiring v1 did not free its sessions/prepared storage";
  // want_v2 was deep-copied after the snapshot; everything else must be back.
  EXPECT_LE(AllocStats::instance().current_bytes(),
            bytes_before_swap + want_v2.byte_size())
      << "after the drain, residency should not exceed the pre-swap level";

  // v2 keeps serving, still bit-exact.
  SessionLease lease = engine.acquire(name);
  EXPECT_EQ(lease.version(), 2u);
  lease->set_input(0, x);
  lease->invoke();
  expect_bit_identical(lease->output(0), want_v2);
}

TEST(EngineLifecycle, HotSwapWithNoOutstandingLeasesRetiresImmediately) {
  Pcg32 rng_a(155);
  Pcg32 rng_b(156);
  BuiltinOpResolver opt;
  Engine engine(&opt);
  engine.load("stack", conv_stack_graph(&rng_a));
  {
    SessionLease lease = engine.acquire("stack");  // build + pool a session
  }
  engine.load("stack", conv_stack_graph(&rng_b));
  const EnginePoolStats stats = engine.pool_stats("stack");
  EXPECT_EQ(stats.serving_version, 2u);
  EXPECT_EQ(stats.live_versions, 1u);
  EXPECT_EQ(stats.versions_retired, 1u);
  EXPECT_EQ(stats.sessions_destroyed, 1u) << "v1's pooled session";
  EXPECT_EQ(stats.prepared_bytes_total, stats.prepared_bytes);
}

TEST(EngineLifecycle, UnloadHidesTheNameWhileHeldLeasesKeepWorking) {
  Pcg32 rng(161);
  BuiltinOpResolver opt;
  Engine engine(&opt);
  const std::string name = "stack";
  Pcg32 drng(162);
  Tensor x = random_input(Shape{1, 16, 16, 8}, drng);

  const std::size_t bytes_baseline = AllocStats::instance().current_bytes();
  engine.load(name, conv_stack_graph(&rng));

  SessionLease held = engine.acquire(name);
  held->set_input(0, x);
  held->invoke();
  Tensor want = held->output(0);  // deep copy

  EXPECT_TRUE(engine.unload(name));
  EXPECT_FALSE(engine.unload(name)) << "second unload of the same name";
  EXPECT_FALSE(engine.unload("missing"));

  // Gone from every lookup surface immediately...
  EXPECT_EQ(engine.find(name), nullptr);
  EXPECT_EQ(engine.model_count(), 0u);
  EXPECT_FALSE(engine.try_acquire(name));
  EXPECT_THROW(engine.acquire(name), MlxError);

  // ...but the held lease still serves its pinned version bit-exactly.
  held->set_input(0, x);
  held->invoke();
  expect_bit_identical(held->output(0), want);

  // The last release frees everything the load allocated; drop the local
  // reference copy too so the baseline comparison is exact.
  held.release();
  want = Tensor();
  EXPECT_EQ(engine.prepared_bytes_total(), 0u);
  EXPECT_EQ(AllocStats::instance().current_bytes(), bytes_baseline)
      << "unload leaked tracked memory after the last lease released";
}

TEST(EngineLifecycle, ReloadAfterUnloadStartsAFreshVersionLineage) {
  Pcg32 rng_a(165);
  Pcg32 rng_b(166);
  BuiltinOpResolver opt;
  Engine engine(&opt);
  engine.load("stack", conv_stack_graph(&rng_a));
  EXPECT_TRUE(engine.unload("stack"));
  engine.load("stack", conv_stack_graph(&rng_b));
  const EnginePoolStats stats = engine.pool_stats("stack");
  // A fresh lineage: version ids restart at 1 and no drained baggage remains.
  EXPECT_EQ(stats.serving_version, 1u);
  EXPECT_EQ(stats.live_versions, 1u);
  EXPECT_EQ(stats.versions_retired, 0u);
  SessionLease lease = engine.acquire("stack");
  EXPECT_EQ(lease.version(), 1u);
}

TEST(EngineLifecycle, TryAcquireReturnsEmptyForUnknownNames) {
  BuiltinOpResolver opt;
  Engine engine(&opt);
  SessionLease lease = engine.try_acquire("nope");
  EXPECT_FALSE(lease);
  EXPECT_EQ(lease.get(), nullptr);
  EXPECT_EQ(lease.version(), 0u);
  lease.release();  // releasing an empty lease is a no-op
  EXPECT_THROW(engine.acquire("nope"), MlxError);
}

TEST(EngineLifecycle, PreparedBudgetRefusesLoadsThatWouldExceedIt) {
  Pcg32 rng(171);
  BuiltinOpResolver opt;
  Engine engine(&opt);
  engine.load("first", conv_stack_graph(&rng));
  const std::size_t resident = engine.prepared_bytes_total();
  ASSERT_GT(resident, 0u);

  // Budget with room for one model only: a second name must be refused and
  // the registry left unchanged.
  engine.set_prepared_budget(resident + resident / 2);
  EXPECT_EQ(engine.prepared_budget(), resident + resident / 2);
  EXPECT_THROW(engine.load("second", conv_stack_graph(&rng)), MlxError);
  EXPECT_EQ(engine.model_count(), 1u);
  EXPECT_EQ(engine.find("second"), nullptr);
  EXPECT_EQ(engine.prepared_bytes_total(), resident);

  // A hot-swap of the existing name fits: the replaced version retires
  // immediately (no leases outstanding), so residency stays ~constant.
  engine.load("first", conv_stack_graph(&rng));
  EXPECT_EQ(engine.pool_stats("first").serving_version, 2u);
  EXPECT_LE(engine.prepared_bytes_total(), engine.prepared_budget());

  // With an outstanding lease pinning the serving version, the swap would
  // have to hold both versions resident — over budget, so it is refused and
  // the serving version is unchanged.
  SessionLease pinned = engine.acquire("first");
  EXPECT_THROW(engine.load("first", conv_stack_graph(&rng)), MlxError);
  EXPECT_EQ(engine.pool_stats("first").serving_version, 2u);

  // Lifting the budget lets the same swap through.
  engine.set_prepared_budget(0);
  engine.load("first", conv_stack_graph(&rng));
  EXPECT_EQ(engine.pool_stats("first").serving_version, 3u);
}

TEST(EngineLifecycle, HotSwapUnderConcurrentLoadServesEveryRequestBitExact) {
  constexpr int kThreads = 4;
  constexpr int kInvokesPerThread = 24;
  Pcg32 rng_a(181);
  Pcg32 rng_b(182);
  BuiltinOpResolver opt;
  const std::string name = "stack";
  Pcg32 drng(183);
  Tensor x = random_input(Shape{1, 16, 16, 8}, drng);

  Graph graph_a = conv_stack_graph(&rng_a);
  Graph graph_b = conv_stack_graph(&rng_b);

  // Expected outputs per version, computed on private models up front.
  Tensor want_v1, want_v2;
  {
    Model ma(&graph_a, &opt);
    Session sa(&ma);
    sa.set_input(0, x);
    sa.invoke();
    want_v1 = sa.output(0);
    Model mb(&graph_b, &opt);
    Session sb(&mb);
    sb.set_input(0, x);
    sb.invoke();
    want_v2 = sb.output(0);
  }

  Engine engine(&opt);
  engine.load(name, std::move(graph_a));

  std::atomic<int> mismatches{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&] {
      for (int i = 0; i < kInvokesPerThread; ++i) {
        SessionLease lease = engine.acquire(name);
        const std::uint64_t version = lease.version();
        lease->set_input(0, x);
        if (!lease->try_invoke().ok()) {
          failures.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        // Every request must be bit-exact with whichever version served it.
        const Tensor& want = version == 1 ? want_v1 : want_v2;
        const Tensor& got = lease->output(0);
        if (got.byte_size() != want.byte_size() ||
            std::memcmp(got.raw_data(), want.raw_data(), got.byte_size()) !=
                0) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  // Swap mid-flight.
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  engine.load(name, std::move(graph_b));
  for (std::thread& w : workers) w.join();

  EXPECT_EQ(mismatches.load(), 0)
      << "a request was not bit-exact with the version that served it";
  EXPECT_EQ(failures.load(), 0) << "hot-swap failed requests";

  // All leases are home: v1 must be fully drained and freed.
  const EnginePoolStats stats = engine.pool_stats(name);
  EXPECT_EQ(stats.serving_version, 2u);
  EXPECT_EQ(stats.live_versions, 1u);
  EXPECT_EQ(stats.draining_versions, 0u);
  EXPECT_EQ(stats.versions_retired, 1u);
  EXPECT_EQ(stats.leases_outstanding, 0u);
  EXPECT_EQ(stats.prepared_bytes_total, stats.prepared_bytes);

  // Residency after the drain: one version's worth of prepared storage, not
  // two.
  EXPECT_EQ(engine.prepared_bytes_total(), stats.prepared_bytes);
}

// --- concurrency -------------------------------------------------------------

TEST(EnginePool, ConcurrentThreadsOneModelBitExact) {
  constexpr int kThreads = 4;
  constexpr int kInvokesPerThread = 8;
  Pcg32 rng(131);
  BuiltinOpResolver opt;
  Engine engine(&opt);
  const std::string name = "stack";
  engine.load(name, conv_stack_graph(&rng));

  // Per-thread inputs and their expected outputs, computed sequentially on
  // one session up front.
  std::vector<Tensor> inputs;
  std::vector<Tensor> expected;
  {
    Pcg32 drng(132);
    SessionLease ref = engine.acquire(name);
    for (int t = 0; t < kThreads; ++t) {
      inputs.push_back(random_input(Shape{1, 16, 16, 8}, drng));
      ref->set_input(0, inputs.back());
      ref->invoke();
      expected.push_back(ref->output(0));  // deep copy
    }
  }

  const std::uint64_t packs_before = gemm_b_pack_events();
  std::vector<std::thread> workers;
  std::atomic<int> mismatches{0};
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < kInvokesPerThread; ++i) {
        SessionLease lease = engine.acquire(name);
        lease->set_input(0, inputs[static_cast<std::size_t>(t)]);
        lease->invoke();
        const Tensor& got = lease->output(0);
        const Tensor& want = expected[static_cast<std::size_t>(t)];
        if (got.byte_size() != want.byte_size() ||
            std::memcmp(got.raw_data(), want.raw_data(), got.byte_size()) !=
                0) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(mismatches.load(), 0)
      << "concurrent sessions over one Model diverged from the sequential "
         "reference";
  EXPECT_EQ(gemm_b_pack_events(), packs_before)
      << "concurrent serving re-packed GEMM B panels";
  const EnginePoolStats stats = engine.pool_stats(name);
  EXPECT_LE(stats.sessions_created, static_cast<std::size_t>(kThreads) + 1);
  EXPECT_EQ(stats.leases_issued,
            static_cast<std::uint64_t>(kThreads) * kInvokesPerThread + 1);
}

TEST(EnginePool, ConcurrentQuantizedThreadsBitExact) {
  constexpr int kThreads = 3;
  Pcg32 rng(141);
  BuiltinOpResolver opt;
  Engine engine(&opt);
  const std::string name = "stack_i8";
  engine.load(name, quantized_conv_stack_graph(&rng));

  Pcg32 drng(142);
  Tensor x = random_input(Shape{1, 16, 16, 8}, drng);
  Tensor want;
  {
    SessionLease ref = engine.acquire(name);
    ref->set_input(0, x);
    ref->invoke();
    want = ref->output(0);
  }

  std::vector<std::thread> workers;
  std::atomic<int> mismatches{0};
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&] {
      for (int i = 0; i < 6; ++i) {
        SessionLease lease = engine.acquire(name);
        lease->set_input(0, x);
        lease->invoke();
        const Tensor& got = lease->output(0);
        if (got.byte_size() != want.byte_size() ||
            std::memcmp(got.raw_data(), want.raw_data(), got.byte_size()) !=
                0) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(mismatches.load(), 0);
}

// --- composable threading ----------------------------------------------------
//
// A multi-threaded Engine gives every Model one shared bounded worker set
// with num_threads as a per-job participant cap. The tests below are the
// oversubscription story: T caller threads x a multi-threaded model must
// stay bit-exact, allocation-free in steady state, and must not serialize
// across models. They run under TSan in CI.

TEST(EngineThreading, ModelsShareTheEnginePoolWithHonoredCaps) {
  Pcg32 rng(151);
  BuiltinOpResolver opt;
  Engine engine(&opt, /*num_threads=*/3);
  engine.load("a", conv_stack_graph(&rng));
  engine.load("b", conv_stack_graph(&rng));
  const Model* a = engine.find("a");
  const Model* b = engine.find("b");
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  // One engine-wide worker set, not one per model. Owned pools are sized by
  // ThreadPool::workers_for (at most num_threads - 1, clamped to the host's
  // spare cores), so expectations are derived from the same rule.
  const std::size_t engine_workers = ThreadPool::workers_for(3);
  EXPECT_NE(a->pool().get(), nullptr);
  EXPECT_EQ(a->pool().get(), b->pool().get());
  EXPECT_EQ(a->pool().get()->size(), engine_workers);
  // ...with num_threads as each model's hard participant cap.
  EXPECT_EQ(a->thread_cap(), 3);
  EXPECT_EQ(a->pool().parallelism(),
            std::min<std::size_t>(3, engine_workers + 1));

  // A standalone Model owns its bounded worker set and honors the cap too.
  const std::size_t solo_workers = ThreadPool::workers_for(2);
  Graph g = conv_stack_graph(&rng);
  Model solo(&g, &opt, /*num_threads=*/2);
  ASSERT_NE(solo.pool().get(), nullptr);
  EXPECT_NE(solo.pool().get(), a->pool().get());
  EXPECT_EQ(solo.pool().get()->size(), solo_workers);
  EXPECT_EQ(solo.pool().parallelism(),
            std::min<std::size_t>(2, solo_workers + 1));
  EXPECT_EQ(solo.thread_cap(), 2);

  // num_threads == 1 means inline kernels: no pool at all.
  Model single(&g, &opt, /*num_threads=*/1);
  EXPECT_EQ(single.pool().get(), nullptr);
  EXPECT_EQ(single.pool().parallelism(), 1u);
}

// Two models invoking "concurrently" must overlap their parallel_for jobs on
// the shared engine pool — measured with barrier-instrumented bodies
// submitted through each model's own capped pool view. With the old
// one-job-at-a-time pool the second body could never start while the first
// waited, and the rendezvous timed out.
TEST(EngineThreading, CrossModelJobsOverlapOnTheSharedPool) {
  Pcg32 rng(153);
  BuiltinOpResolver opt;
  Engine engine(&opt, /*num_threads=*/2);
  engine.load("a", conv_stack_graph(&rng));
  engine.load("b", conv_stack_graph(&rng));
  const PoolRef pool_a = engine.find("a")->pool();
  const PoolRef pool_b = engine.find("b")->pool();
  ASSERT_EQ(pool_a.get(), pool_b.get());

  std::mutex mu;
  std::condition_variable cv;
  int arrived = 0;
  std::atomic<int> overlap_failures{0};
  auto submit = [&](PoolRef pool) {
    std::atomic<int> covered{0};
    pool.parallel_for(
        0, 8,
        [&](std::size_t lo, std::size_t hi) {
          if (lo == 0) {
            std::unique_lock<std::mutex> lock(mu);
            ++arrived;
            cv.notify_all();
            if (!cv.wait_for(lock, std::chrono::seconds(20),
                             [&] { return arrived >= 2; })) {
              overlap_failures.fetch_add(1);
            }
          }
          covered.fetch_add(static_cast<int>(hi - lo));
        },
        /*min_chunk=*/1);
    EXPECT_EQ(covered.load(), 8);
  };
  std::thread ta([&] { submit(pool_a); });
  std::thread tb([&] { submit(pool_b); });
  ta.join();
  tb.join();
  EXPECT_EQ(overlap_failures.load(), 0)
      << "jobs from two models serialized on the shared engine pool";
}

// T caller threads oversubscribing a multi-threaded model: outputs stay
// bit-exact vs the single-threaded reference (row-partitioned GEMM keeps
// each output's accumulation order), f32 and int8, across models running
// simultaneously.
TEST(EngineThreading, OversubscribedMultiThreadedSessionsStayBitExact) {
  constexpr int kThreads = 4;
  constexpr int kInvokes = 6;
  Pcg32 rng(157);
  BuiltinOpResolver opt;
  Graph f32_graph = conv_stack_graph(&rng);
  Graph i8_graph = quantized_conv_stack_graph(&rng);

  // Single-threaded reference outputs.
  Pcg32 drng(158);
  Tensor x = random_input(Shape{1, 16, 16, 8}, drng);
  Tensor want_f32, want_i8;
  {
    Interpreter ref_f32(&f32_graph, &opt, /*num_threads=*/1);
    ref_f32.set_input(0, x);
    ref_f32.invoke();
    want_f32 = ref_f32.output(0);
    Interpreter ref_i8(&i8_graph, &opt, /*num_threads=*/1);
    ref_i8.set_input(0, x);
    ref_i8.invoke();
    want_i8 = ref_i8.output(0);
  }

  Engine engine(&opt, /*num_threads=*/3);
  engine.load("f32", std::move(f32_graph));
  engine.load("i8", std::move(i8_graph));

  std::vector<std::thread> workers;
  std::atomic<int> mismatches{0};
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      const std::string name = (t % 2 == 0) ? "f32" : "i8";
      const Tensor& want = (t % 2 == 0) ? want_f32 : want_i8;
      for (int i = 0; i < kInvokes; ++i) {
        SessionLease lease = engine.acquire(name);
        lease->set_input(0, x);
        lease->invoke();
        const Tensor& got = lease->output(0);
        if (got.byte_size() != want.byte_size() ||
            std::memcmp(got.raw_data(), want.raw_data(), got.byte_size()) !=
                0) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(mismatches.load(), 0)
      << "oversubscribed multi-threaded sessions diverged from the "
         "single-threaded reference";
}

// Steady-state acquire/invoke/release through a MULTI-threaded model is as
// heap-free as the single-threaded path: pool submission uses fixed job
// slots and FunctionRef bodies, never task objects.
TEST(EngineThreading, MultiThreadedSteadyStateInvokeIsHeapFree) {
  Pcg32 rng(163);
  BuiltinOpResolver opt;
  Engine engine(&opt, /*num_threads=*/3);
  engine.load("stack", conv_stack_graph(&rng));
  Pcg32 drng(164);
  Tensor x = random_input(Shape{1, 16, 16, 8}, drng);

  // Warm up: session built, arena high-water reached, pool workers latched
  // at least one job each.
  for (int i = 0; i < 4; ++i) {
    SessionLease lease = engine.acquire("stack");
    lease->set_input(0, x);
    lease->invoke();
  }

  const std::uint64_t heap_before = g_heap_allocs.load();
  const std::uint64_t events_before = AllocStats::instance().alloc_events();
  const std::uint64_t packs_before = gemm_b_pack_events();
  for (int i = 0; i < 16; ++i) {
    SessionLease lease = engine.acquire("stack");
    lease->set_input(0, x);
    lease->invoke();
  }
  EXPECT_EQ(g_heap_allocs.load(), heap_before)
      << "multi-threaded steady-state invoke hit operator new";
  EXPECT_EQ(AllocStats::instance().alloc_events(), events_before);
  EXPECT_EQ(gemm_b_pack_events(), packs_before);
}

}  // namespace
}  // namespace mlexray
