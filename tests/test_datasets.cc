#include <gtest/gtest.h>

#include <cstring>

#include "src/datasets/detection_metrics.h"
#include "src/datasets/synth_image.h"
#include "src/datasets/synth_seg.h"
#include "src/datasets/synth_speech.h"
#include "src/datasets/synth_text.h"
#include "src/tensor/tensor_stats.h"

namespace mlexray {
namespace {

TEST(SynthImageNet, DeterministicAndBalanced) {
  auto a = SynthImageNet::make(3, 42);
  auto b = SynthImageNet::make(3, 42);
  ASSERT_EQ(a.size(), 36u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].label, b[i].label);
    EXPECT_EQ(0, std::memcmp(a[i].image_u8.raw_data(), b[i].image_u8.raw_data(),
                             a[i].image_u8.byte_size()));
  }
  int counts[SynthImageNet::kClasses] = {0};
  for (const auto& ex : a) ++counts[ex.label];
  for (int c : counts) EXPECT_EQ(c, 3);
}

TEST(SynthImageNet, ColorClassesAreColorDominant) {
  Pcg32 rng(7);
  Tensor red = SynthImageNet::render(0, rng);
  Tensor blue = SynthImageNet::render(1, rng);
  auto channel_sum = [](const Tensor& img, int ch) {
    const std::uint8_t* p = img.data<std::uint8_t>();
    long sum = 0;
    for (std::int64_t i = 0; i < img.num_elements() / 3; ++i) sum += p[i * 3 + ch];
    return sum;
  };
  EXPECT_GT(channel_sum(red, 0), channel_sum(red, 2));   // red blob: R > B
  EXPECT_GT(channel_sum(blue, 2), channel_sum(blue, 0)); // blue blob: B > R
}

TEST(SynthImageNet, OrientationPairRelatedByRotation) {
  // Horizontal stripes rotated 90 degrees look like vertical stripes:
  // row-variance vs column-variance must flip.
  Pcg32 rng(8);
  Tensor h = SynthImageNet::render(4, rng);
  auto row_col_var = [](const Tensor& img) {
    const std::uint8_t* p = img.data<std::uint8_t>();
    const int n = SynthImageNet::kSensorSize;
    double row_var = 0.0, col_var = 0.0;
    std::vector<double> row_means(n, 0.0), col_means(n, 0.0);
    for (int y = 0; y < n; ++y) {
      for (int x = 0; x < n; ++x) {
        double v = p[(y * n + x) * 3];
        row_means[y] += v / n;
        col_means[x] += v / n;
      }
    }
    double rm = 0, cm = 0;
    for (int i = 0; i < n; ++i) { rm += row_means[i] / n; cm += col_means[i] / n; }
    for (int i = 0; i < n; ++i) {
      row_var += (row_means[i] - rm) * (row_means[i] - rm);
      col_var += (col_means[i] - cm) * (col_means[i] - cm);
    }
    return std::pair(row_var, col_var);
  };
  auto [h_row, h_col] = row_col_var(h);
  EXPECT_GT(h_row, 10 * h_col);  // horizontal stripes: strong row structure
}

TEST(SynthCoco, ObjectsWithinBounds) {
  auto scenes = SynthCoco::make(20, 11);
  for (const auto& scene : scenes) {
    EXPECT_GE(scene.objects.size(), 1u);
    for (const DetObject& o : scene.objects) {
      EXPECT_GE(o.cx - o.w / 2, -1e-3f);
      EXPECT_LE(o.cx + o.w / 2, 1.0f + 1e-3f);
      EXPECT_GE(o.cls, 0);
      EXPECT_LT(o.cls, SynthCoco::kClasses);
    }
  }
}

TEST(SynthSpeech, ClassesHaveDistinctSpectra) {
  Pcg32 rng(5);
  auto low = SynthSpeech::render(0, rng);
  auto high = SynthSpeech::render(1, rng);
  // Compare energy above/below a frequency split via zero crossings.
  auto zero_crossings = [](const std::vector<float>& w) {
    int n = 0;
    for (std::size_t i = 1; i < w.size(); ++i) {
      if ((w[i] > 0) != (w[i - 1] > 0)) ++n;
    }
    return n;
  };
  EXPECT_GT(zero_crossings(high), 2 * zero_crossings(low));
}

TEST(SynthImdb, LabelsAreBalancedEnough) {
  auto data = SynthImdb::make(400, 13);
  int pos = 0;
  for (const auto& ex : data) pos += ex.label;
  EXPECT_GT(pos, 120);
  EXPECT_LT(pos, 280);
}

TEST(SynthImdb, SentimentWordsPresent) {
  auto data = SynthImdb::make(50, 17);
  const auto corpus = SynthImdb::corpus_words();
  for (const auto& ex : data) {
    EXPECT_FALSE(ex.text.empty());
  }
}

TEST(SynthSeg, MaskMatchesImageShapes) {
  auto data = SynthSeg::make(5, 3);
  for (const auto& ex : data) {
    EXPECT_EQ(ex.image_u8.shape(), (Shape{SynthSeg::kSize, SynthSeg::kSize, 3}));
    EXPECT_EQ(ex.mask.shape(), (Shape{SynthSeg::kSize, SynthSeg::kSize}));
    const std::int32_t* m = ex.mask.data<std::int32_t>();
    bool has_fg = false;
    for (std::int64_t i = 0; i < ex.mask.num_elements(); ++i) {
      EXPECT_GE(m[i], 0);
      EXPECT_LT(m[i], SynthSeg::kClasses);
      has_fg |= m[i] != 0;
    }
    EXPECT_TRUE(has_fg);
  }
}

TEST(SynthSeg, PerfectPredictionScoresFullIou) {
  auto data = SynthSeg::make(3, 4);
  std::vector<Tensor> perfect;
  for (const auto& ex : data) perfect.push_back(ex.mask);
  EXPECT_DOUBLE_EQ(SynthSeg::mean_iou(perfect, data), 1.0);
}

// --- detection metrics ---

TEST(DetectionMetrics, IouExactCases) {
  DetObject a{0.5f, 0.5f, 0.2f, 0.2f, 0};
  DetObject b = a;
  EXPECT_NEAR(box_iou(a, b), 1.0f, 1e-6);
  DetObject c{0.9f, 0.9f, 0.1f, 0.1f, 0};
  EXPECT_NEAR(box_iou(a, c), 0.0f, 1e-6);
  // Half-overlapping boxes.
  DetObject d{0.6f, 0.5f, 0.2f, 0.2f, 0};
  EXPECT_NEAR(box_iou(a, d), (0.1f * 0.2f) / (2 * 0.04f - 0.1f * 0.2f), 1e-5);
}

TEST(DetectionMetrics, PerfectPredictionsScoreFullMap) {
  auto scenes = SynthCoco::make(10, 21);
  std::vector<std::vector<DetPrediction>> preds(scenes.size());
  for (std::size_t i = 0; i < scenes.size(); ++i) {
    for (const DetObject& o : scenes[i].objects) {
      preds[i].push_back({o.cx, o.cy, o.w, o.h, o.cls, 0.99f});
    }
  }
  EXPECT_NEAR(mean_average_precision(preds, scenes, SynthCoco::kClasses), 1.0,
              1e-9);
}

TEST(DetectionMetrics, EmptyPredictionsScoreZero) {
  auto scenes = SynthCoco::make(5, 22);
  std::vector<std::vector<DetPrediction>> preds(scenes.size());
  EXPECT_DOUBLE_EQ(
      mean_average_precision(preds, scenes, SynthCoco::kClasses), 0.0);
}

TEST(DetectionMetrics, WrongClassPredictionsScoreZero) {
  auto scenes = SynthCoco::make(5, 23);
  std::vector<std::vector<DetPrediction>> preds(scenes.size());
  for (std::size_t i = 0; i < scenes.size(); ++i) {
    for (const DetObject& o : scenes[i].objects) {
      preds[i].push_back(
          {o.cx, o.cy, o.w, o.h, (o.cls + 1) % SynthCoco::kClasses, 0.9f});
    }
  }
  EXPECT_LT(mean_average_precision(preds, scenes, SynthCoco::kClasses), 0.2);
}

TEST(DetectionMetrics, NmsSuppressesDuplicates) {
  std::vector<DetPrediction> preds = {
      {0.5f, 0.5f, 0.2f, 0.2f, 0, 0.9f},
      {0.51f, 0.5f, 0.2f, 0.2f, 0, 0.8f},  // overlaps the first
      {0.2f, 0.2f, 0.1f, 0.1f, 0, 0.7f},   // separate
      {0.5f, 0.5f, 0.2f, 0.2f, 1, 0.6f},   // other class survives
      {0.9f, 0.9f, 0.1f, 0.1f, 0, 0.1f},   // below score threshold
  };
  auto kept = non_max_suppression(preds, 0.5f, 0.3f);
  EXPECT_EQ(kept.size(), 3u);
  EXPECT_FLOAT_EQ(kept[0].score, 0.9f);
}

}  // namespace
}  // namespace mlexray
