// Opt-vs-ref kernel equivalence over a parameterized geometry/activation
// grid, plus steady-state allocation checks for the Prepare/Invoke split.
//
// Float parity is asserted to <= 4 ULP per element: the GEMM core
// accumulates each output bias-first in ascending k order — exactly the
// reference kernels' order — so the only tolerated difference is FMA
// contraction asymmetry between the two compiled loops (the compiler fuses
// mul+add in one and not the other; observed distance on GCC12/-march=native
// is 0-1 ULP). A geometry or ordering bug shows up as thousands of ULPs.
// Int8 parity is asserted to one quantum: the reference path requantizes
// through a double multiply while the optimized path uses the Q31
// fixed-point multiplier, an intentional (paper §4.4) one-step discrepancy.
//
// The allocation checks pin down the Prepare/Invoke contract from two
// angles: AllocStats events (tracked Tensor/arena buffers) and a global
// operator-new counter (any heap traffic at all, including std::function or
// std::vector churn inside kernels).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <new>

#include "src/graph/builder.h"
#include "src/interpreter/interpreter.h"
#include "src/quant/quantizer.h"
#include "src/tensor/alloc_stats.h"
#include "src/tensor/tensor_stats.h"

// --- global operator new/delete instrumentation -----------------------------

namespace {
std::atomic<std::uint64_t> g_heap_allocs{0};
}  // namespace

void* operator new(std::size_t size) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  void* p = nullptr;
  if (posix_memalign(&p, static_cast<std::size_t>(align), size ? size : 1) != 0) {
    throw std::bad_alloc();
  }
  return p;
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace mlexray {
namespace {

Tensor random_input(Shape shape, Pcg32& rng, float lo = -2.0f,
                    float hi = 2.0f) {
  Tensor t = Tensor::f32(shape);
  float* p = t.data<float>();
  for (std::int64_t i = 0; i < t.num_elements(); ++i) p[i] = rng.uniform(lo, hi);
  return t;
}

// Lexicographically ordered bit pattern of a float: adjacent representable
// floats differ by 1, so |a - b| counts ULPs across the value range.
std::int64_t float_lex_bits(float f) {
  std::int32_t bits;
  std::memcpy(&bits, &f, sizeof(bits));
  return bits >= 0 ? bits
                   : static_cast<std::int64_t>(
                         std::numeric_limits<std::int32_t>::min()) -
                         bits;
}

std::int64_t max_ulp_diff(const Tensor& a, const Tensor& b) {
  EXPECT_EQ(a.num_elements(), b.num_elements());
  const float* pa = a.data<float>();
  const float* pb = b.data<float>();
  std::int64_t worst = 0;
  for (std::int64_t i = 0; i < a.num_elements(); ++i) {
    worst = std::max(worst,
                     std::abs(float_lex_bits(pa[i]) - float_lex_bits(pb[i])));
  }
  return worst;
}

// One quantization step of a quantized model's (dequantized f32) output: the
// scale of the tensor feeding the trailing Dequantize node.
float output_quantum(const Model& qm) {
  const Node& out = qm.node(qm.outputs[0]);
  if (out.type == OpType::kDequantize) {
    return qm.node(out.inputs[0]).output_quant.scale();
  }
  return out.output_quant.scale();
}

struct GridCase {
  OpType op;
  Padding padding;
  int stride;
  Activation act;
  bool quantized;

  friend std::ostream& operator<<(std::ostream& os, const GridCase& c) {
    return os << op_type_name(c.op)
              << (c.padding == Padding::kSame ? "/Same" : "/Valid") << "/s"
              << c.stride << "/act" << static_cast<int>(c.act)
              << (c.quantized ? "/i8" : "/f32");
  }
};

std::vector<GridCase> make_grid() {
  std::vector<GridCase> grid;
  for (OpType op : {OpType::kConv2D, OpType::kDepthwiseConv2D}) {
    for (Padding padding : {Padding::kSame, Padding::kValid}) {
      for (int stride : {1, 2}) {
        for (Activation act :
             {Activation::kNone, Activation::kRelu, Activation::kRelu6}) {
          for (bool quantized : {false, true}) {
            grid.push_back({op, padding, stride, act, quantized});
          }
        }
      }
    }
  }
  // FullyConnected has no geometry axes; cover activation x dtype.
  for (Activation act :
       {Activation::kNone, Activation::kRelu, Activation::kRelu6}) {
    for (bool quantized : {false, true}) {
      grid.push_back({OpType::kFullyConnected, Padding::kSame, 1, act,
                      quantized});
    }
  }
  return grid;
}

class KernelGrid : public ::testing::TestWithParam<GridCase> {};

TEST_P(KernelGrid, OptMatchesRef) {
  const GridCase& c = GetParam();
  Pcg32 rng(1234);
  GraphBuilder b("grid", &rng);
  int x = b.input(Shape{1, 9, 9, 6});
  switch (c.op) {
    case OpType::kConv2D:
      b.conv2d(x, 8, 3, 3, c.stride, c.padding, c.act, "op");
      break;
    case OpType::kDepthwiseConv2D:
      b.depthwise_conv2d(x, 3, 3, c.stride, c.padding, c.act, "op");
      break;
    case OpType::kFullyConnected:
      b.fully_connected(x, 10, c.act, "op");
      break;
    default:
      MLX_FAIL() << "unexpected grid op";
  }
  Model m = b.finish({1});

  Pcg32 drng(77);
  Tensor input = random_input(Shape{1, 9, 9, 6}, drng);

  RefOpResolver ref;
  BuiltinOpResolver opt;
  if (!c.quantized) {
    Interpreter ri(&m, &ref);
    Interpreter oi(&m, &opt, /*num_threads=*/2);
    ri.set_input(0, input);
    oi.set_input(0, input);
    ri.invoke();
    oi.invoke();
    // Identical accumulation order: only FMA-contraction rounding may
    // differ — at most a few ULPs, where a real geometry bug is thousands.
    EXPECT_LE(max_ulp_diff(ri.output(0), oi.output(0)), 4) << c;
  } else {
    Calibrator calib(&m);
    Pcg32 crng(88);
    for (int i = 0; i < 6; ++i) {
      calib.observe({random_input(Shape{1, 9, 9, 6}, crng)});
    }
    calib.observe({input});
    Model qm = quantize_model(m, calib);
    Interpreter ri(&qm, &ref);
    Interpreter oi(&qm, &opt, /*num_threads=*/2);
    ri.set_input(0, input);
    oi.set_input(0, input);
    ri.invoke();
    oi.invoke();
    // Double-rescale (ref) vs Q31 fixed point (opt): at most one quantum.
    EXPECT_LE(linf_error(ri.output(0), oi.output(0)),
              1.001f * output_quantum(qm))
        << c;
  }
}

INSTANTIATE_TEST_SUITE_P(PaddingStrideActDtype, KernelGrid,
                         ::testing::ValuesIn(make_grid()));

// --- steady-state allocation behaviour --------------------------------------

Model conv_stack_model(Pcg32* rng) {
  GraphBuilder b("stack", rng);
  int x = b.input(Shape{1, 16, 16, 8});
  int p = b.pad(x, 1, 1, 1, 1, "pad");
  int c1 = b.conv2d(p, 16, 3, 3, 1, Padding::kValid, Activation::kRelu, "c1");
  int d = b.depthwise_conv2d(c1, 3, 3, 2, Padding::kSame, Activation::kRelu6,
                             "dw");
  int c2 = b.conv2d(d, 16, 1, 1, 1, Padding::kSame, Activation::kNone, "c2");
  int fc = b.fully_connected(c2, 10, Activation::kNone, "fc");
  return b.finish({fc});
}

TEST(SteadyStateAlloc, InvokeIsHeapFreeAfterWarmup) {
  Pcg32 rng(31);
  Model m = conv_stack_model(&rng);
  BuiltinOpResolver opt;
  Interpreter interp(&m, &opt, /*num_threads=*/2);
  Pcg32 drng(32);
  Tensor input = random_input(Shape{1, 16, 16, 8}, drng);
  interp.set_input(0, input);
  // First invoke may grow the scratch arena.
  interp.invoke();
  EXPECT_GT(interp.scratch_arena().capacity_bytes(), 0u);

  const std::uint64_t events_before = AllocStats::instance().alloc_events();
  const std::size_t bytes_before = AllocStats::instance().current_bytes();
  const std::uint64_t heap_before = g_heap_allocs.load();
  for (int i = 0; i < 5; ++i) interp.invoke();
  EXPECT_EQ(AllocStats::instance().alloc_events(), events_before)
      << "steady-state invoke() registered new tensor/arena allocations";
  EXPECT_EQ(AllocStats::instance().current_bytes(), bytes_before);
  EXPECT_EQ(g_heap_allocs.load(), heap_before)
      << "steady-state invoke() touched the heap (operator new)";
}

TEST(SteadyStateAlloc, QuantizedInvokeIsHeapFreeAfterWarmup) {
  Pcg32 rng(41);
  Model m = conv_stack_model(&rng);
  Calibrator calib(&m);
  Pcg32 crng(42);
  for (int i = 0; i < 4; ++i) {
    calib.observe({random_input(Shape{1, 16, 16, 8}, crng)});
  }
  Model qm = quantize_model(m, calib);
  BuiltinOpResolver opt;
  Interpreter interp(&qm, &opt, /*num_threads=*/2);
  Pcg32 drng(43);
  Tensor input = random_input(Shape{1, 16, 16, 8}, drng);
  interp.set_input(0, input);
  interp.invoke();

  const std::uint64_t events_before = AllocStats::instance().alloc_events();
  const std::uint64_t heap_before = g_heap_allocs.load();
  for (int i = 0; i < 5; ++i) interp.invoke();
  EXPECT_EQ(AllocStats::instance().alloc_events(), events_before);
  EXPECT_EQ(g_heap_allocs.load(), heap_before);
}

TEST(ScratchArenaTest, AllocationsAreAbsoluteAligned) {
  ScratchArena arena;
  for (int round = 0; round < 3; ++round) {
    // Odd sizes force unaligned bump positions between requests.
    (void)arena.allocate(13, 1);
    for (std::size_t align : {8u, 16u, 64u, 128u}) {
      void* p = arena.allocate(65, align);
      EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % align, 0u) << align;
    }
    // Force growth past the first block and re-check alignment there.
    void* big = arena.allocate(256 * 1024, 64);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(big) % 64, 0u);
    arena.reset();
  }
}

TEST(SteadyStateAlloc, ArenaIsReusedNotRegrown) {
  Pcg32 rng(51);
  Model m = conv_stack_model(&rng);
  BuiltinOpResolver opt;
  Interpreter interp(&m, &opt);
  Pcg32 drng(52);
  interp.set_input(0, random_input(Shape{1, 16, 16, 8}, drng));
  interp.invoke();
  const std::size_t capacity = interp.scratch_arena().capacity_bytes();
  const std::size_t high_water = interp.scratch_arena().high_water_bytes();
  EXPECT_GT(high_water, 0u);
  for (int i = 0; i < 3; ++i) interp.invoke();
  EXPECT_EQ(interp.scratch_arena().capacity_bytes(), capacity);
  EXPECT_EQ(interp.scratch_arena().high_water_bytes(), high_water);
}

}  // namespace
}  // namespace mlexray
