// Opt-vs-ref kernel equivalence over a parameterized geometry/activation
// grid, plus steady-state allocation checks for the Prepare/Invoke split.
//
// Float parity is asserted to <= 4 ULP per element: the GEMM core
// accumulates each output bias-first in ascending k order — exactly the
// reference kernels' order — so the only tolerated difference is FMA
// contraction asymmetry between the two compiled loops (the compiler fuses
// mul+add in one and not the other; observed distance on GCC12/-march=native
// is 0-1 ULP). A geometry or ordering bug shows up as thousands of ULPs.
// Int8 parity is asserted to one quantum: the reference path requantizes
// through a double multiply while the optimized path uses the Q31
// fixed-point multiplier, an intentional (paper §4.4) one-step discrepancy.
//
// The allocation checks pin down the Prepare/Invoke contract from two
// angles: AllocStats events (tracked Tensor/arena buffers) and a global
// operator-new counter (any heap traffic at all, including std::function or
// std::vector churn inside kernels).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <new>

#include "src/graph/builder.h"
#include "src/interpreter/interpreter.h"
#include "src/kernels/fixed_point.h"
#include "src/kernels/gemm.h"
#include "src/quant/quantizer.h"
#include "src/tensor/alloc_stats.h"
#include "src/tensor/tensor_stats.h"

// --- global operator new/delete instrumentation -----------------------------

namespace {
std::atomic<std::uint64_t> g_heap_allocs{0};
}  // namespace

void* operator new(std::size_t size) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  void* p = nullptr;
  if (posix_memalign(&p, static_cast<std::size_t>(align), size ? size : 1) != 0) {
    throw std::bad_alloc();
  }
  return p;
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace mlexray {
namespace {

Tensor random_input(Shape shape, Pcg32& rng, float lo = -2.0f,
                    float hi = 2.0f) {
  Tensor t = Tensor::f32(shape);
  float* p = t.data<float>();
  for (std::int64_t i = 0; i < t.num_elements(); ++i) p[i] = rng.uniform(lo, hi);
  return t;
}

// Lexicographically ordered bit pattern of a float: adjacent representable
// floats differ by 1, so |a - b| counts ULPs across the value range.
std::int64_t float_lex_bits(float f) {
  std::int32_t bits;
  std::memcpy(&bits, &f, sizeof(bits));
  return bits >= 0 ? bits
                   : static_cast<std::int64_t>(
                         std::numeric_limits<std::int32_t>::min()) -
                         bits;
}

std::int64_t max_ulp_diff(const Tensor& a, const Tensor& b) {
  EXPECT_EQ(a.num_elements(), b.num_elements());
  const float* pa = a.data<float>();
  const float* pb = b.data<float>();
  std::int64_t worst = 0;
  for (std::int64_t i = 0; i < a.num_elements(); ++i) {
    worst = std::max(worst,
                     std::abs(float_lex_bits(pa[i]) - float_lex_bits(pb[i])));
  }
  return worst;
}

// One quantization step of a quantized model's (dequantized f32) output: the
// scale of the tensor feeding the trailing Dequantize node.
float output_quantum(const Graph& qm) {
  const Node& out = qm.node(qm.outputs[0]);
  if (out.type == OpType::kDequantize) {
    return qm.node(out.inputs[0]).output_quant.scale();
  }
  return out.output_quant.scale();
}

struct GridCase {
  OpType op;
  Padding padding;
  int stride;
  Activation act;
  bool quantized;

  friend std::ostream& operator<<(std::ostream& os, const GridCase& c) {
    return os << op_type_name(c.op)
              << (c.padding == Padding::kSame ? "/Same" : "/Valid") << "/s"
              << c.stride << "/act" << static_cast<int>(c.act)
              << (c.quantized ? "/i8" : "/f32");
  }
};

std::vector<GridCase> make_grid() {
  std::vector<GridCase> grid;
  for (OpType op : {OpType::kConv2D, OpType::kDepthwiseConv2D}) {
    for (Padding padding : {Padding::kSame, Padding::kValid}) {
      for (int stride : {1, 2}) {
        for (Activation act :
             {Activation::kNone, Activation::kRelu, Activation::kRelu6}) {
          for (bool quantized : {false, true}) {
            grid.push_back({op, padding, stride, act, quantized});
          }
        }
      }
    }
  }
  // FullyConnected has no geometry axes; cover activation x dtype.
  for (Activation act :
       {Activation::kNone, Activation::kRelu, Activation::kRelu6}) {
    for (bool quantized : {false, true}) {
      grid.push_back({OpType::kFullyConnected, Padding::kSame, 1, act,
                      quantized});
    }
  }
  return grid;
}

class KernelGrid : public ::testing::TestWithParam<GridCase> {};

TEST_P(KernelGrid, OptMatchesRef) {
  const GridCase& c = GetParam();
  Pcg32 rng(1234);
  GraphBuilder b("grid", &rng);
  int x = b.input(Shape{1, 9, 9, 6});
  switch (c.op) {
    case OpType::kConv2D:
      b.conv2d(x, 8, 3, 3, c.stride, c.padding, c.act, "op");
      break;
    case OpType::kDepthwiseConv2D:
      b.depthwise_conv2d(x, 3, 3, c.stride, c.padding, c.act, "op");
      break;
    case OpType::kFullyConnected:
      b.fully_connected(x, 10, c.act, "op");
      break;
    default:
      MLX_FAIL() << "unexpected grid op";
  }
  Graph m = b.finish({1});

  Pcg32 drng(77);
  Tensor input = random_input(Shape{1, 9, 9, 6}, drng);

  RefOpResolver ref;
  BuiltinOpResolver opt;
  if (!c.quantized) {
    Interpreter ri(&m, &ref);
    Interpreter oi(&m, &opt, /*num_threads=*/2);
    ri.set_input(0, input);
    oi.set_input(0, input);
    ri.invoke();
    oi.invoke();
    // Identical accumulation order: only FMA-contraction rounding may
    // differ — at most a few ULPs, where a real geometry bug is thousands.
    EXPECT_LE(max_ulp_diff(ri.output(0), oi.output(0)), 4) << c;
  } else {
    Calibrator calib(&m);
    Pcg32 crng(88);
    for (int i = 0; i < 6; ++i) {
      calib.observe({random_input(Shape{1, 9, 9, 6}, crng)});
    }
    calib.observe({input});
    Graph qm = quantize_model(m, calib);
    Interpreter ri(&qm, &ref);
    Interpreter oi(&qm, &opt, /*num_threads=*/2);
    ri.set_input(0, input);
    oi.set_input(0, input);
    ri.invoke();
    oi.invoke();
    // Double-rescale (ref) vs Q31 fixed point (opt): at most one quantum.
    EXPECT_LE(linf_error(ri.output(0), oi.output(0)),
              1.001f * output_quantum(qm))
        << c;
  }
}

INSTANTIATE_TEST_SUITE_P(PaddingStrideActDtype, KernelGrid,
                         ::testing::ValuesIn(make_grid()));

// --- prepacked GEMM vs per-call paths ----------------------------------------

// Shapes exercise full panels plus a column edge: n = 20 is two f32 panels
// (8) + 4 edge columns, and for int8 one full 16-column panel plus 4
// padded columns in the second; odd k = 37 exercises the int8 pair
// microkernel's zero-padded tail.
struct GemmData {
  std::int64_t m, n, k;
  std::vector<float> a, b, bias;
  std::vector<std::int8_t> a8, b8;
  std::vector<std::int32_t> bias32, multipliers;
  std::vector<int> shifts;
  GemmQuant quant;

  GemmData(std::int64_t m_in, std::int64_t n_in, std::int64_t k_in,
           std::uint64_t seed)
      : m(m_in), n(n_in), k(k_in) {
    Pcg32 rng(seed);
    a.resize(static_cast<std::size_t>(m * k));
    b.resize(static_cast<std::size_t>(n * k));
    bias.resize(static_cast<std::size_t>(n));
    for (float& v : a) v = rng.uniform(-1, 1);
    for (float& v : b) v = rng.uniform(-1, 1);
    for (float& v : bias) v = rng.uniform(-1, 1);
    a8.resize(a.size());
    b8.resize(b.size());
    for (auto& v : a8) {
      v = static_cast<std::int8_t>(static_cast<int>(rng.next_below(255)) - 127);
    }
    for (auto& v : b8) {
      v = static_cast<std::int8_t>(static_cast<int>(rng.next_below(255)) - 127);
    }
    bias32.resize(static_cast<std::size_t>(n));
    multipliers.resize(static_cast<std::size_t>(n));
    shifts.resize(static_cast<std::size_t>(n));
    for (std::size_t j = 0; j < static_cast<std::size_t>(n); ++j) {
      bias32[j] = static_cast<std::int32_t>(rng.next_below(200)) - 100;
      quantize_multiplier(0.004 + 0.0001 * static_cast<double>(j),
                          &multipliers[j], &shifts[j]);
    }
    quant.a_zero_point = 5;
    quant.bias = bias32.data();
    quant.multipliers = multipliers.data();
    quant.shifts = shifts.data();
    quant.out_zero_point = -3;
  }

  std::vector<float> run_f32(bool prepacked) const {
    std::vector<float> c(static_cast<std::size_t>(m * n));
    if (prepacked) {
      std::vector<float> panels(
          static_cast<std::size_t>(packed_b_f32_floats(n, k)));
      pack_b_f32(n, k, b.data(), k, panels.data());
      PackedBF32 packed{panels.data(), n / kGemmNrF32};
      gemm_f32_nt(m, n, k, a.data(), k, b.data(), k, bias.data(),
                  Activation::kNone, c.data(), n, nullptr, nullptr, &packed);
    } else {
      ScratchArena arena;
      gemm_f32_nt(m, n, k, a.data(), k, b.data(), k, bias.data(),
                  Activation::kNone, c.data(), n, nullptr, &arena);
    }
    return c;
  }

  std::vector<std::int8_t> run_i8(bool prepacked) const {
    std::vector<std::int8_t> c(static_cast<std::size_t>(m * n));
    if (prepacked) {
      std::vector<std::int8_t> panels(
          static_cast<std::size_t>(packed_b_i8_bytes(n, k)));
      std::vector<std::int32_t> col_sums(static_cast<std::size_t>(n));
      pack_b_i8(n, k, b8.data(), k, panels.data(), col_sums.data());
      PackedBI8 packed{panels.data(), col_sums.data()};
      gemm_i8_nt(m, n, k, a8.data(), k, b8.data(), k, quant, c.data(), n,
                 nullptr, &packed);
    } else {
      gemm_i8_nt(m, n, k, a8.data(), k, b8.data(), k, quant, c.data(), n,
                 nullptr);
    }
    return c;
  }
};

std::int64_t max_ulp_diff_span(const std::vector<float>& x,
                               const std::vector<float>& y) {
  EXPECT_EQ(x.size(), y.size());
  std::int64_t worst = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    worst = std::max(worst,
                     std::abs(float_lex_bits(x[i]) - float_lex_bits(y[i])));
  }
  return worst;
}

// f32: the prepacked view and the per-call arena repack feed the same panel
// layout through the same tiles, so results are bit-identical.
TEST(PrepackedGemm, F32PrepackedMatchesRepackBitExact) {
  GemmData d(16, 20, 37, 901);
  const std::vector<float> repacked = d.run_f32(/*prepacked=*/false);
  const std::vector<float> prepacked = d.run_f32(/*prepacked=*/true);
  ASSERT_EQ(repacked.size(), prepacked.size());
  EXPECT_EQ(std::memcmp(repacked.data(), prepacked.data(),
                        repacked.size() * sizeof(float)),
            0);
}

// int8: the SIMD dot-product microkernel with epilogue zero-point correction
// must reproduce the scalar per-element-corrected path exactly (integer
// accumulation is order-free and exact).
TEST(PrepackedGemm, I8PrepackedMatchesScalarExact) {
  for (auto [m, n, k] : {std::array<std::int64_t, 3>{16, 20, 37},
                         std::array<std::int64_t, 3>{7, 9, 64},
                         std::array<std::int64_t, 3>{5, 4, 3}}) {
    GemmData d(m, n, k, 700 + static_cast<std::uint64_t>(m));
    EXPECT_EQ(d.run_i8(false), d.run_i8(true)) << m << "x" << n << "x" << k;
  }
}

// m == 1 (batch-1 fully-connected matvec): the prepacked path now routes
// through the packed tiles where the per-call path uses the scalar-chain
// matvec kernel — same bias-first k-ascending order per output, so only
// FMA-contraction rounding may differ. int8 stays exact.
TEST(PrepackedGemm, MatvecM1EdgeCase) {
  GemmData d(1, 24, 129, 903);
  EXPECT_LE(max_ulp_diff_span(d.run_f32(false), d.run_f32(true)), 4);
  EXPECT_EQ(d.run_i8(false), d.run_i8(true));
}

// m == 1 int8: the prepacked call dispatches to the k-major matvec kernel
// (raw B rows, SIMD widened-multiply accumulation) instead of the
// pair-interleaved panel microkernel. Integer accumulation is exact in any
// order and the col_sums zero-point epilogue is shared, so the matvec must
// match the scalar unpacked path bit-for-bit across column-chunk remainders
// (n % 4, n % 64) and k remainders (SIMD chunk tails, odd k).
TEST(PrepackedGemm, MatvecM1Int8KMajorMatchesScalarExact) {
  for (auto [n, k] : {std::array<std::int64_t, 2>{1, 1},
                      std::array<std::int64_t, 2>{3, 33},
                      std::array<std::int64_t, 2>{7, 64},
                      std::array<std::int64_t, 2>{17, 100},
                      std::array<std::int64_t, 2>{64, 96},
                      std::array<std::int64_t, 2>{65, 128},
                      std::array<std::int64_t, 2>{1001, 1024}}) {
    GemmData d(1, n, k, 950 + static_cast<std::uint64_t>(n));
    EXPECT_EQ(d.run_i8(false), d.run_i8(true)) << "1x" << n << "x" << k;
  }
}

// --- steady-state allocation behaviour --------------------------------------

Graph conv_stack_model(Pcg32* rng, int batch = 1) {
  GraphBuilder b("stack", rng);
  int x = b.input(Shape{batch, 16, 16, 8});
  int p = b.pad(x, 1, 1, 1, 1, "pad");
  int c1 = b.conv2d(p, 16, 3, 3, 1, Padding::kValid, Activation::kRelu, "c1");
  int d = b.depthwise_conv2d(c1, 3, 3, 2, Padding::kSame, Activation::kRelu6,
                             "dw");
  int c2 = b.conv2d(d, 16, 1, 1, 1, Padding::kSame, Activation::kNone, "c2");
  int fc = b.fully_connected(c2, 10, Activation::kNone, "fc");
  return b.finish({fc});
}

TEST(SteadyStateAlloc, InvokeIsHeapFreeAfterWarmup) {
  Pcg32 rng(31);
  Graph m = conv_stack_model(&rng);
  BuiltinOpResolver opt;
  Interpreter interp(&m, &opt, /*num_threads=*/2);
  // Prepare packed the conv/fc weights into plan-owned storage, so even the
  // first invoke performs no per-call f32 B repacking.
  EXPECT_GT(interp.plan().prepared_bytes(), 0u);
  EXPECT_EQ(interp.last_stats().prepared_bytes,
            interp.plan().prepared_bytes());
  const std::uint64_t packs_at_start = gemm_b_pack_events();
  Pcg32 drng(32);
  Tensor input = random_input(Shape{1, 16, 16, 8}, drng);
  interp.set_input(0, input);
  // First invoke may grow the scratch arena.
  interp.invoke();
  EXPECT_GT(interp.scratch_arena().capacity_bytes(), 0u);
  EXPECT_EQ(gemm_b_pack_events(), packs_at_start)
      << "prepacked conv/fc still repacked B on the first invoke";

  const std::uint64_t events_before = AllocStats::instance().alloc_events();
  const std::size_t bytes_before = AllocStats::instance().current_bytes();
  const std::uint64_t heap_before = g_heap_allocs.load();
  const std::size_t high_water_before =
      interp.scratch_arena().high_water_bytes();
  for (int i = 0; i < 5; ++i) interp.invoke();
  EXPECT_EQ(AllocStats::instance().alloc_events(), events_before)
      << "steady-state invoke() registered new tensor/arena allocations";
  EXPECT_EQ(AllocStats::instance().current_bytes(), bytes_before);
  EXPECT_EQ(g_heap_allocs.load(), heap_before)
      << "steady-state invoke() touched the heap (operator new)";
  EXPECT_EQ(gemm_b_pack_events(), packs_at_start)
      << "steady-state invoke() performed per-call B packing";
  EXPECT_EQ(interp.scratch_arena().high_water_bytes(), high_water_before)
      << "steady-state invoke() grew the scratch high-water mark";
  EXPECT_EQ(interp.last_stats().arena_high_water_bytes, high_water_before);
}

TEST(SteadyStateAlloc, QuantizedInvokeIsHeapFreeAfterWarmup) {
  Pcg32 rng(41);
  Graph m = conv_stack_model(&rng);
  Calibrator calib(&m);
  Pcg32 crng(42);
  for (int i = 0; i < 4; ++i) {
    calib.observe({random_input(Shape{1, 16, 16, 8}, crng)});
  }
  Graph qm = quantize_model(m, calib);
  BuiltinOpResolver opt;
  Interpreter interp(&qm, &opt, /*num_threads=*/2);
  // int8 prepare packs weight panels + column sums + requant tables.
  EXPECT_GT(interp.last_stats().prepared_bytes, 0u);
  Pcg32 drng(43);
  Tensor input = random_input(Shape{1, 16, 16, 8}, drng);
  interp.set_input(0, input);
  interp.invoke();

  const std::uint64_t events_before = AllocStats::instance().alloc_events();
  const std::uint64_t heap_before = g_heap_allocs.load();
  const std::size_t high_water_before =
      interp.scratch_arena().high_water_bytes();
  for (int i = 0; i < 5; ++i) interp.invoke();
  EXPECT_EQ(AllocStats::instance().alloc_events(), events_before);
  EXPECT_EQ(g_heap_allocs.load(), heap_before);
  EXPECT_EQ(interp.scratch_arena().high_water_bytes(), high_water_before);
}

// --- batched inference -------------------------------------------------------

// The batch dimension rides through conv's single-GEMM-over-batch path and
// the FC row partitioning; single-op parity with the reference kernels must
// hold at batch > 1 exactly as the grid asserts at batch 1. (Multi-layer
// stacks compound FMA-contraction rounding and are covered by the
// batch-vs-single-item test below instead.)
TEST(BatchedInference, OptMatchesRefAtBatch4) {
  for (OpType op : {OpType::kConv2D, OpType::kFullyConnected}) {
    Pcg32 rng(61);
    GraphBuilder b("batched", &rng);
    int x = b.input(Shape{4, 9, 9, 6});
    int y = op == OpType::kConv2D
                ? b.conv2d(x, 8, 3, 3, 1, Padding::kSame, Activation::kRelu,
                           "op")
                : b.fully_connected(x, 10, Activation::kNone, "op");
    Graph m = b.finish({y});
    RefOpResolver ref;
    BuiltinOpResolver opt;
    Interpreter ri(&m, &ref);
    Interpreter oi(&m, &opt, /*num_threads=*/2);
    Pcg32 drng(62);
    Tensor input = random_input(Shape{4, 9, 9, 6}, drng);
    ri.set_input(0, input);
    oi.set_input(0, input);
    ri.invoke();
    oi.invoke();
    EXPECT_LE(max_ulp_diff(ri.output(0), oi.output(0)), 4)
        << op_type_name(op);
  }
}

// A batch-4 invoke must reproduce four batch-1 invokes of the same weights
// bit-exactly: per-output accumulation order does not depend on m, only the
// row partitioning does.
TEST(BatchedInference, BatchMatchesSingleItemInvokes) {
  Pcg32 rng4(81), rng1(81);  // same seed -> identical weights
  Graph m4 = conv_stack_model(&rng4, /*batch=*/4);
  Graph m1 = conv_stack_model(&rng1, /*batch=*/1);
  BuiltinOpResolver opt;
  Interpreter batched(&m4, &opt, /*num_threads=*/2);
  Interpreter single(&m1, &opt, /*num_threads=*/2);
  Pcg32 drng(82);
  Tensor input = random_input(Shape{4, 16, 16, 8}, drng);
  batched.set_input(0, input);
  batched.invoke();
  const Tensor& out4 = batched.output(0);
  const std::int64_t per_item_in = input.num_elements() / 4;
  const std::int64_t per_item_out = out4.num_elements() / 4;
  for (int item = 0; item < 4; ++item) {
    Tensor one = Tensor::f32(Shape{1, 16, 16, 8});
    std::memcpy(one.data<float>(),
                input.data<float>() + item * per_item_in,
                static_cast<std::size_t>(per_item_in) * sizeof(float));
    single.set_input(0, one);
    single.invoke();
    EXPECT_EQ(std::memcmp(single.output(0).data<float>(),
                          out4.data<float>() + item * per_item_out,
                          static_cast<std::size_t>(per_item_out) *
                              sizeof(float)),
              0)
        << "batch item " << item << " differs from its single-item invoke";
  }
}

TEST(BatchedInference, QuantizedOptMatchesRefAtBatch4) {
  Pcg32 rng(71);
  Graph m = conv_stack_model(&rng, /*batch=*/4);
  Calibrator calib(&m);
  Pcg32 crng(72);
  for (int i = 0; i < 4; ++i) {
    calib.observe({random_input(Shape{4, 16, 16, 8}, crng)});
  }
  Graph qm = quantize_model(m, calib);
  RefOpResolver ref;
  BuiltinOpResolver opt;
  Interpreter ri(&qm, &ref);
  Interpreter oi(&qm, &opt, /*num_threads=*/2);
  Pcg32 drng(73);
  Tensor input = random_input(Shape{4, 16, 16, 8}, drng);
  ri.set_input(0, input);
  oi.set_input(0, input);
  ri.invoke();
  oi.invoke();
  EXPECT_LE(linf_error(ri.output(0), oi.output(0)),
            1.001f * output_quantum(qm));
}

TEST(ScratchArenaTest, AllocationsAreAbsoluteAligned) {
  ScratchArena arena;
  for (int round = 0; round < 3; ++round) {
    // Odd sizes force unaligned bump positions between requests.
    (void)arena.allocate(13, 1);
    for (std::size_t align : {8u, 16u, 64u, 128u}) {
      void* p = arena.allocate(65, align);
      EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % align, 0u) << align;
    }
    // Force growth past the first block and re-check alignment there.
    void* big = arena.allocate(256 * 1024, 64);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(big) % 64, 0u);
    arena.reset();
  }
}

TEST(SteadyStateAlloc, ArenaIsReusedNotRegrown) {
  Pcg32 rng(51);
  Graph m = conv_stack_model(&rng);
  BuiltinOpResolver opt;
  Interpreter interp(&m, &opt);
  Pcg32 drng(52);
  interp.set_input(0, random_input(Shape{1, 16, 16, 8}, drng));
  interp.invoke();
  const std::size_t capacity = interp.scratch_arena().capacity_bytes();
  const std::size_t high_water = interp.scratch_arena().high_water_bytes();
  EXPECT_GT(high_water, 0u);
  for (int i = 0; i < 3; ++i) interp.invoke();
  EXPECT_EQ(interp.scratch_arena().capacity_bytes(), capacity);
  EXPECT_EQ(interp.scratch_arena().high_water_bytes(), high_water);
}

}  // namespace
}  // namespace mlexray
