// Fault containment under injected failures: the serving runtime must keep
// its pool-integrity promises while kernels throw, steps stall past
// deadlines, outputs go NaN, the spooler's writes fail, and model loads
// abort — all driven through src/common/fault_injection.h.
//
// Locked-in contracts:
//  - a kernel throw mid-invoke surfaces as an InvokeStatus on that lease
//    only (failing step recorded); the poisoned session is destroyed on
//    release and never re-leased; follow-up requests on fresh leases are
//    bit-exact with an unfaulted run;
//  - invoke() still throws for legacy callers, and poisons identically;
//  - per-invoke deadlines expire cooperatively at step boundaries without
//    poisoning;
//  - a failed load (plan.prepare throw) leaves the previous version serving;
//  - a spooler write failure is contained to close_spool();
//  - truncated .mlxtrace files load tolerantly (crash-safe spooling);
//  - the chaos test races acquire/try_invoke/release against hot-swaps,
//    unload, and fault arming from a driver thread (run under TSan in CI).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstring>
#include <filesystem>
#include <thread>
#include <vector>

#include "src/common/fault_injection.h"
#include "src/core/trace.h"
#include "src/core/trace_buffer.h"
#include "src/graph/builder.h"
#include "src/interpreter/engine.h"
#include "src/tensor/alloc_stats.h"

namespace mlexray {
namespace {

Tensor random_input(Shape shape, Pcg32& rng) {
  Tensor t = Tensor::f32(shape);
  float* p = t.data<float>();
  for (std::int64_t i = 0; i < t.num_elements(); ++i) {
    p[i] = rng.uniform(-2.0f, 2.0f);
  }
  return t;
}

Graph conv_stack_graph(std::uint64_t seed) {
  Pcg32 rng(seed);
  GraphBuilder b("stack", &rng);
  int x = b.input(Shape{1, 16, 16, 8});
  int c1 = b.conv2d(x, 16, 3, 3, 1, Padding::kSame, Activation::kRelu, "c1");
  int d = b.depthwise_conv2d(c1, 3, 3, 2, Padding::kSame, Activation::kRelu6,
                             "dw");
  int c2 = b.conv2d(d, 16, 1, 1, 1, Padding::kSame, Activation::kNone, "c2");
  int fc = b.fully_connected(c2, 10, Activation::kNone, "fc");
  return b.finish({fc});
}

void expect_bit_identical(const Tensor& a, const Tensor& b) {
  ASSERT_EQ(a.dtype(), b.dtype());
  ASSERT_EQ(a.byte_size(), b.byte_size());
  EXPECT_EQ(std::memcmp(a.raw_data(), b.raw_data(), a.byte_size()), 0);
}

// Every test leaves the global fault registry clean, pass or fail.
class FaultTest : public ::testing::Test {
 protected:
  void TearDown() override { fault::disarm_all(); }
};

// --- fault framework mechanics ----------------------------------------------

TEST_F(FaultTest, SkipAndMaxFiresControlWhenASiteFires) {
  fault::Spec spec;
  spec.kind = fault::Kind::kThrow;
  spec.skip = 3;
  spec.max_fires = 2;
  fault::arm("test.site", spec);

  int throws = 0;
  for (int i = 0; i < 8; ++i) {
    try {
      fault::check("test.site");
    } catch (const MlxError& e) {
      ++throws;
      EXPECT_NE(std::string(e.what()).find("test.site"), std::string::npos);
      // Hits 3 and 4 (0-based) fire; everything before and after passes.
      EXPECT_TRUE(i == 3 || i == 4) << "fired on hit " << i;
    }
  }
  EXPECT_EQ(throws, 2);
  EXPECT_EQ(fault::hit_count("test.site"), 8u);
  EXPECT_EQ(fault::fire_count("test.site"), 2u);

  fault::disarm("test.site");
  EXPECT_FALSE(fault::enabled());
  EXPECT_EQ(fault::hit_count("test.site"), 0u);  // unknown again
}

TEST_F(FaultTest, DisarmedSitesAreFree) {
  EXPECT_FALSE(fault::enabled());
  EXPECT_FALSE(fault::check("never.armed"));
}

// --- kernel failure containment ---------------------------------------------

TEST_F(FaultTest, KernelThrowSurfacesAsStatusAndPoisonsOnlyThatLease) {
  BuiltinOpResolver opt;
  Engine engine(&opt);
  engine.load("stack", conv_stack_graph(31));
  Pcg32 drng(32);
  Tensor x = random_input(Shape{1, 16, 16, 8}, drng);

  // Unfaulted reference outputs for the follow-up bit-exactness check.
  Tensor want;
  {
    SessionLease ref = engine.acquire("stack");
    ref->set_input(0, x);
    ASSERT_TRUE(ref->try_invoke().ok());
    want = ref->output(0);  // deep copy
  }

  {
    SessionLease lease = engine.acquire("stack");
    lease->set_input(0, x);
    fault::Spec spec;
    spec.skip = 2;  // fail the third prepared step
    fault::arm(fault_sites::kInvokeStep, spec);
    const InvokeStatus status = lease->try_invoke();
    fault::disarm(fault_sites::kInvokeStep);

    EXPECT_EQ(status.code, InvokeCode::kError);
    EXPECT_EQ(status.failed_step, 2);
    EXPECT_EQ(status.failed_node_id,
              lease->plan().steps()[2].node->id);
    EXPECT_NE(status.message.find("injected fault"), std::string::npos);
    EXPECT_TRUE(lease->poisoned());
    EXPECT_EQ(lease->last_stats().invoke_errors, 1u);

    // A poisoned session refuses to run again on the same lease.
    EXPECT_EQ(lease->try_invoke().code, InvokeCode::kPoisoned);
  }  // release destroys the poisoned session

  EnginePoolStats stats = engine.pool_stats("stack");
  EXPECT_EQ(stats.invoke_errors, 1u);
  EXPECT_EQ(stats.sessions_destroyed, 1u);
  // Both leases so far reused the one pooled session.
  EXPECT_EQ(stats.sessions_created, 1u);

  // The next N requests on fresh leases are bit-exact with the unfaulted
  // run — no partial activations leak across the pool.
  for (int i = 0; i < 3; ++i) {
    SessionLease lease = engine.acquire("stack");
    EXPECT_FALSE(lease->poisoned()) << "poisoned session was re-leased";
    lease->set_input(0, x);
    ASSERT_TRUE(lease->try_invoke().ok());
    expect_bit_identical(lease->output(0), want);
  }
  stats = engine.pool_stats("stack");
  EXPECT_EQ(stats.sessions_destroyed, 1u);  // nothing else was torn down
  EXPECT_EQ(stats.sessions_created, 2u);    // one replacement session
}

TEST_F(FaultTest, ThrowingInvokeAlsoPoisonsAndPoolRecovers) {
  BuiltinOpResolver opt;
  Engine engine(&opt);
  engine.load("stack", conv_stack_graph(41));
  Pcg32 drng(42);
  Tensor x = random_input(Shape{1, 16, 16, 8}, drng);

  {
    SessionLease lease = engine.acquire("stack");
    lease->set_input(0, x);
    fault::arm(fault_sites::kInvokeStep, fault::Spec{});
    EXPECT_THROW(lease->invoke(), MlxError);
    fault::disarm(fault_sites::kInvokeStep);
    EXPECT_TRUE(lease->poisoned());
  }
  const EnginePoolStats stats = engine.pool_stats("stack");
  EXPECT_EQ(stats.sessions_destroyed, 1u);
  EXPECT_EQ(stats.invoke_errors, 1u);

  SessionLease lease = engine.acquire("stack");
  lease->set_input(0, x);
  EXPECT_TRUE(lease->try_invoke().ok());
}

TEST_F(FaultTest, KernelLevelGemmFaultIsContainedAtTheSessionBoundary) {
  BuiltinOpResolver opt;
  Engine engine(&opt);
  engine.load("stack", conv_stack_graph(51));
  Pcg32 drng(52);
  Tensor x = random_input(Shape{1, 16, 16, 8}, drng);

  SessionLease lease = engine.acquire("stack");
  lease->set_input(0, x);
  fault::Spec spec;
  spec.max_fires = 1;
  fault::arm(fault_sites::kKernelGemm, spec);
  const InvokeStatus status = lease->try_invoke();
  EXPECT_EQ(status.code, InvokeCode::kError);
  EXPECT_GE(status.failed_step, 0);
  EXPECT_TRUE(lease->poisoned());
  EXPECT_EQ(fault::fire_count(fault_sites::kKernelGemm), 1u);
}

// --- deadlines ---------------------------------------------------------------

TEST_F(FaultTest, DeadlineExpiresCooperativelyWithoutPoisoning) {
  BuiltinOpResolver opt;
  Engine engine(&opt);
  engine.load("stack", conv_stack_graph(61));
  Pcg32 drng(62);
  Tensor x = random_input(Shape{1, 16, 16, 8}, drng);

  Tensor want;
  {
    SessionLease ref = engine.acquire("stack");
    ref->set_input(0, x);
    ASSERT_TRUE(ref->try_invoke().ok());
    want = ref->output(0);
  }

  SessionLease lease = engine.acquire("stack");
  lease->set_input(0, x);
  // Stall the first step well past the deadline; the check before the
  // *second* step must stop the walk.
  fault::Spec spec;
  spec.kind = fault::Kind::kDelay;
  spec.delay_ms = 50;
  spec.max_fires = 1;
  fault::arm(fault_sites::kInvokeStep, spec);
  const InvokeStatus status = lease->try_invoke(/*deadline_ms=*/5.0);
  fault::disarm(fault_sites::kInvokeStep);

  EXPECT_EQ(status.code, InvokeCode::kDeadlineExceeded);
  EXPECT_GT(status.failed_step, 0);
  EXPECT_TRUE(status.message.empty());
  EXPECT_FALSE(lease->poisoned());
  EXPECT_EQ(lease->last_stats().deadline_exceeded, 1u);

  // The same session keeps serving: no poisoning, next invoke bit-exact.
  lease->set_input(0, x);
  ASSERT_TRUE(lease->try_invoke().ok());
  expect_bit_identical(lease->output(0), want);

  // A generous deadline never fires.
  lease->set_input(0, x);
  EXPECT_TRUE(lease->try_invoke(/*deadline_ms=*/10000.0).ok());
}

// --- NaN poke ----------------------------------------------------------------

TEST_F(FaultTest, NanPokeCorruptsOneInvokeAndTheNextRunIsClean) {
  BuiltinOpResolver opt;
  Engine engine(&opt);
  engine.load("stack", conv_stack_graph(71));
  Pcg32 drng(72);
  Tensor x = random_input(Shape{1, 16, 16, 8}, drng);

  SessionLease lease = engine.acquire("stack");
  lease->set_input(0, x);
  ASSERT_TRUE(lease->try_invoke().ok());
  Tensor want = lease->output(0);  // deep copy of the clean run

  // Poke the final step's output — the model output — so the NaN is
  // directly observable without relying on propagation semantics.
  fault::Spec spec;
  spec.kind = fault::Kind::kNanPoke;
  spec.skip = lease->plan().steps().size() - 1;
  spec.max_fires = 1;
  fault::arm(fault_sites::kInvokeOutput, spec);
  lease->set_input(0, x);
  const InvokeStatus status = lease->try_invoke();
  fault::disarm(fault_sites::kInvokeOutput);

  // Numerically corrupt but structurally fine: the invoke succeeds, the
  // session is not poisoned — exactly how a silent-kernel-bug deployment
  // looks, which is what the paper's drift monitoring exists to catch.
  EXPECT_TRUE(status.ok());
  EXPECT_FALSE(lease->poisoned());
  EXPECT_TRUE(std::isnan(lease->output(0).data<float>()[0]));

  lease->set_input(0, x);
  ASSERT_TRUE(lease->try_invoke().ok());
  expect_bit_identical(lease->output(0), want);
}

// --- failed load / hot-swap rollback ----------------------------------------

TEST_F(FaultTest, FailedLoadLeavesThePreviousVersionServing) {
  BuiltinOpResolver opt;
  Engine engine(&opt);
  engine.load("stack", conv_stack_graph(81));
  Pcg32 drng(82);
  Tensor x = random_input(Shape{1, 16, 16, 8}, drng);

  Tensor want;
  {
    SessionLease lease = engine.acquire("stack");
    lease->set_input(0, x);
    ASSERT_TRUE(lease->try_invoke().ok());
    want = lease->output(0);
  }

  fault::arm(fault_sites::kPlanPrepare, fault::Spec{});
  EXPECT_THROW(engine.load("stack", conv_stack_graph(99)), MlxError);
  fault::disarm(fault_sites::kPlanPrepare);

  // The registry is untouched: still version 1, still bit-exact.
  const EnginePoolStats stats = engine.pool_stats("stack");
  EXPECT_EQ(stats.serving_version, 1u);
  EXPECT_EQ(stats.live_versions, 1u);
  SessionLease lease = engine.acquire("stack");
  EXPECT_EQ(lease.version(), 1u);
  lease->set_input(0, x);
  ASSERT_TRUE(lease->try_invoke().ok());
  expect_bit_identical(lease->output(0), want);
}

// --- spooler faults and crash-safe traces ------------------------------------

TEST_F(FaultTest, SpoolWriteFailureSurfacesAtCloseNotInTheInvokePath) {
  BuiltinOpResolver opt;
  Engine engine(&opt);
  engine.load("stack", conv_stack_graph(91));
  Pcg32 drng(92);
  Tensor x = random_input(Shape{1, 16, 16, 8}, drng);

  const auto path =
      std::filesystem::temp_directory_path() / "mlx_fault_spool.mlxtrace";
  TraceBuffer buffer;
  SessionLease lease = engine.acquire("stack");
  buffer.bind(*lease);
  lease->set_observer(&buffer);
  buffer.open_spool(path);

  fault::arm(fault_sites::kSpoolWrite, fault::Spec{});
  for (int i = 0; i < 3; ++i) {
    lease->set_input(0, x);
    ASSERT_TRUE(lease->try_invoke().ok()) << "spool fault leaked into invoke";
    buffer.next_frame();
  }

  // The IO failure is contained to the spooling surface and reported where
  // the caller can handle it. The fault stays armed until after close so the
  // worker fails whether it drained eagerly or only at shutdown.
  EXPECT_THROW(buffer.close_spool(), MlxError);
  fault::disarm(fault_sites::kSpoolWrite);
  lease->set_observer(nullptr);

  // Serving was never disturbed.
  lease->set_input(0, x);
  EXPECT_TRUE(lease->try_invoke().ok());
  std::filesystem::remove(path);
}

TEST_F(FaultTest, SpoolHeaderIsCrashSafePerBatch) {
  BuiltinOpResolver opt;
  Engine engine(&opt);
  engine.load("stack", conv_stack_graph(95));
  Pcg32 drng(96);
  Tensor x = random_input(Shape{1, 16, 16, 8}, drng);

  const auto path =
      std::filesystem::temp_directory_path() / "mlx_crash_spool.mlxtrace";
  constexpr int kFrames = 5;
  TraceBuffer buffer;
  SessionLease lease = engine.acquire("stack");
  buffer.bind(*lease);
  lease->set_observer(&buffer);
  buffer.open_spool(path);
  for (int i = 0; i < kFrames; ++i) {
    lease->set_input(0, x);
    ASSERT_TRUE(lease->try_invoke().ok());
    buffer.next_frame();
  }
  // Wait for the worker to drain — but do NOT close the spool: the file on
  // disk right now is what a killed process would leave behind.
  for (int i = 0; i < 5000 && buffer.spooled_frames() < kFrames; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(buffer.spooled_frames(), static_cast<std::size_t>(kFrames));

  std::size_t truncated = 0;
  Trace snapshot = load_trace_tolerant(path, &truncated);
  EXPECT_EQ(snapshot.frames.size(), static_cast<std::size_t>(kFrames))
      << "pre-close spool file was not readable";
  EXPECT_EQ(truncated, 0u);

  lease->set_observer(nullptr);
  buffer.close_spool();
  std::filesystem::remove(path);
}

TEST_F(FaultTest, TolerantLoadDropsTheTornTailFrame) {
  // Build a two-frame trace, then tear bytes off the tail — the shape of a
  // file whose writer died mid-frame after the last header patch.
  Trace trace;
  trace.pipeline_name = "torn";
  for (int i = 0; i < 2; ++i) {
    FrameTrace f;
    f.frame_id = i;
    f.scalars["latency.inference_ms"] = 1.0 + i;
    Tensor t = Tensor::f32(Shape{4});
    for (int k = 0; k < 4; ++k) t.data<float>()[k] = static_cast<float>(k + i);
    f.tensors.emplace("model.output", std::move(t));
    trace.frames.push_back(std::move(f));
  }
  const auto path =
      std::filesystem::temp_directory_path() / "mlx_torn.mlxtrace";
  save_trace(trace, path);

  const auto full_size = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, full_size - 9);

  // The strict loader refuses; the tolerant one returns the valid prefix.
  EXPECT_THROW(load_trace(path), MlxError);
  std::size_t truncated = 0;
  Trace back = load_trace_tolerant(path, &truncated);
  EXPECT_EQ(back.frames.size(), 1u);
  EXPECT_EQ(truncated, 1u);
  EXPECT_EQ(back.pipeline_name, "torn");
  EXPECT_DOUBLE_EQ(back.frames[0].scalar("latency.inference_ms"), 1.0);

  // An intact file reports zero truncation.
  save_trace(trace, path);
  back = load_trace_tolerant(path, &truncated);
  EXPECT_EQ(back.frames.size(), 2u);
  EXPECT_EQ(truncated, 0u);
  std::filesystem::remove(path);
}

// --- chaos: concurrent serving under faults, swaps, and unload ---------------

TEST_F(FaultTest, ChaosConcurrentServingUnderFaultsAndHotSwaps) {
  constexpr int kWorkers = 4;
  constexpr int kItersPerWorker = 250;
  const std::string name = "chaos";

  BuiltinOpResolver opt;
  Pcg32 drng(102);
  Tensor x = random_input(Shape{1, 16, 16, 8}, drng);

  // Two alternating artifacts: odd engine versions serve graph A, even
  // serve graph B. Expected outputs precomputed on private models.
  Tensor want_a, want_b;
  {
    Model ma(conv_stack_graph(201), &opt);
    Session sa(&ma);
    sa.set_input(0, x);
    sa.invoke();
    want_a = sa.output(0);
    Model mb(conv_stack_graph(202), &opt);
    Session sb(&mb);
    sb.set_input(0, x);
    sb.invoke();
    want_b = sb.output(0);
  }

  const std::size_t alloc_baseline = AllocStats::instance().current_bytes();
  std::atomic<int> mismatches{0};
  std::atomic<int> unexpected_status{0};
  std::atomic<std::int64_t> ok_count{0};
  std::atomic<std::int64_t> error_count{0};
  std::atomic<std::int64_t> deadline_count{0};
  std::atomic<std::int64_t> empty_leases{0};

  {
    Engine engine(&opt);
    engine.load(name, conv_stack_graph(201));  // v1 = A
    // Canary shadowing races the hot-swaps and the faults below: shadows of
    // the A-weights reference must keep remapping across every swap without
    // tripping TSan, shadowing a poisoned session, or blocking the pool.
    CanaryOptions canary_opts;
    canary_opts.shadow_every = 5;
    engine.enable_canary(name, conv_stack_graph(201), nullptr, canary_opts);
    std::atomic<std::int64_t> shadow_events{0};
    engine.set_canary_observer(name, [&](const CanaryShadowEvent&) {
      shadow_events.fetch_add(1, std::memory_order_relaxed);
    });

    std::vector<std::thread> workers;
    for (int w = 0; w < kWorkers; ++w) {
      workers.emplace_back([&, w] {
        for (int i = 0; i < kItersPerWorker; ++i) {
          SessionLease lease = engine.try_acquire(name);
          if (!lease) {
            // Unloaded (or not yet reloaded): a guarded front end just
            // reports and moves on.
            empty_leases.fetch_add(1, std::memory_order_relaxed);
            std::this_thread::yield();
            continue;
          }
          const std::uint64_t version = lease.version();
          lease->set_input(0, x);
          // Every 16th request runs with a tight-but-feasible deadline so
          // the deadline path is exercised concurrently too.
          const double deadline_ms = (i % 16 == 15) ? 50.0 : 0.0;
          const InvokeStatus status = lease->try_invoke(deadline_ms);
          switch (status.code) {
            case InvokeCode::kOk: {
              ok_count.fetch_add(1, std::memory_order_relaxed);
              const Tensor& want = (version % 2 == 1) ? want_a : want_b;
              const Tensor& got = lease->output(0);
              if (got.byte_size() != want.byte_size() ||
                  std::memcmp(got.raw_data(), want.raw_data(),
                              got.byte_size()) != 0) {
                mismatches.fetch_add(1, std::memory_order_relaxed);
              }
              break;
            }
            case InvokeCode::kError:
              error_count.fetch_add(1, std::memory_order_relaxed);
              break;
            case InvokeCode::kDeadlineExceeded:
              deadline_count.fetch_add(1, std::memory_order_relaxed);
              break;
            default:
              // kPoisoned can never reach a fresh lease.
              unexpected_status.fetch_add(1, std::memory_order_relaxed);
          }
          (void)w;
        }
      });
    }

    // Chaos driver: hot-swaps A<->B, arms short fault bursts, finally
    // unloads while workers are still running.
    std::thread driver([&] {
      for (int swap = 0; swap < 6; ++swap) {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
        // v1 was A, so swap 0 installs B (v2), swap 1 installs A (v3), ...
        engine.load(name, conv_stack_graph(swap % 2 == 0 ? 202 : 201));
        if (swap % 2 == 0) {
          fault::Spec spec;
          spec.max_fires = 3;
          fault::arm(fault_sites::kInvokeStep, spec);
        } else {
          fault::disarm(fault_sites::kInvokeStep);
        }
      }
      fault::disarm_all();
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      engine.unload(name);
    });

    for (std::thread& t : workers) t.join();
    driver.join();

    // The canary kept shadowing through swaps, faults, and the unload; the
    // observer fired exactly once per shadowed frame. Reference invokes may
    // themselves have absorbed injected faults — that is the contained
    // reference_errors path, not a test failure.
    const CanaryReport canary = engine.canary_report(name);
    EXPECT_TRUE(canary.enabled);
    EXPECT_GT(canary.shadowed, 0u);
    EXPECT_EQ(shadow_events.load(),
              static_cast<std::int64_t>(canary.shadowed));

    EXPECT_EQ(mismatches.load(), 0)
        << "a request saw output that was not bit-exact with the version "
           "that served it";
    EXPECT_EQ(unexpected_status.load(), 0);
    EXPECT_GT(ok_count.load(), 0);
    EXPECT_EQ(engine.model_count(), 0u);
    EXPECT_EQ(engine.prepared_bytes_total(), 0u)
        << "drained versions did not free their prepared storage";
  }
  // With the engine gone, every session, activation, arena, and prepared
  // buffer must be back to the pre-engine baseline.
  EXPECT_EQ(AllocStats::instance().current_bytes(), alloc_baseline)
      << "lifecycle leaked tracked memory";
}

}  // namespace
}  // namespace mlexray
