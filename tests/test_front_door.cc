// Overload-safe serving front door: bounded admission, deadline-aware
// dynamic batching, load shedding, and the per-model-version circuit
// breaker.
//
// Locked-in contracts:
//  - admission is typed, never throws on the hot path: kQueueFull when the
//    bounded queue / slot pool is exhausted, kDeadlineInfeasible when the
//    EWMA estimator projects a guaranteed miss, kBreakerOpen while failing
//    fast — and released slots restore admission;
//  - the shedding policy drops expired and provably-late requests as kShed
//    while batch selection dispatches higher priority before earlier
//    arrival (so B submitted before C still dispatches after it);
//  - batched coalesced invokes are bit-exact with sequential single-request
//    invokes, including partial batches padded up to a larger variant;
//  - the breaker trips on an error burst, flushes the queue, fails fast,
//    half-open-probes after the cooldown, closes on probe success, re-opens
//    on probe failure, and heals immediately on an engine hot-swap;
//  - one bounded retry with jittered backoff recovers transient faults;
//  - steady-state submit -> batch -> complete -> release performs zero heap
//    allocations (operator-new counter + AllocStats, same as test_engine);
//  - the chaos test races submit threads (both Ticket and submit_async
//    paths) against hot-swaps, fault bursts, and unload (run under TSan in
//    CI), with every kOk bit-exact against the version that served it and
//    no tracked memory leaked after teardown.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <new>
#include <thread>
#include <vector>

#include "src/common/fault_injection.h"
#include "src/graph/builder.h"
#include "src/interpreter/engine.h"
#include "src/interpreter/front_door.h"
#include "src/interpreter/model.h"
#include "src/interpreter/session.h"
#include "src/tensor/alloc_stats.h"

// --- global operator new/delete instrumentation -----------------------------

namespace {
std::atomic<std::uint64_t> g_heap_allocs{0};
}  // namespace

void* operator new(std::size_t size) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  void* p = nullptr;
  if (posix_memalign(&p, static_cast<std::size_t>(align), size ? size : 1) != 0) {
    throw std::bad_alloc();
  }
  return p;
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace mlexray {
namespace {

Tensor random_input(Shape shape, Pcg32& rng) {
  Tensor t = Tensor::f32(shape);
  float* p = t.data<float>();
  for (std::int64_t i = 0; i < t.num_elements(); ++i) {
    p[i] = rng.uniform(-2.0f, 2.0f);
  }
  return t;
}

// Same network at any batch: the same seed draws the same weights, so the
// batch-N graph's rows are the batch-1 graph applied per row.
Graph conv_stack_graph(std::uint64_t seed, int batch = 1) {
  Pcg32 rng(seed);
  GraphBuilder b("stack", &rng);
  int x = b.input(Shape{batch, 16, 16, 8});
  int c1 = b.conv2d(x, 16, 3, 3, 1, Padding::kSame, Activation::kRelu, "c1");
  int d = b.depthwise_conv2d(c1, 3, 3, 2, Padding::kSame, Activation::kRelu6,
                             "dw");
  int c2 = b.conv2d(d, 16, 1, 1, 1, Padding::kSame, Activation::kNone, "c2");
  int fc = b.fully_connected(c2, 10, Activation::kNone, "fc");
  return b.finish({fc});
}

void expect_bit_identical(const Tensor& a, const Tensor& b) {
  ASSERT_EQ(a.dtype(), b.dtype());
  ASSERT_EQ(a.byte_size(), b.byte_size());
  EXPECT_EQ(std::memcmp(a.raw_data(), b.raw_data(), a.byte_size()), 0);
}

// Spin until the front door reports `inflight` >= 1 for `model`: the single
// worker has formed a batch and is inside the (fault-stalled) invoke.
bool wait_for_inflight(const FrontDoor& door, const std::string& model,
                       int timeout_ms = 2000) {
  const auto give_up = std::chrono::steady_clock::now() +
                       std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < give_up) {
    if (door.stats(model).inflight > 0) return true;
    std::this_thread::yield();
  }
  return false;
}

class FrontDoorTest : public ::testing::Test {
 protected:
  void TearDown() override { fault::disarm_all(); }
};

// --- registration and typed admission ----------------------------------------

TEST_F(FrontDoorTest, RegistrationValidatesVariantsAndNames) {
  BuiltinOpResolver opt;
  Engine engine(&opt);
  engine.load("stack", conv_stack_graph(11));
  engine.load("stack@b4", conv_stack_graph(11, 4));
  FrontDoor door(&engine);

  // Unregistered model: typed inline rejection, not an exception.
  Pcg32 drng(12);
  Tensor x = random_input(Shape{1, 16, 16, 8}, drng);
  {
    Ticket t = door.submit("nope", x);
    ASSERT_TRUE(t);
    EXPECT_TRUE(t.done());
    EXPECT_EQ(t.wait().code, RequestCode::kUnknownModel);
  }
  EXPECT_THROW(door.stats("nope"), MlxError);

  // Variants must be loaded and declare their true batch dim.
  {
    FrontDoorModelOptions bad;
    bad.variants = {{1, "missing"}};
    EXPECT_THROW(door.register_model("stack", bad), MlxError);
  }
  {
    FrontDoorModelOptions bad;
    bad.variants = {{2, "stack"}};  // graph batch dim is 1, not 2
    EXPECT_THROW(door.register_model("stack", bad), MlxError);
  }

  FrontDoorModelOptions opts;
  opts.variants = {{1, "stack"}, {4, "stack@b4"}};
  door.register_model("stack", opts);
  EXPECT_TRUE(door.registered("stack"));
  EXPECT_THROW(door.register_model("stack", opts), MlxError)
      << "duplicate registration must throw";

  Ticket t = door.submit("stack", x);
  EXPECT_EQ(t.wait().code, RequestCode::kOk);
  const FrontDoorStats s = door.stats("stack");
  EXPECT_EQ(s.submitted, 1u);
  EXPECT_EQ(s.admitted, 1u);
  EXPECT_EQ(s.completed_ok, 1u);
}

TEST_F(FrontDoorTest, QueueFullRejectsAndReleasedSlotsRestoreAdmission) {
  BuiltinOpResolver opt;
  Engine engine(&opt);
  engine.load("stack", conv_stack_graph(21));
  FrontDoor door(&engine);
  FrontDoorModelOptions opts;
  opts.queue_capacity = 2;  // slot pool = 2 + max_batch(1) * workers(1) = 3
  door.register_model("stack", opts);

  Pcg32 drng(22);
  Tensor x = random_input(Shape{1, 16, 16, 8}, drng);

  // Done-but-unreleased Tickets hold their slots, so regardless of how fast
  // the worker drains, at most 3 of these 6 submits can be admitted and the
  // rest must reject as kQueueFull (pending cap or slot-pool exhaustion).
  std::vector<Ticket> held;
  int admitted = 0;
  int queue_full = 0;
  for (int i = 0; i < 6; ++i) {
    Ticket t = door.submit("stack", x);
    const RequestCode code = t.wait().code;
    if (code == RequestCode::kQueueFull) {
      ++queue_full;
    } else {
      EXPECT_EQ(code, RequestCode::kOk);
      ++admitted;
    }
    held.push_back(std::move(t));
  }
  EXPECT_LE(admitted, 3);
  EXPECT_GE(queue_full, 3);
  {
    const FrontDoorStats s = door.stats("stack");
    EXPECT_EQ(s.rejected_queue_full, static_cast<std::uint64_t>(queue_full));
    EXPECT_EQ(s.submitted, 6u);
    EXPECT_EQ(s.admitted, static_cast<std::uint64_t>(admitted));
  }

  // Releasing the hoarded tickets recycles their slots: admission recovers.
  held.clear();
  Ticket again = door.submit("stack", x);
  EXPECT_EQ(again.wait().code, RequestCode::kOk);
}

TEST_F(FrontDoorTest, InfeasibleDeadlineRejectsUpFront) {
  BuiltinOpResolver opt;
  Engine engine(&opt);
  engine.load("stack", conv_stack_graph(31));
  FrontDoor door(&engine);
  FrontDoorModelOptions opts;
  opts.default_deadline_ms = 10.0;
  door.register_model("stack", opts);
  door.set_service_estimate_for_testing("stack", 100000.0);  // 100 ms/batch

  Pcg32 drng(32);
  Tensor x = random_input(Shape{1, 16, 16, 8}, drng);

  // 100 ms estimated service > 10 ms explicit deadline: rejected before the
  // input is even copied. Rejected tickets are born done.
  Ticket infeasible = door.submit("stack", x, /*deadline_ms=*/10.0);
  EXPECT_TRUE(infeasible.done());
  EXPECT_EQ(infeasible.wait().code, RequestCode::kDeadlineInfeasible);
  EXPECT_TRUE(request_rejected(infeasible.wait().code));

  // deadline_ms <= 0 falls back to default_deadline_ms (10 ms): same answer.
  Ticket defaulted = door.submit("stack", x, /*deadline_ms=*/0.0);
  EXPECT_EQ(defaulted.wait().code, RequestCode::kDeadlineInfeasible);

  // A roomy deadline admits and completes despite the stale estimate.
  Ticket roomy = door.submit("stack", x, /*deadline_ms=*/5000.0);
  EXPECT_EQ(roomy.wait().code, RequestCode::kOk);

  const FrontDoorStats s = door.stats("stack");
  EXPECT_EQ(s.rejected_infeasible, 2u);
  EXPECT_EQ(s.completed_ok, 1u);
}

// --- shedding and priority ---------------------------------------------------

TEST_F(FrontDoorTest, ShedsExpiredAndProvablyLateDispatchesPriorityFirst) {
  BuiltinOpResolver opt;
  Engine engine(&opt);
  engine.load("stack", conv_stack_graph(41));
  FrontDoor door(&engine);
  FrontDoorModelOptions opts;
  opts.max_wait_ms = 0.0;  // dispatch as soon as anything is ready
  door.register_model("stack", opts);

  Pcg32 drng(42);
  Tensor x = random_input(Shape{1, 16, 16, 8}, drng);

  // Stall the first invoke only: 4 prepared steps x 15 ms. Everything
  // submitted during the stall queues behind it.
  fault::Spec stall;
  stall.kind = fault::Kind::kDelay;
  stall.delay_ms = 15;
  stall.max_fires = 4;
  fault::arm(fault_sites::kInvokeStep, stall);

  Ticket x_ticket = door.submit("stack", x);
  ASSERT_TRUE(wait_for_inflight(door, "stack"));

  // Queued during the ~60 ms stall:
  //   A expires (5 ms deadline) before the worker scans again;
  //   B (prio 0) and C (prio 1) have no deadline.
  Ticket a = door.submit("stack", x, /*deadline_ms=*/5.0, /*priority=*/0);
  Ticket b_ticket = door.submit("stack", x, 0.0, /*priority=*/0);
  Ticket c_ticket = door.submit("stack", x, 0.0, /*priority=*/1);

  EXPECT_EQ(x_ticket.wait().code, RequestCode::kOk);
  EXPECT_EQ(a.wait().code, RequestCode::kShed) << "expired request not shed";
  const RequestResult& rb = b_ticket.wait();
  const RequestResult& rc = c_ticket.wait();
  EXPECT_EQ(rb.code, RequestCode::kOk);
  EXPECT_EQ(rc.code, RequestCode::kOk);
  // B was submitted before C but C outranks it: with one worker dispatching
  // sequentially, C's dispatch strictly precedes B's, so C waited less.
  EXPECT_LT(rc.queue_us, rb.queue_us)
      << "higher-priority request was not dispatched first";

  {
    const FrontDoorStats s = door.stats("stack");
    EXPECT_EQ(s.shed, 1u);
    EXPECT_EQ(s.completed_ok, 3u);
    EXPECT_EQ(s.max_queue_depth, 3u);
  }

  // Proactive shed: D's 120 ms deadline is still alive when the worker next
  // scans (~100 ms in), but with a pinned 40 ms/batch service estimate the
  // ~20 ms left cannot fit a batch — serving D would be a guaranteed miss.
  door.set_service_estimate_for_testing("stack", 40000.0);
  fault::Spec stall2;
  stall2.kind = fault::Kind::kDelay;
  stall2.delay_ms = 25;
  stall2.max_fires = 4;
  fault::arm(fault_sites::kInvokeStep, stall2);
  Ticket x2 = door.submit("stack", x);
  ASSERT_TRUE(wait_for_inflight(door, "stack"));
  Ticket d = door.submit("stack", x, /*deadline_ms=*/120.0, /*priority=*/0);
  EXPECT_EQ(x2.wait().code, RequestCode::kOk);
  EXPECT_EQ(d.wait().code, RequestCode::kShed)
      << "provably-late request was served instead of shed";
  EXPECT_EQ(door.stats("stack").shed, 2u);
}

// --- dynamic batching --------------------------------------------------------

TEST_F(FrontDoorTest, CoalescedBatchMatchesSequentialBitExact) {
  BuiltinOpResolver opt;
  Engine engine(&opt);
  engine.load("stack", conv_stack_graph(51));
  engine.load("stack@b4", conv_stack_graph(51, 4));  // same weights at batch 4

  // Sequential reference: each input through the batch-1 model on its own.
  Pcg32 drng(52);
  std::vector<Tensor> inputs;
  std::vector<Tensor> expected;
  for (int i = 0; i < 4; ++i) {
    inputs.push_back(random_input(Shape{1, 16, 16, 8}, drng));
    SessionLease ref = engine.acquire("stack");
    ref->set_input(0, inputs.back());
    ref->invoke();
    expected.push_back(ref->output(0));  // deep copy
  }

  class DispatchRecorder : public FrontDoorObserver {
   public:
    void on_dispatch(const std::string&, int coalesced,
                     int variant_batch) override {
      dispatches.push_back({coalesced, variant_batch});
    }
    std::vector<std::pair<int, int>> dispatches;
  };

  FrontDoor door(&engine);
  DispatchRecorder recorder;
  door.set_observer(&recorder);
  FrontDoorModelOptions opts;
  opts.variants = {{1, "stack"}, {4, "stack@b4"}};
  opts.max_wait_ms = 200.0;  // wait for the full batch to coalesce
  door.register_model("stack", opts);

  // Full batch: 4 submits coalesce into one batch-4 invoke.
  {
    std::vector<Ticket> tickets;
    for (int i = 0; i < 4; ++i) {
      tickets.push_back(door.submit("stack", inputs[static_cast<std::size_t>(i)]));
    }
    for (int i = 0; i < 4; ++i) {
      const RequestResult& r = tickets[static_cast<std::size_t>(i)].wait();
      ASSERT_EQ(r.code, RequestCode::kOk);
      EXPECT_EQ(r.batch_size, 4);
      ASSERT_EQ(r.output_count, 1);
      expect_bit_identical(r.outputs[0], expected[static_cast<std::size_t>(i)]);
    }
  }
  {
    const FrontDoorStats s = door.stats("stack");
    EXPECT_EQ(s.batches, 1u);
    ASSERT_EQ(s.batch_size_hist.size(), 5u);
    EXPECT_EQ(s.batch_size_hist[4], 1u);
  }
  ASSERT_EQ(recorder.dispatches.size(), 1u);
  EXPECT_EQ(recorder.dispatches[0], (std::pair<int, int>{4, 4}));

  // Partial batch padded up to the 4-row variant: results for the 3 real
  // rows are still bit-exact; padding rows are never copied out.
  {
    FrontDoorModelOptions fast = opts;
    fast.max_wait_ms = 5.0;
    fast.max_batch = 3;
    door.register_model("stack.partial", fast);
    std::vector<Ticket> tickets;
    for (int i = 0; i < 3; ++i) {
      tickets.push_back(
          door.submit("stack.partial", inputs[static_cast<std::size_t>(i)]));
    }
    for (int i = 0; i < 3; ++i) {
      const RequestResult& r = tickets[static_cast<std::size_t>(i)].wait();
      ASSERT_EQ(r.code, RequestCode::kOk);
      ASSERT_EQ(r.output_count, 1);
      expect_bit_identical(r.outputs[0], expected[static_cast<std::size_t>(i)]);
    }
    bool saw_padded = false;
    for (const auto& d : recorder.dispatches) {
      if (d.second == 4 && d.first < 4) saw_padded = true;
    }
    EXPECT_TRUE(saw_padded)
        << "expected at least one partial batch padded up to the 4-variant";
  }
}

// --- deadline propagation ----------------------------------------------------

TEST_F(FrontDoorTest, BatchDeadlineExpiresCooperativelyWithoutPoisoning) {
  BuiltinOpResolver opt;
  Engine engine(&opt);
  engine.load("stack", conv_stack_graph(61));
  FrontDoor door(&engine);
  door.register_model("stack");

  Pcg32 drng(62);
  Tensor x = random_input(Shape{1, 16, 16, 8}, drng);

  // Each step stalls 20 ms (4 steps = 80 ms) against a 30 ms deadline: the
  // propagated try_invoke_until deadline expires at a step boundary.
  fault::Spec stall;
  stall.kind = fault::Kind::kDelay;
  stall.delay_ms = 20;
  stall.max_fires = 4;
  fault::arm(fault_sites::kInvokeStep, stall);

  Ticket late = door.submit("stack", x, /*deadline_ms=*/30.0);
  EXPECT_EQ(late.wait().code, RequestCode::kDeadlineExceeded);
  EXPECT_EQ(door.stats("stack").deadline_exceeded, 1u);

  // Cooperative expiry does not poison the session: the next request is
  // served fine (the stall burst is exhausted).
  fault::disarm_all();
  Ticket ok = door.submit("stack", x);
  EXPECT_EQ(ok.wait().code, RequestCode::kOk);
}

TEST_F(FrontDoorTest, CoalescedPeerWithRoomIsRequeuedNotFailedOnBatchExpiry) {
  BuiltinOpResolver opt;
  Engine engine(&opt);
  engine.load("stack", conv_stack_graph(65));
  engine.load("stack@b4", conv_stack_graph(65, 4));

  // Reference output for the no-deadline request (before any faults).
  Pcg32 drng(66);
  Tensor x = random_input(Shape{1, 16, 16, 8}, drng);
  Tensor expected;
  {
    SessionLease ref = engine.acquire("stack");
    ref->set_input(0, x);
    ref->invoke();
    expected = ref->output(0);
  }

  FrontDoor door(&engine);
  FrontDoorModelOptions opts;
  opts.variants = {{1, "stack"}, {4, "stack@b4"}};
  opts.max_wait_ms = 50.0;  // both submits coalesce into one batch
  opts.retry_transient_faults = false;
  door.register_model("stack", opts);

  // The coalesced batch stalls past the urgent member's 120 ms deadline
  // (dispatch at ~50 ms + 30 ms per step), so the batched invoke expires
  // cooperatively mid-walk.
  fault::Spec stall;
  stall.kind = fault::Kind::kDelay;
  stall.delay_ms = 30;
  stall.max_fires = 4;
  fault::arm(fault_sites::kInvokeStep, stall);

  Ticket urgent = door.submit("stack", x, /*deadline_ms=*/120.0);
  Ticket lax = door.submit("stack", x, /*deadline_ms=*/0.0);

  // Only the member whose own deadline blew fails; the no-deadline member
  // was collateral of the coalescing choice and is requeued, then served.
  EXPECT_EQ(urgent.wait().code, RequestCode::kDeadlineExceeded);
  const RequestResult& rl = lax.wait();
  EXPECT_EQ(rl.code, RequestCode::kOk)
      << "no-deadline request failed for a coalesced peer's deadline";
  ASSERT_EQ(rl.output_count, 1);
  expect_bit_identical(rl.outputs[0], expected);

  const FrontDoorStats s = door.stats("stack");
  EXPECT_EQ(s.deadline_exceeded, 1u);
  EXPECT_EQ(s.completed_ok, 1u);
  EXPECT_EQ(s.deadline_requeues, 1u)
      << "the two submits did not coalesce into one batch";
}

// --- circuit breaker ---------------------------------------------------------

class BreakerRecorder : public FrontDoorObserver {
 public:
  void on_breaker(const std::string&, std::uint64_t, BreakerState from,
                  BreakerState to) override {
    transitions.push_back({from, to});
  }
  std::vector<std::pair<BreakerState, BreakerState>> transitions;
};

TEST_F(FrontDoorTest, BreakerTripsFlushesFailsFastProbesAndCloses) {
  BuiltinOpResolver opt;
  Engine engine(&opt);
  engine.load("stack", conv_stack_graph(71));
  FrontDoor door(&engine);
  BreakerRecorder recorder;
  door.set_observer(&recorder);
  FrontDoorModelOptions opts;
  opts.breaker_failure_threshold = 1;
  opts.breaker_open_ms = 60.0;
  opts.retry_transient_faults = false;
  door.register_model("stack", opts);

  Pcg32 drng(72);
  Tensor x = random_input(Shape{1, 16, 16, 8}, drng);

  // First invoke: the first GEMM stalls 60 ms (time to queue F2/F3 behind
  // it), then step 2 throws — a contained kernel failure.
  fault::Spec stall;
  stall.kind = fault::Kind::kDelay;
  stall.delay_ms = 60;
  stall.max_fires = 1;
  fault::arm(fault_sites::kKernelGemm, stall);
  fault::Spec boom;
  boom.kind = fault::Kind::kThrow;
  boom.skip = 2;
  boom.max_fires = 1;
  fault::arm(fault_sites::kInvokeStep, boom);

  Ticket f1 = door.submit("stack", x);
  ASSERT_TRUE(wait_for_inflight(door, "stack"));
  Ticket f2 = door.submit("stack", x);
  Ticket f3 = door.submit("stack", x);
  ASSERT_EQ(f2.done(), false);

  // F1 fails -> threshold 1 trips the breaker -> F2/F3 flush as
  // kBreakerOpen without ever touching the engine.
  EXPECT_EQ(f1.wait().code, RequestCode::kError);
  EXPECT_EQ(f2.wait().code, RequestCode::kBreakerOpen);
  EXPECT_EQ(f3.wait().code, RequestCode::kBreakerOpen);

  // Open: new submits fail fast.
  Ticket f4 = door.submit("stack", x);
  EXPECT_TRUE(f4.done());
  EXPECT_EQ(f4.wait().code, RequestCode::kBreakerOpen);
  {
    const FrontDoorStats s = door.stats("stack");
    EXPECT_EQ(s.breaker_state, BreakerState::kOpen);
    EXPECT_EQ(s.breaker_trips, 1u);
    EXPECT_EQ(s.flushed_breaker_open, 2u);
    EXPECT_EQ(s.rejected_breaker_open, 1u);
    EXPECT_EQ(s.failed, 1u);
  }

  // Past the cooldown the next submit is admitted as the half-open probe;
  // it succeeds (the fault burst is exhausted) and closes the breaker.
  fault::disarm_all();
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  Ticket probe = door.submit("stack", x);
  EXPECT_EQ(probe.wait().code, RequestCode::kOk);
  EXPECT_EQ(door.stats("stack").breaker_state, BreakerState::kClosed);

  ASSERT_GE(recorder.transitions.size(), 3u);
  using P = std::pair<BreakerState, BreakerState>;
  EXPECT_EQ(recorder.transitions[0],
            (P{BreakerState::kClosed, BreakerState::kOpen}));
  EXPECT_EQ(recorder.transitions[1],
            (P{BreakerState::kOpen, BreakerState::kHalfOpen}));
  EXPECT_EQ(recorder.transitions[2],
            (P{BreakerState::kHalfOpen, BreakerState::kClosed}));
}

TEST_F(FrontDoorTest, FailedProbeReopensTheBreaker) {
  BuiltinOpResolver opt;
  Engine engine(&opt);
  engine.load("stack", conv_stack_graph(81));
  FrontDoor door(&engine);
  FrontDoorModelOptions opts;
  opts.breaker_failure_threshold = 1;
  opts.breaker_open_ms = 30.0;
  opts.retry_transient_faults = false;
  door.register_model("stack", opts);

  Pcg32 drng(82);
  Tensor x = random_input(Shape{1, 16, 16, 8}, drng);

  fault::Spec boom;
  boom.kind = fault::Kind::kThrow;
  boom.max_fires = 2;  // the tripping failure and the failed probe
  fault::arm(fault_sites::kInvokeStep, boom);

  EXPECT_EQ(door.submit("stack", x).wait().code, RequestCode::kError);
  EXPECT_EQ(door.stats("stack").breaker_state, BreakerState::kOpen);

  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_EQ(door.submit("stack", x).wait().code, RequestCode::kError)
      << "the half-open probe should reach the engine and fail";
  {
    const FrontDoorStats s = door.stats("stack");
    EXPECT_EQ(s.breaker_state, BreakerState::kOpen) << "failed probe must re-open";
    EXPECT_EQ(s.breaker_trips, 2u);
  }

  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_EQ(door.submit("stack", x).wait().code, RequestCode::kOk);
  EXPECT_EQ(door.stats("stack").breaker_state, BreakerState::kClosed);
}

TEST_F(FrontDoorTest, FailedProbeFlushesRequestsQueuedBehindIt) {
  BuiltinOpResolver opt;
  Engine engine(&opt);
  engine.load("stack", conv_stack_graph(85));
  FrontDoor door(&engine);
  FrontDoorModelOptions opts;
  opts.breaker_failure_threshold = 1;
  opts.breaker_open_ms = 30.0;
  opts.retry_transient_faults = false;
  door.register_model("stack", opts);

  Pcg32 drng(86);
  Tensor x = random_input(Shape{1, 16, 16, 8}, drng);

  // Trip the breaker, then wait out the cooldown.
  fault::Spec boom;
  boom.kind = fault::Kind::kThrow;
  boom.max_fires = 1;
  fault::arm(fault_sites::kInvokeStep, boom);
  EXPECT_EQ(door.submit("stack", x).wait().code, RequestCode::kError);
  EXPECT_EQ(door.stats("stack").breaker_state, BreakerState::kOpen);
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  // The half-open probe stalls 60 ms in its first GEMM (time to queue
  // requests behind it), then fails with a contained throw.
  fault::Spec stall;
  stall.kind = fault::Kind::kDelay;
  stall.delay_ms = 60;
  stall.max_fires = 1;
  fault::arm(fault_sites::kKernelGemm, stall);
  fault::Spec boom2;
  boom2.kind = fault::Kind::kThrow;
  boom2.skip = 2;
  boom2.max_fires = 1;
  fault::arm(fault_sites::kInvokeStep, boom2);

  Ticket probe = door.submit("stack", x);
  ASSERT_TRUE(wait_for_inflight(door, "stack"));

  // Admitted during the half-open probe: if the probe fails, nothing will
  // ever serve these — the re-opened breaker must flush them, not strand
  // them. submit_async so a regression fails the EXPECTs at door teardown
  // (kShed) instead of deadlocking a Ticket wait.
  struct FlushCtx {
    std::atomic<int> fired{0};
    std::atomic<int> breaker_open{0};
  } ctx;
  const FrontDoorCallback on_done = [](void* c, const RequestResult& r) {
    auto* fc = static_cast<FlushCtx*>(c);
    if (r.code == RequestCode::kBreakerOpen) {
      fc->breaker_open.fetch_add(1, std::memory_order_relaxed);
    }
    fc->fired.fetch_add(1, std::memory_order_relaxed);
  };
  ASSERT_EQ(door.submit_async("stack", x, 0.0, 0, on_done, &ctx),
            RequestCode::kOk);
  ASSERT_EQ(door.submit_async("stack", x, 0.0, 0, on_done, &ctx),
            RequestCode::kOk);

  EXPECT_EQ(probe.wait().code, RequestCode::kError);
  const auto give_up =
      std::chrono::steady_clock::now() + std::chrono::seconds(2);
  while (ctx.fired.load(std::memory_order_relaxed) < 2 &&
         std::chrono::steady_clock::now() < give_up) {
    std::this_thread::yield();
  }
  EXPECT_EQ(ctx.fired.load(), 2)
      << "requests queued behind the failed probe were stranded";
  EXPECT_EQ(ctx.breaker_open.load(), 2);
  {
    const FrontDoorStats s = door.stats("stack");
    EXPECT_EQ(s.breaker_state, BreakerState::kOpen);
    EXPECT_EQ(s.breaker_trips, 2u);
    EXPECT_EQ(s.flushed_breaker_open, 2u);
    EXPECT_EQ(s.queue_depth, 0u);
  }
}

TEST_F(FrontDoorTest, HotSwapHealsAnOpenBreakerImmediately) {
  BuiltinOpResolver opt;
  Engine engine(&opt);
  engine.load("stack", conv_stack_graph(91));
  FrontDoor door(&engine);
  FrontDoorModelOptions opts;
  opts.breaker_failure_threshold = 1;
  opts.breaker_open_ms = 10000.0;  // cooldown alone would stall the test
  opts.retry_transient_faults = false;
  door.register_model("stack", opts);

  Pcg32 drng(92);
  Tensor x = random_input(Shape{1, 16, 16, 8}, drng);

  fault::Spec boom;
  boom.kind = fault::Kind::kThrow;
  boom.max_fires = 1;
  fault::arm(fault_sites::kInvokeStep, boom);
  EXPECT_EQ(door.submit("stack", x).wait().code, RequestCode::kError);
  EXPECT_EQ(door.stats("stack").breaker_state, BreakerState::kOpen);

  // The failing version is replaced: the breaker heals without waiting out
  // the cooldown, and the new version serves.
  engine.load("stack", conv_stack_graph(93));
  Ticket t = door.submit("stack", x);
  const RequestResult& r = t.wait();
  EXPECT_EQ(r.code, RequestCode::kOk);
  EXPECT_EQ(r.version, 2u);
  EXPECT_EQ(door.stats("stack").breaker_state, BreakerState::kClosed);
}

// --- bounded retry -----------------------------------------------------------

TEST_F(FrontDoorTest, TransientFaultIsRetriedOnceWithBackoff) {
  BuiltinOpResolver opt;
  Engine engine(&opt);
  engine.load("stack", conv_stack_graph(101));
  FrontDoor door(&engine);
  FrontDoorModelOptions opts;
  opts.breaker_failure_threshold = 10;  // keep the breaker out of the way
  door.register_model("stack", opts);

  Pcg32 drng(102);
  Tensor x = random_input(Shape{1, 16, 16, 8}, drng);

  // One transient failure: the retry succeeds.
  fault::Spec boom;
  boom.kind = fault::Kind::kThrow;
  boom.max_fires = 1;
  fault::arm(fault_sites::kInvokeStep, boom);
  {
    Ticket t = door.submit("stack", x);
    const RequestResult& r = t.wait();
    EXPECT_EQ(r.code, RequestCode::kOk);
    EXPECT_TRUE(r.retried);
  }
  {
    const FrontDoorStats s = door.stats("stack");
    EXPECT_EQ(s.retries, 1u);
    EXPECT_EQ(s.completed_ok, 1u);
    EXPECT_EQ(s.failed, 0u);
  }

  // Two consecutive failures: the single retry is spent, kError is final.
  boom.max_fires = 2;
  fault::arm(fault_sites::kInvokeStep, boom);
  {
    Ticket t = door.submit("stack", x);
    const RequestResult& r = t.wait();
    EXPECT_EQ(r.code, RequestCode::kError);
    EXPECT_TRUE(r.retried);
  }
  {
    const FrontDoorStats s = door.stats("stack");
    EXPECT_EQ(s.retries, 2u);
    EXPECT_EQ(s.failed, 1u);
  }
}

// --- zero-alloc steady state -------------------------------------------------

TEST_F(FrontDoorTest, SteadyStateSubmitBatchCompleteReleaseIsHeapFree) {
  BuiltinOpResolver opt;
  Engine engine(&opt);
  const std::string name = "stack";
  engine.load(name, conv_stack_graph(111));
  FrontDoor door(&engine);
  door.register_model(name);

  Pcg32 drng(112);
  Tensor x = random_input(Shape{1, 16, 16, 8}, drng);

  struct AsyncCtx {
    std::atomic<int> done{0};
  } async_ctx;
  const FrontDoorCallback on_done = [](void* ctx, const RequestResult& r) {
    if (r.code == RequestCode::kOk) {
      static_cast<AsyncCtx*>(ctx)->done.fetch_add(1,
                                                  std::memory_order_relaxed);
    }
  };

  // Warm both completion paths: sessions built, arenas grown, worker
  // scratch reserved, EWMA primed.
  for (int i = 0; i < 3; ++i) {
    Ticket t = door.submit(name, x);
    ASSERT_EQ(t.wait().code, RequestCode::kOk);
  }
  ASSERT_EQ(door.submit_async(name, x, 0.0, 0, on_done, &async_ctx),
            RequestCode::kOk);
  while (async_ctx.done.load(std::memory_order_relaxed) < 1) {
    std::this_thread::yield();
  }

  const std::uint64_t events_before = AllocStats::instance().alloc_events();
  const std::size_t bytes_before = AllocStats::instance().current_bytes();
  const std::uint64_t heap_before = g_heap_allocs.load();
  for (int i = 0; i < 10; ++i) {
    Ticket t = door.submit(name, x);
    EXPECT_EQ(t.wait().code, RequestCode::kOk);
    t.release();
  }
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(door.submit_async(name, x, 0.0, 0, on_done, &async_ctx),
              RequestCode::kOk);
    while (async_ctx.done.load(std::memory_order_relaxed) < i + 2) {
      std::this_thread::yield();
    }
  }
  EXPECT_EQ(g_heap_allocs.load(), heap_before)
      << "steady-state front-door serving touched the heap (operator new)";
  EXPECT_EQ(AllocStats::instance().alloc_events(), events_before)
      << "steady-state front-door serving registered tensor/arena allocations";
  EXPECT_EQ(AllocStats::instance().current_bytes(), bytes_before);
}

// --- chaos: overload + fault bursts + hot-swap + unload ----------------------

TEST_F(FrontDoorTest, ChaosSubmitRacesHotSwapFaultBurstsAndUnload) {
  constexpr int kSubmitThreads = 4;
  constexpr int kItersPerThread = 120;
  const std::string name = "chaos";
  const std::string name_b4 = "chaos@b4";

  BuiltinOpResolver opt;
  Pcg32 drng(122);
  Tensor x = random_input(Shape{1, 16, 16, 8}, drng);

  // Every thread submits the same input, and partial batches pad with row 0
  // (= the same input), so whichever variant serves a batch its invoked
  // input is exactly [x] or [x,x,x,x]. Odd engine versions carry graph A
  // (seed 301), even carry graph B (seed 302) — for both variants, since
  // the driver swaps them in lockstep. Expected row outputs per (graph,
  // variant) are precomputed on private models.
  Tensor want[2][2];  // [graph A=0 / B=1][batch-1 row / batch-4 row]
  for (int g = 0; g < 2; ++g) {
    const std::uint64_t seed = g == 0 ? 301 : 302;
    {
      Model m(conv_stack_graph(seed), &opt);
      Session s(&m);
      s.set_input(0, x);
      s.invoke();
      want[g][0] = s.output(0);
    }
    {
      Model m(conv_stack_graph(seed, 4), &opt);
      Session s(&m);
      Tensor stacked = Tensor::f32(Shape{4, 16, 16, 8});
      auto* dst = static_cast<std::uint8_t*>(stacked.raw_data());
      for (int i = 0; i < 4; ++i) {
        std::memcpy(dst + static_cast<std::size_t>(i) * x.byte_size(),
                    x.raw_data(), x.byte_size());
      }
      s.set_input(0, stacked);
      s.invoke();
      Tensor row0 = Tensor::f32(Shape{1, 10});
      std::memcpy(row0.raw_data(), s.output(0).raw_data(), row0.byte_size());
      want[g][1] = std::move(row0);
    }
  }

  const std::size_t alloc_baseline = AllocStats::instance().current_bytes();
  std::atomic<int> mismatches{0};
  std::atomic<int> unexpected_codes{0};
  std::atomic<std::int64_t> ok_count{0};
  std::atomic<std::int64_t> admitted_async{0};
  std::atomic<std::int64_t> done_async{0};

  {
    Engine engine(&opt);
    engine.load(name, conv_stack_graph(301));       // v1 = A
    engine.load(name_b4, conv_stack_graph(301, 4));  // v1 = A

    FrontDoorOptions door_opts;
    door_opts.workers = 2;
    FrontDoor door(&engine, door_opts);
    FrontDoorModelOptions opts;
    opts.variants = {{1, name}, {4, name_b4}};
    opts.max_wait_ms = 0.5;
    opts.queue_capacity = 32;
    door.register_model(name, opts);

    // Checks one terminal result against the want table; safe from any
    // thread (atomics only).
    struct Verify {
      Tensor (*want)[2];
      std::atomic<int>* mismatches;
      std::atomic<int>* unexpected;
      std::atomic<std::int64_t>* ok;
      void check(const RequestResult& r) const {
        switch (r.code) {
          case RequestCode::kOk: {
            ok->fetch_add(1, std::memory_order_relaxed);
            const int g = r.version % 2 == 1 ? 0 : 1;
            const int v = r.batch_size == 1 ? 0 : 1;
            const Tensor& w = want[g][v];
            if (r.output_count != 1 ||
                r.outputs[0].byte_size() != w.byte_size() ||
                std::memcmp(r.outputs[0].raw_data(), w.raw_data(),
                            w.byte_size()) != 0) {
              mismatches->fetch_add(1, std::memory_order_relaxed);
            }
            break;
          }
          case RequestCode::kError:
          case RequestCode::kDeadlineExceeded:
          case RequestCode::kUnknownModel:
          case RequestCode::kQueueFull:
          case RequestCode::kDeadlineInfeasible:
          case RequestCode::kShed:
          case RequestCode::kBreakerOpen:
            break;  // all are legitimate under chaos
          default:
            unexpected->fetch_add(1, std::memory_order_relaxed);
        }
      }
    };
    static Verify verify;  // static so the plain-function callback can see it
    verify = Verify{want, &mismatches, &unexpected_codes, &ok_count};

    const FrontDoorCallback async_done = [](void* ctx, const RequestResult& r) {
      verify.check(r);
      static_cast<std::atomic<std::int64_t>*>(ctx)->fetch_add(
          1, std::memory_order_relaxed);
    };

    std::vector<std::thread> submitters;
    for (int w = 0; w < kSubmitThreads; ++w) {
      submitters.emplace_back([&, w] {
        for (int i = 0; i < kItersPerThread; ++i) {
          const double deadline_ms = (i % 8 == 7) ? 50.0 : 0.0;
          const int priority = (i % 16 == 15) ? 1 : 0;
          if (w == kSubmitThreads - 1) {
            // One thread exercises the fire-and-forget path.
            const RequestCode code = door.submit_async(
                name, x, deadline_ms, priority, async_done, &done_async);
            if (code == RequestCode::kOk) {
              admitted_async.fetch_add(1, std::memory_order_relaxed);
            }
          } else {
            Ticket t = door.submit(name, x, deadline_ms, priority);
            verify.check(t.wait());
            t.release();
          }
          if (i % 4 == 3) std::this_thread::yield();
        }
      });
    }

    // Chaos driver: hot-swaps both variants A<->B in lockstep, arms short
    // fault bursts, finally unloads while submitters are still running.
    std::thread driver([&] {
      for (int swap = 0; swap < 6; ++swap) {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
        const std::uint64_t seed = swap % 2 == 0 ? 302 : 301;
        engine.load(name, conv_stack_graph(seed));
        engine.load(name_b4, conv_stack_graph(seed, 4));
        if (swap % 2 == 0) {
          fault::Spec spec;
          spec.max_fires = 3;
          fault::arm(fault_sites::kInvokeStep, spec);
        } else {
          fault::disarm(fault_sites::kInvokeStep);
        }
      }
      fault::disarm_all();
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      engine.unload(name);
      engine.unload(name_b4);
    });

    for (std::thread& t : submitters) t.join();
    driver.join();

    // Drain the async stragglers (the engine is unloaded, so any still
    // queued resolve quickly as kUnknownModel or shed at door teardown).
    const auto drain_deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (done_async.load(std::memory_order_relaxed) <
               admitted_async.load(std::memory_order_relaxed) &&
           std::chrono::steady_clock::now() < drain_deadline) {
      std::this_thread::yield();
    }

    EXPECT_EQ(mismatches.load(), 0)
        << "a served request was not bit-exact with the version/variant "
           "that served it";
    EXPECT_EQ(unexpected_codes.load(), 0);
    EXPECT_GT(ok_count.load(), 0);

    // Full accounting: every submit reached exactly one typed outcome.
    const FrontDoorStats s = door.stats(name);
    EXPECT_EQ(s.submitted, static_cast<std::uint64_t>(kSubmitThreads) *
                               kItersPerThread);
    EXPECT_EQ(s.submitted, s.admitted + s.rejected_queue_full +
                               s.rejected_infeasible + s.rejected_breaker_open);
    EXPECT_EQ(s.admitted, s.completed_ok + s.failed + s.deadline_exceeded +
                              s.shed + s.unknown_model + s.flushed_breaker_open)
        << "admitted requests did not all reach a terminal code";
    EXPECT_EQ(s.queue_depth, 0u);
    EXPECT_EQ(s.inflight, 0u);
    EXPECT_EQ(done_async.load(), admitted_async.load());

    EXPECT_EQ(engine.model_count(), 0u);
    EXPECT_EQ(engine.prepared_bytes_total(), 0u);
  }
  // Door and engine gone: every slot tensor, session, and prepared buffer
  // must be back to the pre-engine baseline.
  EXPECT_EQ(AllocStats::instance().current_bytes(), alloc_baseline)
      << "front-door lifecycle leaked tracked memory";
}

}  // namespace
}  // namespace mlexray
