#include <gtest/gtest.h>

#include <cmath>

#include "src/graph/builder.h"
#include "src/train/train_loop.h"
#include "src/train/trainer.h"

namespace mlexray {
namespace {

Tensor random_input(Shape shape, Pcg32& rng, float lo = -1, float hi = 1) {
  Tensor t = Tensor::f32(shape);
  float* p = t.data<float>();
  for (std::int64_t i = 0; i < t.num_elements(); ++i) p[i] = rng.uniform(lo, hi);
  return t;
}

double loss_at(Trainer& trainer, const std::vector<Tensor>& inputs,
               int logits, int label) {
  trainer.forward(inputs);
  return softmax_cross_entropy(trainer.activation(logits), label).loss;
}

// Finite-difference gradient check: analytic gradients from one backward
// pass vs central differences, sampled across every trainable weight tensor.
void grad_check(Graph* model, int logits, const std::vector<Tensor>& inputs,
                int label, double rel_tol = 0.08, double abs_tol = 2e-3) {
  TrainConfig cfg;
  Trainer trainer(model, cfg);
  trainer.zero_grad();
  trainer.forward(inputs);
  LossGrad lg = softmax_cross_entropy(trainer.activation(logits), label);
  std::vector<std::pair<int, Tensor>> seeds;
  seeds.emplace_back(logits, std::move(lg.grad));
  trainer.backward(seeds);

  Pcg32 pick(77);
  for (Node& node : model->nodes) {
    for (std::size_t wi = 0; wi < node.weights.size(); ++wi) {
      if (node.type == OpType::kBatchNorm && wi >= 2) continue;
      Tensor& w = node.weights[wi];
      if (w.dtype() != DType::kF32 || w.num_elements() == 0) continue;
      for (int s = 0; s < 3; ++s) {
        std::int64_t idx =
            pick.next_below(static_cast<std::uint32_t>(w.num_elements()));
        float* pw = w.data<float>();
        const float eps = 5e-3f;
        const float original = pw[idx];
        pw[idx] = original + eps;
        double up = loss_at(trainer, inputs, logits, label);
        pw[idx] = original - eps;
        double down = loss_at(trainer, inputs, logits, label);
        pw[idx] = original;
        double numeric = (up - down) / (2.0 * eps);
        double analytic = trainer.weight_grad(node.id, wi).data<float>()[idx];
        if (std::abs(numeric) < abs_tol && std::abs(analytic) < abs_tol) {
          continue;  // both ~zero
        }
        double denom = std::max(std::abs(numeric), std::abs(analytic));
        EXPECT_LT(std::abs(numeric - analytic) / denom, rel_tol)
            << node.name << " weight " << wi << " idx " << idx << " numeric "
            << numeric << " analytic " << analytic;
      }
    }
  }
}

TEST(TrainerGrad, FullyConnectedExactGradient) {
  // 1 input, 2 outputs: loss = xent(softmax(Wx+b), label 0)
  Pcg32 rng(1);
  GraphBuilder b("fc", &rng);
  int x = b.input(Shape{1, 2});
  int logits = b.fully_connected(x, 2, Activation::kNone, "logits");
  Graph m = b.finish({logits});
  // Set known weights.
  Node& fc = m.node(logits);
  float* w = fc.weights[0].data<float>();
  w[0] = 0.5f; w[1] = -0.25f; w[2] = 0.1f; w[3] = 0.3f;
  fc.weights[1].data<float>()[0] = 0.0f;
  fc.weights[1].data<float>()[1] = 0.0f;

  TrainConfig cfg;
  Trainer trainer(&m, cfg);
  Tensor input = Tensor::f32(Shape{1, 2}, {1.0f, 2.0f});

  // Numeric gradient for w[0].
  auto loss_fn = [&]() { return loss_at(trainer, {input}, logits, 0); };
  const float eps = 1e-3f;
  w[0] += eps;
  double up = loss_fn();
  w[0] -= 2 * eps;
  double down = loss_fn();
  w[0] += eps;
  double numeric = (up - down) / (2 * eps);

  // Analytic: dL/dlogit = p - onehot; dL/dw00 = (p0 - 1) * x0.
  trainer.forward({input});
  const float* lg = trainer.activation(logits).data<float>();
  double z0 = lg[0], z1 = lg[1];
  double p0 = std::exp(z0) / (std::exp(z0) + std::exp(z1));
  double analytic = (p0 - 1.0) * 1.0;
  EXPECT_NEAR(numeric, analytic, 1e-3);
}

TEST(TrainerGrad, DescentOnConvBnReluSeNetwork) {
  Pcg32 rng(2);
  GraphBuilder b("gcheck_a", &rng);
  int x = b.input(Shape{1, 6, 6, 3});
  int p = b.pad(x, 0, 1, 0, 1, "pad");
  int c = b.conv2d(p, 4, 3, 3, 2, Padding::kValid, Activation::kNone, "c1");
  c = b.batch_norm(c, "bn1");
  c = b.relu6(c, "r1");
  c = b.depthwise_conv2d(c, 3, 3, 1, Padding::kSame, Activation::kNone, "dw");
  c = b.batch_norm(c, "bn2");
  c = b.hardswish(c, "hs");
  // squeeze-excite
  int pool = b.avg_pool(c, 3, 1, Padding::kValid, "se_pool");
  int sq = b.conv2d(pool, 2, 1, 1, 1, Padding::kSame, Activation::kNone, "se_r");
  sq = b.relu(sq, "se_relu");
  int ex = b.conv2d(sq, 4, 1, 1, 1, Padding::kSame, Activation::kNone, "se_e");
  ex = b.sigmoid(ex, "se_gate");
  c = b.mul(c, ex, "se_scale");
  int g = b.mean(c, "gap");
  int logits = b.fully_connected(g, 3, Activation::kNone, "logits");
  Graph m = b.finish({logits});

  Pcg32 drng(3);
  Tensor input = random_input(Shape{1, 6, 6, 3}, drng);
  grad_check(&m, logits, {input}, 1);
}

TEST(TrainerGrad, DescentOnConcatPoolUpsampleNetwork) {
  Pcg32 rng(4);
  GraphBuilder b("gcheck_b", &rng);
  int x = b.input(Shape{1, 4, 4, 2});
  int a = b.conv2d(x, 2, 1, 1, 1, Padding::kSame, Activation::kNone, "a");
  int c = b.conv2d(x, 2, 3, 3, 1, Padding::kSame, Activation::kNone, "c");
  int cat = b.concat({a, c}, "cat");
  int res = b.conv2d(x, 4, 1, 1, 1, Padding::kSame, Activation::kNone, "res");
  int sum = b.add(cat, res, Activation::kNone, "add");
  int mp = b.max_pool(sum, 2, 2, Padding::kValid, "mp");
  int up = b.upsample_nearest_2x(mp, "up");
  int g = b.mean(up, "gap");
  int logits = b.fully_connected(g, 2, Activation::kNone, "logits");
  Graph m = b.finish({logits});
  Pcg32 drng(5);
  Tensor input = random_input(Shape{1, 4, 4, 2}, drng);
  grad_check(&m, logits, {input}, 0);
}

TEST(TrainerGrad, EmbeddingGradient) {
  Pcg32 rng(6);
  GraphBuilder b("emb", &rng);
  int ids = b.input(Shape{1, 4}, DType::kI32, "tokens");
  int e = b.embedding(ids, 8, 4, "embedding");
  int g = b.mean(e, "pool");
  int logits = b.fully_connected(g, 2, Activation::kNone, "logits");
  Graph m = b.finish({logits});
  Tensor tokens = Tensor::i32(Shape{1, 4});
  tokens.data<std::int32_t>()[0] = 1;
  tokens.data<std::int32_t>()[1] = 3;
  tokens.data<std::int32_t>()[2] = 3;
  tokens.data<std::int32_t>()[3] = 7;
  grad_check(&m, logits, {tokens}, 1);
}

TEST(Trainer, RejectsFusedActivations) {
  Pcg32 rng(7);
  GraphBuilder b("fused", &rng);
  int x = b.input(Shape{1, 4, 4, 2});
  b.conv2d(x, 2, 3, 3, 1, Padding::kSame, Activation::kRelu, "c");
  Graph m = b.finish({1});
  TrainConfig cfg;
  EXPECT_THROW(Trainer(&m, cfg), MlxError);
}

TEST(Training, LearnsStripeOrientation) {
  // Two-class toy task with a *structural* signal (horizontal vs vertical
  // stripes). Note: per-sample training BatchNorm normalizes away purely
  // global signals like brightness, so class evidence must be spatial —
  // the same constraint the synthetic datasets are designed around.
  Pcg32 rng(8);
  GraphBuilder b("toy", &rng);
  int x = b.input(Shape{1, 8, 8, 1});
  int c = b.conv2d(x, 4, 3, 3, 2, Padding::kSame, Activation::kNone, "c1");
  c = b.batch_norm(c, "bn");
  c = b.relu(c, "r");
  int g = b.mean(c, "gap");
  int logits = b.fully_connected(g, 2, Activation::kNone, "logits");
  int prob = b.softmax(logits, "prob");
  Graph m = b.finish({prob});

  Pcg32 drng(9);
  std::vector<LabeledExample> train_set;
  for (int i = 0; i < 60; ++i) {
    int label = i % 2;
    int phase = static_cast<int>(drng.next_below(4));
    Tensor img = Tensor::f32(Shape{1, 8, 8, 1});
    float* p = img.data<float>();
    for (int y = 0; y < 8; ++y) {
      for (int xx = 0; xx < 8; ++xx) {
        int t = label == 1 ? y : xx;
        float v = ((t + phase) / 2) % 2 == 0 ? 0.8f : -0.8f;
        p[y * 8 + xx] = v + drng.uniform(-0.2f, 0.2f);
      }
    }
    train_set.push_back({std::move(img), label});
  }
  FitConfig cfg;
  cfg.epochs = 25;
  cfg.batch_size = 8;
  cfg.train.learning_rate = 1e-2f;
  fit_classifier(&m, logits, train_set, cfg);
  RefOpResolver ref;
  double acc = evaluate_classifier(m, ref, train_set);
  EXPECT_GT(acc, 0.9);
}

TEST(Trainer, StepWithoutGradThrows) {
  Pcg32 rng(10);
  GraphBuilder b("s", &rng);
  int x = b.input(Shape{1, 2});
  int logits = b.fully_connected(x, 2, Activation::kNone, "logits");
  Graph m = b.finish({logits});
  TrainConfig cfg;
  Trainer t(&m, cfg);
  EXPECT_THROW(t.step(), MlxError);
}

TEST(Trainer, CopyWeightsTransfersValues) {
  Pcg32 rng(11);
  GraphBuilder b1("m1", &rng);
  int x1 = b1.input(Shape{1, 2});
  b1.fully_connected(x1, 2, Activation::kNone, "fc");
  Graph a = b1.finish({1});
  Pcg32 rng2(99);
  GraphBuilder b2("m2", &rng2);
  int x2 = b2.input(Shape{1, 2});
  b2.fully_connected(x2, 2, Activation::kNone, "fc");
  Graph c = b2.finish({1});
  copy_weights(a, &c);
  EXPECT_EQ(0, std::memcmp(a.node(1).weights[0].raw_data(),
                           c.node(1).weights[0].raw_data(),
                           a.node(1).weights[0].byte_size()));
}

TEST(Losses, SoftmaxXentRowsIgnoresNegativeLabels) {
  Tensor logits = Tensor::f32(Shape{2, 3}, {1, 2, 3, 1, 2, 3});
  LossGrad lg = softmax_cross_entropy_rows(logits, {-1, 2});
  const float* g = lg.grad.data<float>();
  EXPECT_EQ(g[0], 0.0f);
  EXPECT_EQ(g[1], 0.0f);
  EXPECT_EQ(g[2], 0.0f);
  EXPECT_NE(g[5], 0.0f);
  EXPECT_GT(lg.loss, 0.0);
}

TEST(Losses, SmoothL1MaskedRows) {
  Tensor pred = Tensor::f32(Shape{2, 4}, {0, 0, 0, 0, 3, 0, 0, 0});
  Tensor target = Tensor::f32(Shape{2, 4}, {0, 0, 0, 0, 0, 0, 0, 0});
  LossGrad lg = smooth_l1_rows(pred, target, {false, true});
  EXPECT_NEAR(lg.loss, 3.0 - 0.5, 1e-6);  // |3| > 1 -> linear region
  EXPECT_EQ(lg.grad.data<float>()[0], 0.0f);
  EXPECT_EQ(lg.grad.data<float>()[4], 1.0f);
}

TEST(Losses, MseLossAndGrad) {
  Tensor pred = Tensor::f32(Shape{2}, {1.0f, 3.0f});
  Tensor target = Tensor::f32(Shape{2}, {0.0f, 3.0f});
  LossGrad lg = mse_loss(pred, target);
  EXPECT_NEAR(lg.loss, 0.5, 1e-6);
  EXPECT_NEAR(lg.grad.data<float>()[0], 1.0, 1e-6);
}

}  // namespace
}  // namespace mlexray
