#include <gtest/gtest.h>

#include "src/convert/converter.h"
#include "src/models/detection.h"
#include "src/models/segmentation.h"
#include "src/models/zoo.h"
#include "src/quant/quantizer.h"
#include "src/train/trainer.h"
#include "src/tensor/tensor_stats.h"

namespace mlexray {
namespace {

// Every zoo model must build, run, convert and quantize — structure-level
// checks that do not require training.
class ZooStructure : public ::testing::TestWithParam<std::string> {};

TEST_P(ZooStructure, BuildConvertQuantizeRun) {
  const ZooEntry* entry = nullptr;
  for (const ZooEntry& e : image_zoo()) {
    if (e.name == GetParam()) entry = &e;
  }
  ASSERT_NE(entry, nullptr);
  ZooModel zm = entry->build(3, 1);
  zm.model.validate();
  EXPECT_GT(zm.model.layer_count(), 10);
  EXPECT_GT(zm.model.num_params(), 1000);
  EXPECT_EQ(node_id_by_name(zm.model, "logits"), zm.logits_id);

  Graph mobile = convert_for_inference(zm.model);
  for (const Node& n : mobile.nodes) {
    EXPECT_NE(n.type, OpType::kBatchNorm) << n.name;
  }

  // Checkpoint and converted model agree in float.
  RefOpResolver ref;
  Interpreter ci(&zm.model, &ref);
  Interpreter mi(&mobile, &ref);
  Pcg32 rng(4);
  Tensor input = Tensor::f32(Shape{1, 32, 32, 3});
  float* p = input.data<float>();
  for (std::int64_t i = 0; i < input.num_elements(); ++i) p[i] = rng.uniform(-1, 1);
  ci.set_input(0, input);
  mi.set_input(0, input);
  ci.invoke();
  mi.invoke();
  EXPECT_LT(linf_error(ci.output(0), mi.output(0)), 1e-3) << mobile.name;

  // Full-integer quantization runs end to end on correct kernels.
  Calibrator calib(&mobile);
  calib.observe({input});
  Graph quant = quantize_model(mobile, calib);
  Interpreter qi(&quant, &ref);
  qi.set_input(0, input);
  qi.invoke();
  Tensor out = qi.output(0).to_f32();
  float sum = 0.0f;
  for (std::int64_t i = 0; i < out.num_elements(); ++i) sum += out.data<float>()[i];
  EXPECT_NEAR(sum, 1.0f, 0.1f) << "quantized softmax should stay normalized";
}

INSTANTIATE_TEST_SUITE_P(
    AllImageModels, ZooStructure,
    ::testing::Values("mobilenet_v1_mini", "mobilenet_v2_mini",
                      "mobilenet_v3_mini", "resnet50v2_mini", "inception_mini",
                      "densenet121_mini"));

TEST(Zoo, LayerCountsIncreaseAcrossTableOrder) {
  // Tables 3/5 list models by increasing layer count; our minis keep that
  // relative ordering (v1 < v2 < v3-with-SE; densenet deepest).
  std::vector<int> layers;
  for (const ZooEntry& e : image_zoo()) {
    layers.push_back(e.build(3, 1).model.layer_count());
  }
  EXPECT_LT(layers[0], layers[1]);  // v1 < v2
  EXPECT_LT(layers[1], layers[2]);  // v2 < v3
}

TEST(Zoo, V3HasSqueezeExcitePools) {
  ZooModel v3 = build_mobilenet_v3_mini(3);
  int se_pools = 0;
  for (const Node& n : v3.model.nodes) {
    if (n.type == OpType::kAvgPool2D &&
        n.name.find("se_pool") != std::string::npos) {
      ++se_pools;
    }
  }
  EXPECT_EQ(se_pools, 6);  // one per inverted-residual block
  ZooModel v2 = build_mobilenet_v2_mini(3);
  for (const Node& n : v2.model.nodes) {
    EXPECT_NE(n.type, OpType::kAvgPool2D) << "v2 has no SE pools";
  }
}

TEST(Zoo, V2HasExplicitPadLayers) {
  ZooModel v2 = build_mobilenet_v2_mini(3);
  int pads = 0;
  for (const Node& n : v2.model.nodes) pads += n.type == OpType::kPad ? 1 : 0;
  EXPECT_GE(pads, 2);  // stride-2 blocks use TFLite-style explicit pads
}

TEST(Zoo, AudioModelsMatchSpectrogramGeometry) {
  ZooModel kws = build_kws_tiny_conv(5);
  EXPECT_EQ(kws.model.node(0).output_shape, (Shape{1, 31, 64, 1}));
  ZooModel kws2 = build_kws_low_latency_conv(5);
  EXPECT_EQ(kws2.model.node(0).output_shape, (Shape{1, 31, 64, 1}));
}

TEST(Zoo, TextModelsRunForward) {
  ZooModel nnlm = build_nnlm_mini(5, 64, 24);
  ZooModel bert = build_mobilebert_mini(5, 64, 24);
  RefOpResolver ref;
  Tensor tokens = Tensor::i32(Shape{1, 24});
  for (int i = 0; i < 24; ++i) tokens.data<std::int32_t>()[i] = i % 60;
  for (ZooModel* zm : {&nnlm, &bert}) {
    Interpreter interp(&zm->model, &ref);
    interp.set_input(0, tokens);
    interp.invoke();
    const float* p = interp.output(0).data<float>();
    EXPECT_NEAR(p[0] + p[1], 1.0f, 1e-4);
  }
}

TEST(Ssd, AnchorsCoverGrids) {
  SsdModel ssd = build_ssd_mini("mobilenet", 5);
  auto anchors = ssd_anchors(ssd);
  EXPECT_EQ(anchors.size(), 64u + 16u);
  for (const Anchor& a : anchors) {
    EXPECT_GT(a.cx, 0.0f);
    EXPECT_LT(a.cx, 1.0f);
  }
}

TEST(Ssd, TargetEncodingAssignsBestAnchor) {
  SsdModel ssd = build_ssd_mini("mobilenet", 5);
  DetObject obj{0.5f, 0.5f, 0.3f, 0.3f, 2};
  SsdTargets t = encode_ssd_targets(ssd, {obj});
  int positives = 0;
  for (std::size_t a = 0; a < t.labels.size(); ++a) {
    if (t.positive[a]) {
      ++positives;
      EXPECT_EQ(t.labels[a], 3);  // class 2 -> label 3
    }
  }
  EXPECT_GE(positives, 1);
}

TEST(Ssd, BothBackbonesBuildAndPredict) {
  for (const char* backbone : {"mobilenet", "resnet"}) {
    SsdModel ssd = build_ssd_mini(backbone, 5);
    RefOpResolver ref;
    Interpreter interp(&ssd.model, &ref);
    Tensor input = Tensor::f32(Shape{1, 32, 32, 3});
    auto preds = ssd_predict(ssd, interp, input);
    // Untrained model may or may not predict; the call must be well-formed.
    for (const DetPrediction& p : preds) {
      EXPECT_GE(p.cls, 0);
      EXPECT_LT(p.cls, ssd.num_classes);
    }
  }
}

TEST(Ssd, UnknownBackboneThrows) {
  EXPECT_THROW(build_ssd_mini("vgg", 5), MlxError);
}

TEST(Deeplab, ProducesDenseMask) {
  ZooModel zm = build_deeplab_mini(5);
  RefOpResolver ref;
  Interpreter interp(&zm.model, &ref);
  Tensor input = Tensor::f32(Shape{1, 32, 32, 3});
  Tensor mask = predict_mask(interp, input);
  EXPECT_EQ(mask.shape(), (Shape{32, 32}));
}

TEST(Zoo, BatchedTwinSharesWeightShapes) {
  ZooModel deploy = build_mobilenet_v2_mini(7, 1);
  ZooModel twin = build_mobilenet_v2_mini(7, 8);
  ASSERT_EQ(deploy.model.nodes.size(), twin.model.nodes.size());
  // copy_weights must succeed across batch sizes.
  EXPECT_NO_THROW(copy_weights(twin.model, &deploy.model));
}

}  // namespace
}  // namespace mlexray
