// Property-style parameterized sweeps across the stack:
//  - randomized DepthwiseConv2D shape/scale/zero-point parity (all tiers)
//  - pool/activation parity between resolvers over geometry grids
//  - quantize->dequantize error bounds over random ranges
//  - fixed-point requantization vs double arithmetic over multiplier grids
//  - serialization round-trips for every zoo architecture
//  - converter equivalence for every zoo architecture
//  - preprocessing pipeline invariants over random sensors
#include <gtest/gtest.h>

#include <cmath>

#include "src/convert/converter.h"
#include "src/core/trace.h"
#include "src/graph/builder.h"
#include "src/graph/serialization.h"
#include "src/interpreter/interpreter.h"
#include "src/kernels/activation.h"
#include "src/kernels/dwconv.h"
#include "src/kernels/elementwise.h"
#include "src/kernels/fixed_point.h"
#include "src/models/zoo.h"
#include "src/preprocess/image.h"
#include "src/quant/quantizer.h"
#include "src/tensor/tensor_stats.h"

namespace mlexray {
namespace {

Tensor random_f32(Shape shape, Pcg32& rng, float lo = -1, float hi = 1) {
  Tensor t = Tensor::f32(shape);
  float* p = t.data<float>();
  for (std::int64_t i = 0; i < t.num_elements(); ++i) p[i] = rng.uniform(lo, hi);
  return t;
}

// --- randomized depthwise-conv parity (shape/scale/zero-point fuzz) ---
//
// The conformance grid (test_dwconv_grid.cc) enumerates the interesting
// channel counts; this sweep draws the rest of the axes from a seeded RNG —
// kernel size, stride, padding, depth multiplier, image size, batch, fused
// activation, and (via the input value range) quantization scales and
// asymmetric zero points — so the dwconv tier selection (AVX2 vs generic
// vector vs scalar) cannot drift apart on geometries nobody hand-picked.

class DwConvRandom : public ::testing::TestWithParam<int> {
 protected:
  void TearDown() override {
    set_dwconv_tier_for_testing(DwConvTier::kAuto);
  }
};

TEST_P(DwConvRandom, AllTiersMatchReference) {
  Pcg32 rng(static_cast<std::uint64_t>(3000 + GetParam()));
  const int kh = 1 + static_cast<int>(rng.next_below(3));
  const int kw = 1 + static_cast<int>(rng.next_below(3));
  const int stride = 1 + static_cast<int>(rng.next_below(2));
  const int dm = 1 + static_cast<int>(rng.next_below(2));
  const auto ch = static_cast<std::int64_t>(1 + rng.next_below(40));
  const auto batch = static_cast<std::int64_t>(1 + rng.next_below(2));
  const std::int64_t h = kh + static_cast<std::int64_t>(rng.next_below(8));
  const std::int64_t w = kw + static_cast<std::int64_t>(rng.next_below(8));
  const Padding padding =
      rng.next_below(2) == 0 ? Padding::kSame : Padding::kValid;
  const Activation acts[] = {Activation::kNone, Activation::kRelu,
                             Activation::kRelu6};
  const Activation act = acts[rng.next_below(3)];
  // Random, asymmetric value range -> random activation scales and nonzero
  // zero points after calibration.
  const float lo = -rng.uniform(0.2f, 4.0f);
  const float hi = rng.uniform(0.2f, 4.0f);

  GraphBuilder b("dwrand", &rng);
  const Shape in_shape{batch, h, w, ch};
  int x = b.input(in_shape);
  b.depthwise_conv2d(x, kh, kw, stride, padding, act, "op", dm);
  Graph m = b.finish({1});

  Tensor input = random_f32(in_shape, rng, lo, hi);
  RefOpResolver ref;
  BuiltinOpResolver opt;

  auto run_all_tiers = [&](Interpreter& oi) {
    oi.invoke();
    const float* p = oi.output(0).data<float>();
    std::vector<float> want(p, p + oi.output(0).num_elements());
    for (DwConvTier tier :
         {DwConvTier::kGenericVector, DwConvTier::kScalar}) {
      set_dwconv_tier_for_testing(tier);
      oi.invoke();
      EXPECT_EQ(std::memcmp(oi.output(0).raw_data(), want.data(),
                            want.size() * sizeof(float)),
                0)
          << "tier " << static_cast<int>(tier) << " diverged (seed "
          << GetParam() << ")";
    }
    set_dwconv_tier_for_testing(DwConvTier::kAuto);
  };

  {  // float: bit-exact against the reference kernel, all tiers.
    Interpreter ri(&m, &ref);
    Interpreter oi(&m, &opt, /*num_threads=*/2);
    ri.set_input(0, input);
    oi.set_input(0, input);
    ri.invoke();
    run_all_tiers(oi);
    EXPECT_EQ(std::memcmp(ri.output(0).raw_data(), oi.output(0).raw_data(),
                          static_cast<std::size_t>(
                              ri.output(0).num_elements()) *
                              sizeof(float)),
              0)
        << "f32 opt != ref (seed " << GetParam() << ")";
  }
  {  // int8: one quantum vs the double-requant reference, all tiers equal.
    Calibrator calib(&m);
    for (int i = 0; i < 4; ++i) {
      calib.observe({random_f32(in_shape, rng, lo, hi)});
    }
    calib.observe({input});
    Graph qm = quantize_model(m, calib);
    const float quantum = [&] {
      const Node& out = qm.node(qm.outputs[0]);
      return qm.node(out.inputs[0]).output_quant.scale();
    }();
    Interpreter ri(&qm, &ref);
    Interpreter oi(&qm, &opt, /*num_threads=*/2);
    ri.set_input(0, input);
    oi.set_input(0, input);
    ri.invoke();
    run_all_tiers(oi);
    EXPECT_LE(linf_error(ri.output(0), oi.output(0)), 1.001f * quantum)
        << "int8 opt drifted past one quantum (seed " << GetParam() << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DwConvRandom, ::testing::Range(1, 17));

// --- randomized int8 elementwise parity (shape/broadcast/scale fuzz) ---
//
// Same contract for the elementwise family (src/kernels/elementwise.h): the
// conformance grid (test_elementwise_grid.cc) enumerates the interesting
// channel counts; this sweep draws op, geometry, broadcast pattern, fused
// activation, and (via per-operand value ranges) quantization scales and
// asymmetric zero points from a seeded RNG, then asserts every compute tier
// agrees bit-for-bit and the Q31 path stays within one quantum of the
// double-math reference.

class ElementwiseRandom : public ::testing::TestWithParam<int> {
 protected:
  void TearDown() override {
    set_elementwise_tier_for_testing(ElementwiseTier::kAuto);
  }
};

TEST_P(ElementwiseRandom, AllTiersMatchReference) {
  Pcg32 rng(static_cast<std::uint64_t>(4000 + GetParam()));
  enum { kOpAdd, kOpSub, kOpMul, kOpMean, kOpLogistic, kOpHSwish, kOpTanh };
  const int op = static_cast<int>(rng.next_below(7));
  const bool binary = op == kOpAdd || op == kOpSub || op == kOpMul;
  const bool broadcast = binary && rng.next_below(2) == 0;
  const auto ch = static_cast<std::int64_t>(1 + rng.next_below(40));
  const auto batch = static_cast<std::int64_t>(1 + rng.next_below(2));
  const std::int64_t h = 1 + static_cast<std::int64_t>(rng.next_below(8));
  const std::int64_t w = 1 + static_cast<std::int64_t>(rng.next_below(8));
  const Activation acts[] = {Activation::kNone, Activation::kRelu,
                             Activation::kRelu6};
  const Activation act =
      (op == kOpAdd || op == kOpSub) ? acts[rng.next_below(3)] : Activation::kNone;
  // Random per-operand asymmetric value ranges -> distinct activation
  // scales and nonzero zero points after calibration.
  const float a_lo = -rng.uniform(0.2f, 4.0f);
  const float a_hi = rng.uniform(0.2f, 4.0f);
  const float b_lo = -rng.uniform(0.2f, 4.0f);
  const float b_hi = rng.uniform(0.2f, 4.0f);

  GraphBuilder b("ewrand", &rng);
  const Shape in_shape{batch, h, w, ch};
  const Shape gate_shape =
      broadcast ? Shape{batch, 1, 1, ch} : in_shape;
  int x = b.input(in_shape);
  switch (op) {
    case kOpAdd: b.add(x, b.input(gate_shape, DType::kF32, "g"), act, "op"); break;
    case kOpSub: b.sub(x, b.input(gate_shape, DType::kF32, "g"), act, "op"); break;
    case kOpMul: b.mul(x, b.input(gate_shape, DType::kF32, "g"), "op"); break;
    case kOpMean: b.mean(x, "op"); break;
    case kOpLogistic: b.sigmoid(x, "op"); break;
    case kOpHSwish: b.hardswish(x, "op"); break;
    case kOpTanh: b.tanh(x, "op"); break;
  }
  Graph m = b.finish({binary ? 2 : 1});

  Tensor input = random_f32(in_shape, rng, a_lo, a_hi);
  Tensor gate = random_f32(gate_shape, rng, b_lo, b_hi);
  Calibrator calib(&m);
  for (int i = 0; i < 4; ++i) {
    if (binary) {
      calib.observe({random_f32(in_shape, rng, a_lo, a_hi),
                     random_f32(gate_shape, rng, b_lo, b_hi)});
    } else {
      calib.observe({random_f32(in_shape, rng, a_lo, a_hi)});
    }
  }
  if (binary) {
    calib.observe({input, gate});
  } else {
    calib.observe({input});
  }
  Graph qm = quantize_model(m, calib);
  const float quantum = [&] {
    const Node& out = qm.node(qm.outputs[0]);
    return qm.node(out.inputs[0]).output_quant.scale();
  }();
  RefOpResolver ref;
  BuiltinOpResolver opt;
  Interpreter ri(&qm, &ref);
  Interpreter oi(&qm, &opt, /*num_threads=*/2);
  ri.set_input(0, input);
  oi.set_input(0, input);
  if (binary) {
    ri.set_input(1, gate);
    oi.set_input(1, gate);
  }
  ri.invoke();
  oi.invoke();
  const float* p = oi.output(0).data<float>();
  std::vector<float> want(p, p + oi.output(0).num_elements());
  for (ElementwiseTier tier :
       {ElementwiseTier::kGenericVector, ElementwiseTier::kScalar}) {
    set_elementwise_tier_for_testing(tier);
    oi.invoke();
    EXPECT_EQ(std::memcmp(oi.output(0).raw_data(), want.data(),
                          want.size() * sizeof(float)),
              0)
        << "tier " << static_cast<int>(tier) << " diverged (seed "
        << GetParam() << ", op " << op << ")";
  }
  set_elementwise_tier_for_testing(ElementwiseTier::kAuto);
  EXPECT_LE(linf_error(ri.output(0), oi.output(0)), 1.001f * quantum)
      << "int8 opt drifted past one quantum (seed " << GetParam() << ", op "
      << op << ")";
}

INSTANTIATE_TEST_SUITE_P(Seeds, ElementwiseRandom, ::testing::Range(1, 17));

// --- pooling parity sweep ---

struct PoolCase {
  int size, ch, window, stride;
  Padding padding;
  bool max_pool;
};

class PoolParity : public ::testing::TestWithParam<PoolCase> {};

TEST_P(PoolParity, ResolversAgree) {
  const PoolCase& c = GetParam();
  Pcg32 rng(17);
  GraphBuilder b("pool", &rng);
  int x = b.input(Shape{1, c.size, c.size, c.ch});
  if (c.max_pool) {
    b.max_pool(x, c.window, c.stride, c.padding, "p");
  } else {
    b.avg_pool(x, c.window, c.stride, c.padding, "p");
  }
  Graph m = b.finish({1});
  RefOpResolver ref;
  BuiltinOpResolver opt;
  Interpreter ri(&m, &ref);
  Interpreter oi(&m, &opt);
  Tensor input = random_f32(Shape{1, c.size, c.size, c.ch}, rng);
  ri.set_input(0, input);
  oi.set_input(0, input);
  ri.invoke();
  oi.invoke();
  EXPECT_LT(linf_error(ri.output(0), oi.output(0)), 1e-5);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, PoolParity,
    ::testing::Values(PoolCase{8, 3, 2, 2, Padding::kValid, false},
                      PoolCase{8, 3, 2, 2, Padding::kValid, true},
                      PoolCase{9, 2, 3, 2, Padding::kSame, false},
                      PoolCase{9, 2, 3, 2, Padding::kSame, true},
                      PoolCase{8, 4, 8, 1, Padding::kValid, false},
                      PoolCase{7, 1, 3, 1, Padding::kSame, true},
                      PoolCase{16, 8, 2, 2, Padding::kValid, false}));

// --- quantization round-trip bound over random ranges ---

class QuantRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(QuantRoundTrip, ErrorBoundedByOneStep) {
  Pcg32 rng(static_cast<std::uint64_t>(GetParam()));
  const float lo = rng.uniform(-10.0f, -0.1f);
  const float hi = rng.uniform(0.1f, 10.0f);
  QuantParams q = activation_quant_params(lo, hi, /*symmetric=*/false);
  for (int i = 0; i < 200; ++i) {
    float real = rng.uniform(lo, hi);
    auto quantized = static_cast<std::int32_t>(std::lround(real / q.scale())) +
                     q.zero_point();
    quantized = std::clamp<std::int32_t>(quantized, -128, 127);
    float back = q.scale() * static_cast<float>(quantized - q.zero_point());
    EXPECT_LE(std::abs(back - real), q.scale() * 0.75f)
        << "range [" << lo << "," << hi << "] value " << real;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, QuantRoundTrip, ::testing::Range(1, 11));

// --- fixed-point requantization sweep ---

class FixedPointSweep : public ::testing::TestWithParam<int> {};

TEST_P(FixedPointSweep, MatchesDoubleWithinOneUnit) {
  Pcg32 rng(static_cast<std::uint64_t>(100 + GetParam()));
  double multiplier = std::pow(10.0, -rng.uniform(0.5f, 6.0f));
  std::int32_t m = 0;
  int shift = 0;
  quantize_multiplier(multiplier, &m, &shift);
  for (int i = 0; i < 300; ++i) {
    auto x = static_cast<std::int32_t>(rng.next_u32() % 2000000) - 1000000;
    std::int32_t got = multiply_by_quantized_multiplier(x, m, shift);
    auto want = static_cast<std::int32_t>(std::lround(x * multiplier));
    EXPECT_NEAR(got, want, 1) << "x=" << x << " mult=" << multiplier;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FixedPointSweep, ::testing::Range(1, 9));

// --- zoo-wide serialization round trip ---

class ZooSerialization : public ::testing::TestWithParam<int> {};

TEST_P(ZooSerialization, OutputsIdenticalAfterRoundTrip) {
  const ZooEntry& entry = image_zoo()[static_cast<std::size_t>(GetParam())];
  ZooModel zm = entry.build(5, 1);
  auto bytes = serialize_model(zm.model);
  BinaryReader reader(bytes);
  Graph back = deserialize_model(reader);
  RefOpResolver ref;
  Interpreter a(&zm.model, &ref);
  Interpreter b(&back, &ref);
  Pcg32 rng(6);
  Tensor input = random_f32(Shape{1, 32, 32, 3}, rng);
  a.set_input(0, input);
  b.set_input(0, input);
  a.invoke();
  b.invoke();
  EXPECT_EQ(linf_error(a.output(0), b.output(0)), 0.0) << entry.name;
}

INSTANTIATE_TEST_SUITE_P(AllModels, ZooSerialization, ::testing::Range(0, 6));

// --- zoo-wide converter equivalence (random BN statistics) ---

class ZooConverter : public ::testing::TestWithParam<int> {};

TEST_P(ZooConverter, ConvertedMatchesCheckpoint) {
  const ZooEntry& entry = image_zoo()[static_cast<std::size_t>(GetParam())];
  ZooModel zm = entry.build(8, 1);
  // Randomize BN statistics so folding is non-trivial.
  Pcg32 wrng(44);
  for (Node& n : zm.model.nodes) {
    if (n.type != OpType::kBatchNorm) continue;
    for (std::int64_t i = 0; i < n.weights[0].num_elements(); ++i) {
      n.weights[0].data<float>()[i] = wrng.uniform(0.5f, 1.5f);
      n.weights[1].data<float>()[i] = wrng.uniform(-0.3f, 0.3f);
      n.weights[2].data<float>()[i] = wrng.uniform(-0.5f, 0.5f);
      n.weights[3].data<float>()[i] = wrng.uniform(0.3f, 2.0f);
    }
  }
  Graph converted = convert_for_inference(zm.model);
  RefOpResolver ref;
  Interpreter a(&zm.model, &ref);
  Interpreter b(&converted, &ref);
  Pcg32 rng(7);
  for (int trial = 0; trial < 2; ++trial) {
    Tensor input = random_f32(Shape{1, 32, 32, 3}, rng);
    a.set_input(0, input);
    b.set_input(0, input);
    a.invoke();
    b.invoke();
    EXPECT_LT(linf_error(a.output(0), b.output(0)), 1e-3) << entry.name;
  }
}

INSTANTIATE_TEST_SUITE_P(AllModels, ZooConverter, ::testing::Range(0, 6));

// --- zoo-wide quantization sanity (correct kernels stay close to float) ---

class ZooQuantization : public ::testing::TestWithParam<int> {};

TEST_P(ZooQuantization, QuantizedTracksFloatOnCorrectKernels) {
  const ZooEntry& entry = image_zoo()[static_cast<std::size_t>(GetParam())];
  ZooModel zm = entry.build(9, 1);
  Graph mobile = convert_for_inference(zm.model);
  Calibrator calib(&mobile);
  Pcg32 rng(8);
  std::vector<Tensor> samples;
  for (int i = 0; i < 4; ++i) samples.push_back(random_f32(Shape{1, 32, 32, 3}, rng));
  for (const Tensor& s : samples) calib.observe({s});
  Graph quant = quantize_model(mobile, calib);
  RefOpResolver ref;
  Interpreter fi(&mobile, &ref);
  Interpreter qi(&quant, &ref);
  for (const Tensor& s : samples) {
    fi.set_input(0, s);
    qi.set_input(0, s);
    fi.invoke();
    qi.invoke();
    // Output probabilities stay within an absolute band of the float model
    // on calibrated data. (Relative metrics are meaningless here: untrained
    // nets emit near-uniform softmax with a tiny range, and V3's
    // squeeze-excite gates amplify quantization noise the most.)
    EXPECT_LT(linf_error(qi.output(0), fi.output(0)), 0.25) << entry.name;
  }
}

INSTANTIATE_TEST_SUITE_P(AllModels, ZooQuantization, ::testing::Range(0, 6));

// --- preprocessing invariants over random sensors ---

class PipelineInvariants : public ::testing::TestWithParam<int> {};

TEST_P(PipelineInvariants, OutputAlwaysInSpecRange) {
  Pcg32 rng(static_cast<std::uint64_t>(500 + GetParam()));
  Tensor sensor = Tensor::u8(Shape{48, 48, 3});
  auto* p = sensor.data<std::uint8_t>();
  for (std::int64_t i = 0; i < sensor.num_elements(); ++i) {
    p[i] = static_cast<std::uint8_t>(rng.next_below(256));
  }
  InputSpec spec;
  spec.height = 16;
  spec.width = 16;
  spec.channels = 3;
  spec.range_lo = -1.0f;
  spec.range_hi = 1.0f;
  for (PreprocBug bug : {PreprocBug::kNone, PreprocBug::kWrongResize,
                         PreprocBug::kWrongChannelOrder, PreprocBug::kRotated90}) {
    Tensor out = run_image_pipeline(sensor, {spec, bug});
    EXPECT_EQ(out.shape(), (Shape{1, 16, 16, 3}));
    TensorSummary s = summarize(out);
    EXPECT_GE(s.min, spec.range_lo - 1e-4f);
    EXPECT_LE(s.max, spec.range_hi + 1e-4f);
  }
  // The normalization bug is the one that violates the expected range.
  Tensor out = run_image_pipeline(sensor, {spec, PreprocBug::kWrongNormalization});
  TensorSummary s = summarize(out);
  EXPECT_GE(s.min, -1e-4f);  // washed into [0,1]
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelineInvariants, ::testing::Range(1, 9));

// --- resize properties ---

class ResizeProps : public ::testing::TestWithParam<int> {};

TEST_P(ResizeProps, BothMethodsPreserveMeanApproximately) {
  Pcg32 rng(static_cast<std::uint64_t>(900 + GetParam()));
  Tensor img = random_f32(Shape{24, 24, 3}, rng, 0.0f, 255.0f);
  double mean_in = summarize(img).mean;
  for (int out_size : {8, 12, 16}) {
    Tensor area = resize_area_average(img, out_size, out_size);
    Tensor bil = resize_bilinear(img, out_size, out_size);
    EXPECT_NEAR(summarize(area).mean, mean_in, 6.0);
    EXPECT_NEAR(summarize(bil).mean, mean_in, 6.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ResizeProps, ::testing::Range(1, 6));

// --- trace round-trip over random contents ---

class TraceFuzz : public ::testing::TestWithParam<int> {};

TEST_P(TraceFuzz, SerializationPreservesEverything) {
  Pcg32 rng(static_cast<std::uint64_t>(1300 + GetParam()));
  Trace t;
  t.pipeline_name = "fuzz" + std::to_string(GetParam());
  const int frames = 1 + static_cast<int>(rng.next_below(4));
  for (int f = 0; f < frames; ++f) {
    FrameTrace frame;
    frame.frame_id = f;
    const int tensors = static_cast<int>(rng.next_below(3));
    for (int k = 0; k < tensors; ++k) {
      frame.tensors["t" + std::to_string(k)] =
          random_f32(Shape{1 + static_cast<std::int64_t>(rng.next_below(6))}, rng);
    }
    frame.scalars["s"] = rng.next_double();
    const int layers = static_cast<int>(rng.next_below(4));
    for (int l = 0; l < layers; ++l) {
      frame.layer_names.push_back("layer" + std::to_string(l));
      frame.layer_outputs.push_back(random_f32(Shape{2, 2}, rng));
      frame.layer_latency_ms.push_back(rng.next_double());
    }
    t.frames.push_back(std::move(frame));
  }
  Trace back = deserialize_trace(serialize_trace(t));
  ASSERT_EQ(back.frames.size(), t.frames.size());
  for (std::size_t f = 0; f < t.frames.size(); ++f) {
    EXPECT_EQ(back.frames[f].tensors.size(), t.frames[f].tensors.size());
    EXPECT_EQ(back.frames[f].layer_names, t.frames[f].layer_names);
    for (std::size_t l = 0; l < t.frames[f].layer_outputs.size(); ++l) {
      EXPECT_EQ(linf_error(back.frames[f].layer_outputs[l],
                           t.frames[f].layer_outputs[l]),
                0.0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TraceFuzz, ::testing::Range(1, 9));

// --- activation LUT properties ---

class LutProps : public ::testing::TestWithParam<int> {};

TEST_P(LutProps, SigmoidLutMonotoneAndBounded) {
  Pcg32 rng(static_cast<std::uint64_t>(2000 + GetParam()));
  QuantParams in_q = activation_quant_params(rng.uniform(-8, -1),
                                             rng.uniform(1, 8), false);
  QuantParams out_q = QuantParams::per_tensor(1.0f / 256.0f, -128);
  auto table = build_i8_lut(in_q, out_q, sigmoid_f32);
  for (int i = 1; i < 256; ++i) {
    EXPECT_GE(table[static_cast<std::size_t>(i)],
              table[static_cast<std::size_t>(i - 1)]);  // monotone
  }
  EXPECT_GE(table[0], -128);
  EXPECT_LE(table[255], 127);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LutProps, ::testing::Range(1, 6));

}  // namespace
}  // namespace mlexray
