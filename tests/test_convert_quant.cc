#include <gtest/gtest.h>

#include <cmath>

#include "src/convert/converter.h"
#include "src/graph/builder.h"
#include "src/interpreter/interpreter.h"
#include "src/quant/quantizer.h"
#include "src/tensor/tensor_stats.h"

namespace mlexray {
namespace {

Tensor random_input(Shape shape, Pcg32& rng, float lo = -1, float hi = 1) {
  Tensor t = Tensor::f32(shape);
  float* p = t.data<float>();
  for (std::int64_t i = 0; i < t.num_elements(); ++i) p[i] = rng.uniform(lo, hi);
  return t;
}

// Post-activation net: conv -> bn -> relu -> dwconv -> bn -> relu6 -> fc.
Graph post_act_model(std::uint64_t seed) {
  Pcg32 rng(seed);
  GraphBuilder b("post_act", &rng);
  int x = b.input(Shape{1, 8, 8, 3});
  int c = b.conv2d(x, 6, 3, 3, 2, Padding::kSame, Activation::kNone, "c1");
  c = b.batch_norm(c, "bn1");
  c = b.relu(c, "r1");
  c = b.depthwise_conv2d(c, 3, 3, 1, Padding::kSame, Activation::kNone, "dw1");
  c = b.batch_norm(c, "bn2");
  c = b.relu6(c, "r2");
  int g = b.mean(c, "gap");
  int logits = b.fully_connected(g, 4, Activation::kNone, "logits");
  int prob = b.softmax(logits, "prob");
  Graph m = b.finish({prob});
  // Give BN non-trivial statistics so folding actually does arithmetic.
  for (Node& n : m.nodes) {
    if (n.type != OpType::kBatchNorm) continue;
    Pcg32 wrng(n.id + 100);
    for (std::int64_t i = 0; i < n.weights[0].num_elements(); ++i) {
      n.weights[0].data<float>()[i] = wrng.uniform(0.5f, 1.5f);   // gamma
      n.weights[1].data<float>()[i] = wrng.uniform(-0.3f, 0.3f);  // beta
      n.weights[2].data<float>()[i] = wrng.uniform(-0.5f, 0.5f);  // mean
      n.weights[3].data<float>()[i] = wrng.uniform(0.3f, 2.0f);   // var
    }
  }
  return m;
}

// Pre-activation net: bn -> relu -> conv with residual (ResNetV2-style).
Graph pre_act_model(std::uint64_t seed) {
  Pcg32 rng(seed);
  GraphBuilder b("pre_act", &rng);
  int x = b.input(Shape{1, 8, 8, 4});
  int bn = b.batch_norm(x, "pre_bn");
  int r = b.relu(bn, "pre_relu");
  int c = b.conv2d(r, 4, 3, 3, 1, Padding::kSame, Activation::kNone, "conv");
  int sum = b.add(x, c, Activation::kNone, "residual");
  int g = b.mean(sum, "gap");
  int logits = b.fully_connected(g, 3, Activation::kNone, "logits");
  Graph m = b.finish({logits});
  Node& n = m.node(bn);
  Pcg32 wrng(55);
  for (std::int64_t i = 0; i < n.weights[0].num_elements(); ++i) {
    n.weights[0].data<float>()[i] = wrng.uniform(0.5f, 1.5f);
    n.weights[1].data<float>()[i] = wrng.uniform(-0.3f, 0.3f);
    n.weights[2].data<float>()[i] = wrng.uniform(-0.5f, 0.5f);
    n.weights[3].data<float>()[i] = wrng.uniform(0.3f, 2.0f);
  }
  return m;
}

TEST(Converter, FoldedModelMatchesCheckpoint) {
  Graph ckpt = post_act_model(1);
  Graph converted = convert_for_inference(ckpt);
  // BN gone, activations fused.
  for (const Node& n : converted.nodes) {
    EXPECT_NE(n.type, OpType::kBatchNorm);
    EXPECT_NE(n.type, OpType::kRelu);
    EXPECT_NE(n.type, OpType::kRelu6);
  }
  EXPECT_LT(converted.nodes.size(), ckpt.nodes.size());

  RefOpResolver ref;
  Interpreter ci(&ckpt, &ref);
  Interpreter vi(&converted, &ref);
  Pcg32 rng(2);
  for (int i = 0; i < 3; ++i) {
    Tensor input = random_input(Shape{1, 8, 8, 3}, rng);
    ci.set_input(0, input);
    vi.set_input(0, input);
    ci.invoke();
    vi.invoke();
    EXPECT_LT(linf_error(ci.output(0), vi.output(0)), 1e-4) << "sample " << i;
  }
}

TEST(Converter, PreActBatchNormBecomesDepthwise) {
  Graph ckpt = pre_act_model(3);
  Graph converted = convert_for_inference(ckpt);
  int bn_count = 0;
  for (const Node& n : converted.nodes) {
    if (n.type == OpType::kBatchNorm) ++bn_count;
  }
  EXPECT_EQ(bn_count, 0);

  RefOpResolver ref;
  Interpreter ci(&ckpt, &ref);
  Interpreter vi(&converted, &ref);
  Pcg32 rng(4);
  Tensor input = random_input(Shape{1, 8, 8, 4}, rng);
  ci.set_input(0, input);
  vi.set_input(0, input);
  ci.invoke();
  vi.invoke();
  EXPECT_LT(linf_error(ci.output(0), vi.output(0)), 1e-4);
}

TEST(Converter, OptionsDisableFolding) {
  Graph ckpt = post_act_model(5);
  ConvertOptions opts;
  opts.fold_batch_norm = false;
  opts.fuse_activations = false;
  Graph converted = convert_for_inference(ckpt, opts);
  EXPECT_EQ(converted.nodes.size(), ckpt.nodes.size());
}

TEST(Converter, SharedProducerNotFused) {
  // conv output feeds both a relu and a residual add: the relu must NOT be
  // fused into the conv (the add needs the pre-activation value).
  Pcg32 rng(6);
  GraphBuilder b("shared", &rng);
  int x = b.input(Shape{1, 4, 4, 2});
  int c = b.conv2d(x, 2, 3, 3, 1, Padding::kSame, Activation::kNone, "conv");
  int r = b.relu(c, "relu");
  int sum = b.add(c, r, Activation::kNone, "add");
  Graph m = b.finish({sum});
  Graph converted = convert_for_inference(m);
  bool has_standalone_relu = false;
  for (const Node& n : converted.nodes) {
    if (n.type == OpType::kRelu) has_standalone_relu = true;
    if (n.type == OpType::kConv2D) {
      EXPECT_EQ(n.attrs.activation, Activation::kNone);
    }
  }
  EXPECT_TRUE(has_standalone_relu);
  RefOpResolver ref;
  Interpreter ci(&m, &ref);
  Interpreter vi(&converted, &ref);
  Tensor input = random_input(Shape{1, 4, 4, 2}, rng);
  ci.set_input(0, input);
  vi.set_input(0, input);
  ci.invoke();
  vi.invoke();
  EXPECT_LT(linf_error(ci.output(0), vi.output(0)), 1e-5);
}

TEST(QuantizeWeights, PerChannelReconstruction) {
  Pcg32 rng(7);
  Tensor w = random_input(Shape{4, 3, 3, 2}, rng, -3.0f, 3.0f);
  Tensor q = quantize_weights(w, 0, /*per_channel=*/true);
  EXPECT_TRUE(q.quant().per_channel());
  EXPECT_EQ(q.quant().scales.size(), 4u);
  Tensor back = q.to_f32();
  // Error bounded by scale/2 per channel.
  const float* orig = w.data<float>();
  const float* rec = back.data<float>();
  const std::int64_t per_ch = w.num_elements() / 4;
  for (std::int64_t i = 0; i < w.num_elements(); ++i) {
    float scale = q.quant().scales[static_cast<std::size_t>(i / per_ch)];
    EXPECT_LE(std::abs(orig[i] - rec[i]), scale * 0.51f + 1e-6f);
  }
}

TEST(QuantizeWeights, PerTensorUsesSingleScale) {
  Pcg32 rng(8);
  Tensor w = random_input(Shape{4, 2}, rng);
  Tensor q = quantize_weights(w, 0, /*per_channel=*/false);
  EXPECT_FALSE(q.quant().per_channel());
  EXPECT_EQ(q.quant().zero_point(), 0);  // symmetric
}

TEST(ActivationParams, AsymmetricCoversRange) {
  QuantParams q = activation_quant_params(-1.0f, 1.0f, /*symmetric=*/false);
  // -1.0 -> ~-128, +1.0 -> ~127.
  auto quantize = [&](float v) {
    return static_cast<int>(std::lround(v / q.scale())) + q.zero_point();
  };
  EXPECT_NEAR(quantize(-1.0f), -128, 1);
  EXPECT_NEAR(quantize(1.0f), 127, 1);
}

TEST(ActivationParams, SymmetricHasZeroZeroPoint) {
  QuantParams q = activation_quant_params(-0.5f, 2.0f, /*symmetric=*/true);
  EXPECT_EQ(q.zero_point(), 0);
  EXPECT_NEAR(q.scale(), 2.0f / 127.0f, 1e-6);
}

TEST(Calibrator, MinMaxTracksExtremes) {
  Pcg32 rng(9);
  GraphBuilder b("cal", &rng);
  int x = b.input(Shape{1, 4});
  Graph m = b.finish({x});
  Calibrator calib(&m);
  calib.observe({Tensor::f32(Shape{1, 4}, {-2, 0, 1, 5})});
  calib.observe({Tensor::f32(Shape{1, 4}, {-1, 0, 1, 2})});
  auto r = calib.range(0);
  EXPECT_FLOAT_EQ(r.min, -2.0f);
  EXPECT_FLOAT_EQ(r.max, 5.0f);
}

TEST(Calibrator, PercentileClipsOutliers) {
  Pcg32 rng(10);
  GraphBuilder b("cal", &rng);
  int x = b.input(Shape{1, 2});
  Graph m = b.finish({x});
  CalibrationOptions opts;
  opts.method = CalibrationOptions::Method::kPercentile;
  opts.percentile = 80.0;
  Calibrator calib(&m, opts);
  for (int i = 0; i < 9; ++i) {
    calib.observe({Tensor::f32(Shape{1, 2}, {0.0f, 1.0f})});
  }
  calib.observe({Tensor::f32(Shape{1, 2}, {0.0f, 100.0f})});  // outlier
  auto r = calib.range(0);
  EXPECT_LT(r.max, 50.0f);  // outlier clipped

  CalibrationOptions mm;
  Calibrator calib2(&m, mm);
  for (int i = 0; i < 9; ++i) {
    calib2.observe({Tensor::f32(Shape{1, 2}, {0.0f, 1.0f})});
  }
  calib2.observe({Tensor::f32(Shape{1, 2}, {0.0f, 100.0f})});
  EXPECT_FLOAT_EQ(calib2.range(0).max, 100.0f);  // min-max inflated
}

TEST(QuantizeModel, StructureHasQuantizeAndDequantize) {
  Graph ckpt = post_act_model(11);
  Graph converted = convert_for_inference(ckpt);
  Calibrator calib(&converted);
  Pcg32 rng(12);
  for (int i = 0; i < 4; ++i) {
    calib.observe({random_input(Shape{1, 8, 8, 3}, rng)});
  }
  Graph qm = quantize_model(converted, calib);
  EXPECT_EQ(qm.node(1).type, OpType::kQuantize);
  EXPECT_EQ(qm.node(qm.outputs[0]).type, OpType::kDequantize);
  // Pools inherit producer quantization (paper §2, per-tensor rules).
  for (const Node& n : qm.nodes) {
    if (n.type == OpType::kMean || n.type == OpType::kAvgPool2D) {
      const Node& producer = qm.node(n.inputs[0]);
      EXPECT_EQ(n.output_quant.scale(), producer.output_quant.scale());
    }
    if (n.type == OpType::kConv2D || n.type == OpType::kDepthwiseConv2D) {
      EXPECT_EQ(n.weights[0].dtype(), DType::kI8);
      EXPECT_EQ(n.weights[1].dtype(), DType::kI32);
    }
  }
}

TEST(QuantizeModel, RequiresConvertedModel) {
  Graph ckpt = post_act_model(13);
  Calibrator calib(&ckpt);
  Pcg32 rng(14);
  calib.observe({random_input(Shape{1, 8, 8, 3}, rng)});
  EXPECT_THROW(quantize_model(ckpt, calib), MlxError);
}

TEST(QuantizeModel, EndToEndAccuracyClose) {
  Graph ckpt = post_act_model(15);
  Graph converted = convert_for_inference(ckpt);
  Calibrator calib(&converted);
  Pcg32 rng(16);
  for (int i = 0; i < 16; ++i) {
    calib.observe({random_input(Shape{1, 8, 8, 3}, rng)});
  }
  Graph qm = quantize_model(converted, calib);
  RefOpResolver ref;
  Interpreter fi(&converted, &ref);
  Interpreter qi(&qm, &ref);
  double worst = 0.0;
  for (int i = 0; i < 8; ++i) {
    Tensor input = random_input(Shape{1, 8, 8, 3}, rng);
    fi.set_input(0, input);
    qi.set_input(0, input);
    fi.invoke();
    qi.invoke();
    worst = std::max(worst, normalized_rmse(qi.output(0), fi.output(0)));
  }
  EXPECT_LT(worst, 0.08);
}

TEST(QuantizeModel, PerTensorWeightsOptionRespected) {
  Graph ckpt = post_act_model(17);
  Graph converted = convert_for_inference(ckpt);
  Calibrator calib(&converted);
  Pcg32 rng(18);
  for (int i = 0; i < 4; ++i) {
    calib.observe({random_input(Shape{1, 8, 8, 3}, rng)});
  }
  QuantizeOptions opts;
  opts.per_channel_weights = false;
  Graph qm = quantize_model(converted, calib, opts);
  for (const Node& n : qm.nodes) {
    if (n.type == OpType::kConv2D) {
      EXPECT_FALSE(n.weights[0].quant().per_channel());
    }
  }
}

}  // namespace
}  // namespace mlexray
