#include <gtest/gtest.h>

#include <filesystem>

#include "src/convert/converter.h"
#include "src/core/assertions.h"
#include "src/core/pipelines.h"
#include "src/core/validation.h"
#include "src/models/zoo.h"
#include "src/quant/quantizer.h"
#include "src/tensor/alloc_stats.h"

namespace mlexray {
namespace {

// A small untrained classifier suffices: assertions and drift localisation
// work on logged tensors, not on task accuracy.
ZooModel tiny_image_model() { return build_mobilenet_v1_mini(99); }

std::vector<SensorExample> sensors(int per_class = 1) {
  return SynthImageNet::make(per_class, 1234);
}

TEST(Trace, SerializationRoundTrip) {
  Trace t;
  t.pipeline_name = "edge";
  FrameTrace f;
  f.frame_id = 3;
  f.tensors["model.input"] = Tensor::f32(Shape{1, 2}, {1.0f, -2.0f});
  f.scalars["latency.inference_ms"] = 12.5;
  f.layer_names = {"conv", "fc"};
  f.layer_outputs.push_back(Tensor::f32(Shape{2}, {0.0f, 1.0f}));
  f.layer_outputs.push_back(Tensor::f32(Shape{1}, {0.5f}));
  f.layer_latency_ms = {0.2, 0.1};
  t.frames.push_back(std::move(f));

  Trace back = deserialize_trace(serialize_trace(t));
  ASSERT_EQ(back.frames.size(), 1u);
  EXPECT_EQ(back.pipeline_name, "edge");
  EXPECT_EQ(back.frames[0].frame_id, 3);
  EXPECT_DOUBLE_EQ(back.frames[0].scalar("latency.inference_ms"), 12.5);
  EXPECT_EQ(back.frames[0].layer_names[1], "fc");
  EXPECT_FLOAT_EQ(back.frames[0].tensor("model.input").data<float>()[1], -2.0f);
}

TEST(Trace, MissingKeyThrows) {
  FrameTrace f;
  EXPECT_THROW(f.tensor("nope"), MlxError);
  EXPECT_THROW(f.scalar("nope"), MlxError);
}

TEST(Trace, FileRoundTrip) {
  Trace t;
  t.pipeline_name = "p";
  t.frames.emplace_back();
  auto path = std::filesystem::temp_directory_path() / "mlx_trace.mlxtrace";
  save_trace(t, path);
  Trace back = load_trace(path);
  EXPECT_EQ(back.frames.size(), 1u);
  std::filesystem::remove(path);
}

TEST(Monitor, CollectsDefaultTelemetry) {
  ZooModel zm = tiny_image_model();
  RefOpResolver ref;
  MonitorOptions opts;
  opts.per_layer_outputs = true;
  Trace trace = run_classification_playback(
      zm.model, ref, sensors(), {zm.model.input_spec, PreprocBug::kNone},
      opts, "test-pipeline");
  ASSERT_EQ(trace.frames.size(), 12u);
  const FrameTrace& f = trace.frames[0];
  EXPECT_TRUE(f.has_tensor(trace_keys::kSensorRaw));
  EXPECT_TRUE(f.has_tensor(trace_keys::kPreprocessOut));
  EXPECT_TRUE(f.has_tensor(trace_keys::kModelOutput));
  EXPECT_GT(f.scalar(trace_keys::kInferenceLatencyMs), 0.0);
  EXPECT_GT(f.scalar(trace_keys::kPeakMemoryBytes), 0.0);
  EXPECT_EQ(static_cast<int>(f.layer_names.size()), zm.model.layer_count());
  EXPECT_EQ(f.layer_names.size(), f.layer_outputs.size());
  EXPECT_EQ(f.layer_names.size(), f.layer_latency_ms.size());
}

TEST(Monitor, PeakMemoryReportsHighWaterNotCurrentLevel) {
  // A large transient tensor allocated and released *before* the frame must
  // still show up in the reported peak: the seed monitor snapshotted
  // AllocStats::current_bytes(), which misses every transient.
  constexpr std::int64_t kTransientBytes = 32 * 1024 * 1024;
  { Tensor transient = Tensor::u8(Shape{kTransientBytes}); }
  ZooModel zm = tiny_image_model();
  RefOpResolver ref;
  MonitorOptions opts;
  Trace trace = run_classification_playback(
      zm.model, ref, sensors(), {zm.model.input_spec, PreprocBug::kNone},
      opts, "peak");
  const double reported =
      trace.frames[0].scalar(trace_keys::kPeakMemoryBytes);
  EXPECT_GE(reported, static_cast<double>(kTransientBytes))
      << "reported peak misses a released transient allocation";
  // A peak is by definition at or above the instantaneous level.
  EXPECT_GE(reported,
            static_cast<double>(AllocStats::instance().current_bytes()));
}

TEST(Monitor, LightModeSkipsLayerOutputs) {
  ZooModel zm = tiny_image_model();
  RefOpResolver ref;
  MonitorOptions opts;  // defaults: no per-layer outputs, latency only
  Trace trace = run_classification_playback(
      zm.model, ref, sensors(), {zm.model.input_spec, PreprocBug::kNone},
      opts, "light");
  EXPECT_TRUE(trace.frames[0].layer_outputs.empty());
  EXPECT_FALSE(trace.frames[0].layer_latency_ms.empty());
  // The default logs are small — well under a few KB per frame once the
  // custom sensor logs are excluded (paper Table 2 reports 0.41 KB/frame).
}

TEST(Validator, AccuracyComparison) {
  ZooModel zm = tiny_image_model();
  RefOpResolver ref;
  auto data = sensors(2);
  std::vector<int> labels;
  for (const auto& s : data) labels.push_back(s.label);
  MonitorOptions opts;
  Trace a = run_classification_playback(
      zm.model, ref, data, {zm.model.input_spec, PreprocBug::kNone}, opts, "a");
  Trace b = run_reference_classification(zm.model, data, opts);
  DeploymentValidator validator;
  AccuracyReport report = validator.validate_accuracy(a, b, labels);
  // Same model, same pipeline: identical accuracy, not degraded.
  EXPECT_DOUBLE_EQ(report.edge_accuracy, report.reference_accuracy);
  EXPECT_FALSE(report.degraded);
}

TEST(Validator, PerLayerDriftLocalisesQuantBug) {
  ZooModel zm = tiny_image_model();
  Graph mobile = convert_for_inference(zm.model);
  auto data = sensors(1);
  ImagePipelineConfig correct{zm.model.input_spec, PreprocBug::kNone};
  Calibrator calib(&mobile);
  for (const auto& s : data) calib.observe({run_image_pipeline(s.image_u8, correct)});
  Graph quant = quantize_model(mobile, calib);

  MonitorOptions opts;
  opts.per_layer_outputs = true;
  BuiltinOpResolver buggy(KernelBugConfig::as_shipped());
  RefOpResolver good;
  Trace edge = run_classification_playback(quant, buggy, data, correct, opts,
                                           "edge-quant");
  Trace reference =
      run_classification_playback(mobile, good, data, correct, opts, "ref");

  DeploymentValidator validator;
  PerLayerReport report = validator.per_layer_drift(edge, reference);
  ASSERT_TRUE(report.first_suspect.has_value());
  // The first suspect layer must be the first DepthwiseConv2D ("block0_dw").
  EXPECT_NE(report.first_suspect->find("dwconv"), std::string::npos)
      << "suspect was " << *report.first_suspect;
}

TEST(Validator, DriftOnLatencyOnlyTraceIsEmptyNotFatal) {
  // Traces recorded without per-layer outputs (the default light monitoring
  // mode) must yield an empty drift report, not an error.
  ZooModel zm = tiny_image_model();
  RefOpResolver ref;
  auto data = sensors(1);
  MonitorOptions opts;  // per_layer_outputs = false
  Trace edge = run_classification_playback(
      zm.model, ref, data, {zm.model.input_spec, PreprocBug::kNone}, opts, "a");
  Trace reference = run_reference_classification(zm.model, data, opts);
  DeploymentValidator validator;
  PerLayerReport report = validator.per_layer_drift(edge, reference);
  EXPECT_TRUE(report.drifts.empty());
  EXPECT_FALSE(report.first_suspect.has_value());
}

TEST(Validator, LatencyReportFindsStragglers) {
  Trace t;
  FrameTrace f;
  f.layer_names = {"a", "b", "c", "slow"};
  f.layer_latency_ms = {0.1, 0.1, 0.1, 5.0};
  t.frames.push_back(f);
  DeploymentValidator validator;
  LatencyReport report = validator.per_layer_latency(t);
  EXPECT_NEAR(report.total_ms, 5.3, 1e-9);
  EXPECT_TRUE(report.layers[3].straggler);
  EXPECT_FALSE(report.layers[0].straggler);
}

TEST(Assertions, ChannelSwapDetected) {
  ZooModel zm = tiny_image_model();
  RefOpResolver ref;
  auto data = sensors(1);
  MonitorOptions opts;
  Trace edge = run_classification_playback(
      zm.model, ref, data, {zm.model.input_spec, PreprocBug::kWrongChannelOrder},
      opts, "edge");
  Trace reference = run_reference_classification(zm.model, data, opts);
  AssertionResult r = make_channel_arrangement_assertion()(edge, reference);
  EXPECT_TRUE(r.triggered) << r.message;
}

TEST(Assertions, ChannelAssertionSilentWhenCorrect) {
  ZooModel zm = tiny_image_model();
  RefOpResolver ref;
  auto data = sensors(1);
  MonitorOptions opts;
  Trace edge = run_classification_playback(
      zm.model, ref, data, {zm.model.input_spec, PreprocBug::kNone}, opts, "e");
  Trace reference = run_reference_classification(zm.model, data, opts);
  EXPECT_FALSE(make_channel_arrangement_assertion()(edge, reference).triggered);
}

class PreprocBugAssertions : public ::testing::TestWithParam<PreprocBug> {};

TEST_P(PreprocBugAssertions, RecomputeAndMatchIdentifiesInjectedBug) {
  PreprocBug bug = GetParam();
  ZooModel zm = tiny_image_model();
  RefOpResolver ref;
  auto data = sensors(1);
  MonitorOptions opts;
  Trace edge = run_classification_playback(
      zm.model, ref, data, {zm.model.input_spec, bug}, opts, "edge");
  Trace reference = run_reference_classification(zm.model, data, opts);
  // The matching assertion triggers...
  AssertionFn matching = make_preproc_bug_assertion(zm.model.input_spec, bug);
  EXPECT_TRUE(matching(edge, reference).triggered);
  // ...and the assertion for a DIFFERENT bug stays silent.
  PreprocBug other = bug == PreprocBug::kRotated90 ? PreprocBug::kWrongResize
                                                   : PreprocBug::kRotated90;
  AssertionFn mismatched = make_preproc_bug_assertion(zm.model.input_spec, other);
  EXPECT_FALSE(mismatched(edge, reference).triggered);
}

INSTANTIATE_TEST_SUITE_P(
    AllBugs, PreprocBugAssertions,
    ::testing::Values(PreprocBug::kWrongResize, PreprocBug::kWrongChannelOrder,
                      PreprocBug::kWrongNormalization, PreprocBug::kRotated90));

TEST(Assertions, NormalizationRangeDetected) {
  ZooModel zm = tiny_image_model();
  RefOpResolver ref;
  auto data = sensors(1);
  MonitorOptions opts;
  Trace edge = run_classification_playback(
      zm.model, ref, data,
      {zm.model.input_spec, PreprocBug::kWrongNormalization}, opts, "edge");
  Trace reference = run_reference_classification(zm.model, data, opts);
  EXPECT_TRUE(make_normalization_range_assertion()(edge, reference).triggered);
}

TEST(Assertions, ConstantOutputDetected) {
  Trace edge;
  for (int i = 0; i < 4; ++i) {
    FrameTrace f;
    f.tensors[trace_keys::kModelOutput] = Tensor::f32(Shape{1, 3}, {0.1f, 0.2f, 0.7f});
    edge.frames.push_back(std::move(f));
  }
  Trace ref;  // unused
  EXPECT_TRUE(make_constant_output_assertion()(edge, ref).triggered);
}

TEST(Assertions, VaryingOutputNotFlagged) {
  Trace edge;
  for (int i = 0; i < 4; ++i) {
    FrameTrace f;
    float v = 0.1f * static_cast<float>(i);
    f.tensors[trace_keys::kModelOutput] = Tensor::f32(Shape{1, 2}, {v, 1.0f - v});
    edge.frames.push_back(std::move(f));
  }
  Trace ref;
  EXPECT_FALSE(make_constant_output_assertion()(edge, ref).triggered);
}

TEST(Assertions, BudgetsTrigger) {
  Trace edge;
  FrameTrace f;
  f.scalars[trace_keys::kInferenceLatencyMs] = 100.0;
  f.scalars[trace_keys::kPeakMemoryBytes] = 1e9;
  edge.frames.push_back(std::move(f));
  Trace ref;
  EXPECT_TRUE(make_latency_budget_assertion(10.0)(edge, ref).triggered);
  EXPECT_FALSE(make_latency_budget_assertion(200.0)(edge, ref).triggered);
  EXPECT_TRUE(make_memory_budget_assertion(1e6)(edge, ref).triggered);
}

TEST(Assertions, MissingLogsSkipGracefully) {
  Trace empty_edge, empty_ref;
  AssertionResult r = make_channel_arrangement_assertion()(empty_edge, empty_ref);
  EXPECT_FALSE(r.triggered);
  EXPECT_NE(r.message.find("skipped"), std::string::npos);
}

// The Fig-2 flowchart end-to-end: degraded accuracy -> drift -> root cause.
TEST(Integration, FullValidationFlowCatchesChannelBug) {
  ZooModel zm = tiny_image_model();
  RefOpResolver ref;
  auto data = sensors(2);
  std::vector<int> labels;
  for (const auto& s : data) labels.push_back(s.label);
  MonitorOptions opts;
  opts.per_layer_outputs = true;
  Trace edge = run_classification_playback(
      zm.model, ref, data, {zm.model.input_spec, PreprocBug::kWrongChannelOrder},
      opts, "edge-app");
  Trace reference = run_reference_classification(zm.model, data, opts);

  DeploymentValidator validator;
  register_builtin_image_assertions(validator, zm.model.input_spec);
  auto results = validator.run_assertions(edge, reference);
  int triggered = 0;
  bool channel_hit = false;
  for (const auto& r : results) {
    triggered += r.triggered ? 1 : 0;
    if (r.name == "channel_arrangement" && r.triggered) channel_hit = true;
    // Assertions for bugs that are NOT present must stay silent.
    if (r.name == "orientation" || r.name == "resize_function") {
      EXPECT_FALSE(r.triggered) << r.name << ": " << r.message;
    }
  }
  EXPECT_TRUE(channel_hit);
  EXPECT_GE(triggered, 1);

  AccuracyReport acc = validator.validate_accuracy(edge, reference, labels);
  PerLayerReport drift = validator.per_layer_drift(edge, reference);
  std::string report = validator.report(acc, drift, results);
  EXPECT_NE(report.find("channel_arrangement"), std::string::npos);
}

}  // namespace
}  // namespace mlexray
