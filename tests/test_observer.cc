// Push-based observability: the InvokeObserver -> TraceBuffer pipeline.
//
// Locks in the contracts the plan-integrated instrumentation claims:
//  - observer capture is bit-exact with the interpreter's retained node
//    outputs, in the raw dtype (int8 activations stay int8 in the trace);
//  - a steady-state instrumented invoke performs zero heap allocations,
//    enforced with the same operator-new counter + AllocStats events
//    test_kernel_grid.cc uses for bare invoke;
//  - the double-buffered capture frames alternate and are reused across
//    >= 3 frames without new allocations;
//  - spooled .mlxtrace files round-trip through load_trace identically to
//    retained traces;
//  - legacy pull-style call sites (on_inf_stop without observe()) capture
//    through the same storage.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <new>

#include "src/core/monitor.h"
#include "src/graph/builder.h"
#include "src/quant/quantizer.h"
#include "src/tensor/alloc_stats.h"

// --- global operator new/delete instrumentation -----------------------------

namespace {
std::atomic<std::uint64_t> g_heap_allocs{0};
}  // namespace

void* operator new(std::size_t size) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  void* p = nullptr;
  if (posix_memalign(&p, static_cast<std::size_t>(align), size ? size : 1) != 0) {
    throw std::bad_alloc();
  }
  return p;
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace mlexray {
namespace {

Tensor random_input(Shape shape, Pcg32& rng) {
  Tensor t = Tensor::f32(shape);
  float* p = t.data<float>();
  for (std::int64_t i = 0; i < t.num_elements(); ++i) {
    p[i] = rng.uniform(-2.0f, 2.0f);
  }
  return t;
}

Graph conv_stack_model(Pcg32* rng) {
  GraphBuilder b("stack", rng);
  int x = b.input(Shape{1, 16, 16, 8});
  int c1 = b.conv2d(x, 16, 3, 3, 1, Padding::kSame, Activation::kRelu, "c1");
  int d = b.depthwise_conv2d(c1, 3, 3, 2, Padding::kSame, Activation::kRelu6,
                             "dw");
  int c2 = b.conv2d(d, 16, 1, 1, 1, Padding::kSame, Activation::kNone, "c2");
  int fc = b.fully_connected(c2, 10, Activation::kNone, "fc");
  return b.finish({fc});
}

Graph quantized_conv_stack(Pcg32* rng, std::uint64_t calib_seed) {
  Graph m = conv_stack_model(rng);
  Calibrator calib(&m);
  Pcg32 crng(calib_seed);
  for (int i = 0; i < 4; ++i) {
    calib.observe({random_input(Shape{1, 16, 16, 8}, crng)});
  }
  return quantize_model(m, calib);
}

// A monitored frame: the paper's instrumentation bracket.
void run_frame(EdgeMLMonitor& monitor, Interpreter& interp,
               const Tensor& input) {
  interp.set_input(0, input);
  monitor.on_inf_start();
  interp.invoke();
  monitor.on_inf_stop(interp);
  monitor.next_frame();
}

TEST(ObserverCapture, PushMatchesNodeOutputsBitExact) {
  Pcg32 rng(11);
  Graph m = conv_stack_model(&rng);
  BuiltinOpResolver opt;
  Interpreter interp(&m, &opt, /*num_threads=*/2);
  MonitorOptions opts;
  opts.per_layer_outputs = true;
  EdgeMLMonitor monitor(opts);
  monitor.observe(interp);
  Pcg32 drng(12);
  run_frame(monitor, interp, random_input(Shape{1, 16, 16, 8}, drng));

  const Trace& trace = monitor.trace();
  ASSERT_EQ(trace.frames.size(), 1u);
  const FrameTrace& f = trace.frames[0];
  ASSERT_EQ(f.layer_names.size(), interp.plan().step_count());
  ASSERT_EQ(f.layer_outputs.size(), f.layer_names.size());
  ASSERT_EQ(f.layer_latency_ms.size(), f.layer_names.size());
  std::size_t i = 0;
  for (const PlanStep& step : interp.plan().steps()) {
    EXPECT_EQ(f.layer_names[i], step.node->name);
    const Tensor& retained = interp.node_output(step.node->id);
    const Tensor& captured = f.layer_outputs[i];
    EXPECT_EQ(captured.dtype(), retained.dtype());
    ASSERT_EQ(captured.byte_size(), retained.byte_size());
    EXPECT_EQ(std::memcmp(captured.raw_data(), retained.raw_data(),
                          retained.byte_size()),
              0)
        << "layer " << step.node->name;
    EXPECT_GE(f.layer_latency_ms[i], 0.0);
    ++i;
  }
  EXPECT_GT(f.scalar(trace_keys::kInferenceLatencyMs), 0.0);
  monitor.unobserve(interp);
}

TEST(ObserverCapture, QuantizedLayersStayInt8InTrace) {
  Pcg32 rng(21);
  Graph qm = quantized_conv_stack(&rng, 22);
  BuiltinOpResolver opt;
  Interpreter interp(&qm, &opt, /*num_threads=*/2);
  MonitorOptions opts;
  opts.per_layer_outputs = true;
  EdgeMLMonitor monitor(opts);
  monitor.observe(interp);
  Pcg32 drng(23);
  run_frame(monitor, interp, random_input(Shape{1, 16, 16, 8}, drng));

  const FrameTrace& f = monitor.trace().frames.at(0);
  int int8_layers = 0;
  std::size_t i = 0;
  for (const PlanStep& step : interp.plan().steps()) {
    const Tensor& retained = interp.node_output(step.node->id);
    const Tensor& captured = f.layer_outputs.at(i);
    // Raw-dtype capture: quantized activations are logged as int8 with
    // their quant params, not eagerly dequantized.
    EXPECT_EQ(captured.dtype(), retained.dtype());
    if (captured.dtype() == DType::kI8) {
      ++int8_layers;
      ASSERT_TRUE(captured.quant().quantized());
      EXPECT_EQ(captured.quant().scale(), retained.quant().scale());
      // Offline reading dequantizes losslessly from the raw capture.
      Tensor offline = captured.to_f32();
      Tensor direct = retained.to_f32();
      EXPECT_EQ(std::memcmp(offline.raw_data(), direct.raw_data(),
                            direct.byte_size()),
                0);
    }
    ++i;
  }
  EXPECT_GT(int8_layers, 0) << "quantized model produced no int8 layers";
  monitor.unobserve(interp);
}

// The acceptance gate: steady-state instrumented invoke (per-layer-latency
// mode, the always-on default) touches neither the heap nor the tracked
// allocators. retain_frames=false keeps next_frame() on the zero-alloc path
// too, so the whole monitored frame loop is heap-free.
TEST(ObserverSteadyState, InstrumentedFrameLoopIsHeapFree) {
  Pcg32 rng(31);
  Graph m = conv_stack_model(&rng);
  BuiltinOpResolver opt;
  Interpreter interp(&m, &opt, /*num_threads=*/2);
  MonitorOptions opts;  // per_layer_latency on, outputs off
  opts.retain_frames = false;
  EdgeMLMonitor monitor(opts);
  monitor.observe(interp);
  Pcg32 drng(32);
  Tensor input = random_input(Shape{1, 16, 16, 8}, drng);
  // Warm-up: arena growth + both capture buffers (frames 1 and 2).
  for (int i = 0; i < 3; ++i) run_frame(monitor, interp, input);

  const std::uint64_t events_before = AllocStats::instance().alloc_events();
  const std::uint64_t heap_before = g_heap_allocs.load();
  for (int i = 0; i < 5; ++i) run_frame(monitor, interp, input);
  EXPECT_EQ(AllocStats::instance().alloc_events(), events_before)
      << "instrumented frame loop registered tensor/arena allocations";
  EXPECT_EQ(g_heap_allocs.load(), heap_before)
      << "instrumented frame loop touched the heap (operator new)";
  EXPECT_EQ(monitor.buffer().frames_captured(), 8);
  monitor.unobserve(interp);
}

// Full per-layer output capture is also heap-free: raw-byte memcpy into
// pre-sized buffers.
TEST(ObserverSteadyState, PerLayerOutputCaptureIsHeapFree) {
  Pcg32 rng(41);
  Graph qm = quantized_conv_stack(&rng, 42);
  BuiltinOpResolver opt;
  Interpreter interp(&qm, &opt, /*num_threads=*/2);
  MonitorOptions opts;
  opts.per_layer_outputs = true;
  opts.retain_frames = false;
  EdgeMLMonitor monitor(opts);
  monitor.observe(interp);
  Pcg32 drng(43);
  Tensor input = random_input(Shape{1, 16, 16, 8}, drng);
  for (int i = 0; i < 3; ++i) run_frame(monitor, interp, input);

  const std::uint64_t heap_before = g_heap_allocs.load();
  for (int i = 0; i < 5; ++i) run_frame(monitor, interp, input);
  EXPECT_EQ(g_heap_allocs.load(), heap_before);
  EXPECT_GT(monitor.buffer().frame_capture_bytes(), 0u);
  monitor.unobserve(interp);
}

// Digest mode (the fleet-monitoring capture): per-layer sketches are
// fixed-size inline storage, reset and refilled in place, so the whole
// monitored frame loop stays heap-free — the contract that makes digests
// cheap enough to leave enabled in serving.
TEST(ObserverSteadyState, DigestCaptureIsHeapFree) {
  Pcg32 rng(45);
  Graph m = conv_stack_model(&rng);
  BuiltinOpResolver opt;
  Interpreter interp(&m, &opt, /*num_threads=*/2);
  MonitorOptions opts;
  opts.per_layer_digests = true;
  opts.retain_frames = false;
  EdgeMLMonitor monitor(opts);
  monitor.observe(interp);
  Pcg32 drng(46);
  Tensor input = random_input(Shape{1, 16, 16, 8}, drng);
  for (int i = 0; i < 3; ++i) run_frame(monitor, interp, input);

  const std::uint64_t events_before = AllocStats::instance().alloc_events();
  const std::uint64_t heap_before = g_heap_allocs.load();
  for (int i = 0; i < 5; ++i) run_frame(monitor, interp, input);
  EXPECT_EQ(AllocStats::instance().alloc_events(), events_before)
      << "digest frame loop registered tensor/arena allocations";
  EXPECT_EQ(g_heap_allocs.load(), heap_before)
      << "digest capture touched the heap (operator new)";
  EXPECT_EQ(monitor.buffer().frames_captured(), 8);
  // Digest frames still account their (fixed) capture cost.
  EXPECT_GT(monitor.buffer().frame_capture_bytes(), 0u);
  monitor.unobserve(interp);
}

// The int8 histogram path is heap-free too (quantized fleet deployments).
TEST(ObserverSteadyState, QuantizedDigestCaptureIsHeapFree) {
  Pcg32 rng(47);
  Graph qm = quantized_conv_stack(&rng, 48);
  BuiltinOpResolver opt;
  Interpreter interp(&qm, &opt, /*num_threads=*/2);
  MonitorOptions opts;
  opts.per_layer_digests = true;
  opts.retain_frames = false;
  EdgeMLMonitor monitor(opts);
  monitor.observe(interp);
  Pcg32 drng(49);
  Tensor input = random_input(Shape{1, 16, 16, 8}, drng);
  for (int i = 0; i < 3; ++i) run_frame(monitor, interp, input);

  const std::uint64_t heap_before = g_heap_allocs.load();
  for (int i = 0; i < 5; ++i) run_frame(monitor, interp, input);
  EXPECT_EQ(g_heap_allocs.load(), heap_before)
      << "quantized digest capture touched the heap";
  monitor.unobserve(interp);
}

// In retain mode the frame conversion allocates (it builds FrameTrace maps),
// but the invoke window itself must stay heap-free.
TEST(ObserverSteadyState, RetainModeInvokeWindowIsHeapFree) {
  Pcg32 rng(51);
  Graph m = conv_stack_model(&rng);
  BuiltinOpResolver opt;
  Interpreter interp(&m, &opt, /*num_threads=*/2);
  MonitorOptions opts;
  opts.per_layer_outputs = true;
  EdgeMLMonitor monitor(opts);
  monitor.observe(interp);
  Pcg32 drng(52);
  Tensor input = random_input(Shape{1, 16, 16, 8}, drng);
  for (int i = 0; i < 3; ++i) run_frame(monitor, interp, input);

  for (int i = 0; i < 3; ++i) {
    interp.set_input(0, input);
    const std::uint64_t heap_before = g_heap_allocs.load();
    monitor.on_inf_start();
    interp.invoke();  // push capture happens in here
    EXPECT_EQ(g_heap_allocs.load(), heap_before)
        << "instrumented invoke allocated on frame " << i;
    monitor.on_inf_stop(interp);
    monitor.next_frame();
  }
  monitor.unobserve(interp);
}

TEST(ObserverDoubleBuffer, BuffersAlternateAndAreReused) {
  Pcg32 rng(61);
  Graph m = conv_stack_model(&rng);
  BuiltinOpResolver opt;
  Interpreter interp(&m, &opt);
  MonitorOptions opts;
  opts.per_layer_outputs = true;
  opts.retain_frames = false;
  EdgeMLMonitor monitor(opts);
  monitor.observe(interp);
  Pcg32 drng(62);
  Tensor input = random_input(Shape{1, 16, 16, 8}, drng);

  int last = monitor.buffer().active_buffer();
  // Frames 1-2 warm both buffers; frames 3+ must reuse them allocation-free
  // while still alternating.
  for (int frame = 0; frame < 2; ++frame) {
    run_frame(monitor, interp, input);
    EXPECT_NE(monitor.buffer().active_buffer(), last);
    last = monitor.buffer().active_buffer();
  }
  const std::uint64_t heap_before = g_heap_allocs.load();
  for (int frame = 0; frame < 4; ++frame) {
    run_frame(monitor, interp, input);
    EXPECT_NE(monitor.buffer().active_buffer(), last)
        << "double buffer did not flip on frame " << frame;
    last = monitor.buffer().active_buffer();
  }
  EXPECT_EQ(g_heap_allocs.load(), heap_before)
      << "buffer reuse across >= 3 frames allocated";
  monitor.unobserve(interp);
}

TEST(ObserverSpool, SpooledTraceMatchesRetainedTrace) {
  const auto path =
      std::filesystem::temp_directory_path() / "mlx_observer_spool.mlxtrace";
  Pcg32 rng_a(71), rng_b(71);  // identical weights
  Graph ma = conv_stack_model(&rng_a);
  Graph mb = conv_stack_model(&rng_b);
  BuiltinOpResolver opt;
  MonitorOptions opts;
  opts.per_layer_outputs = true;
  Pcg32 drng(72);
  std::vector<Tensor> inputs;
  for (int i = 0; i < 3; ++i) {
    inputs.push_back(random_input(Shape{1, 16, 16, 8}, drng));
  }

  // Spooled run.
  {
    Interpreter interp(&ma, &opt);
    EdgeMLMonitor monitor(opts);
    monitor.set_pipeline_name("spooled");
    monitor.spool_to(path);
    monitor.observe(interp);
    for (const Tensor& in : inputs) run_frame(monitor, interp, in);
    EXPECT_EQ(monitor.finish_spool(), 3u);
    // Spool mode retains nothing in memory.
    EXPECT_TRUE(monitor.trace().frames.empty());
    monitor.unobserve(interp);
  }
  // Retained run over the same model/inputs.
  Interpreter interp(&mb, &opt);
  EdgeMLMonitor monitor(opts);
  monitor.set_pipeline_name("retained");
  monitor.observe(interp);
  for (const Tensor& in : inputs) run_frame(monitor, interp, in);
  Trace retained = monitor.take_trace();
  monitor.unobserve(interp);

  Trace spooled = load_trace(path);
  std::filesystem::remove(path);
  EXPECT_EQ(spooled.pipeline_name, "spooled");
  ASSERT_EQ(spooled.frames.size(), retained.frames.size());
  for (std::size_t f = 0; f < spooled.frames.size(); ++f) {
    const FrameTrace& s = spooled.frames[f];
    const FrameTrace& r = retained.frames[f];
    EXPECT_EQ(s.frame_id, r.frame_id);
    EXPECT_EQ(s.layer_names, r.layer_names);
    ASSERT_EQ(s.layer_outputs.size(), r.layer_outputs.size());
    for (std::size_t i = 0; i < s.layer_outputs.size(); ++i) {
      ASSERT_EQ(s.layer_outputs[i].byte_size(), r.layer_outputs[i].byte_size());
      EXPECT_EQ(std::memcmp(s.layer_outputs[i].raw_data(),
                            r.layer_outputs[i].raw_data(),
                            r.layer_outputs[i].byte_size()),
                0)
          << "frame " << f << " layer " << s.layer_names[i];
    }
    ASSERT_TRUE(s.has_tensor(trace_keys::kModelOutput));
    EXPECT_EQ(std::memcmp(s.tensor(trace_keys::kModelOutput).raw_data(),
                          r.tensor(trace_keys::kModelOutput).raw_data(),
                          r.tensor(trace_keys::kModelOutput).byte_size()),
              0);
  }
}

// on_inf_stop without observe(): the legacy pull path replays the retained
// node outputs through the same capture storage.
TEST(ObserverCompat, PullFallbackMatchesPushCapture) {
  Pcg32 rng_a(81), rng_b(81);
  Graph ma = conv_stack_model(&rng_a);
  Graph mb = conv_stack_model(&rng_b);
  BuiltinOpResolver opt;
  MonitorOptions opts;
  opts.per_layer_outputs = true;
  Pcg32 drng(82);
  Tensor input = random_input(Shape{1, 16, 16, 8}, drng);

  Interpreter push_interp(&ma, &opt);
  EdgeMLMonitor push_monitor(opts);
  push_monitor.observe(push_interp);
  run_frame(push_monitor, push_interp, input);
  push_monitor.unobserve(push_interp);

  Interpreter pull_interp(&mb, &opt);
  EdgeMLMonitor pull_monitor(opts);  // never observed: pull fallback
  run_frame(pull_monitor, pull_interp, input);

  const FrameTrace& push_f = push_monitor.trace().frames.at(0);
  const FrameTrace& pull_f = pull_monitor.trace().frames.at(0);
  ASSERT_EQ(push_f.layer_names, pull_f.layer_names);
  for (std::size_t i = 0; i < push_f.layer_outputs.size(); ++i) {
    EXPECT_EQ(std::memcmp(push_f.layer_outputs[i].raw_data(),
                          pull_f.layer_outputs[i].raw_data(),
                          push_f.layer_outputs[i].byte_size()),
              0);
  }
}

TEST(ObserverLifetime, MonitorDetachesOnDestruction) {
  Pcg32 rng(91);
  Graph m = conv_stack_model(&rng);
  BuiltinOpResolver opt;
  Interpreter interp(&m, &opt);
  {
    EdgeMLMonitor monitor;
    monitor.observe(interp);
    EXPECT_NE(interp.observer(), nullptr);
  }
  EXPECT_EQ(interp.observer(), nullptr);
  Pcg32 drng(92);
  interp.set_input(0, random_input(Shape{1, 16, 16, 8}, drng));
  EXPECT_NO_THROW(interp.invoke());
}

TEST(ObserverLifetime, DyingMonitorDoesNotDetachItsSuccessor) {
  Pcg32 rng(95);
  Graph m = conv_stack_model(&rng);
  BuiltinOpResolver opt;
  Interpreter interp(&m, &opt);
  EdgeMLMonitor second;
  {
    EdgeMLMonitor first;
    first.observe(interp);
    second.observe(interp);  // takes over the observer slot
    // first's destructor must leave second's buffer attached.
  }
  EXPECT_EQ(interp.observer(), &second.buffer());
  second.unobserve(interp);
}

TEST(ObserverCompat, PullOnAnotherInterpreterDetachesBeforeRebinding) {
  Pcg32 rng_a(96), rng_b(97);
  Graph ma = conv_stack_model(&rng_a);
  GraphBuilder b("other", &rng_b);
  int x = b.input(Shape{1, 8, 8, 4});
  int fc = b.fully_connected(x, 6, Activation::kNone, "fc");
  Graph mb = b.finish({fc});  // different step count than ma
  BuiltinOpResolver opt;
  Interpreter interp_a(&ma, &opt);
  Interpreter interp_b(&mb, &opt);
  EdgeMLMonitor monitor;
  monitor.observe(interp_a);
  Pcg32 drng(98);
  // Pull-capture a frame from a *different* interpreter: the buffer must
  // detach from interp_a before rebinding its layout, or interp_a's next
  // invoke trips the layout checks mid-flight.
  interp_b.set_input(0, random_input(Shape{1, 8, 8, 4}, drng));
  interp_b.invoke();
  monitor.on_inf_stop(interp_b);
  monitor.next_frame();
  EXPECT_EQ(interp_a.observer(), nullptr);
  interp_a.set_input(0, random_input(Shape{1, 16, 16, 8}, drng));
  EXPECT_NO_THROW(interp_a.invoke());
}


TEST(ObserverMultiOutput, ModelIoCapturesEveryOutputHead) {
  // A two-headed graph (the SSD box + class head shape of the problem):
  // model-io capture must log one tensor per output, not just output(0).
  Pcg32 rng(201);
  GraphBuilder b("two_head", &rng);
  int x = b.input(Shape{1, 8, 8, 4});
  int c = b.conv2d(x, 8, 3, 3, 1, Padding::kSame, Activation::kRelu, "c");
  int head_a = b.fully_connected(c, 10, Activation::kNone, "head_a");
  int head_b = b.fully_connected(c, 4, Activation::kNone, "head_b");
  Graph m = b.finish({head_a, head_b});
  BuiltinOpResolver opt;
  Interpreter interp(&m, &opt);
  EdgeMLMonitor monitor;
  monitor.observe(interp);
  Pcg32 drng(202);
  run_frame(monitor, interp, random_input(Shape{1, 8, 8, 4}, drng));

  const Trace& trace = monitor.trace();
  ASSERT_EQ(trace.frames.size(), 1u);
  const FrameTrace& f = trace.frames[0];
  ASSERT_TRUE(f.has_tensor(trace_keys::kModelOutput));
  ASSERT_TRUE(f.has_tensor(trace_keys::model_output_key(1)))
      << "second output head was not captured";
  EXPECT_FALSE(f.has_tensor(trace_keys::model_output_key(2)));
  for (int i = 0; i < 2; ++i) {
    const Tensor& captured = f.tensor(trace_keys::model_output_key(i));
    const Tensor& retained = interp.output(i);
    ASSERT_EQ(captured.byte_size(), retained.byte_size());
    EXPECT_EQ(std::memcmp(captured.raw_data(), retained.raw_data(),
                          retained.byte_size()),
              0)
        << "output " << i;
  }
  monitor.unobserve(interp);
}

TEST(ObserverMultiOutput, MultiOutputCaptureIsHeapFreeInSteadyState) {
  Pcg32 rng(211);
  GraphBuilder b("two_head", &rng);
  int x = b.input(Shape{1, 8, 8, 4});
  int c = b.conv2d(x, 8, 3, 3, 1, Padding::kSame, Activation::kRelu, "c");
  int head_a = b.fully_connected(c, 10, Activation::kNone, "head_a");
  int head_b = b.fully_connected(c, 4, Activation::kNone, "head_b");
  Graph m = b.finish({head_a, head_b});
  BuiltinOpResolver opt;
  Interpreter interp(&m, &opt);
  MonitorOptions opts;
  opts.retain_frames = false;
  EdgeMLMonitor monitor(opts);
  monitor.observe(interp);
  Pcg32 drng(212);
  Tensor input = random_input(Shape{1, 8, 8, 4}, drng);
  // Warm both ring buffers.
  for (int i = 0; i < 3; ++i) run_frame(monitor, interp, input);
  const std::uint64_t heap_before = g_heap_allocs.load();
  for (int i = 0; i < 4; ++i) run_frame(monitor, interp, input);
  EXPECT_EQ(g_heap_allocs.load(), heap_before)
      << "steady-state multi-output capture allocated";
  monitor.unobserve(interp);
}

TEST(ObserverSpool, BatchedSpoolRoundTripsManyFrames) {
  // The bounded frame queue: a ring deeper than two buffers feeds the spool
  // worker, which drains every queued frame per wakeup into a single write.
  // Whatever batching the scheduler produced, the file must round-trip all
  // frames in order with the header count patched at close.
  const auto path = std::filesystem::temp_directory_path() /
                    "mlx_observer_spool_batched.mlxtrace";
  constexpr int kFrames = 12;
  Pcg32 rng_a(221), rng_b(221);  // identical weights
  Graph ma = conv_stack_model(&rng_a);
  Graph mb = conv_stack_model(&rng_b);
  BuiltinOpResolver opt;
  MonitorOptions opts;
  opts.per_layer_outputs = true;
  opts.spool_queue_frames = 4;
  Pcg32 drng(222);
  std::vector<Tensor> inputs;
  for (int i = 0; i < kFrames; ++i) {
    inputs.push_back(random_input(Shape{1, 16, 16, 8}, drng));
  }

  std::size_t max_batch = 0;
  {
    Interpreter interp(&ma, &opt);
    EdgeMLMonitor monitor(opts);
    monitor.set_pipeline_name("batched");
    monitor.spool_to(path);
    EXPECT_EQ(monitor.buffer().buffer_count(), 4);
    monitor.observe(interp);
    for (const Tensor& in : inputs) run_frame(monitor, interp, in);
    EXPECT_EQ(monitor.finish_spool(), static_cast<std::size_t>(kFrames));
    max_batch = monitor.buffer().max_spool_batch();
    monitor.unobserve(interp);
  }
  EXPECT_GE(max_batch, 1u);
  EXPECT_LE(max_batch, 4u) << "batch exceeded the ring size";

  // Retained reference run over the same weights/inputs.
  Interpreter interp(&mb, &opt);
  EdgeMLMonitor monitor(opts);
  monitor.observe(interp);
  for (const Tensor& in : inputs) run_frame(monitor, interp, in);
  Trace retained = monitor.take_trace();
  monitor.unobserve(interp);

  Trace spooled = load_trace(path);
  std::filesystem::remove(path);
  ASSERT_EQ(spooled.frames.size(), static_cast<std::size_t>(kFrames));
  for (std::size_t f = 0; f < spooled.frames.size(); ++f) {
    const FrameTrace& s = spooled.frames[f];
    const FrameTrace& r = retained.frames[f];
    EXPECT_EQ(s.frame_id, r.frame_id);
    ASSERT_EQ(s.layer_outputs.size(), r.layer_outputs.size());
    for (std::size_t i = 0; i < s.layer_outputs.size(); ++i) {
      ASSERT_EQ(s.layer_outputs[i].byte_size(), r.layer_outputs[i].byte_size());
      EXPECT_EQ(std::memcmp(s.layer_outputs[i].raw_data(),
                            r.layer_outputs[i].raw_data(),
                            r.layer_outputs[i].byte_size()),
                0)
          << "frame " << f << " layer " << i;
    }
    EXPECT_EQ(s.tensor(trace_keys::kModelOutput).byte_size(),
              r.tensor(trace_keys::kModelOutput).byte_size());
  }
}

TEST(ObserverSpool, DigestFramesSpoolDurablyThroughTheBatchPath) {
  // Digest frames ride the same one-write-per-wakeup batching as raw frames;
  // spooled_digest_frames() counts the durably-written ones, and the file
  // round-trips every digest (trace format v2).
  const auto path = std::filesystem::temp_directory_path() /
                    "mlx_observer_spool_digest.mlxtrace";
  constexpr int kFrames = 10;
  Pcg32 rng_a(241), rng_b(241);  // identical weights
  Graph ma = conv_stack_model(&rng_a);
  Graph mb = conv_stack_model(&rng_b);
  BuiltinOpResolver opt;
  MonitorOptions opts;
  opts.per_layer_digests = true;
  Pcg32 drng(242);
  std::vector<Tensor> inputs;
  for (int i = 0; i < kFrames; ++i) {
    inputs.push_back(random_input(Shape{1, 16, 16, 8}, drng));
  }

  {
    Interpreter interp(&ma, &opt);
    EdgeMLMonitor monitor(opts);
    monitor.set_pipeline_name("digest-spool");
    monitor.spool_to(path);
    monitor.observe(interp);
    EXPECT_EQ(monitor.buffer().spooled_digest_frames(), 0u);
    for (const Tensor& in : inputs) run_frame(monitor, interp, in);
    EXPECT_EQ(monitor.finish_spool(), static_cast<std::size_t>(kFrames));
    EXPECT_EQ(monitor.buffer().spooled_digest_frames(),
              static_cast<std::size_t>(kFrames));
    monitor.unobserve(interp);
  }

  // Retained reference run over the same weights/inputs.
  Interpreter interp(&mb, &opt);
  EdgeMLMonitor monitor(opts);
  monitor.observe(interp);
  for (const Tensor& in : inputs) run_frame(monitor, interp, in);
  Trace retained = monitor.take_trace();
  monitor.unobserve(interp);

  Trace spooled = load_trace(path);
  std::filesystem::remove(path);
  EXPECT_EQ(spooled.pipeline_name, "digest-spool");
  ASSERT_EQ(spooled.frames.size(), static_cast<std::size_t>(kFrames));
  for (std::size_t f = 0; f < spooled.frames.size(); ++f) {
    const FrameTrace& s = spooled.frames[f];
    const FrameTrace& r = retained.frames[f];
    EXPECT_EQ(s.layer_names, r.layer_names);
    EXPECT_TRUE(s.layer_outputs.empty());
    ASSERT_EQ(s.layer_digests.size(), r.layer_digests.size());
    for (std::size_t i = 0; i < s.layer_digests.size(); ++i) {
      EXPECT_EQ(s.layer_digests[i].count, r.layer_digests[i].count);
      EXPECT_DOUBLE_EQ(s.layer_digests[i].mean(), r.layer_digests[i].mean());
      EXPECT_DOUBLE_EQ(s.layer_digests[i].quantile(0.5),
                       r.layer_digests[i].quantile(0.5))
          << "frame " << f << " layer " << s.layer_names[i];
    }
  }
}

TEST(ObserverSessions, TwoSessionsOneModelIndependentObservers) {
  // Observers are per-session state: two sessions over one shared Model
  // capture independently, while prepared bytes stay shared.
  Pcg32 rng(231);
  Graph graph = conv_stack_model(&rng);
  BuiltinOpResolver opt;
  Model model(&graph, &opt);
  Session sa(&model);
  Session sb(&model);
  EXPECT_EQ(sa.last_stats().prepared_bytes, sb.last_stats().prepared_bytes);

  MonitorOptions opts;
  opts.per_layer_outputs = true;
  EdgeMLMonitor mon_a(opts);
  EdgeMLMonitor mon_b(opts);
  mon_a.observe(sa);
  mon_b.observe(sb);

  Pcg32 drng(232);
  Tensor xa = random_input(Shape{1, 16, 16, 8}, drng);
  Tensor xb = random_input(Shape{1, 16, 16, 8}, drng);
  sa.set_input(0, xa);
  sb.set_input(0, xb);
  mon_a.on_inf_start();
  sa.invoke();
  mon_a.on_inf_stop(sa);
  mon_a.next_frame();
  mon_b.on_inf_start();
  sb.invoke();
  mon_b.on_inf_stop(sb);
  mon_b.next_frame();

  const FrameTrace& fa = mon_a.trace().frames.at(0);
  const FrameTrace& fb = mon_b.trace().frames.at(0);
  const Tensor& out_a = fa.tensor(trace_keys::kModelOutput);
  const Tensor& out_b = fb.tensor(trace_keys::kModelOutput);
  ASSERT_EQ(out_a.byte_size(), sa.output(0).byte_size());
  EXPECT_EQ(std::memcmp(out_a.raw_data(), sa.output(0).raw_data(),
                        out_a.byte_size()),
            0);
  EXPECT_EQ(std::memcmp(out_b.raw_data(), sb.output(0).raw_data(),
                        out_b.byte_size()),
            0);
  // Different inputs -> the two captures must differ (observers did not
  // cross wires).
  EXPECT_NE(std::memcmp(out_a.raw_data(), out_b.raw_data(),
                        out_a.byte_size()),
            0);
  mon_a.unobserve(sa);
  mon_b.unobserve(sb);
}

TEST(TraceBufferKeys, InterningIsStable) {
  TraceBuffer buffer;
  const std::uint16_t a = buffer.intern_key("custom.key");
  const std::uint16_t b = buffer.intern_key("custom.key");
  EXPECT_EQ(a, b);
  EXPECT_EQ(buffer.key_name(a), "custom.key");
  const std::uint16_t latency = buffer.intern_key(trace_keys::kInferenceLatencyMs);
  EXPECT_NE(a, latency);
}

}  // namespace
}  // namespace mlexray
