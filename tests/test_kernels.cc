#include <gtest/gtest.h>

#include <cmath>

#include "src/graph/builder.h"
#include "src/interpreter/interpreter.h"
#include "src/kernels/fixed_point.h"
#include "src/quant/quantizer.h"
#include "src/tensor/tensor_stats.h"

namespace mlexray {
namespace {

TEST(FixedPoint, QuantizeMultiplierRoundTrips) {
  for (double real : {0.5, 0.25, 0.1, 0.0123, 0.9999, 3e-5}) {
    std::int32_t m = 0;
    int shift = 0;
    quantize_multiplier(real, &m, &shift);
    double reconstructed = static_cast<double>(m) / (1LL << 31) *
                           std::pow(2.0, shift);
    EXPECT_NEAR(reconstructed / real, 1.0, 1e-6) << real;
  }
}

TEST(FixedPoint, MultiplyMatchesDouble) {
  std::int32_t m = 0;
  int shift = 0;
  quantize_multiplier(0.00372, &m, &shift);
  for (std::int32_t x : {-100000, -1234, -1, 0, 1, 999, 123456}) {
    std::int32_t got = multiply_by_quantized_multiplier(x, m, shift);
    auto want = static_cast<std::int32_t>(std::lround(x * 0.00372));
    EXPECT_NEAR(got, want, 1) << x;
  }
}

TEST(FixedPoint, RoundingDivideByPot) {
  EXPECT_EQ(rounding_divide_by_pot(8, 2), 2);
  EXPECT_EQ(rounding_divide_by_pot(10, 2), 3);   // 2.5 rounds away
  EXPECT_EQ(rounding_divide_by_pot(-10, 2), -3);
  EXPECT_EQ(rounding_divide_by_pot(9, 2), 2);
}

TEST(FixedPoint, ClampToI8) {
  EXPECT_EQ(clamp_to_i8(300), 127);
  EXPECT_EQ(clamp_to_i8(-300), -128);
  EXPECT_EQ(clamp_to_i8(5), 5);
}

// --- float reference vs optimized parity, parameterized over geometry ---

struct ConvCase {
  int in_size, in_ch, out_ch, kernel, stride;
  Padding padding;
};

class ConvParity : public ::testing::TestWithParam<ConvCase> {};

Tensor random_input(Shape shape, Pcg32& rng) {
  Tensor t = Tensor::f32(shape);
  float* p = t.data<float>();
  for (std::int64_t i = 0; i < t.num_elements(); ++i) p[i] = rng.uniform(-2, 2);
  return t;
}

TEST_P(ConvParity, RefMatchesOptimized) {
  const ConvCase& c = GetParam();
  Pcg32 rng(99);
  GraphBuilder b("conv", &rng);
  int x = b.input(Shape{1, c.in_size, c.in_size, c.in_ch});
  b.conv2d(x, c.out_ch, c.kernel, c.kernel, c.stride, c.padding,
           Activation::kRelu6, "conv");
  Graph m = b.finish({1});

  RefOpResolver ref;
  BuiltinOpResolver opt;
  Interpreter ri(&m, &ref);
  Interpreter oi(&m, &opt, /*num_threads=*/2);
  Tensor input = random_input(Shape{1, c.in_size, c.in_size, c.in_ch}, rng);
  ri.set_input(0, input);
  oi.set_input(0, input);
  ri.invoke();
  oi.invoke();
  EXPECT_LT(linf_error(ri.output(0), oi.output(0)), 1e-4);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, ConvParity,
    ::testing::Values(ConvCase{8, 3, 4, 3, 1, Padding::kSame},
                      ConvCase{8, 3, 4, 3, 2, Padding::kSame},
                      ConvCase{9, 2, 5, 3, 2, Padding::kSame},
                      ConvCase{8, 4, 4, 1, 1, Padding::kSame},
                      ConvCase{8, 3, 4, 3, 1, Padding::kValid},
                      ConvCase{7, 1, 2, 5, 2, Padding::kSame},
                      ConvCase{16, 8, 8, 3, 2, Padding::kSame}));

struct DwCase {
  int in_size, ch, kernel, stride;
  Padding padding;
};

class DwConvParity : public ::testing::TestWithParam<DwCase> {};

TEST_P(DwConvParity, RefMatchesOptimized) {
  const DwCase& c = GetParam();
  Pcg32 rng(123);
  GraphBuilder b("dw", &rng);
  int x = b.input(Shape{1, c.in_size, c.in_size, c.ch});
  b.depthwise_conv2d(x, c.kernel, c.kernel, c.stride, c.padding,
                     Activation::kRelu, "dw");
  Graph m = b.finish({1});
  RefOpResolver ref;
  BuiltinOpResolver opt;
  Interpreter ri(&m, &ref);
  Interpreter oi(&m, &opt, 2);
  Tensor input = random_input(Shape{1, c.in_size, c.in_size, c.ch}, rng);
  ri.set_input(0, input);
  oi.set_input(0, input);
  ri.invoke();
  oi.invoke();
  EXPECT_LT(linf_error(ri.output(0), oi.output(0)), 1e-4);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, DwConvParity,
    ::testing::Values(DwCase{8, 3, 3, 1, Padding::kSame},
                      DwCase{8, 4, 3, 2, Padding::kSame},
                      DwCase{9, 5, 3, 2, Padding::kSame},
                      DwCase{6, 2, 5, 1, Padding::kSame},
                      DwCase{8, 3, 3, 1, Padding::kValid}));

TEST(KernelParity, PadRefMatchesOptimized) {
  Pcg32 rng(5);
  GraphBuilder b("pad", &rng);
  int x = b.input(Shape{1, 5, 6, 3});
  b.pad(x, 1, 2, 0, 1, "p");
  Graph m = b.finish({1});
  RefOpResolver ref;
  BuiltinOpResolver opt;
  Interpreter ri(&m, &ref);
  Interpreter oi(&m, &opt);
  Tensor input = random_input(Shape{1, 5, 6, 3}, rng);
  ri.set_input(0, input);
  oi.set_input(0, input);
  ri.invoke();
  oi.invoke();
  EXPECT_EQ(linf_error(ri.output(0), oi.output(0)), 0.0);
}

TEST(KernelParity, FullyConnectedRefMatchesOptimized) {
  Pcg32 rng(6);
  GraphBuilder b("fc", &rng);
  int x = b.input(Shape{1, 4, 4, 3});
  b.fully_connected(x, 10, Activation::kNone, "fc");
  Graph m = b.finish({1});
  RefOpResolver ref;
  BuiltinOpResolver opt;
  Interpreter ri(&m, &ref);
  Interpreter oi(&m, &opt, 2);
  Tensor input = random_input(Shape{1, 4, 4, 3}, rng);
  ri.set_input(0, input);
  oi.set_input(0, input);
  ri.invoke();
  oi.invoke();
  EXPECT_LT(linf_error(ri.output(0), oi.output(0)), 1e-4);
}

// --- individual op semantics ---

TEST(Kernels, SoftmaxRowsSumToOne) {
  Pcg32 rng(7);
  GraphBuilder b("sm", &rng);
  int x = b.input(Shape{1, 6});
  b.softmax(x, "sm");
  Graph m = b.finish({1});
  RefOpResolver ref;
  Interpreter interp(&m, &ref);
  interp.set_input(0, Tensor::f32(Shape{1, 6}, {1, 2, 3, -1, 0, 5}));
  interp.invoke();
  const float* p = interp.output(0).data<float>();
  float sum = 0;
  for (int i = 0; i < 6; ++i) sum += p[i];
  EXPECT_NEAR(sum, 1.0f, 1e-5);
  EXPECT_GT(p[5], p[0]);
}

TEST(Kernels, MeanComputesSpatialAverage) {
  Pcg32 rng(8);
  GraphBuilder b("mean", &rng);
  int x = b.input(Shape{1, 2, 2, 1});
  b.mean(x, "m");
  Graph m = b.finish({1});
  RefOpResolver ref;
  Interpreter interp(&m, &ref);
  interp.set_input(0, Tensor::f32(Shape{1, 2, 2, 1}, {1, 2, 3, 6}));
  interp.invoke();
  EXPECT_FLOAT_EQ(interp.output(0).data<float>()[0], 3.0f);
}

TEST(Kernels, MulBroadcastsSqueezeExciteGate) {
  Pcg32 rng(9);
  GraphBuilder b("mul", &rng);
  int x = b.input(Shape{1, 2, 2, 2});
  int g = b.mean(x, "gate");  // [1,1,1,2]
  b.mul(x, g, "scaled");
  Graph m = b.finish({2});
  RefOpResolver ref;
  Interpreter interp(&m, &ref);
  interp.set_input(0, Tensor::f32(Shape{1, 2, 2, 2},
                                  {1, 2, 1, 2, 1, 2, 1, 2}));
  interp.invoke();
  // gate = (1,2); out = x * gate per channel.
  const float* p = interp.output(0).data<float>();
  EXPECT_FLOAT_EQ(p[0], 1.0f);
  EXPECT_FLOAT_EQ(p[1], 4.0f);
}

TEST(Kernels, HardSwishMatchesFormula) {
  Pcg32 rng(10);
  GraphBuilder b("hs", &rng);
  int x = b.input(Shape{1, 5});
  b.hardswish(x, "h");
  Graph m = b.finish({1});
  RefOpResolver ref;
  Interpreter interp(&m, &ref);
  interp.set_input(0, Tensor::f32(Shape{1, 5}, {-4, -1, 0, 1, 4}));
  interp.invoke();
  const float* p = interp.output(0).data<float>();
  EXPECT_FLOAT_EQ(p[0], 0.0f);
  EXPECT_FLOAT_EQ(p[1], -1.0f * 2.0f / 6.0f);
  EXPECT_FLOAT_EQ(p[2], 0.0f);
  EXPECT_FLOAT_EQ(p[4], 4.0f);
}

TEST(Kernels, BatchNormInferenceUsesMovingStats) {
  Pcg32 rng(11);
  GraphBuilder b("bn", &rng);
  int x = b.input(Shape{1, 1, 1, 2});
  int bn = b.batch_norm(x, "bn");
  Graph m = b.finish({bn});
  // gamma=2, beta=1, mean=3, var=4 for channel 0.
  Node& node = m.node(bn);
  node.weights[0].data<float>()[0] = 2.0f;
  node.weights[1].data<float>()[0] = 1.0f;
  node.weights[2].data<float>()[0] = 3.0f;
  node.weights[3].data<float>()[0] = 4.0f;
  RefOpResolver ref;
  Interpreter interp(&m, &ref);
  interp.set_input(0, Tensor::f32(Shape{1, 1, 1, 2}, {5.0f, 0.0f}));
  interp.invoke();
  float expected = 2.0f * (5.0f - 3.0f) / std::sqrt(4.0f + 1e-5f) + 1.0f;
  EXPECT_NEAR(interp.output(0).data<float>()[0], expected, 1e-4);
}

// --- quantized kernels ---

// A small conv net quantized end-to-end should track the float model.
TEST(QuantKernels, QuantizedConvTracksFloat) {
  Pcg32 rng(21);
  GraphBuilder b("qconv", &rng);
  int x = b.input(Shape{1, 8, 8, 3});
  int c = b.conv2d(x, 6, 3, 3, 1, Padding::kSame, Activation::kRelu, "c1");
  c = b.conv2d(c, 4, 3, 3, 2, Padding::kSame, Activation::kNone, "c2");
  Graph m = b.finish({c});

  Calibrator calib(&m);
  Pcg32 drng(22);
  for (int i = 0; i < 8; ++i) {
    calib.observe({random_input(Shape{1, 8, 8, 3}, drng)});
  }
  Graph qm = quantize_model(m, calib);

  RefOpResolver ref;
  Interpreter fi(&m, &ref);
  Interpreter qi_ref(&qm, &ref);
  BuiltinOpResolver opt;
  Interpreter qi_opt(&qm, &opt);

  Pcg32 erng(23);
  Tensor input = random_input(Shape{1, 8, 8, 3}, erng);
  fi.set_input(0, input);
  qi_ref.set_input(0, input);
  qi_opt.set_input(0, input);
  fi.invoke();
  qi_ref.invoke();
  qi_opt.invoke();

  // Quantized output stays within a few quantization steps of float.
  EXPECT_LT(normalized_rmse(qi_ref.output(0), fi.output(0)), 0.05);
  EXPECT_LT(normalized_rmse(qi_opt.output(0), fi.output(0)), 0.05);
  // Reference and optimized integer paths agree within 1 quantum.
  EXPECT_LT(normalized_rmse(qi_opt.output(0), qi_ref.output(0)), 0.02);
}

TEST(QuantKernels, DwConvBugEmulationWrecksOutput) {
  Pcg32 rng(31);
  GraphBuilder b("qdw", &rng);
  int x = b.input(Shape{1, 8, 8, 8});
  int d = b.depthwise_conv2d(x, 3, 3, 1, Padding::kSame, Activation::kNone,
                             "dw");
  Graph m = b.finish({d});
  // Large-ish activations to force accumulator magnitudes past int16.
  Calibrator calib(&m);
  Pcg32 drng(32);
  for (int i = 0; i < 4; ++i) {
    Tensor t = Tensor::f32(Shape{1, 8, 8, 8});
    float* p = t.data<float>();
    for (std::int64_t j = 0; j < t.num_elements(); ++j) p[j] = drng.uniform(-8, 8);
    calib.observe({t});
  }
  Graph qm = quantize_model(m, calib);

  BuiltinOpResolver good(KernelBugConfig::none());
  BuiltinOpResolver bad(KernelBugConfig::as_shipped());
  Interpreter gi(&qm, &good);
  Interpreter bi(&qm, &bad);
  Tensor input = Tensor::f32(Shape{1, 8, 8, 8});
  Pcg32 erng(33);
  float* p = input.data<float>();
  for (std::int64_t j = 0; j < input.num_elements(); ++j) p[j] = erng.uniform(-8, 8);
  gi.set_input(0, input);
  bi.set_input(0, input);
  gi.invoke();
  bi.invoke();
  // The wrapped accumulator must visibly diverge (benign quantization noise
  // between the two resolvers is ~0.005 on this net).
  EXPECT_GT(normalized_rmse(bi.output(0), gi.output(0)), 0.05);
}

TEST(QuantKernels, AvgPoolBugEmulationCollapsesOutput) {
  Pcg32 rng(41);
  GraphBuilder b("qap", &rng);
  int x = b.input(Shape{1, 8, 8, 4});
  int p = b.avg_pool(x, 8, 1, Padding::kValid, "se_pool");
  Graph m = b.finish({p});
  Calibrator calib(&m);
  Pcg32 drng(42);
  for (int i = 0; i < 4; ++i) {
    calib.observe({random_input(Shape{1, 8, 8, 4}, drng)});
  }
  Graph qm = quantize_model(m, calib);

  RefOpResolver good(KernelBugConfig::none());
  RefOpResolver bad(KernelBugConfig::as_shipped());
  Interpreter gi(&qm, &good);
  Interpreter bi(&qm, &bad);
  Pcg32 erng(43);
  Tensor input = random_input(Shape{1, 8, 8, 4}, erng);
  gi.set_input(0, input);
  bi.set_input(0, input);
  gi.invoke();
  bi.invoke();
  // The buggy pool (wrong shift, no zero point) produces invalid output:
  // far outside one quantum of the correct mean.
  EXPECT_GT(normalized_rmse(bi.output(0), gi.output(0)), 0.5);
  // The correct kernels agree with the float mean within quantization noise.
  EXPECT_LT(normalized_rmse(gi.output(0), gi.output(0)), 1e-9);
}

TEST(QuantKernels, QuantizeDequantizeRoundTrip) {
  Pcg32 rng(51);
  GraphBuilder b("qdq", &rng);
  int x = b.input(Shape{1, 4, 4, 2});
  Graph m = b.finish({x});
  // Build a quantized identity: input -> quantize -> dequantize. The eval
  // sample is part of calibration so no clipping occurs (clipping behaviour
  // is exercised separately by the calibration ablation).
  Pcg32 erng(53);
  Tensor input = random_input(Shape{1, 4, 4, 2}, erng);
  Calibrator calib(&m);
  Pcg32 drng(52);
  for (int i = 0; i < 4; ++i) calib.observe({random_input(Shape{1, 4, 4, 2}, drng)});
  calib.observe({input});
  Graph qm = quantize_model(m, calib);
  RefOpResolver ref;
  Interpreter interp(&qm, &ref);
  interp.set_input(0, input);
  interp.invoke();
  // round-trip error bounded by one quantization step (range 4 / 255).
  EXPECT_LT(linf_error(interp.output(0), input), 4.2 / 255.0);
}

// --- vectorized Quantize/Dequantize vs scalar reference ---------------------
//
// The optimized resolver overrides the e2e int8 path's endpoint kernels with
// SIMD variants; both must be bit-exact with the shared scalar reference.
// Odd lengths exercise every vector-tail split; scale 0.25 (a power of two)
// makes x = (k + 0.5) * scale divide back to an exact .5 tie, pinning the
// half-away-from-zero rounding the reference's std::lround uses.

TEST(QuantizeKernels, OptQuantizeMatchesRefAtOddLengths) {
  RefOpResolver ref;
  BuiltinOpResolver opt;
  Pcg32 rng(314);
  for (std::int64_t n : {1LL, 3LL, 5LL, 7LL, 9LL, 15LL, 17LL, 31LL, 33LL,
                         63LL, 67LL, 255LL, 257LL, 1001LL}) {
    Node node;
    node.id = 0;
    node.type = OpType::kQuantize;
    node.name = "quantize";
    node.output_shape = Shape{n};
    node.output_dtype = DType::kI8;
    node.output_quant = QuantParams::per_tensor(0.25f, 3);

    Tensor in = Tensor::f32(Shape{n});
    float* p = in.data<float>();
    for (std::int64_t i = 0; i < n; ++i) {
      switch (i % 4) {
        case 0:  // exact .5 tie after division by scale
          p[i] = (static_cast<float>(i % 97) - 48.0f + 0.5f) * 0.25f;
          break;
        case 1:  // saturating magnitudes
          p[i] = rng.uniform(-1000.0f, 1000.0f);
          break;
        default:
          p[i] = rng.uniform(-40.0f, 40.0f);
      }
    }
    Tensor out_ref(DType::kI8, Shape{n});
    out_ref.quant() = node.output_quant;
    Tensor out_opt(DType::kI8, Shape{n});
    out_opt.quant() = node.output_quant;

    KernelContext ctx;
    ctx.node = &node;
    ctx.inputs = {&in};
    ctx.output = &out_ref;
    ref.find(node).invoke(ctx);
    ctx.output = &out_opt;
    opt.find(node).invoke(ctx);
    EXPECT_EQ(std::memcmp(out_ref.raw_data(), out_opt.raw_data(),
                          static_cast<std::size_t>(n)),
              0)
        << "n=" << n;
  }
}

TEST(QuantizeKernels, OptDequantizeMatchesRefAtOddLengths) {
  RefOpResolver ref;
  BuiltinOpResolver opt;
  Pcg32 rng(159);
  for (std::int64_t n : {1LL, 3LL, 7LL, 9LL, 17LL, 33LL, 67LL, 255LL, 257LL,
                         1001LL}) {
    Node node;
    node.id = 0;
    node.type = OpType::kDequantize;
    node.name = "dequantize";
    node.output_shape = Shape{n};
    node.output_dtype = DType::kF32;

    Tensor in(DType::kI8, Shape{n});
    in.quant() = QuantParams::per_tensor(0.0371f, -5);
    std::int8_t* p = in.data<std::int8_t>();
    for (std::int64_t i = 0; i < n; ++i) {
      p[i] = static_cast<std::int8_t>(static_cast<int>(rng.next_below(255)) -
                                      127);
    }
    Tensor out_ref = Tensor::f32(Shape{n});
    Tensor out_opt = Tensor::f32(Shape{n});

    KernelContext ctx;
    ctx.node = &node;
    ctx.inputs = {&in};
    ctx.output = &out_ref;
    ref.find(node).invoke(ctx);
    ctx.output = &out_opt;
    opt.find(node).invoke(ctx);
    EXPECT_EQ(std::memcmp(out_ref.raw_data(), out_opt.raw_data(),
                          static_cast<std::size_t>(n) * sizeof(float)),
              0)
        << "n=" << n;
  }
}

TEST(Resolver, MissingKernelThrows) {
  Pcg32 rng(61);
  GraphBuilder b("emb", &rng);
  int ids = b.input(Shape{1, 4}, DType::kI32, "tokens");
  int e = b.embedding(ids, 10, 4, "emb");
  Graph m = b.finish({e});
  Node fake = m.node(e);
  fake.output_dtype = DType::kI8;  // no int8 embedding kernel exists
  RefOpResolver ref;
  EXPECT_THROW(ref.find(fake), MlxError);
}

}  // namespace
}  // namespace mlexray
