#include <gtest/gtest.h>

#include <cmath>

#include "src/tensor/alloc_stats.h"
#include "src/tensor/tensor.h"
#include "src/tensor/tensor_stats.h"

namespace mlexray {
namespace {

TEST(Shape, BasicProperties) {
  Shape s{2, 3, 4};
  EXPECT_EQ(s.rank(), 3);
  EXPECT_EQ(s.num_elements(), 24);
  EXPECT_EQ(s.to_string(), "[2x3x4]");
  EXPECT_EQ(s, (Shape{2, 3, 4}));
  EXPECT_NE(s, (Shape{2, 3}));
}

TEST(Shape, OutOfRangeDimThrows) {
  Shape s{2, 3};
  EXPECT_THROW(s.dim(2), MlxError);
}

TEST(Tensor, AllocatesZeroed) {
  Tensor t = Tensor::f32(Shape{2, 2});
  for (int i = 0; i < 4; ++i) EXPECT_EQ(t.data<float>()[i], 0.0f);
}

TEST(Tensor, DtypeMismatchThrows) {
  Tensor t = Tensor::f32(Shape{2});
  EXPECT_THROW(t.data<std::int8_t>(), MlxError);
}

TEST(Tensor, At4Indexing) {
  Tensor t = Tensor::f32(Shape{1, 2, 2, 3});
  t.at4<float>(0, 1, 1, 2) = 7.0f;
  EXPECT_EQ(t.data<float>()[1 * 2 * 3 + 1 * 3 + 2], 7.0f);
}

TEST(Tensor, CopyIsDeep) {
  Tensor a = Tensor::f32(Shape{2}, {1.0f, 2.0f});
  Tensor b = a;
  b.data<float>()[0] = 9.0f;
  EXPECT_EQ(a.data<float>()[0], 1.0f);
}

TEST(Tensor, DequantizePerTensor) {
  Tensor q = Tensor::i8(Shape{3});
  q.data<std::int8_t>()[0] = -10;
  q.data<std::int8_t>()[1] = 0;
  q.data<std::int8_t>()[2] = 10;
  q.quant() = QuantParams::per_tensor(0.5f, 2);
  Tensor f = q.to_f32();
  EXPECT_FLOAT_EQ(f.data<float>()[0], 0.5f * (-10 - 2));
  EXPECT_FLOAT_EQ(f.data<float>()[2], 0.5f * (10 - 2));
}

TEST(Tensor, DequantizePerChannel) {
  Tensor q = Tensor::i8(Shape{2, 2});  // axis 0: two channels
  q.data<std::int8_t>()[0] = 4;
  q.data<std::int8_t>()[1] = 4;
  q.data<std::int8_t>()[2] = 4;
  q.data<std::int8_t>()[3] = 4;
  q.quant() = QuantParams::per_channel_params({1.0f, 2.0f}, {0, 0}, 0);
  Tensor f = q.to_f32();
  EXPECT_FLOAT_EQ(f.data<float>()[0], 4.0f);
  EXPECT_FLOAT_EQ(f.data<float>()[3], 8.0f);
}

TEST(TensorStats, Summary) {
  Tensor t = Tensor::f32(Shape{4}, {1.0f, 2.0f, 3.0f, 4.0f});
  TensorSummary s = summarize(t);
  EXPECT_FLOAT_EQ(s.min, 1.0f);
  EXPECT_FLOAT_EQ(s.max, 4.0f);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
}

TEST(TensorStats, Rmse) {
  Tensor a = Tensor::f32(Shape{2}, {0.0f, 0.0f});
  Tensor b = Tensor::f32(Shape{2}, {3.0f, 4.0f});
  EXPECT_NEAR(rmse(a, b), std::sqrt(12.5), 1e-9);
}

TEST(TensorStats, NormalizedRmseMatchesPaperDefinition) {
  // reference range is 10 -> rMSE / 10.
  Tensor ref = Tensor::f32(Shape{2}, {0.0f, 10.0f});
  Tensor test = Tensor::f32(Shape{2}, {1.0f, 10.0f});
  // rMSE = sqrt(0.5); normalized by 10.
  EXPECT_NEAR(normalized_rmse(test, ref), std::sqrt(0.5) / 10.0, 1e-9);
}

TEST(TensorStats, NormalizedRmseDegenerateRange) {
  Tensor ref = Tensor::f32(Shape{2}, {5.0f, 5.0f});
  Tensor same = ref;
  Tensor diff = Tensor::f32(Shape{2}, {5.0f, 6.0f});
  EXPECT_EQ(normalized_rmse(same, ref), 0.0);
  EXPECT_TRUE(std::isinf(normalized_rmse(diff, ref)));
}

TEST(TensorStats, CosineDistance) {
  Tensor a = Tensor::f32(Shape{2}, {1.0f, 0.0f});
  Tensor b = Tensor::f32(Shape{2}, {0.0f, 1.0f});
  EXPECT_NEAR(cosine_distance(a, b), 1.0, 1e-6);
  EXPECT_NEAR(cosine_distance(a, a), 0.0, 1e-6);
}

TEST(TensorStats, AllClose) {
  Tensor a = Tensor::f32(Shape{2}, {1.0f, 2.0f});
  Tensor b = Tensor::f32(Shape{2}, {1.0f, 2.0005f});
  EXPECT_TRUE(all_close(a, b, 1e-3));
  EXPECT_FALSE(all_close(a, b, 1e-5));
}

TEST(AllocStats, TracksTensorLifetime) {
  AllocStats& stats = AllocStats::instance();
  std::size_t before = stats.current_bytes();
  {
    Tensor t = Tensor::f32(Shape{1024});
    EXPECT_GE(stats.current_bytes(), before + 4096);
  }
  EXPECT_EQ(stats.current_bytes(), before);
}

TEST(AllocStats, ScopedPeakTracker) {
  ScopedPeakTracker tracker;
  { Tensor t = Tensor::f32(Shape{2048}); }
  EXPECT_GE(tracker.peak_delta_bytes(), 8192u);
}

}  // namespace
}  // namespace mlexray
