#include <gtest/gtest.h>

#include <filesystem>

#include "src/graph/builder.h"
#include "src/graph/serialization.h"

namespace mlexray {
namespace {

Graph tiny_model(std::uint64_t seed = 3) {
  Pcg32 rng(seed);
  GraphBuilder b("tiny", &rng);
  int x = b.input(Shape{1, 8, 8, 3});
  x = b.conv2d(x, 4, 3, 3, 2, Padding::kSame, Activation::kNone, "c1");
  x = b.batch_norm(x, "bn1");
  x = b.relu(x, "r1");
  x = b.mean(x, "gap");
  int logits = b.fully_connected(x, 5, Activation::kNone, "logits");
  int prob = b.softmax(logits, "prob");
  return b.finish({prob});
}

// local helper (models lib provides one too, but keep graph tests standalone)
int find_node(const Graph& m, const std::string& name) {
  for (const Node& n : m.nodes) {
    if (n.name == name) return n.id;
  }
  throw MlxError("missing node " + name);
}

TEST(Graph, ShapeInferenceConvSame) {
  Graph m = tiny_model();
  // conv stride 2 SAME on 8x8 -> 4x4x4
  int conv = find_node(m, "c1");
  EXPECT_EQ(m.node(conv).output_shape, (Shape{1, 4, 4, 4}));
}

TEST(Graph, LayerAndParamCounts) {
  Graph m = tiny_model();
  EXPECT_EQ(m.layer_count(), static_cast<int>(m.nodes.size()) - 1);
  // conv: 4*3*3*3 + 4; bn: 4*4; fc: 5*4 + 5
  EXPECT_EQ(m.num_params(), 4 * 3 * 3 * 3 + 4 + 16 + 5 * 4 + 5);
}

TEST(Graph, NonTopologicalInputRejected) {
  Graph m;
  Node n;
  n.type = OpType::kRelu;
  n.inputs = {5};
  EXPECT_THROW(m.add_node(std::move(n)), MlxError);
}

TEST(Graph, ConcatShapeInference) {
  Pcg32 rng(1);
  GraphBuilder b("cat", &rng);
  int x = b.input(Shape{1, 4, 4, 3});
  int a = b.conv2d(x, 2, 1, 1, 1, Padding::kSame, Activation::kNone);
  int c = b.conv2d(x, 5, 1, 1, 1, Padding::kSame, Activation::kNone);
  int cat = b.concat({a, c});
  EXPECT_EQ(b.shape_of(cat), (Shape{1, 4, 4, 7}));
}

TEST(Graph, ReshapeInfersMinusOne) {
  Pcg32 rng(1);
  GraphBuilder b("rs", &rng);
  int x = b.input(Shape{1, 4, 4, 2});
  int r = b.reshape(x, Shape{0, -1});
  EXPECT_EQ(b.shape_of(r), (Shape{1, 32}));
}

TEST(Graph, PadShape) {
  Pcg32 rng(1);
  GraphBuilder b("pad", &rng);
  int x = b.input(Shape{1, 4, 4, 2});
  int p = b.pad(x, 0, 1, 0, 1);
  EXPECT_EQ(b.shape_of(p), (Shape{1, 5, 5, 2}));
}

TEST(Graph, ValidConvShape) {
  Pcg32 rng(1);
  GraphBuilder b("v", &rng);
  int x = b.input(Shape{1, 5, 5, 1});
  int c = b.conv2d(x, 2, 3, 3, 2, Padding::kValid, Activation::kNone);
  EXPECT_EQ(b.shape_of(c), (Shape{1, 2, 2, 2}));
}

TEST(Graph, AddShapeMismatchThrows) {
  Pcg32 rng(1);
  GraphBuilder b("bad", &rng);
  int x = b.input(Shape{1, 4, 4, 2});
  int y = b.conv2d(x, 3, 1, 1, 1, Padding::kSame, Activation::kNone);
  EXPECT_THROW(b.add(x, y), MlxError);
}

TEST(Serialization, ModelRoundTrip) {
  Graph m = tiny_model(9);
  auto bytes = serialize_model(m);
  BinaryReader r(bytes);
  Graph back = deserialize_model(r);
  ASSERT_EQ(back.nodes.size(), m.nodes.size());
  EXPECT_EQ(back.name, m.name);
  EXPECT_EQ(back.input_spec, m.input_spec);
  for (std::size_t i = 0; i < m.nodes.size(); ++i) {
    EXPECT_EQ(back.nodes[i].type, m.nodes[i].type);
    EXPECT_EQ(back.nodes[i].name, m.nodes[i].name);
    EXPECT_EQ(back.nodes[i].output_shape, m.nodes[i].output_shape);
    ASSERT_EQ(back.nodes[i].weights.size(), m.nodes[i].weights.size());
    for (std::size_t w = 0; w < m.nodes[i].weights.size(); ++w) {
      const Tensor& a = m.nodes[i].weights[w];
      const Tensor& b = back.nodes[i].weights[w];
      ASSERT_EQ(a.byte_size(), b.byte_size());
      EXPECT_EQ(0, std::memcmp(a.raw_data(), b.raw_data(), a.byte_size()));
    }
  }
}

TEST(Serialization, FileRoundTrip) {
  Graph m = tiny_model(4);
  auto path = std::filesystem::temp_directory_path() / "mlx_model.ckpt";
  save_model(m, path);
  Graph back = load_model(path);
  EXPECT_EQ(back.nodes.size(), m.nodes.size());
  std::filesystem::remove(path);
}

TEST(Serialization, RejectsGarbage) {
  BinaryWriter w;
  w.write_u32(0xdeadbeef);
  BinaryReader r(w.bytes());
  EXPECT_THROW(deserialize_model(r), MlxError);
}

TEST(OpTypes, LatencyGroups) {
  EXPECT_EQ(op_latency_group(OpType::kDepthwiseConv2D), "D-Conv");
  EXPECT_EQ(op_latency_group(OpType::kConv2D), "Conv");
  EXPECT_EQ(op_latency_group(OpType::kQuantize), "Quantize");
}

}  // namespace
}  // namespace mlexray
