#include <gtest/gtest.h>

#include <filesystem>
#include <set>

#include "src/common/error.h"
#include "src/common/file_io.h"
#include "src/common/loc_counter.h"
#include "src/common/rng.h"
#include "src/common/string_util.h"
#include "src/common/thread_pool.h"

namespace mlexray {
namespace {

TEST(Error, CheckThrowsWithContext) {
  try {
    MLX_CHECK_EQ(1, 2) << "custom context";
    FAIL() << "expected throw";
  } catch (const MlxError& e) {
    EXPECT_NE(std::string(e.what()).find("custom context"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("1 == 2"), std::string::npos);
  }
}

TEST(Error, CheckPassesSilently) {
  EXPECT_NO_THROW(MLX_CHECK(true) << "never evaluated");
  EXPECT_NO_THROW(MLX_CHECK_LT(1, 2));
}

TEST(Rng, Deterministic) {
  Pcg32 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u32(), b.next_u32());
}

TEST(Rng, DifferentSeedsDiffer) {
  Pcg32 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next_u32() == b.next_u32());
  EXPECT_LT(same, 3);
}

TEST(Rng, NextBelowInRange) {
  Pcg32 rng(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.next_below(17), 17u);
}

TEST(Rng, NormalMoments) {
  Pcg32 rng(11);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    float v = rng.normal();
    sum += v;
    sum_sq += static_cast<double>(v) * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.05);
}

TEST(Rng, ShufflePreservesElements) {
  Pcg32 rng(5);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
  auto original = v;
  rng.shuffle(v);
  EXPECT_EQ(std::set<int>(v.begin(), v.end()),
            std::set<int>(original.begin(), original.end()));
}

TEST(ThreadPool, ParallelForCoversRange) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(100);
  pool.parallel_for(0, 100, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for(5, 5, [&](std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, ZeroWorkerPoolRunsInline) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 0u);
  EXPECT_EQ(pool.parallelism(), 1u);
  std::vector<int> hits(50, 0);
  pool.parallel_for(0, 50, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) hits[i]++;
  });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPool, MinChunkRespectsGranularity) {
  ThreadPool pool(3);
  std::mutex mu;
  std::vector<std::pair<std::size_t, std::size_t>> chunks;
  pool.parallel_for(
      0, 100,
      [&](std::size_t lo, std::size_t hi) {
        std::lock_guard<std::mutex> lock(mu);
        chunks.emplace_back(lo, hi);
      },
      /*min_chunk=*/16);
  std::size_t covered = 0;
  for (auto [lo, hi] : chunks) {
    covered += hi - lo;
    // Every chunk except possibly the final remainder honours min_chunk.
    if (hi != 100) EXPECT_GE(hi - lo, 16u);
  }
  EXPECT_EQ(covered, 100u);
}

TEST(ThreadPool, WorkerIndexVariantCoversRangeWithValidIds) {
  ThreadPool pool(2);
  std::vector<std::atomic<int>> hits(64);
  std::atomic<bool> bad_worker{false};
  pool.parallel_for_workers(
      0, 64,
      [&](std::size_t lo, std::size_t hi, std::size_t worker) {
        if (worker >= pool.parallelism()) bad_worker = true;
        for (std::size_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
      },
      /*min_chunk=*/4);
  EXPECT_FALSE(bad_worker.load());
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, BackToBackJobsReuseWorkers) {
  ThreadPool pool(2);
  for (int round = 0; round < 50; ++round) {
    std::atomic<int> count{0};
    pool.parallel_for(0, 40,
                      [&](std::size_t lo, std::size_t hi) {
                        count.fetch_add(static_cast<int>(hi - lo));
                      });
    ASSERT_EQ(count.load(), 40);
  }
}

TEST(BinaryIo, RoundTripAllTypes) {
  BinaryWriter w;
  w.write_u8(7);
  w.write_u32(123456);
  w.write_i32(-42);
  w.write_u64(1ULL << 40);
  w.write_f32(3.25f);
  w.write_f64(-2.5);
  w.write_string("hello");
  w.write_f32_array({1.0f, 2.0f});
  BinaryReader r(w.bytes());
  EXPECT_EQ(r.read_u8(), 7);
  EXPECT_EQ(r.read_u32(), 123456u);
  EXPECT_EQ(r.read_i32(), -42);
  EXPECT_EQ(r.read_u64(), 1ULL << 40);
  EXPECT_FLOAT_EQ(r.read_f32(), 3.25f);
  EXPECT_DOUBLE_EQ(r.read_f64(), -2.5);
  EXPECT_EQ(r.read_string(), "hello");
  auto arr = r.read_f32_array();
  ASSERT_EQ(arr.size(), 2u);
  EXPECT_TRUE(r.at_end());
}

TEST(BinaryIo, OutOfBoundsThrows) {
  BinaryWriter w;
  w.write_u8(1);
  BinaryReader r(w.bytes());
  r.read_u8();
  EXPECT_THROW(r.read_u32(), MlxError);
}

TEST(FileIo, RoundTrip) {
  auto path = std::filesystem::temp_directory_path() / "mlx_test_file.bin";
  std::vector<std::uint8_t> payload{1, 2, 3, 250};
  write_file(path, payload);
  EXPECT_EQ(read_file(path), payload);
  std::filesystem::remove(path);
}

TEST(FileIo, MissingFileThrows) {
  EXPECT_THROW(read_file("/nonexistent/mlx/nothing.bin"), MlxError);
}

TEST(StringUtil, SplitJoin) {
  auto parts = split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(join({"x", "y"}, "-"), "x-y");
}

TEST(StringUtil, TrimAndCase) {
  EXPECT_EQ(trim("  hi \t"), "hi");
  EXPECT_EQ(to_lower("AbC"), "abc");
  EXPECT_TRUE(starts_with("hello", "he"));
  EXPECT_TRUE(ends_with("hello", "lo"));
}

TEST(StringUtil, FormatFloat) {
  EXPECT_EQ(format_float(3.14159, 2), "3.14");
}

TEST(StringUtil, RenderTableAligns) {
  std::string t = render_table({"a", "bb"}, {{"xxx", "y"}});
  EXPECT_NE(t.find("| xxx | y  |"), std::string::npos);
}

TEST(LocCounter, CountsMarkedRegions) {
  std::string src = R"(
int main() {
  // [mlx-inst-begin]
  monitor.on_inf_start();
  monitor.on_inf_stop(interp);

  // a comment inside does not count
  // [mlx-inst-end]
  // [mlx-asrt-begin]
  check(a == b);
  // [mlx-asrt-end]
}
)";
  LocCount c = count_marked_loc(src);
  EXPECT_EQ(c.instrumentation, 2);
  EXPECT_EQ(c.assertion, 1);
  EXPECT_EQ(c.total(), 3);
}

TEST(LocCounter, UnbalancedMarkersThrow) {
  EXPECT_THROW(count_marked_loc("// [mlx-inst-begin]\nint x;\n"), MlxError);
}

}  // namespace
}  // namespace mlexray
