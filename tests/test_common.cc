#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <filesystem>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "src/common/error.h"
#include "src/common/file_io.h"
#include "src/common/loc_counter.h"
#include "src/common/rng.h"
#include "src/common/string_util.h"
#include "src/common/thread_pool.h"
#include "src/kernels/kernel.h"

namespace mlexray {
namespace {

TEST(Error, CheckThrowsWithContext) {
  try {
    MLX_CHECK_EQ(1, 2) << "custom context";
    FAIL() << "expected throw";
  } catch (const MlxError& e) {
    EXPECT_NE(std::string(e.what()).find("custom context"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("1 == 2"), std::string::npos);
  }
}

TEST(Error, CheckPassesSilently) {
  EXPECT_NO_THROW(MLX_CHECK(true) << "never evaluated");
  EXPECT_NO_THROW(MLX_CHECK_LT(1, 2));
}

TEST(Rng, Deterministic) {
  Pcg32 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u32(), b.next_u32());
}

TEST(Rng, DifferentSeedsDiffer) {
  Pcg32 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next_u32() == b.next_u32());
  EXPECT_LT(same, 3);
}

TEST(Rng, NextBelowInRange) {
  Pcg32 rng(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.next_below(17), 17u);
}

TEST(Rng, NormalMoments) {
  Pcg32 rng(11);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    float v = rng.normal();
    sum += v;
    sum_sq += static_cast<double>(v) * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.05);
}

TEST(Rng, ShufflePreservesElements) {
  Pcg32 rng(5);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
  auto original = v;
  rng.shuffle(v);
  EXPECT_EQ(std::set<int>(v.begin(), v.end()),
            std::set<int>(original.begin(), original.end()));
}

TEST(ThreadPool, ParallelForCoversRange) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(100);
  pool.parallel_for(0, 100, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for(5, 5, [&](std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, ZeroWorkerPoolRunsInline) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 0u);
  EXPECT_EQ(pool.parallelism(), 1u);
  std::vector<int> hits(50, 0);
  pool.parallel_for(0, 50, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) hits[i]++;
  });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPool, MinChunkRespectsGranularity) {
  ThreadPool pool(3);
  std::mutex mu;
  std::vector<std::pair<std::size_t, std::size_t>> chunks;
  pool.parallel_for(
      0, 100,
      [&](std::size_t lo, std::size_t hi) {
        std::lock_guard<std::mutex> lock(mu);
        chunks.emplace_back(lo, hi);
      },
      /*min_chunk=*/16);
  std::size_t covered = 0;
  for (auto [lo, hi] : chunks) {
    covered += hi - lo;
    // Every chunk except possibly the final remainder honours min_chunk.
    if (hi != 100) EXPECT_GE(hi - lo, 16u);
  }
  EXPECT_EQ(covered, 100u);
}

TEST(ThreadPool, WorkerIndexVariantCoversRangeWithValidIds) {
  ThreadPool pool(2);
  std::vector<std::atomic<int>> hits(64);
  std::atomic<bool> bad_worker{false};
  pool.parallel_for_workers(
      0, 64,
      [&](std::size_t lo, std::size_t hi, std::size_t worker) {
        if (worker >= pool.parallelism()) bad_worker = true;
        for (std::size_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
      },
      /*min_chunk=*/4);
  EXPECT_FALSE(bad_worker.load());
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, BackToBackJobsReuseWorkers) {
  ThreadPool pool(2);
  for (int round = 0; round < 50; ++round) {
    std::atomic<int> count{0};
    pool.parallel_for(0, 40,
                      [&](std::size_t lo, std::size_t hi) {
                        count.fetch_add(static_cast<int>(hi - lo));
                      });
    ASSERT_EQ(count.load(), 40);
  }
}

// The headline num_threads bugfix: a participant cap of k must mean AT MOST
// k distinct threads touch the job, no matter how wide the pool is. Counted
// over many rounds so workers get every chance to (wrongly) join.
TEST(ThreadPool, ParticipantCapIsAHardLimit) {
  ThreadPool pool(7);  // parallelism() == 8, far above the cap under test
  constexpr std::size_t kCap = 2;
  std::atomic<std::size_t> max_index{0};
  std::mutex mu;
  for (int round = 0; round < 200; ++round) {
    pool.parallel_for_workers(
        0, 64,
        [&](std::size_t lo, std::size_t hi, std::size_t worker) {
          std::size_t seen = max_index.load();
          while (worker > seen &&
                 !max_index.compare_exchange_weak(seen, worker)) {
          }
          // Touch the range so the chunk is real work, not a no-op the
          // optimizer could collapse.
          volatile std::size_t sink = 0;
          for (std::size_t i = lo; i < hi; ++i) sink = sink + i;
        },
        /*min_chunk=*/1, /*max_participants=*/kCap);
  }
  EXPECT_LT(max_index.load(), kCap)
      << "worker index escaped the participant cap";
  // Distinct threads inside one job must also respect the cap (indices
  // could lie; thread identity cannot).
  std::set<std::thread::id> single_round;
  pool.parallel_for_workers(
      0, 256,
      [&](std::size_t, std::size_t, std::size_t) {
        std::lock_guard<std::mutex> lock(mu);
        single_round.insert(std::this_thread::get_id());
      },
      /*min_chunk=*/1, /*max_participants=*/kCap);
  EXPECT_LE(single_round.size(), kCap);
}

TEST(ThreadPool, PoolRefAppliesCapAndReportsCappedParallelism) {
  ThreadPool pool(5);
  EXPECT_EQ(PoolRef(&pool).parallelism(), 6u);
  EXPECT_EQ(PoolRef(&pool, 3).parallelism(), 3u);
  EXPECT_EQ(PoolRef(&pool, 100).parallelism(), 6u);  // cap above pool width
  EXPECT_EQ(PoolRef().parallelism(), 1u);

  // A null ref runs inline; a capped ref never hands out an index >= cap.
  int inline_calls = 0;
  PoolRef().parallel_for_workers(0, 10, [&](std::size_t lo, std::size_t hi,
                                            std::size_t worker) {
    ++inline_calls;
    EXPECT_EQ(worker, 0u);
    EXPECT_EQ(lo, 0u);
    EXPECT_EQ(hi, 10u);
  });
  EXPECT_EQ(inline_calls, 1);

  PoolRef capped(&pool, 3);
  std::atomic<bool> over_cap{false};
  std::vector<std::atomic<int>> hits(128);
  for (int round = 0; round < 50; ++round) {
    capped.parallel_for_workers(
        0, 128,
        [&](std::size_t lo, std::size_t hi, std::size_t worker) {
          if (worker >= capped.parallelism()) over_cap = true;
          for (std::size_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
        },
        /*min_chunk=*/1);
  }
  EXPECT_FALSE(over_cap.load());
  for (const auto& h : hits) EXPECT_EQ(h.load(), 50);
}

namespace {
// Rendezvous for the overlap tests: both sides must be inside a pool job at
// the same instant. Generous timeout so a single-CPU host can timeslice its
// way there; with a job-serializing pool the second side can never start
// while the first waits, so the wait times out and the test fails.
struct Rendezvous {
  std::mutex mu;
  std::condition_variable cv;
  int arrived = 0;

  bool arrive_and_wait(int expected) {
    std::unique_lock<std::mutex> lock(mu);
    ++arrived;
    cv.notify_all();
    return cv.wait_for(lock, std::chrono::seconds(20),
                       [&] { return arrived >= expected; });
  }
};
}  // namespace

// Two submitters on ONE pool must have their jobs in flight simultaneously
// (multi-job submission) — the tentpole's no-process-wide-serialization
// property. Under the old single-job-slot pool the second submit blocked
// until the first job fully finished, so this rendezvous would time out.
TEST(ThreadPool, ConcurrentJobsOnOnePoolOverlap) {
  ThreadPool pool(2);
  Rendezvous rv;
  std::atomic<int> overlap_failures{0};
  auto submit = [&] {
    std::atomic<int> covered{0};
    pool.parallel_for(
        0, 8,
        [&](std::size_t lo, std::size_t hi) {
          if (lo == 0 && !rv.arrive_and_wait(2)) overlap_failures.fetch_add(1);
          covered.fetch_add(static_cast<int>(hi - lo));
        },
        /*min_chunk=*/1);
    EXPECT_EQ(covered.load(), 8);
  };
  std::thread a(submit);
  std::thread b(submit);
  a.join();
  b.join();
  EXPECT_EQ(overlap_failures.load(), 0)
      << "two parallel_for jobs on one pool serialized instead of running "
         "side by side";
}

// Per-pool worker identity: a worker of pool A submitting to pool B must
// submit normally (B's workers can help; multiple chunks), not inline the
// whole range the way the old process-wide t_is_pool_worker flag forced.
TEST(ThreadPool, CrossPoolSubmissionDoesNotInline) {
  ThreadPool pool_a(1);
  ThreadPool pool_b(2);
  Rendezvous rv;
  // Both of A's participants (the caller and A's one worker) run an outer
  // chunk; the rendezvous guarantees the pool-A *worker* path is exercised.
  std::atomic<bool> rendezvous_ok{true};
  std::atomic<int> whole_range_calls{0};
  std::atomic<int> chunk_calls[2] = {{0}, {0}};
  pool_a.parallel_for_workers(
      0, 2,
      [&](std::size_t lo, std::size_t, std::size_t outer_worker) {
        if (!rv.arrive_and_wait(2)) rendezvous_ok = false;
        std::vector<std::atomic<int>> hits(64);
        pool_b.parallel_for(
            0, 64,
            [&](std::size_t ilo, std::size_t ihi) {
              if (ilo == 0 && ihi == 64) whole_range_calls.fetch_add(1);
              chunk_calls[lo].fetch_add(1);
              for (std::size_t i = ilo; i < ihi; ++i) hits[i].fetch_add(1);
            },
            /*min_chunk=*/4);
        for (const auto& h : hits) {
          if (h.load() != 1) rendezvous_ok = false;  // lost/duplicated chunks
        }
        (void)outer_worker;
      },
      /*min_chunk=*/1);
  ASSERT_TRUE(rendezvous_ok.load());
  EXPECT_EQ(whole_range_calls.load(), 0)
      << "a cross-pool submission inlined its whole range (global worker "
         "flag instead of per-pool identity)";
  // Chunked submission: every outer participant saw its inner range split.
  EXPECT_GT(chunk_calls[0].load(), 1);
  EXPECT_GT(chunk_calls[1].load(), 1);
}

// ...while a worker submitting to its OWN pool still runs inline (the
// pool-mates may all be busy on the very job that called it).
TEST(ThreadPool, NestedSubmissionToOwnPoolRunsInline) {
  ThreadPool pool(1);
  Rendezvous rv;
  std::atomic<bool> rendezvous_ok{true};
  std::atomic<int> worker_inline_violations{0};
  pool.parallel_for_workers(
      0, 2,
      [&](std::size_t, std::size_t, std::size_t outer_worker) {
        if (!rv.arrive_and_wait(2)) rendezvous_ok = false;
        // Atomics: the caller's nested call is a real submission, so its
        // inner body may run on several threads.
        std::atomic<int> calls{0};
        std::atomic<bool> full_range{false};
        pool.parallel_for(
            0, 64,
            [&](std::size_t ilo, std::size_t ihi) {
              calls.fetch_add(1);
              if (ilo == 0 && ihi == 64) full_range = true;
            },
            /*min_chunk=*/4);
        // outer_worker 1 is the pool-owned thread: its nested call must be
        // one inline pass over the whole range. The caller (worker 0) is
        // not a pool thread, so its nested call submits normally.
        if (outer_worker != 0 && !(calls.load() == 1 && full_range.load())) {
          worker_inline_violations.fetch_add(1);
        }
      },
      /*min_chunk=*/1);
  ASSERT_TRUE(rendezvous_ok.load());
  EXPECT_EQ(worker_inline_violations.load(), 0);
}

// Forced prepare/invoke pool mismatch (satellite bugfix): per-worker scratch
// must be sized from the EXECUTING context's worker_count(), and the worker
// indices that context's pool hands out must stay below it — even when a
// different, wider pool was attached at prepare time (trainer vs serving
// path). Before caps existed, sizing from the prepare-time pool and
// executing on a wider one indexed past the end of the scratch slices.
TEST(KernelContextScratch, WorkerIndicesStayWithinExecutingWorkerCount) {
  ThreadPool prepare_pool(2);  // what the plan build saw: worker_count 3
  ThreadPool serving_pool(7);  // what actually executes, capped to 2

  KernelContext prepare_ctx;
  prepare_ctx.pool = PoolRef(&prepare_pool);
  EXPECT_EQ(prepare_ctx.worker_count(), 3u);

  KernelContext exec_ctx;
  exec_ctx.pool = PoolRef(&serving_pool, /*cap=*/2);
  ASSERT_EQ(exec_ctx.worker_count(), 2u);

  // Size per-worker slices from the executing context (the contract) and
  // prove no index the executing pool hands out can escape them, over many
  // rounds so every pool thread gets a chance to misbehave.
  std::vector<std::atomic<int>> slices(exec_ctx.worker_count());
  std::atomic<bool> out_of_bounds{false};
  for (int round = 0; round < 100; ++round) {
    exec_ctx.pool.parallel_for_workers(
        0, 96,
        [&](std::size_t lo, std::size_t hi, std::size_t worker) {
          if (worker >= slices.size()) {
            out_of_bounds = true;
            return;
          }
          slices[worker].fetch_add(static_cast<int>(hi - lo));
        },
        /*min_chunk=*/1);
  }
  EXPECT_FALSE(out_of_bounds.load())
      << "executing pool handed out a worker index past the scratch sized "
         "from the executing context";
  int covered = 0;
  for (auto& s : slices) covered += s.load();
  EXPECT_EQ(covered, 96 * 100);
}

TEST(BinaryIo, RoundTripAllTypes) {
  BinaryWriter w;
  w.write_u8(7);
  w.write_u32(123456);
  w.write_i32(-42);
  w.write_u64(1ULL << 40);
  w.write_f32(3.25f);
  w.write_f64(-2.5);
  w.write_string("hello");
  w.write_f32_array({1.0f, 2.0f});
  BinaryReader r(w.bytes());
  EXPECT_EQ(r.read_u8(), 7);
  EXPECT_EQ(r.read_u32(), 123456u);
  EXPECT_EQ(r.read_i32(), -42);
  EXPECT_EQ(r.read_u64(), 1ULL << 40);
  EXPECT_FLOAT_EQ(r.read_f32(), 3.25f);
  EXPECT_DOUBLE_EQ(r.read_f64(), -2.5);
  EXPECT_EQ(r.read_string(), "hello");
  auto arr = r.read_f32_array();
  ASSERT_EQ(arr.size(), 2u);
  EXPECT_TRUE(r.at_end());
}

TEST(BinaryIo, OutOfBoundsThrows) {
  BinaryWriter w;
  w.write_u8(1);
  BinaryReader r(w.bytes());
  r.read_u8();
  EXPECT_THROW(r.read_u32(), MlxError);
}

TEST(FileIo, RoundTrip) {
  auto path = std::filesystem::temp_directory_path() / "mlx_test_file.bin";
  std::vector<std::uint8_t> payload{1, 2, 3, 250};
  write_file(path, payload);
  EXPECT_EQ(read_file(path), payload);
  std::filesystem::remove(path);
}

TEST(FileIo, MissingFileThrows) {
  EXPECT_THROW(read_file("/nonexistent/mlx/nothing.bin"), MlxError);
}

TEST(StringUtil, SplitJoin) {
  auto parts = split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(join({"x", "y"}, "-"), "x-y");
}

TEST(StringUtil, TrimAndCase) {
  EXPECT_EQ(trim("  hi \t"), "hi");
  EXPECT_EQ(to_lower("AbC"), "abc");
  EXPECT_TRUE(starts_with("hello", "he"));
  EXPECT_TRUE(ends_with("hello", "lo"));
}

TEST(StringUtil, FormatFloat) {
  EXPECT_EQ(format_float(3.14159, 2), "3.14");
}

TEST(StringUtil, RenderTableAligns) {
  std::string t = render_table({"a", "bb"}, {{"xxx", "y"}});
  EXPECT_NE(t.find("| xxx | y  |"), std::string::npos);
}

TEST(LocCounter, CountsMarkedRegions) {
  std::string src = R"(
int main() {
  // [mlx-inst-begin]
  monitor.on_inf_start();
  monitor.on_inf_stop(interp);

  // a comment inside does not count
  // [mlx-inst-end]
  // [mlx-asrt-begin]
  check(a == b);
  // [mlx-asrt-end]
}
)";
  LocCount c = count_marked_loc(src);
  EXPECT_EQ(c.instrumentation, 2);
  EXPECT_EQ(c.assertion, 1);
  EXPECT_EQ(c.total(), 3);
}

TEST(LocCounter, UnbalancedMarkersThrow) {
  EXPECT_THROW(count_marked_loc("// [mlx-inst-begin]\nint x;\n"), MlxError);
}

}  // namespace
}  // namespace mlexray
