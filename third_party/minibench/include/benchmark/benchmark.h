// minibench: a small, in-tree implementation of the google-benchmark API
// subset this repo's benches use, built by our own CMake so the benchmark
// *library* is compiled with the same Release flags (and NDEBUG) as the
// kernels it measures.
//
// Why it exists: the distro's prebuilt libbenchmark is a debug build — it
// stamps `"library_build_type": "debug"` into every JSON context, and
// bench/run_benches.sh now refuses to record numbers measured through a
// debug-built timing library (the same policy it already applied to our own
// build type). The distro ships no sources to rebuild, so the timing layer
// lives here instead: ~an afternoon of code, no third-party payload, and
// the JSON it emits keeps the google-benchmark shape (context + benchmarks[]
// with name/iterations/real_time/cpu_time/time_unit + counters) so the
// digest tooling and committed BENCH_*.json history stay comparable.
//
// Implemented surface (everything bench_*.cc touches):
//   benchmark::State           range(i), counters["k"] = v,
//                              SetItemsProcessed, iterations(),
//                              `for (auto _ : state)` timing loop
//   BENCHMARK(fn)->Args({...})->Unit(...)   registration chain
//   benchmark::RegisterBenchmark(name, callable)
//   benchmark::Initialize / ReportUnrecognizedArguments /
//   RunSpecifiedBenchmarks / Shutdown / DoNotOptimize / BENCHMARK_MAIN()
//   flags: --benchmark_format=json|console, --benchmark_min_time=<s>,
//          --benchmark_filter=<regex>
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

namespace benchmark {

enum TimeUnit { kNanosecond, kMicrosecond, kMillisecond, kSecond };

class State {
 public:
  State(std::int64_t iterations, std::vector<std::int64_t> args)
      : max_iterations_(iterations), args_(std::move(args)) {}

  std::int64_t range(std::size_t i = 0) const { return args_.at(i); }
  std::int64_t iterations() const { return completed_; }
  void SetItemsProcessed(std::int64_t items) { items_processed_ = items; }

  // Plain-double counters (google-benchmark's non-rate Counter behaviour).
  std::map<std::string, double> counters;

  // `for (auto _ : state)`: the range runs max_iterations_ times with the
  // timer running from first dereference to loop exit.
  class Iterator {
   public:
    explicit Iterator(State* s)
        : state_(s), left_(s != nullptr ? s->max_iterations_ : 0) {}
    bool operator!=(const Iterator&) {
      if (left_ > 0) return true;
      state_->finish_timing();
      return false;
    }
    Iterator& operator++() {
      --left_;
      ++state_->completed_;
      return *this;
    }
    int operator*() const { return 0; }

   private:
    State* state_;
    std::int64_t left_;
  };

  Iterator begin() {
    start_timing();
    return Iterator(this);
  }
  Iterator end() { return Iterator(nullptr); }

  // Read back by the runner after the function returns.
  double real_seconds() const { return real_seconds_; }
  double cpu_seconds() const { return cpu_seconds_; }
  std::int64_t items_processed() const { return items_processed_; }
  std::int64_t max_iterations() const { return max_iterations_; }

 private:
  void start_timing();
  void finish_timing();

  std::int64_t max_iterations_ = 1;
  std::int64_t completed_ = 0;
  std::int64_t items_processed_ = 0;
  std::vector<std::int64_t> args_;
  double real_seconds_ = 0.0;
  double cpu_seconds_ = 0.0;
  double real_start_ = 0.0;
  double cpu_start_ = 0.0;
};

namespace internal {

// One registered family; Args() adds an instance per call (none -> one
// argless instance at run time).
class Benchmark {
 public:
  Benchmark(std::string name, std::function<void(State&)> fn)
      : name_(std::move(name)), fn_(std::move(fn)) {}

  Benchmark* Args(const std::vector<std::int64_t>& args) {
    instances_.push_back(args);
    return this;
  }
  Benchmark* Arg(std::int64_t arg) { return Args({arg}); }
  Benchmark* Unit(TimeUnit unit) {
    unit_ = unit;
    return this;
  }

  const std::string& name() const { return name_; }
  const std::function<void(State&)>& fn() const { return fn_; }
  const std::vector<std::vector<std::int64_t>>& instances() const {
    return instances_;
  }
  TimeUnit unit() const { return unit_; }

 private:
  std::string name_;
  std::function<void(State&)> fn_;
  std::vector<std::vector<std::int64_t>> instances_;
  TimeUnit unit_ = kNanosecond;
};

Benchmark* RegisterBenchmarkInternal(Benchmark* family);

}  // namespace internal

template <typename Callable>
internal::Benchmark* RegisterBenchmark(const char* name, Callable&& fn) {
  return internal::RegisterBenchmarkInternal(new internal::Benchmark(
      name, std::function<void(State&)>(std::forward<Callable>(fn))));
}

void Initialize(int* argc, char** argv);
bool ReportUnrecognizedArguments(int argc, char** argv);
std::size_t RunSpecifiedBenchmarks();
void Shutdown();

template <class Tp>
inline __attribute__((always_inline)) void DoNotOptimize(Tp const& value) {
  asm volatile("" : : "r,m"(value) : "memory");
}
template <class Tp>
inline __attribute__((always_inline)) void DoNotOptimize(Tp& value) {
  asm volatile("" : "+r,m"(value) : : "memory");
}

}  // namespace benchmark

#define MINIBENCH_CONCAT2(a, b) a##b
#define MINIBENCH_CONCAT(a, b) MINIBENCH_CONCAT2(a, b)

#define BENCHMARK(fn)                                             \
  static ::benchmark::internal::Benchmark* MINIBENCH_CONCAT(      \
      minibench_reg_, __LINE__) [[maybe_unused]] =                \
      ::benchmark::RegisterBenchmark(#fn, fn)

#define BENCHMARK_MAIN()                                            \
  int main(int argc, char** argv) {                                 \
    ::benchmark::Initialize(&argc, argv);                           \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) {     \
      return 1;                                                     \
    }                                                               \
    ::benchmark::RunSpecifiedBenchmarks();                          \
    ::benchmark::Shutdown();                                        \
    return 0;                                                       \
  }                                                                 \
  int main(int, char**)
