#include "benchmark/benchmark.h"

#include <time.h>
#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <regex>
#include <sstream>
#include <thread>

namespace benchmark {
namespace {

// The whole point of building this library in-tree: the timing layer's own
// build type is knowable and stamped into the JSON context, where
// bench/run_benches.sh asserts it. NDEBUG rides on the Release flags.
#ifdef NDEBUG
constexpr const char* kLibraryBuildType = "release";
#else
constexpr const char* kLibraryBuildType = "debug";
#endif

double now_realtime_seconds() {
  timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<double>(ts.tv_sec) + 1e-9 * static_cast<double>(ts.tv_nsec);
}

double now_cpu_seconds() {
  timespec ts;
  clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) + 1e-9 * static_cast<double>(ts.tv_nsec);
}

struct Options {
  std::string format = "console";  // "console" | "json"
  double min_time = 0.5;
  std::string filter;  // empty => run everything
  std::string executable;
};

Options& options() {
  static Options opts;
  return opts;
}

std::vector<std::unique_ptr<internal::Benchmark>>& registry() {
  static std::vector<std::unique_ptr<internal::Benchmark>> families;
  return families;
}

const char* unit_suffix(TimeUnit unit) {
  switch (unit) {
    case kNanosecond: return "ns";
    case kMicrosecond: return "us";
    case kMillisecond: return "ms";
    case kSecond: return "s";
  }
  return "ns";
}

double unit_scale(TimeUnit unit) {  // seconds -> unit
  switch (unit) {
    case kNanosecond: return 1e9;
    case kMicrosecond: return 1e6;
    case kMillisecond: return 1e3;
    case kSecond: return 1.0;
  }
  return 1e9;
}

struct RunResult {
  std::string name;
  std::size_t family_index = 0;
  std::size_t instance_index = 0;
  std::int64_t iterations = 0;
  double real_time = 0.0;  // per iteration, in `unit`
  double cpu_time = 0.0;
  TimeUnit unit = kNanosecond;
  double items_per_second = 0.0;
  bool has_items = false;
  std::map<std::string, double> counters;
};

std::string instance_name(const internal::Benchmark& family,
                          const std::vector<std::int64_t>& args) {
  std::string name = family.name();
  for (std::int64_t a : args) name += "/" + std::to_string(a);
  return name;
}

// Adaptive iteration ramp, google-benchmark style: rerun with more
// iterations until the timed region covers min_time.
RunResult run_instance(const internal::Benchmark& family,
                       const std::vector<std::int64_t>& args) {
  constexpr std::int64_t kMaxIterations = 1000000000;
  std::int64_t iters = 1;
  State state(iters, args);
  for (;;) {
    state = State(iters, args);
    family.fn()(state);
    const double elapsed = state.real_seconds();
    if (elapsed >= options().min_time || iters >= kMaxIterations) break;
    double mult = 10.0;
    if (elapsed > 0.0) {
      mult = std::clamp(options().min_time * 1.4 / elapsed, 2.0, 10.0);
    }
    iters = static_cast<std::int64_t>(static_cast<double>(iters) * mult) + 1;
  }
  RunResult r;
  r.name = instance_name(family, args);
  r.iterations = state.max_iterations();
  r.unit = family.unit();
  const double scale = unit_scale(r.unit);
  r.real_time =
      state.real_seconds() * scale / static_cast<double>(r.iterations);
  r.cpu_time = state.cpu_seconds() * scale / static_cast<double>(r.iterations);
  if (state.items_processed() > 0 && state.real_seconds() > 0.0) {
    r.has_items = true;
    r.items_per_second =
        static_cast<double>(state.items_processed()) / state.real_seconds();
  }
  r.counters = state.counters;
  return r;
}

std::string json_escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

// %FT%T%z with the ':' glibc omits, matching google-benchmark's date format.
std::string iso8601_now() {
  char buf[64];
  time_t t = time(nullptr);
  struct tm tm_buf;
  localtime_r(&t, &tm_buf);
  strftime(buf, sizeof(buf), "%FT%T%z", &tm_buf);
  std::string s(buf);
  if (s.size() >= 5) s.insert(s.size() - 2, ":");
  return s;
}

int read_mhz_per_cpu() {
  std::ifstream in("/proc/cpuinfo");
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("cpu MHz", 0) == 0) {
      const std::size_t colon = line.find(':');
      if (colon != std::string::npos) {
        return static_cast<int>(std::lround(std::stod(line.substr(colon + 1))));
      }
    }
  }
  return 0;
}

void print_json(const std::vector<RunResult>& results) {
  char host[256] = {0};
  gethostname(host, sizeof(host) - 1);
  double load[3] = {0, 0, 0};
  getloadavg(load, 3);
  std::printf("{\n");
  std::printf("  \"context\": {\n");
  std::printf("    \"date\": \"%s\",\n", iso8601_now().c_str());
  std::printf("    \"host_name\": \"%s\",\n", json_escape(host).c_str());
  std::printf("    \"executable\": \"%s\",\n",
              json_escape(options().executable).c_str());
  std::printf("    \"num_cpus\": %u,\n", std::thread::hardware_concurrency());
  // Duplicated under the name the serving digests key scaling assertions on,
  // so every recorded JSON says up front how much real parallelism the host
  // offered (google-benchmark's num_cpus is the same value, kept for shape
  // compatibility).
  std::printf("    \"hardware_concurrency\": %u,\n",
              std::thread::hardware_concurrency());
  std::printf("    \"mhz_per_cpu\": %d,\n", read_mhz_per_cpu());
  std::printf("    \"cpu_scaling_enabled\": false,\n");
  std::printf("    \"caches\": [\n    ],\n");
  std::printf("    \"load_avg\": [%g,%g,%g],\n", load[0], load[1], load[2]);
  std::printf("    \"library_build_type\": \"%s\"\n", kLibraryBuildType);
  std::printf("  },\n");
  std::printf("  \"benchmarks\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const RunResult& r = results[i];
    std::printf("    {\n");
    std::printf("      \"name\": \"%s\",\n", json_escape(r.name).c_str());
    std::printf("      \"family_index\": %zu,\n", r.family_index);
    std::printf("      \"per_family_instance_index\": %zu,\n",
                r.instance_index);
    std::printf("      \"run_name\": \"%s\",\n", json_escape(r.name).c_str());
    std::printf("      \"run_type\": \"iteration\",\n");
    std::printf("      \"repetitions\": 1,\n");
    std::printf("      \"repetition_index\": 0,\n");
    std::printf("      \"threads\": 1,\n");
    std::printf("      \"iterations\": %lld,\n",
                static_cast<long long>(r.iterations));
    std::printf("      \"real_time\": %.9g,\n", r.real_time);
    std::printf("      \"cpu_time\": %.9g,\n", r.cpu_time);
    std::printf("      \"time_unit\": \"%s\"", unit_suffix(r.unit));
    if (r.has_items) {
      std::printf(",\n      \"items_per_second\": %.9g", r.items_per_second);
    }
    for (const auto& [key, value] : r.counters) {
      std::printf(",\n      \"%s\": %.9g", json_escape(key).c_str(), value);
    }
    std::printf("\n    }%s\n", i + 1 < results.size() ? "," : "");
  }
  std::printf("  ]\n");
  std::printf("}\n");
}

void print_console(const std::vector<RunResult>& results) {
  std::printf("%-52s %16s %16s %12s\n", "Benchmark", "Time", "CPU",
              "Iterations");
  std::printf("%s\n", std::string(100, '-').c_str());
  for (const RunResult& r : results) {
    const char* unit = unit_suffix(r.unit);
    std::printf("%-52s %13.0f %s %13.0f %s %12lld\n", r.name.c_str(),
                r.real_time, unit, r.cpu_time, unit,
                static_cast<long long>(r.iterations));
  }
}

}  // namespace

void State::start_timing() {
  cpu_start_ = now_cpu_seconds();
  real_start_ = now_realtime_seconds();
}

void State::finish_timing() {
  real_seconds_ = now_realtime_seconds() - real_start_;
  cpu_seconds_ = now_cpu_seconds() - cpu_start_;
}

namespace internal {

Benchmark* RegisterBenchmarkInternal(Benchmark* family) {
  registry().emplace_back(family);
  return family;
}

}  // namespace internal

void Initialize(int* argc, char** argv) {
  options().executable = (*argc > 0) ? argv[0] : "";
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    const std::string arg = argv[i];
    auto value_of = [&](const char* prefix) -> const char* {
      const std::size_t len = std::strlen(prefix);
      return arg.compare(0, len, prefix) == 0 ? arg.c_str() + len : nullptr;
    };
    if (const char* v = value_of("--benchmark_format=")) {
      options().format = v;
    } else if (const char* v = value_of("--benchmark_min_time=")) {
      options().min_time = std::strtod(v, nullptr);  // tolerates "0.2s"
    } else if (const char* v = value_of("--benchmark_filter=")) {
      options().filter = v;
    } else {
      argv[out++] = argv[i];  // leave unrecognized args for the caller
    }
  }
  *argc = out;
}

bool ReportUnrecognizedArguments(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::fprintf(stderr, "error: unrecognized command-line flag: %s\n",
                 argv[i]);
  }
  return argc > 1;
}

std::size_t RunSpecifiedBenchmarks() {
  std::vector<RunResult> results;
  const std::regex filter(options().filter.empty() ? ".*" : options().filter);
  for (std::size_t f = 0; f < registry().size(); ++f) {
    const internal::Benchmark& family = *registry()[f];
    std::vector<std::vector<std::int64_t>> instances = family.instances();
    if (instances.empty()) instances.push_back({});
    std::size_t instance_index = 0;
    for (const auto& args : instances) {
      if (!std::regex_search(instance_name(family, args), filter)) continue;
      RunResult r = run_instance(family, args);
      r.family_index = f;
      r.instance_index = instance_index++;
      results.push_back(std::move(r));
    }
  }
  if (options().format == "json") {
    print_json(results);
  } else {
    print_console(results);
  }
  return results.size();
}

void Shutdown() {}

}  // namespace benchmark
