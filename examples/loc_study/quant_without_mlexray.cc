// LoC study — debugging target: quantization (WITHOUT ML-EXray).
// Hand-rolled per-layer dumping, reloading, and comparison — the weeks-long
// workflow the paper describes in §1.
#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <vector>

#include "src/interpreter/interpreter.h"

using namespace mlexray;

void debug_quantization_manually(const Graph& model, const Interpreter& interp,
                                 const Graph& ref_model,
                                 const Interpreter& ref_interp) {
  // [mlx-inst-begin]
  std::ofstream meta("layers_meta.txt");
  for (const Node& n : model.nodes) {
    if (n.type == OpType::kInput) continue;
    meta << n.id << " " << n.name << " "
         << op_type_name(n.type) << " "
         << n.output_shape.to_string() << "\n";
  }
  for (const Node& n : model.nodes) {
    if (n.type == OpType::kInput) continue;
    Tensor out = interp.node_output(n.id).to_f32();
    std::string path = "layer_" + std::to_string(n.id) + ".bin";
    std::ofstream dump(path, std::ios::binary);
    dump.write(static_cast<const char*>(out.raw_data()),
               static_cast<std::streamsize>(out.byte_size()));
  }
  for (const Node& n : ref_model.nodes) {
    if (n.type == OpType::kInput) continue;
    Tensor out = ref_interp.node_output(n.id).to_f32();
    std::string path = "ref_layer_" + std::to_string(n.id) + ".bin";
    std::ofstream dump(path, std::ios::binary);
    dump.write(static_cast<const char*>(out.raw_data()),
               static_cast<std::streamsize>(out.byte_size()));
  }
  std::ifstream meta_in("layers_meta.txt");
  std::map<int, std::string> names;
  std::map<std::string, int> ref_ids;
  int id;
  std::string name, type, shape;
  while (meta_in >> id >> name >> type >> shape) {
    names[id] = name;
    ref_ids[name] = id;
  }
  std::map<int, std::vector<float>> edge_layers;
  std::map<int, std::vector<float>> ref_layers;
  for (const auto& [lid, lname] : names) {
    std::ifstream in("layer_" + std::to_string(lid) + ".bin",
                     std::ios::binary);
    in.seekg(0, std::ios::end);
    std::size_t bytes = static_cast<std::size_t>(in.tellg());
    in.seekg(0);
    std::vector<float> vals(bytes / sizeof(float));
    in.read(reinterpret_cast<char*>(vals.data()),
            static_cast<std::streamsize>(bytes));
    edge_layers[lid] = std::move(vals);
    std::ifstream rin("ref_layer_" + std::to_string(lid) + ".bin",
                      std::ios::binary);
    rin.seekg(0, std::ios::end);
    bytes = static_cast<std::size_t>(rin.tellg());
    rin.seekg(0);
    std::vector<float> rvals(bytes / sizeof(float));
    rin.read(reinterpret_cast<char*>(rvals.data()),
             static_cast<std::streamsize>(bytes));
    ref_layers[lid] = std::move(rvals);
  }
  // [mlx-inst-end]

  // [mlx-asrt-begin]
  for (const auto& [lid, edge_vals] : edge_layers) {
    const std::vector<float>& ref_vals = ref_layers[lid];
    if (edge_vals.size() != ref_vals.size()) {
      std::printf("layer %d size mismatch\n", lid);
      continue;
    }
    double sum_sq = 0.0;
    float ref_min = 3.4e38f;
    float ref_max = -3.4e38f;
    for (std::size_t i = 0; i < edge_vals.size(); ++i) {
      double d = static_cast<double>(edge_vals[i]) - ref_vals[i];
      sum_sq += d * d;
      ref_min = std::min(ref_min, ref_vals[i]);
      ref_max = std::max(ref_max, ref_vals[i]);
    }
    double rmse = std::sqrt(sum_sq / edge_vals.size());
    double range = static_cast<double>(ref_max) - ref_min;
    double normalized = range > 0 ? rmse / range : 0.0;
    if (normalized > 0.1)
      std::printf("layer %d (%s) drift %.4f\n", lid,
                  names[lid].c_str(), normalized);
  }
  std::vector<float> first;
  std::vector<float> second;
  bool constant = true;
  for (const auto& [lid, vals] : edge_layers) {
    if (first.empty()) {
      first = vals;
    } else if (second.empty()) {
      second = vals;
    }
  }
  for (std::size_t i = 0; i < first.size() && i < second.size(); ++i)
    constant &= std::abs(first[i] - second[i]) < 1e-6f;
  if (constant && !first.empty())
    std::printf("WARNING: output looks constant\n");
  // [mlx-asrt-end]
}
