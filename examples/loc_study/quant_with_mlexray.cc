// LoC study — debugging target: quantization (WITH ML-EXray).
#include "src/core/assertions.h"
#include "src/core/pipelines.h"
#include "src/core/validation.h"

using namespace mlexray;

void debug_quantization(EdgeMLMonitor& monitor, const Interpreter& interp,
                        const Trace& edge, const Trace& reference) {
  // [mlx-inst-begin]
  monitor.on_inf_start();
  // ... interpreter.invoke() in the app loop ...
  monitor.on_inf_stop(interp);
  MonitorOptions per_layer{.per_layer_outputs = true};
  EdgeMLMonitor offline_monitor(per_layer);
  // [mlx-inst-end]

  // [mlx-asrt-begin]
  DeploymentValidator validator;
  validator.add_assertion("quant_drift", make_quantization_drift_assertion(0.1));
  validator.add_assertion("constant_out", make_constant_output_assertion());
  PerLayerReport drift = validator.per_layer_drift(edge, reference);
  if (drift.first_suspect)
    std::printf("suspect layer: %s\n", drift.first_suspect->c_str());
  for (const AssertionResult& r : validator.run_assertions(edge, reference))
    if (r.triggered) std::printf("BUG: %s\n", r.message.c_str());
  // [mlx-asrt-end]
}
