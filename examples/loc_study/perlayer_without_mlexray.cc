// LoC study — debugging target: per-layer latency (WITHOUT ML-EXray).
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <vector>

#include "src/interpreter/interpreter.h"

using namespace mlexray;

void debug_per_layer_latency_manually(const Graph& model, Interpreter& interp,
                                      const Tensor& input) {
  // [mlx-inst-begin]
  std::vector<std::vector<double>> per_layer(model.nodes.size());
  for (int frame = 0; frame < 10; ++frame) {
    interp.set_input(0, input);
    interp.invoke();
    const InvokeStats& stats = interp.last_stats();
    for (std::size_t i = 0; i < stats.per_node_ms.size(); ++i)
      per_layer[i].push_back(stats.per_node_ms[i]);
  }
  std::ofstream log("per_layer_latency.csv");
  for (std::size_t i = 0; i < per_layer.size(); ++i) {
    log << model.nodes[i].name;
    for (double v : per_layer[i]) log << "," << v;
    log << "\n";
  }
  // [mlx-inst-end]

  // [mlx-asrt-begin]
  std::ifstream in("per_layer_latency.csv");
  std::string line;
  std::vector<std::pair<std::string, double>> means;
  while (std::getline(in, line)) {
    std::stringstream ss(line);
    std::string name;
    std::getline(ss, name, ',');
    double sum = 0.0;
    int count = 0;
    std::string cell;
    while (std::getline(ss, cell, ',')) {
      sum += std::stod(cell);
      ++count;
    }
    if (count > 0) means.emplace_back(name, sum / count);
  }
  std::vector<double> sorted;
  for (const auto& [name, mean] : means) sorted.push_back(mean);
  std::sort(sorted.begin(), sorted.end());
  double median = sorted.empty() ? 0.0 : sorted[sorted.size() / 2];
  for (const auto& [name, mean] : means)
    if (median > 0 && mean > 8.0 * median)
      std::printf("straggler: %s %.3f ms\n", name.c_str(), mean);
  // [mlx-asrt-end]
}
