// LoC study — debugging target: latency & memory budget (WITHOUT ML-EXray).
#include <chrono>
#include <cstdio>
#include <fstream>
#include <vector>

#include "src/interpreter/interpreter.h"

using namespace mlexray;

void debug_latency_memory_manually(Interpreter& interp, const Tensor& input) {
  // [mlx-inst-begin]
  using Clock = std::chrono::steady_clock;
  std::vector<double> latencies;
  auto start = Clock::now();
  interp.set_input(0, input);
  interp.invoke();
  auto stop = Clock::now();
  latencies.push_back(
      std::chrono::duration<double, std::milli>(stop - start).count());
  std::ifstream statm("/proc/self/statm");
  long pages = 0;
  statm >> pages;
  std::ofstream log("latency_log.txt", std::ios::app);
  log << latencies.back() << " " << pages * 4096 << "\n";
  // [mlx-inst-end]

  // [mlx-asrt-begin]
  double total = 0.0;
  for (double v : latencies) total += v;
  double mean = total / static_cast<double>(latencies.size());
  if (mean > 30.0)
    std::printf("latency budget exceeded: %.2f ms\n", mean);
  long bytes = pages * 4096;
  if (bytes > 64 * 1000 * 1000)
    std::printf("memory budget exceeded: %ld bytes\n", bytes);
  // [mlx-asrt-end]
}
