// LoC study — debugging target: per-layer latency (WITH ML-EXray).
#include "src/core/monitor.h"
#include "src/core/validation.h"

using namespace mlexray;

void debug_per_layer_latency(const Trace& edge) {
  // [mlx-inst-begin]
  MonitorOptions opts{.per_layer_latency = true};
  EdgeMLMonitor monitor(opts);
  // [mlx-inst-end]

  // [mlx-asrt-begin]
  DeploymentValidator validator;
  LatencyReport report = validator.per_layer_latency(edge);
  for (const LayerLatency& l : report.layers)
    if (l.straggler)
      std::printf("straggler: %s %.3f ms (median %.3f)\n", l.layer.c_str(),
                  l.mean_ms, report.median_ms);
  // [mlx-asrt-end]
}
