// LoC study — debugging target: preprocessing (WITH ML-EXray).
// Instrumentation and assertion regions are delimited with markers counted
// by bench_table1_loc (blank lines and comments excluded).
#include "src/core/assertions.h"
#include "src/core/pipelines.h"
#include "src/models/trained_models.h"

using namespace mlexray;

void debug_preprocessing(const Graph& model, EdgeMLMonitor& monitor,
                         const Tensor& sensor, const Tensor& model_input,
                         const Trace& edge, const Trace& reference) {
  // [mlx-inst-begin]
  monitor.log_tensor(trace_keys::kSensorRaw, sensor);
  // [mlx-inst-end]

  // [mlx-asrt-begin]
  DeploymentValidator validator;
  register_builtin_image_assertions(validator, model.input_spec);
  for (const AssertionResult& r : validator.run_assertions(edge, reference))
    if (r.triggered) std::printf("BUG: %s\n", r.message.c_str());
  // [mlx-asrt-end]
  (void)model_input;
}
