// LoC study — debugging target: latency & memory budget (WITH ML-EXray).
#include "src/core/assertions.h"
#include "src/core/validation.h"
#include "src/core/monitor.h"

using namespace mlexray;

void debug_latency_memory(EdgeMLMonitor& monitor, const Interpreter& interp,
                          const Trace& edge, const Trace& reference) {
  // [mlx-inst-begin]
  monitor.on_inf_start();
  // ... interpreter.invoke() ...
  monitor.on_inf_stop(interp);
  monitor.next_frame();
  // [mlx-inst-end]

  // [mlx-asrt-begin]
  DeploymentValidator validator;
  validator.add_assertion("latency", make_latency_budget_assertion(30.0));
  validator.add_assertion("memory", make_memory_budget_assertion(64e6));
  for (const AssertionResult& r : validator.run_assertions(edge, reference))
    if (r.triggered) std::printf("BUDGET: %s\n", r.message.c_str());
  // [mlx-asrt-end]
}
