// LoC study — debugging target: preprocessing (WITHOUT ML-EXray).
// What an app team writes by hand: dump tensors to files, reload them,
// and compare against a self-built reference, bug by bug.
#include <cstdio>
#include <fstream>
#include <vector>

#include "src/preprocess/image.h"

using namespace mlexray;

void debug_preprocessing_manually(const Tensor& sensor, const Tensor& edge_out,
                                  const Tensor& ref_out, const InputSpec& spec) {
  // [mlx-inst-begin]
  std::ofstream raw_log("raw_dump.bin", std::ios::binary);
  raw_log.write(static_cast<const char*>(sensor.raw_data()),
                static_cast<std::streamsize>(sensor.byte_size()));
  std::ofstream pre_log("preproc_dump.bin", std::ios::binary);
  pre_log.write(static_cast<const char*>(edge_out.raw_data()),
                static_cast<std::streamsize>(edge_out.byte_size()));
  std::ofstream shape_log("preproc_shape.txt");
  shape_log << edge_out.shape().to_string() << "\n";
  std::ofstream ref_log("ref_dump.bin", std::ios::binary);
  ref_log.write(static_cast<const char*>(ref_out.raw_data()),
                static_cast<std::streamsize>(ref_out.byte_size()));
  std::ifstream back("preproc_dump.bin", std::ios::binary);
  std::vector<float> edge_vals(static_cast<std::size_t>(edge_out.num_elements()));
  back.read(reinterpret_cast<char*>(edge_vals.data()),
            static_cast<std::streamsize>(edge_out.byte_size()));
  std::ifstream ref_back("ref_dump.bin", std::ios::binary);
  std::vector<float> ref_vals(static_cast<std::size_t>(ref_out.num_elements()));
  ref_back.read(reinterpret_cast<char*>(ref_vals.data()),
                static_cast<std::streamsize>(ref_out.byte_size()));
  if (edge_vals.size() != ref_vals.size()) {
    std::printf("size mismatch!\n");
    return;
  }
  // [mlx-inst-end]

  // [mlx-asrt-begin]
  bool direct = true;
  for (std::size_t i = 0; i < edge_vals.size(); ++i)
    direct &= std::abs(edge_vals[i] - ref_vals[i]) < 1e-3f;
  bool swapped = true;
  for (std::size_t i = 0; i < edge_vals.size() / 3; ++i) {
    swapped &= std::abs(edge_vals[i * 3] - ref_vals[i * 3 + 2]) < 1e-3f;
    swapped &= std::abs(edge_vals[i * 3 + 2] - ref_vals[i * 3]) < 1e-3f;
  }
  if (!direct && swapped) std::printf("BUG: channels swapped\n");
  (void)spec;
  // [mlx-asrt-end]
}
