// Quickstart: instrument an inference pipeline with ML-EXray in a handful
// of lines, replay the same data through a reference pipeline, and run the
// deployment validation flow (paper Fig. 1/2).
//
//   ./quickstart            # run from the repo root
#include <cstdio>

#include "src/core/assertions.h"
#include "src/core/pipelines.h"
#include "src/core/validation.h"
#include "src/models/trained_models.h"

using namespace mlexray;

int main() {
  // 1. A deployed model (trained checkpoint; cached under mlexray_cache/).
  Model model = trained_image_checkpoint("mobilenet_v1_mini");
  RefOpResolver resolver;

  // 2. The "edge app": this deployment accidentally ships BGR input —
  //    exactly the silent bug the paper's industry partners hit.
  ImagePipelineConfig buggy_preprocess{model.input_spec,
                                       PreprocBug::kWrongChannelOrder};

  // 3. Instrument the app (the <5 LoC of Table 1) and run some frames.
  auto sensors = SynthImageNet::make(2, 321);
  MonitorOptions options;
  Trace edge_log = run_classification_playback(
      model, resolver, sensors, buggy_preprocess, options, "edge-app");

  // 4. Replay the SAME frames through the reference pipeline.
  Trace reference_log = run_reference_classification(model, sensors, options);

  // 5. Validate: accuracy check + built-in root-cause assertions.
  std::vector<int> labels;
  for (const auto& s : sensors) labels.push_back(s.label);
  DeploymentValidator validator;
  register_builtin_image_assertions(validator, model.input_spec);
  AccuracyReport accuracy =
      validator.validate_accuracy(edge_log, reference_log, labels);
  PerLayerReport drift = validator.per_layer_drift(edge_log, reference_log);
  auto assertions = validator.run_assertions(edge_log, reference_log);

  std::printf("%s\n",
              validator.report(accuracy, drift, assertions).c_str());
  return 0;
}
