// Quickstart: the serving API in a handful of lines (Model → Session),
// then the full ML-EXray deployment validation flow (paper Fig. 1/2):
// instrument an inference pipeline, replay the same data through a
// reference pipeline, and validate.
//
//   ./quickstart            # run from the repo root
#include <cstdio>

#include "src/core/assertions.h"
#include "src/core/pipelines.h"
#include "src/core/validation.h"
#include "src/interpreter/model.h"
#include "src/models/trained_models.h"
#include "src/train/train_loop.h"

using namespace mlexray;

int main() {
  // 1. Load the deployment artifact (trained checkpoint; cached under
  //    mlexray_cache/) and prepare it ONCE: a Model is the immutable,
  //    shareable half — graph + execution plan + packed weights.
  Graph graph = trained_image_checkpoint("mobilenet_v1_mini");
  BuiltinOpResolver production;  // optimized kernels pack weights at Prepare
  Model model(&graph, &production);

  // 2. Serve it through a Session — the lightweight per-caller half
  //    (activations + scratch arena + stats). Any number of sessions can
  //    share one Model; see Engine (src/interpreter/engine.h) for the
  //    pooled version.
  auto sensors = SynthImageNet::make(2, 321);
  {
    Session session(&model);
    ImagePipelineConfig correct{graph.input_spec, PreprocBug::kNone};
    session.set_input(0, run_image_pipeline(sensors[0].image_u8, correct));
    session.invoke();
    std::printf("Model prepared once (%.1f KB packed), session predicts %d\n\n",
                static_cast<double>(model.prepared_bytes()) / 1e3,
                argmax(session.output(0)));
  }

  // 3. The "edge app": this deployment accidentally ships BGR input —
  //    exactly the silent bug the paper's industry partners hit.
  ImagePipelineConfig buggy_preprocess{graph.input_spec,
                                       PreprocBug::kWrongChannelOrder};

  // 4. Instrument the app (the <5 LoC of Table 1) and run some frames.
  RefOpResolver resolver;  // debugging path: reference kernels
  MonitorOptions options;
  Trace edge_log = run_classification_playback(
      graph, resolver, sensors, buggy_preprocess, options, "edge-app");

  // 5. Replay the SAME frames through the reference pipeline.
  Trace reference_log = run_reference_classification(graph, sensors, options);

  // 6. Validate: accuracy check + built-in root-cause assertions.
  std::vector<int> labels;
  for (const auto& s : sensors) labels.push_back(s.label);
  DeploymentValidator validator;
  register_builtin_image_assertions(validator, graph.input_spec);
  AccuracyReport accuracy =
      validator.validate_accuracy(edge_log, reference_log, labels);
  PerLayerReport drift = validator.per_layer_drift(edge_log, reference_log);
  auto assertions = validator.run_assertions(edge_log, reference_log);

  std::printf("%s\n",
              validator.report(accuracy, drift, assertions).c_str());
  return 0;
}
