// Image-classification deployment debugging, end to end: inject each of the
// paper's four preprocessing bugs in turn, show the accuracy damage, and let
// the built-in assertions name the culprit (paper §4.3).
#include <cstdio>

#include "src/convert/converter.h"
#include "src/core/assertions.h"
#include "src/core/pipelines.h"
#include "src/models/trained_models.h"

using namespace mlexray;

int main() {
  Graph ckpt = trained_image_checkpoint("mobilenet_v2_mini");
  Graph mobile = convert_for_inference(ckpt);
  BuiltinOpResolver opt;
  auto sensors = SynthImageNet::make(4, 654);
  std::vector<int> labels;
  for (const auto& s : sensors) labels.push_back(s.label);

  MonitorOptions options;
  Trace reference = run_reference_classification(ckpt, sensors, options);

  for (PreprocBug bug : {PreprocBug::kNone, PreprocBug::kWrongResize,
                         PreprocBug::kWrongChannelOrder,
                         PreprocBug::kWrongNormalization,
                         PreprocBug::kRotated90}) {
    Trace edge = run_classification_playback(
        mobile, opt, sensors, {ckpt.input_spec, bug}, options, "edge");
    DeploymentValidator validator;
    register_builtin_image_assertions(validator, ckpt.input_spec);
    AccuracyReport acc = validator.validate_accuracy(edge, reference, labels);
    std::printf("\n--- injected bug: %-13s edge acc %.1f%% (ref %.1f%%)\n",
                preproc_bug_name(bug).c_str(), acc.edge_accuracy * 100,
                acc.reference_accuracy * 100);
    for (const AssertionResult& r : validator.run_assertions(edge, reference)) {
      if (r.triggered) {
        std::printf("  [%s] %s\n", r.name.c_str(), r.message.c_str());
      }
    }
  }
  return 0;
}
