// Speech-commands deployment debugging (paper Fig. 4c): the app computes a
// linear-magnitude spectrogram while the model was trained on log-compressed
// features. A custom user-defined assertion on the logged preprocessing
// output catches it — the paper's §3.2 "insert domain knowledge" flow.
#include <cmath>
#include <cstdio>

#include "src/core/pipelines.h"
#include "src/core/validation.h"
#include "src/models/trained_models.h"
#include "src/tensor/tensor_stats.h"

using namespace mlexray;

int main() {
  Graph model = trained_kws_checkpoint("kws_tiny_conv");
  RefOpResolver resolver;
  auto waves = SynthSpeech::make(2, 246);
  std::vector<int> labels;
  for (const auto& w : waves) labels.push_back(w.label);

  AudioPipelineConfig correct;                       // log-compressed (training)
  AudioPipelineConfig shipped;
  shipped.bug = AudioBug::kWrongScale;               // linear (the app's bug)

  MonitorOptions options;
  Trace edge = run_speech_playback(model, resolver, waves, shipped, options,
                                   "kws-edge");
  Trace reference = run_speech_playback(model, resolver, waves, correct,
                                        options, "kws-reference");

  DeploymentValidator validator;
  // Custom assertion (the paper's user-defined hook): spectrogram dynamic
  // range explodes when the log compression is missing.
  validator.add_assertion(
      "spectrogram_scale",
      [](const Trace& e, const Trace& r) -> AssertionResult {
        AssertionResult result;
        if (e.frames.empty() || r.frames.empty()) return result;
        TensorSummary es = summarize(e.frames[0].tensor(trace_keys::kPreprocessOut));
        TensorSummary rs = summarize(r.frames[0].tensor(trace_keys::kPreprocessOut));
        double ratio = (es.max - es.min) / std::max(1e-9f, rs.max - rs.min);
        if (ratio > 3.0 || ratio < 1.0 / 3.0) {
          result.triggered = true;
          result.message =
              "spectrogram dynamic range off by " + std::to_string(ratio) +
              "x — log/linear scale mismatch";
        }
        return result;
      });

  AccuracyReport acc = validator.validate_accuracy(edge, reference, labels);
  std::printf("edge accuracy %.1f%% vs reference %.1f%% -> %s\n",
              acc.edge_accuracy * 100, acc.reference_accuracy * 100,
              acc.degraded ? "DEGRADED" : "ok");
  for (const AssertionResult& r : validator.run_assertions(edge, reference)) {
    std::printf("assertion [%s]: %s\n", r.name.c_str(),
                r.triggered ? r.message.c_str() : "pass");
  }
  return 0;
}
