// Quantization debugging with per-layer validation (paper §4.4): deploy a
// fully quantized MobileNetV2-mini with the as-shipped optimized resolver,
// watch accuracy collapse, and use per-layer normalized rMSE to pinpoint the
// defective DepthwiseConv2D kernel.
#include <cstdio>

#include "src/convert/converter.h"
#include "src/core/assertions.h"
#include "src/core/pipelines.h"
#include "src/models/trained_models.h"
#include "src/quant/quantizer.h"

using namespace mlexray;

int main() {
  Graph ckpt = trained_image_checkpoint("mobilenet_v2_mini");
  Graph mobile = convert_for_inference(ckpt);
  ImagePipelineConfig correct{ckpt.input_spec, PreprocBug::kNone};

  // Post-training full-integer quantization with a representative set.
  Calibrator calibrator(&mobile);
  for (const auto& s : SynthImageNet::make(8, 777)) {
    calibrator.observe({run_image_pipeline(s.image_u8, correct)});
  }
  Graph quant = quantize_model(mobile, calibrator);

  // The production deployment uses the optimized resolver — as shipped,
  // with the kernel defect the paper uncovered.
  BuiltinOpResolver production(KernelBugConfig::as_shipped());
  RefOpResolver reference_kernels;

  auto sensors = SynthImageNet::make(2, 987);
  MonitorOptions options;
  options.per_layer_outputs = true;  // offline validation mode
  Trace edge = run_classification_playback(quant, production, sensors,
                                           correct, options, "quant-edge");
  Trace baseline = run_classification_playback(
      mobile, reference_kernels, sensors, correct, options, "float-baseline");

  DeploymentValidator validator;
  validator.add_assertion("quantization_drift",
                          make_quantization_drift_assertion());
  PerLayerReport drift = validator.per_layer_drift(edge, baseline);

  std::printf("per-layer normalized rMSE (quant-edge vs float baseline):\n");
  for (const LayerDrift& d : drift.drifts) {
    std::printf("  %-28s %.4f %s\n", d.layer.c_str(), d.error,
                d.suspect ? "<-- SUSPECT" : "");
  }
  for (const AssertionResult& r : validator.run_assertions(edge, baseline)) {
    if (r.triggered) std::printf("\nassertion [%s]: %s\n", r.name.c_str(),
                                 r.message.c_str());
  }
  return 0;
}
