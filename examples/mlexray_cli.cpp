// mlexray_cli — record EXray traces from a simulated edge app and validate
// edge traces against reference traces offline (the paper's workstation-side
// workflow: logs ship from the device, validation runs in the cloud).
//
//   mlexray_cli record <model> <bug> <frames> <out.mlxtrace>
//       model: one of the image zoo (e.g. mobilenet_v2_mini)
//       bug:   none|resize|channel|normalization|rotation
//   mlexray_cli reference <model> <frames> <out.mlxtrace>
//   mlexray_cli validate <edge.mlxtrace> <reference.mlxtrace> <model>
//   mlexray_cli inspect <trace.mlxtrace>
//   mlexray_cli trace-info <trace.mlxtrace>
//
// record streams frames straight to the output file via the monitor's
// background spooler (the on-device path); trace-info is the workstation
// side, reading raw-dtype captures back through Tensor::to_f32.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>

#include "src/core/assertions.h"
#include "src/core/pipelines.h"
#include "src/models/trained_models.h"

namespace mlexray {
namespace {

PreprocBug parse_bug(const std::string& name) {
  if (name == "none") return PreprocBug::kNone;
  if (name == "resize") return PreprocBug::kWrongResize;
  if (name == "channel") return PreprocBug::kWrongChannelOrder;
  if (name == "normalization") return PreprocBug::kWrongNormalization;
  if (name == "rotation") return PreprocBug::kRotated90;
  MLX_FAIL() << "unknown bug '" << name
             << "' (none|resize|channel|normalization|rotation)";
}

std::vector<SensorExample> frames_for(int count) {
  auto sensors = SynthImageNet::make((count + SynthImageNet::kClasses - 1) /
                                         SynthImageNet::kClasses,
                                     /*seed=*/5150);
  sensors.resize(static_cast<std::size_t>(count));
  return sensors;
}

int cmd_record(const std::string& model_name, const std::string& bug,
               int frames, const std::string& out, bool reference) {
  Model model = trained_image_checkpoint(model_name);
  RefOpResolver resolver;
  MonitorOptions opts;
  opts.per_layer_outputs = true;
  auto sensors = frames_for(frames);
  if (reference) {
    Trace trace = run_reference_classification(model, sensors, opts);
    save_trace(trace, out);
    std::printf("wrote %s (%zu frames, %.1f KB)\n", out.c_str(),
                trace.frames.size(),
                static_cast<double>(trace.serialized_bytes()) / 1e3);
    return 0;
  }
  // Edge recording spools frames to disk from a background thread as they
  // are captured — the device never holds the whole trace in memory.
  run_classification_playback(model, resolver, sensors,
                              {model.input_spec, parse_bug(bug)}, opts,
                              model_name + "-edge", /*num_threads=*/1, out);
  std::printf("spooled %s (%d frames, %.1f KB)\n", out.c_str(), frames,
              static_cast<double>(std::filesystem::file_size(out)) / 1e3);
  return 0;
}

int cmd_validate(const std::string& edge_path, const std::string& ref_path,
                 const std::string& model_name) {
  Trace edge = load_trace(edge_path);
  Trace reference = load_trace(ref_path);
  Model model = trained_image_checkpoint(model_name);

  auto sensors = frames_for(static_cast<int>(edge.frames.size()));
  std::vector<int> labels;
  for (const auto& s : sensors) labels.push_back(s.label);

  DeploymentValidator validator;
  register_builtin_image_assertions(validator, model.input_spec);
  AccuracyReport acc = validator.validate_accuracy(edge, reference, labels);
  PerLayerReport drift = validator.per_layer_drift(edge, reference);
  auto assertions = validator.run_assertions(edge, reference);
  std::printf("%s", validator.report(acc, drift, assertions).c_str());
  return 0;
}

int cmd_inspect(const std::string& path) {
  Trace trace = load_trace(path);
  std::printf("pipeline: %s\nframes:   %zu\n", trace.pipeline_name.c_str(),
              trace.frames.size());
  if (trace.frames.empty()) return 0;
  const FrameTrace& f = trace.frames[0];
  std::printf("tensor keys (frame 0):\n");
  for (const auto& [key, tensor] : f.tensors) {
    std::printf("  %-20s %s %s\n", key.c_str(),
                dtype_name(tensor.dtype()).c_str(),
                tensor.shape().to_string().c_str());
  }
  std::printf("scalar keys (frame 0):\n");
  for (const auto& [key, value] : f.scalars) {
    std::printf("  %-28s %.4f\n", key.c_str(), value);
  }
  std::printf("per-layer entries: %zu\n", f.layer_names.size());
  return 0;
}

// Workstation-side trace digest: frame count, keys, per-layer stats (raw
// dtype captures dequantized through the offline to_f32 path), and the
// overhead scalars aggregated across frames.
int cmd_trace_info(const std::string& path) {
  Trace trace = load_trace(path);
  std::printf("pipeline: %s\nframes:   %zu\n", trace.pipeline_name.c_str(),
              trace.frames.size());
  if (trace.frames.empty()) return 0;

  // Aggregate over the union of scalar keys: a key may first appear after
  // frame 0 (e.g. a conditional custom log).
  struct ScalarAgg {
    double sum = 0.0;
    double max_v = -1e300;
    std::size_t count = 0;
  };
  std::map<std::string, ScalarAgg> scalar_aggs;
  for (const FrameTrace& f : trace.frames) {
    for (const auto& [key, value] : f.scalars) {
      ScalarAgg& agg = scalar_aggs[key];
      agg.sum += value;
      agg.max_v = std::max(agg.max_v, value);
      ++agg.count;
    }
  }
  std::printf("\nscalars (aggregated over frames):\n");
  for (const auto& [key, agg] : scalar_aggs) {
    std::printf("  %-28s mean %12.4f  max %12.4f  (%zu frames)\n", key.c_str(),
                agg.sum / static_cast<double>(agg.count), agg.max_v,
                agg.count);
  }

  const FrameTrace& f0 = trace.frames[0];
  std::printf("\ntensor keys (frame 0):\n");
  for (const auto& [key, tensor] : f0.tensors) {
    std::printf("  %-20s %s %s\n", key.c_str(),
                dtype_name(tensor.dtype()).c_str(),
                tensor.shape().to_string().c_str());
  }

  if (!f0.layer_names.empty()) {
    std::printf("\nper-layer (%zu layers, frame 0):\n", f0.layer_names.size());
    std::printf("  %-24s %-6s %-14s %10s %10s %10s\n", "layer", "dtype",
                "shape", "mean", "|max|", "lat ms");
    for (std::size_t i = 0; i < f0.layer_names.size(); ++i) {
      std::string dtype = "-", shape = "-", mean = "-", absmax = "-";
      if (i < f0.layer_outputs.size()) {
        const Tensor& raw = f0.layer_outputs[i];
        dtype = dtype_name(raw.dtype());
        shape = raw.shape().to_string();
        Tensor f32 = raw.to_f32();  // offline dequantization
        const float* p = f32.data<float>();
        double sum = 0.0, amax = 0.0;
        for (std::int64_t k = 0; k < f32.num_elements(); ++k) {
          sum += p[k];
          amax = std::max(amax, std::abs(static_cast<double>(p[k])));
        }
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.4f",
                      sum / static_cast<double>(f32.num_elements()));
        mean = buf;
        std::snprintf(buf, sizeof(buf), "%.4f", amax);
        absmax = buf;
      }
      std::string lat = "-";
      if (i < f0.layer_latency_ms.size()) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.4f", f0.layer_latency_ms[i]);
        lat = buf;
      }
      std::printf("  %-24s %-6s %-14s %10s %10s %10s\n",
                  f0.layer_names[i].c_str(), dtype.c_str(), shape.c_str(),
                  mean.c_str(), absmax.c_str(), lat.c_str());
    }
  }
  return 0;
}

int usage() {
  std::printf(
      "usage:\n"
      "  mlexray_cli record <model> <bug> <frames> <out.mlxtrace>\n"
      "  mlexray_cli reference <model> <frames> <out.mlxtrace>\n"
      "  mlexray_cli validate <edge.mlxtrace> <ref.mlxtrace> <model>\n"
      "  mlexray_cli inspect <trace.mlxtrace>\n"
      "  mlexray_cli trace-info <trace.mlxtrace>\n");
  return 1;
}

int dispatch(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  if (cmd == "record" && argc == 6) {
    return cmd_record(argv[2], argv[3], std::atoi(argv[4]), argv[5], false);
  }
  if (cmd == "reference" && argc == 5) {
    return cmd_record(argv[2], "none", std::atoi(argv[3]), argv[4], true);
  }
  if (cmd == "validate" && argc == 5) {
    return cmd_validate(argv[2], argv[3], argv[4]);
  }
  if (cmd == "inspect" && argc == 3) {
    return cmd_inspect(argv[2]);
  }
  if (cmd == "trace-info" && argc == 3) {
    return cmd_trace_info(argv[2]);
  }
  return usage();
}

}  // namespace
}  // namespace mlexray

int main(int argc, char** argv) {
  try {
    return mlexray::dispatch(argc, argv);
  } catch (const mlexray::MlxError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}
