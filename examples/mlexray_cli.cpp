// mlexray_cli — record EXray traces from a simulated edge app and validate
// edge traces against reference traces offline (the paper's workstation-side
// workflow: logs ship from the device, validation runs in the cloud).
//
//   mlexray_cli record <model> <bug> <frames> <out.mlxtrace>
//       model: one of the image zoo (e.g. mobilenet_v2_mini)
//       bug:   none|resize|channel|normalization|rotation
//   mlexray_cli reference <model> <frames> <out.mlxtrace>
//   mlexray_cli validate <edge.mlxtrace> <reference.mlxtrace> <model>
//   mlexray_cli inspect <trace.mlxtrace>
#include <cstdio>
#include <cstring>

#include "src/core/assertions.h"
#include "src/core/pipelines.h"
#include "src/models/trained_models.h"

namespace mlexray {
namespace {

PreprocBug parse_bug(const std::string& name) {
  if (name == "none") return PreprocBug::kNone;
  if (name == "resize") return PreprocBug::kWrongResize;
  if (name == "channel") return PreprocBug::kWrongChannelOrder;
  if (name == "normalization") return PreprocBug::kWrongNormalization;
  if (name == "rotation") return PreprocBug::kRotated90;
  MLX_FAIL() << "unknown bug '" << name
             << "' (none|resize|channel|normalization|rotation)";
}

std::vector<SensorExample> frames_for(int count) {
  auto sensors = SynthImageNet::make((count + SynthImageNet::kClasses - 1) /
                                         SynthImageNet::kClasses,
                                     /*seed=*/5150);
  sensors.resize(static_cast<std::size_t>(count));
  return sensors;
}

int cmd_record(const std::string& model_name, const std::string& bug,
               int frames, const std::string& out, bool reference) {
  Model model = trained_image_checkpoint(model_name);
  RefOpResolver resolver;
  MonitorOptions opts;
  opts.per_layer_outputs = true;
  auto sensors = frames_for(frames);
  Trace trace =
      reference
          ? run_reference_classification(model, sensors, opts)
          : run_classification_playback(
                model, resolver, sensors,
                {model.input_spec, parse_bug(bug)}, opts, model_name + "-edge");
  save_trace(trace, out);
  std::printf("wrote %s (%zu frames, %.1f KB)\n", out.c_str(),
              trace.frames.size(),
              static_cast<double>(trace.serialized_bytes()) / 1e3);
  return 0;
}

int cmd_validate(const std::string& edge_path, const std::string& ref_path,
                 const std::string& model_name) {
  Trace edge = load_trace(edge_path);
  Trace reference = load_trace(ref_path);
  Model model = trained_image_checkpoint(model_name);

  auto sensors = frames_for(static_cast<int>(edge.frames.size()));
  std::vector<int> labels;
  for (const auto& s : sensors) labels.push_back(s.label);

  DeploymentValidator validator;
  register_builtin_image_assertions(validator, model.input_spec);
  AccuracyReport acc = validator.validate_accuracy(edge, reference, labels);
  PerLayerReport drift = validator.per_layer_drift(edge, reference);
  auto assertions = validator.run_assertions(edge, reference);
  std::printf("%s", validator.report(acc, drift, assertions).c_str());
  return 0;
}

int cmd_inspect(const std::string& path) {
  Trace trace = load_trace(path);
  std::printf("pipeline: %s\nframes:   %zu\n", trace.pipeline_name.c_str(),
              trace.frames.size());
  if (trace.frames.empty()) return 0;
  const FrameTrace& f = trace.frames[0];
  std::printf("tensor keys (frame 0):\n");
  for (const auto& [key, tensor] : f.tensors) {
    std::printf("  %-20s %s %s\n", key.c_str(),
                dtype_name(tensor.dtype()).c_str(),
                tensor.shape().to_string().c_str());
  }
  std::printf("scalar keys (frame 0):\n");
  for (const auto& [key, value] : f.scalars) {
    std::printf("  %-28s %.4f\n", key.c_str(), value);
  }
  std::printf("per-layer entries: %zu\n", f.layer_names.size());
  return 0;
}

int usage() {
  std::printf(
      "usage:\n"
      "  mlexray_cli record <model> <bug> <frames> <out.mlxtrace>\n"
      "  mlexray_cli reference <model> <frames> <out.mlxtrace>\n"
      "  mlexray_cli validate <edge.mlxtrace> <ref.mlxtrace> <model>\n"
      "  mlexray_cli inspect <trace.mlxtrace>\n");
  return 1;
}

int dispatch(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  if (cmd == "record" && argc == 6) {
    return cmd_record(argv[2], argv[3], std::atoi(argv[4]), argv[5], false);
  }
  if (cmd == "reference" && argc == 5) {
    return cmd_record(argv[2], "none", std::atoi(argv[3]), argv[4], true);
  }
  if (cmd == "validate" && argc == 5) {
    return cmd_validate(argv[2], argv[3], argv[4]);
  }
  if (cmd == "inspect" && argc == 3) {
    return cmd_inspect(argv[2]);
  }
  return usage();
}

}  // namespace
}  // namespace mlexray

int main(int argc, char** argv) {
  try {
    return mlexray::dispatch(argc, argv);
  } catch (const mlexray::MlxError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}
