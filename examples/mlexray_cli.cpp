// mlexray_cli — record EXray traces from a simulated edge app and validate
// edge traces against reference traces offline (the paper's workstation-side
// workflow: logs ship from the device, validation runs in the cloud).
//
//   mlexray_cli record <model> <bug> <frames> <out.mlxtrace> [--digest-only]
//       model: one of the image zoo (e.g. mobilenet_v2_mini)
//       bug:   none|resize|channel|normalization|rotation
//       --digest-only: capture per-layer streaming digests instead of raw
//                      tensors (the always-on fleet monitoring mode)
//   mlexray_cli reference <model> <frames> <out.mlxtrace>
//   mlexray_cli validate <edge.mlxtrace> <reference.mlxtrace> <model>
//   mlexray_cli inspect <trace.mlxtrace>
//   mlexray_cli trace-info <trace.mlxtrace> [--digest-only]
//   mlexray_cli fleet-report <ref.mlxtrace> <device.mlxtrace...>
//                            [--threshold <drift>]
//   mlexray_cli serve <model> <threads> <frames-per-thread>
//
// record streams frames straight to the output file via the monitor's
// background spooler (the on-device path); trace-info is the workstation
// side, reading raw-dtype captures back through Tensor::to_f32; serve
// demonstrates the full serving stack — requests from several client
// threads enter through the FrontDoor (bounded admission, dynamic batching,
// circuit breaker) and are dispatched onto pooled Engine sessions sharing
// one prepared Model.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <thread>

#include "src/core/assertions.h"
#include "src/core/pipelines.h"
#include "src/drift/aggregator.h"
#include "src/interpreter/engine.h"
#include "src/interpreter/front_door.h"
#include "src/models/trained_models.h"

namespace mlexray {
namespace {

PreprocBug parse_bug(const std::string& name) {
  if (name == "none") return PreprocBug::kNone;
  if (name == "resize") return PreprocBug::kWrongResize;
  if (name == "channel") return PreprocBug::kWrongChannelOrder;
  if (name == "normalization") return PreprocBug::kWrongNormalization;
  if (name == "rotation") return PreprocBug::kRotated90;
  MLX_FAIL() << "unknown bug '" << name
             << "' (none|resize|channel|normalization|rotation)";
}

std::vector<SensorExample> frames_for(int count) {
  auto sensors = SynthImageNet::make((count + SynthImageNet::kClasses - 1) /
                                         SynthImageNet::kClasses,
                                     /*seed=*/5150);
  sensors.resize(static_cast<std::size_t>(count));
  return sensors;
}

int cmd_record(const std::string& model_name, const std::string& bug,
               int frames, const std::string& out, bool reference,
               bool digest_only = false) {
  Graph model = trained_image_checkpoint(model_name);
  RefOpResolver resolver;
  MonitorOptions opts;
  // Digest-only is the always-on fleet mode: fixed-size per-layer sketches
  // in place of raw activations, a fraction of the trace size.
  opts.per_layer_outputs = !digest_only;
  opts.per_layer_digests = digest_only;
  auto sensors = frames_for(frames);
  if (reference) {
    Trace trace = run_reference_classification(model, sensors, opts);
    save_trace(trace, out);
    std::printf("wrote %s (%zu frames, %.1f KB)\n", out.c_str(),
                trace.frames.size(),
                static_cast<double>(trace.serialized_bytes()) / 1e3);
    return 0;
  }
  // Edge recording spools frames to disk from a background thread as they
  // are captured — the device never holds the whole trace in memory.
  run_classification_playback(model, resolver, sensors,
                              {model.input_spec, parse_bug(bug)}, opts,
                              model_name + "-edge", /*num_threads=*/1, out);
  std::printf("spooled %s (%d frames, %.1f KB)\n", out.c_str(), frames,
              static_cast<double>(std::filesystem::file_size(out)) / 1e3);
  return 0;
}

int cmd_validate(const std::string& edge_path, const std::string& ref_path,
                 const std::string& model_name) {
  Trace edge = load_trace(edge_path);
  Trace reference = load_trace(ref_path);
  Graph model = trained_image_checkpoint(model_name);

  auto sensors = frames_for(static_cast<int>(edge.frames.size()));
  std::vector<int> labels;
  for (const auto& s : sensors) labels.push_back(s.label);

  DeploymentValidator validator;
  register_builtin_image_assertions(validator, model.input_spec);
  AccuracyReport acc = validator.validate_accuracy(edge, reference, labels);
  PerLayerReport drift = validator.per_layer_drift(edge, reference);
  auto assertions = validator.run_assertions(edge, reference);
  std::printf("%s", validator.report(acc, drift, assertions).c_str());
  return 0;
}

int cmd_inspect(const std::string& path) {
  Trace trace = load_trace(path);
  std::printf("pipeline: %s\nframes:   %zu\n", trace.pipeline_name.c_str(),
              trace.frames.size());
  if (trace.frames.empty()) return 0;
  const FrameTrace& f = trace.frames[0];
  std::printf("tensor keys (frame 0):\n");
  for (const auto& [key, tensor] : f.tensors) {
    std::printf("  %-20s %s %s\n", key.c_str(),
                dtype_name(tensor.dtype()).c_str(),
                tensor.shape().to_string().c_str());
  }
  std::printf("scalar keys (frame 0):\n");
  for (const auto& [key, value] : f.scalars) {
    std::printf("  %-28s %.4f\n", key.c_str(), value);
  }
  std::printf("per-layer entries: %zu\n", f.layer_names.size());
  return 0;
}

struct TensorDigest {
  double mean = 0.0;
  double absmax = 0.0;
};

// Offline dequantization: raw-dtype captures go through to_f32 here, never
// on the device.
TensorDigest digest_tensor(const Tensor& raw) {
  Tensor f32 = raw.to_f32();
  const float* p = f32.data<float>();
  TensorDigest d;
  double sum = 0.0;
  for (std::int64_t k = 0; k < f32.num_elements(); ++k) {
    sum += p[k];
    d.absmax = std::max(d.absmax, std::abs(static_cast<double>(p[k])));
  }
  d.mean = sum / static_cast<double>(std::max<std::int64_t>(
                     f32.num_elements(), 1));
  return d;
}

// Workstation-side trace digest: frame count, keys, per-model-output and
// per-layer stats (raw dtype captures dequantized through the offline
// to_f32 path), and the overhead scalars aggregated across frames.
int cmd_trace_info(const std::string& path, bool digest_only = false) {
  // Tolerant load: a device killed mid-recording leaves a crash-safe prefix
  // plus at most one torn tail frame — digest what is readable instead of
  // refusing the whole file.
  std::size_t truncated = 0;
  Trace trace = load_trace_tolerant(path, &truncated);
  std::printf("pipeline: %s\nframes:   %zu\n", trace.pipeline_name.c_str(),
              trace.frames.size());
  if (truncated != 0) {
    std::printf("warning:  truncated trace — %zu frame(s) promised by the "
                "header were torn or missing (killed writer?)\n",
                truncated);
  }
  if (trace.frames.empty()) return 0;

  // Aggregate over the union of scalar keys: a key may first appear after
  // frame 0 (e.g. a conditional custom log).
  struct ScalarAgg {
    double sum = 0.0;
    double max_v = -1e300;
    std::size_t count = 0;
  };
  std::map<std::string, ScalarAgg> scalar_aggs;
  for (const FrameTrace& f : trace.frames) {
    for (const auto& [key, value] : f.scalars) {
      ScalarAgg& agg = scalar_aggs[key];
      agg.sum += value;
      agg.max_v = std::max(agg.max_v, value);
      ++agg.count;
    }
  }
  std::printf("\nscalars (aggregated over frames):\n");
  for (const auto& [key, agg] : scalar_aggs) {
    std::printf("  %-28s mean %12.4f  max %12.4f  (%zu frames)\n", key.c_str(),
                agg.sum / static_cast<double>(agg.count), agg.max_v,
                agg.count);
  }

  const FrameTrace& f0 = trace.frames[0];
  if (!digest_only) {
    std::printf("\ntensor keys (frame 0):\n");
    for (const auto& [key, tensor] : f0.tensors) {
      std::printf("  %-20s %s %s\n", key.c_str(),
                  dtype_name(tensor.dtype()).c_str(),
                  tensor.shape().to_string().c_str());
    }

    // Multi-output capture: one digest per model output head (SSD traces
    // carry box + class heads under model.output / model.output:1 / ...).
    std::printf("\nmodel outputs (frame 0, digests):\n");
    for (int i = 0;; ++i) {
      const std::string key = trace_keys::model_output_key(i);
      auto it = f0.tensors.find(key);
      if (it == f0.tensors.end()) break;
      const Tensor& raw = it->second;
      TensorDigest d = digest_tensor(raw);
      std::printf("  %-20s %-6s %-14s mean %10.4f  |max| %10.4f\n",
                  key.c_str(), dtype_name(raw.dtype()).c_str(),
                  raw.shape().to_string().c_str(), d.mean, d.absmax);
    }
  }

  // Streaming digest frames (trace format v2, fleet monitoring mode): the
  // per-layer summaries merged across every frame of the trace — what the
  // DriftAggregator would see from this device.
  if (!f0.layer_digests.empty()) {
    std::map<std::string, LayerDigest> merged;
    std::vector<std::string> order = f0.layer_names;
    std::size_t digest_frames = 0;
    for (const FrameTrace& f : trace.frames) {
      if (f.layer_digests.empty()) continue;
      ++digest_frames;
      for (std::size_t i = 0;
           i < f.layer_digests.size() && i < f.layer_names.size(); ++i) {
        auto [it, inserted] = merged.try_emplace(f.layer_names[i]);
        if (inserted) {
          it->second = f.layer_digests[i];
        } else {
          it->second.merge(f.layer_digests[i]);
        }
      }
    }
    std::printf("\nper-layer digests (%zu layers, merged over %zu frames):\n",
                order.size(), digest_frames);
    std::printf("  %-24s %-6s %10s %10s %10s %10s %10s %10s\n", "layer",
                "dtype", "count", "mean", "stddev", "min", "p50", "max");
    for (const std::string& name : order) {
      auto it = merged.find(name);
      if (it == merged.end()) continue;
      const LayerDigest& d = it->second;
      std::printf(
          "  %-24s %-6s %10llu %10.4f %10.4f %10.4f %10.4f %10.4f\n",
          name.c_str(), dtype_name(d.dtype).c_str(),
          static_cast<unsigned long long>(d.count), d.mean(), d.stddev(),
          d.real_min(), d.quantile(0.5), d.real_max());
    }
  } else if (digest_only) {
    std::printf("\nno digest frames in this trace (record with "
                "--digest-only to capture them)\n");
  }

  if (!digest_only && !f0.layer_names.empty()) {
    std::printf("\nper-layer (%zu layers, frame 0):\n", f0.layer_names.size());
    std::printf("  %-24s %-6s %-14s %10s %10s %10s\n", "layer", "dtype",
                "shape", "mean", "|max|", "lat ms");
    for (std::size_t i = 0; i < f0.layer_names.size(); ++i) {
      std::string dtype = "-", shape = "-", mean = "-", absmax = "-";
      if (i < f0.layer_outputs.size()) {
        const Tensor& raw = f0.layer_outputs[i];
        dtype = dtype_name(raw.dtype());
        shape = raw.shape().to_string();
        TensorDigest d = digest_tensor(raw);
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.4f", d.mean);
        mean = buf;
        std::snprintf(buf, sizeof(buf), "%.4f", d.absmax);
        absmax = buf;
      }
      std::string lat = "-";
      if (i < f0.layer_latency_ms.size()) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.4f", f0.layer_latency_ms[i]);
        lat = buf;
      }
      std::printf("  %-24s %-6s %-14s %10s %10s %10s\n",
                  f0.layer_names[i].c_str(), dtype.c_str(), shape.c_str(),
                  mean.c_str(), absmax.c_str(), lat.c_str());
    }
  }
  return 0;
}

// Fleet aggregation: merge digest streams from many device traces against a
// reference trace (digest or raw per-layer capture) and print the fleet
// drift report — per-layer drift distributions, outlier-device ranking, and
// the modal first-suspect localization.
int cmd_fleet_report(const std::vector<std::string>& args) {
  double threshold = 0.1;
  std::vector<std::string> paths;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--threshold") {
      if (i + 1 >= args.size()) {
        std::fprintf(stderr, "fleet-report: --threshold needs a value\n");
        return 1;
      }
      threshold = std::atof(args[++i].c_str());
    } else {
      paths.push_back(args[i]);
    }
  }
  if (paths.size() < 2) {
    std::fprintf(stderr,
                 "fleet-report: need a reference trace and at least one "
                 "device trace\n");
    return 1;
  }
  DriftAggregator agg(threshold);
  agg.set_reference(load_trace_tolerant(paths[0]));
  for (std::size_t i = 1; i < paths.size(); ++i) {
    // Device id = the file's stem; tolerant load so a fleet report still
    // covers devices that died mid-recording.
    agg.add_trace(std::filesystem::path(paths[i]).stem().string(),
                  load_trace_tolerant(paths[i]));
  }
  std::printf("%s", render_fleet_report(agg.report()).c_str());
  return 0;
}

// Concurrent serving demo: load the graph into an Engine once, then drive
// requests from `threads` client threads through the FrontDoor — the
// overload-safe request path a deployment daemon uses. Every request is a
// typed outcome (ok / shed / rejected / error), never a crash; the summary
// prints the admission-queue and circuit-breaker counters alongside the
// prepare-once/serve-many numbers.
int cmd_serve(const std::string& model_name, int threads, int frames) {
  using Clock = std::chrono::steady_clock;
  if (threads <= 0 || frames <= 0) {
    std::fprintf(stderr,
                 "serve: <threads> and <frames-per-thread> must be positive, "
                 "got %d and %d\n",
                 threads, frames);
    return 1;
  }
  // A daemon must report a bad model name, not crash: resolve the
  // checkpoint up front and translate the failure into a usage message.
  Graph graph;
  try {
    graph = trained_image_checkpoint(model_name);
  } catch (const MlxError& e) {
    std::fprintf(stderr, "serve: cannot load model '%s': %s\n",
                 model_name.c_str(), e.what());
    return 1;
  }
  // Production path: the optimized resolver's prepare hooks pack weights at
  // load, so prepared bytes below show what the sessions share.
  BuiltinOpResolver resolver;
  Engine engine(&resolver);

  const auto load_start = Clock::now();
  const Model& model = engine.load(model_name, std::move(graph));
  const double load_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - load_start)
          .count();

  // One preprocessed input reused by every worker (serving benchmark shape).
  auto sensors = frames_for(1);
  ImagePipelineConfig correct{model.graph().input_spec, PreprocBug::kNone};
  Tensor input = run_image_pipeline(sensors[0].image_u8, correct);

  // The front door owns admission: `threads` scheduler workers so the demo
  // keeps the same session-level parallelism the old raw-Engine loop had.
  // Trained checkpoints are batch-1 graphs, so the single registered
  // variant serves every request individually; the queue, shedding, and
  // breaker machinery in front of it is the point of the demo.
  FrontDoorOptions door_opts;
  door_opts.workers = threads;
  FrontDoor door(&engine, door_opts);
  door.register_model(model_name, {});

  std::atomic<std::int64_t> ok_requests{0};
  std::atomic<std::int64_t> dropped_requests{0};
  const auto serve_start = Clock::now();
  std::vector<std::thread> clients;
  clients.reserve(static_cast<std::size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    clients.emplace_back([&] {
      // Closed-loop client: submit -> wait -> release per frame. Every
      // outcome is a typed code (queue-full, shed, breaker-open, contained
      // error) counted here, never an unwinding daemon.
      for (int f = 0; f < frames; ++f) {
        Ticket ticket = door.submit(model_name, input);
        const RequestResult& result = ticket.wait();
        if (result.code == RequestCode::kOk) {
          ok_requests.fetch_add(1, std::memory_order_relaxed);
        } else {
          dropped_requests.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& w : clients) w.join();
  const double serve_s =
      std::chrono::duration<double>(Clock::now() - serve_start).count();

  const EnginePoolStats stats = engine.pool_stats(model_name);
  const FrontDoorStats door_stats = door.stats(model_name);
  std::printf("model:            %s (prepared once in %.1f ms)\n",
              model_name.c_str(), load_ms);
  std::printf("prepared bytes:   %.1f KB (shared across all sessions)\n",
              static_cast<double>(stats.prepared_bytes) / 1e3);
  std::printf("sessions created: %zu for %llu leases (%d client threads)\n",
              stats.sessions_created,
              static_cast<unsigned long long>(stats.leases_issued), threads);
  std::printf("throughput:       %.1f requests/s (%lld ok in %.2f s)\n",
              static_cast<double>(ok_requests.load()) / serve_s,
              static_cast<long long>(ok_requests.load()), serve_s);
  std::printf("front door:       %llu submitted, %llu admitted, %llu batches "
              "(max queue depth %zu)\n",
              static_cast<unsigned long long>(door_stats.submitted),
              static_cast<unsigned long long>(door_stats.admitted),
              static_cast<unsigned long long>(door_stats.batches),
              door_stats.max_queue_depth);
  std::printf("breaker:          %s (%llu trips, service estimate %.0f us)\n",
              breaker_state_name(door_stats.breaker_state),
              static_cast<unsigned long long>(door_stats.breaker_trips),
              door_stats.service_estimate_us);
  if (dropped_requests.load() != 0) {
    std::printf("dropped:          %lld (%llu errors, %llu shed, %llu "
                "queue-full, %llu breaker-open; %llu invoke errors, %zu "
                "sessions destroyed)\n",
                static_cast<long long>(dropped_requests.load()),
                static_cast<unsigned long long>(door_stats.failed),
                static_cast<unsigned long long>(door_stats.shed),
                static_cast<unsigned long long>(
                    door_stats.rejected_queue_full),
                static_cast<unsigned long long>(
                    door_stats.rejected_breaker_open),
                static_cast<unsigned long long>(stats.invoke_errors),
                stats.sessions_destroyed);
  }
  return 0;
}

int usage() {
  std::printf(
      "usage:\n"
      "  mlexray_cli record <model> <bug> <frames> <out.mlxtrace> "
      "[--digest-only]\n"
      "  mlexray_cli reference <model> <frames> <out.mlxtrace>\n"
      "  mlexray_cli validate <edge.mlxtrace> <ref.mlxtrace> <model>\n"
      "  mlexray_cli inspect <trace.mlxtrace>\n"
      "  mlexray_cli trace-info <trace.mlxtrace> [--digest-only]\n"
      "  mlexray_cli fleet-report <ref.mlxtrace> <device.mlxtrace...> "
      "[--threshold <drift>]\n"
      "  mlexray_cli serve <model> <threads> <frames-per-thread>\n");
  return 1;
}

int dispatch(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  const bool digest_only =
      argc >= 3 && std::string(argv[argc - 1]) == "--digest-only";
  if (cmd == "record" && (argc == 6 || (argc == 7 && digest_only))) {
    return cmd_record(argv[2], argv[3], std::atoi(argv[4]), argv[5], false,
                      digest_only);
  }
  if (cmd == "reference" && argc == 5) {
    return cmd_record(argv[2], "none", std::atoi(argv[3]), argv[4], true);
  }
  if (cmd == "validate" && argc == 5) {
    return cmd_validate(argv[2], argv[3], argv[4]);
  }
  if (cmd == "inspect" && argc == 3) {
    return cmd_inspect(argv[2]);
  }
  if (cmd == "trace-info" && (argc == 3 || (argc == 4 && digest_only))) {
    return cmd_trace_info(argv[2], digest_only);
  }
  if (cmd == "fleet-report" && argc >= 4) {
    return cmd_fleet_report(std::vector<std::string>(argv + 2, argv + argc));
  }
  if (cmd == "serve" && argc == 5) {
    return cmd_serve(argv[2], std::atoi(argv[3]), std::atoi(argv[4]));
  }
  return usage();
}

}  // namespace
}  // namespace mlexray

int main(int argc, char** argv) {
  try {
    return mlexray::dispatch(argc, argv);
  } catch (const mlexray::MlxError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}
