// Detection deployment validation (paper Fig. 4b): evaluate an SSD-mini
// detector's mAP under a correct pipeline and a channel-swapped one, using
// the same sensor playback mechanism as the classification apps.
#include <cstdio>

#include "src/convert/converter.h"
#include "src/models/trained_models.h"

using namespace mlexray;

int main() {
  SsdModel ssd = trained_ssd("mobilenet");
  Graph deployed = convert_for_inference(ssd.model);
  BuiltinOpResolver opt;
  auto scenes = SynthCoco::make(32, 135);

  for (PreprocBug bug : {PreprocBug::kNone, PreprocBug::kWrongChannelOrder,
                         PreprocBug::kWrongNormalization}) {
    double map = evaluate_ssd_map(ssd, deployed, opt, scenes,
                                  {ssd.model.input_spec, bug});
    std::printf("pipeline %-14s mAP@0.5 = %.1f%%\n",
                preproc_bug_name(bug).c_str(), map * 100);
  }
  return 0;
}
