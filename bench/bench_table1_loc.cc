// Table 1: lines of instrumentation/assertion code per debugging target,
// with vs without ML-EXray. Counts the marker-delimited regions in the
// paired sources under examples/loc_study/ (see src/common/loc_counter.h)
// and prints them next to the paper's reported numbers.
#include <filesystem>

#include "bench/bench_util.h"
#include "src/common/error.h"
#include "src/common/loc_counter.h"

namespace mlexray {
namespace {

std::filesystem::path study_dir() {
  // Works from the repo root and from build/bench/.
  for (const char* candidate :
       {"examples/loc_study", "../examples/loc_study",
        "../../examples/loc_study"}) {
    if (std::filesystem::exists(candidate)) return candidate;
  }
  MLX_FAIL() << "examples/loc_study not found (run from the repo root)";
}

int run() {
  bench::print_header("Table 1 — LoC with vs without ML-EXray",
                      "ML-EXray Table 1");
  struct Target {
    const char* label;
    const char* stem;
    int paper_with_total;
    int paper_without_total;
  };
  const Target targets[] = {
      {"Preprocessing", "preproc", 4, 25},
      {"Quantization", "quant", 13, 265},
      {"Lat. & Mem.", "latmem", 8, 22},
      {"Per-layer Lat.", "perlayer", 8, 104},
  };
  std::filesystem::path dir = study_dir();
  std::vector<std::vector<std::string>> rows;
  for (const Target& t : targets) {
    LocCount with = count_marked_loc_file(
        dir / (std::string(t.stem) + "_with_mlexray.cc"));
    LocCount without = count_marked_loc_file(
        dir / (std::string(t.stem) + "_without_mlexray.cc"));
    rows.push_back({t.label, std::to_string(with.instrumentation),
                    std::to_string(with.assertion), std::to_string(with.total()),
                    std::to_string(without.instrumentation),
                    std::to_string(without.assertion),
                    std::to_string(without.total()),
                    std::to_string(t.paper_with_total) + " / " +
                        std::to_string(t.paper_without_total)});
  }
  bench::print_table({"debugging target", "Inst(w/)", "Asrt(w/)", "Total(w/)",
                      "Inst(w/o)", "Asrt(w/o)", "Total(w/o)",
                      "paper w/ / w/o"},
                     rows);
  std::printf(
      "\nexpected shape: instrumentation <5 LoC and assertions ~<10 LoC with\n"
      "ML-EXray; an order of magnitude more without (paper Table 1).\n");
  return 0;
}

}  // namespace
}  // namespace mlexray

int main() { return mlexray::run(); }
