// Table 5 (appendix): offline per-layer validation overhead for the
// original 32-bit float models — the float counterpart of Table 3.
#include <chrono>

#include "bench/bench_util.h"
#include "src/convert/converter.h"
#include "src/core/pipelines.h"
#include "src/models/trained_models.h"
#include "src/tensor/alloc_stats.h"

namespace mlexray {
namespace {

constexpr int kFrames = 8;

int run() {
  bench::print_header(
      "Table 5 — offline per-layer validation overhead (float models)",
      "ML-EXray Table 5 (appendix)");
  auto sensors = SynthImageNet::make(1, 9100);
  sensors.resize(kFrames);
  RefOpResolver ref;

  std::vector<std::vector<std::string>> rows;
  for (const ZooEntry& entry : image_zoo()) {
    Graph ckpt = trained_image_checkpoint(entry.name);
    Graph mobile = convert_for_inference(ckpt);
    ImagePipelineConfig correct{ckpt.input_spec, PreprocBug::kNone};
    MonitorOptions opts;
    opts.per_layer_outputs = true;
    ScopedPeakTracker tracker;
    auto start = std::chrono::steady_clock::now();
    Trace trace = run_classification_playback(mobile, ref, sensors, correct,
                                              opts, entry.name);
    double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    rows.push_back({entry.name, std::to_string(mobile.layer_count()),
                    std::to_string(ckpt.num_params()),
                    format_float(seconds, 2),
                    format_float(static_cast<double>(tracker.peak_delta_bytes()) / 1e6, 1),
                    format_float(static_cast<double>(trace.serialized_bytes()) / 1e6, 1)});
  }
  bench::print_table(
      {"model", "layer #", "param #", "lat (s)", "mem (MB)", "disk (MB)"},
      rows);
  std::printf(
      "\nexpected shape: float per-layer logs are ~4x the int8 logs of\n"
      "Table 3 (paper Tables 3 vs 5; %d frames).\n", kFrames);
  return 0;
}

}  // namespace
}  // namespace mlexray

int main() { return mlexray::run(); }
