// Concurrent serving benchmark: one shared prepared Model, T threads each
// holding a pooled Engine session — the prepare-once/serve-many contract of
// the Model/Session split.
//
// For every model/dtype it sweeps thread counts and records steady-state
// invoke throughput plus the memory split the API is designed around:
// prepared bytes are paid ONCE per model (constant in session count —
// asserted here via gemm_b_pack_events), while each session pays only its
// private scratch-arena high-water mark. Near-linear invokes/s scaling with
// threads is the signal that sessions really share the plan without
// synchronizing.
//
// An mt-model sweep then serves a model whose kernels are themselves
// multi-threaded from two concurrent sessions, sweeping the engine's
// kernel-thread cap: throughput rising with the cap shows concurrent
// parallel_for jobs sharing the engine's worker set instead of serializing
// on a process-global queue.
//
// An open-loop sweep then drives the FrontDoor at fixed offered load
// (Poisson arrivals at 0.4x / 1x / 2x / 4x of single-session capacity,
// independent of completions — the arrival process does not slow down when
// the server backs up, unlike the closed loops above). Each factor records
// admitted p50/p99 against the deadline plus the full rejection/shed
// accounting, so BENCH_serving.json carries the overload curve the front
// door is designed for: past the knee, excess demand shows up as typed
// sheds/rejections while the latency of what IS served stays bounded.
//
// A final hot-swap scenario loads a second version of a model while T
// closed-loop threads keep serving (acquire / try_invoke / release per
// request): the row locks in zero failed requests across the swap and
// reports the swap window's p99 latency against the pre-swap steady state.
//
// Emits google-benchmark-shaped JSON on stdout (context + benchmarks[])
// so bench/run_benches.sh can digest and stamp BENCH_serving.json with the
// same tooling as the gbench harnesses. Pass --quick for a CI smoke run.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "src/interpreter/front_door.h"

#include "src/convert/converter.h"
#include "src/interpreter/engine.h"
#include "src/kernels/gemm.h"
#include "src/models/zoo.h"
#include "src/quant/quantizer.h"

namespace mlexray {
namespace {

using Clock = std::chrono::steady_clock;

constexpr std::uint64_t kSeed = 17;

Tensor random_model_input(const Graph& graph, std::uint64_t seed) {
  const Shape& shape = graph.node(graph.input_ids()[0]).output_shape;
  Tensor input = Tensor::f32(shape);
  Pcg32 rng(seed);
  float* p = input.data<float>();
  for (std::int64_t i = 0; i < input.num_elements(); ++i) {
    p[i] = rng.uniform(-1, 1);
  }
  return input;
}

struct Row {
  std::string name;
  double us_per_invoke = 0.0;
  double invokes_per_sec = 0.0;
  int threads = 0;
  std::int64_t invokes = 0;
  double prepared_kb = 0.0;
  double arena_hw_kb = 0.0;      // max across sessions
  double activation_kb = 0.0;    // per session
  std::size_t sessions = 0;
  std::uint64_t pack_events_during_serve = 0;  // must stay 0
};

// Runs `threads` workers, each invoking its own pooled session
// `invokes_per_thread` times against the already-loaded model.
Row serve(Engine& engine, const std::string& model_name, int threads,
          std::int64_t invokes_per_thread, const Tensor& input) {
  std::vector<SessionLease> leases;
  leases.reserve(static_cast<std::size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    leases.push_back(engine.acquire(model_name));
    // Warmup grows each session's arena to its high-water mark so the timed
    // region is the zero-alloc steady state.
    leases.back()->set_input(0, input);
    leases.back()->invoke();
  }

  const std::uint64_t packs_before = gemm_b_pack_events();
  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(threads));
  const auto start = Clock::now();
  for (int t = 0; t < threads; ++t) {
    Session* session = leases[static_cast<std::size_t>(t)].get();
    workers.emplace_back([session, invokes_per_thread, &input] {
      for (std::int64_t i = 0; i < invokes_per_thread; ++i) {
        session->set_input(0, input);
        session->invoke();
      }
    });
  }
  for (std::thread& w : workers) w.join();
  const double secs = std::chrono::duration<double>(Clock::now() - start).count();

  Row row;
  row.threads = threads;
  row.invokes = invokes_per_thread * threads;
  row.us_per_invoke = secs * 1e6 / static_cast<double>(row.invokes);
  row.invokes_per_sec = static_cast<double>(row.invokes) / secs;
  row.pack_events_during_serve = gemm_b_pack_events() - packs_before;
  const EnginePoolStats stats = engine.pool_stats(model_name);
  row.prepared_kb = static_cast<double>(stats.prepared_bytes) / 1024.0;
  row.sessions = stats.sessions_created;
  for (const SessionLease& lease : leases) {
    row.arena_hw_kb =
        std::max(row.arena_hw_kb,
                 static_cast<double>(
                     lease->last_stats().arena_high_water_bytes) /
                     1024.0);
    row.activation_kb =
        static_cast<double>(lease->activation_bytes()) / 1024.0;
  }
  return row;
}

// --- multi-threaded model x multi-session ------------------------------------

// mt-model scenario: a fixed pair of concurrent sessions over ONE model
// whose kernels are themselves multi-threaded, sweeping the engine's
// kernel-thread cap. Every session's parallel_for jobs land on the engine's
// shared worker set, so invoke throughput rising with the cap (on hosts
// with cores to back it) is the signal that concurrent jobs really run
// side by side instead of serializing on a process-global queue — the
// composable-threading contract. Rows keep the serving sweep's invariants:
// prepared bytes constant in the cap, zero GEMM B re-packs while serving.
std::vector<Row> mt_model_sweep(bool quick, unsigned hw) {
  const ZooEntry* entry = nullptr;
  for (const ZooEntry& e : image_zoo()) {
    if (e.name == "mobilenet_v1_mini") entry = &e;
  }
  MLX_CHECK(entry != nullptr);

  const int sessions = 2;
  std::vector<int> caps = {1, 2};
  if (hw >= 4) caps.push_back(4);

  std::int64_t invokes_per_thread = 0;
  std::vector<Row> rows;
  for (int cap : caps) {
    Graph graph = convert_for_inference(entry->build(kSeed, 1).model);
    Tensor input = random_model_input(graph, kSeed + 7);
    BuiltinOpResolver resolver;
    Engine engine(&resolver, cap);
    engine.load("mobilenet_v1_mini/f32", std::move(graph));

    // Calibrate once at cap 1 so every cap serves the same invoke count.
    if (invokes_per_thread == 0) {
      const auto probe_start = Clock::now();
      {
        SessionLease probe = engine.acquire("mobilenet_v1_mini/f32");
        probe->set_input(0, input);
        for (int i = 0; i < 5; ++i) probe->invoke();
      }
      const double probe_ms =
          std::chrono::duration<double, std::milli>(Clock::now() -
                                                    probe_start)
              .count() /
          5.0;
      const double target_ms = quick ? 30.0 : 300.0;
      invokes_per_thread = static_cast<std::int64_t>(
          std::max(2.0, target_ms / std::max(probe_ms, 1e-3)));
    }

    Row row = serve(engine, "mobilenet_v1_mini/f32", sessions,
                    invokes_per_thread, input);
    // The swept axis for this scenario is the kernel-thread cap, not the
    // session count (which stays fixed at `sessions`).
    row.threads = cap;
    row.name = "mtmodel/mobilenet_v1_mini/f32/t" + std::to_string(cap);
    std::fprintf(stderr, "%-44s %10.1f us/invoke %12.1f inv/s\n",
                 row.name.c_str(), row.us_per_invoke, row.invokes_per_sec);
    rows.push_back(row);
  }
  return rows;
}

// --- hot-swap under load -----------------------------------------------------

struct HotSwapRow {
  std::string name;
  int threads = 0;
  std::int64_t requests = 0;
  std::int64_t failed_requests = 0;
  std::int64_t empty_leases = 0;
  double mean_us = 0.0;
  double steady_p99_us = 0.0;       // before the swap started
  double swap_window_p99_us = 0.0;  // completed while the swap was in flight
  double swap_load_ms = 0.0;        // wall clock of the load() call itself
  std::uint64_t versions_retired = 0;
};

double percentile(std::vector<double>& v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const auto idx = static_cast<std::size_t>(
      p * static_cast<double>(v.size() - 1) + 0.5);
  return v[std::min(idx, v.size() - 1)];
}

// Closed-loop serving with a mid-run hot swap: T workers acquire / try_invoke
// / release per request (the full pool round trip, so the swap's drain logic
// is on the request path) while the main thread loads a new version of the
// same name. Every request must succeed; the row reports tail latency inside
// the swap window against the pre-swap steady state.
HotSwapRow hotswap_scenario(const std::string& model_name, Graph graph_v1,
                            Graph graph_v2, const Tensor& input, int threads,
                            bool quick) {
  struct Sample {
    double end_us = 0.0;  // completion time, relative to run start
    double latency_us = 0.0;
  };
  const double warm_ms = quick ? 40.0 : 250.0;
  const double tail_ms = quick ? 40.0 : 250.0;

  BuiltinOpResolver resolver;
  Engine engine(&resolver);
  engine.load(model_name, std::move(graph_v1));

  std::atomic<bool> stop{false};
  std::atomic<std::int64_t> failed{0};
  std::atomic<std::int64_t> empty{0};
  std::vector<std::vector<Sample>> samples(
      static_cast<std::size_t>(threads));
  const auto run_start = Clock::now();

  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    std::vector<Sample>* out = &samples[static_cast<std::size_t>(t)];
    out->reserve(1 << 16);
    workers.emplace_back([&, out] {
      while (!stop.load(std::memory_order_relaxed)) {
        const auto req_start = Clock::now();
        SessionLease lease = engine.try_acquire(model_name);
        if (!lease) {
          empty.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        lease->set_input(0, input);
        const InvokeStatus status = lease->try_invoke();
        const auto req_end = Clock::now();
        if (!status.ok()) {
          failed.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        Sample s;
        s.end_us =
            std::chrono::duration<double, std::micro>(req_end - run_start)
                .count();
        s.latency_us =
            std::chrono::duration<double, std::micro>(req_end - req_start)
                .count();
        out->push_back(s);
      }
    });
  }

  // Steady state, then the swap, then a post-swap tail.
  std::this_thread::sleep_for(
      std::chrono::duration<double, std::milli>(warm_ms));
  const auto swap_begin = Clock::now();
  engine.load(model_name, std::move(graph_v2));
  const auto swap_end = Clock::now();
  std::this_thread::sleep_for(
      std::chrono::duration<double, std::milli>(tail_ms));
  stop.store(true);
  for (std::thread& w : workers) w.join();

  const double swap_begin_us =
      std::chrono::duration<double, std::micro>(swap_begin - run_start)
          .count();
  const double swap_end_us =
      std::chrono::duration<double, std::micro>(swap_end - run_start).count();

  HotSwapRow row;
  row.threads = threads;
  row.failed_requests = failed.load();
  row.empty_leases = empty.load();
  row.swap_load_ms = (swap_end_us - swap_begin_us) / 1000.0;
  row.versions_retired = engine.pool_stats(model_name).versions_retired;

  std::vector<double> steady, swap_window;
  double latency_sum = 0.0;
  for (const std::vector<Sample>& per_thread : samples) {
    row.requests += static_cast<std::int64_t>(per_thread.size());
    for (const Sample& s : per_thread) {
      latency_sum += s.latency_us;
      if (s.end_us < swap_begin_us) {
        steady.push_back(s.latency_us);
      } else if (s.end_us <= swap_end_us) {
        swap_window.push_back(s.latency_us);
      }
    }
  }
  row.mean_us =
      row.requests > 0 ? latency_sum / static_cast<double>(row.requests) : 0.0;
  row.steady_p99_us = percentile(steady, 0.99);
  row.swap_window_p99_us = percentile(swap_window, 0.99);
  // An empty swap window (the load outpaced every in-flight request) is
  // healthy; report the steady tail so the column is never misleadingly 0.
  if (swap_window.empty()) row.swap_window_p99_us = row.steady_p99_us;
  return row;
}

// --- open-loop offered-load sweep (FrontDoor) --------------------------------

struct OpenLoopRow {
  std::string name;
  double factor = 0.0;        // offered load as a multiple of capacity
  double deadline_ms = 0.0;
  double offered_qps = 0.0;   // actually generated, not the nominal target
  double achieved_qps = 0.0;  // kOk completions per second
  std::int64_t submitted = 0;
  std::uint64_t ok = 0;
  std::uint64_t shed = 0;
  std::uint64_t deadline_exceeded = 0;
  std::uint64_t failed_requests = 0;
  std::uint64_t unknown_model = 0;
  std::uint64_t rejected_queue_full = 0;
  std::uint64_t rejected_infeasible = 0;
  std::uint64_t rejected_breaker_open = 0;
  double p50_us = 0.0;  // admitted kOk latency, submit -> done
  double p99_us = 0.0;
  std::uint64_t batches = 0;
  double mean_batch_size = 0.0;
  std::size_t max_queue_depth = 0;
};

double probe_service_us(Engine& engine, const std::string& model,
                        const Tensor& input, int reps) {
  SessionLease lease = engine.acquire(model);
  lease->set_input(0, input);
  lease->invoke();  // warm the arena so the probe is steady-state
  const auto start = Clock::now();
  for (int i = 0; i < reps; ++i) {
    lease->set_input(0, input);
    lease->invoke();
  }
  return std::chrono::duration<double, std::micro>(Clock::now() - start)
             .count() /
         static_cast<double>(reps);
}

// One offered-load point: Poisson arrivals at `lambda_qps` through
// submit_async for `duration_s`, then drain. A fresh FrontDoor per point
// keeps the counters and the EWMA estimate per-row.
OpenLoopRow run_open_loop(Engine& engine, const std::string& name,
                          const FrontDoorModelOptions& mopts,
                          const Tensor& input, double lambda_qps,
                          double deadline_ms, double duration_s,
                          std::uint64_t seed) {
  struct Tally {
    std::vector<double> ok_us;
    std::uint64_t ok = 0;
    std::uint64_t shed = 0;
    std::uint64_t deadline_exceeded = 0;
    std::uint64_t failed = 0;
    std::uint64_t unknown = 0;
    std::atomic<std::int64_t> done{0};
  } tally;
  tally.ok_us.reserve(
      static_cast<std::size_t>(lambda_qps * duration_s * 1.5) + 1024);
  // Scheduler-thread callback: non-atomic fields are safe because the single
  // worker is the only writer and the generator only reads them after the
  // drain barrier below.
  const FrontDoorCallback on_done = [](void* ctx, const RequestResult& r) {
    auto* t = static_cast<Tally*>(ctx);
    switch (r.code) {
      case RequestCode::kOk:
        ++t->ok;
        t->ok_us.push_back(r.latency_us);
        break;
      case RequestCode::kShed: ++t->shed; break;
      case RequestCode::kDeadlineExceeded: ++t->deadline_exceeded; break;
      case RequestCode::kError: ++t->failed; break;
      default: ++t->unknown; break;
    }
    t->done.fetch_add(1, std::memory_order_release);
  };

  FrontDoor door(&engine, {.workers = 1});
  door.register_model(name, mopts);
  // Warmup primes the batch variants' arenas and seeds the EWMA service
  // estimate so admission control is armed from the first timed arrival.
  for (int i = 0; i < 3; ++i) {
    Ticket t = door.submit(name, input);
    t.wait();
  }
  const FrontDoorStats warm = door.stats(name);

  OpenLoopRow row;
  Pcg32 rng(seed);
  std::int64_t admitted = 0;
  auto next = Clock::now();
  const auto start = next;
  const auto end =
      start + std::chrono::duration_cast<Clock::duration>(
                  std::chrono::duration<double>(duration_s));
  while (true) {
    // Exponential inter-arrival: the open loop never waits for completions.
    const double gap_s =
        -std::log(1.0 - rng.next_double()) / std::max(lambda_qps, 1.0);
    next += std::chrono::duration_cast<Clock::duration>(
        std::chrono::duration<double>(gap_s));
    if (next >= end) break;
    std::this_thread::sleep_until(next);
    const RequestCode code =
        door.submit_async(name, input, deadline_ms, /*priority=*/0, on_done,
                          &tally);
    ++row.submitted;
    switch (code) {
      case RequestCode::kOk: ++admitted; break;
      case RequestCode::kQueueFull: ++row.rejected_queue_full; break;
      case RequestCode::kDeadlineInfeasible: ++row.rejected_infeasible; break;
      case RequestCode::kBreakerOpen: ++row.rejected_breaker_open; break;
      default: ++row.unknown_model; break;
    }
  }
  const double gen_s =
      std::chrono::duration<double>(Clock::now() - start).count();
  const auto drain_deadline = Clock::now() + std::chrono::seconds(10);
  while (tally.done.load(std::memory_order_acquire) < admitted &&
         Clock::now() < drain_deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  row.offered_qps = static_cast<double>(row.submitted) / gen_s;
  row.achieved_qps = static_cast<double>(tally.ok) / gen_s;
  row.ok = tally.ok;
  row.shed = tally.shed;
  row.deadline_exceeded = tally.deadline_exceeded;
  row.failed_requests = tally.failed;
  row.unknown_model += tally.unknown;
  row.p50_us = percentile(tally.ok_us, 0.50);
  row.p99_us = percentile(tally.ok_us, 0.99);
  const FrontDoorStats stats = door.stats(name);
  row.batches = stats.batches - warm.batches;
  row.max_queue_depth = stats.max_queue_depth;
  std::uint64_t coalesced = 0;
  for (std::size_t n = 1; n < stats.batch_size_hist.size(); ++n) {
    std::uint64_t h = stats.batch_size_hist[n];
    if (n < warm.batch_size_hist.size()) h -= warm.batch_size_hist[n];
    coalesced += h * n;
  }
  row.mean_batch_size =
      row.batches > 0
          ? static_cast<double>(coalesced) / static_cast<double>(row.batches)
          : 0.0;
  return row;
}

std::vector<OpenLoopRow> open_loop_sweep(bool quick) {
  const ZooEntry* entry = nullptr;
  for (const ZooEntry& e : image_zoo()) {
    if (e.name == "mobilenet_v1_mini") entry = &e;
  }
  MLX_CHECK(entry != nullptr);
  Graph b1 = convert_for_inference(entry->build(kSeed, 1).model);
  Graph b4 = convert_for_inference(entry->build(kSeed, 4).model);
  Tensor input1 = random_model_input(b1, kSeed + 7);
  Tensor input4 = random_model_input(b4, kSeed + 7);

  BuiltinOpResolver resolver;
  Engine engine(&resolver);
  engine.load("mobilenet_v1_mini/f32", std::move(b1));
  engine.load("mobilenet_v1_mini/f32@b4", std::move(b4));

  const double s1_us = probe_service_us(engine, "mobilenet_v1_mini/f32",
                                        input1, quick ? 3 : 8);
  const double s4_us = probe_service_us(engine, "mobilenet_v1_mini/f32@b4",
                                        input4, quick ? 3 : 8);

  FrontDoorModelOptions mopts;
  mopts.queue_capacity = 64;
  mopts.max_batch = 4;
  mopts.max_wait_ms = std::clamp(s4_us / 1000.0, 0.2, 5.0);
  mopts.variants = {{1, "mobilenet_v1_mini/f32"},
                    {4, "mobilenet_v1_mini/f32@b4"}};

  const double capacity_qps = 1e6 / std::max(s1_us, 1.0);
  const double duration_s = quick ? 0.3 : 1.5;
  const double factors[] = {0.4, 1.0, 2.0, 4.0};

  std::vector<OpenLoopRow> rows;
  double p99_base_us = 0.0;
  for (double f : factors) {
    // Below capacity the deadline is generous (nothing should miss it); the
    // overload points get a deadline pinned to the below-capacity tail so
    // the bound "admitted p99 stays within 2x the uncontended p99" is the
    // deadline policy itself, not luck. The 2.2*s4 floor keeps the deadline
    // serviceable even if the base tail was unusually tight; it stays under
    // 2x base structurally because base p99 >= max_wait + s1 ~ s4 + s1 and
    // s4 <= 4*s1.
    const double deadline_ms =
        f <= 0.5 ? std::max(20.0 * s4_us / 1000.0, 5.0)
                 : std::max(1.8 * p99_base_us / 1000.0, 2.2 * s4_us / 1000.0);
    OpenLoopRow row = run_open_loop(
        engine, "mobilenet_v1_mini/f32", mopts, input1, f * capacity_qps,
        deadline_ms, duration_s,
        /*seed=*/kSeed + 31 + static_cast<std::uint64_t>(f * 10.0));
    row.factor = f;
    row.deadline_ms = deadline_ms;
    char name[96];
    std::snprintf(name, sizeof(name), "openloop/mobilenet_v1_mini/f32/x%g", f);
    row.name = name;
    if (f <= 0.5) p99_base_us = row.p99_us;
    std::fprintf(stderr,
                 "%-44s offered %8.0f q/s served %8.0f q/s  p99 %8.0f us  "
                 "shed %llu rejected %llu\n",
                 row.name.c_str(), row.offered_qps, row.achieved_qps,
                 row.p99_us, static_cast<unsigned long long>(row.shed),
                 static_cast<unsigned long long>(row.rejected_queue_full +
                                                 row.rejected_infeasible +
                                                 row.rejected_breaker_open));
    rows.push_back(std::move(row));
  }
  return rows;
}

int run(bool quick) {
  // Serving sweep: a classification model in both dtypes. Sessions run
  // single-threaded kernels (num_threads=1) so thread scaling comes from
  // concurrent sessions, not the kernel pool.
  struct Case {
    std::string model;
    bool quantized;
  };
  const std::vector<Case> cases = {
      {"mobilenet_v1_mini", false},
      {"mobilenet_v1_mini", true},
      {"resnet50v2_mini", false},
  };
  // Always sweep to 4 threads even on smaller hosts: the concurrency
  // behaviour (shared plan, private arenas, no re-packing) is what the
  // bench locks in; the scaling *factor* is read against the recorded
  // hardware_concurrency.
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  std::vector<int> thread_counts = {1, 2, 4};
  if (hw >= 8) thread_counts.push_back(8);

  std::vector<Row> rows;
  for (const Case& c : cases) {
    const ZooEntry* entry = nullptr;
    for (const ZooEntry& e : image_zoo()) {
      if (e.name == c.model) entry = &e;
    }
    MLX_CHECK(entry != nullptr) << "unknown zoo model " << c.model;
    Graph graph = convert_for_inference(entry->build(kSeed, 1).model);
    if (c.quantized) {
      Calibrator calib(&graph);
      for (int i = 0; i < 2; ++i) {
        calib.observe({random_model_input(graph, kSeed + 100 + i)});
      }
      graph = quantize_model(graph, calib);
    }
    Tensor input = random_model_input(graph, kSeed + 7);
    const std::string dtype = c.quantized ? "int8" : "f32";
    const std::string loaded = c.model + "/" + dtype;

    BuiltinOpResolver resolver;
    Engine engine(&resolver);
    engine.load(loaded, std::move(graph));

    // Calibrate the per-thread invoke count off a single-session probe so
    // every thread count runs roughly the same wall clock.
    const auto probe_start = Clock::now();
    {
      SessionLease probe = engine.acquire(loaded);
      probe->set_input(0, input);
      for (int i = 0; i < 5; ++i) probe->invoke();
    }
    const double probe_ms =
        std::chrono::duration<double, std::milli>(Clock::now() - probe_start)
            .count() /
        5.0;
    const double target_ms = quick ? 30.0 : 400.0;
    const auto invokes_per_thread = static_cast<std::int64_t>(
        std::max(2.0, target_ms / std::max(probe_ms, 1e-3)));

    for (int threads : thread_counts) {
      Row row = serve(engine, loaded, threads, invokes_per_thread, input);
      row.name = "serving/" + c.model + "/" + dtype + "/t" +
                 std::to_string(threads);
      rows.push_back(row);
      std::fprintf(stderr, "%-44s %10.1f us/invoke %12.1f inv/s\n",
                   row.name.c_str(), row.us_per_invoke, row.invokes_per_sec);
    }
  }

  // Multi-threaded model x multi-session: kernel-thread-cap scaling on the
  // engine's shared worker set, with the serving invariants intact.
  {
    std::vector<Row> mt_rows = mt_model_sweep(quick, hw);
    rows.insert(rows.end(), mt_rows.begin(), mt_rows.end());
  }

  // Open-loop offered-load sweep through the FrontDoor: the overload curve
  // (QPS vs p50/p99 plus shed/rejected accounting) past the capacity knee.
  std::vector<OpenLoopRow> openloop_rows = open_loop_sweep(quick);

  // Hot-swap under load: version 2 of the same zoo model (different weight
  // seed) is loaded while T closed-loop threads keep serving. The row locks
  // in zero failed requests and reports the swap window's p99 against the
  // steady state.
  const int swap_threads = static_cast<int>(std::min(4u, hw));
  HotSwapRow swap_row;
  {
    const ZooEntry* entry = nullptr;
    for (const ZooEntry& e : image_zoo()) {
      if (e.name == "mobilenet_v1_mini") entry = &e;
    }
    MLX_CHECK(entry != nullptr);
    Graph v1 = convert_for_inference(entry->build(kSeed, 1).model);
    Graph v2 = convert_for_inference(entry->build(kSeed + 1, 1).model);
    Tensor input = random_model_input(v1, kSeed + 7);
    swap_row = hotswap_scenario("mobilenet_v1_mini/f32", std::move(v1),
                                std::move(v2), input, swap_threads, quick);
    swap_row.name = "hotswap/mobilenet_v1_mini/f32/t" +
                    std::to_string(swap_threads);
    std::fprintf(stderr,
                 "%-44s steady p99 %.1f us, swap-window p99 %.1f us, "
                 "%lld requests, %lld failed\n",
                 swap_row.name.c_str(), swap_row.steady_p99_us,
                 swap_row.swap_window_p99_us,
                 static_cast<long long>(swap_row.requests),
                 static_cast<long long>(swap_row.failed_requests));
  }

  // google-benchmark-shaped JSON so run_benches.sh digests it unchanged.
  std::printf("{\n");
  std::printf("  \"context\": {\n");
  std::printf("    \"executable\": \"bench_serving\",\n");
  std::printf("    \"hardware_concurrency\": %u,\n", hw);
  std::printf("    \"quick\": %s\n", quick ? "true" : "false");
  std::printf("  },\n");
  std::printf("  \"benchmarks\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::printf("    {\n");
    std::printf("      \"name\": \"%s\",\n", r.name.c_str());
    std::printf("      \"run_type\": \"iteration\",\n");
    std::printf("      \"iterations\": %lld,\n",
                static_cast<long long>(r.invokes));
    std::printf("      \"real_time\": %.4f,\n", r.us_per_invoke);
    std::printf("      \"cpu_time\": %.4f,\n", r.us_per_invoke);
    std::printf("      \"time_unit\": \"us\",\n");
    std::printf("      \"threads\": %d,\n", r.threads);
    std::printf("      \"invokes_per_second\": %.2f,\n", r.invokes_per_sec);
    std::printf("      \"sessions\": %zu,\n", r.sessions);
    std::printf("      \"prepared_kb\": %.2f,\n", r.prepared_kb);
    std::printf("      \"arena_high_water_kb\": %.2f,\n", r.arena_hw_kb);
    std::printf("      \"activation_kb_per_session\": %.2f,\n",
                r.activation_kb);
    std::printf("      \"gemm_b_pack_events_during_serve\": %llu\n",
                static_cast<unsigned long long>(r.pack_events_during_serve));
    std::printf("    },\n");
  }
  for (const OpenLoopRow& r : openloop_rows) {
    std::printf("    {\n");
    std::printf("      \"name\": \"%s\",\n", r.name.c_str());
    std::printf("      \"run_type\": \"iteration\",\n");
    std::printf("      \"iterations\": %lld,\n",
                static_cast<long long>(r.submitted));
    std::printf("      \"real_time\": %.4f,\n", r.p50_us);
    std::printf("      \"cpu_time\": %.4f,\n", r.p50_us);
    std::printf("      \"time_unit\": \"us\",\n");
    std::printf("      \"threads\": 1,\n");
    std::printf("      \"load_factor\": %.2f,\n", r.factor);
    std::printf("      \"deadline_ms\": %.3f,\n", r.deadline_ms);
    std::printf("      \"offered_qps\": %.2f,\n", r.offered_qps);
    std::printf("      \"achieved_qps\": %.2f,\n", r.achieved_qps);
    std::printf("      \"ok\": %llu,\n",
                static_cast<unsigned long long>(r.ok));
    std::printf("      \"shed\": %llu,\n",
                static_cast<unsigned long long>(r.shed));
    std::printf("      \"deadline_exceeded\": %llu,\n",
                static_cast<unsigned long long>(r.deadline_exceeded));
    std::printf("      \"failed_requests\": %llu,\n",
                static_cast<unsigned long long>(r.failed_requests));
    std::printf("      \"unknown_model\": %llu,\n",
                static_cast<unsigned long long>(r.unknown_model));
    std::printf("      \"rejected_queue_full\": %llu,\n",
                static_cast<unsigned long long>(r.rejected_queue_full));
    std::printf("      \"rejected_infeasible\": %llu,\n",
                static_cast<unsigned long long>(r.rejected_infeasible));
    std::printf("      \"rejected_breaker_open\": %llu,\n",
                static_cast<unsigned long long>(r.rejected_breaker_open));
    std::printf("      \"p50_us\": %.2f,\n", r.p50_us);
    std::printf("      \"p99_us\": %.2f,\n", r.p99_us);
    std::printf("      \"batches\": %llu,\n",
                static_cast<unsigned long long>(r.batches));
    std::printf("      \"mean_batch_size\": %.3f,\n", r.mean_batch_size);
    std::printf("      \"max_queue_depth\": %zu\n", r.max_queue_depth);
    std::printf("    },\n");
  }
  {
    const HotSwapRow& r = swap_row;
    std::printf("    {\n");
    std::printf("      \"name\": \"%s\",\n", r.name.c_str());
    std::printf("      \"run_type\": \"iteration\",\n");
    std::printf("      \"iterations\": %lld,\n",
                static_cast<long long>(r.requests));
    std::printf("      \"real_time\": %.4f,\n", r.mean_us);
    std::printf("      \"cpu_time\": %.4f,\n", r.mean_us);
    std::printf("      \"time_unit\": \"us\",\n");
    std::printf("      \"threads\": %d,\n", r.threads);
    std::printf("      \"failed_requests\": %lld,\n",
                static_cast<long long>(r.failed_requests));
    std::printf("      \"empty_leases\": %lld,\n",
                static_cast<long long>(r.empty_leases));
    std::printf("      \"steady_p99_us\": %.2f,\n", r.steady_p99_us);
    std::printf("      \"swap_window_p99_us\": %.2f,\n", r.swap_window_p99_us);
    std::printf("      \"swap_load_ms\": %.3f,\n", r.swap_load_ms);
    std::printf("      \"versions_retired\": %llu\n",
                static_cast<unsigned long long>(r.versions_retired));
    std::printf("    }\n");
  }
  std::printf("  ]\n}\n");
  return 0;
}

}  // namespace
}  // namespace mlexray

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }
  return mlexray::run(quick);
}
