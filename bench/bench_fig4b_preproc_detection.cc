// Figure 4(b): detection mAP under preprocessing bugs, two detectors.
//
// Paper shape: channel misarrangement and erroneous normalization lower mAP
// by a few points; a different resizing function changes mAP only slightly.
// (FasterRCNN is substituted by a second SSD backbone; DESIGN.md §2.4.)
#include "bench/bench_util.h"
#include "src/convert/converter.h"
#include "src/models/trained_models.h"

namespace mlexray {
namespace {

int run() {
  bench::print_header("Fig 4b — preprocessing bugs vs detection mAP@0.5",
                      "ML-EXray Fig. 4(b)");
  auto test = SynthCoco::make(StandardData::kDetTest, 7007);
  const PreprocBug bugs[] = {PreprocBug::kNone, PreprocBug::kWrongResize,
                             PreprocBug::kWrongChannelOrder,
                             PreprocBug::kWrongNormalization};
  BuiltinOpResolver opt;
  std::vector<std::vector<std::string>> rows;
  for (const char* backbone : {"mobilenet", "resnet"}) {
    SsdModel ssd = trained_ssd(backbone);
    Graph deployed = convert_for_inference(ssd.model);
    std::vector<std::string> row{"ssd_" + std::string(backbone)};
    for (PreprocBug bug : bugs) {
      ImagePipelineConfig cfg{ssd.model.input_spec, bug};
      row.push_back(
          bench::pct(evaluate_ssd_map(ssd, deployed, opt, test, cfg)));
    }
    rows.push_back(std::move(row));
  }
  bench::print_table(
      {"detector", "mAP(correct)", "Resize", "Channel", "Normalization"},
      rows);
  std::printf(
      "\nexpected shape: channel/normalization cost several mAP points;\n"
      "resize changes mAP only marginally (paper Fig 4b).\n");
  return 0;
}

}  // namespace
}  // namespace mlexray

int main() { return mlexray::run(); }
