// Figure 4(c): speech-command accuracy under the spectrogram-normalization
// mismatch (log-compressed expected, linear delivered), two KWS models.
#include "bench/bench_util.h"
#include "src/convert/converter.h"
#include "src/models/trained_models.h"

namespace mlexray {
namespace {

int run() {
  bench::print_header("Fig 4c — spectrogram scale bug vs speech accuracy",
                      "ML-EXray Fig. 4(c)");
  auto test = SynthSpeech::make(StandardData::kSpeechTestPerClass, 8008);
  BuiltinOpResolver opt;
  std::vector<std::vector<std::string>> rows;
  for (const char* name : {"kws_tiny_conv", "kws_low_latency_conv"}) {
    Graph ckpt = trained_kws_checkpoint(name);
    Graph mobile = convert_for_inference(ckpt);
    AudioPipelineConfig correct;
    AudioPipelineConfig buggy;
    buggy.bug = AudioBug::kWrongScale;
    rows.push_back(
        {name,
         bench::pct(evaluate_classifier(mobile, opt,
                                        speech_examples(test, correct))),
         bench::pct(evaluate_classifier(mobile, opt,
                                        speech_examples(test, buggy)))});
  }
  bench::print_table({"model", "correct pipeline", "wrong spectrogram scale"},
                     rows);
  std::printf(
      "\nexpected shape: mismatching spectrogram normalization significantly\n"
      "hurts both speech models (paper Fig 4c).\n");
  return 0;
}

}  // namespace
}  // namespace mlexray

int main() { return mlexray::run(); }
