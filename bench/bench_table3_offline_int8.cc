// Table 3: offline per-layer validation overhead for int8 models —
// latency, memory, and log storage of full per-layer logging across the
// model zoo (ordered by layer count, as in the paper).
#include <chrono>

#include "bench/bench_util.h"
#include "src/convert/converter.h"
#include "src/core/pipelines.h"
#include "src/models/trained_models.h"
#include "src/quant/quantizer.h"
#include "src/tensor/alloc_stats.h"

namespace mlexray {
namespace {

constexpr int kFrames = 8;

int run() {
  bench::print_header(
      "Table 3 — offline per-layer validation overhead (int8 models)",
      "ML-EXray Table 3");
  auto sensors = SynthImageNet::make(1, 9100);
  sensors.resize(kFrames);
  auto calib_sensors = SynthImageNet::make(4, 777);
  RefOpResolver ref;

  std::vector<std::vector<std::string>> rows;
  for (const ZooEntry& entry : image_zoo()) {
    Graph ckpt = trained_image_checkpoint(entry.name);
    Graph mobile = convert_for_inference(ckpt);
    ImagePipelineConfig correct{ckpt.input_spec, PreprocBug::kNone};
    Calibrator calib(&mobile);
    for (const auto& s : calib_sensors) {
      calib.observe({run_image_pipeline(s.image_u8, correct)});
    }
    Graph quant = quantize_model(mobile, calib);

    MonitorOptions opts;
    opts.per_layer_outputs = true;
    ScopedPeakTracker tracker;
    auto start = std::chrono::steady_clock::now();
    Trace trace = run_classification_playback(quant, ref, sensors, correct,
                                              opts, entry.name);
    double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    rows.push_back({entry.name, std::to_string(quant.layer_count()),
                    std::to_string(ckpt.num_params()),
                    format_float(seconds, 2),
                    format_float(static_cast<double>(tracker.peak_delta_bytes()) / 1e6, 1),
                    format_float(static_cast<double>(trace.serialized_bytes()) / 1e6, 1)});
  }
  bench::print_table(
      {"model", "layer #", "param #", "lat (s)", "mem (MB)", "disk (MB)"},
      rows);
  std::printf(
      "\nexpected shape: per-layer logging cost grows with layer count and\n"
      "activation volume (paper Table 3; %d frames).\n", kFrames);
  return 0;
}

}  // namespace
}  // namespace mlexray

int main() { return mlexray::run(); }
