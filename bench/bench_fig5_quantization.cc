// Figure 5: Top-1 accuracy across deployment variants —
//   Reference        (training checkpoint, reference kernels)
//   Mobile           (converted 32-bit float, optimized kernels)
//   Mobile Quant     (int8, as-shipped optimized resolver)
//   Mobile Quant Ref (int8, as-shipped reference resolver)
//
// Paper shape: conversion costs ~1-2%; the as-shipped optimized resolver's
// quantized DepthwiseConv2D defect collapses MobileNets to ~0%; the
// reference resolver is fine except MobileNetV3, whose squeeze-excite
// AveragePool2D hits the reference-kernel defect.
#include "bench/bench_util.h"
#include "src/convert/converter.h"
#include "src/models/trained_models.h"
#include "src/quant/quantizer.h"

namespace mlexray {
namespace {

int run() {
  bench::print_header("Fig 5 — accuracy vs optimization/quantization variant",
                      "ML-EXray Fig. 5");
  auto test = SynthImageNet::make(StandardData::kImageTestPerClass,
                                  StandardData::kImageTestSeed);
  auto calib_sensors = SynthImageNet::make(8, 777);

  RefOpResolver ref_fixed;
  BuiltinOpResolver opt_fixed;
  BuiltinOpResolver opt_shipped(KernelBugConfig::as_shipped());
  RefOpResolver ref_shipped(KernelBugConfig::as_shipped());

  std::vector<std::vector<std::string>> rows;
  for (const ZooEntry& entry : image_zoo()) {
    Graph ckpt = trained_image_checkpoint(entry.name);
    Graph mobile = convert_for_inference(ckpt);
    ImagePipelineConfig correct{ckpt.input_spec, PreprocBug::kNone};
    auto examples = imagenet_examples(test, correct);

    Calibrator calib(&mobile);
    for (const auto& s : calib_sensors) {
      calib.observe({run_image_pipeline(s.image_u8, correct)});
    }
    Graph quant = quantize_model(mobile, calib);

    rows.push_back(
        {entry.name,
         bench::pct(evaluate_classifier(ckpt, ref_fixed, examples)),
         bench::pct(evaluate_classifier(mobile, opt_fixed, examples)),
         bench::pct(evaluate_classifier(quant, opt_shipped, examples)),
         bench::pct(evaluate_classifier(quant, ref_shipped, examples))});
  }
  bench::print_table({"model", "Reference", "Mobile", "Mobile Quant(OpR)",
                      "Mobile Quant Ref"},
                     rows);
  std::printf(
      "\nexpected shape: Mobile ~= Reference; Mobile Quant(OpR) collapses on\n"
      "depthwise models (dwconv kernel defect); Mobile Quant Ref fine except\n"
      "MobileNetV3 (squeeze-excite AvgPool defect). Paper Fig. 5.\n");
  return 0;
}

}  // namespace
}  // namespace mlexray

int main() { return mlexray::run(); }
