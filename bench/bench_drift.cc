// Drift-subsystem benchmark: digest capture overhead and fleet aggregation
// throughput (src/drift/).
//
// Part 1 — digest overhead. The fleet-monitoring pitch is "always on": a
// digest-mode monitored invoke must cost within a small margin of a bare
// invoke (the same Table-2 framing the paper uses for logging overhead).
// For a zoo model in f32 and int8 it times three interleaved loops:
//
//   bare    plain session invokes, no observer;
//   digest  per-layer digest capture (moments + sketch / histogram-256),
//           retain_frames=false — the always-on fleet configuration;
//   raw     full per-layer raw-output capture, for scale (the offline
//           validation mode digests replace in steady-state serving).
//
// Each mode runs three interleaved repetitions and keeps the fastest, so
// one scheduling hiccup cannot fake a regression; run_benches.sh refuses to
// stamp BENCH_drift.json when digest overhead exceeds its gate (15%).
//
// Part 2 — aggregation throughput. Merges N simulated devices' digest
// traces into a DriftAggregator and builds the fleet report, recording
// traces/sec and frames/sec for the merge pass and the report build time —
// the "thousands of devices" path the aggregator exists for.
//
// Emits google-benchmark-shaped JSON on stdout (context + benchmarks[]) so
// bench/run_benches.sh digests it with the same tooling as the gbench
// harnesses. Pass --quick for a CI smoke run.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "src/convert/converter.h"
#include "src/core/monitor.h"
#include "src/drift/aggregator.h"
#include "src/interpreter/interpreter.h"
#include "src/models/zoo.h"
#include "src/quant/quantizer.h"

namespace mlexray {
namespace {

using Clock = std::chrono::steady_clock;

constexpr std::uint64_t kSeed = 23;

Tensor random_model_input(const Graph& graph, std::uint64_t seed) {
  const Shape& shape = graph.node(graph.input_ids()[0]).output_shape;
  Tensor input = Tensor::f32(shape);
  Pcg32 rng(seed);
  float* p = input.data<float>();
  for (std::int64_t i = 0; i < input.num_elements(); ++i) {
    p[i] = rng.uniform(-1, 1);
  }
  return input;
}

struct OverheadRow {
  std::string name;
  std::int64_t invokes = 0;
  double bare_us = 0.0;
  double digest_us = 0.0;
  double raw_us = 0.0;
  double overhead_pct = 0.0;      // digest vs bare
  double raw_overhead_pct = 0.0;  // raw capture vs bare, for scale
  double digest_frame_kb = 0.0;
  double raw_frame_kb = 0.0;
  int layers = 0;
};

enum class Mode { kBare, kDigest, kRaw };

// One timed loop of `invokes` monitored (or bare) frames; returns us/invoke.
double time_mode(Interpreter& interp, const Tensor& input, Mode mode,
                 std::int64_t invokes, std::size_t* frame_kb) {
  MonitorOptions opts;
  opts.retain_frames = false;
  opts.per_layer_digests = mode == Mode::kDigest;
  opts.per_layer_outputs = mode == Mode::kRaw;
  EdgeMLMonitor monitor(opts);
  if (mode != Mode::kBare) monitor.observe(interp);
  interp.set_input(0, input);
  // Warm arenas and both capture buffers before the timed window.
  for (int i = 0; i < 3; ++i) {
    if (mode == Mode::kBare) {
      interp.invoke();
    } else {
      monitor.on_inf_start();
      interp.invoke();
      monitor.on_inf_stop(interp);
      monitor.next_frame();
    }
  }
  const auto start = Clock::now();
  for (std::int64_t i = 0; i < invokes; ++i) {
    if (mode == Mode::kBare) {
      interp.invoke();
    } else {
      monitor.on_inf_start();
      interp.invoke();
      monitor.on_inf_stop(interp);
      monitor.next_frame();
    }
  }
  const double us =
      std::chrono::duration<double, std::micro>(Clock::now() - start).count() /
      static_cast<double>(invokes);
  if (frame_kb != nullptr && mode != Mode::kBare) {
    *frame_kb = monitor.buffer().frame_capture_bytes();
  }
  if (mode != Mode::kBare) monitor.unobserve(interp);
  return us;
}

OverheadRow digest_overhead(const std::string& model_name, Graph graph,
                            const std::string& dtype, bool quick) {
  BuiltinOpResolver resolver;
  Interpreter interp(&graph, &resolver);
  Tensor input = random_model_input(graph, kSeed + 7);

  // Calibrate the loop length off a short probe so every mode runs a
  // comparable wall clock.
  interp.set_input(0, input);
  const auto probe_start = Clock::now();
  for (int i = 0; i < 5; ++i) interp.invoke();
  const double probe_us =
      std::chrono::duration<double, std::micro>(Clock::now() - probe_start)
          .count() /
      5.0;
  const double target_us = quick ? 30e3 : 300e3;
  const auto invokes = static_cast<std::int64_t>(
      std::max(4.0, target_us / std::max(probe_us, 1.0)));

  OverheadRow row;
  row.name = "drift/digest_overhead/" + model_name + "/" + dtype;
  row.invokes = invokes;
  row.layers = graph.layer_count();
  row.bare_us = 1e30;
  row.digest_us = 1e30;
  row.raw_us = 1e30;
  std::size_t digest_bytes = 0;
  std::size_t raw_bytes = 0;
  // Interleave repetitions so a load spike hits all modes alike; keep the
  // fastest pass per mode (the standard min-time noise filter).
  for (int rep = 0; rep < 3; ++rep) {
    row.bare_us = std::min(
        row.bare_us, time_mode(interp, input, Mode::kBare, invokes, nullptr));
    row.digest_us =
        std::min(row.digest_us, time_mode(interp, input, Mode::kDigest,
                                          invokes, &digest_bytes));
    row.raw_us = std::min(
        row.raw_us, time_mode(interp, input, Mode::kRaw, invokes, &raw_bytes));
  }
  row.overhead_pct = 100.0 * (row.digest_us - row.bare_us) / row.bare_us;
  row.raw_overhead_pct = 100.0 * (row.raw_us - row.bare_us) / row.bare_us;
  row.digest_frame_kb = static_cast<double>(digest_bytes) / 1024.0;
  row.raw_frame_kb = static_cast<double>(raw_bytes) / 1024.0;
  return row;
}

struct AggregateRow {
  std::string name;
  std::size_t devices = 0;
  std::size_t frames = 0;  // per device
  double merge_us_per_trace = 0.0;
  double traces_per_sec = 0.0;
  double frames_per_sec = 0.0;
  double report_ms = 0.0;
  std::size_t report_layers = 0;
  std::size_t trace_kb = 0;  // one device's serialized digest trace
};

AggregateRow aggregation_throughput(const std::string& model_name, Graph graph,
                                    bool quick) {
  const std::size_t devices = quick ? 32 : 256;
  const int frames = quick ? 4 : 8;

  // One recorded digest trace stands in for every device: the aggregator's
  // merge cost depends on layer count and frame count, not on which device
  // produced the digests.
  BuiltinOpResolver resolver;
  Interpreter interp(&graph, &resolver);
  MonitorOptions opts;
  opts.per_layer_digests = true;
  EdgeMLMonitor monitor(opts);
  monitor.observe(interp);
  for (int i = 0; i < frames; ++i) {
    interp.set_input(0, random_model_input(graph, kSeed + 100 + i));
    monitor.on_inf_start();
    interp.invoke();
    monitor.on_inf_stop(interp);
    monitor.next_frame();
  }
  Trace device_trace = monitor.take_trace();
  monitor.unobserve(interp);

  AggregateRow row;
  row.name = "drift/aggregate/" + model_name;
  row.devices = devices;
  row.frames = static_cast<std::size_t>(frames);
  row.trace_kb = device_trace.serialized_bytes() / 1024;

  DriftAggregator agg;
  agg.set_reference(device_trace);
  const auto merge_start = Clock::now();
  for (std::size_t d = 0; d < devices; ++d) {
    agg.add_trace("device-" + std::to_string(d), device_trace);
  }
  const double merge_s =
      std::chrono::duration<double>(Clock::now() - merge_start).count();
  const auto report_start = Clock::now();
  const FleetReport report = agg.report();
  row.report_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - report_start)
          .count();
  row.report_layers = report.layers.size();
  row.merge_us_per_trace = 1e6 * merge_s / static_cast<double>(devices);
  row.traces_per_sec = static_cast<double>(devices) / merge_s;
  row.frames_per_sec =
      static_cast<double>(devices * static_cast<std::size_t>(frames)) /
      merge_s;
  MLX_CHECK_EQ(report.devices, devices);
  return row;
}

int run(bool quick) {
  const ZooEntry* entry = nullptr;
  for (const ZooEntry& e : image_zoo()) {
    if (e.name == "mobilenet_v2_mini") entry = &e;
  }
  MLX_CHECK(entry != nullptr) << "mobilenet_v2_mini missing from the zoo";

  Graph f32_graph = convert_for_inference(entry->build(kSeed, 1).model);
  Graph int8_graph;
  {
    Graph g = convert_for_inference(entry->build(kSeed, 1).model);
    Calibrator calib(&g);
    for (int i = 0; i < 2; ++i) {
      calib.observe({random_model_input(g, kSeed + 200 + i)});
    }
    int8_graph = quantize_model(g, calib);
  }

  std::vector<OverheadRow> overhead;
  overhead.push_back(
      digest_overhead(entry->name, std::move(f32_graph), "f32", quick));
  overhead.push_back(
      digest_overhead(entry->name, std::move(int8_graph), "int8", quick));
  for (const OverheadRow& r : overhead) {
    std::fprintf(stderr,
                 "%-44s bare %8.1f us, digest %8.1f us (+%5.2f%%), raw "
                 "%8.1f us (+%5.1f%%)\n",
                 r.name.c_str(), r.bare_us, r.digest_us, r.overhead_pct,
                 r.raw_us, r.raw_overhead_pct);
  }

  Graph agg_graph = convert_for_inference(entry->build(kSeed, 1).model);
  AggregateRow agg = aggregation_throughput(entry->name, std::move(agg_graph),
                                            quick);
  std::fprintf(stderr,
               "%-44s %zu devices x %zu frames: %.1f traces/s, %.1f "
               "frames/s, report %.2f ms\n",
               agg.name.c_str(), agg.devices, agg.frames, agg.traces_per_sec,
               agg.frames_per_sec, agg.report_ms);

  std::printf("{\n");
  std::printf("  \"context\": {\n");
  std::printf("    \"executable\": \"bench_drift\",\n");
  std::printf("    \"quick\": %s\n", quick ? "true" : "false");
  std::printf("  },\n");
  std::printf("  \"benchmarks\": [\n");
  for (const OverheadRow& r : overhead) {
    std::printf("    {\n");
    std::printf("      \"name\": \"%s\",\n", r.name.c_str());
    std::printf("      \"run_type\": \"iteration\",\n");
    std::printf("      \"iterations\": %lld,\n",
                static_cast<long long>(r.invokes));
    std::printf("      \"real_time\": %.4f,\n", r.digest_us);
    std::printf("      \"cpu_time\": %.4f,\n", r.digest_us);
    std::printf("      \"time_unit\": \"us\",\n");
    std::printf("      \"layers\": %d,\n", r.layers);
    std::printf("      \"bare_us_per_invoke\": %.4f,\n", r.bare_us);
    std::printf("      \"digest_us_per_invoke\": %.4f,\n", r.digest_us);
    std::printf("      \"raw_us_per_invoke\": %.4f,\n", r.raw_us);
    std::printf("      \"digest_overhead_pct\": %.4f,\n", r.overhead_pct);
    std::printf("      \"raw_overhead_pct\": %.4f,\n", r.raw_overhead_pct);
    std::printf("      \"digest_frame_kb\": %.2f,\n", r.digest_frame_kb);
    std::printf("      \"raw_frame_kb\": %.2f\n", r.raw_frame_kb);
    std::printf("    },\n");
  }
  {
    const AggregateRow& r = agg;
    std::printf("    {\n");
    std::printf("      \"name\": \"%s\",\n", r.name.c_str());
    std::printf("      \"run_type\": \"iteration\",\n");
    std::printf("      \"iterations\": %zu,\n", r.devices);
    std::printf("      \"real_time\": %.4f,\n", r.merge_us_per_trace);
    std::printf("      \"cpu_time\": %.4f,\n", r.merge_us_per_trace);
    std::printf("      \"time_unit\": \"us\",\n");
    std::printf("      \"devices\": %zu,\n", r.devices);
    std::printf("      \"frames_per_device\": %zu,\n", r.frames);
    std::printf("      \"traces_per_sec\": %.2f,\n", r.traces_per_sec);
    std::printf("      \"frames_per_sec\": %.2f,\n", r.frames_per_sec);
    std::printf("      \"report_ms\": %.4f,\n", r.report_ms);
    std::printf("      \"report_layers\": %zu,\n", r.report_layers);
    std::printf("      \"device_trace_kb\": %zu\n", r.trace_kb);
    std::printf("    }\n");
  }
  std::printf("  ]\n}\n");
  return 0;
}

}  // namespace
}  // namespace mlexray

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }
  return mlexray::run(quick);
}
