// Table 4: per-layer-type latency of MobileNetV2-mini and MobileNetV3-mini
// across execution variants:
//   Mobile           — converted float, optimized kernels (measured, host)
//   Mobile Quant     — int8, optimized kernels (measured, host)
//   Mobile Quant Ref — int8, reference kernels (measured, host)
//   Emulator (x86)   — float, modeled with the x86-emulation profile
//
// Paper shape: reference kernels are orders of magnitude slower on conv /
// depthwise / pad; the emulator is pathological on float convolutions.
//
// The V3 table splits out the squeeze-excite elementwise groups (Add, Mul,
// Mean, Logistic, HSwish) that src/kernels/elementwise.h moved onto the
// integer-only Q31/LUT path, and verifies — via elementwise_pack_events() —
// that every int8 elementwise node in the plan was prepared by that family,
// i.e. no double-math reference elementwise remains on the int8 path.
#include "bench/bench_util.h"
#include "src/convert/converter.h"
#include "src/interpreter/device_profile.h"
#include "src/kernels/elementwise.h"
#include "src/models/trained_models.h"
#include "src/quant/quantizer.h"

#include <map>

namespace mlexray {
namespace {

constexpr int kInvokes = 5;

std::map<std::string, double> measure_by_group(const Graph& model,
                                               const OpResolver& resolver,
                                               const Tensor& input,
                                               int num_threads) {
  Interpreter interp(&model, &resolver, num_threads);
  interp.set_input(0, input);
  interp.invoke();  // warm-up
  std::map<std::string, double> totals;
  for (int i = 0; i < kInvokes; ++i) {
    interp.invoke();
    for (const Node& n : model.nodes) {
      if (n.type == OpType::kInput) continue;
      totals[op_latency_group(n.type)] +=
          interp.last_stats().per_node_ms[static_cast<std::size_t>(n.id)] /
          kInvokes;
    }
  }
  return totals;
}

std::map<std::string, double> modeled_by_group(const Graph& model,
                                               const DeviceProfile& profile) {
  std::map<std::string, double> totals;
  for (const Node& n : model.nodes) {
    if (n.type == OpType::kInput) continue;
    totals[op_latency_group(n.type)] += modeled_node_latency_ms(model, n, profile);
  }
  return totals;
}

bool is_elementwise_type(OpType type) {
  switch (type) {
    case OpType::kAdd:
    case OpType::kSub:
    case OpType::kMul:
    case OpType::kMean:
    case OpType::kSigmoid:
    case OpType::kHardSwish:
    case OpType::kTanh:
      return true;
    default:
      return false;
  }
}

int run_model(const char* checkpoint, const char* title) {
  bench::print_header(title, "ML-EXray Table 4");
  Graph ckpt = trained_image_checkpoint(checkpoint);
  Graph mobile = convert_for_inference(ckpt);
  ImagePipelineConfig correct{ckpt.input_spec, PreprocBug::kNone};
  auto sensors = SynthImageNet::make(1, 9200);
  Tensor input = run_image_pipeline(sensors[0].image_u8, correct);

  Calibrator calib(&mobile);
  for (const auto& s : SynthImageNet::make(4, 777)) {
    calib.observe({run_image_pipeline(s.image_u8, correct)});
  }
  Graph quant = quantize_model(mobile, calib);

  BuiltinOpResolver opt;
  RefOpResolver ref;

  // Integer-only verification: every int8 elementwise node must be
  // plan-prepared by the Q31/LUT family (the reference kernels have no
  // prepare hook, so a node falling back to double math would not tick
  // elementwise_pack_events() at plan construction).
  int elementwise_nodes = 0;
  for (const Node& n : quant.nodes) {
    if (is_elementwise_type(n.type)) ++elementwise_nodes;
  }
  const std::uint64_t probe = elementwise_pack_events();
  { Interpreter check(&quant, &opt); }
  const int prepared =
      static_cast<int>(elementwise_pack_events() - probe);

  auto float_opt = measure_by_group(mobile, opt, input, 2);
  auto quant_opt = measure_by_group(quant, opt, input, 2);
  auto quant_ref = measure_by_group(quant, ref, input, 1);
  auto emu = modeled_by_group(mobile, DeviceProfile::emulator_x86());

  // Layer counts per group.
  std::map<std::string, int> counts;
  for (const Node& n : mobile.nodes) {
    if (n.type != OpType::kInput) ++counts[op_latency_group(n.type)];
  }

  const char* order[] = {"D-Conv", "Conv",     "FC",      "Pool",
                         "Mean",   "Pad",      "Add",     "Mul",
                         "Logistic", "HSwish", "Tanh",    "Softmax",
                         "Quantize", "Other"};
  std::vector<std::vector<std::string>> rows;
  double t_fo = 0, t_qo = 0, t_qr = 0, t_em = 0;
  for (const char* group : order) {
    auto has = [&](std::map<std::string, double>& m) {
      return m.count(group) ? m[group] : 0.0;
    };
    double fo = has(float_opt), qo = has(quant_opt), qr = has(quant_ref),
           em = has(emu);
    if (fo == 0 && qo == 0 && qr == 0 && em == 0) continue;
    t_fo += fo;
    t_qo += qo;
    t_qr += qr;
    t_em += em;
    int count = counts.count(group) ? counts[group] : 0;
    rows.push_back({std::string(group) + "(" + std::to_string(count) + ")",
                    format_float(fo, 3), format_float(qo, 3),
                    format_float(qr, 3), format_float(em, 3)});
  }
  rows.push_back({"Total", format_float(t_fo, 3), format_float(t_qo, 3),
                  format_float(t_qr, 3), format_float(t_em, 3)});
  bench::print_table({"layer type", "Mobile (ms)", "Mobile Quant (ms)",
                      "Mobile Quant Ref (ms)", "Emulator x86 (ms, modeled)"},
                     rows);
  std::printf(
      "\nint8 elementwise nodes: %d, plan-prepared by the Q31/LUT family: %d\n",
      elementwise_nodes, prepared);
  if (prepared != elementwise_nodes) {
    std::printf(
        "ERROR: %d int8 elementwise node(s) fell back to double-math "
        "reference kernels on the int8 path\n",
        elementwise_nodes - prepared);
    return 1;
  }
  return 0;
}

int run() {
  int rc = run_model("mobilenet_v2_mini",
                     "Table 4 — latency by layer type (MobileNetV2-mini)");
  rc |= run_model(
      "mobilenet_v3_mini",
      "Table 4b — latency by layer type (MobileNetV3-mini, SE elementwise)");
  std::printf(
      "\nexpected shape: reference kernels are orders of magnitude slower on\n"
      "Conv/D-Conv/Pad; the x86 emulator is pathological on float convs\n"
      "(paper Table 4; Mobile/Quant columns measured on host). The V3 split\n"
      "shows the SE elementwise groups (Add/Mul/Mean/Logistic/HSwish) served\n"
      "by the integer-only Q31/LUT family, not reference double math.\n");
  return rc;
}

}  // namespace
}  // namespace mlexray

int main() { return mlexray::run(); }
