// Google-benchmark microbenchmarks of the kernel library: optimized vs
// reference resolvers on the op types Table 4 profiles. These quantify the
// per-op gap that the table aggregates per layer type.
#include <benchmark/benchmark.h>

#include "src/graph/builder.h"
#include "src/interpreter/interpreter.h"

namespace mlexray {
namespace {

enum class Variant { kOptFloat, kRefFloat };

Model conv_model(int size, int ch, int out_ch, OpType type) {
  Pcg32 rng(1);
  GraphBuilder b("m", &rng);
  int x = b.input(Shape{1, size, size, ch});
  switch (type) {
    case OpType::kConv2D:
      b.conv2d(x, out_ch, 3, 3, 1, Padding::kSame, Activation::kRelu, "op");
      break;
    case OpType::kDepthwiseConv2D:
      b.depthwise_conv2d(x, 3, 3, 1, Padding::kSame, Activation::kRelu, "op");
      break;
    case OpType::kFullyConnected:
      b.fully_connected(x, out_ch, Activation::kNone, "op");
      break;
    case OpType::kPad:
      b.pad(x, 1, 1, 1, 1, "op");
      break;
    default:
      MLX_FAIL() << "unsupported micro-bench op";
  }
  return b.finish({1});
}

void run_variant(benchmark::State& state, OpType type, bool reference) {
  const int size = static_cast<int>(state.range(0));
  const int ch = static_cast<int>(state.range(1));
  Model m = conv_model(size, ch, ch, type);
  RefOpResolver ref;
  BuiltinOpResolver opt;
  const OpResolver& resolver = reference ? static_cast<const OpResolver&>(ref)
                                         : static_cast<const OpResolver&>(opt);
  Interpreter interp(&m, &resolver, reference ? 1 : 2);
  Tensor input = Tensor::f32(Shape{1, size, size, ch});
  Pcg32 rng(2);
  float* p = input.data<float>();
  for (std::int64_t i = 0; i < input.num_elements(); ++i) p[i] = rng.uniform(-1, 1);
  interp.set_input(0, input);
  for (auto _ : state) {
    interp.invoke();
    benchmark::DoNotOptimize(interp.output(0).raw_data());
  }
}

void BM_Conv2D_Optimized(benchmark::State& s) { run_variant(s, OpType::kConv2D, false); }
void BM_Conv2D_Reference(benchmark::State& s) { run_variant(s, OpType::kConv2D, true); }
void BM_DwConv_Optimized(benchmark::State& s) { run_variant(s, OpType::kDepthwiseConv2D, false); }
void BM_DwConv_Reference(benchmark::State& s) { run_variant(s, OpType::kDepthwiseConv2D, true); }
void BM_Fc_Optimized(benchmark::State& s) { run_variant(s, OpType::kFullyConnected, false); }
void BM_Fc_Reference(benchmark::State& s) { run_variant(s, OpType::kFullyConnected, true); }
void BM_Pad_Optimized(benchmark::State& s) { run_variant(s, OpType::kPad, false); }
void BM_Pad_Reference(benchmark::State& s) { run_variant(s, OpType::kPad, true); }

BENCHMARK(BM_Conv2D_Optimized)->Args({16, 32})->Args({32, 16});
BENCHMARK(BM_Conv2D_Reference)->Args({16, 32})->Args({32, 16});
BENCHMARK(BM_DwConv_Optimized)->Args({16, 32});
BENCHMARK(BM_DwConv_Reference)->Args({16, 32});
BENCHMARK(BM_Fc_Optimized)->Args({16, 16});
BENCHMARK(BM_Fc_Reference)->Args({16, 16});
BENCHMARK(BM_Pad_Optimized)->Args({32, 16});
BENCHMARK(BM_Pad_Reference)->Args({32, 16});

}  // namespace
}  // namespace mlexray

BENCHMARK_MAIN();
