// Google-benchmark microbenchmarks of the kernel library: optimized vs
// reference resolvers on the op types Table 4 profiles, float and int8.
// These quantify the per-op gap that the table aggregates per layer type.
//
// The BM_Gemm* group benches the GEMM core directly at the Table-4
// equivalent shapes: prepacked panels vs per-call repack (f32) and the
// widening SIMD dot-product microkernel vs the scalar register-blocked path
// (int8) — the two plan-time-packing wins, isolated from interpreter
// overhead.
#include <benchmark/benchmark.h>

#include <vector>

#include "src/graph/builder.h"
#include "src/interpreter/interpreter.h"
#include "src/kernels/dwconv.h"
#include "src/kernels/elementwise.h"
#include "src/kernels/fixed_point.h"
#include "src/kernels/gemm.h"
#include "src/quant/quantizer.h"

namespace mlexray {
namespace {

Graph conv_model(int size, int ch, int out_ch, OpType type, int stride = 1) {
  Pcg32 rng(1);
  GraphBuilder b("m", &rng);
  int x = b.input(Shape{1, size, size, ch});
  switch (type) {
    case OpType::kConv2D:
      b.conv2d(x, out_ch, 3, 3, stride, Padding::kSame, Activation::kRelu,
               "op");
      break;
    case OpType::kDepthwiseConv2D:
      b.depthwise_conv2d(x, 3, 3, stride, Padding::kSame, Activation::kRelu,
                         "op");
      break;
    case OpType::kFullyConnected:
      b.fully_connected(x, out_ch, Activation::kNone, "op");
      break;
    case OpType::kPad:
      b.pad(x, 1, 1, 1, 1, "op");
      break;
    default:
      MLX_FAIL() << "unsupported micro-bench op";
  }
  return b.finish({1});
}

Tensor random_input(int size, int ch, std::uint64_t seed) {
  Tensor input = Tensor::f32(Shape{1, size, size, ch});
  Pcg32 rng(seed);
  float* p = input.data<float>();
  for (std::int64_t i = 0; i < input.num_elements(); ++i) {
    p[i] = rng.uniform(-1, 1);
  }
  return input;
}

void run_variant(benchmark::State& state, OpType type, bool reference,
                 bool quantized = false, int stride = 1) {
  const int size = static_cast<int>(state.range(0));
  const int ch = static_cast<int>(state.range(1));
  Graph m = conv_model(size, ch, ch, type, stride);
  Graph qm;
  if (quantized) {
    Calibrator calib(&m);
    for (int i = 0; i < 4; ++i) calib.observe({random_input(size, ch, 10 + i)});
    qm = quantize_model(m, calib);
  }
  const Graph& bench_model = quantized ? qm : m;
  RefOpResolver ref;
  BuiltinOpResolver opt;
  const OpResolver& resolver = reference ? static_cast<const OpResolver&>(ref)
                                         : static_cast<const OpResolver&>(opt);
  Interpreter interp(&bench_model, &resolver, reference ? 1 : 2);
  interp.set_input(0, random_input(size, ch, 2));
  for (auto _ : state) {
    interp.invoke();
    benchmark::DoNotOptimize(interp.output(0).raw_data());
  }
}

void BM_Conv2D_Optimized(benchmark::State& s) { run_variant(s, OpType::kConv2D, false); }
void BM_Conv2D_Reference(benchmark::State& s) { run_variant(s, OpType::kConv2D, true); }
void BM_DwConv_Optimized(benchmark::State& s) { run_variant(s, OpType::kDepthwiseConv2D, false); }
void BM_DwConv_Reference(benchmark::State& s) { run_variant(s, OpType::kDepthwiseConv2D, true); }
void BM_Fc_Optimized(benchmark::State& s) { run_variant(s, OpType::kFullyConnected, false); }
void BM_Fc_Reference(benchmark::State& s) { run_variant(s, OpType::kFullyConnected, true); }
void BM_Pad_Optimized(benchmark::State& s) { run_variant(s, OpType::kPad, false); }
void BM_Pad_Reference(benchmark::State& s) { run_variant(s, OpType::kPad, true); }
void BM_Conv2D_OptimizedInt8(benchmark::State& s) { run_variant(s, OpType::kConv2D, false, true); }
void BM_Conv2D_ReferenceInt8(benchmark::State& s) { run_variant(s, OpType::kConv2D, true, true); }
void BM_DwConv_OptimizedInt8(benchmark::State& s) { run_variant(s, OpType::kDepthwiseConv2D, false, true); }
void BM_DwConv_ReferenceInt8(benchmark::State& s) { run_variant(s, OpType::kDepthwiseConv2D, true, true); }
void BM_DwConv_OptimizedInt8_S2(benchmark::State& s) { run_variant(s, OpType::kDepthwiseConv2D, false, true, /*stride=*/2); }
void BM_Fc_OptimizedInt8(benchmark::State& s) { run_variant(s, OpType::kFullyConnected, false, true); }
void BM_Fc_ReferenceInt8(benchmark::State& s) { run_variant(s, OpType::kFullyConnected, true, true); }

BENCHMARK(BM_Conv2D_Optimized)->Args({16, 32})->Args({32, 16});
BENCHMARK(BM_Conv2D_Reference)->Args({16, 32})->Args({32, 16});
BENCHMARK(BM_DwConv_Optimized)->Args({16, 32});
BENCHMARK(BM_DwConv_Reference)->Args({16, 32});
BENCHMARK(BM_Fc_Optimized)->Args({16, 16});
BENCHMARK(BM_Fc_Reference)->Args({16, 16});
BENCHMARK(BM_Pad_Optimized)->Args({32, 16});
BENCHMARK(BM_Pad_Reference)->Args({32, 16});
BENCHMARK(BM_Conv2D_OptimizedInt8)->Args({16, 32})->Args({32, 16});
BENCHMARK(BM_Conv2D_ReferenceInt8)->Args({16, 32})->Args({32, 16});
// Table-4 dwconv shapes: the MobileNet-mini stem/mid/late layer geometries
// (image x channels), stride 1 and the stride-2 downsampling blocks.
BENCHMARK(BM_DwConv_OptimizedInt8)->Args({16, 32})->Args({32, 16})->Args({8, 128});
BENCHMARK(BM_DwConv_ReferenceInt8)->Args({16, 32})->Args({32, 16})->Args({8, 128});
BENCHMARK(BM_DwConv_OptimizedInt8_S2)->Args({16, 32});
BENCHMARK(BM_Fc_OptimizedInt8)->Args({16, 16});
BENCHMARK(BM_Fc_ReferenceInt8)->Args({16, 16});

// --- GEMM core: prepacked vs per-call paths at Table-4 shapes --------------
// Args are the GEMM problem (m, n, k): Conv2D 16x16x32 3x3 -> (256, 32,
// 288), Conv2D 32x32x16 3x3 -> (1024, 16, 144), batch-1 FC 4096->16 ->
// (1, 16, 4096). Single-threaded so the kernel difference is undiluted.

struct GemmProblem {
  std::int64_t m, n, k;
  std::vector<float> a_f32, b_f32, bias_f32, c_f32;
  std::vector<std::int8_t> a_i8, b_i8, c_i8;
  std::vector<std::int32_t> bias_i32, multipliers;
  std::vector<int> shifts;
  GemmQuant quant;

  GemmProblem(std::int64_t m_in, std::int64_t n_in, std::int64_t k_in)
      : m(m_in), n(n_in), k(k_in) {
    Pcg32 rng(7);
    a_f32.resize(static_cast<std::size_t>(m * k));
    b_f32.resize(static_cast<std::size_t>(n * k));
    bias_f32.resize(static_cast<std::size_t>(n));
    c_f32.resize(static_cast<std::size_t>(m * n));
    for (float& v : a_f32) v = rng.uniform(-1, 1);
    for (float& v : b_f32) v = rng.uniform(-1, 1);
    for (float& v : bias_f32) v = rng.uniform(-1, 1);
    a_i8.resize(a_f32.size());
    b_i8.resize(b_f32.size());
    c_i8.resize(c_f32.size());
    for (auto& v : a_i8) v = static_cast<std::int8_t>(static_cast<int>(rng.next_below(255)) - 127);
    for (auto& v : b_i8) v = static_cast<std::int8_t>(static_cast<int>(rng.next_below(255)) - 127);
    bias_i32.resize(static_cast<std::size_t>(n));
    multipliers.resize(static_cast<std::size_t>(n));
    shifts.resize(static_cast<std::size_t>(n));
    for (std::size_t j = 0; j < static_cast<std::size_t>(n); ++j) {
      bias_i32[j] = static_cast<std::int32_t>(rng.next_below(512)) - 256;
      quantize_multiplier(0.0037, &multipliers[j], &shifts[j]);
    }
    quant.a_zero_point = 3;
    quant.bias = bias_i32.data();
    quant.multipliers = multipliers.data();
    quant.shifts = shifts.data();
    quant.out_zero_point = -5;
  }
};

void BM_GemmF32_Prepacked(benchmark::State& state) {
  GemmProblem p(state.range(0), state.range(1), state.range(2));
  std::vector<float> panels(
      static_cast<std::size_t>(packed_b_f32_floats(p.n, p.k)));
  pack_b_f32(p.n, p.k, p.b_f32.data(), p.k, panels.data());
  PackedBF32 packed{panels.data(), p.n / kGemmNrF32};
  for (auto _ : state) {
    gemm_f32_nt(p.m, p.n, p.k, p.a_f32.data(), p.k, p.b_f32.data(), p.k,
                p.bias_f32.data(), Activation::kNone, p.c_f32.data(), p.n,
                nullptr, nullptr, &packed);
    benchmark::DoNotOptimize(p.c_f32.data());
  }
}

void BM_GemmF32_RepackEachCall(benchmark::State& state) {
  GemmProblem p(state.range(0), state.range(1), state.range(2));
  ScratchArena arena;
  for (auto _ : state) {
    arena.reset();
    gemm_f32_nt(p.m, p.n, p.k, p.a_f32.data(), p.k, p.b_f32.data(), p.k,
                p.bias_f32.data(), Activation::kNone, p.c_f32.data(), p.n,
                nullptr, &arena);
    benchmark::DoNotOptimize(p.c_f32.data());
  }
}

void BM_GemmI8_PackedVec(benchmark::State& state) {
  GemmProblem p(state.range(0), state.range(1), state.range(2));
  std::vector<std::int8_t> panels(
      static_cast<std::size_t>(packed_b_i8_bytes(p.n, p.k)));
  std::vector<std::int32_t> col_sums(static_cast<std::size_t>(p.n));
  pack_b_i8(p.n, p.k, p.b_i8.data(), p.k, panels.data(), col_sums.data());
  PackedBI8 packed{panels.data(), col_sums.data()};
  for (auto _ : state) {
    gemm_i8_nt(p.m, p.n, p.k, p.a_i8.data(), p.k, p.b_i8.data(), p.k, p.quant,
               p.c_i8.data(), p.n, nullptr, &packed);
    benchmark::DoNotOptimize(p.c_i8.data());
  }
}

// The PR-1 int8 path: scalar register-blocked tiles over raw B rows.
void BM_GemmI8_Scalar(benchmark::State& state) {
  GemmProblem p(state.range(0), state.range(1), state.range(2));
  for (auto _ : state) {
    gemm_i8_nt(p.m, p.n, p.k, p.a_i8.data(), p.k, p.b_i8.data(), p.k, p.quant,
               p.c_i8.data(), p.n, nullptr);
    benchmark::DoNotOptimize(p.c_i8.data());
  }
}

BENCHMARK(BM_GemmF32_Prepacked)->Args({256, 32, 288})->Args({1024, 16, 144})->Args({1, 16, 4096});
BENCHMARK(BM_GemmF32_RepackEachCall)->Args({256, 32, 288})->Args({1024, 16, 144})->Args({1, 16, 4096});
// (256, 32, 32) is the MobileNet 1x1 pointwise shape where the pair
// microkernel's reduction-free epilogue matters most; (1, 16, 4096) and
// (1, 1001, 1024) are the batch-1 FC matvec shapes served by the k-major
// m==1 dispatch (raw B rows, one widened A chunk reused across columns).
BENCHMARK(BM_GemmI8_PackedVec)->Args({256, 32, 288})->Args({1024, 16, 144})->Args({1, 16, 4096})->Args({256, 32, 32})->Args({1, 1001, 1024});
BENCHMARK(BM_GemmI8_Scalar)->Args({256, 32, 288})->Args({1024, 16, 144})->Args({1, 16, 4096})->Args({256, 32, 32})->Args({1, 1001, 1024});

// --- dwconv compute tiers at a Table-4 shape -------------------------------
// Same int8 dwconv graph under each forced tier (src/kernels/dwconv.h):
// quantifies the channel-vectorization win in isolation, and keeps a
// regression guard on the tier dispatch itself.

void run_dwconv_tier(benchmark::State& state, DwConvTier tier) {
  set_dwconv_tier_for_testing(tier);
  run_variant(state, OpType::kDepthwiseConv2D, /*reference=*/false,
              /*quantized=*/true);
  set_dwconv_tier_for_testing(DwConvTier::kAuto);
}

void BM_DwConvI8_TierAuto(benchmark::State& s) { run_dwconv_tier(s, DwConvTier::kAuto); }
void BM_DwConvI8_TierGeneric(benchmark::State& s) { run_dwconv_tier(s, DwConvTier::kGenericVector); }
void BM_DwConvI8_TierScalar(benchmark::State& s) { run_dwconv_tier(s, DwConvTier::kScalar); }

BENCHMARK(BM_DwConvI8_TierAuto)->Args({16, 64});
BENCHMARK(BM_DwConvI8_TierGeneric)->Args({16, 64});
BENCHMARK(BM_DwConvI8_TierScalar)->Args({16, 64});

// --- int8 elementwise family at MobileNetV3-mini SE shapes -----------------
// The squeeze-excite ops the elementwise family (src/kernels/elementwise.h)
// moved off the double-math reference path: residual Add, the [N,1,1,C]
// broadcast Mul gate, global Mean, and the standalone Logistic / HardSwish
// LUT activations. Optimized-vs-reference pairs quantify the per-op win the
// Table-4 split aggregates; forced-tier variants isolate the 8-lane
// vectorization from the plan-time Q31/LUT prep.

enum class EwBenchOp { kAdd, kMulGate, kMean, kLogistic, kHardSwish };

Graph ew_model(int size, int ch, EwBenchOp op) {
  Pcg32 rng(1);
  GraphBuilder b("m", &rng);
  int x = b.input(Shape{1, size, size, ch});
  switch (op) {
    case EwBenchOp::kAdd:
      b.add(x, b.input(Shape{1, size, size, ch}, DType::kF32, "g"),
            Activation::kNone, "op");
      break;
    case EwBenchOp::kMulGate:
      b.mul(x, b.input(Shape{1, 1, 1, ch}, DType::kF32, "g"), "op");
      break;
    case EwBenchOp::kMean: b.mean(x, "op"); break;
    case EwBenchOp::kLogistic: b.sigmoid(x, "op"); break;
    case EwBenchOp::kHardSwish: b.hardswish(x, "op"); break;
  }
  return b.finish({op == EwBenchOp::kAdd || op == EwBenchOp::kMulGate ? 2 : 1});
}

Tensor random_shaped(Shape shape, std::uint64_t seed) {
  Tensor t = Tensor::f32(shape);
  Pcg32 rng(seed);
  float* p = t.data<float>();
  for (std::int64_t i = 0; i < t.num_elements(); ++i) p[i] = rng.uniform(-1, 1);
  return t;
}

void run_ew_variant(benchmark::State& state, EwBenchOp op, bool reference) {
  const int size = static_cast<int>(state.range(0));
  const int ch = static_cast<int>(state.range(1));
  Graph m = ew_model(size, ch, op);
  const bool binary = op == EwBenchOp::kAdd || op == EwBenchOp::kMulGate;
  const Shape gate_shape = op == EwBenchOp::kMulGate
                               ? Shape{1, 1, 1, ch}
                               : Shape{1, size, size, ch};
  Calibrator calib(&m);
  for (int i = 0; i < 4; ++i) {
    if (binary) {
      calib.observe({random_shaped(Shape{1, size, size, ch}, 10 + static_cast<std::uint64_t>(i)),
                     random_shaped(gate_shape, 20 + static_cast<std::uint64_t>(i))});
    } else {
      calib.observe({random_shaped(Shape{1, size, size, ch}, 10 + static_cast<std::uint64_t>(i))});
    }
  }
  Graph qm = quantize_model(m, calib);
  RefOpResolver ref;
  BuiltinOpResolver opt;
  const OpResolver& resolver = reference ? static_cast<const OpResolver&>(ref)
                                         : static_cast<const OpResolver&>(opt);
  Interpreter interp(&qm, &resolver);
  interp.set_input(0, random_shaped(Shape{1, size, size, ch}, 2));
  if (binary) interp.set_input(1, random_shaped(gate_shape, 3));
  for (auto _ : state) {
    interp.invoke();
    benchmark::DoNotOptimize(interp.output(0).raw_data());
  }
}

void BM_ElemwiseAddI8_Optimized(benchmark::State& s) { run_ew_variant(s, EwBenchOp::kAdd, false); }
void BM_ElemwiseAddI8_Reference(benchmark::State& s) { run_ew_variant(s, EwBenchOp::kAdd, true); }
void BM_ElemwiseMulGateI8_Optimized(benchmark::State& s) { run_ew_variant(s, EwBenchOp::kMulGate, false); }
void BM_ElemwiseMulGateI8_Reference(benchmark::State& s) { run_ew_variant(s, EwBenchOp::kMulGate, true); }
void BM_ElemwiseMeanI8_Optimized(benchmark::State& s) { run_ew_variant(s, EwBenchOp::kMean, false); }
void BM_ElemwiseMeanI8_Reference(benchmark::State& s) { run_ew_variant(s, EwBenchOp::kMean, true); }
void BM_ElemwiseLogisticI8_Optimized(benchmark::State& s) { run_ew_variant(s, EwBenchOp::kLogistic, false); }
void BM_ElemwiseLogisticI8_Reference(benchmark::State& s) { run_ew_variant(s, EwBenchOp::kLogistic, true); }
void BM_ElemwiseHardSwishI8_Optimized(benchmark::State& s) { run_ew_variant(s, EwBenchOp::kHardSwish, false); }
void BM_ElemwiseHardSwishI8_Reference(benchmark::State& s) { run_ew_variant(s, EwBenchOp::kHardSwish, true); }

// V3-mini geometries: residual Add / HardSwish at the 16x16x24 mid blocks,
// the SE gate Mul and global Mean at the 8x8x96 late blocks, Logistic on
// the 1x1x96 SE bottleneck (tiny — dominated by dispatch, kept honest).
BENCHMARK(BM_ElemwiseAddI8_Optimized)->Args({16, 24})->Args({8, 96});
BENCHMARK(BM_ElemwiseAddI8_Reference)->Args({16, 24})->Args({8, 96});
BENCHMARK(BM_ElemwiseMulGateI8_Optimized)->Args({16, 24})->Args({8, 96});
BENCHMARK(BM_ElemwiseMulGateI8_Reference)->Args({16, 24})->Args({8, 96});
BENCHMARK(BM_ElemwiseMeanI8_Optimized)->Args({8, 96});
BENCHMARK(BM_ElemwiseMeanI8_Reference)->Args({8, 96});
BENCHMARK(BM_ElemwiseLogisticI8_Optimized)->Args({16, 64})->Args({1, 96});
BENCHMARK(BM_ElemwiseLogisticI8_Reference)->Args({16, 64})->Args({1, 96});
BENCHMARK(BM_ElemwiseHardSwishI8_Optimized)->Args({16, 24});
BENCHMARK(BM_ElemwiseHardSwishI8_Reference)->Args({16, 24});

// Forced compute tiers on the widest SE pattern (broadcast Mul + Add):
// regression guard on the tier dispatch and the vector-vs-scalar gap.
void run_ew_tier(benchmark::State& state, EwBenchOp op, ElementwiseTier tier) {
  set_elementwise_tier_for_testing(tier);
  run_ew_variant(state, op, /*reference=*/false);
  set_elementwise_tier_for_testing(ElementwiseTier::kAuto);
}

void BM_ElemwiseAddI8_TierAuto(benchmark::State& s) { run_ew_tier(s, EwBenchOp::kAdd, ElementwiseTier::kAuto); }
void BM_ElemwiseAddI8_TierGeneric(benchmark::State& s) { run_ew_tier(s, EwBenchOp::kAdd, ElementwiseTier::kGenericVector); }
void BM_ElemwiseAddI8_TierScalar(benchmark::State& s) { run_ew_tier(s, EwBenchOp::kAdd, ElementwiseTier::kScalar); }
void BM_ElemwiseMulGateI8_TierAuto(benchmark::State& s) { run_ew_tier(s, EwBenchOp::kMulGate, ElementwiseTier::kAuto); }
void BM_ElemwiseMulGateI8_TierGeneric(benchmark::State& s) { run_ew_tier(s, EwBenchOp::kMulGate, ElementwiseTier::kGenericVector); }
void BM_ElemwiseMulGateI8_TierScalar(benchmark::State& s) { run_ew_tier(s, EwBenchOp::kMulGate, ElementwiseTier::kScalar); }

BENCHMARK(BM_ElemwiseAddI8_TierAuto)->Args({16, 64});
BENCHMARK(BM_ElemwiseAddI8_TierGeneric)->Args({16, 64});
BENCHMARK(BM_ElemwiseAddI8_TierScalar)->Args({16, 64});
BENCHMARK(BM_ElemwiseMulGateI8_TierAuto)->Args({16, 64});
BENCHMARK(BM_ElemwiseMulGateI8_TierGeneric)->Args({16, 64});
BENCHMARK(BM_ElemwiseMulGateI8_TierScalar)->Args({16, 64});

}  // namespace
}  // namespace mlexray

BENCHMARK_MAIN();
