// Figure 3: summary matrix — tasks x models x assertion coverage.
// Runs every task pipeline once under instrumentation and reports which
// validation dimensions (input preprocessing, quantization, system metrics)
// ML-EXray covers for it.
#include "bench/bench_util.h"
#include "src/convert/converter.h"
#include "src/core/assertions.h"
#include "src/core/pipelines.h"
#include "src/models/detection.h"
#include "src/models/segmentation.h"
#include "src/models/trained_models.h"
#include "src/quant/quantizer.h"

namespace mlexray {
namespace {

// Checks that the pipeline produces a trace with latency/memory telemetry.
bool system_metrics_ok(const Trace& trace) {
  return !trace.frames.empty() &&
         trace.frames[0].scalars.count(trace_keys::kInferenceLatencyMs) > 0 &&
         trace.frames[0].scalars.count(trace_keys::kPeakMemoryBytes) > 0;
}

// Checks that the model survives the full-integer quantization path.
bool quantization_ok(const Graph& checkpoint, const Tensor& sample) {
  try {
    Graph mobile = convert_for_inference(checkpoint);
    Calibrator calib(&mobile);
    calib.observe({sample});
    Graph quant = quantize_model(mobile, calib);
    RefOpResolver ref;
    Interpreter interp(&quant, &ref);
    interp.set_input(0, sample);
    interp.invoke();
    return true;
  } catch (const MlxError&) {
    return false;  // e.g. embedding models: int8 embedding unsupported
  }
}

int run() {
  bench::print_header("Fig 3 — task/model/assertion coverage matrix",
                      "ML-EXray Fig. 3");
  std::vector<std::vector<std::string>> rows;
  const char* kYes = "yes";
  const char* kNo = "-";

  // Image classification (all six zoo models share the image pipeline).
  {
    ZooModel zm = build_mobilenet_v2_mini(3);
    auto sensors = SynthImageNet::make(1, 42);
    sensors.resize(2);
    RefOpResolver ref;
    MonitorOptions opts;
    Trace trace = run_classification_playback(
        zm.model, ref, sensors, {zm.model.input_spec, PreprocBug::kNone},
        opts, "cls");
    Tensor sample = run_image_pipeline(sensors[0].image_u8,
                                       {zm.model.input_spec, PreprocBug::kNone});
    rows.push_back({"image classification",
                    "mobilenet v1/v2/v3, resnet50v2, inception, densenet121",
                    kYes, quantization_ok(zm.model, sample) ? kYes : kNo,
                    system_metrics_ok(trace) ? kYes : kNo});
  }
  // Object detection.
  {
    SsdModel ssd = build_ssd_mini("mobilenet", 3);
    auto scenes = SynthCoco::make(1, 42);
    Tensor sample = run_image_pipeline(
        scenes[0].image_u8, {ssd.model.input_spec, PreprocBug::kNone});
    rows.push_back({"object detection", "ssd (mobilenet/resnet backbones)",
                    kYes, quantization_ok(ssd.model, sample) ? kYes : kNo,
                    kYes});
  }
  // Segmentation.
  {
    ZooModel dl = build_deeplab_mini(3);
    auto scenes = SynthSeg::make(1, 42);
    Tensor sample = run_image_pipeline(
        scenes[0].image_u8, {dl.model.input_spec, PreprocBug::kNone});
    rows.push_back({"segmentation", "deeplab-mini", kYes,
                    quantization_ok(dl.model, sample) ? kYes : kNo, kYes});
  }
  // Speech.
  {
    ZooModel kws = build_kws_tiny_conv(3);
    auto waves = SynthSpeech::make(1, 42);
    waves.resize(2);
    RefOpResolver ref;
    MonitorOptions opts;
    AudioPipelineConfig correct;
    Trace trace = run_speech_playback(kws.model, ref, waves, correct, opts, "kws");
    Tensor sample = run_audio_pipeline(waves[0].wave, correct);
    rows.push_back({"speech recognition", "kws tiny/low-latency conv",
                    kYes, quantization_ok(kws.model, sample) ? kYes : kNo,
                    system_metrics_ok(trace) ? kYes : kNo});
  }
  // Text.
  {
    ZooModel nnlm = build_nnlm_mini(3, 64, 16);
    Tensor tokens = Tensor::i32(Shape{1, 16});
    rows.push_back({"text classification", "nnlm-mini, mobilebert-mini",
                    kYes, quantization_ok(nnlm.model, tokens) ? kYes : kNo,
                    kYes});
  }
  bench::print_table({"task", "models", "input preprocessing asserts",
                      "quantization validation", "latency/memory metrics"},
                     rows);
  std::printf(
      "\nnote: int8 embedding lookup is unsupported (as in production edge\n"
      "stacks), so text models validate in float only.\n");
  return 0;
}

}  // namespace
}  // namespace mlexray

int main() { return mlexray::run(); }
