// Figure 4(a): image-classification Top-1 accuracy under one injected
// preprocessing bug at a time (Mobile float deployment), across the zoo.
//
// Paper shape: rotation is the most severe (21-39% drop), normalization and
// channel order mid-severity (up to ~20% / 7-19%), resize the mildest (1-3%).
#include "bench/bench_util.h"
#include "src/convert/converter.h"
#include "src/models/trained_models.h"

namespace mlexray {
namespace {

int run() {
  bench::print_header("Fig 4a — preprocessing bugs vs classification accuracy",
                      "ML-EXray Fig. 4(a)");
  auto test = SynthImageNet::make(StandardData::kImageTestPerClass,
                                  StandardData::kImageTestSeed);
  const PreprocBug bugs[] = {PreprocBug::kNone, PreprocBug::kWrongResize,
                             PreprocBug::kWrongChannelOrder,
                             PreprocBug::kWrongNormalization,
                             PreprocBug::kRotated90};
  std::vector<std::vector<std::string>> rows;
  BuiltinOpResolver opt;
  for (const ZooEntry& entry : image_zoo()) {
    Graph ckpt = trained_image_checkpoint(entry.name);
    Graph mobile = convert_for_inference(ckpt);
    std::vector<std::string> row{entry.name};
    for (PreprocBug bug : bugs) {
      ImagePipelineConfig cfg{ckpt.input_spec, bug};
      auto examples = imagenet_examples(test, cfg);
      row.push_back(bench::pct(evaluate_classifier(mobile, opt, examples)));
    }
    rows.push_back(std::move(row));
  }
  bench::print_table({"model", "Mobile(correct)", "Resize", "Channel",
                      "Normalization", "Rotation"},
                     rows);
  std::printf(
      "\nexpected shape: Rotation worst, Normalization/Channel mid,\n"
      "Resize mildest (paper Fig 4a).\n");
  return 0;
}

}  // namespace
}  // namespace mlexray

int main() { return mlexray::run(); }
