#!/usr/bin/env bash
# Runs the kernel microbenchmarks and records machine-readable results.
#
# The perf trajectory of the kernel library lives in BENCH_*.json files at
# the repo root: run this after a kernel/interpreter change and commit the
# refreshed JSON alongside it, so regressions are visible in review instead
# of discovered later.
#
# Usage: bench/run_benches.sh [build_dir] [output_dir]
#   build_dir   defaults to ./build
#   output_dir  defaults to the repo root
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-${repo_root}/build}"
out_dir="${2:-${repo_root}}"

if [[ ! -x "${build_dir}/bench_kernels_micro" ]]; then
  echo "bench_kernels_micro not found in ${build_dir}; build first:" >&2
  echo "  cmake -B build -S . && cmake --build build -j" >&2
  exit 1
fi

echo "== kernel microbenchmarks (Table 4 shapes) =="
"${build_dir}/bench_kernels_micro" \
  --benchmark_format=json \
  --benchmark_min_time=0.2 \
  > "${out_dir}/BENCH_kernels_micro.json"
echo "wrote ${out_dir}/BENCH_kernels_micro.json"

# Human-readable digest for the console.
python3 - "$out_dir/BENCH_kernels_micro.json" <<'EOF' || true
import json, sys
with open(sys.argv[1]) as f:
    data = json.load(f)
print(f"{'benchmark':40s} {'wall':>12s}")
for b in data.get("benchmarks", []):
    print(f"{b['name']:40s} {b['real_time']:10.0f} {b['time_unit']}")
EOF
