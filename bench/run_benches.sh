#!/usr/bin/env bash
# Runs the kernel microbenchmarks + end-to-end model benchmarks and records
# machine-readable results.
#
# The perf trajectory of the kernel library lives in BENCH_*.json files at
# the repo root: run this after a kernel/interpreter change and commit the
# refreshed JSON alongside it, so regressions are visible in review instead
# of discovered later.
#
# Benchmark numbers are only meaningful from a Release build. Configure with:
#   cmake -B build -S . -DCMAKE_BUILD_TYPE=Release && cmake --build build -j
# (Release is the default build type and carries "-O3 -DNDEBUG".) This script
# refuses to record numbers from any other build type — for the project code
# (CMakeCache check below) AND for the benchmark library itself: the
# "library_build_type" context field now comes from the in-tree minibench
# build (third_party/minibench, compiled with the project's Release flags)
# and must read "release"; the Debian-prebuilt libbenchmark it replaced was
# a debug build and stamped library_build_type=debug into every recorded
# JSON. The "mlexray_build_type" field is injected by this script after
# checking CMakeCache.
#
# Usage: bench/run_benches.sh [build_dir] [output_dir]
#   build_dir   defaults to ./build
#   output_dir  defaults to the repo root
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-${repo_root}/build}"
out_dir="${2:-${repo_root}}"

# python3 stamps the verified build type into the JSONs below; check before
# running anything so a missing interpreter can't abort mid-way and leave a
# freshly overwritten but unstamped BENCH_*.json behind.
if ! command -v python3 > /dev/null; then
  echo "error: python3 is required to stamp and digest the benchmark JSON" >&2
  exit 1
fi

# --- refuse non-Release builds ---------------------------------------------
cache="${build_dir}/CMakeCache.txt"
if [[ ! -f "${cache}" ]]; then
  echo "error: ${cache} not found; configure first:" >&2
  echo "  cmake -B build -S . -DCMAKE_BUILD_TYPE=Release" >&2
  exit 1
fi
build_type="$(sed -n 's/^CMAKE_BUILD_TYPE:[A-Z]*=//p' "${cache}")"
if [[ "${build_type}" != "Release" ]]; then
  echo "error: build dir '${build_dir}' has CMAKE_BUILD_TYPE='${build_type}'," >&2
  echo "refusing to record benchmark numbers from a non-Release build." >&2
  echo "Reconfigure with: cmake -B build -S . -DCMAKE_BUILD_TYPE=Release" >&2
  exit 1
fi

for bin in bench_kernels_micro bench_models_e2e bench_monitor_overhead \
           bench_serving bench_drift; do
  if [[ ! -x "${build_dir}/${bin}" ]]; then
    echo "${bin} not found in ${build_dir}; build first:" >&2
    echo "  cmake -B build -S . && cmake --build build -j" >&2
    exit 1
  fi
done

# Stamps the verified build type into the benchmark JSON context and prints
# a human-readable digest. Refuses a debug-built benchmark library: timing
# through a debug timing layer is as meaningless as timing debug kernels.
digest() {
  python3 - "$1" "${build_type}" <<'EOF'
import json, sys
path, build_type = sys.argv[1], sys.argv[2]
with open(path) as f:
    data = json.load(f)
lib_build = data.get("context", {}).get("library_build_type")
if lib_build is not None and lib_build != "release":
    sys.exit(
        f"error: {path}: benchmark library_build_type is '{lib_build}', not "
        "'release' — rebuild (the in-tree minibench library inherits the "
        "project's Release flags; a debug timing library must not stamp "
        "recorded numbers)")
data.setdefault("context", {})["mlexray_build_type"] = build_type
with open(path, "w") as f:
    json.dump(data, f, indent=1)
    f.write("\n")
print(f"{'benchmark':44s} {'wall':>12s}")
for b in data.get("benchmarks", []):
    print(f"{b['name']:44s} {b['real_time']:10.0f} {b['time_unit']}")
EOF
}

echo "== kernel microbenchmarks (Table 4 shapes) =="
"${build_dir}/bench_kernels_micro" \
  --benchmark_format=json \
  --benchmark_min_time=0.2 \
  > "${out_dir}/BENCH_kernels_micro.json"
echo "wrote ${out_dir}/BENCH_kernels_micro.json"
digest "${out_dir}/BENCH_kernels_micro.json"

# Gates the end-to-end numbers before they replace the committed baseline:
#  - the integer-only elementwise path must keep mobilenet_v3_mini int8 at
#    least as fast as f32 at batch 1 (the PR-8 win: f32/int8 ratio >= 1.0);
#  - no int8 zoo row may regress more than 25% against the committed
#    BENCH_models_e2e.json (noise tolerance; real regressions are 2-10x).
# On violation the fresh JSON is discarded and the committed baseline stays
# in place — the script refuses to stamp a regression into the trajectory.
digest_models() {
  python3 - "$1" "$2" <<'EOF'
import json, os, sys
new_path, baseline_path = sys.argv[1], sys.argv[2]
with open(new_path) as f:
    new = json.load(f)
times = {b["name"]: b["real_time"] for b in new.get("benchmarks", [])}

ratios = {}
print(f"{'model':28s} {'f32 b1 us':>10s} {'int8 b1 us':>11s} {'f32/int8':>9s}")
for name, t in sorted(times.items()):
    parts = name.split("/")
    if len(parts) != 4 or parts[2] != "f32" or parts[3] != "b1":
        continue
    model = parts[1]
    int8_name = f"E2E/{model}/int8/b1"
    if int8_name not in times:
        continue
    ratios[model] = t / times[int8_name]
    print(f"{model:28s} {t:10.0f} {times[int8_name]:11.0f} {ratios[model]:8.2f}x")

v3 = ratios.get("mobilenet_v3_mini")
if v3 is None:
    sys.exit("error: mobilenet_v3_mini b1 rows missing from the e2e bench")
if v3 < 1.0:
    sys.exit(
        f"error: mobilenet_v3_mini int8 is slower than f32 at batch 1 "
        f"(f32/int8 = {v3:.2f}x < 1.0) — the integer-only elementwise path "
        "must keep quantized inference ahead; refusing to stamp")

if os.path.exists(baseline_path):
    with open(baseline_path) as f:
        base = {b["name"]: b["real_time"]
                for b in json.load(f).get("benchmarks", [])}
    regressions = [
        f"  {name}: {base[name]:.0f} -> {t:.0f} us ({t / base[name]:.2f}x)"
        for name, t in sorted(times.items())
        if "/int8/" in name and name in base and t > 1.25 * base[name]]
    if regressions:
        sys.exit("error: int8 rows regressed >25% vs the committed baseline "
                 "(refusing to stamp):\n" + "\n".join(regressions))

new.setdefault("context", {})["mlexray_int8_vs_f32_b1"] = ratios
with open(new_path, "w") as f:
    json.dump(new, f, indent=1)
    f.write("\n")
EOF
}

echo
echo "== end-to-end model benchmarks (batch 1/4/16, f32 + int8) =="
e2e_json="${out_dir}/BENCH_models_e2e.json"
e2e_fresh="$(mktemp "${out_dir}/.BENCH_models_e2e.XXXXXX.json")"
trap 'rm -f "${e2e_fresh}"' EXIT
"${build_dir}/bench_models_e2e" \
  --benchmark_format=json \
  --benchmark_min_time=0.1 \
  > "${e2e_fresh}"
digest_models "${e2e_fresh}" "${e2e_json}"
mv "${e2e_fresh}" "${e2e_json}"
echo "wrote ${e2e_json}"
digest "${e2e_json}"

# Pairs each instrumented mode with its bare baseline per model/dtype and
# stamps the overhead ratios into the JSON context (the paper's Table-2
# claim, tracked: per-layer latency capture should cost low single-digit
# percent over bare invoke).
digest_overhead() {
  python3 - "$1" <<'EOF'
import json, sys
path = sys.argv[1]
with open(path) as f:
    data = json.load(f)
times = {}
for b in data.get("benchmarks", []):
    _, model, dtype, mode = b["name"].split("/")
    times[(model, dtype, mode)] = b["real_time"]
overhead = {}
print(f"{'model/dtype':32s} {'bare us':>10s} {'io':>8s} {'latency':>8s} {'outputs':>8s}")
for (model, dtype, mode), t in sorted(times.items()):
    if mode != "bare":
        continue
    row = {}
    for m in ("io", "latency", "outputs"):
        if (model, dtype, m) in times:
            row[m] = times[(model, dtype, m)] / t - 1.0
    overhead[f"{model}/{dtype}"] = row
    cells = " ".join(f"{row.get(m, float('nan')) * 100:+7.1f}%" for m in ("io", "latency", "outputs"))
    print(f"{model + '/' + dtype:32s} {t:10.0f} {cells}")
data.setdefault("context", {})["mlexray_overhead_vs_bare"] = overhead
with open(path, "w") as f:
    json.dump(data, f, indent=1)
    f.write("\n")
EOF
}

echo
echo "== monitor overhead (bare vs io vs per-layer latency vs outputs) =="
"${build_dir}/bench_monitor_overhead" \
  --benchmark_format=json \
  --benchmark_min_time=0.1 \
  > "${out_dir}/BENCH_monitor_overhead.json"
echo "wrote ${out_dir}/BENCH_monitor_overhead.json"
digest "${out_dir}/BENCH_monitor_overhead.json"
digest_overhead "${out_dir}/BENCH_monitor_overhead.json"

# Summarizes invoke-throughput scaling per scenario/model/dtype relative to
# its one-thread row and stamps the ratios into the JSON context: serving/*
# rows scale in session count, mtmodel/* rows in the engine's kernel-thread
# cap (both asserted >= 1.2x at t2 on multi-core hosts). Prepared bytes
# must be constant in session count and no GEMM B panel may be re-packed
# while serving (the prepare-once/serve-many contract); fail loudly if the
# bench recorded otherwise. Multi-thread scaling itself is only *asserted*
# when the recorded hardware_concurrency offers real parallelism — on a
# single-core runner the sweep still runs (the concurrency correctness
# checks above stand) but the scaling factor is reported, not enforced.
#
# The openloop/* rows are the FrontDoor overload curve; the digest enforces
# the overload-safety contract: no request may *fail* at any offered load,
# the below-capacity point must have zero deadline violations (a transient
# OS stall on a busy host may still force a handful of proactive
# sheds/rejections — that is the front door refusing to serve late rather
# than missing deadlines, so those are bounded at 1%, not zero), every
# submitted request must be accounted for, and past the knee the excess
# must surface as typed sheds/rejections while the p99 of what was
# admitted stays within 2x the below-capacity p99.
digest_serving() {
  python3 - "$1" <<'EOF'
import json, sys
path = sys.argv[1]
with open(path) as f:
    data = json.load(f)
rows = {}
hotswap = []
openloop = []
for b in data.get("benchmarks", []):
    kind, model, dtype, t = b["name"].split("/")
    if kind == "hotswap":
        hotswap.append(b)
        continue
    if kind == "openloop":
        openloop.append(b)
        continue
    # serving/* rows sweep session count; mtmodel/* rows sweep the engine's
    # kernel-thread cap (sessions fixed) — keep the kind in the key so the
    # two sweeps of the same model/dtype never merge.
    rows.setdefault(f"{kind}/{model}/{dtype}", {})[int(t.lstrip("t"))] = b
hw = data.get("context", {}).get("hardware_concurrency", 1)
scaling = {}
print(f"{'model/dtype':32s} {'t1 inv/s':>10s}  scaling(t2,t4,...)  prepared_kb")
for key, by_t in sorted(rows.items()):
    base = by_t[min(by_t)]
    for b in by_t.values():
        assert b["gemm_b_pack_events_during_serve"] == 0, \
            f"{b['name']}: GEMM B panels re-packed while serving"
        assert b["prepared_kb"] == base["prepared_kb"], \
            f"{b['name']}: prepared bytes changed with session count"
    rel = {t: by_t[t]["invokes_per_second"] / base["invokes_per_second"]
           for t in sorted(by_t)}
    scaling[key] = rel
    if hw >= 2 and 2 in rel:
        if key.startswith("mtmodel/"):
            assert rel[2] >= 1.2, \
                f"{key}: t2 kernel-thread scaling {rel[2]:.2f}x < 1.2x on " \
                f"a {hw}-core host (concurrent parallel_for jobs " \
                "serializing on the engine pool?)"
        else:
            assert rel[2] >= 1.2, \
                f"{key}: t2 scaling {rel[2]:.2f}x < 1.2x on a {hw}-core " \
                "host (sessions are serializing on shared state?)"
    cells = ", ".join(f"t{t}:{r:.2f}x" for t, r in rel.items() if t != min(by_t))
    print(f"{key:32s} {base['invokes_per_second']:10.0f}  {cells:18s}  {base['prepared_kb']:.1f}")
if hw < 2:
    print(f"(hardware_concurrency={hw}: scaling factors reported, not asserted)")
curve = {}
base_p99 = None
for b in openloop:
    rejected = (b["rejected_queue_full"] + b["rejected_infeasible"]
                + b["rejected_breaker_open"])
    assert b["failed_requests"] == 0, \
        f"{b['name']}: requests failed under open-loop load"
    assert b["ok"] + b["shed"] + b["deadline_exceeded"] + b["unknown_model"] \
        + b["failed_requests"] + rejected == b["iterations"], \
        f"{b['name']}: request accounting does not close"
    if b["load_factor"] <= 0.5:
        assert b["deadline_exceeded"] == 0, \
            f"{b['name']}: deadline violations below capacity"
        assert b["shed"] + rejected <= max(2, 0.01 * b["iterations"]), \
            f"{b['name']}: {b['shed'] + rejected} drops below capacity " \
            "(more than a transient stall explains)"
        base_p99 = b["p99_us"]
    elif b["load_factor"] >= 2.0:
        assert base_p99 is not None and b["p99_us"] <= 2.0 * base_p99, \
            f"{b['name']}: admitted p99 {b['p99_us']:.0f}us exceeds 2x " \
            f"below-capacity p99 {base_p99:.0f}us"
        assert b["shed"] + rejected > 0, \
            f"{b['name']}: overload produced no sheds/rejections " \
            "(admission control not engaging)"
    curve[b["name"]] = {
        "offered_qps": b["offered_qps"],
        "achieved_qps": b["achieved_qps"],
        "p50_us": b["p50_us"],
        "p99_us": b["p99_us"],
        "deadline_ms": b["deadline_ms"],
        "ok": b["ok"],
        "shed": b["shed"],
        "rejected": rejected,
        "deadline_exceeded": b["deadline_exceeded"],
        "mean_batch_size": b["mean_batch_size"],
    }
    print(f"{b['name']:44s} offered {b['offered_qps']:7.0f} q/s "
          f"served {b['achieved_qps']:7.0f} q/s  p99 {b['p99_us']:7.0f}us  "
          f"shed+rej {b['shed'] + rejected}")
swap = {}
for b in hotswap:
    assert b["failed_requests"] == 0, \
        f"{b['name']}: requests failed during the hot swap"
    swap[b["name"]] = {
        "steady_p99_us": b["steady_p99_us"],
        "swap_window_p99_us": b["swap_window_p99_us"],
        "swap_load_ms": b["swap_load_ms"],
        "requests": b["iterations"],
        "failed_requests": b["failed_requests"],
    }
    print(f"{b['name']:32s} swap-window p99 {b['swap_window_p99_us']:.0f}us "
          f"(steady {b['steady_p99_us']:.0f}us), "
          f"load {b['swap_load_ms']:.1f}ms, 0 failed")
data.setdefault("context", {})["mlexray_serving_scaling"] = scaling
data["context"]["mlexray_openloop"] = curve
data["context"]["mlexray_hotswap"] = swap
with open(path, "w") as f:
    json.dump(data, f, indent=1)
    f.write("\n")
EOF
}

echo
echo "== concurrent serving (one Model, T threads x pooled sessions) =="
"${build_dir}/bench_serving" > "${out_dir}/BENCH_serving.json"
echo "wrote ${out_dir}/BENCH_serving.json"
digest "${out_dir}/BENCH_serving.json"
digest_serving "${out_dir}/BENCH_serving.json"

# Enforces the always-on capture budget: per-layer digest capture
# (moments + quantile sketch / int8 histogram in the observer path) must
# cost at most 15% over a bare invoke for every model/dtype row, or the
# fresh JSON is discarded and the committed baseline stays in place. The
# raw-trace overhead and aggregation throughput rows ride along for the
# trajectory but are informational.
digest_drift_gate() {
  python3 - "$1" <<'EOF'
import json, sys
path = sys.argv[1]
with open(path) as f:
    data = json.load(f)
overhead = {}
violations = []
print(f"{'model/dtype':36s} {'bare us':>9s} {'digest us':>10s} {'overhead':>9s}")
for b in data.get("benchmarks", []):
    parts = b["name"].split("/")
    if parts[:2] == ["drift", "digest_overhead"]:
        key = "/".join(parts[2:])
        pct = b["digest_overhead_pct"]
        overhead[key] = pct
        print(f"{key:36s} {b['bare_us_per_invoke']:9.1f} "
              f"{b['digest_us_per_invoke']:10.1f} {pct:+8.2f}%")
        if pct > 15.0:
            violations.append(f"  {b['name']}: +{pct:.2f}% > 15%")
    elif parts[:2] == ["drift", "aggregate"]:
        print(f"{b['name']:36s} {b['devices']} devices x "
              f"{b['frames_per_device']} frames: "
              f"{b['frames_per_sec']:.0f} frames/s, "
              f"report {b['report_ms']:.1f} ms")
if not overhead:
    sys.exit("error: no drift/digest_overhead rows in the drift bench")
if violations:
    sys.exit("error: digest capture exceeds the 15% always-on budget "
             "(refusing to stamp):\n" + "\n".join(violations))
data.setdefault("context", {})["mlexray_digest_overhead_pct"] = overhead
with open(path, "w") as f:
    json.dump(data, f, indent=1)
    f.write("\n")
EOF
}

echo
echo "== drift digest capture overhead + fleet aggregation =="
drift_json="${out_dir}/BENCH_drift.json"
drift_fresh="$(mktemp "${out_dir}/.BENCH_drift.XXXXXX.json")"
trap 'rm -f "${e2e_fresh}" "${drift_fresh}"' EXIT
"${build_dir}/bench_drift" > "${drift_fresh}"
digest_drift_gate "${drift_fresh}"
mv "${drift_fresh}" "${drift_json}"
echo "wrote ${drift_json}"
digest "${drift_json}"
