// Figure 6: per-layer normalized rMSE of the quantized model against the
// float baseline, for MobileNetV2-mini and V3-mini, under both resolvers.
//
// Paper shape: with the as-shipped optimized resolver, rMSE jumps at the
// FIRST DepthwiseConv2D layer (v2: 2nd layer; v3: 13th); with the as-shipped
// reference resolver, V3 shows peaks at every squeeze-excite AvgPool2D.
#include "bench/bench_util.h"
#include "src/convert/converter.h"
#include "src/core/pipelines.h"
#include "src/core/validation.h"
#include "src/models/trained_models.h"
#include "src/quant/quantizer.h"

namespace mlexray {
namespace {

void run_model(const std::string& name) {
  Graph ckpt = trained_image_checkpoint(name);
  Graph mobile = convert_for_inference(ckpt);
  ImagePipelineConfig correct{ckpt.input_spec, PreprocBug::kNone};
  auto sensors = SynthImageNet::make(2, 4242);

  Calibrator calib(&mobile);
  for (const auto& s : SynthImageNet::make(8, 777)) {
    calib.observe({run_image_pipeline(s.image_u8, correct)});
  }
  Graph quant = quantize_model(mobile, calib);

  MonitorOptions opts;
  opts.per_layer_outputs = true;
  RefOpResolver ref_fixed;
  BuiltinOpResolver opt_shipped(KernelBugConfig::as_shipped());
  RefOpResolver ref_shipped(KernelBugConfig::as_shipped());

  Trace baseline = run_classification_playback(mobile, ref_fixed, sensors,
                                               correct, opts, "baseline");
  Trace quant_opt = run_classification_playback(quant, opt_shipped, sensors,
                                                correct, opts, "quant-opt");
  Trace quant_ref = run_classification_playback(quant, ref_shipped, sensors,
                                                correct, opts, "quant-ref");

  DeploymentValidator validator;
  PerLayerReport opt_report = validator.per_layer_drift(quant_opt, baseline);
  PerLayerReport ref_report = validator.per_layer_drift(quant_ref, baseline);

  std::printf("\n--- %s: normalized rMSE per layer (quant vs float baseline)\n",
              name.c_str());
  std::vector<std::vector<std::string>> rows;
  for (std::size_t i = 0; i < opt_report.drifts.size(); ++i) {
    const LayerDrift& o = opt_report.drifts[i];
    const LayerDrift& r = ref_report.drifts[i];
    std::string flag;
    if (o.suspect) flag += " <-- OpResolver drift";
    if (r.suspect) flag += " <-- RefOpResolver drift";
    rows.push_back({std::to_string(i), o.layer, format_float(o.error, 4),
                    format_float(r.error, 4), flag});
  }
  bench::print_table({"#", "layer", "Mobile Quant", "Mobile Quant Ref", ""},
                     rows);
  if (opt_report.first_suspect) {
    std::printf("OpResolver first suspect layer:    %s\n",
                opt_report.first_suspect->c_str());
  }
  if (ref_report.first_suspect) {
    std::printf("RefOpResolver first suspect layer: %s\n",
                ref_report.first_suspect->c_str());
  }
}

int run() {
  bench::print_header("Fig 6 — per-layer normalized rMSE localisation",
                      "ML-EXray Fig. 6 (left: v2, right: v3)");
  run_model("mobilenet_v2_mini");
  run_model("mobilenet_v3_mini");
  std::printf(
      "\nexpected shape: OpResolver drift starts at the first DepthwiseConv2D;\n"
      "RefOpResolver drift (v3 only) peaks at squeeze-excite AvgPool2D layers.\n");
  return 0;
}

}  // namespace
}  // namespace mlexray

int main() { return mlexray::run(); }
