// End-to-end Prepare-once / Invoke-many latency of whole deployed models —
// the measurement ML-EXray's per-layer instrumentation sits on top of
// (PAPER.md §4, Tables 2-5 profile full classification and detection models
// in float and int8).
//
// Each benchmark builds a deployment graph at batch 1/4/16, constructs the
// interpreter once (Prepare: plan, packed weight panels, requant tables) and
// times steady-state invoke() only. items_per_second counts images, so the
// batch rows expose the batched-GEMM win directly. Counters surface the
// memory side: plan-owned prepared storage and the scratch-arena high-water
// mark from InterpreterStats.
//
// Run via bench/run_benches.sh, which records BENCH_models_e2e.json at the
// repo root.
#include <benchmark/benchmark.h>

#include <functional>
#include <string>

#include "src/convert/converter.h"
#include "src/interpreter/interpreter.h"
#include "src/models/detection.h"
#include "src/models/zoo.h"
#include "src/quant/quantizer.h"

namespace mlexray {
namespace {

constexpr std::uint64_t kSeed = 17;

Tensor random_model_input(const Graph& model, std::uint64_t seed) {
  const Shape& shape = model.node(model.input_ids()[0]).output_shape;
  Tensor input = Tensor::f32(shape);
  Pcg32 rng(seed);
  float* p = input.data<float>();
  for (std::int64_t i = 0; i < input.num_elements(); ++i) {
    p[i] = rng.uniform(-1, 1);
  }
  return input;
}

// Builds the float deployment graph at the given batch size.
using FloatModelBuilder = std::function<Graph(int batch)>;

struct E2ECase {
  std::string name;
  FloatModelBuilder build;
  bool quantized;
  int batch;
};

void run_e2e(benchmark::State& state, const E2ECase& c) {
  Graph model = c.build(c.batch);
  Graph quantized;
  if (c.quantized) {
    // Calibrate on the batch-1 twin: node ids are batch-independent (batch
    // only changes the input shape) and quantize_model reads ranges by node
    // id, so this avoids paying reference-kernel invokes at batch 16.
    Graph calib_model = c.batch == 1 ? model : c.build(1);
    MLX_CHECK_EQ(calib_model.nodes.size(), model.nodes.size());
    Calibrator calib(&calib_model);
    for (int i = 0; i < 2; ++i) {
      calib.observe({random_model_input(calib_model, kSeed + 100 + i)});
    }
    quantized = quantize_model(model, calib);
  }
  const Graph& bench_model = c.quantized ? quantized : model;
  BuiltinOpResolver opt;
  Interpreter interp(&bench_model, &opt, /*num_threads=*/2);
  interp.set_input(0, random_model_input(bench_model, kSeed + 7));
  interp.invoke();  // warmup: grows the scratch arena to its high-water mark
  for (auto _ : state) {
    interp.invoke();
    benchmark::DoNotOptimize(interp.output(0).raw_data());
  }
  const InterpreterStats& stats = interp.last_stats();
  state.SetItemsProcessed(state.iterations() * c.batch);
  state.counters["prepare_ms"] = stats.prepare_ms;
  state.counters["prepared_kb"] =
      static_cast<double>(stats.prepared_bytes) / 1024.0;
  state.counters["arena_hw_kb"] =
      static_cast<double>(stats.arena_high_water_bytes) / 1024.0;
  state.counters["activation_kb"] =
      static_cast<double>(interp.activation_bytes()) / 1024.0;
}

void register_cases() {
  std::vector<std::pair<std::string, FloatModelBuilder>> models;
  for (const ZooEntry& entry : image_zoo()) {
    models.emplace_back(entry.name, [build = entry.build](int batch) {
      return convert_for_inference(build(kSeed, batch).model);
    });
  }
  for (const std::string backbone : {"mobilenet", "resnet"}) {
    models.emplace_back("ssd_" + backbone, [backbone](int batch) {
      return convert_for_inference(build_ssd_mini(backbone, kSeed, batch).model);
    });
  }
  for (const auto& [name, build] : models) {
    for (bool quantized : {false, true}) {
      for (int batch : {1, 4, 16}) {
        const std::string bench_name = "E2E/" + name + "/" +
                                       (quantized ? "int8" : "f32") + "/b" +
                                       std::to_string(batch);
        E2ECase c{name, build, quantized, batch};
        benchmark::RegisterBenchmark(
            bench_name.c_str(),
            [c](benchmark::State& state) { run_e2e(state, c); })
            ->Unit(benchmark::kMicrosecond);
      }
    }
  }
}

}  // namespace
}  // namespace mlexray

int main(int argc, char** argv) {
  mlexray::register_cases();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
