// Table 2: run-time instrumentation overhead — latency, memory, and log
// storage for an instrumented classification app (MobileNetV2-mini, 100
// frames).
//
// Numerics and instrumentation overhead are measured on the host; the
// Pixel-4/Pixel-3 CPU/GPU base latencies come from the device latency model
// (DESIGN.md §2.2 substitution). Paper shape: overhead is a few ms per
// frame — negligible relative to CPU inference, a visible fraction of GPU
// inference; memory cost a few MB; default logs <1 KB/frame.
#include <chrono>

#include "bench/bench_util.h"
#include "src/convert/converter.h"
#include "src/core/pipelines.h"
#include "src/interpreter/device_profile.h"
#include "src/models/trained_models.h"
#include "src/tensor/alloc_stats.h"

namespace mlexray {
namespace {

constexpr int kFrames = 100;

struct Measured {
  double ms_per_frame = 0.0;
  double extra_mem_mb = 0.0;
  double log_kb_per_frame = 0.0;
};

Measured run_frames(const Graph& model, const OpResolver& resolver,
                    const std::vector<SensorExample>& sensors,
                    bool instrumented) {
  using Clock = std::chrono::steady_clock;
  Measured m;
  ScopedPeakTracker tracker;
  EdgeMLMonitor monitor;  // default (light) options
  ClassificationPipelineOptions opts;
  opts.graph = &model;
  opts.resolver = &resolver;
  opts.preprocess = {model.input_spec, PreprocBug::kNone};
  opts.num_threads = 2;
  opts.monitor = instrumented ? &monitor : nullptr;
  ClassificationPipeline pipeline(opts);
  auto start = Clock::now();
  for (int f = 0; f < kFrames; ++f) {
    pipeline.process_frame(sensors[static_cast<std::size_t>(f) % sensors.size()].image_u8);
  }
  m.ms_per_frame =
      std::chrono::duration<double, std::milli>(Clock::now() - start).count() /
      kFrames;
  m.extra_mem_mb = static_cast<double>(tracker.peak_delta_bytes()) / 1e6;
  if (instrumented) {
    m.log_kb_per_frame =
        static_cast<double>(monitor.trace().serialized_bytes()) / kFrames / 1e3;
  }
  return m;
}

int run() {
  bench::print_header("Table 2 — run-time instrumentation overhead",
                      "ML-EXray Table 2");
  Graph ckpt = trained_image_checkpoint("mobilenet_v2_mini");
  Graph mobile = convert_for_inference(ckpt);
  auto sensors = SynthImageNet::make(2, 9001);
  BuiltinOpResolver opt;

  Measured plain = run_frames(mobile, opt, sensors, /*instrumented=*/false);
  Measured inst = run_frames(mobile, opt, sensors, /*instrumented=*/true);
  const double overhead_ms = inst.ms_per_frame - plain.ms_per_frame;
  const double mem_mb = inst.extra_mem_mb - plain.extra_mem_mb;

  struct DeviceRow {
    const char* name;
    const DeviceProfile* cpu;
    const DeviceProfile* gpu;
  };
  const DeviceRow devices[] = {
      {"Pixel 4", &DeviceProfile::pixel4_cpu(), &DeviceProfile::pixel4_gpu()},
      {"Pixel 3", &DeviceProfile::pixel3_cpu(), &DeviceProfile::pixel3_gpu()},
  };

  std::vector<std::vector<std::string>> rows;
  for (const DeviceRow& d : devices) {
    double cpu = modeled_graph_latency_ms(mobile, *d.cpu);
    double gpu = modeled_graph_latency_ms(mobile, *d.gpu);
    rows.push_back({d.name, format_float(cpu, 2), format_float(gpu, 2), "-", "-"});
    rows.push_back({std::string(d.name) + " (Inst)",
                    format_float(cpu + overhead_ms, 2) + " (+" +
                        bench::pct(overhead_ms / cpu) + ")",
                    format_float(gpu + overhead_ms, 2) + " (+" +
                        bench::pct(overhead_ms / gpu) + ")",
                    format_float(mem_mb, 2), format_float(inst.log_kb_per_frame, 2)});
  }
  bench::print_table({"device", "Lat CPU (ms)", "Lat GPU (ms)", "+Mem (MB)",
                      "Disk (KB/frame)"},
                     rows);
  std::printf(
      "\nmeasured host instrumentation overhead: %.3f ms/frame "
      "(plain %.3f -> instrumented %.3f)\n",
      overhead_ms, plain.ms_per_frame, inst.ms_per_frame);
  std::printf(
      "expected shape: same absolute overhead is a small %% of CPU latency\n"
      "but a visible %% of GPU latency; memory cost a few MB (paper Table 2).\n");
  return 0;
}

}  // namespace
}  // namespace mlexray

int main() { return mlexray::run(); }
