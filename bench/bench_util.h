// Shared helpers for the table/figure reproduction harnesses.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "src/common/string_util.h"

namespace mlexray::bench {

inline void print_header(const std::string& title, const std::string& paper_ref) {
  std::printf("\n==========================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("reproduces: %s\n", paper_ref.c_str());
  std::printf("==========================================================\n");
  std::fflush(stdout);
}

inline void print_table(const std::vector<std::string>& header,
                        const std::vector<std::vector<std::string>>& rows) {
  std::printf("%s", render_table(header, rows).c_str());
  std::fflush(stdout);
}

inline std::string pct(double fraction, int digits = 1) {
  return format_float(fraction * 100.0, digits) + "%";
}

}  // namespace mlexray::bench
