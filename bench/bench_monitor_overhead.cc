// Instrumentation overhead across the model zoo — the paper's headline
// claim (Table 2: <0.4% e2e latency for default logging, single-digit
// percent with per-layer logging) as a tracked artifact.
//
// For every zoo model (six classifiers + two SSD-mini detectors, f32 and
// int8, batch 1) this measures a full monitored frame loop —
// on_inf_start / invoke / on_inf_stop / next_frame — in four modes:
//
//   bare     no monitor attached (the baseline denominator)
//   io       log_model_io only (per_layer_latency off)
//   latency  per-layer latency capture (the always-on default)
//   outputs  per-layer raw-dtype output capture (offline validation mode)
//
// The monitor runs push-based (TraceBuffer attached as InvokeObserver) with
// retain_frames = false, so the numbers isolate steady-state capture cost:
// zero heap allocations, no trace accumulation, no serialization.
// bench/run_benches.sh pairs the modes per model, stamps the overhead
// ratios into BENCH_monitor_overhead.json, and prints them.
#include <benchmark/benchmark.h>

#include <functional>
#include <string>

#include "src/convert/converter.h"
#include "src/core/monitor.h"
#include "src/models/detection.h"
#include "src/models/zoo.h"
#include "src/quant/quantizer.h"

namespace mlexray {
namespace {

constexpr std::uint64_t kSeed = 23;

Tensor random_model_input(const Graph& model, std::uint64_t seed) {
  const Shape& shape = model.node(model.input_ids()[0]).output_shape;
  Tensor input = Tensor::f32(shape);
  Pcg32 rng(seed);
  float* p = input.data<float>();
  for (std::int64_t i = 0; i < input.num_elements(); ++i) {
    p[i] = rng.uniform(-1, 1);
  }
  return input;
}

using FloatModelBuilder = std::function<Graph()>;

enum class Mode { kBare, kModelIo, kPerLayerLatency, kPerLayerOutputs };

const char* mode_name(Mode m) {
  switch (m) {
    case Mode::kBare: return "bare";
    case Mode::kModelIo: return "io";
    case Mode::kPerLayerLatency: return "latency";
    case Mode::kPerLayerOutputs: return "outputs";
  }
  return "?";
}

MonitorOptions mode_options(Mode m) {
  MonitorOptions o;
  o.retain_frames = false;  // isolate capture cost; memory stays flat
  switch (m) {
    case Mode::kBare: break;
    case Mode::kModelIo:
      o.per_layer_latency = false;
      break;
    case Mode::kPerLayerLatency:
      break;  // the default instrumentation mode
    case Mode::kPerLayerOutputs:
      o.per_layer_outputs = true;
      break;
  }
  return o;
}

struct OverheadCase {
  std::string name;
  FloatModelBuilder build;
  bool quantized;
  Mode mode;
};

void run_overhead(benchmark::State& state, const OverheadCase& c) {
  Graph model = c.build();
  Graph quantized;
  if (c.quantized) {
    Calibrator calib(&model);
    for (int i = 0; i < 2; ++i) {
      calib.observe({random_model_input(model, kSeed + 100 + i)});
    }
    quantized = quantize_model(model, calib);
  }
  const Graph& bench_model = c.quantized ? quantized : model;
  BuiltinOpResolver opt;
  // Interpreter before monitor: the monitor detaches itself at destruction.
  Interpreter interp(&bench_model, &opt, /*num_threads=*/2);
  EdgeMLMonitor monitor(mode_options(c.mode));
  const bool instrumented = c.mode != Mode::kBare;
  if (instrumented) monitor.observe(interp);
  interp.set_input(0, random_model_input(bench_model, kSeed + 7));
  // Warm up: arena high-water + both capture buffers (double-buffered).
  for (int i = 0; i < 3; ++i) {
    interp.invoke();
    if (instrumented) {
      monitor.on_inf_stop(interp);
      monitor.next_frame();
    }
  }
  for (auto _ : state) {
    if (instrumented) {
      monitor.on_inf_start();
      interp.invoke();
      monitor.on_inf_stop(interp);
      monitor.next_frame();
    } else {
      interp.invoke();
    }
    benchmark::DoNotOptimize(interp.output(0).raw_data());
  }
  state.SetItemsProcessed(state.iterations());
  if (instrumented) {
    state.counters["capture_kb_per_frame"] =
        static_cast<double>(monitor.buffer().frame_capture_bytes()) / 1024.0;
  }
}

void register_cases() {
  std::vector<std::pair<std::string, FloatModelBuilder>> models;
  for (const ZooEntry& entry : image_zoo()) {
    models.emplace_back(entry.name, [build = entry.build] {
      return convert_for_inference(build(kSeed, /*batch=*/1).model);
    });
  }
  for (const std::string backbone : {"mobilenet", "resnet"}) {
    models.emplace_back("ssd_" + backbone, [backbone] {
      return convert_for_inference(
          build_ssd_mini(backbone, kSeed, /*batch=*/1).model);
    });
  }
  for (const auto& [name, build] : models) {
    for (bool quantized : {false, true}) {
      for (Mode mode : {Mode::kBare, Mode::kModelIo, Mode::kPerLayerLatency,
                        Mode::kPerLayerOutputs}) {
        const std::string bench_name = "Monitor/" + name + "/" +
                                       (quantized ? "int8" : "f32") + "/" +
                                       mode_name(mode);
        OverheadCase c{name, build, quantized, mode};
        benchmark::RegisterBenchmark(
            bench_name.c_str(),
            [c](benchmark::State& state) { run_overhead(state, c); })
            ->Unit(benchmark::kMicrosecond);
      }
    }
  }
}

}  // namespace
}  // namespace mlexray

int main(int argc, char** argv) {
  mlexray::register_cases();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
