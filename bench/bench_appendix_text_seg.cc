// Appendix A: deployment issues on text and segmentation tasks.
//
// Paper findings reproduced here:
//  - NNLM embeddings for raw vs lower-cased text are drastically different,
//    yet sentiment accuracy is identical — per-layer drift that is NOT a
//    deployment bug (why validation needs accuracy + drift together).
//  - Segmentation is less sensitive to the preprocessing bugs than
//    classification (shape cues dominate color/contrast).
#include "bench/bench_util.h"
#include "src/convert/converter.h"
#include "src/core/pipelines.h"
#include "src/models/trained_models.h"
#include "src/tensor/tensor_stats.h"

namespace mlexray {
namespace {

int run() {
  bench::print_header("Appendix A — text case-folding & segmentation bugs",
                      "ML-EXray Appendix A");
  // --- NNLM case sensitivity ---
  Graph nnlm = trained_nnlm_checkpoint();
  auto texts = SynthImdb::make(StandardData::kTextTest, 9301);
  TextPipelineConfig folded;
  folded.max_len = StandardData::kTextMaxLen;
  TextPipelineConfig raw = folded;
  raw.case_fold = false;

  RefOpResolver ref;
  Interpreter interp(&nnlm, &ref);
  int emb_node = node_id_by_name(nnlm, "embedding");
  double emb_drift = 0.0;
  int folded_correct = 0;
  int raw_correct = 0;
  for (const TextExample& t : texts) {
    interp.set_input(0, encode_text(t.text, imdb_vocabulary(), folded));
    interp.invoke();
    Tensor folded_emb = interp.node_output(emb_node);
    int folded_pred = argmax(interp.output(0));
    interp.set_input(0, encode_text(t.text, imdb_vocabulary(), raw));
    interp.invoke();
    emb_drift += normalized_rmse(interp.node_output(emb_node), folded_emb);
    int raw_pred = argmax(interp.output(0));
    folded_correct += folded_pred == t.label;
    raw_correct += raw_pred == t.label;
  }
  emb_drift /= static_cast<double>(texts.size());
  double folded_acc = static_cast<double>(folded_correct) / texts.size();
  double raw_acc = static_cast<double>(raw_correct) / texts.size();
  bench::print_table({"pipeline", "embedding drift (rMSE-hat)", "accuracy"},
                     {{"lower-cased (training)", "0.0000", bench::pct(folded_acc)},
                      {"raw text", format_float(emb_drift, 4), bench::pct(raw_acc)}});
  std::printf(
      "expected shape: large embedding drift, near-identical accuracy\n"
      "(paper Appendix A: NNLM on IMDB).\n");

  // --- MobileBert stand-in sanity ---
  Graph bert = trained_mobilebert_checkpoint();
  auto bert_examples = imdb_examples(texts, folded);
  std::printf("\nmobilebert_mini (token-mixer stand-in) accuracy: %s\n",
              bench::pct(evaluate_classifier(bert, ref, bert_examples)).c_str());

  // --- segmentation under preprocessing bugs ---
  ZooModel deeplab = trained_deeplab();
  Graph deployed = convert_for_inference(deeplab.model);
  auto scenes = SynthSeg::make(StandardData::kSegTest, 9401);
  BuiltinOpResolver opt;
  std::vector<std::vector<std::string>> rows;
  for (PreprocBug bug : {PreprocBug::kNone, PreprocBug::kWrongChannelOrder,
                         PreprocBug::kWrongNormalization}) {
    double miou = evaluate_deeplab_miou(deployed, opt, scenes,
                                        {deeplab.model.input_spec, bug});
    rows.push_back({preproc_bug_name(bug), bench::pct(miou)});
  }
  std::printf("\n");
  bench::print_table({"segmentation pipeline", "mIoU"}, rows);
  std::printf(
      "expected shape: preprocessing bugs hurt segmentation less than\n"
      "classification (paper Appendix A).\n");
  return 0;
}

}  // namespace
}  // namespace mlexray

int main() { return mlexray::run(); }
