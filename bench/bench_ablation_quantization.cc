// Ablation (DESIGN.md §4): the quantization design choices the paper's §2
// discusses — calibration strategy (outlier-inflated min-max vs moving
// average vs percentile), per-tensor vs per-channel weight scales, and
// symmetric vs asymmetric activations — measured on MobileNetV2-mini.
#include "bench/bench_util.h"
#include "src/convert/converter.h"
#include "src/models/trained_models.h"
#include "src/quant/quantizer.h"

namespace mlexray {
namespace {

double quant_accuracy(const Graph& mobile,
                      const std::vector<LabeledExample>& calib_inputs,
                      const std::vector<LabeledExample>& test,
                      CalibrationOptions copts, QuantizeOptions qopts) {
  Calibrator calib(&mobile, copts);
  for (const auto& ex : calib_inputs) calib.observe({ex.input});
  Graph quant = quantize_model(mobile, calib, qopts);
  RefOpResolver ref;  // correct kernels: isolate the quantization choice
  return evaluate_classifier(quant, ref, test);
}

int run() {
  bench::print_header("Ablation — quantization design choices (§2)",
                      "ML-EXray §2 discussion (our ablation)");
  Graph ckpt = trained_image_checkpoint("mobilenet_v2_mini");
  Graph mobile = convert_for_inference(ckpt);
  ImagePipelineConfig correct{ckpt.input_spec, PreprocBug::kNone};
  auto test = imagenet_examples(
      SynthImageNet::make(StandardData::kImageTestPerClass,
                          StandardData::kImageTestSeed),
      correct);

  // Representative set with an injected outlier frame (over-exposed sensor),
  // the §2 "outlier inflates the scale" hazard.
  auto calib_inputs = imagenet_examples(SynthImageNet::make(4, 777), correct);
  {
    Tensor outlier = Tensor::f32(calib_inputs[0].input.shape());
    outlier.fill(8.0f);  // wildly out of the [-1,1] envelope
    calib_inputs.push_back({std::move(outlier), 0});
  }

  std::vector<std::vector<std::string>> rows;
  auto add = [&](const std::string& name, CalibrationOptions c,
                 QuantizeOptions q) {
    rows.push_back(
        {name, bench::pct(quant_accuracy(mobile, calib_inputs, test, c, q))});
  };

  CalibrationOptions minmax;
  CalibrationOptions ema;
  ema.method = CalibrationOptions::Method::kMovingAverage;
  CalibrationOptions pct;
  pct.method = CalibrationOptions::Method::kPercentile;
  pct.percentile = 90.0;
  QuantizeOptions per_channel;           // default
  QuantizeOptions per_tensor;
  per_tensor.per_channel_weights = false;
  QuantizeOptions symmetric;
  symmetric.symmetric_activations = true;

  add("min-max calibration (outlier-inflated scales)", minmax, per_channel);
  add("moving-average calibration", ema, per_channel);
  add("percentile-90 calibration (outlier clipped)", pct, per_channel);
  add("per-tensor weight scales (percentile)", pct, per_tensor);
  add("symmetric activations (percentile)", pct, symmetric);

  bench::print_table({"configuration", "int8 accuracy"}, rows);
  std::printf(
      "\nexpected shape: outlier-inflated min-max loses resolution; percentile\n"
      "recovers it; per-tensor weights lose accuracy after BN folding;\n"
      "symmetric activations waste range on skewed (post-relu) tensors (§2).\n");
  return 0;
}

}  // namespace
}  // namespace mlexray

int main() { return mlexray::run(); }
