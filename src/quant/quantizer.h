// Post-training full-integer quantization (the paper's §2 deployment step).
//
// Converts a float inference model into an int8 graph:
//   input (f32) -> Quantize -> int8 body -> Dequantize -> output (f32)
// Weights become symmetric int8 (per-channel by default), biases int32 with
// scale in_scale * w_scale[c], activations asymmetric int8 calibrated from a
// representative dataset. Structural ops (pool/pad/reshape/relu/mean/...)
// inherit their producer's quantization, matching production converters.
#pragma once

#include "src/quant/calibration.h"

namespace mlexray {

struct QuantizeOptions {
  bool per_channel_weights = true;
  // Symmetric activation quantization (zero_point forced to 0) — §2 notes
  // production stacks often prefer it; costs range when data is skewed.
  bool symmetric_activations = false;
};

// Computes int8 affine params for a calibrated range.
QuantParams activation_quant_params(float range_min, float range_max,
                                    bool symmetric);

// Quantizes a float weight tensor symmetrically (per-channel along
// `channel_axis` when per_channel is true).
Tensor quantize_weights(const Tensor& weights, int channel_axis,
                        bool per_channel);

// Full-model quantization. `float_model` must be a converted inference
// model (no BatchNorm); `calibrator` must have observed samples on it.
Graph quantize_model(const Graph& float_model, const Calibrator& calibrator,
                     QuantizeOptions options = {});

}  // namespace mlexray
