#include "src/quant/calibration.h"

#include <algorithm>
#include <cmath>

#include "src/tensor/tensor_stats.h"

namespace mlexray {

Calibrator::Calibrator(const Graph* model, CalibrationOptions options)
    : model_(model), options_(options), interp_(model, &resolver_) {
  const std::size_t n = model_->nodes.size();
  sample_mins_.resize(n);
  sample_maxs_.resize(n);
  ema_min_.assign(n, 0.0f);
  ema_max_.assign(n, 0.0f);
  global_min_.assign(n, 3.4e38f);
  global_max_.assign(n, -3.4e38f);
}

void Calibrator::observe(const std::vector<Tensor>& inputs) {
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    interp_.set_input(static_cast<int>(i), inputs[i]);
  }
  interp_.invoke();
  for (const Node& n : model_->nodes) {
    const Tensor& out = n.type == OpType::kInput
                            ? inputs[0]  // input node holds the raw input
                            : interp_.node_output(n.id);
    if (out.dtype() != DType::kF32 && n.type != OpType::kInput) continue;
    TensorSummary s = summarize(out);
    const auto id = static_cast<std::size_t>(n.id);
    sample_mins_[id].push_back(s.min);
    sample_maxs_[id].push_back(s.max);
    global_min_[id] = std::min(global_min_[id], s.min);
    global_max_[id] = std::max(global_max_[id], s.max);
    if (samples_ == 0) {
      ema_min_[id] = s.min;
      ema_max_[id] = s.max;
    } else {
      const auto m = static_cast<float>(options_.ema_momentum);
      ema_min_[id] = m * ema_min_[id] + (1.0f - m) * s.min;
      ema_max_[id] = m * ema_max_[id] + (1.0f - m) * s.max;
    }
  }
  ++samples_;
}

Calibrator::Range Calibrator::range(int node_id) const {
  MLX_CHECK_GT(samples_, 0) << "no calibration samples observed";
  const auto id = static_cast<std::size_t>(node_id);
  Range r;
  switch (options_.method) {
    case CalibrationOptions::Method::kMinMax:
      r.min = global_min_[id];
      r.max = global_max_[id];
      break;
    case CalibrationOptions::Method::kMovingAverage:
      r.min = ema_min_[id];
      r.max = ema_max_[id];
      break;
    case CalibrationOptions::Method::kPercentile: {
      std::vector<float> mins = sample_mins_[id];
      std::vector<float> maxs = sample_maxs_[id];
      std::sort(mins.begin(), mins.end());
      std::sort(maxs.begin(), maxs.end());
      const double q = std::clamp(options_.percentile / 100.0, 0.0, 1.0);
      auto idx = static_cast<std::size_t>(
          std::floor(q * static_cast<double>(maxs.size() - 1)));
      r.max = maxs[idx];
      r.min = mins[maxs.size() - 1 - idx];
      break;
    }
  }
  // Quantization needs a range spanning zero (TFLite requirement) and a
  // non-degenerate width.
  r.min = std::min(r.min, 0.0f);
  r.max = std::max(r.max, 0.0f);
  if (r.max - r.min < 1e-6f) r.max = r.min + 1e-6f;
  return r;
}

}  // namespace mlexray
