#include "src/quant/quantizer.h"

#include <cmath>
#include <map>

namespace mlexray {

QuantParams activation_quant_params(float range_min, float range_max,
                                    bool symmetric) {
  if (symmetric) {
    float bound = std::max(std::abs(range_min), std::abs(range_max));
    bound = std::max(bound, 1e-6f);
    return QuantParams::per_tensor(bound / 127.0f, 0);
  }
  float scale = (range_max - range_min) / 255.0f;
  scale = std::max(scale, 1e-9f);
  auto zp = static_cast<std::int32_t>(
      std::lround(-128.0 - range_min / scale));
  zp = std::clamp<std::int32_t>(zp, -128, 127);
  return QuantParams::per_tensor(scale, zp);
}

Tensor quantize_weights(const Tensor& weights, int channel_axis,
                        bool per_channel) {
  MLX_CHECK(weights.dtype() == DType::kF32);
  const Shape& shape = weights.shape();
  const float* src = weights.data<float>();
  const std::int64_t total = weights.num_elements();

  std::int64_t channels = 1;
  std::int64_t stride = 1;
  if (per_channel) {
    channels = shape.dim(channel_axis);
    for (int d = shape.rank() - 1; d > channel_axis; --d) stride *= shape.dim(d);
  }

  std::vector<float> max_abs(static_cast<std::size_t>(channels), 1e-9f);
  for (std::int64_t i = 0; i < total; ++i) {
    std::int64_t c = per_channel ? (i / stride) % channels : 0;
    max_abs[static_cast<std::size_t>(c)] =
        std::max(max_abs[static_cast<std::size_t>(c)], std::abs(src[i]));
  }
  std::vector<float> scales(static_cast<std::size_t>(channels));
  for (std::int64_t c = 0; c < channels; ++c) {
    scales[static_cast<std::size_t>(c)] =
        max_abs[static_cast<std::size_t>(c)] / 127.0f;
  }

  Tensor out(DType::kI8, shape);
  std::int8_t* dst = out.data<std::int8_t>();
  for (std::int64_t i = 0; i < total; ++i) {
    std::int64_t c = per_channel ? (i / stride) % channels : 0;
    auto q = static_cast<std::int32_t>(
        std::lround(src[i] / scales[static_cast<std::size_t>(c)]));
    dst[i] = static_cast<std::int8_t>(std::clamp<std::int32_t>(q, -127, 127));
  }
  if (per_channel) {
    out.quant() = QuantParams::per_channel_params(
        std::move(scales),
        std::vector<std::int32_t>(static_cast<std::size_t>(channels), 0),
        channel_axis);
  } else {
    out.quant() = QuantParams::per_tensor(scales[0], 0);
  }
  return out;
}

namespace {

Tensor quantize_bias(const Tensor& bias, const QuantParams& in_q,
                     const QuantParams& w_q) {
  const float* src = bias.data<float>();
  Tensor out(DType::kI32, bias.shape());
  std::int32_t* dst = out.data<std::int32_t>();
  const std::int64_t n = bias.num_elements();
  std::vector<float> scales(static_cast<std::size_t>(n));
  std::vector<std::int32_t> zps(static_cast<std::size_t>(n), 0);
  for (std::int64_t c = 0; c < n; ++c) {
    float scale = in_q.scale() * w_q.scale(w_q.per_channel()
                                               ? static_cast<std::size_t>(c)
                                               : 0);
    scales[static_cast<std::size_t>(c)] = scale;
    dst[c] = static_cast<std::int32_t>(std::lround(src[c] / scale));
  }
  out.quant() = QuantParams::per_channel_params(std::move(scales),
                                                std::move(zps), 0);
  return out;
}

// Ops whose int8 output must reuse the producer's quantization parameters.
bool inherits_input_quant(OpType type) {
  switch (type) {
    case OpType::kAvgPool2D:
    case OpType::kMaxPool2D:
    case OpType::kMean:
    case OpType::kPad:
    case OpType::kReshape:
    case OpType::kRelu:
    case OpType::kRelu6:
    case OpType::kUpsampleNearest2x:
      return true;
    default:
      return false;
  }
}

bool fixed_unit_range(OpType type) {
  return type == OpType::kSoftmax || type == OpType::kSigmoid;
}

}  // namespace

Graph quantize_model(const Graph& float_model, const Calibrator& calibrator,
                     QuantizeOptions options) {
  Graph out;
  out.name = float_model.name + "-int8";
  out.input_spec = float_model.input_spec;

  std::map<int, int> id_map;
  for (const Node& n : float_model.nodes) {
    if (n.type == OpType::kBatchNorm) {
      MLX_FAIL() << "quantize_model requires a converted model "
                    "(BatchNorm present: '" << n.name << "')";
    }
    if (n.type == OpType::kInput) {
      Node input;
      input.type = OpType::kInput;
      input.name = n.name;
      input.output_shape = n.output_shape;
      input.output_dtype = n.output_dtype;
      int input_id = out.add_node(std::move(input));

      Node quant;
      quant.type = OpType::kQuantize;
      quant.name = n.name + "_quantize";
      quant.inputs = {input_id};
      Calibrator::Range r = calibrator.range(n.id);
      quant.output_quant =
          activation_quant_params(r.min, r.max, options.symmetric_activations);
      int quant_id = out.add_node(std::move(quant));
      id_map[n.id] = quant_id;
      continue;
    }

    Node copy;
    copy.type = n.type;
    copy.name = n.name;
    copy.attrs = n.attrs;
    for (int in : n.inputs) copy.inputs.push_back(id_map.at(in));

    // Weights.
    switch (n.type) {
      case OpType::kConv2D:
      case OpType::kFullyConnected: {
        Tensor w = quantize_weights(n.weights[0], /*channel_axis=*/0,
                                    options.per_channel_weights);
        const QuantParams& in_q =
            out.node(copy.inputs[0]).output_quant;
        copy.weights.push_back(std::move(w));
        copy.weights.push_back(
            quantize_bias(n.weights[1], in_q, copy.weights[0].quant()));
        break;
      }
      case OpType::kDepthwiseConv2D: {
        Tensor w = quantize_weights(n.weights[0], /*channel_axis=*/3,
                                    options.per_channel_weights);
        const QuantParams& in_q =
            out.node(copy.inputs[0]).output_quant;
        copy.weights.push_back(std::move(w));
        copy.weights.push_back(
            quantize_bias(n.weights[1], in_q, copy.weights[0].quant()));
        break;
      }
      case OpType::kEmbedding:
        MLX_FAIL() << "int8 embedding is not supported ('" << n.name << "')";
      default:
        for (const Tensor& w : n.weights) copy.weights.push_back(w);
        break;
    }

    // Output quantization parameters.
    if (n.type == OpType::kTanh) {
      // tanh's range is [-1, 1]: symmetric fixed params, zero point 0.
      copy.output_quant = QuantParams::per_tensor(1.0f / 128.0f, 0);
    } else if (fixed_unit_range(n.type)) {
      copy.output_quant = QuantParams::per_tensor(1.0f / 256.0f, -128);
    } else if (inherits_input_quant(n.type)) {
      copy.output_quant = out.node(copy.inputs[0]).output_quant;
    } else {
      Calibrator::Range r = calibrator.range(n.id);
      copy.output_quant =
          activation_quant_params(r.min, r.max, options.symmetric_activations);
    }
    int new_id = out.add_node(std::move(copy));
    id_map[n.id] = new_id;
  }

  for (int o : float_model.outputs) {
    Node dq;
    dq.type = OpType::kDequantize;
    dq.name = float_model.node(o).name + "_dequantize";
    dq.inputs = {id_map.at(o)};
    int dq_id = out.add_node(std::move(dq));
    out.outputs.push_back(dq_id);
  }
  out.validate();
  return out;
}

}  // namespace mlexray
