// Post-training-quantization calibration: per-node activation ranges
// profiled over a representative dataset.
//
// Implements the three strategies discussed in the paper's §2 scale-
// calibration pitfalls: absolute min/max (outliers inflate the scale),
// moving average of per-batch extremes, and percentile (clips outliers).
// The quantization ablation bench sweeps these against each other.
#pragma once

#include <vector>

#include "src/interpreter/interpreter.h"

namespace mlexray {

struct CalibrationOptions {
  enum class Method { kMinMax, kMovingAverage, kPercentile };
  Method method = Method::kMinMax;
  double percentile = 99.5;      // for kPercentile (per-sample extremes)
  double ema_momentum = 0.9;     // for kMovingAverage
};

class Calibrator {
 public:
  // model must be a converted float inference model and outlive this object.
  Calibrator(const Graph* model, CalibrationOptions options = {});

  // Runs one representative sample through the float model and records
  // every node's output extremes.
  void observe(const std::vector<Tensor>& inputs);

  struct Range {
    float min = 0.0f;
    float max = 0.0f;
  };

  // Finalized range for a node under the configured method.
  Range range(int node_id) const;

  int samples_seen() const { return samples_; }

 private:
  const Graph* model_;
  CalibrationOptions options_;
  RefOpResolver resolver_;  // calibration uses reference float kernels
  Interpreter interp_;
  // Per node: per-sample extremes (percentile), running EMA, global min/max.
  std::vector<std::vector<float>> sample_mins_;
  std::vector<std::vector<float>> sample_maxs_;
  std::vector<float> ema_min_;
  std::vector<float> ema_max_;
  std::vector<float> global_min_;
  std::vector<float> global_max_;
  int samples_ = 0;
};

}  // namespace mlexray
