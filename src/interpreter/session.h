// Session: the lightweight per-caller half of the serving API.
//
// A Session executes a shared, immutable Model. Everything mutable per
// caller lives here: the activation tensors (retained for per-layer logs),
// the scratch arena for kernel temporaries, the invoke statistics, and the
// optional InvokeObserver (TraceBuffer) — so observers attach per-session
// while weights and prepared packing stay shared. Construction is cheap
// relative to Model building (no kernel resolution, no weight packing);
// steady-state invoke() performs zero heap allocations, which the
// alloc_stats-based regression tests enforce per session even when many
// sessions run the same Model concurrently.
//
// Thread safety: a Session is single-threaded (one invoke at a time), but
// different Sessions over the same Model may invoke concurrently from
// different threads — the Model is read-only after construction.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "src/interpreter/model.h"
#include "src/tensor/scratch_arena.h"

namespace mlexray {

class InvokeObserver;

// Outcome of a guarded invoke (Session::try_invoke).
enum class InvokeCode {
  kOk = 0,
  // A kernel threw MlxError mid-walk. The session is poisoned: its
  // activations are partially written and it refuses further invokes; a
  // pooled session is destroyed instead of re-pooled on lease release.
  kError,
  // The cooperative per-invoke deadline expired at a step boundary. The
  // activations are partial but the session is *not* poisoned — the next
  // invoke overwrites them from the top.
  kDeadlineExceeded,
  // try_invoke was called on an already-poisoned session; nothing ran.
  kPoisoned,
};

const char* invoke_code_name(InvokeCode code);

struct InvokeStatus {
  InvokeCode code = InvokeCode::kOk;
  // Plan-step index / node id where the failure or deadline hit (-1 when ok
  // or when nothing ran).
  int failed_step = -1;
  int failed_node_id = -1;
  // The MlxError text for kError; empty otherwise (so the success path never
  // allocates).
  std::string message;

  bool ok() const { return code == InvokeCode::kOk; }
};

struct SessionStats {
  // One-time Prepare cost: the shared Model build (plan construction,
  // weight packing) plus this session's activation allocation and wiring.
  double prepare_ms = 0.0;
  // Wall clock of the most recent invoke.
  double total_ms = 0.0;
  // Sum of total_ms across all invokes, and how many there were.
  double cumulative_ms = 0.0;
  std::int64_t invoke_count = 0;
  // Per-node wall clock, indexed by node id; reset at the start of every
  // invoke (kInput nodes stay 0).
  std::vector<double> per_node_ms;
  // Per-node wall clock accumulated across all invokes.
  std::vector<double> per_node_total_ms;
  // Guarded-invoke outcomes: kernel errors contained by try_invoke (each one
  // poisons the session, so this is 0 or 1 in practice) and cooperative
  // deadline expiries (recoverable; the session keeps serving).
  std::uint64_t invoke_errors = 0;
  std::uint64_t deadline_exceeded = 0;
  // Memory visibility: plan-owned prepared storage (packed weight panels,
  // requantization tables; fixed at Model build, *shared* across sessions)
  // and this session's scratch-arena high-water mark (refreshed after every
  // invoke). Latency wins from plan-time packing must not hide their memory
  // cost.
  std::size_t prepared_bytes = 0;
  std::size_t arena_high_water_bytes = 0;
};

// Historical names, kept for call sites that predate the Model/Session split
// and the Prepare/Invoke split respectively.
using InterpreterStats = SessionStats;
using InvokeStats = SessionStats;

class Session {
 public:
  // model must outlive the session.
  explicit Session(const Model* model);

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  // Copies `value` into the i-th model input (shape and dtype checked).
  void set_input(int input_index, const Tensor& value);

  // Direct mutable access to the i-th model input slot, for callers that
  // assemble the input in place (e.g. the FrontDoor batcher memcpys one
  // request row at a time instead of staging a full batch tensor). The
  // caller owns shape discipline: the tensor's shape/dtype must not change.
  Tensor& mutable_input(int input_index);

  // Runs all nodes in topological order over the shared prepared plan.
  // Throws MlxError on kernel failure (and poisons the session — see
  // try_invoke); serving paths that must not unwind use try_invoke instead.
  void invoke();

  // Guarded invoke: runs the same prepared walk but catches MlxError at the
  // session boundary and reports it (with the failing step) as a status
  // instead of unwinding into the caller. A kernel throw poisons the
  // session: partial activations are never served, and the Engine destroys
  // a poisoned session instead of re-pooling it on lease release.
  //
  // deadline_ms > 0 arms a cooperative per-invoke deadline, checked at step
  // boundaries before each kernel runs: when it expires the walk stops with
  // kDeadlineExceeded (no poisoning — the session is reusable). A kernel
  // that is already running is never interrupted, so the overshoot is
  // bounded by one step's latency.
  //
  // The success path performs zero heap allocations, same as invoke().
  InvokeStatus try_invoke(double deadline_ms = 0.0);

  // Same guarded walk against an absolute steady-clock deadline — the
  // precise form for schedulers that already hold a request's admission
  // timestamp (avoids re-quantizing through a relative double). A deadline
  // already in the past stops at the first step boundary with
  // kDeadlineExceeded (nothing runs, no poisoning).
  InvokeStatus try_invoke_until(std::chrono::steady_clock::time_point deadline);

  // True once a kernel failure was contained (or escaped) mid-walk; the
  // session refuses further invokes.
  bool poisoned() const { return poisoned_; }

  // True when the most recent invoke ran every step to completion, i.e. the
  // retained activations form one coherent frame. False before any invoke
  // and after a contained error or deadline expiry (partial activations).
  // The Engine's canary mode consults this so it never diffs a half-written
  // frame against the reference.
  bool last_invoke_ok() const { return last_invoke_ok_; }

  // Attaches a push-based observability sink (src/interpreter/
  // invoke_observer.h): invoke() fires on_invoke_begin / on_step /
  // on_invoke_end as it walks the plan. Non-owning; the observer must
  // outlive the attachment (pass nullptr to detach before destroying it).
  void set_observer(InvokeObserver* observer) { observer_ = observer; }
  InvokeObserver* observer() const { return observer_; }

  // The i-th model output of the last invoke.
  const Tensor& output(int output_index = 0) const;

  // Any node's retained output (per-layer inspection).
  const Tensor& node_output(int node_id) const;

  const Model& model() const { return *model_; }
  const Graph& graph() const { return model_->graph(); }
  const ExecutionPlan& plan() const { return model_->plan(); }
  const SessionStats& last_stats() const { return stats_; }
  const ScratchArena& scratch_arena() const { return arena_; }

  // Bytes held by this session's activation tensors.
  std::size_t activation_bytes() const;

 private:
  InvokeStatus guarded_invoke(bool has_deadline,
                              std::chrono::steady_clock::time_point deadline);

  const Model* model_;
  ScratchArena arena_;
  std::vector<Tensor> activations_;  // one per node id
  // One wired context per plan step (inputs/output point into activations_,
  // arena/pool/prepared attached); built once, reused verbatim every invoke.
  std::vector<KernelContext> contexts_;
  SessionStats stats_;
  InvokeObserver* observer_ = nullptr;
  bool poisoned_ = false;
  bool last_invoke_ok_ = false;
};

}  // namespace mlexray
