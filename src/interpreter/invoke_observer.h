// Push-based observability hooks for the Invoke phase of a Session.
//
// ML-EXray's per-layer instrumentation used to *pull* data after invoke: walk
// the model, deep-copy every retained activation, O(model size) heap churn
// per frame. An InvokeObserver instead rides along the prepared-step walk:
// the session fires on_step as each node finishes, handing the observer a
// view of the retained output tensor and the step's wall clock. The observer
// decides what (if anything) to copy — TraceBuffer (src/core/trace_buffer.h)
// captures into pre-sized storage so a steady-state instrumented invoke stays
// heap-free, preserving the paper's <0.4% overhead budget (Table 2).
//
// Contract: hooks run on the invoke thread, between kernel executions. They
// must not call back into the session's mutating API, must not retain the
// tensor reference past the callback (the buffer is overwritten by later
// invokes), and should not allocate in steady state — that includes digest
// capture (src/drift/digest.h): per-layer sketches accumulated in on_step
// are fixed-size inline storage, reset and refilled in place per frame. The
// observer must stay alive while attached; detach with
// Session::set_observer(nullptr) before destroying it. Observers are
// per-session: two sessions sharing one Model attach two independent
// observers.
#pragma once

#include <cstddef>

namespace mlexray {

struct Node;
class Tensor;
struct SessionStats;
struct InvokeStatus;

class InvokeObserver {
 public:
  virtual ~InvokeObserver() = default;

  // Start of invoke(), before the first step. step_count is the number of
  // on_step calls that will follow (the plan's executable node count).
  virtual void on_invoke_begin(std::size_t step_count) { (void)step_count; }

  // One prepared step finished: the node, its retained output (raw dtype —
  // int8 activations arrive as int8), and the step's wall clock.
  virtual void on_step(const Node& node, const Tensor& output,
                       double latency_ms) {
    (void)node;
    (void)output;
    (void)latency_ms;
  }

  // End of invoke(), after the last step; stats carry total_ms and the
  // refreshed arena high-water mark.
  virtual void on_invoke_end(const SessionStats& stats) { (void)stats; }

  // A guarded invoke ended early: a contained kernel failure (kError — the
  // session is now poisoned) or a cooperative deadline expiry
  // (kDeadlineExceeded). Fired instead of on_invoke_end; the frame holds
  // the steps captured before the failure. Observers use this to account
  // failed frames without ever seeing partial activations as a completed
  // invoke.
  virtual void on_invoke_error(const InvokeStatus& status) { (void)status; }
};

}  // namespace mlexray
