#include "src/interpreter/interpreter.h"

#include <chrono>
#include <cstring>

namespace mlexray {

Interpreter::Interpreter(const Model* model, const OpResolver* resolver,
                         int num_threads)
    : model_(model), resolver_(resolver) {
  MLX_CHECK(model != nullptr);
  MLX_CHECK(resolver != nullptr);
  model_->validate();
  pool_ = num_threads > 1 ? &ThreadPool::shared() : nullptr;
  input_ids_ = model_->input_ids();
  MLX_CHECK(!input_ids_.empty()) << "model has no inputs";

  // Allocate one activation tensor per node (retained for per-layer logs).
  activations_.reserve(model_->nodes.size());
  for (const Node& n : model_->nodes) {
    Tensor t(n.output_dtype, n.output_shape);
    t.quant() = n.output_quant;
    activations_.push_back(std::move(t));
  }
  stats_.per_node_ms.assign(model_->nodes.size(), 0.0);
}

void Interpreter::set_input(int input_index, const Tensor& value) {
  MLX_CHECK_LT(static_cast<std::size_t>(input_index), input_ids_.size());
  Tensor& slot = activations_[static_cast<std::size_t>(
      input_ids_[static_cast<std::size_t>(input_index)])];
  MLX_CHECK(value.shape() == slot.shape())
      << "input shape " << value.shape().to_string() << " expected "
      << slot.shape().to_string();
  MLX_CHECK(value.dtype() == slot.dtype())
      << "input dtype " << dtype_name(value.dtype()) << " expected "
      << dtype_name(slot.dtype());
  std::memcpy(slot.raw_data(), value.raw_data(), value.byte_size());
}

void Interpreter::invoke() {
  using Clock = std::chrono::steady_clock;
  auto start_total = Clock::now();
  for (const Node& n : model_->nodes) {
    if (n.type == OpType::kInput) continue;
    KernelContext ctx;
    ctx.node = &n;
    ctx.output = &activations_[static_cast<std::size_t>(n.id)];
    ctx.pool = pool_;
    ctx.inputs.reserve(n.inputs.size());
    for (int in : n.inputs) {
      ctx.inputs.push_back(&activations_[static_cast<std::size_t>(in)]);
    }
    const KernelFn& kernel = resolver_->find(n);
    auto start = Clock::now();
    kernel(ctx);
    stats_.per_node_ms[static_cast<std::size_t>(n.id)] =
        std::chrono::duration<double, std::milli>(Clock::now() - start).count();
  }
  stats_.total_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - start_total)
          .count();
}

const Tensor& Interpreter::output(int output_index) const {
  MLX_CHECK_LT(static_cast<std::size_t>(output_index),
               model_->outputs.size());
  return activations_[static_cast<std::size_t>(
      model_->outputs[static_cast<std::size_t>(output_index)])];
}

const Tensor& Interpreter::node_output(int node_id) const {
  MLX_CHECK(node_id >= 0 &&
            node_id < static_cast<int>(activations_.size()));
  return activations_[static_cast<std::size_t>(node_id)];
}

std::size_t Interpreter::activation_bytes() const {
  std::size_t total = 0;
  for (const Tensor& t : activations_) total += t.byte_size();
  return total;
}

}  // namespace mlexray
