#include "src/interpreter/interpreter.h"

#include <chrono>
#include <cstring>

#include "src/interpreter/invoke_observer.h"

namespace mlexray {

namespace {
using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}
}  // namespace

Interpreter::Interpreter(const Model* model, const OpResolver* resolver,
                         int num_threads)
    : model_(model), resolver_(resolver) {
  auto prepare_start = Clock::now();
  MLX_CHECK(model != nullptr);
  MLX_CHECK(resolver != nullptr);
  model_->validate();
  pool_ = num_threads > 1 ? &ThreadPool::shared() : nullptr;
  input_ids_ = model_->input_ids();
  MLX_CHECK(!input_ids_.empty()) << "model has no inputs";

  // Allocate one activation tensor per node (retained for per-layer logs).
  // The vector is sized once and never grows: the plan wires raw pointers
  // into it.
  activations_.reserve(model_->nodes.size());
  for (const Node& n : model_->nodes) {
    Tensor t(n.output_dtype, n.output_shape);
    t.quant() = n.output_quant;
    activations_.push_back(std::move(t));
  }
  plan_ = std::make_unique<ExecutionPlan>(*model_, *resolver_, activations_,
                                          pool_, &arena_);
  stats_.per_node_ms.assign(model_->nodes.size(), 0.0);
  stats_.per_node_total_ms.assign(model_->nodes.size(), 0.0);
  stats_.prepared_bytes = plan_->prepared_bytes();
  stats_.prepare_ms = ms_since(prepare_start);
}

void Interpreter::set_input(int input_index, const Tensor& value) {
  MLX_CHECK_LT(static_cast<std::size_t>(input_index), input_ids_.size());
  Tensor& slot = activations_[static_cast<std::size_t>(
      input_ids_[static_cast<std::size_t>(input_index)])];
  MLX_CHECK(value.shape() == slot.shape())
      << "input shape " << value.shape().to_string() << " expected "
      << slot.shape().to_string();
  MLX_CHECK(value.dtype() == slot.dtype())
      << "input dtype " << dtype_name(value.dtype()) << " expected "
      << dtype_name(slot.dtype());
  std::memcpy(slot.raw_data(), value.raw_data(), value.byte_size());
}

void Interpreter::invoke() {
  auto start_total = Clock::now();
  // Reset the per-invoke view; totals keep accumulating.
  std::fill(stats_.per_node_ms.begin(), stats_.per_node_ms.end(), 0.0);
  if (observer_ != nullptr) observer_->on_invoke_begin(plan_->step_count());
  for (const PlanStep& step : plan_->steps()) {
    arena_.reset();
    auto start = Clock::now();
    step.kernel->invoke(step.ctx);
    const double node_ms = ms_since(start);
    const auto id = static_cast<std::size_t>(step.node->id);
    stats_.per_node_ms[id] = node_ms;
    stats_.per_node_total_ms[id] += node_ms;
    if (observer_ != nullptr) {
      observer_->on_step(*step.node, activations_[id], node_ms);
    }
  }
  stats_.total_ms = ms_since(start_total);
  stats_.cumulative_ms += stats_.total_ms;
  stats_.arena_high_water_bytes = arena_.high_water_bytes();
  ++stats_.invoke_count;
  if (observer_ != nullptr) observer_->on_invoke_end(stats_);
}

const Tensor& Interpreter::output(int output_index) const {
  MLX_CHECK_LT(static_cast<std::size_t>(output_index),
               model_->outputs.size());
  return activations_[static_cast<std::size_t>(
      model_->outputs[static_cast<std::size_t>(output_index)])];
}

const Tensor& Interpreter::node_output(int node_id) const {
  MLX_CHECK(node_id >= 0 &&
            node_id < static_cast<int>(activations_.size()));
  return activations_[static_cast<std::size_t>(node_id)];
}

std::size_t Interpreter::activation_bytes() const {
  std::size_t total = 0;
  for (const Tensor& t : activations_) total += t.byte_size();
  return total;
}

}  // namespace mlexray
