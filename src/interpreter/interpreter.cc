#include "src/interpreter/interpreter.h"

namespace mlexray {

Interpreter::Interpreter(const Graph* graph, const OpResolver* resolver,
                         int num_threads)
    : model_(graph, resolver, num_threads), session_(&model_) {}

}  // namespace mlexray
