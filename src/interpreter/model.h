// Model: an immutable, shareable prepared model — the "load once" half of
// the serving API.
//
// A Model bundles everything about a deployment artifact that is identical
// for every caller: the Graph (weights, shapes, quant params), the
// ExecutionPlan (kernels resolved once, prepare hooks run once), and the
// plan-owned PreparedStorage (packed GEMM B panels, requantization tables).
// Building a Model pays the full Prepare cost exactly once; afterwards the
// object is strictly read-only, so any number of Sessions — including
// Sessions invoking concurrently from different threads — can execute it
// without synchronization. N concurrent clients share one copy of
// prepared_bytes instead of paying N× prepare time and N× memory.
//
//   Model model(std::move(graph), &resolver);   // prepare once
//   Session a(&model), b(&model);               // serve many
//
// The Engine (src/interpreter/engine.h) adds a named registry and a session
// pool on top; Interpreter (src/interpreter/interpreter.h) is a thin
// compatibility shim that owns a private Model + Session pair.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "src/common/thread_pool.h"
#include "src/interpreter/execution_plan.h"

namespace mlexray {

class Model {
 public:
  // Owning: moves the graph in, so the Model is self-contained (the Engine's
  // load path). resolver must outlive the Model. num_threads > 1 gives the
  // model its OWN bounded worker set of at most num_threads - 1 threads,
  // clamped to the host's spare cores (ThreadPool::workers_for; the
  // invoking thread participates as worker 0), and num_threads is a hard
  // participant cap: no parallel_for issued by this model's sessions ever
  // uses more than num_threads threads. Different models' pools are fully
  // independent — concurrent sessions do not serialize across models.
  Model(Graph graph, const OpResolver* resolver, int num_threads = 1);

  // Non-owning: graph must outlive the Model (the Interpreter shim path,
  // where call sites traditionally keep the Graph alive themselves).
  Model(const Graph* graph, const OpResolver* resolver, int num_threads = 1);

  // Shared-pool variants (the Engine's load path): the model fans work onto
  // the caller-owned `shared_pool` — which may serve many models at once;
  // the pool runs concurrent jobs side by side — but never with more than
  // num_threads participants per job. shared_pool must outlive the Model;
  // nullptr or num_threads <= 1 runs kernels single-threaded.
  Model(Graph graph, const OpResolver* resolver, ThreadPool* shared_pool,
        int num_threads);
  Model(const Graph* graph, const OpResolver* resolver,
        ThreadPool* shared_pool, int num_threads);

  Model(const Model&) = delete;
  Model& operator=(const Model&) = delete;

  const Graph& graph() const { return *graph_; }
  const OpResolver& resolver() const { return *resolver_; }
  const ExecutionPlan& plan() const { return *plan_; }
  // The capped pool view sessions wire into every kernel context; null when
  // the model runs single-threaded.
  PoolRef pool() const { return pool_ref_; }
  // The num_threads this model honors (>= 1): the max participants of any
  // parallel_for a session of this model submits.
  int thread_cap() const { return thread_cap_; }
  const std::string& name() const { return graph_->name; }

  // Ids of the graph's kInput nodes, in insertion order (cached so sessions
  // don't rebuild the vector).
  const std::vector<int>& input_ids() const { return input_ids_; }

  // Bytes of plan-owned prepared storage — paid once, shared by every
  // session.
  std::size_t prepared_bytes() const { return plan_->prepared_bytes(); }

  // One-time Prepare wall clock (plan construction, weight packing).
  double prepare_ms() const { return prepare_ms_; }

 private:
  void build(ThreadPool* shared_pool, int num_threads);

  std::unique_ptr<const Graph> owned_graph_;  // null in the non-owning case
  const Graph* graph_;
  const OpResolver* resolver_;
  std::unique_ptr<ThreadPool> owned_pool_;  // per-model worker set (if any)
  PoolRef pool_ref_;  // owned or shared pool + thread_cap_; null => inline
  int thread_cap_ = 1;
  std::unique_ptr<ExecutionPlan> plan_;
  std::vector<int> input_ids_;
  double prepare_ms_ = 0.0;
};

}  // namespace mlexray
