// Model: an immutable, shareable prepared model — the "load once" half of
// the serving API.
//
// A Model bundles everything about a deployment artifact that is identical
// for every caller: the Graph (weights, shapes, quant params), the
// ExecutionPlan (kernels resolved once, prepare hooks run once), and the
// plan-owned PreparedStorage (packed GEMM B panels, requantization tables).
// Building a Model pays the full Prepare cost exactly once; afterwards the
// object is strictly read-only, so any number of Sessions — including
// Sessions invoking concurrently from different threads — can execute it
// without synchronization. N concurrent clients share one copy of
// prepared_bytes instead of paying N× prepare time and N× memory.
//
//   Model model(std::move(graph), &resolver);   // prepare once
//   Session a(&model), b(&model);               // serve many
//
// The Engine (src/interpreter/engine.h) adds a named registry and a session
// pool on top; Interpreter (src/interpreter/interpreter.h) is a thin
// compatibility shim that owns a private Model + Session pair.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "src/common/thread_pool.h"
#include "src/interpreter/execution_plan.h"

namespace mlexray {

class Model {
 public:
  // Owning: moves the graph in, so the Model is self-contained (the Engine's
  // load path). resolver must outlive the Model. num_threads > 1 attaches
  // the shared thread pool for kernels that support it — note that the pool
  // serializes jobs, so many-session serving typically wants num_threads=1
  // (one caller thread per session) while single-stream latency wants the
  // pool.
  Model(Graph graph, const OpResolver* resolver, int num_threads = 1);

  // Non-owning: graph must outlive the Model (the Interpreter shim path,
  // where call sites traditionally keep the Graph alive themselves).
  Model(const Graph* graph, const OpResolver* resolver, int num_threads = 1);

  Model(const Model&) = delete;
  Model& operator=(const Model&) = delete;

  const Graph& graph() const { return *graph_; }
  const OpResolver& resolver() const { return *resolver_; }
  const ExecutionPlan& plan() const { return *plan_; }
  ThreadPool* pool() const { return pool_; }
  const std::string& name() const { return graph_->name; }

  // Ids of the graph's kInput nodes, in insertion order (cached so sessions
  // don't rebuild the vector).
  const std::vector<int>& input_ids() const { return input_ids_; }

  // Bytes of plan-owned prepared storage — paid once, shared by every
  // session.
  std::size_t prepared_bytes() const { return plan_->prepared_bytes(); }

  // One-time Prepare wall clock (plan construction, weight packing).
  double prepare_ms() const { return prepare_ms_; }

 private:
  void build(int num_threads);

  std::unique_ptr<const Graph> owned_graph_;  // null in the non-owning case
  const Graph* graph_;
  const OpResolver* resolver_;
  ThreadPool* pool_ = nullptr;  // nullptr => single-threaded kernels
  std::unique_ptr<ExecutionPlan> plan_;
  std::vector<int> input_ids_;
  double prepare_ms_ = 0.0;
};

}  // namespace mlexray
