#include "src/interpreter/device_profile.h"

#include <algorithm>

namespace mlexray {

NodeCost estimate_node_cost(const Graph& model, const Node& node) {
  NodeCost cost;
  const std::int64_t out_elems = node.output_shape.num_elements();
  for (int in : node.inputs) {
    const Node& producer = model.node(in);
    cost.bytes += static_cast<double>(producer.output_shape.num_elements()) *
                  dtype_size(producer.output_dtype);
  }
  cost.bytes += static_cast<double>(out_elems) * dtype_size(node.output_dtype);
  for (const Tensor& w : node.weights) cost.bytes += static_cast<double>(w.byte_size());

  switch (node.type) {
    case OpType::kConv2D: {
      const Shape& fs = node.weights[0].shape();
      cost.flops = 2.0 * static_cast<double>(out_elems) *
                   static_cast<double>(fs.dim(1) * fs.dim(2) * fs.dim(3));
      break;
    }
    case OpType::kDepthwiseConv2D: {
      const Shape& fs = node.weights[0].shape();
      cost.flops = 2.0 * static_cast<double>(out_elems) *
                   static_cast<double>(fs.dim(1) * fs.dim(2));
      break;
    }
    case OpType::kFullyConnected: {
      const Shape& ws = node.weights[0].shape();
      cost.flops = 2.0 * static_cast<double>(node.output_shape.dim(0)) *
                   static_cast<double>(ws.dim(0) * ws.dim(1));
      break;
    }
    case OpType::kAvgPool2D:
    case OpType::kMaxPool2D:
      cost.flops = static_cast<double>(out_elems) *
                   static_cast<double>(node.attrs.filter_h * node.attrs.filter_w);
      break;
    case OpType::kMean: {
      const Node& in = model.node(node.inputs[0]);
      cost.flops = static_cast<double>(in.output_shape.num_elements());
      break;
    }
    case OpType::kBatchNorm:
    case OpType::kSoftmax:
    case OpType::kHardSwish:
    case OpType::kSigmoid:
    case OpType::kTanh:
      cost.flops = 4.0 * static_cast<double>(out_elems);
      break;
    case OpType::kAdd:
    case OpType::kSub:
    case OpType::kMul:
    case OpType::kRelu:
    case OpType::kRelu6:
    case OpType::kQuantize:
    case OpType::kDequantize:
      cost.flops = static_cast<double>(out_elems);
      break;
    default:
      cost.flops = 0.0;  // pure data movement (pad, reshape, concat, ...)
      break;
  }
  return cost;
}

namespace {

// Throughputs in ops/s and bytes/s; rough magnitudes for the paper's devices.
DeviceProfile make(std::string name, double f32, double i8, double bw,
                   double overhead, double conv_penalty) {
  DeviceProfile p;
  p.name = std::move(name);
  p.f32_flops_per_s = f32;
  p.i8_ops_per_s = i8;
  p.bytes_per_s = bw;
  p.per_op_overhead_ms = overhead;
  p.conv_f32_penalty = conv_penalty;
  return p;
}

}  // namespace

const DeviceProfile& DeviceProfile::pixel4_cpu() {
  static const DeviceProfile p =
      make("Pixel4-CPU", 4.5e9, 18e9, 12e9, 0.012, 1.0);
  return p;
}
const DeviceProfile& DeviceProfile::pixel4_gpu() {
  static const DeviceProfile p =
      make("Pixel4-GPU(Adreno640)", 36e9, 36e9, 24e9, 0.0016, 1.0);
  return p;
}
const DeviceProfile& DeviceProfile::pixel3_cpu() {
  static const DeviceProfile p =
      make("Pixel3-CPU", 3.6e9, 14e9, 10e9, 0.015, 1.0);
  return p;
}
const DeviceProfile& DeviceProfile::pixel3_gpu() {
  static const DeviceProfile p =
      make("Pixel3-GPU(Adreno630)", 21e9, 21e9, 18e9, 0.0028, 1.0);
  return p;
}
const DeviceProfile& DeviceProfile::emulator_x86() {
  // ARM-tuned float conv kernels fall off a cliff under emulation (the
  // paper measures 44x slower normal convs); integer paths are merely bad.
  static const DeviceProfile p =
      make("Emulator-x86", 4.0e9, 4.0e9, 10e9, 0.020, 30.0);
  return p;
}

double modeled_node_latency_ms(const Graph& model, const Node& node,
                               const DeviceProfile& profile) {
  if (node.type == OpType::kInput) return 0.0;
  NodeCost cost = estimate_node_cost(model, node);
  const bool integer_path = node.output_dtype == DType::kI8;
  double throughput =
      integer_path ? profile.i8_ops_per_s : profile.f32_flops_per_s;
  double compute_s = cost.flops / throughput;
  if (!integer_path && (node.type == OpType::kConv2D ||
                        node.type == OpType::kDepthwiseConv2D)) {
    compute_s *= profile.conv_f32_penalty;
  }
  double memory_s = cost.bytes / profile.bytes_per_s;
  return std::max(compute_s, memory_s) * 1e3 + profile.per_op_overhead_ms;
}

double modeled_graph_latency_ms(const Graph& model,
                                const DeviceProfile& profile) {
  double total = 0.0;
  for (const Node& n : model.nodes) {
    total += modeled_node_latency_ms(model, n, profile);
  }
  return total;
}

}  // namespace mlexray
