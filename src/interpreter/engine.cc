#include "src/interpreter/engine.h"

#include <algorithm>

namespace mlexray {

namespace {
constexpr std::size_t kNpos = static_cast<std::size_t>(-1);
}  // namespace

SessionLease& SessionLease::operator=(SessionLease&& other) noexcept {
  if (this != &other) {
    release();
    engine_ = other.engine_;
    version_ = other.version_;
    session_ = other.session_;
    other.engine_ = nullptr;
    other.version_ = nullptr;
    other.session_ = nullptr;
  }
  return *this;
}

void SessionLease::release() {
  if (engine_ != nullptr && session_ != nullptr) {
    engine_->release(version_, session_);
  }
  engine_ = nullptr;
  version_ = nullptr;
  session_ = nullptr;
}

std::uint64_t SessionLease::version() const {
  return version_ != nullptr ? version_->version_id : 0;
}

Engine::Engine(const OpResolver* resolver, int num_threads)
    : resolver_(resolver), num_threads_(num_threads) {
  MLX_CHECK(resolver != nullptr);
}

Engine::~Engine() = default;

std::size_t Engine::find_entry_locked(const std::string& name) const {
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (!entries_[i]->unloaded && entries_[i]->name == name) return i;
  }
  return kNpos;
}

Engine::Version* Engine::serving_version_locked(
    const std::string& name) const {
  const std::size_t i = find_entry_locked(name);
  if (i == kNpos) return nullptr;
  // A visible (non-unloaded) entry always has a serving back version: drain
  // only happens on hot-swap (which pushes the replacement first) or on
  // unload (which hides the entry).
  return entries_[i]->versions.back().get();
}

std::size_t Engine::prepared_bytes_total_locked() const {
  std::size_t total = 0;
  for (const auto& entry : entries_) {
    for (const auto& version : entry->versions) {
      total += version->model->prepared_bytes();
    }
  }
  return total;
}

const Model& Engine::load(const std::string& name, Graph graph) {
  // Build the model outside the lock: Prepare (weight packing) is the
  // expensive step and must not serialize against concurrent acquires of
  // already-loaded models. A build failure (bad graph, injected
  // plan.prepare fault) propagates here, before the registry is touched —
  // the previous version keeps serving.
  auto model = std::make_unique<Model>(std::move(graph), resolver_,
                                       num_threads_);

  std::lock_guard<std::mutex> lock(mu_);
  const std::size_t entry_index = find_entry_locked(name);
  Entry* entry = entry_index == kNpos ? nullptr : entries_[entry_index].get();
  Version* replaced =
      entry != nullptr ? entry->versions.back().get() : nullptr;

  if (prepared_budget_ != 0) {
    // Steady-state residency check: what the registry would hold once the
    // swap retires everything it can retire immediately.
    const std::size_t reclaimed =
        (replaced != nullptr && replaced->leases_outstanding == 0)
            ? replaced->model->prepared_bytes()
            : 0;
    const std::size_t projected = prepared_bytes_total_locked() - reclaimed +
                                  model->prepared_bytes();
    MLX_CHECK_LE(projected, prepared_budget_)
        << "loading '" << name << "' (" << model->prepared_bytes()
        << " prepared bytes) would exceed the engine budget; unload or drain "
           "a model first";
  }

  if (entry == nullptr) {
    entries_.push_back(std::make_unique<Entry>());
    entry = entries_.back().get();
    entry->name = name;
  }
  auto version = std::make_unique<Version>();
  version->entry = entry;
  version->version_id = entry->next_version_id++;
  version->model = std::move(model);
  entry->versions.push_back(std::move(version));

  if (replaced != nullptr) {
    // Hot-swap: the replaced version stops taking leases and is freed as
    // soon as the last outstanding lease releases (now, if none are out).
    replaced->draining = true;
    if (replaced->leases_outstanding == 0) retire_version_locked(replaced);
  }
  return *entry->versions.back()->model;
}

bool Engine::unload(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::size_t i = find_entry_locked(name);
  if (i == kNpos) return false;
  Entry* entry = entries_[i].get();
  entry->unloaded = true;
  // Drain every version; retire the ones with no lease out. Iterate over a
  // pointer snapshot because retiring erases from entry->versions (and
  // erasing the last one frees the entry itself).
  std::vector<Version*> versions;
  versions.reserve(entry->versions.size());
  for (const auto& v : entry->versions) versions.push_back(v.get());
  for (Version* v : versions) {
    v->draining = true;
    if (v->leases_outstanding == 0) retire_version_locked(v);
  }
  return true;
}

const Model* Engine::find(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const Version* v = serving_version_locked(name);
  return v != nullptr ? v->model.get() : nullptr;
}

SessionLease Engine::lease_locked(Version* version) {
  Entry& entry = *version->entry;
  ++entry.leases_issued;
  ++version->leases_outstanding;
  if (!version->free_list.empty()) {
    Session* session = version->free_list.back();
    version->free_list.pop_back();
    return SessionLease(this, version, session);
  }
  // Pool miss: build a new session. Session construction only reads the
  // immutable Model, but stays under the lock so the sessions/free_list
  // bookkeeping is simple; misses only happen while the pool warms up.
  version->sessions.push_back(
      std::make_unique<Session>(version->model.get()));
  ++entry.sessions_created;
  // Reserve free-list capacity for every session ever created, so release()
  // can push_back without allocating — part of the zero-alloc steady-state
  // acquire/invoke/release contract.
  version->free_list.reserve(version->sessions.size());
  return SessionLease(this, version, version->sessions.back().get());
}

SessionLease Engine::acquire(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  Version* version = serving_version_locked(name);
  MLX_CHECK(version != nullptr) << "model '" << name << "' not loaded";
  return lease_locked(version);
}

SessionLease Engine::try_acquire(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  Version* version = serving_version_locked(name);
  if (version == nullptr) return SessionLease();
  return lease_locked(version);
}

void Engine::retire_version_locked(Version* version) {
  Entry& entry = *version->entry;
  // Every remaining session sits in the free list (no leases outstanding);
  // destroying them and the Model frees the version's activation tensors
  // and prepared storage — the memory reclamation the drain protocol
  // promises.
  entry.sessions_destroyed += version->sessions.size();
  ++entry.versions_retired;
  for (auto it = entry.versions.begin(); it != entry.versions.end(); ++it) {
    if (it->get() == version) {
      entry.versions.erase(it);
      break;
    }
  }
  if (entry.unloaded && entry.versions.empty()) {
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (it->get() == &entry) {
        entries_.erase(it);
        break;
      }
    }
  }
}

void Engine::release(Version* version, Session* session) {
  // A stale observer must not fire into a TraceBuffer the previous
  // leaseholder may have destroyed.
  session->set_observer(nullptr);
  const bool poisoned = session->poisoned();
  std::lock_guard<std::mutex> lock(mu_);
  Entry& entry = *version->entry;
  MLX_CHECK_GT(version->leases_outstanding, 0u);
  --version->leases_outstanding;
  if (poisoned || version->draining) {
    // Pool-integrity rule: a poisoned session (partial activations from a
    // contained kernel failure) is never re-leased; a draining version
    // gives sessions back to the allocator, not the free list.
    if (poisoned) {
      entry.invoke_errors += session->last_stats().invoke_errors;
    }
    for (auto it = version->sessions.begin(); it != version->sessions.end();
         ++it) {
      if (it->get() == session) {
        version->sessions.erase(it);
        break;
      }
    }
    ++entry.sessions_destroyed;
  } else {
    version->free_list.push_back(session);
  }
  if (version->draining && version->leases_outstanding == 0) {
    retire_version_locked(version);
  }
}

EnginePoolStats Engine::pool_stats(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const std::size_t i = find_entry_locked(name);
  MLX_CHECK(i != kNpos) << "model '" << name << "' not loaded";
  const Entry& entry = *entries_[i];
  EnginePoolStats stats;
  stats.sessions_created = entry.sessions_created;
  stats.leases_issued = entry.leases_issued;
  stats.versions_retired = entry.versions_retired;
  stats.invoke_errors = entry.invoke_errors;
  stats.sessions_destroyed = entry.sessions_destroyed;
  stats.live_versions = entry.versions.size();
  for (const auto& v : entry.versions) {
    stats.leases_outstanding += v->leases_outstanding;
    stats.prepared_bytes_total += v->model->prepared_bytes();
    if (v->draining) ++stats.draining_versions;
  }
  const Version& serving = *entry.versions.back();
  stats.sessions_free = serving.free_list.size();
  stats.prepared_bytes = serving.model->prepared_bytes();
  stats.serving_version = serving.version_id;
  return stats;
}

std::uint64_t Engine::serving_version(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const Version* version = serving_version_locked(name);
  return version != nullptr ? version->version_id : 0;
}

std::size_t Engine::model_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t count = 0;
  for (const auto& entry : entries_) {
    if (!entry->unloaded) ++count;
  }
  return count;
}

std::size_t Engine::prepared_bytes_total() const {
  std::lock_guard<std::mutex> lock(mu_);
  return prepared_bytes_total_locked();
}

void Engine::set_prepared_budget(std::size_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  prepared_budget_ = bytes;
}

std::size_t Engine::prepared_budget() const {
  std::lock_guard<std::mutex> lock(mu_);
  return prepared_budget_;
}

}  // namespace mlexray
