#include "src/interpreter/engine.h"

namespace mlexray {

namespace {
constexpr std::size_t kNpos = static_cast<std::size_t>(-1);
}  // namespace

SessionLease& SessionLease::operator=(SessionLease&& other) noexcept {
  if (this != &other) {
    release();
    engine_ = other.engine_;
    entry_index_ = other.entry_index_;
    session_ = other.session_;
    other.engine_ = nullptr;
    other.session_ = nullptr;
  }
  return *this;
}

void SessionLease::release() {
  if (engine_ != nullptr && session_ != nullptr) {
    engine_->release(entry_index_, session_);
  }
  engine_ = nullptr;
  session_ = nullptr;
}

Engine::Engine(const OpResolver* resolver, int num_threads)
    : resolver_(resolver), num_threads_(num_threads) {
  MLX_CHECK(resolver != nullptr);
}

std::size_t Engine::find_locked(const std::string& name) const {
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (entries_[i]->name == name) return i;
  }
  return kNpos;
}

const Model& Engine::load(const std::string& name, Graph graph) {
  // Build the model outside the lock: Prepare (weight packing) is the
  // expensive step and must not serialize against concurrent acquires of
  // already-loaded models.
  auto model = std::make_unique<Model>(std::move(graph), resolver_,
                                       num_threads_);
  std::lock_guard<std::mutex> lock(mu_);
  MLX_CHECK(find_locked(name) == kNpos)
      << "model '" << name << "' already loaded";
  auto entry = std::make_unique<Entry>();
  entry->name = name;
  entry->model = std::move(model);
  entries_.push_back(std::move(entry));
  return *entries_.back()->model;
}

const Model* Engine::find(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const std::size_t i = find_locked(name);
  return i == kNpos ? nullptr : entries_[i]->model.get();
}

SessionLease Engine::acquire(const std::string& name) {
  std::unique_lock<std::mutex> lock(mu_);
  const std::size_t i = find_locked(name);
  MLX_CHECK(i != kNpos) << "model '" << name << "' not loaded";
  Entry& entry = *entries_[i];
  ++entry.leases_issued;
  if (!entry.free_list.empty()) {
    Session* session = entry.free_list.back();
    entry.free_list.pop_back();
    return SessionLease(this, i, session);
  }
  // Pool miss: build a new session. Session construction only reads the
  // immutable Model, but stays under the lock so the sessions/free_list
  // bookkeeping is simple; misses only happen while the pool warms up.
  entry.sessions.push_back(std::make_unique<Session>(entry.model.get()));
  // Reserve free-list capacity for every session ever created, so release()
  // can push_back without allocating — part of the zero-alloc steady-state
  // acquire/invoke/release contract.
  entry.free_list.reserve(entry.sessions.size());
  return SessionLease(this, i, entry.sessions.back().get());
}

void Engine::release(std::size_t entry_index, Session* session) {
  // A stale observer must not fire into a TraceBuffer the previous
  // leaseholder may have destroyed.
  session->set_observer(nullptr);
  std::lock_guard<std::mutex> lock(mu_);
  MLX_CHECK_LT(entry_index, entries_.size());
  entries_[entry_index]->free_list.push_back(session);
}

EnginePoolStats Engine::pool_stats(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const std::size_t i = find_locked(name);
  MLX_CHECK(i != kNpos) << "model '" << name << "' not loaded";
  const Entry& entry = *entries_[i];
  EnginePoolStats stats;
  stats.sessions_created = entry.sessions.size();
  stats.sessions_free = entry.free_list.size();
  stats.leases_issued = entry.leases_issued;
  stats.prepared_bytes = entry.model->prepared_bytes();
  return stats;
}

std::size_t Engine::model_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

}  // namespace mlexray
