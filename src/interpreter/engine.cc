#include "src/interpreter/engine.h"

#include <algorithm>
#include <cstring>

#include "src/tensor/tensor_stats.h"

namespace mlexray {

namespace {
constexpr std::size_t kNpos = static_cast<std::size_t>(-1);
}  // namespace

// One model name's canary: the reference Model + its single shadow Session,
// the sampling counter, and the running per-layer accumulators (indexed by
// reference plan step, so they survive production hot-swaps — only the
// name-based step mapping is rebuilt when the serving version changes).
struct Engine::CanaryState {
  CanaryOptions options;
  std::unique_ptr<Model> model;      // reference
  std::unique_ptr<Session> session;  // rebuilt if a reference invoke poisons it

  // Counters are atomics so pool_stats/canary_report read them without
  // contending on the shadow lock.
  std::atomic<std::uint64_t> release_counter{0};
  std::atomic<std::uint64_t> shadowed{0};
  std::atomic<std::uint64_t> skipped_busy{0};
  std::atomic<std::uint64_t> skipped_layout{0};
  std::atomic<std::uint64_t> reference_errors{0};

  // Everything below is guarded by shadow_mu: one shadow at a time, and a
  // contended sample is dropped (skipped_busy), never queued.
  std::mutex shadow_mu;
  std::vector<double> err_sum;  // per reference plan step
  std::vector<std::uint64_t> err_count;
  std::uint64_t mapped_version = 0;  // serving version the mapping is for
  bool mapping_ok = false;
  std::vector<int> prod_node_for_step;  // prod node id per ref step; -1 unmapped
  std::vector<int> prod_input_ids;
  CanaryObserver observer;

  void build_mapping(std::uint64_t version_id, const Graph& prod_graph) {
    mapped_version = version_id;
    mapping_ok = false;
    const Graph& ref_graph = model->graph();
    const std::vector<int> ref_inputs = ref_graph.input_ids();
    const std::vector<int> prod_inputs = prod_graph.input_ids();
    // The reference replays production inputs byte-for-byte, so the input
    // layout must match exactly; a hot-swap to an incompatible model keeps
    // the canary alive but skips frames until the layout matches again.
    if (ref_inputs.size() != prod_inputs.size()) return;
    for (std::size_t i = 0; i < ref_inputs.size(); ++i) {
      const Node& ref_in = ref_graph.node(ref_inputs[i]);
      const Node& prod_in = prod_graph.node(prod_inputs[i]);
      if (!(ref_in.output_shape == prod_in.output_shape) ||
          ref_in.output_dtype != prod_in.output_dtype) {
        return;
      }
    }
    prod_input_ids = prod_inputs;
    // Steps align by node name (per_layer_drift's rule): layers the
    // production graph renamed or dropped simply stop sampling.
    const auto& steps = model->plan().steps();
    prod_node_for_step.assign(steps.size(), -1);
    for (std::size_t s = 0; s < steps.size(); ++s) {
      for (const Node& n : prod_graph.nodes) {
        if (n.name == steps[s].node->name) {
          prod_node_for_step[s] = n.id;
          break;
        }
      }
    }
    mapping_ok = true;
  }

  // Requires shadow_mu held; prod's activations are owned by the releasing
  // thread until release() takes the pool lock.
  void shadow_locked(std::uint64_t version_id, const Graph& prod_graph,
                     const Session& prod) {
    if (mapped_version != version_id) build_mapping(version_id, prod_graph);
    if (!mapping_ok) {
      skipped_layout.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    for (std::size_t i = 0; i < prod_input_ids.size(); ++i) {
      const Tensor& src = prod.node_output(prod_input_ids[i]);
      Tensor& dst = session->mutable_input(static_cast<int>(i));
      MLX_CHECK_EQ(dst.byte_size(), src.byte_size());
      std::memcpy(dst.raw_data(), src.raw_data(), src.byte_size());
    }
    const InvokeStatus status = session->try_invoke();
    if (!status.ok()) {
      reference_errors.fetch_add(1, std::memory_order_relaxed);
      if (session->poisoned()) {
        session = std::make_unique<Session>(model.get());
      }
      return;
    }
    CanaryShadowEvent event;
    event.shadow_index = shadowed.fetch_add(1, std::memory_order_relaxed) + 1;
    const auto& steps = model->plan().steps();
    for (std::size_t s = 0; s < steps.size(); ++s) {
      const int prod_id = prod_node_for_step[s];
      if (prod_id < 0) continue;
      // Paper metric, same direction as per_layer_drift: the edge
      // (production) activations against the reference's, normalized by the
      // reference value range.
      const double err = normalized_rmse(
          prod.node_output(prod_id), session->node_output(steps[s].node->id));
      err_sum[s] += err;
      ++err_count[s];
      if (err > event.max_layer_error) event.max_layer_error = err;
      if (event.first_divergent_step < 0 && err > options.drift_threshold) {
        event.first_divergent_step = static_cast<int>(s);
        event.first_divergent_layer = steps[s].node->name;
      }
    }
    if (observer) observer(event);
  }

  // Requires shadow_mu held.
  CanaryReport report_locked() const {
    CanaryReport report;
    report.enabled = true;
    report.shadowed = shadowed.load(std::memory_order_relaxed);
    report.skipped_busy = skipped_busy.load(std::memory_order_relaxed);
    report.skipped_layout = skipped_layout.load(std::memory_order_relaxed);
    report.reference_errors = reference_errors.load(std::memory_order_relaxed);
    report.threshold = options.drift_threshold;
    const auto& steps = model->plan().steps();
    report.layers.reserve(steps.size());
    for (std::size_t s = 0; s < steps.size(); ++s) {
      CanaryLayerDrift layer;
      layer.layer = steps[s].node->name;
      layer.samples = err_count[s];
      layer.mean_error =
          err_count[s] > 0 ? err_sum[s] / static_cast<double>(err_count[s])
                           : 0.0;
      layer.suspect =
          err_count[s] > 0 && layer.mean_error > options.drift_threshold;
      if (layer.suspect && !report.first_suspect.has_value()) {
        report.first_suspect = layer.layer;
      }
      report.layers.push_back(std::move(layer));
    }
    return report;
  }
};

SessionLease& SessionLease::operator=(SessionLease&& other) noexcept {
  if (this != &other) {
    release();
    engine_ = other.engine_;
    version_ = other.version_;
    session_ = other.session_;
    other.engine_ = nullptr;
    other.version_ = nullptr;
    other.session_ = nullptr;
  }
  return *this;
}

void SessionLease::release() {
  if (engine_ != nullptr && session_ != nullptr) {
    engine_->release(version_, session_);
  }
  engine_ = nullptr;
  version_ = nullptr;
  session_ = nullptr;
}

std::uint64_t SessionLease::version() const {
  return version_ != nullptr ? version_->version_id : 0;
}

Engine::Engine(const OpResolver* resolver, int num_threads)
    : resolver_(resolver), num_threads_(num_threads) {
  MLX_CHECK(resolver != nullptr);
  // One bounded worker set for the whole engine: models share workers
  // (multi-job submission keeps concurrent leases from serializing) instead
  // of spawning threads per loaded model. Sized by ThreadPool::workers_for,
  // so it never outgrows the host's cores.
  if (num_threads_ > 1) {
    pool_ = std::make_unique<ThreadPool>(ThreadPool::workers_for(num_threads_));
  }
}

Engine::~Engine() = default;

std::size_t Engine::find_entry_locked(const std::string& name) const {
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (!entries_[i]->unloaded && entries_[i]->name == name) return i;
  }
  return kNpos;
}

Engine::Version* Engine::serving_version_locked(
    const std::string& name) const {
  const std::size_t i = find_entry_locked(name);
  if (i == kNpos) return nullptr;
  // A visible (non-unloaded) entry always has a serving back version: drain
  // only happens on hot-swap (which pushes the replacement first) or on
  // unload (which hides the entry).
  return entries_[i]->versions.back().get();
}

std::size_t Engine::prepared_bytes_total_locked() const {
  std::size_t total = 0;
  for (const auto& entry : entries_) {
    for (const auto& version : entry->versions) {
      total += version->model->prepared_bytes();
    }
  }
  return total;
}

const Model& Engine::load(const std::string& name, Graph graph) {
  // Build the model outside the lock: Prepare (weight packing) is the
  // expensive step and must not serialize against concurrent acquires of
  // already-loaded models. A build failure (bad graph, injected
  // plan.prepare fault) propagates here, before the registry is touched —
  // the previous version keeps serving.
  auto model = std::make_unique<Model>(std::move(graph), resolver_,
                                       pool_.get(), num_threads_);

  std::lock_guard<std::mutex> lock(mu_);
  const std::size_t entry_index = find_entry_locked(name);
  Entry* entry = entry_index == kNpos ? nullptr : entries_[entry_index].get();
  Version* replaced =
      entry != nullptr ? entry->versions.back().get() : nullptr;

  if (prepared_budget_ != 0) {
    // Steady-state residency check: what the registry would hold once the
    // swap retires everything it can retire immediately.
    const std::size_t reclaimed =
        (replaced != nullptr && replaced->leases_outstanding == 0)
            ? replaced->model->prepared_bytes()
            : 0;
    const std::size_t projected = prepared_bytes_total_locked() - reclaimed +
                                  model->prepared_bytes();
    MLX_CHECK_LE(projected, prepared_budget_)
        << "loading '" << name << "' (" << model->prepared_bytes()
        << " prepared bytes) would exceed the engine budget; unload or drain "
           "a model first";
  }

  if (entry == nullptr) {
    entries_.push_back(std::make_unique<Entry>());
    entry = entries_.back().get();
    entry->name = name;
  }
  auto version = std::make_unique<Version>();
  version->entry = entry;
  version->version_id = entry->next_version_id++;
  version->model = std::move(model);
  entry->versions.push_back(std::move(version));

  if (replaced != nullptr) {
    // Hot-swap: the replaced version stops taking leases and is freed as
    // soon as the last outstanding lease releases (now, if none are out).
    replaced->draining = true;
    if (replaced->leases_outstanding == 0) retire_version_locked(replaced);
  }
  return *entry->versions.back()->model;
}

bool Engine::unload(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::size_t i = find_entry_locked(name);
  if (i == kNpos) return false;
  Entry* entry = entries_[i].get();
  entry->unloaded = true;
  // Drain every version; retire the ones with no lease out. Iterate over a
  // pointer snapshot because retiring erases from entry->versions (and
  // erasing the last one frees the entry itself).
  std::vector<Version*> versions;
  versions.reserve(entry->versions.size());
  for (const auto& v : entry->versions) versions.push_back(v.get());
  for (Version* v : versions) {
    v->draining = true;
    if (v->leases_outstanding == 0) retire_version_locked(v);
  }
  return true;
}

const Model* Engine::find(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const Version* v = serving_version_locked(name);
  return v != nullptr ? v->model.get() : nullptr;
}

SessionLease Engine::lease_locked(Version* version) {
  Entry& entry = *version->entry;
  ++entry.leases_issued;
  ++version->leases_outstanding;
  if (!version->free_list.empty()) {
    Session* session = version->free_list.back();
    version->free_list.pop_back();
    return SessionLease(this, version, session);
  }
  // Pool miss: build a new session. Session construction only reads the
  // immutable Model, but stays under the lock so the sessions/free_list
  // bookkeeping is simple; misses only happen while the pool warms up.
  version->sessions.push_back(
      std::make_unique<Session>(version->model.get()));
  ++entry.sessions_created;
  // Reserve free-list capacity for every session ever created, so release()
  // can push_back without allocating — part of the zero-alloc steady-state
  // acquire/invoke/release contract.
  version->free_list.reserve(version->sessions.size());
  return SessionLease(this, version, version->sessions.back().get());
}

SessionLease Engine::acquire(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  Version* version = serving_version_locked(name);
  MLX_CHECK(version != nullptr) << "model '" << name << "' not loaded";
  return lease_locked(version);
}

SessionLease Engine::try_acquire(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  Version* version = serving_version_locked(name);
  if (version == nullptr) return SessionLease();
  return lease_locked(version);
}

void Engine::retire_version_locked(Version* version) {
  Entry& entry = *version->entry;
  // Every remaining session sits in the free list (no leases outstanding);
  // destroying them and the Model frees the version's activation tensors
  // and prepared storage — the memory reclamation the drain protocol
  // promises.
  entry.sessions_destroyed += version->sessions.size();
  ++entry.versions_retired;
  for (auto it = entry.versions.begin(); it != entry.versions.end(); ++it) {
    if (it->get() == version) {
      entry.versions.erase(it);
      break;
    }
  }
  if (entry.unloaded && entry.versions.empty()) {
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (it->get() == &entry) {
        entries_.erase(it);
        break;
      }
    }
  }
}

void Engine::release(Version* version, Session* session) {
  // A stale observer must not fire into a TraceBuffer the previous
  // leaseholder may have destroyed.
  session->set_observer(nullptr);
  // Canary shadowing runs here, before the pool lock: the releasing thread
  // still owns the session (its activations are the production frame being
  // diffed) and the lease still pins version + entry. The sampled slow path
  // pays a reference invoke; the common path pays one relaxed load.
  if (canary_active_.load(std::memory_order_acquire)) {
    maybe_shadow(version, session);
  }
  const bool poisoned = session->poisoned();
  std::lock_guard<std::mutex> lock(mu_);
  Entry& entry = *version->entry;
  MLX_CHECK_GT(version->leases_outstanding, 0u);
  --version->leases_outstanding;
  if (poisoned || version->draining) {
    // Pool-integrity rule: a poisoned session (partial activations from a
    // contained kernel failure) is never re-leased; a draining version
    // gives sessions back to the allocator, not the free list.
    if (poisoned) {
      entry.invoke_errors += session->last_stats().invoke_errors;
    }
    for (auto it = version->sessions.begin(); it != version->sessions.end();
         ++it) {
      if (it->get() == session) {
        version->sessions.erase(it);
        break;
      }
    }
    ++entry.sessions_destroyed;
  } else {
    version->free_list.push_back(session);
  }
  if (version->draining && version->leases_outstanding == 0) {
    retire_version_locked(version);
  }
}

EnginePoolStats Engine::pool_stats(const std::string& name) const {
  EnginePoolStats stats;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const std::size_t i = find_entry_locked(name);
    MLX_CHECK(i != kNpos) << "model '" << name << "' not loaded";
    const Entry& entry = *entries_[i];
    stats.sessions_created = entry.sessions_created;
    stats.leases_issued = entry.leases_issued;
    stats.versions_retired = entry.versions_retired;
    stats.invoke_errors = entry.invoke_errors;
    stats.sessions_destroyed = entry.sessions_destroyed;
    stats.live_versions = entry.versions.size();
    for (const auto& v : entry.versions) {
      stats.leases_outstanding += v->leases_outstanding;
      stats.prepared_bytes_total += v->model->prepared_bytes();
      if (v->draining) ++stats.draining_versions;
    }
    const Version& serving = *entry.versions.back();
    stats.sessions_free = serving.free_list.size();
    stats.prepared_bytes = serving.model->prepared_bytes();
    stats.serving_version = serving.version_id;
  }
  // Canary counters are folded in after mu_ is dropped (the suspect count
  // takes the canary's own shadow lock; the two locks never nest).
  if (std::shared_ptr<CanaryState> canary = canary_for(name)) {
    stats.canary_enabled = true;
    stats.canary_shadowed = canary->shadowed.load(std::memory_order_relaxed);
    stats.canary_skipped =
        canary->skipped_busy.load(std::memory_order_relaxed) +
        canary->skipped_layout.load(std::memory_order_relaxed);
    stats.canary_reference_errors =
        canary->reference_errors.load(std::memory_order_relaxed);
    std::lock_guard<std::mutex> shadow_lock(canary->shadow_mu);
    for (std::size_t s = 0; s < canary->err_count.size(); ++s) {
      if (canary->err_count[s] > 0 &&
          canary->err_sum[s] / static_cast<double>(canary->err_count[s]) >
              canary->options.drift_threshold) {
        ++stats.canary_suspect_layers;
      }
    }
  }
  return stats;
}

std::uint64_t Engine::serving_version(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const Version* version = serving_version_locked(name);
  return version != nullptr ? version->version_id : 0;
}

std::size_t Engine::model_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t count = 0;
  for (const auto& entry : entries_) {
    if (!entry->unloaded) ++count;
  }
  return count;
}

std::size_t Engine::prepared_bytes_total() const {
  std::lock_guard<std::mutex> lock(mu_);
  return prepared_bytes_total_locked();
}

void Engine::set_prepared_budget(std::size_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  prepared_budget_ = bytes;
}

std::size_t Engine::prepared_budget() const {
  std::lock_guard<std::mutex> lock(mu_);
  return prepared_budget_;
}

// --- canary mode -------------------------------------------------------------

std::shared_ptr<Engine::CanaryState> Engine::canary_for(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(canary_mu_);
  for (const auto& [n, state] : canaries_) {
    if (n == name) return state;
  }
  return nullptr;
}

void Engine::enable_canary(const std::string& name, Graph reference,
                           const OpResolver* resolver, CanaryOptions options) {
  MLX_CHECK_GT(options.shadow_every, 0u) << "shadow_every must be >= 1";
  auto state = std::make_shared<CanaryState>();
  state->options = options;
  // The reference Model builds outside every lock (Prepare is the expensive
  // step, same rationale as load()).
  state->model = std::make_unique<Model>(
      std::move(reference), resolver != nullptr ? resolver : resolver_,
      pool_.get(), num_threads_);
  state->session = std::make_unique<Session>(state->model.get());
  const std::size_t steps = state->model->plan().steps().size();
  state->err_sum.assign(steps, 0.0);
  state->err_count.assign(steps, 0);
  std::lock_guard<std::mutex> lock(canary_mu_);
  for (auto& [n, existing] : canaries_) {
    if (n == name) {
      // Re-enabling swaps the reference and restarts the running report; an
      // in-flight shadow finishes against the old state it snapshotted.
      existing = std::move(state);
      return;
    }
  }
  canaries_.emplace_back(name, std::move(state));
  canary_active_.store(true, std::memory_order_release);
}

bool Engine::disable_canary(const std::string& name) {
  std::lock_guard<std::mutex> lock(canary_mu_);
  for (auto it = canaries_.begin(); it != canaries_.end(); ++it) {
    if (it->first == name) {
      canaries_.erase(it);
      if (canaries_.empty()) {
        canary_active_.store(false, std::memory_order_release);
      }
      return true;
    }
  }
  return false;
}

CanaryReport Engine::canary_report(const std::string& name) const {
  std::shared_ptr<CanaryState> canary = canary_for(name);
  if (canary == nullptr) return CanaryReport{};
  std::lock_guard<std::mutex> lock(canary->shadow_mu);
  return canary->report_locked();
}

void Engine::set_canary_observer(const std::string& name,
                                 CanaryObserver observer) {
  std::shared_ptr<CanaryState> canary = canary_for(name);
  MLX_CHECK(canary != nullptr)
      << "no canary enabled for model '" << name << "'";
  std::lock_guard<std::mutex> lock(canary->shadow_mu);
  canary->observer = std::move(observer);
}

void Engine::maybe_shadow(Version* version, Session* session) {
  // Only coherent frames are diffed: a poisoned session or a
  // deadline-expired invoke left partial activations.
  if (session->poisoned() || !session->last_invoke_ok()) return;
  std::shared_ptr<CanaryState> canary = canary_for(version->entry->name);
  if (canary == nullptr) return;
  const std::uint64_t n =
      canary->release_counter.fetch_add(1, std::memory_order_relaxed) + 1;
  if (n % canary->options.shadow_every != 0) return;
  std::unique_lock<std::mutex> lock(canary->shadow_mu, std::try_to_lock);
  if (!lock.owns_lock()) {
    // Another release is mid-shadow; drop the sample rather than stall the
    // pool behind a reference invoke.
    canary->skipped_busy.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  canary->shadow_locked(version->version_id, version->model->graph(),
                        *session);
}

}  // namespace mlexray
