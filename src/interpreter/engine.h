// Engine: a named, versioned model registry with pooled sessions — the
// serving façade over Model/Session, including the model-lifecycle story
// (load, hot-swap, drain, unload) and the pool-integrity story for failed
// invokes.
//
//   Engine engine(&resolver);
//   engine.load("mobilenet", std::move(graph_v1));   // version 1 serves
//   {
//     SessionLease lease = engine.acquire("mobilenet");
//     lease->set_input(0, input);
//     InvokeStatus s = lease->try_invoke(/*deadline_ms=*/50);
//     if (s.ok()) use(lease->output(0));
//   }                                                // session returns to pool
//   engine.load("mobilenet", std::move(graph_v2));   // hot-swap: v2 serves,
//                                                    // v1 drains
//
// Versioned lifecycle. load() under an existing name registers a NEW
// version: new acquires immediately get the latest version while every
// outstanding lease keeps pinning the version it was issued from
// (refcounted via leases_outstanding). The replaced version transitions
// loading -> serving -> draining -> retired: a draining version accepts no
// new leases, returning sessions are destroyed instead of re-pooled, and
// when the last lease releases, the version's sessions and Model (prepared
// storage) are freed. unload() drains every version of a name; the name
// disappears from acquire/find immediately and memory is reclaimed as
// leases come home. A failed load (Model build throw) leaves the previous
// version serving untouched.
//
// Failure containment. Session::try_invoke poisons a session whose kernel
// threw; release() destroys poisoned sessions instead of re-pooling them
// (counted in EnginePoolStats::invoke_errors / sessions_destroyed), so a
// contained fault on one lease can never leak partial activations to the
// next leaseholder. The shared Model is read-only during invoke and always
// survives.
//
// Memory accounting. Every version's Model reports prepared_bytes;
// prepared_bytes_total() sums the live versions. An optional engine-wide
// budget (set_prepared_budget) makes load() refuse — after retiring
// whatever a hot-swap can retire immediately — rather than grow past the
// budget.
//
// Leases are RAII: destroying (or move-assigning over) a SessionLease
// returns the session. The engine clears the session's observer on release
// so a stale TraceBuffer attachment never fires for the next leaseholder.
// The Engine must outlive every lease it issued.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/drift/canary.h"
#include "src/interpreter/session.h"

namespace mlexray {

class SessionLease;

// Pool + lifecycle visibility for one model name (tests and the serving
// benchmark assert prepare-once/serve-many, drain, and containment through
// these). Unless noted, counters are name-wide and survive version
// retirement.
struct EnginePoolStats {
  std::size_t sessions_created = 0;   // ever built, across versions
  std::size_t sessions_free = 0;      // serving version's free list
  std::uint64_t leases_issued = 0;    // acquire()/try_acquire() grants
  std::size_t prepared_bytes = 0;     // serving version's Model
  std::uint64_t serving_version = 0;  // 0 when no version serves (unloaded)
  std::size_t live_versions = 0;      // serving + draining
  std::size_t draining_versions = 0;
  std::size_t leases_outstanding = 0;    // across live versions
  std::uint64_t versions_retired = 0;    // fully drained and freed
  std::uint64_t invoke_errors = 0;       // contained kernel failures
  std::size_t sessions_destroyed = 0;    // poisoned + drained sessions
  std::size_t prepared_bytes_total = 0;  // across live versions
  // Canary mode (src/drift/canary.h); all zero when no canary is enabled.
  bool canary_enabled = false;
  std::uint64_t canary_shadowed = 0;
  std::uint64_t canary_skipped = 0;  // busy + layout skips
  std::uint64_t canary_reference_errors = 0;
  std::size_t canary_suspect_layers = 0;
};

class Engine {
 public:
  // resolver must outlive the engine. num_threads > 1 gives the engine ONE
  // shared worker set — at most num_threads - 1 threads, clamped to the
  // host's spare cores (ThreadPool::workers_for) — that every Model built
  // by load() fans onto, with num_threads as each job's hard participant
  // cap.
  // The pool runs concurrent jobs side by side, so a multi-threaded invoke
  // on one lease does not serialize other leases' invokes (any model, any
  // version) — they share workers instead of queueing behind one another.
  // Many-session serving on a saturated host still usually wants the
  // default 1 (one caller thread per session).
  explicit Engine(const OpResolver* resolver, int num_threads = 1);
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  // Builds and registers a Model under `name`. A new name starts at
  // version 1; an existing name hot-swaps: the new version serves all
  // future acquires, the old one drains (freed when its last lease
  // releases, immediately if none are outstanding). Throws MlxError if the
  // prepared-bytes budget would be exceeded or the Model build fails — in
  // both cases the previous version keeps serving. Returns the shared
  // Model. Thread-safe.
  const Model& load(const std::string& name, Graph graph);

  // Drains every version of `name`: it immediately disappears from
  // acquire/find/try_acquire, outstanding leases keep their pinned
  // versions, and each version's sessions + prepared storage are freed when
  // its last lease releases. Returns false for unknown names. The name may
  // be load()ed again right away (starting a fresh version lineage).
  // Thread-safe.
  bool unload(const std::string& name);

  // The serving version's model, or nullptr. Thread-safe.
  const Model* find(const std::string& name) const;

  // A session over the named model's serving version, from the free list
  // when possible. acquire() throws MlxError for unknown (or unloaded)
  // names; try_acquire() returns an empty lease instead, so serving front
  // ends report "no such model" without unwinding. Thread-safe; the
  // returned lease is for this thread.
  SessionLease acquire(const std::string& name);
  SessionLease try_acquire(const std::string& name);

  EnginePoolStats pool_stats(const std::string& name) const;
  std::size_t model_count() const;

  // The version id currently serving `name`, or 0 for unknown/unloaded
  // names. Cheap (one registry lookup) — the FrontDoor circuit breaker polls
  // it so a hot-swap can heal an open breaker without a probe. Thread-safe.
  std::uint64_t serving_version(const std::string& name) const;

  // Prepared bytes across every live version of every name.
  std::size_t prepared_bytes_total() const;

  // Engine-wide ceiling on prepared_bytes_total(); 0 (default) disables the
  // check. When a load() would exceed it — after retiring what the swap can
  // retire immediately — the load throws and the registry is unchanged.
  // The budget covers steady-state residency: the candidate Model is built
  // before the check, so the transient peak can overshoot.
  void set_prepared_budget(std::size_t bytes);
  std::size_t prepared_budget() const;

  // --- canary mode (online Fig-6 drift, src/drift/canary.h) -----------------
  // Builds a reference Model from `reference` + `resolver` (pass nullptr to
  // reuse the engine's own resolver) and starts shadowing a sampled fraction
  // of `name`'s releases through it. Enabling again replaces the reference
  // and resets the running report; the canary is keyed by name, so it
  // survives hot-swaps and unload/load cycles of the production model.
  // Throws MlxError if the reference Model fails to build. Thread-safe.
  void enable_canary(const std::string& name, Graph reference,
                     const OpResolver* resolver = nullptr,
                     CanaryOptions options = {});
  // Stops shadowing `name`; returns false when no canary was enabled. An
  // in-flight shadow on another thread finishes against the old reference.
  bool disable_canary(const std::string& name);
  // Snapshot of the running drift report (enabled=false when no canary).
  CanaryReport canary_report(const std::string& name) const;
  // Hook fired after every shadowed frame; pass nullptr to clear.
  void set_canary_observer(const std::string& name, CanaryObserver observer);

 private:
  friend class SessionLease;

  struct Entry;

  // One loaded Model version and its session pool. Heap-allocated so the
  // address is stable: leases pin their version by pointer.
  struct Version {
    Entry* entry = nullptr;
    std::uint64_t version_id = 0;
    std::unique_ptr<Model> model;
    // Owns every session built for this version; stable pointers (the
    // vector holds unique_ptrs). Poisoned or drained sessions are erased.
    std::vector<std::unique_ptr<Session>> sessions;
    std::vector<Session*> free_list;
    std::size_t leases_outstanding = 0;
    bool draining = false;
  };

  // One model name: its live versions (back = serving unless unloaded) and
  // the name-wide counters that outlive version retirement.
  struct Entry {
    std::string name;
    bool unloaded = false;  // hidden from find/acquire; dies with last version
    std::vector<std::unique_ptr<Version>> versions;
    std::uint64_t next_version_id = 1;
    std::uint64_t leases_issued = 0;
    std::size_t sessions_created = 0;
    std::uint64_t versions_retired = 0;
    std::uint64_t invoke_errors = 0;
    std::size_t sessions_destroyed = 0;
  };

  // Per-name canary state; defined in engine.cc (holds the reference Model +
  // Session and the running per-layer accumulators).
  struct CanaryState;

  // All helpers require mu_ held.
  std::size_t find_entry_locked(const std::string& name) const;
  Version* serving_version_locked(const std::string& name) const;
  SessionLease lease_locked(Version* version);
  void retire_version_locked(Version* version);
  std::size_t prepared_bytes_total_locked() const;

  void release(Version* version, Session* session);
  // Canary shadow attempt for a returning session; runs on the releasing
  // thread BEFORE mu_ is taken (the lease still pins version/entry).
  void maybe_shadow(Version* version, Session* session);
  std::shared_ptr<CanaryState> canary_for(const std::string& name) const;

  const OpResolver* resolver_;
  int num_threads_;
  // The engine-wide bounded worker set all models share (null when
  // num_threads_ <= 1). Declared before entries_ so it outlives every Model
  // during destruction.
  std::unique_ptr<ThreadPool> pool_;
  mutable std::mutex mu_;
  // unique_ptr so Entry addresses survive vector growth and erasure of
  // sibling entries (Versions hold Entry backpointers).
  std::vector<std::unique_ptr<Entry>> entries_;
  std::size_t prepared_budget_ = 0;

  // Canary registry, keyed by model name and guarded by canary_mu_ (pointer
  // snapshots only — per-shadow state is guarded by CanaryState's own
  // mutex). mu_ may be held when canary_mu_ is taken, never the reverse.
  mutable std::mutex canary_mu_;
  std::vector<std::pair<std::string, std::shared_ptr<CanaryState>>> canaries_;
  // Fast-path gate: release() checks this before touching canary_mu_, so
  // serving without canaries pays one relaxed load.
  std::atomic<bool> canary_active_{false};
};

// RAII handle to a pooled Session. Move-only; the destructor returns the
// session to the engine, which re-pools it (healthy), destroys it
// (poisoned or version draining), and retires the pinned version when its
// last lease comes home.
class SessionLease {
 public:
  SessionLease() = default;
  SessionLease(SessionLease&& other) noexcept { *this = std::move(other); }
  SessionLease& operator=(SessionLease&& other) noexcept;
  ~SessionLease() { release(); }

  SessionLease(const SessionLease&) = delete;
  SessionLease& operator=(const SessionLease&) = delete;

  Session* operator->() const { return session_; }
  Session& operator*() const { return *session_; }
  Session* get() const { return session_; }
  explicit operator bool() const { return session_ != nullptr; }

  // The model version this lease pins (1-based, per name); 0 for an empty
  // lease. Stable for the lease's lifetime even across hot-swaps.
  std::uint64_t version() const;

  // Returns the session to the pool early; the lease becomes empty.
  void release();

 private:
  friend class Engine;
  SessionLease(Engine* engine, Engine::Version* version, Session* session)
      : engine_(engine), version_(version), session_(session) {}

  Engine* engine_ = nullptr;
  Engine::Version* version_ = nullptr;
  Session* session_ = nullptr;
};

}  // namespace mlexray
