// Engine: a named-model registry with a pooled session free-list — the
// serving façade over Model/Session.
//
//   Engine engine(&resolver);
//   engine.load("mobilenet", std::move(graph));    // prepare once
//   {
//     SessionLease lease = engine.acquire("mobilenet");
//     lease->set_input(0, input);
//     lease->invoke();
//     use(lease->output(0));
//   }                                              // session returns to pool
//
// load() builds the Model (the expensive Prepare: kernel resolution, weight
// packing) exactly once per name. acquire() hands out a Session from a
// per-model free list, creating one only when the list is empty — so a
// steady-state acquire/invoke/release cycle touches no heap at all: acquire
// pops a pointer, invoke runs the zero-alloc prepared walk, release pushes
// the pointer back. T concurrent threads each holding a lease execute the
// same shared plan against private arenas.
//
// Leases are RAII: destroying (or move-assigning over) a SessionLease
// returns the session. The engine clears the session's observer on release
// so a stale TraceBuffer attachment never fires for the next leaseholder;
// a monitor observing a leased session should unobserve() before the lease
// is released (the released session may be re-leased by another thread).
// The Engine must outlive every lease it issued.
#pragma once

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/interpreter/session.h"

namespace mlexray {

class Engine;

// RAII handle to a pooled Session. Move-only; the destructor returns the
// session to the engine's free list.
class SessionLease {
 public:
  SessionLease() = default;
  SessionLease(SessionLease&& other) noexcept { *this = std::move(other); }
  SessionLease& operator=(SessionLease&& other) noexcept;
  ~SessionLease() { release(); }

  SessionLease(const SessionLease&) = delete;
  SessionLease& operator=(const SessionLease&) = delete;

  Session* operator->() const { return session_; }
  Session& operator*() const { return *session_; }
  Session* get() const { return session_; }
  explicit operator bool() const { return session_ != nullptr; }

  // Returns the session to the pool early; the lease becomes empty.
  void release();

 private:
  friend class Engine;
  SessionLease(Engine* engine, std::size_t entry_index, Session* session)
      : engine_(engine), entry_index_(entry_index), session_(session) {}

  Engine* engine_ = nullptr;
  std::size_t entry_index_ = 0;
  Session* session_ = nullptr;
};

// Pool visibility for one loaded model (tests and the serving benchmark
// assert prepare-once/serve-many through these).
struct EnginePoolStats {
  std::size_t sessions_created = 0;  // total sessions ever built
  std::size_t sessions_free = 0;     // currently in the free list
  std::uint64_t leases_issued = 0;   // acquire() calls
  std::size_t prepared_bytes = 0;    // shared Model prepared storage
};

class Engine {
 public:
  // resolver must outlive the engine. num_threads is forwarded to every
  // Model built by load() (see Model's note: serving across threads usually
  // wants the default 1).
  explicit Engine(const OpResolver* resolver, int num_threads = 1);

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  // Builds and registers a Model under `name` (which must be new), moving
  // the graph in so the engine owns the artifact end to end. Returns the
  // shared Model. Thread-safe.
  const Model& load(const std::string& name, Graph graph);

  // The loaded model, or nullptr. Thread-safe.
  const Model* find(const std::string& name) const;

  // A session over the named model, from the free list when possible.
  // Throws MlxError for unknown names. Thread-safe; the returned lease is
  // for this thread.
  SessionLease acquire(const std::string& name);

  EnginePoolStats pool_stats(const std::string& name) const;
  std::size_t model_count() const;

 private:
  friend class SessionLease;

  struct Entry {
    std::string name;
    std::unique_ptr<Model> model;
    // Owns every session ever created for this model; sessions are never
    // destroyed while the engine lives, so lease pointers stay stable.
    std::vector<std::unique_ptr<Session>> sessions;
    std::vector<Session*> free_list;
    std::uint64_t leases_issued = 0;
  };

  // Index into entries_ or npos; caller must hold mu_.
  std::size_t find_locked(const std::string& name) const;
  void release(std::size_t entry_index, Session* session);

  const OpResolver* resolver_;
  int num_threads_;
  mutable std::mutex mu_;
  // unique_ptr so Entry addresses survive vector growth (leases index by
  // position, but stats readers take Entry pointers under the lock).
  std::vector<std::unique_ptr<Entry>> entries_;
};

}  // namespace mlexray
