// FrontDoor: the overload-safe request layer over Engine — bounded
// admission, deadline-aware dynamic batching, load shedding, and a
// per-model-version circuit breaker.
//
//   Engine engine(&resolver);
//   engine.load("mobilenet", zoo_graph(/*batch=*/1));
//   engine.load("mobilenet@b8", zoo_graph(/*batch=*/8));
//   FrontDoor door(&engine, {.workers = 2});
//   FrontDoorModelOptions opts;
//   opts.max_wait_ms = 1.0;
//   opts.variants = {{1, "mobilenet"}, {8, "mobilenet@b8"}};
//   door.register_model("mobilenet", opts);
//
//   Ticket t = door.submit("mobilenet", frame, /*deadline_ms=*/20.0);
//   const RequestResult& r = t.wait();
//   if (r.code == RequestCode::kOk) use(r.outputs[0]);
//   t.release();   // recycles the slot (or let the Ticket destructor do it)
//
// Admission state machine. submit() either (a) copies the input into a
// pre-sized queue slot and returns a Ticket, or (b) rejects synchronously
// with a typed code — never an exception on the hot path:
//   kQueueFull          the model's bounded queue (or slot pool) is full;
//   kDeadlineInfeasible the EWMA service-time estimator projects that the
//                       request cannot finish by its deadline even if
//                       admitted now (queue depth ahead of it included);
//   kBreakerOpen        the model's circuit breaker is open (failing fast).
// Admitted requests reach exactly one terminal code: kOk, kError (invoke
// failed, after at most one retry), kDeadlineExceeded (the request's own
// deadline expired while its batch ran — a member coalesced with an
// earlier-deadline peer whose own deadline still has room is requeued once
// instead), kShed (dropped from the queue by the shedding policy or at
// shutdown), or kUnknownModel (the engine no longer serves any variant —
// e.g. unload raced the dispatch).
//
// Batching. Scheduler workers coalesce up to max_batch queued requests for
// the same model into one batched invoke: rows are memcpy'd into the input
// of the smallest registered batch variant that fits (spare rows repeat row
// 0 — batched graph rows are independent and bit-exact, so padding changes
// nothing but the constant per-batch cost), and the *earliest* member
// deadline is propagated into Session::try_invoke_until. A batch dispatches
// when max_batch requests are ready or the oldest has waited max_wait_ms.
//
// Shedding. At every batch formation the scheduler first sheds queued
// requests that can no longer make their deadline (already expired, or
// remaining budget below the EWMA service estimate) — serving them would be
// wasted work that makes everyone else later. Batch selection then prefers
// higher priority, then earlier deadline, then arrival order; under
// sustained overload the lowest-priority / closest-to-expiry requests are
// therefore the ones shed rather than everyone degrading together.
//
// Circuit breaker. Per model, keyed to the engine version that served the
// last batch. consecutive failed invokes >= breaker_failure_threshold trips
// the breaker open: queued requests flush as kBreakerOpen (on every
// transition to open — the initial trip and a failed half-open probe alike,
// so requests admitted behind a probe are never stranded) and new submits
// fail fast without touching the engine. After breaker_open_ms the breaker
// half-opens and admits a single probe batch: success closes it, failure
// re-opens. A hot-swap (engine serving version changes) resets the breaker
// immediately — the new version deserves a clean slate.
//
// Retry. A batch that fails with a contained invoke error (kError — the
// poisoned session is destroyed by the Engine, so faults never leak across
// requests) is retried once per request with jittered backoff, provided the
// request's deadline still has room; the second failure is final.
//
// Zero-alloc discipline. Queue slots (input + output tensors) are pre-sized
// at register_model; pending/free lists and the batch-size histogram are
// pre-reserved. Steady-state submit -> batch -> complete -> release
// performs no heap allocation (test-enforced with operator-new counters).
//
// Threading. One mutex guards all queues and stats; workers drop it around
// the engine invoke. Tickets may be waited on from any thread. The Engine
// must outlive the FrontDoor; Tickets must not outlive the FrontDoor.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/interpreter/engine.h"

namespace mlexray {

class FrontDoor;
struct FrontDoorSlot;       // one pre-sized queue slot (defined in the .cc)
struct FrontDoorModelEntry; // per-model queue + breaker state (ditto)

// Terminal (and rejection) outcome of one submitted request.
enum class RequestCode {
  kOk = 0,
  kError,              // invoke failed (after any retry); contained, never thrown
  kDeadlineExceeded,   // batched invoke hit the cooperative deadline mid-walk
  kUnknownModel,       // engine no longer serves the model (or never did)
  kQueueFull,          // rejected at admission: bounded queue / slot pool full
  kDeadlineInfeasible, // rejected at admission: EWMA says it can't make it
  kShed,               // dropped from the queue: expired / overload / shutdown
  kBreakerOpen,        // rejected (or flushed) while the breaker fails fast
};

const char* request_code_name(RequestCode code);

// True for codes decided at admission time (the request never entered the
// queue). kShed/kUnknownModel are terminal for *admitted* requests.
inline bool request_rejected(RequestCode code) {
  return code == RequestCode::kQueueFull ||
         code == RequestCode::kDeadlineInfeasible ||
         code == RequestCode::kBreakerOpen;
}

enum class BreakerState { kClosed = 0, kOpen, kHalfOpen };

const char* breaker_state_name(BreakerState state);

// Everything a caller learns about one request. `outputs` points at the
// request's pre-sized single-row output tensors: valid until the Ticket is
// released (Ticket path) or until the completion callback returns
// (submit_async path); only populated for kOk.
struct RequestResult {
  RequestCode code = RequestCode::kUnknownModel;
  double latency_us = 0.0;  // submit -> terminal, wall clock
  double queue_us = 0.0;    // submit -> batch dispatch (0 if never dispatched)
  int batch_size = 0;       // coalesced request count of the serving batch
  std::uint64_t version = 0;  // engine version that served it (0 if none)
  bool retried = false;
  const Tensor* outputs = nullptr;
  int output_count = 0;
};

// One engine-loaded batch flavor of a front-door model. `engine_model` must
// already be load()ed; its graph must be the same network built at
// batch=`batch` (row-independent, so any rows of a larger variant equal the
// batch-1 results bit for bit).
struct FrontDoorBatchVariant {
  int batch = 1;
  std::string engine_model;
};

struct FrontDoorModelOptions {
  std::size_t queue_capacity = 64;  // bounded admission queue (per model)
  // Largest coalesced batch; 0 means "largest registered variant". Clamped
  // to the largest variant batch.
  int max_batch = 0;
  double max_wait_ms = 1.0;  // batching SLO: oldest request waits at most this
  // Applied when submit passes deadline_ms <= 0; 0 = no deadline.
  double default_deadline_ms = 0.0;
  // Circuit breaker: consecutive failed invokes that trip it open, and how
  // long it fails fast before half-open-probing.
  int breaker_failure_threshold = 3;
  double breaker_open_ms = 50.0;
  // One bounded retry for transient contained faults, with jittered backoff.
  bool retry_transient_faults = true;
  double retry_backoff_min_ms = 0.2;
  double retry_backoff_max_ms = 2.0;
  // EWMA smoothing for the per-batch service-time estimate admission uses.
  double ewma_alpha = 0.2;
  // Batch flavors, ascending batch. Empty = {{1, <registered name>}}.
  std::vector<FrontDoorBatchVariant> variants;
};

// Counters for one front-door model (monotonic unless noted). submitted ==
// admitted + rejected_*; admitted == completed_ok + failed +
// deadline_exceeded + shed + flushed_breaker_open + unknown_model + (still
// queued/in flight).
struct FrontDoorStats {
  std::uint64_t submitted = 0;
  std::uint64_t admitted = 0;
  std::uint64_t completed_ok = 0;
  std::uint64_t failed = 0;              // terminal kError
  std::uint64_t deadline_exceeded = 0;   // terminal kDeadlineExceeded
  std::uint64_t shed = 0;                // terminal kShed
  std::uint64_t unknown_model = 0;       // terminal kUnknownModel
  std::uint64_t flushed_breaker_open = 0;  // queued, flushed on breaker trip
  std::uint64_t rejected_queue_full = 0;
  std::uint64_t rejected_infeasible = 0;
  std::uint64_t rejected_breaker_open = 0;
  std::uint64_t retries = 0;
  // Batch expired against another member's earlier deadline: requeued once.
  std::uint64_t deadline_requeues = 0;
  std::uint64_t batches = 0;  // dispatched batched invokes
  // batch_size_hist[n] = batches that coalesced exactly n requests
  // (index 0 unused); size max_batch + 1.
  std::vector<std::uint64_t> batch_size_hist;
  std::size_t queue_depth = 0;      // snapshot
  std::size_t max_queue_depth = 0;  // high-water
  std::size_t inflight = 0;         // snapshot: requests inside an invoke
  BreakerState breaker_state = BreakerState::kClosed;
  std::uint64_t breaker_trips = 0;
  std::uint64_t breaker_version = 0;  // engine version the breaker is keyed to
  double service_estimate_us = 0.0;   // EWMA per-batch service time
};

// Push-based visibility into *why* requests are dropped — the serving-side
// counterpart of InvokeObserver. Hooks fire under the front-door mutex: keep
// them cheap and never call back into the FrontDoor. Attach before traffic.
class FrontDoorObserver {
 public:
  virtual ~FrontDoorObserver() = default;
  virtual void on_rejected(const std::string& model, RequestCode code) {
    (void)model;
    (void)code;
  }
  virtual void on_shed(const std::string& model, int priority,
                       double overdue_ms) {
    (void)model;
    (void)priority;
    (void)overdue_ms;
  }
  virtual void on_dispatch(const std::string& model, int coalesced,
                           int variant_batch) {
    (void)model;
    (void)coalesced;
    (void)variant_batch;
  }
  virtual void on_complete(const std::string& model, RequestCode code,
                           double latency_us) {
    (void)model;
    (void)code;
    (void)latency_us;
  }
  virtual void on_breaker(const std::string& model, std::uint64_t version,
                          BreakerState from, BreakerState to) {
    (void)model;
    (void)version;
    (void)from;
    (void)to;
  }
};

// Completion callback for submit_async: fires exactly once per *admitted*
// request, on a scheduler thread, with the terminal result. The slot (and
// result.outputs) is recycled when the callback returns. Plain function
// pointer + context so the submit path never allocates.
using FrontDoorCallback = void (*)(void* ctx, const RequestResult& result);

struct FrontDoorOptions {
  int workers = 1;              // scheduler/dispatch threads
  std::uint64_t jitter_seed = 0x51ed5eedULL;  // retry-backoff jitter stream
};

// Handle to one submitted (or synchronously rejected) request. Move-only.
// wait() blocks until the terminal result; release() (or the destructor)
// recycles the slot — the result and its outputs die with it. Tickets must
// be released before the FrontDoor is destroyed.
class Ticket {
 public:
  Ticket() = default;
  Ticket(Ticket&& other) noexcept { *this = std::move(other); }
  Ticket& operator=(Ticket&& other) noexcept;
  ~Ticket() { release(); }

  Ticket(const Ticket&) = delete;
  Ticket& operator=(const Ticket&) = delete;

  // False only for a default-constructed / moved-from ticket.
  explicit operator bool() const { return valid_; }

  // True once the request reached a terminal code (never blocks). Rejected
  // tickets are born done.
  bool done() const;

  // Blocks until terminal; returns the result (stable until release()).
  const RequestResult& wait();

  // Recycles the queue slot. Safe to call repeatedly; blocks until the
  // request is terminal first (a slot can't be reclaimed mid-flight).
  void release();

 private:
  friend class FrontDoor;
  Ticket(FrontDoor* door, FrontDoorSlot* slot) : door_(door), slot_(slot), valid_(true) {}
  explicit Ticket(const RequestResult& inline_result)
      : inline_result_(inline_result), valid_(true) {}

  FrontDoor* door_ = nullptr;     // null for synchronously rejected tickets
  FrontDoorSlot* slot_ = nullptr;
  RequestResult inline_result_;   // used when slot_ == nullptr
  bool valid_ = false;
};

class FrontDoor {
 public:
  // engine must outlive the front door.
  explicit FrontDoor(Engine* engine, FrontDoorOptions options = {});
  // Stops the workers, completes every queued request as kShed (callbacks
  // fire inline), and joins. Release all Tickets first.
  ~FrontDoor();

  FrontDoor(const FrontDoor&) = delete;
  FrontDoor& operator=(const FrontDoor&) = delete;

  // Registers `name` for serving. Every variant's engine model must already
  // be loaded (the slot shapes are derived from it); throws MlxError on
  // inconsistent variants — registration is not the hot path. Idempotent
  // per name is NOT supported: registering the same name twice throws.
  void register_model(const std::string& name,
                      FrontDoorModelOptions options = {});
  bool registered(const std::string& name) const;

  // Blocking-capable path: admit (copying `input` into a queue slot) or
  // reject synchronously. The returned Ticket's result is one of the
  // terminal codes above; for rejections it is already done.
  Ticket submit(const std::string& model, const Tensor& input,
                double deadline_ms = 0.0, int priority = 0);

  // Fire-and-forget path for open-loop load generators: returns the
  // admission decision. kOk means admitted — `done(done_ctx, result)` will
  // fire exactly once on a scheduler thread; any other code means rejected
  // and the callback never fires.
  RequestCode submit_async(const std::string& model, const Tensor& input,
                           double deadline_ms, int priority,
                           FrontDoorCallback done, void* done_ctx);

  FrontDoorStats stats(const std::string& model) const;
  void set_observer(FrontDoorObserver* observer);

  // Tests/benches: pin the EWMA service estimate (microseconds) admission
  // and shedding use, as if measured.
  void set_service_estimate_for_testing(const std::string& model, double us);

  Engine* engine() const { return engine_; }

 private:
  friend class Ticket;

  using Clock = std::chrono::steady_clock;
  using ModelEntry = FrontDoorModelEntry;

  ModelEntry* find_model_locked(const std::string& name) const;
  RequestCode admit_locked(ModelEntry& m, const Tensor& input,
                           double deadline_ms, int priority,
                           FrontDoorCallback done, void* done_ctx,
                           Clock::time_point now, FrontDoorSlot** out_slot);
  void complete_locked(ModelEntry& m, FrontDoorSlot* slot, RequestCode code,
                       Clock::time_point now,
                       std::vector<FrontDoorSlot*>& callback_batch);
  void shed_unservable_locked(ModelEntry& m, Clock::time_point now,
                              std::vector<FrontDoorSlot*>& callback_batch);
  void breaker_transition_locked(ModelEntry& m, BreakerState to,
                                 Clock::time_point now);
  bool breaker_admits_locked(ModelEntry& m, Clock::time_point now);
  void form_batch_locked(ModelEntry& m, Clock::time_point now,
                         std::vector<FrontDoorSlot*>& batch);
  void execute_batch(ModelEntry& m, std::vector<FrontDoorSlot*>& batch,
                     bool was_probe,
                     std::vector<FrontDoorSlot*>& callback_batch,
                     std::unique_lock<std::mutex>& lock);
  void fire_callbacks(std::vector<FrontDoorSlot*>& callback_batch,
                      std::unique_lock<std::mutex>& lock);
  void recycle_slot_locked(FrontDoorSlot* slot);
  void worker_loop();

  Engine* engine_;
  FrontDoorOptions options_;
  mutable std::mutex mu_;
  std::condition_variable work_cv_;   // workers: new work / state change
  std::condition_variable done_cv_;   // ticket waiters
  // unique_ptr so ModelEntry addresses are stable across registration.
  std::vector<std::unique_ptr<FrontDoorModelEntry>> models_;
  FrontDoorObserver* observer_ = nullptr;
  std::vector<std::thread> workers_;
  std::size_t rr_cursor_ = 0;  // round-robin fairness across models
  std::uint64_t jitter_state_ = 0;  // retry-backoff jitter (guarded by mu_)
  bool stopping_ = false;
};

}  // namespace mlexray
