// Device latency modeling — the documented substitution for the paper's
// physical test devices (Pixel 4 / Pixel 3, Adreno mobile GPUs, and the x86
// Android emulator). See DESIGN.md §2.
//
// Numerics in this repo always come from real kernel execution; this model
// only answers "how long would this graph take on device X", with a
// roofline-style estimate per node:
//   t = max(flops / arithmetic_throughput, bytes / memory_bandwidth) + c0
// Profiles are calibrated so the relative shapes of the paper's Tables 2/4
// hold (GPU ~7-8x faster than CPU on float; the x86 emulator pathological on
// ARM-tuned float convolutions).
#pragma once

#include <string>
#include <vector>

#include "src/graph/graph.h"

namespace mlexray {

struct NodeCost {
  double flops = 0.0;   // multiply-accumulate counted as 2 flops
  double bytes = 0.0;   // activations in/out + weights touched
};

NodeCost estimate_node_cost(const Graph& model, const Node& node);

struct DeviceProfile {
  std::string name;
  double f32_flops_per_s;       // float arithmetic throughput
  double i8_ops_per_s;          // integer MAC throughput
  double bytes_per_s;           // effective memory bandwidth
  double per_op_overhead_ms;    // kernel launch/dispatch cost
  // Extra penalty multiplier applied to conv/dwconv float ops (models
  // architecture-specific kernels that do not transfer, e.g. ARM NEON paths
  // running under x86 emulation — the paper's Table 4 emulator column).
  double conv_f32_penalty = 1.0;

  static const DeviceProfile& pixel4_cpu();
  static const DeviceProfile& pixel4_gpu();
  static const DeviceProfile& pixel3_cpu();
  static const DeviceProfile& pixel3_gpu();
  static const DeviceProfile& emulator_x86();
};

// Modeled latency of one node / the whole graph on a device.
double modeled_node_latency_ms(const Graph& model, const Node& node,
                               const DeviceProfile& profile);
double modeled_graph_latency_ms(const Graph& model,
                                const DeviceProfile& profile);

}  // namespace mlexray
