#include "src/interpreter/model.h"

#include <chrono>

namespace mlexray {

Model::Model(Graph graph, const OpResolver* resolver, int num_threads)
    : owned_graph_(std::make_unique<const Graph>(std::move(graph))),
      graph_(owned_graph_.get()),
      resolver_(resolver) {
  build(num_threads);
}

Model::Model(const Graph* graph, const OpResolver* resolver, int num_threads)
    : graph_(graph), resolver_(resolver) {
  build(num_threads);
}

void Model::build(int num_threads) {
  using Clock = std::chrono::steady_clock;
  const auto start = Clock::now();
  MLX_CHECK(graph_ != nullptr);
  MLX_CHECK(resolver_ != nullptr);
  graph_->validate();
  pool_ = num_threads > 1 ? &ThreadPool::shared() : nullptr;
  input_ids_ = graph_->input_ids();
  MLX_CHECK(!input_ids_.empty()) << "graph has no inputs";
  plan_ = std::make_unique<ExecutionPlan>(*graph_, *resolver_, pool_);
  prepare_ms_ =
      std::chrono::duration<double, std::milli>(Clock::now() - start).count();
}

}  // namespace mlexray
