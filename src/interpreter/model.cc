#include "src/interpreter/model.h"

#include <chrono>

namespace mlexray {

Model::Model(Graph graph, const OpResolver* resolver, int num_threads)
    : owned_graph_(std::make_unique<const Graph>(std::move(graph))),
      graph_(owned_graph_.get()),
      resolver_(resolver) {
  build(/*shared_pool=*/nullptr, num_threads);
}

Model::Model(const Graph* graph, const OpResolver* resolver, int num_threads)
    : graph_(graph), resolver_(resolver) {
  build(/*shared_pool=*/nullptr, num_threads);
}

Model::Model(Graph graph, const OpResolver* resolver, ThreadPool* shared_pool,
             int num_threads)
    : owned_graph_(std::make_unique<const Graph>(std::move(graph))),
      graph_(owned_graph_.get()),
      resolver_(resolver) {
  build(shared_pool, num_threads);
}

Model::Model(const Graph* graph, const OpResolver* resolver,
             ThreadPool* shared_pool, int num_threads)
    : graph_(graph), resolver_(resolver) {
  build(shared_pool, num_threads);
}

void Model::build(ThreadPool* shared_pool, int num_threads) {
  using Clock = std::chrono::steady_clock;
  const auto start = Clock::now();
  MLX_CHECK(graph_ != nullptr);
  MLX_CHECK(resolver_ != nullptr);
  graph_->validate();
  // num_threads is a hard participant cap, not a hint: a request for k
  // threads gets a pool view whose every parallel_for is capped at k
  // participants (the invoking thread plus at most k - 1 workers). With no
  // shared pool the model owns its worker set outright — sized by
  // ThreadPool::workers_for, so it never outgrows the host's cores — and
  // concurrent models never contend for submission slots.
  thread_cap_ = num_threads > 1 ? num_threads : 1;
  if (thread_cap_ > 1) {
    if (shared_pool == nullptr) {
      owned_pool_ =
          std::make_unique<ThreadPool>(ThreadPool::workers_for(thread_cap_));
      shared_pool = owned_pool_.get();
    }
    pool_ref_ = PoolRef(shared_pool, static_cast<std::size_t>(thread_cap_));
  }
  input_ids_ = graph_->input_ids();
  MLX_CHECK(!input_ids_.empty()) << "graph has no inputs";
  plan_ = std::make_unique<ExecutionPlan>(*graph_, *resolver_, pool_ref_);
  prepare_ms_ =
      std::chrono::duration<double, std::milli>(Clock::now() - start).count();
}

}  // namespace mlexray
