#include "src/interpreter/execution_plan.h"

namespace mlexray {

ExecutionPlan::ExecutionPlan(const Model& model, const OpResolver& resolver,
                             std::vector<Tensor>& activations,
                             ThreadPool* pool, ScratchArena* arena) {
  MLX_CHECK_EQ(activations.size(), model.nodes.size());
  std::size_t executable = 0;
  for (const Node& n : model.nodes) {
    if (n.type != OpType::kInput) ++executable;
  }
  steps_.reserve(executable);
  for (const Node& n : model.nodes) {
    if (n.type == OpType::kInput) continue;
    PlanStep step;
    step.node = &n;
    step.kernel = &resolver.find(n);  // throws MlxError if unsupported
    step.ctx.node = &n;
    step.ctx.output = &activations[static_cast<std::size_t>(n.id)];
    step.ctx.pool = pool;
    step.ctx.arena = arena;
    step.ctx.inputs.reserve(n.inputs.size());
    for (int in : n.inputs) {
      step.ctx.inputs.push_back(&activations[static_cast<std::size_t>(in)]);
    }
    steps_.push_back(std::move(step));
  }
  // Second pass, after every context is wired: run the one-time prepare
  // hooks. Shapes, weights, and quant params are final here; activation data
  // is not, and hooks must not read it.
  for (PlanStep& step : steps_) {
    if (!step.kernel->prepare) continue;
    prepared_.push_back(std::make_unique<PreparedStorage>());
    step.ctx.prepared = prepared_.back().get();
    step.kernel->prepare(step.ctx);
  }
}

std::size_t ExecutionPlan::prepared_bytes() const {
  std::size_t total = 0;
  for (const auto& storage : prepared_) total += storage->bytes();
  return total;
}

}  // namespace mlexray
