#include "src/interpreter/execution_plan.h"

#include "src/common/fault_injection.h"

namespace mlexray {

ExecutionPlan::ExecutionPlan(const Graph& graph, const OpResolver& resolver,
                             PoolRef pool) {
  // Load-failure fault point: a throw here aborts Model construction before
  // any prepare hook runs, so Engine::load fails cleanly — hot-swap tests
  // use it to assert a failed v2 load leaves v1 serving.
  if (fault::enabled()) fault::check(fault_sites::kPlanPrepare);
  std::size_t executable = 0;
  for (const Node& n : graph.nodes) {
    if (n.type != OpType::kInput) ++executable;
  }
  steps_.reserve(executable);
  for (const Node& n : graph.nodes) {
    if (n.type == OpType::kInput) continue;
    PlanStep step;
    step.node = &n;
    step.kernel = &resolver.find(n);  // throws MlxError if unsupported
    steps_.push_back(step);
  }

  // Run the one-time prepare hooks. Each hook sees a context wired to
  // transient tensors for just its own node — shapes, weights, and quant
  // params are final here; activation *data* is scratch and hooks must not
  // read it. Scoping the tensors per step keeps the plan-build memory peak
  // at one node's I/O, not the whole model's activation footprint.
  for (PlanStep& step : steps_) {
    if (!step.kernel->prepare) continue;
    prepared_.push_back(std::make_unique<PreparedStorage>());
    step.prepared = prepared_.back().get();

    const Node& n = *step.node;
    Tensor output(n.output_dtype, n.output_shape);
    output.quant() = n.output_quant;
    std::vector<Tensor> inputs;
    inputs.reserve(n.inputs.size());
    for (int in : n.inputs) {
      const Node& producer = graph.node(in);
      Tensor t(producer.output_dtype, producer.output_shape);
      t.quant() = producer.output_quant;
      inputs.push_back(std::move(t));
    }

    KernelContext ctx;
    ctx.node = &n;
    ctx.output = &output;
    ctx.pool = pool;
    ctx.prepared = step.prepared;
    ctx.inputs.reserve(inputs.size());
    for (const Tensor& t : inputs) ctx.inputs.push_back(&t);
    step.kernel->prepare(ctx);
  }
}

std::size_t ExecutionPlan::prepared_bytes() const {
  std::size_t total = 0;
  for (const auto& storage : prepared_) total += storage->bytes();
  return total;
}

}  // namespace mlexray
