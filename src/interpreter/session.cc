#include "src/interpreter/session.h"

#include <chrono>
#include <cmath>
#include <cstring>
#include <limits>

#include "src/common/fault_injection.h"
#include "src/interpreter/invoke_observer.h"

namespace mlexray {

namespace {
using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

// Fault-injection payload corruption (fault_sites::kInvokeOutput): the NaN
// lands in the retained activation, so observers and validation see exactly
// what a numerically-broken kernel would have produced.
void poke_nan(Tensor& t) {
  if (t.dtype() == DType::kF32 && t.num_elements() > 0) {
    t.data<float>()[0] = std::numeric_limits<float>::quiet_NaN();
  }
}
}  // namespace

const char* invoke_code_name(InvokeCode code) {
  switch (code) {
    case InvokeCode::kOk:
      return "ok";
    case InvokeCode::kError:
      return "error";
    case InvokeCode::kDeadlineExceeded:
      return "deadline_exceeded";
    case InvokeCode::kPoisoned:
      return "poisoned";
  }
  return "unknown";
}

Session::Session(const Model* model) : model_(model) {
  const auto start = Clock::now();
  MLX_CHECK(model != nullptr);
  const Graph& graph = model_->graph();

  // Allocate one activation tensor per node (retained for per-layer logs).
  // The vector is sized once and never grows: the contexts wire raw pointers
  // into it.
  activations_.reserve(graph.nodes.size());
  for (const Node& n : graph.nodes) {
    Tensor t(n.output_dtype, n.output_shape);
    t.quant() = n.output_quant;
    activations_.push_back(std::move(t));
  }

  // Wire one context per shared plan step against this session's activations
  // and arena. The plan itself stays untouched — this is the only per-session
  // cost of sharing it.
  const auto& steps = model_->plan().steps();
  contexts_.reserve(steps.size());
  for (const PlanStep& step : steps) {
    KernelContext ctx;
    const Node& n = *step.node;
    ctx.node = &n;
    ctx.output = &activations_[static_cast<std::size_t>(n.id)];
    ctx.pool = model_->pool();
    ctx.arena = &arena_;
    ctx.prepared = step.prepared;
    ctx.inputs.reserve(n.inputs.size());
    for (int in : n.inputs) {
      ctx.inputs.push_back(&activations_[static_cast<std::size_t>(in)]);
    }
    contexts_.push_back(std::move(ctx));
  }

  stats_.per_node_ms.assign(graph.nodes.size(), 0.0);
  stats_.per_node_total_ms.assign(graph.nodes.size(), 0.0);
  stats_.prepared_bytes = model_->prepared_bytes();
  stats_.prepare_ms = model_->prepare_ms() + ms_since(start);
}

void Session::set_input(int input_index, const Tensor& value) {
  const std::vector<int>& input_ids = model_->input_ids();
  MLX_CHECK_LT(static_cast<std::size_t>(input_index), input_ids.size());
  Tensor& slot = activations_[static_cast<std::size_t>(
      input_ids[static_cast<std::size_t>(input_index)])];
  MLX_CHECK(value.shape() == slot.shape())
      << "input shape " << value.shape().to_string() << " expected "
      << slot.shape().to_string();
  MLX_CHECK(value.dtype() == slot.dtype())
      << "input dtype " << dtype_name(value.dtype()) << " expected "
      << dtype_name(slot.dtype());
  std::memcpy(slot.raw_data(), value.raw_data(), value.byte_size());
}

Tensor& Session::mutable_input(int input_index) {
  const std::vector<int>& input_ids = model_->input_ids();
  MLX_CHECK_LT(static_cast<std::size_t>(input_index), input_ids.size());
  return activations_[static_cast<std::size_t>(
      input_ids[static_cast<std::size_t>(input_index)])];
}

void Session::invoke() {
  const InvokeStatus status = try_invoke();
  if (!status.ok()) throw MlxError(status.message);
}

InvokeStatus Session::try_invoke(double deadline_ms) {
  const bool has_deadline = deadline_ms > 0.0;
  const auto deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double, std::milli>(deadline_ms));
  return guarded_invoke(has_deadline, deadline);
}

InvokeStatus Session::try_invoke_until(Clock::time_point deadline) {
  return guarded_invoke(true, deadline);
}

InvokeStatus Session::guarded_invoke(bool has_deadline,
                                     Clock::time_point deadline) {
  InvokeStatus status;
  if (poisoned_) {
    status.code = InvokeCode::kPoisoned;
    status.message = "session poisoned by an earlier kernel failure";
    return status;
  }
  const auto start_total = Clock::now();
  last_invoke_ok_ = false;  // until every step completes below
  // Reset the per-invoke view; totals keep accumulating.
  std::fill(stats_.per_node_ms.begin(), stats_.per_node_ms.end(), 0.0);
  const auto& steps = model_->plan().steps();
  if (observer_ != nullptr) observer_->on_invoke_begin(steps.size());
  for (std::size_t i = 0; i < steps.size(); ++i) {
    const PlanStep& step = steps[i];
    // Cooperative deadline: checked between kernels only, so a running
    // kernel is never interrupted and the partial state is step-aligned.
    if (has_deadline && Clock::now() >= deadline) {
      status.code = InvokeCode::kDeadlineExceeded;
      status.failed_step = static_cast<int>(i);
      status.failed_node_id = step.node->id;
      ++stats_.deadline_exceeded;
      if (observer_ != nullptr) observer_->on_invoke_error(status);
      return status;
    }
    arena_.reset();
    const auto start = Clock::now();
    try {
      if (fault::enabled()) fault::check(fault_sites::kInvokeStep);
      step.kernel->invoke(contexts_[i]);
    } catch (const MlxError& e) {
      // Containment boundary: the kernel left this session's activations
      // (and possibly its arena wiring) partially written, so the session
      // is poisoned — it refuses further invokes and the Engine destroys
      // it instead of re-pooling on release. The shared Model is read-only
      // during invoke and stays healthy.
      poisoned_ = true;
      ++stats_.invoke_errors;
      status.code = InvokeCode::kError;
      status.failed_step = static_cast<int>(i);
      status.failed_node_id = step.node->id;
      status.message = e.what();
      if (observer_ != nullptr) observer_->on_invoke_error(status);
      return status;
    }
    const double node_ms = ms_since(start);
    const auto id = static_cast<std::size_t>(step.node->id);
    if (fault::enabled() && fault::check(fault_sites::kInvokeOutput)) {
      poke_nan(activations_[id]);
    }
    stats_.per_node_ms[id] = node_ms;
    stats_.per_node_total_ms[id] += node_ms;
    if (observer_ != nullptr) {
      observer_->on_step(*step.node, activations_[id], node_ms);
    }
  }
  stats_.total_ms = ms_since(start_total);
  stats_.cumulative_ms += stats_.total_ms;
  stats_.arena_high_water_bytes = arena_.high_water_bytes();
  ++stats_.invoke_count;
  last_invoke_ok_ = true;
  if (observer_ != nullptr) observer_->on_invoke_end(stats_);
  return status;
}

const Tensor& Session::output(int output_index) const {
  const Graph& graph = model_->graph();
  MLX_CHECK_LT(static_cast<std::size_t>(output_index), graph.outputs.size());
  return activations_[static_cast<std::size_t>(
      graph.outputs[static_cast<std::size_t>(output_index)])];
}

const Tensor& Session::node_output(int node_id) const {
  MLX_CHECK(node_id >= 0 && node_id < static_cast<int>(activations_.size()));
  return activations_[static_cast<std::size_t>(node_id)];
}

std::size_t Session::activation_bytes() const {
  std::size_t total = 0;
  for (const Tensor& t : activations_) total += t.byte_size();
  return total;
}

}  // namespace mlexray
