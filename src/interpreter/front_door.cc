#include "src/interpreter/front_door.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "src/common/error.h"
#include "src/graph/graph.h"

namespace mlexray {

namespace {

using Clock = std::chrono::steady_clock;

Clock::duration ms_duration(double ms) {
  return std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double, std::milli>(ms));
}

double us_between(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration<double, std::micro>(to - from).count();
}

// splitmix64 step: cheap, stateless-quality jitter for retry backoff. Not
// Pcg32 because this runs under the front-door mutex and one multiply-xor
// is all the randomness a backoff needs.
std::uint64_t next_jitter(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

const char* request_code_name(RequestCode code) {
  switch (code) {
    case RequestCode::kOk:
      return "ok";
    case RequestCode::kError:
      return "error";
    case RequestCode::kDeadlineExceeded:
      return "deadline_exceeded";
    case RequestCode::kUnknownModel:
      return "unknown_model";
    case RequestCode::kQueueFull:
      return "queue_full";
    case RequestCode::kDeadlineInfeasible:
      return "deadline_infeasible";
    case RequestCode::kShed:
      return "shed";
    case RequestCode::kBreakerOpen:
      return "breaker_open";
  }
  return "unknown";
}

const char* breaker_state_name(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed:
      return "closed";
    case BreakerState::kOpen:
      return "open";
    case BreakerState::kHalfOpen:
      return "half_open";
  }
  return "unknown";
}

// One pre-sized request slot: the input row copied at admission, the output
// rows copied back at completion, and the request's scheduling state. Slots
// are allocated once at register_model and cycle free -> pending ->
// in-batch -> done -> free without further allocation.
struct FrontDoorSlot {
  FrontDoorModelEntry* owner = nullptr;
  Tensor input;                 // single-row ([1, ...]) input copy
  std::vector<Tensor> outputs;  // single-row output copies (kOk only)
  RequestResult result;
  int priority = 0;
  Clock::time_point submit_time{};
  Clock::time_point deadline{};    // time_point::max() when none
  Clock::time_point not_before{};  // retry backoff hold
  bool has_deadline = false;
  bool retried = false;
  bool deadline_requeued = false;  // one requeue after a collateral batch expiry
  bool done = false;
  FrontDoorCallback callback = nullptr;
  void* callback_ctx = nullptr;
};

// Per-registered-model state: options, the bounded queue, the slot pool,
// the EWMA service estimate, the circuit breaker, and the stats counters.
// Heap-allocated with a stable address (slots hold owner backpointers).
struct FrontDoorModelEntry {
  std::string name;
  FrontDoorModelOptions opts;
  int max_batch = 1;
  std::size_t input_row_bytes = 0;
  std::vector<std::size_t> output_row_bytes;
  std::vector<std::unique_ptr<FrontDoorSlot>> slots;
  std::vector<FrontDoorSlot*> free_slots;
  std::vector<FrontDoorSlot*> pending;

  // Counters (mirrored into FrontDoorStats).
  std::uint64_t s_submitted = 0;
  std::uint64_t s_admitted = 0;
  std::uint64_t s_ok = 0;
  std::uint64_t s_failed = 0;
  std::uint64_t s_deadline = 0;
  std::uint64_t s_shed = 0;
  std::uint64_t s_unknown = 0;
  std::uint64_t s_flushed = 0;
  std::uint64_t s_rej_full = 0;
  std::uint64_t s_rej_infeasible = 0;
  std::uint64_t s_rej_breaker = 0;
  std::uint64_t s_retries = 0;
  std::uint64_t s_deadline_requeues = 0;
  std::uint64_t s_batches = 0;
  std::vector<std::uint64_t> batch_hist;
  std::size_t max_queue_depth = 0;
  std::size_t inflight = 0;  // requests inside a dispatched batch
  std::size_t inflight_batches = 0;

  double est_us = 0.0;  // EWMA per-batch service time

  BreakerState breaker = BreakerState::kClosed;
  int consecutive_failures = 0;
  std::chrono::steady_clock::time_point breaker_opened_at{};
  std::uint64_t breaker_version = 0;  // engine version the breaker is keyed to
  std::uint64_t breaker_trips = 0;
  bool probe_inflight = false;  // half-open: one probe batch at a time
};

// ---------------------------------------------------------------------------
// Ticket.
// ---------------------------------------------------------------------------

Ticket& Ticket::operator=(Ticket&& other) noexcept {
  if (this != &other) {
    release();
    door_ = other.door_;
    slot_ = other.slot_;
    inline_result_ = other.inline_result_;
    valid_ = other.valid_;
    other.door_ = nullptr;
    other.slot_ = nullptr;
    other.valid_ = false;
  }
  return *this;
}

bool Ticket::done() const {
  if (!valid_) return false;
  if (slot_ == nullptr) return true;  // rejected tickets are born done
  std::lock_guard<std::mutex> lock(door_->mu_);
  return slot_->done;
}

const RequestResult& Ticket::wait() {
  MLX_CHECK(valid_) << "wait() on an empty Ticket";
  if (slot_ == nullptr) return inline_result_;
  std::unique_lock<std::mutex> lock(door_->mu_);
  door_->done_cv_.wait(lock, [this] { return slot_->done; });
  return slot_->result;
}

void Ticket::release() {
  if (!valid_) return;
  if (slot_ != nullptr) {
    std::unique_lock<std::mutex> lock(door_->mu_);
    // A slot can't be reclaimed mid-flight: wait for the terminal result
    // first (normally instant — callers wait() before releasing).
    door_->done_cv_.wait(lock, [this] { return slot_->done; });
    door_->recycle_slot_locked(slot_);
  }
  door_ = nullptr;
  slot_ = nullptr;
  valid_ = false;
}

// ---------------------------------------------------------------------------
// FrontDoor.
// ---------------------------------------------------------------------------

FrontDoor::FrontDoor(Engine* engine, FrontDoorOptions options)
    : engine_(engine), options_(options), jitter_state_(options.jitter_seed) {
  MLX_CHECK(engine_ != nullptr);
  if (options_.workers < 1) options_.workers = 1;
  workers_.reserve(static_cast<std::size_t>(options_.workers));
  for (int i = 0; i < options_.workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

FrontDoor::~FrontDoor() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();

  // Workers are gone; whatever is still queued is shed, callbacks fired
  // inline on this thread.
  std::vector<FrontDoorSlot*> callbacks;
  std::unique_lock<std::mutex> lock(mu_);
  const Clock::time_point now = Clock::now();
  for (auto& m : models_) {
    for (FrontDoorSlot* slot : m->pending) {
      complete_locked(*m, slot, RequestCode::kShed, now, callbacks);
    }
    m->pending.clear();
  }
  fire_callbacks(callbacks, lock);
}

void FrontDoor::register_model(const std::string& name,
                               FrontDoorModelOptions options) {
  std::lock_guard<std::mutex> lock(mu_);
  MLX_CHECK(find_model_locked(name) == nullptr)
      << "front-door model '" << name << "' already registered";
  auto entry = std::make_unique<ModelEntry>();
  entry->name = name;
  entry->opts = std::move(options);
  if (entry->opts.variants.empty()) {
    entry->opts.variants.push_back(FrontDoorBatchVariant{1, name});
  }
  std::sort(entry->opts.variants.begin(), entry->opts.variants.end(),
            [](const FrontDoorBatchVariant& a, const FrontDoorBatchVariant& b) {
              return a.batch < b.batch;
            });
  MLX_CHECK_GT(entry->opts.queue_capacity, 0u);

  // Derive the single-row slot shapes from the variants' loaded models and
  // check the variants agree with each other.
  Shape input_single;
  DType input_dtype = DType::kF32;
  QuantParams input_quant;
  std::vector<Shape> output_single;
  std::vector<DType> output_dtype;
  std::vector<QuantParams> output_quant;
  for (std::size_t vi = 0; vi < entry->opts.variants.size(); ++vi) {
    const FrontDoorBatchVariant& v = entry->opts.variants[vi];
    MLX_CHECK_GE(v.batch, 1);
    if (vi > 0) {
      MLX_CHECK_GT(v.batch, entry->opts.variants[vi - 1].batch)
          << "duplicate batch variant for '" << name << "'";
    }
    const Model* model = engine_->find(v.engine_model);
    MLX_CHECK(model != nullptr) << "front-door variant '" << v.engine_model
                                << "' is not loaded in the engine";
    const Graph& graph = model->graph();
    MLX_CHECK_EQ(model->input_ids().size(), 1u)
        << "the front door serves single-input models";
    const Node& in_node =
        graph.nodes[static_cast<std::size_t>(model->input_ids()[0])];
    MLX_CHECK_EQ(in_node.output_shape.dim(0), v.batch)
        << "variant '" << v.engine_model << "' input batch dim "
        << in_node.output_shape.dim(0) << " != declared batch " << v.batch;
    Shape in_single = in_node.output_shape;
    in_single.set_dim(0, 1);
    if (vi == 0) {
      input_single = in_single;
      input_dtype = in_node.output_dtype;
      input_quant = in_node.output_quant;
      for (int out_id : graph.outputs) {
        const Node& out_node = graph.nodes[static_cast<std::size_t>(out_id)];
        MLX_CHECK_EQ(out_node.output_shape.dim(0), v.batch);
        Shape out_s = out_node.output_shape;
        out_s.set_dim(0, 1);
        output_single.push_back(out_s);
        output_dtype.push_back(out_node.output_dtype);
        output_quant.push_back(out_node.output_quant);
      }
    } else {
      MLX_CHECK(in_single == input_single && in_node.output_dtype == input_dtype)
          << "variant '" << v.engine_model << "' input row disagrees";
      MLX_CHECK_EQ(graph.outputs.size(), output_single.size());
      for (std::size_t oi = 0; oi < output_single.size(); ++oi) {
        const Node& out_node = graph.nodes[static_cast<std::size_t>(
            graph.outputs[oi])];
        MLX_CHECK_EQ(out_node.output_shape.dim(0), v.batch);
        Shape out_s = out_node.output_shape;
        out_s.set_dim(0, 1);
        MLX_CHECK(out_s == output_single[oi] &&
                  out_node.output_dtype == output_dtype[oi])
            << "variant '" << v.engine_model << "' output " << oi
            << " row disagrees";
      }
    }
  }

  const int largest = entry->opts.variants.back().batch;
  entry->max_batch = entry->opts.max_batch;
  if (entry->max_batch <= 0 || entry->max_batch > largest) {
    entry->max_batch = largest;
  }
  entry->opts.max_batch = entry->max_batch;
  entry->batch_hist.assign(static_cast<std::size_t>(entry->max_batch) + 1, 0);

  // Slot pool: the bounded queue plus every worker's largest possible
  // in-flight batch. Done-but-unreleased Tickets borrow from the same pool,
  // so hoarding finished tickets eventually surfaces as kQueueFull.
  const std::size_t slot_count =
      entry->opts.queue_capacity +
      static_cast<std::size_t>(entry->max_batch) *
          static_cast<std::size_t>(options_.workers);
  entry->slots.reserve(slot_count);
  entry->free_slots.reserve(slot_count);
  entry->pending.reserve(entry->opts.queue_capacity);
  for (std::size_t i = 0; i < slot_count; ++i) {
    auto slot = std::make_unique<FrontDoorSlot>();
    slot->owner = entry.get();
    slot->input = Tensor(input_dtype, input_single);
    slot->input.quant() = input_quant;
    slot->outputs.reserve(output_single.size());
    for (std::size_t oi = 0; oi < output_single.size(); ++oi) {
      Tensor out(output_dtype[oi], output_single[oi]);
      out.quant() = output_quant[oi];
      slot->outputs.push_back(std::move(out));
    }
    entry->free_slots.push_back(slot.get());
    entry->slots.push_back(std::move(slot));
  }
  entry->input_row_bytes = entry->slots[0]->input.byte_size();
  for (const Tensor& out : entry->slots[0]->outputs) {
    entry->output_row_bytes.push_back(out.byte_size());
  }

  models_.push_back(std::move(entry));
  work_cv_.notify_all();
}

bool FrontDoor::registered(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  return find_model_locked(name) != nullptr;
}

FrontDoor::ModelEntry* FrontDoor::find_model_locked(
    const std::string& name) const {
  for (const auto& m : models_) {
    if (m->name == name) return m.get();
  }
  return nullptr;
}

Ticket FrontDoor::submit(const std::string& model, const Tensor& input,
                         double deadline_ms, int priority) {
  std::lock_guard<std::mutex> lock(mu_);
  ModelEntry* m = find_model_locked(model);
  if (m == nullptr) {
    RequestResult r;
    r.code = RequestCode::kUnknownModel;
    return Ticket(r);
  }
  FrontDoorSlot* slot = nullptr;
  const RequestCode code = admit_locked(*m, input, deadline_ms, priority,
                                        nullptr, nullptr, Clock::now(), &slot);
  if (code != RequestCode::kOk) {
    RequestResult r;
    r.code = code;
    return Ticket(r);
  }
  return Ticket(this, slot);
}

RequestCode FrontDoor::submit_async(const std::string& model,
                                    const Tensor& input, double deadline_ms,
                                    int priority, FrontDoorCallback done,
                                    void* done_ctx) {
  MLX_CHECK(done != nullptr);
  std::lock_guard<std::mutex> lock(mu_);
  ModelEntry* m = find_model_locked(model);
  if (m == nullptr) return RequestCode::kUnknownModel;
  FrontDoorSlot* slot = nullptr;
  return admit_locked(*m, input, deadline_ms, priority, done, done_ctx,
                      Clock::now(), &slot);
}

RequestCode FrontDoor::admit_locked(ModelEntry& m, const Tensor& input,
                                    double deadline_ms, int priority,
                                    FrontDoorCallback done, void* done_ctx,
                                    Clock::time_point now,
                                    FrontDoorSlot** out_slot) {
  ++m.s_submitted;
  if (!breaker_admits_locked(m, now)) {
    ++m.s_rej_breaker;
    if (observer_ != nullptr) {
      observer_->on_rejected(m.name, RequestCode::kBreakerOpen);
    }
    return RequestCode::kBreakerOpen;
  }
  if (m.pending.size() >= m.opts.queue_capacity || m.free_slots.empty()) {
    ++m.s_rej_full;
    if (observer_ != nullptr) {
      observer_->on_rejected(m.name, RequestCode::kQueueFull);
    }
    return RequestCode::kQueueFull;
  }
  double dl_ms = deadline_ms > 0.0 ? deadline_ms : m.opts.default_deadline_ms;
  if (dl_ms > 0.0 && m.est_us > 0.0) {
    // Worst-case serial projection: the batches already in flight, the
    // queued requests ahead of this one (coalesced max_batch at a time),
    // then this request's own batch.
    const double batches_ahead =
        1.0 + static_cast<double>(m.inflight_batches) +
        std::floor(static_cast<double>(m.pending.size()) /
                   static_cast<double>(m.max_batch));
    if (batches_ahead * m.est_us > dl_ms * 1000.0) {
      ++m.s_rej_infeasible;
      if (observer_ != nullptr) {
        observer_->on_rejected(m.name, RequestCode::kDeadlineInfeasible);
      }
      return RequestCode::kDeadlineInfeasible;
    }
  }
  // Admitted: copy the input into a pre-sized slot. Shape/dtype mismatch is
  // a caller bug, not load — MLX_CHECK is fine off the overload path.
  FrontDoorSlot* slot = m.free_slots.back();
  MLX_CHECK(input.byte_size() == slot->input.byte_size() &&
            input.dtype() == slot->input.dtype())
      << "submit input " << input.shape().to_string() << "/"
      << dtype_name(input.dtype()) << " does not match model row "
      << slot->input.shape().to_string() << "/"
      << dtype_name(slot->input.dtype());
  m.free_slots.pop_back();
  std::memcpy(slot->input.raw_data(), input.raw_data(), input.byte_size());
  slot->priority = priority;
  slot->submit_time = now;
  slot->has_deadline = dl_ms > 0.0;
  slot->deadline =
      slot->has_deadline ? now + ms_duration(dl_ms) : Clock::time_point::max();
  slot->not_before = now;
  slot->retried = false;
  slot->deadline_requeued = false;
  slot->done = false;
  slot->callback = done;
  slot->callback_ctx = done_ctx;
  slot->result = RequestResult{};
  slot->result.outputs = slot->outputs.data();
  slot->result.output_count = static_cast<int>(slot->outputs.size());
  m.pending.push_back(slot);
  ++m.s_admitted;
  m.max_queue_depth = std::max(m.max_queue_depth, m.pending.size());
  *out_slot = slot;
  work_cv_.notify_one();
  return RequestCode::kOk;
}

bool FrontDoor::breaker_admits_locked(ModelEntry& m, Clock::time_point now) {
  if (m.breaker == BreakerState::kClosed) return true;
  if (m.breaker == BreakerState::kHalfOpen) return true;  // queue the probe
  // Open: cooldown elapsed -> half-open and admit the probe.
  if (now >= m.breaker_opened_at + ms_duration(m.opts.breaker_open_ms)) {
    breaker_transition_locked(m, BreakerState::kHalfOpen, now);
    return true;
  }
  // A hot-swap heals an open breaker immediately: the failing version is
  // gone, the new one deserves traffic.
  const std::uint64_t v =
      engine_->serving_version(m.opts.variants[0].engine_model);
  if (v != 0 && v != m.breaker_version) {
    breaker_transition_locked(m, BreakerState::kClosed, now);
    m.breaker_version = v;
    return true;
  }
  return false;
}

void FrontDoor::breaker_transition_locked(ModelEntry& m, BreakerState to,
                                          Clock::time_point now) {
  if (m.breaker == to) return;
  const BreakerState from = m.breaker;
  m.breaker = to;
  if (to == BreakerState::kOpen) {
    ++m.breaker_trips;
    m.breaker_opened_at = now;
    m.probe_inflight = false;
  } else if (to == BreakerState::kClosed) {
    m.consecutive_failures = 0;
    m.probe_inflight = false;
  }
  if (observer_ != nullptr) {
    observer_->on_breaker(m.name, m.breaker_version, from, to);
  }
}

void FrontDoor::complete_locked(ModelEntry& m, FrontDoorSlot* slot,
                                RequestCode code, Clock::time_point now,
                                std::vector<FrontDoorSlot*>& callback_batch) {
  slot->result.code = code;
  slot->result.latency_us = us_between(slot->submit_time, now);
  slot->result.retried = slot->retried;
  switch (code) {
    case RequestCode::kOk:
      ++m.s_ok;
      break;
    case RequestCode::kError:
      ++m.s_failed;
      break;
    case RequestCode::kDeadlineExceeded:
      ++m.s_deadline;
      break;
    case RequestCode::kUnknownModel:
      ++m.s_unknown;
      break;
    case RequestCode::kShed:
      ++m.s_shed;
      break;
    case RequestCode::kBreakerOpen:
      ++m.s_flushed;
      break;
    default:
      break;
  }
  if (observer_ != nullptr) {
    observer_->on_complete(m.name, code, slot->result.latency_us);
  }
  if (slot->callback != nullptr) {
    callback_batch.push_back(slot);
  } else {
    slot->done = true;
    done_cv_.notify_all();
  }
}

void FrontDoor::shed_unservable_locked(
    ModelEntry& m, Clock::time_point now,
    std::vector<FrontDoorSlot*>& callback_batch) {
  if (m.pending.empty()) return;
  std::size_t w = 0;
  for (std::size_t r = 0; r < m.pending.size(); ++r) {
    FrontDoorSlot* slot = m.pending[r];
    bool drop = false;
    double overdue_ms = 0.0;
    if (slot->has_deadline) {
      if (now >= slot->deadline) {
        drop = true;
        overdue_ms = us_between(slot->deadline, now) / 1000.0;
      } else if (m.est_us > 0.0 &&
                 us_between(now, slot->deadline) < m.est_us) {
        // Even an immediate dispatch would finish late: shed now instead of
        // burning a batch slot on a guaranteed deadline miss.
        drop = true;
      }
    }
    if (drop) {
      if (observer_ != nullptr) {
        observer_->on_shed(m.name, slot->priority, overdue_ms);
      }
      complete_locked(m, slot, RequestCode::kShed, now, callback_batch);
    } else {
      m.pending[w++] = slot;
    }
  }
  m.pending.resize(w);
}

void FrontDoor::form_batch_locked(ModelEntry& m, Clock::time_point now,
                                  std::vector<FrontDoorSlot*>& batch) {
  batch.clear();
  // Ready requests first, then priority (higher first), then deadline
  // (earlier first; no deadline sorts last), then arrival. Under overload
  // this is also the shedding order read backwards: low-priority,
  // late-deadline requests are the ones left waiting.
  std::sort(m.pending.begin(), m.pending.end(),
            [now](const FrontDoorSlot* a, const FrontDoorSlot* b) {
              const bool ra = a->not_before <= now;
              const bool rb = b->not_before <= now;
              if (ra != rb) return ra;
              if (a->priority != b->priority) return a->priority > b->priority;
              if (a->deadline != b->deadline) return a->deadline < b->deadline;
              return a->submit_time < b->submit_time;
            });
  std::size_t n = 0;
  while (n < m.pending.size() &&
         n < static_cast<std::size_t>(m.max_batch) &&
         m.pending[n]->not_before <= now) {
    ++n;
  }
  batch.assign(m.pending.begin(),
               m.pending.begin() + static_cast<std::ptrdiff_t>(n));
  m.pending.erase(m.pending.begin(),
                  m.pending.begin() + static_cast<std::ptrdiff_t>(n));
  for (FrontDoorSlot* slot : batch) {
    slot->result.queue_us = us_between(slot->submit_time, now);
  }
  m.inflight += n;
  ++m.inflight_batches;
  ++m.s_batches;
  if (n < m.batch_hist.size()) ++m.batch_hist[n];
  if (m.breaker == BreakerState::kHalfOpen) m.probe_inflight = true;
}

void FrontDoor::execute_batch(ModelEntry& m,
                              std::vector<FrontDoorSlot*>& batch,
                              bool was_probe,
                              std::vector<FrontDoorSlot*>& callback_batch,
                              std::unique_lock<std::mutex>& lock) {
  const std::size_t n = batch.size();
  // Smallest registered variant that fits the coalesced count (exists:
  // max_batch is clamped to the largest variant batch).
  const FrontDoorBatchVariant* variant = &m.opts.variants.back();
  for (const FrontDoorBatchVariant& v : m.opts.variants) {
    if (static_cast<std::size_t>(v.batch) >= n) {
      variant = &v;
      break;
    }
  }
  if (observer_ != nullptr) {
    observer_->on_dispatch(m.name, static_cast<int>(n), variant->batch);
  }

  lock.unlock();
  const Clock::time_point t0 = Clock::now();
  RequestCode code = RequestCode::kUnknownModel;
  std::uint64_t version = 0;
  double service_us = 0.0;
  {
    SessionLease lease = engine_->try_acquire(variant->engine_model);
    if (lease) {
      version = lease.version();
      Tensor& in = lease->mutable_input(0);
      auto* dst = static_cast<std::uint8_t*>(in.raw_data());
      for (std::size_t i = 0; i < n; ++i) {
        std::memcpy(dst + i * m.input_row_bytes, batch[i]->input.raw_data(),
                    m.input_row_bytes);
      }
      // Pad spare variant rows with row 0: batched graph rows are
      // independent, so the padding only costs the (constant) batch work.
      for (std::size_t i = n; i < static_cast<std::size_t>(variant->batch);
           ++i) {
        std::memcpy(dst + i * m.input_row_bytes, batch[0]->input.raw_data(),
                    m.input_row_bytes);
      }
      Clock::time_point earliest = Clock::time_point::max();
      for (std::size_t i = 0; i < n; ++i) {
        if (batch[i]->has_deadline && batch[i]->deadline < earliest) {
          earliest = batch[i]->deadline;
        }
      }
      const InvokeStatus status = earliest == Clock::time_point::max()
                                      ? lease->try_invoke()
                                      : lease->try_invoke_until(earliest);
      service_us = us_between(t0, Clock::now());
      if (status.code == InvokeCode::kOk) {
        for (std::size_t oi = 0; oi < m.output_row_bytes.size(); ++oi) {
          const auto* src = static_cast<const std::uint8_t*>(
              lease->output(static_cast<int>(oi)).raw_data());
          const std::size_t row = m.output_row_bytes[oi];
          for (std::size_t i = 0; i < n; ++i) {
            std::memcpy(batch[i]->outputs[oi].raw_data(), src + i * row, row);
          }
        }
        code = RequestCode::kOk;
      } else if (status.code == InvokeCode::kDeadlineExceeded) {
        code = RequestCode::kDeadlineExceeded;
      } else {
        // kError / kPoisoned: contained fault; the Engine destroys the
        // poisoned session on release, so the pool stays healthy.
        code = RequestCode::kError;
      }
    }
  }  // lease released (poisoned sessions die here)

  lock.lock();
  const Clock::time_point now = Clock::now();
  m.inflight -= n;
  --m.inflight_batches;
  if (was_probe) m.probe_inflight = false;

  // Breaker keying: a new engine version gets a clean slate.
  if (version != 0 && version != m.breaker_version) {
    if (m.breaker != BreakerState::kClosed) {
      breaker_transition_locked(m, BreakerState::kClosed, now);
    }
    m.breaker_version = version;
    m.consecutive_failures = 0;
  }

  for (FrontDoorSlot* slot : batch) {
    slot->result.batch_size = static_cast<int>(n);
    slot->result.version = version;
  }

  if (code == RequestCode::kOk) {
    m.consecutive_failures = 0;
    if (m.breaker == BreakerState::kHalfOpen) {
      breaker_transition_locked(m, BreakerState::kClosed, now);
    }
    m.est_us = m.est_us <= 0.0
                   ? service_us
                   : m.opts.ewma_alpha * service_us +
                         (1.0 - m.opts.ewma_alpha) * m.est_us;
    for (FrontDoorSlot* slot : batch) {
      complete_locked(m, slot, RequestCode::kOk, now, callback_batch);
    }
  } else if (code == RequestCode::kError) {
    ++m.consecutive_failures;
    if (m.breaker == BreakerState::kHalfOpen) {
      // The probe failed: back to failing fast.
      breaker_transition_locked(m, BreakerState::kOpen, now);
    } else if (m.breaker == BreakerState::kClosed &&
               m.consecutive_failures >= m.opts.breaker_failure_threshold) {
      breaker_transition_locked(m, BreakerState::kOpen, now);
    }
    if (m.breaker == BreakerState::kOpen) {
      // Fail fast on *every* transition to open — the first trip and a
      // failed half-open probe alike. Requests admitted while the probe was
      // in flight would otherwise strand: nothing serves an open model, and
      // with no new submits nothing would ever half-open it again.
      for (FrontDoorSlot* slot : m.pending) {
        complete_locked(m, slot, RequestCode::kBreakerOpen, now,
                        callback_batch);
      }
      m.pending.clear();
    }
    for (FrontDoorSlot* slot : batch) {
      bool can_retry = m.opts.retry_transient_faults && !slot->retried &&
                       m.breaker != BreakerState::kOpen &&
                       m.pending.size() < m.opts.queue_capacity;
      double backoff_ms = 0.0;
      if (can_retry) {
        const double u =
            static_cast<double>(next_jitter(jitter_state_) >> 11) *
            (1.0 / 9007199254740992.0);  // uniform [0, 1)
        backoff_ms = m.opts.retry_backoff_min_ms +
                     u * (m.opts.retry_backoff_max_ms -
                          m.opts.retry_backoff_min_ms);
        if (slot->has_deadline &&
            us_between(now, slot->deadline) <
                backoff_ms * 1000.0 + m.est_us) {
          can_retry = false;  // the retry could not finish in time anyway
        }
      }
      if (can_retry) {
        slot->retried = true;
        slot->not_before = now + ms_duration(backoff_ms);
        m.pending.push_back(slot);
        ++m.s_retries;
      } else {
        complete_locked(m, slot, RequestCode::kError, now, callback_batch);
      }
    }
  } else if (code == RequestCode::kDeadlineExceeded) {
    // The batched invoke expired against the *earliest* member deadline.
    // That verdict is only final for members whose own deadline has passed
    // (or provably cannot be met); members with later or no deadlines were
    // collateral of the coalescing choice — requeue each of them once
    // instead of failing a request that still has budget.
    for (FrontDoorSlot* slot : batch) {
      const bool own_deadline_blown =
          slot->has_deadline &&
          (now >= slot->deadline ||
           (m.est_us > 0.0 && us_between(now, slot->deadline) < m.est_us));
      if (!own_deadline_blown && !slot->deadline_requeued &&
          m.breaker != BreakerState::kOpen &&
          m.pending.size() < m.opts.queue_capacity) {
        slot->deadline_requeued = true;
        m.pending.push_back(slot);
        ++m.s_deadline_requeues;
      } else {
        complete_locked(m, slot, RequestCode::kDeadlineExceeded, now,
                        callback_batch);
      }
    }
  } else {
    // kUnknownModel applies to every member.
    for (FrontDoorSlot* slot : batch) {
      complete_locked(m, slot, code, now, callback_batch);
    }
  }
  batch.clear();
  // Requests may have queued behind this batch (or a probe just resolved)
  // while other workers slept with no timed wakeup pending.
  if (!m.pending.empty()) work_cv_.notify_all();
}

void FrontDoor::fire_callbacks(std::vector<FrontDoorSlot*>& callback_batch,
                               std::unique_lock<std::mutex>& lock) {
  if (callback_batch.empty()) return;
  lock.unlock();
  for (FrontDoorSlot* slot : callback_batch) {
    slot->callback(slot->callback_ctx, slot->result);
  }
  lock.lock();
  for (FrontDoorSlot* slot : callback_batch) recycle_slot_locked(slot);
  callback_batch.clear();
}

void FrontDoor::recycle_slot_locked(FrontDoorSlot* slot) {
  slot->done = false;
  slot->callback = nullptr;
  slot->callback_ctx = nullptr;
  slot->owner->free_slots.push_back(slot);
}

void FrontDoor::worker_loop() {
  std::vector<FrontDoorSlot*> batch;
  std::vector<FrontDoorSlot*> callbacks;
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    if (stopping_) break;
    // Keep the worker-local scratch big enough for the largest shed/flush
    // (allocates only when a model is registered, never in steady state).
    std::size_t total_slots = 0;
    std::size_t largest_batch = 1;
    for (const auto& mp : models_) {
      total_slots += mp->slots.size();
      largest_batch =
          std::max(largest_batch, static_cast<std::size_t>(mp->max_batch));
    }
    if (callbacks.capacity() < total_slots) callbacks.reserve(total_slots);
    if (batch.capacity() < largest_batch) batch.reserve(largest_batch);

    const Clock::time_point now = Clock::now();
    Clock::time_point next_event = Clock::time_point::max();
    ModelEntry* target = nullptr;
    bool target_probe = false;
    const std::size_t n_models = models_.size();
    for (std::size_t k = 0; k < n_models; ++k) {
      const std::size_t idx = (rr_cursor_ + k) % n_models;
      ModelEntry& m = *models_[idx];
      shed_unservable_locked(m, now, callbacks);
      if (m.pending.empty()) continue;
      if (m.breaker == BreakerState::kOpen) {
        // Every transition to open flushes the queue, so pending behind an
        // open breaker is a narrow race (e.g. a concurrent batch requeued a
        // member after the flush). Don't strand them: once the cooldown
        // elapses, half-open here — the submit path only transitions on new
        // traffic — and let the queued requests form the probe.
        const Clock::time_point reopen =
            m.breaker_opened_at + ms_duration(m.opts.breaker_open_ms);
        if (now < reopen) {
          next_event = std::min(next_event, reopen);
          continue;
        }
        breaker_transition_locked(m, BreakerState::kHalfOpen, now);
      }
      if (m.breaker == BreakerState::kHalfOpen && m.probe_inflight) {
        continue;  // one probe at a time; its completion re-notifies
      }
      std::size_t ready = 0;
      Clock::time_point oldest = Clock::time_point::max();
      Clock::time_point soonest_hold = Clock::time_point::max();
      for (const FrontDoorSlot* slot : m.pending) {
        if (slot->not_before > now) {
          soonest_hold = std::min(soonest_hold, slot->not_before);
          continue;
        }
        ++ready;
        oldest = std::min(oldest, slot->submit_time);
      }
      if (ready == 0) {
        next_event = std::min(next_event, soonest_hold);
        continue;
      }
      const Clock::time_point wait_deadline =
          oldest + ms_duration(m.opts.max_wait_ms);
      if (ready >= static_cast<std::size_t>(m.max_batch) ||
          now >= wait_deadline) {
        target = &m;
        target_probe = m.breaker == BreakerState::kHalfOpen;
        rr_cursor_ = (idx + 1) % n_models;
        break;
      }
      next_event = std::min(next_event, wait_deadline);
      next_event = std::min(next_event, soonest_hold);
    }

    if (target != nullptr) {
      form_batch_locked(*target, now, batch);
      if (!batch.empty()) {
        execute_batch(*target, batch, target_probe, callbacks, lock);
      }
      fire_callbacks(callbacks, lock);
      continue;
    }
    fire_callbacks(callbacks, lock);
    if (stopping_) break;
    if (next_event == Clock::time_point::max()) {
      work_cv_.wait(lock);
    } else {
      work_cv_.wait_until(lock, next_event);
    }
  }
}

FrontDoorStats FrontDoor::stats(const std::string& model) const {
  std::lock_guard<std::mutex> lock(mu_);
  const ModelEntry* m = find_model_locked(model);
  MLX_CHECK(m != nullptr) << "front-door model '" << model
                          << "' is not registered";
  FrontDoorStats s;
  s.submitted = m->s_submitted;
  s.admitted = m->s_admitted;
  s.completed_ok = m->s_ok;
  s.failed = m->s_failed;
  s.deadline_exceeded = m->s_deadline;
  s.shed = m->s_shed;
  s.unknown_model = m->s_unknown;
  s.flushed_breaker_open = m->s_flushed;
  s.rejected_queue_full = m->s_rej_full;
  s.rejected_infeasible = m->s_rej_infeasible;
  s.rejected_breaker_open = m->s_rej_breaker;
  s.retries = m->s_retries;
  s.deadline_requeues = m->s_deadline_requeues;
  s.batches = m->s_batches;
  s.batch_size_hist = m->batch_hist;
  s.queue_depth = m->pending.size();
  s.max_queue_depth = m->max_queue_depth;
  s.inflight = m->inflight;
  s.breaker_state = m->breaker;
  s.breaker_trips = m->breaker_trips;
  s.breaker_version = m->breaker_version;
  s.service_estimate_us = m->est_us;
  return s;
}

void FrontDoor::set_observer(FrontDoorObserver* observer) {
  std::lock_guard<std::mutex> lock(mu_);
  observer_ = observer;
}

void FrontDoor::set_service_estimate_for_testing(const std::string& model,
                                                 double us) {
  std::lock_guard<std::mutex> lock(mu_);
  ModelEntry* m = find_model_locked(model);
  MLX_CHECK(m != nullptr);
  m->est_us = us;
}

}  // namespace mlexray
