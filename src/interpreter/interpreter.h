// Graph interpreter: executes a Model with a chosen OpResolver.
//
// Mirrors the TFLite interpreter surface the paper instruments:
//   interpreter.set_input(...); interpreter.invoke();
// Per-node outputs are retained (ML-EXray's per-layer logging reads them
// after invoke) and per-node wall-clock latencies are recorded on every
// invoke for the latency-validation path.
#pragma once

#include <memory>
#include <vector>

#include "src/common/thread_pool.h"
#include "src/graph/graph.h"
#include "src/kernels/op_resolver.h"

namespace mlexray {

struct InvokeStats {
  double total_ms = 0.0;
  std::vector<double> per_node_ms;  // indexed by node id; 0 for kInput
};

class Interpreter {
 public:
  // model and resolver must outlive the interpreter. num_threads > 1 enables
  // the shared thread pool for kernels that support it.
  Interpreter(const Model* model, const OpResolver* resolver,
              int num_threads = 1);

  // Copies `value` into the i-th model input (shape and dtype checked).
  void set_input(int input_index, const Tensor& value);

  // Runs all nodes in topological order.
  void invoke();

  // The i-th model output of the last invoke.
  const Tensor& output(int output_index = 0) const;

  // Any node's retained output (per-layer inspection).
  const Tensor& node_output(int node_id) const;

  const Model& model() const { return *model_; }
  const OpResolver& resolver() const { return *resolver_; }
  const InvokeStats& last_stats() const { return stats_; }

  // Bytes held by this interpreter's activation tensors.
  std::size_t activation_bytes() const;

 private:
  const Model* model_;
  const OpResolver* resolver_;
  ThreadPool* pool_;  // nullptr => single-threaded
  std::vector<Tensor> activations_;  // one per node id
  std::vector<int> input_ids_;
  InvokeStats stats_;
};

}  // namespace mlexray
