// Interpreter: compatibility shim over the Model/Session split.
//
// Mirrors the TFLite interpreter surface the paper instruments:
//   interpreter.set_input(...); interpreter.invoke();
// Per-node outputs are retained (ML-EXray's per-layer logging reads them
// after invoke) and per-node wall-clock latencies are recorded on every
// invoke for the latency-validation path.
//
// Historically this class owned the whole Prepare/Invoke split. That state
// now lives in two sharable pieces — an immutable Model (graph +
// ExecutionPlan + PreparedStorage, built once) and a per-caller Session
// (activations, scratch arena, stats, observer); see
// src/interpreter/model.h and src/interpreter/session.h. An Interpreter is
// simply a private Model + Session pair for the classic one-caller case:
// construction runs Prepare, invoke() walks the prepared steps with zero
// steady-state heap allocation (enforced by tests/test_kernel_grid.cc).
// Call sites that want to share one prepared model across callers should
// use Model/Session (or the pooled Engine) directly.
#pragma once

#include "src/interpreter/session.h"

namespace mlexray {

class Interpreter {
 public:
  // graph and resolver must outlive the interpreter. num_threads > 1 gives
  // the private Model its own bounded worker set, with num_threads as a
  // hard participant cap for every kernel parallel_for.
  Interpreter(const Graph* graph, const OpResolver* resolver,
              int num_threads = 1);

  // Copies `value` into the i-th model input (shape and dtype checked).
  void set_input(int input_index, const Tensor& value) {
    session_.set_input(input_index, value);
  }

  // Runs all nodes in topological order over the prepared plan.
  void invoke() { session_.invoke(); }

  // Attaches a push-based observability sink to the underlying session (see
  // Session::set_observer for the lifetime contract).
  void set_observer(InvokeObserver* observer) {
    session_.set_observer(observer);
  }
  InvokeObserver* observer() const { return session_.observer(); }

  // The i-th model output of the last invoke.
  const Tensor& output(int output_index = 0) const {
    return session_.output(output_index);
  }

  // Any node's retained output (per-layer inspection).
  const Tensor& node_output(int node_id) const {
    return session_.node_output(node_id);
  }

  // Historical accessor name: the graph this interpreter executes.
  const Graph& model() const { return model_.graph(); }
  const Graph& graph() const { return model_.graph(); }
  const OpResolver& resolver() const { return model_.resolver(); }
  const SessionStats& last_stats() const { return session_.last_stats(); }
  const ExecutionPlan& plan() const { return model_.plan(); }
  const ScratchArena& scratch_arena() const {
    return session_.scratch_arena();
  }

  // The underlying pair, for code migrating to the serving API (observers
  // bind to the session; the model can be shared read-only).
  const Model& prepared_model() const { return model_; }
  Session& session() { return session_; }
  const Session& session() const { return session_; }

  // Bytes held by this interpreter's activation tensors.
  std::size_t activation_bytes() const {
    return session_.activation_bytes();
  }

 private:
  Model model_;      // non-owning view of the caller's Graph
  Session session_;  // must be declared after model_ (init order)
};

}  // namespace mlexray
