// Graph interpreter: executes a Model with a chosen OpResolver.
//
// Mirrors the TFLite interpreter surface the paper instruments:
//   interpreter.set_input(...); interpreter.invoke();
// Per-node outputs are retained (ML-EXray's per-layer logging reads them
// after invoke) and per-node wall-clock latencies are recorded on every
// invoke for the latency-validation path.
//
// Execution is split into Prepare and Invoke phases. Construction runs
// Prepare: activation tensors are allocated, an ExecutionPlan resolves every
// kernel and wires its context once, and a scratch arena is attached for
// kernel temporaries. invoke() then just walks the prepared steps — after the
// first call (which grows the arena to the model's high-water mark) it
// performs no heap allocation at all, which the alloc_stats-based regression
// tests enforce.
#pragma once

#include <memory>
#include <vector>

#include "src/common/thread_pool.h"
#include "src/interpreter/execution_plan.h"
#include "src/tensor/scratch_arena.h"

namespace mlexray {

class InvokeObserver;

struct InterpreterStats {
  // One-time Prepare cost (plan construction, activation allocation).
  double prepare_ms = 0.0;
  // Wall clock of the most recent invoke.
  double total_ms = 0.0;
  // Sum of total_ms across all invokes, and how many there were.
  double cumulative_ms = 0.0;
  std::int64_t invoke_count = 0;
  // Per-node wall clock, indexed by node id; reset at the start of every
  // invoke (kInput nodes stay 0).
  std::vector<double> per_node_ms;
  // Per-node wall clock accumulated across all invokes.
  std::vector<double> per_node_total_ms;
  // Memory visibility: plan-owned prepared storage (packed weight panels,
  // requantization tables; fixed at Prepare) and the scratch arena's
  // high-water mark (refreshed after every invoke). Latency wins from
  // plan-time packing must not hide their memory cost.
  std::size_t prepared_bytes = 0;
  std::size_t arena_high_water_bytes = 0;
};

// Historical name, kept for call sites that predate the Prepare/Invoke split.
using InvokeStats = InterpreterStats;

class Interpreter {
 public:
  // model and resolver must outlive the interpreter. num_threads > 1 enables
  // the shared thread pool for kernels that support it.
  Interpreter(const Model* model, const OpResolver* resolver,
              int num_threads = 1);

  // Copies `value` into the i-th model input (shape and dtype checked).
  void set_input(int input_index, const Tensor& value);

  // Runs all nodes in topological order over the prepared plan.
  void invoke();

  // Attaches a push-based observability sink (src/interpreter/
  // invoke_observer.h): invoke() fires on_invoke_begin / on_step /
  // on_invoke_end as it walks the plan. Non-owning; the observer must
  // outlive the attachment (pass nullptr to detach before destroying it).
  void set_observer(InvokeObserver* observer) { observer_ = observer; }
  InvokeObserver* observer() const { return observer_; }

  // The i-th model output of the last invoke.
  const Tensor& output(int output_index = 0) const;

  // Any node's retained output (per-layer inspection).
  const Tensor& node_output(int node_id) const;

  const Model& model() const { return *model_; }
  const OpResolver& resolver() const { return *resolver_; }
  const InterpreterStats& last_stats() const { return stats_; }
  const ExecutionPlan& plan() const { return *plan_; }
  const ScratchArena& scratch_arena() const { return arena_; }

  // Bytes held by this interpreter's activation tensors.
  std::size_t activation_bytes() const;

 private:
  const Model* model_;
  const OpResolver* resolver_;
  ThreadPool* pool_;  // nullptr => single-threaded
  ScratchArena arena_;
  std::vector<Tensor> activations_;  // one per node id
  std::unique_ptr<ExecutionPlan> plan_;
  std::vector<int> input_ids_;
  InterpreterStats stats_;
  InvokeObserver* observer_ = nullptr;
};

}  // namespace mlexray
