// ExecutionPlan: the one-time Prepare phase of the interpreter's
// Prepare/Invoke split.
//
// Mirrors the plan-then-invoke structure of production edge runtimes (TFLite
// on the paper's Pixel 4 setup): everything that can be resolved once —
// kernel lookups, input/output tensor wiring, scratch attachment — is done at
// interpreter construction, leaving Invoke a flat walk over prepared steps
// with zero per-node setup and zero heap allocation. That keeps the
// interpreter's own overhead far below the per-layer instrumentation signal
// ML-EXray measures (<0.4% end-to-end, Table 2).
#pragma once

#include <memory>
#include <vector>

#include "src/graph/graph.h"
#include "src/kernels/op_resolver.h"

namespace mlexray {

// One prepared node execution: the resolved kernel plus a fully wired
// context. The context's tensor pointers reference the interpreter's
// activation storage, which is allocated before the plan and never moves.
struct PlanStep {
  const Node* node = nullptr;
  const KernelEntry* kernel = nullptr;  // owned by the resolver's kernel map
  KernelContext ctx;
};

class ExecutionPlan {
 public:
  // Resolves every non-input node of `model` against `resolver`, wires each
  // step's context to `activations` (one tensor per node id), `pool`, and
  // `arena`, then runs each kernel's prepare hook exactly once. Prepared
  // results (packed weight panels, requantization tables) live in plan-owned
  // PreparedStorage for the plan's lifetime. All referenced objects must
  // outlive the plan.
  ExecutionPlan(const Model& model, const OpResolver& resolver,
                std::vector<Tensor>& activations, ThreadPool* pool,
                ScratchArena* arena);

  const std::vector<PlanStep>& steps() const { return steps_; }

  // Executable (non-input) node count — the number of on_step callbacks an
  // InvokeObserver sees per invoke; observers pre-size capture storage by it.
  std::size_t step_count() const { return steps_.size(); }

  // Bytes held across all steps' prepared storage (packed weights etc.) —
  // the memory cost of plan-time packing, surfaced in InterpreterStats.
  std::size_t prepared_bytes() const;

 private:
  std::vector<PlanStep> steps_;
  // One slot per step with a prepare hook; pointers handed to step contexts
  // stay stable because the storage objects are individually heap-owned.
  std::vector<std::unique_ptr<PreparedStorage>> prepared_;
};

}  // namespace mlexray
