// ExecutionPlan: the shared, session-independent half of the Prepare/Invoke
// split.
//
// Mirrors the plan-then-invoke structure of production edge runtimes (TFLite
// on the paper's Pixel 4 setup): everything that can be resolved once per
// *model* — kernel lookups, one-time prepare hooks, packed weight panels,
// requantization tables — is done at plan construction. The plan holds no
// per-caller state: activation tensors and the scratch arena belong to a
// Session (src/interpreter/session.h), which wires its own kernel contexts
// against these steps. That split is what lets N concurrent sessions share
// one plan (prepare once, serve many) while Invoke stays a flat walk with
// zero per-node setup and zero heap allocation.
#pragma once

#include <memory>
#include <vector>

#include "src/graph/graph.h"
#include "src/kernels/op_resolver.h"

namespace mlexray {

// One prepared node execution: the resolved kernel plus the plan-owned
// storage its prepare hook filled (null for kernels with no one-time work).
// Per-session tensor wiring lives in the Session's contexts, not here.
struct PlanStep {
  const Node* node = nullptr;
  const KernelEntry* kernel = nullptr;  // owned by the resolver's kernel map
  PreparedStorage* prepared = nullptr;  // plan-owned; read-only after build
};

class ExecutionPlan {
 public:
  // Resolves every non-input node of `graph` against `resolver` and runs each
  // kernel's prepare hook exactly once. Prepare hooks see a context wired to
  // transient metadata tensors (shapes, dtypes, quant params are final;
  // activation *data* must not be read — the same contract as before).
  // `pool` is only used to parallelize prepare work itself. Prepared results
  // live in plan-owned PreparedStorage for the plan's lifetime. graph and
  // resolver must outlive the plan.
  ExecutionPlan(const Graph& graph, const OpResolver& resolver, PoolRef pool);

  const std::vector<PlanStep>& steps() const { return steps_; }

  // Executable (non-input) node count — the number of on_step callbacks an
  // InvokeObserver sees per invoke; observers pre-size capture storage by it.
  std::size_t step_count() const { return steps_.size(); }

  // Bytes held across all steps' prepared storage (packed weights etc.) —
  // the memory cost of plan-time packing, surfaced in SessionStats. Shared
  // across every session executing this plan.
  std::size_t prepared_bytes() const;

 private:
  std::vector<PlanStep> steps_;
  // One slot per step with a prepare hook; pointers handed to steps stay
  // stable because the storage objects are individually heap-owned.
  std::vector<std::unique_ptr<PreparedStorage>> prepared_;
};

}  // namespace mlexray
