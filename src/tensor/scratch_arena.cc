#include "src/tensor/scratch_arena.h"

#include <algorithm>
#include <cstdint>

#include "src/common/error.h"
#include "src/tensor/alloc_stats.h"

namespace mlexray {

namespace {
constexpr std::size_t kMinBlockBytes = 64 * 1024;

inline std::size_t align_up(std::size_t value, std::size_t align) {
  return (value + align - 1) & ~(align - 1);
}

// Offset into the block at which an allocation of the given alignment can
// start. Alignment is of the absolute address: operator new[] only guarantees
// __STDCPP_DEFAULT_NEW_ALIGNMENT__ (typically 16) for the block base, so
// aligning the offset alone would under-align the returned pointer.
inline std::size_t aligned_offset(const std::uint8_t* base, std::size_t used,
                                  std::size_t align) {
  const auto addr = reinterpret_cast<std::uintptr_t>(base) + used;
  return align_up(addr, align) - reinterpret_cast<std::uintptr_t>(base);
}
}  // namespace

ScratchArena::~ScratchArena() {
  for (const Block& b : blocks_) AllocStats::instance().remove(b.size);
}

void ScratchArena::grow(std::size_t min_bytes) {
  // Double the arena each growth so a model's first invoke settles in
  // O(log n) allocations; never smaller than the request.
  std::size_t size = std::max({min_bytes, capacity_, kMinBlockBytes});
  Block b;
  b.data = std::make_unique<std::uint8_t[]>(size);
  b.size = size;
  capacity_ += size;
  AllocStats::instance().add(size);
  blocks_.push_back(std::move(b));
  active_ = blocks_.size() - 1;
}

void* ScratchArena::allocate(std::size_t bytes, std::size_t align) {
  MLX_CHECK((align & (align - 1)) == 0) << "alignment must be a power of two";
  if (bytes == 0) bytes = 1;
  // Find a block with room, starting at the active one (earlier blocks were
  // exhausted this cycle; later ones may have been added by a grow).
  for (std::size_t i = active_; i < blocks_.size(); ++i) {
    Block& b = blocks_[i];
    std::size_t offset = aligned_offset(b.data.get(), b.used, align);
    if (offset + bytes <= b.size) {
      b.used = offset + bytes;
      active_ = i;
      in_use_ += bytes;
      high_water_ = std::max(high_water_, in_use_);
      return b.data.get() + offset;
    }
  }
  grow(align_up(bytes, align) + align);
  Block& b = blocks_[active_];
  std::size_t offset = aligned_offset(b.data.get(), b.used, align);
  b.used = offset + bytes;
  in_use_ += bytes;
  high_water_ = std::max(high_water_, in_use_);
  return b.data.get() + offset;
}

void ScratchArena::reset() {
  for (Block& b : blocks_) b.used = 0;
  active_ = 0;
  in_use_ = 0;
}

}  // namespace mlexray
