// Dense tensor: dtype + shape + owned buffer + optional quantization params.
//
// This is the single tensor type shared by the training pipeline, the
// interpreter and the ML-EXray logs. Layout is always row-major over the
// shape (NHWC for rank-4 activations).
#pragma once

#include <cstring>
#include <string>
#include <vector>

#include "src/tensor/dtype.h"
#include "src/tensor/quant_params.h"
#include "src/tensor/shape.h"

namespace mlexray {

class Tensor {
 public:
  Tensor() = default;
  Tensor(DType dtype, Shape shape);
  Tensor(const Tensor& other);
  Tensor(Tensor&& other) noexcept;
  Tensor& operator=(const Tensor& other);
  Tensor& operator=(Tensor&& other) noexcept;
  ~Tensor();

  // Convenience constructors.
  static Tensor f32(Shape shape) { return Tensor(DType::kF32, shape); }
  static Tensor f32(Shape shape, std::vector<float> values);
  static Tensor i8(Shape shape) { return Tensor(DType::kI8, shape); }
  static Tensor u8(Shape shape) { return Tensor(DType::kU8, shape); }
  static Tensor i32(Shape shape) { return Tensor(DType::kI32, shape); }
  static Tensor scalar_f32(float value);

  DType dtype() const { return dtype_; }
  const Shape& shape() const { return shape_; }
  std::int64_t num_elements() const { return shape_.num_elements(); }
  std::size_t byte_size() const { return buffer_.size(); }
  bool defined() const { return !buffer_.empty() || shape_.rank() > 0; }

  QuantParams& quant() { return quant_; }
  const QuantParams& quant() const { return quant_; }

  template <typename T>
  T* data() {
    MLX_CHECK(DTypeOf<T>::value == dtype_)
        << "dtype mismatch: tensor is " << dtype_name(dtype_);
    return reinterpret_cast<T*>(buffer_.data());
  }
  template <typename T>
  const T* data() const {
    MLX_CHECK(DTypeOf<T>::value == dtype_)
        << "dtype mismatch: tensor is " << dtype_name(dtype_);
    return reinterpret_cast<const T*>(buffer_.data());
  }

  const void* raw_data() const { return buffer_.data(); }
  void* raw_data() { return buffer_.data(); }

  // Row-major flat offset for a rank-4 (NHWC) index.
  std::int64_t offset4(std::int64_t n, std::int64_t h, std::int64_t w,
                       std::int64_t c) const {
    return ((n * shape_.dim(1) + h) * shape_.dim(2) + w) * shape_.dim(3) + c;
  }

  template <typename T>
  T& at4(std::int64_t n, std::int64_t h, std::int64_t w, std::int64_t c) {
    return data<T>()[offset4(n, h, w, c)];
  }
  template <typename T>
  const T& at4(std::int64_t n, std::int64_t h, std::int64_t w,
               std::int64_t c) const {
    return data<T>()[offset4(n, h, w, c)];
  }

  void fill_zero() { std::memset(buffer_.data(), 0, buffer_.size()); }
  template <typename T>
  void fill(T value) {
    T* p = data<T>();
    for (std::int64_t i = 0; i < num_elements(); ++i) p[i] = value;
  }

  // Element-wise conversion to a float tensor; quantized tensors are
  // dequantized with their QuantParams.
  Tensor to_f32() const;

  // Copies float values into a vector (requires kF32).
  std::vector<float> as_f32_vector() const;

 private:
  void allocate();
  void release();

  DType dtype_ = DType::kF32;
  Shape shape_;
  std::vector<std::uint8_t> buffer_;
  QuantParams quant_;
};

}  // namespace mlexray
