// Per-interpreter scratch arena for kernel temporaries.
//
// Kernels need short-lived buffers (im2col patches, requantization tables,
// per-worker accumulators). Allocating them as std::vectors inside every
// kernel call puts malloc/free on the hot path of every node of every
// invoke — exactly the overhead ML-EXray's <0.4% instrumentation budget
// (Table 2) cannot absorb. The arena bump-allocates from blocks that persist
// across invokes: the first invoke grows it to the model's high-water mark,
// every later invoke reuses the same memory with zero heap traffic.
//
// reset() rewinds all blocks without releasing them; it is called by the
// interpreter before each node. Blocks are chained (never reallocated or
// moved), so pointers handed out earlier in the same node stay valid when a
// later request forces growth.
//
// Not thread-safe: all allocation happens on the interpreter thread before a
// kernel fans work out to the pool. Kernels that need per-worker storage
// allocate parallelism() slices up front and index them by worker id.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace mlexray {

class ScratchArena {
 public:
  ScratchArena() = default;
  ~ScratchArena();

  ScratchArena(const ScratchArena&) = delete;
  ScratchArena& operator=(const ScratchArena&) = delete;

  // Returns `bytes` of storage aligned to `align` (power of two). The memory
  // is valid until the next reset(). Growth (a heap allocation) only happens
  // when the request exceeds remaining capacity — steady state is
  // allocation-free.
  void* allocate(std::size_t bytes, std::size_t align = kDefaultAlign);

  template <typename T>
  T* allocate_array(std::size_t count) {
    return static_cast<T*>(allocate(count * sizeof(T), alignof(T) > kDefaultAlign
                                                           ? alignof(T)
                                                           : kDefaultAlign));
  }

  // Rewinds every block; capacity is retained.
  void reset();

  // Bytes reserved across all blocks.
  std::size_t capacity_bytes() const { return capacity_; }
  // Largest total in use observed since construction.
  std::size_t high_water_bytes() const { return high_water_; }

  // Cache-line alignment so scratch rows don't false-share across workers.
  static constexpr std::size_t kDefaultAlign = 64;

 private:
  struct Block {
    std::unique_ptr<std::uint8_t[]> data;
    std::size_t size = 0;
    std::size_t used = 0;
  };

  void grow(std::size_t min_bytes);

  std::vector<Block> blocks_;
  std::size_t active_ = 0;  // index of the block currently bumping
  std::size_t capacity_ = 0;
  std::size_t in_use_ = 0;
  std::size_t high_water_ = 0;
};

}  // namespace mlexray
