// Statistics over tensors and between tensor pairs.
//
// normalized_rmse() implements the paper's §3.4 drift metric:
//   rMSE-hat = rMSE / (max_i(e_i) - min_i(e_i))
// where e is the reference layer output. The validator uses it to localise
// error-prone layers; alternative metrics (L-inf, cosine distance) are
// provided for the ablation study.
#pragma once

#include <cstdint>

#include "src/tensor/tensor.h"

namespace mlexray {

struct TensorSummary {
  float min = 0.0f;
  float max = 0.0f;
  double mean = 0.0;
  double stddev = 0.0;
  std::int64_t count = 0;
};

TensorSummary summarize(const Tensor& tensor);

// Root-mean-square error between two same-shaped tensors (dequantized).
double rmse(const Tensor& a, const Tensor& b);

// rMSE normalized by the reference tensor's value range (paper §3.4).
// Returns 0 when the reference range is degenerate and the tensors match,
// +inf when the range is degenerate but the tensors differ.
double normalized_rmse(const Tensor& test, const Tensor& reference);

// Max absolute element difference.
double linf_error(const Tensor& a, const Tensor& b);

// 1 - cosine similarity of the flattened tensors (0 for identical direction).
double cosine_distance(const Tensor& a, const Tensor& b);

// True when all elements differ by at most tolerance (after dequantization).
bool all_close(const Tensor& a, const Tensor& b, double tolerance);

}  // namespace mlexray
