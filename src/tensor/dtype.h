// Element types supported by the runtime.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "src/common/error.h"

namespace mlexray {

enum class DType : std::uint8_t {
  kF32 = 0,  // 32-bit IEEE float — training and "Mobile" float inference
  kI8 = 1,   // quantized activations/weights (full-integer deployment)
  kU8 = 2,   // raw sensor bytes (camera images) and legacy uint8 quantization
  kI32 = 3,  // quantized biases and integer bookkeeping
};

inline std::size_t dtype_size(DType dtype) {
  switch (dtype) {
    case DType::kF32: return 4;
    case DType::kI8: return 1;
    case DType::kU8: return 1;
    case DType::kI32: return 4;
  }
  MLX_FAIL() << "unknown dtype";
}

inline std::string dtype_name(DType dtype) {
  switch (dtype) {
    case DType::kF32: return "f32";
    case DType::kI8: return "i8";
    case DType::kU8: return "u8";
    case DType::kI32: return "i32";
  }
  MLX_FAIL() << "unknown dtype";
}

// Maps a C++ type to its DType tag at compile time.
template <typename T>
struct DTypeOf;
template <> struct DTypeOf<float> { static constexpr DType value = DType::kF32; };
template <> struct DTypeOf<std::int8_t> { static constexpr DType value = DType::kI8; };
template <> struct DTypeOf<std::uint8_t> { static constexpr DType value = DType::kU8; };
template <> struct DTypeOf<std::int32_t> { static constexpr DType value = DType::kI32; };

}  // namespace mlexray
