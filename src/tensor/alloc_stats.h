// Process-wide tensor memory accounting.
//
// The paper reports the memory footprint of instrumented apps and of offline
// per-layer validation (Tables 2/3/5). Physical RSS is noisy and
// platform-specific, so the runtime tracks its own tensor allocations: every
// Tensor and arena registers its buffer here, giving deterministic
// current/peak byte counts that the EdgeMLMonitor snapshots.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace mlexray {

class AllocStats {
 public:
  static AllocStats& instance();

  void add(std::size_t bytes);
  void remove(std::size_t bytes);

  std::size_t current_bytes() const { return current_.load(); }
  std::size_t peak_bytes() const { return peak_.load(); }

  // Monotonic count of tracked buffer allocations (Tensor buffers and
  // ScratchArena blocks). Steady-state Interpreter::invoke() must not move
  // this counter — the zero-allocation regression tests diff it around an
  // invoke.
  std::uint64_t alloc_events() const { return events_.load(); }

  // Resets the peak to the current level (scoped measurements).
  void reset_peak();

 private:
  std::atomic<std::size_t> current_{0};
  std::atomic<std::size_t> peak_{0};
  std::atomic<std::uint64_t> events_{0};
};

// RAII helper: captures the peak allocation delta within a scope.
class ScopedPeakTracker {
 public:
  ScopedPeakTracker();
  // Peak bytes observed since construction, relative to the starting level.
  std::size_t peak_delta_bytes() const;

 private:
  std::size_t start_current_;
};

}  // namespace mlexray
