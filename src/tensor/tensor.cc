#include "src/tensor/tensor.h"

#include "src/tensor/alloc_stats.h"

namespace mlexray {

Tensor::Tensor(DType dtype, Shape shape) : dtype_(dtype), shape_(shape) {
  allocate();
}

Tensor::Tensor(const Tensor& other)
    : dtype_(other.dtype_),
      shape_(other.shape_),
      buffer_(other.buffer_),
      quant_(other.quant_) {
  AllocStats::instance().add(buffer_.size());
}

Tensor::Tensor(Tensor&& other) noexcept
    : dtype_(other.dtype_),
      shape_(other.shape_),
      buffer_(std::move(other.buffer_)),
      quant_(std::move(other.quant_)) {
  other.shape_ = Shape();
}

Tensor& Tensor::operator=(const Tensor& other) {
  if (this == &other) return *this;
  release();
  dtype_ = other.dtype_;
  shape_ = other.shape_;
  buffer_ = other.buffer_;
  quant_ = other.quant_;
  AllocStats::instance().add(buffer_.size());
  return *this;
}

Tensor& Tensor::operator=(Tensor&& other) noexcept {
  if (this == &other) return *this;
  release();
  dtype_ = other.dtype_;
  shape_ = other.shape_;
  buffer_ = std::move(other.buffer_);
  quant_ = std::move(other.quant_);
  other.shape_ = Shape();
  return *this;
}

Tensor::~Tensor() { release(); }

void Tensor::allocate() {
  std::size_t bytes =
      static_cast<std::size_t>(shape_.num_elements()) * dtype_size(dtype_);
  buffer_.assign(bytes, 0);
  AllocStats::instance().add(bytes);
}

void Tensor::release() {
  if (!buffer_.empty()) {
    AllocStats::instance().remove(buffer_.size());
    buffer_.clear();
  }
}

Tensor Tensor::f32(Shape shape, std::vector<float> values) {
  Tensor t(DType::kF32, shape);
  MLX_CHECK_EQ(static_cast<std::size_t>(t.num_elements()), values.size());
  std::memcpy(t.raw_data(), values.data(), values.size() * sizeof(float));
  return t;
}

Tensor Tensor::scalar_f32(float value) {
  Tensor t(DType::kF32, Shape{1});
  t.data<float>()[0] = value;
  return t;
}

namespace {

// Channel index of a flat element under per-channel quantization.
std::int64_t channel_of(const Shape& shape, int axis, std::int64_t flat) {
  std::int64_t stride = 1;
  for (int d = shape.rank() - 1; d > axis; --d) stride *= shape.dim(d);
  return (flat / stride) % shape.dim(axis);
}

}  // namespace

Tensor Tensor::to_f32() const {
  if (dtype_ == DType::kF32) return *this;
  Tensor out(DType::kF32, shape_);
  float* dst = out.data<float>();
  const std::int64_t n = num_elements();
  if (!quant_.quantized()) {
    // Plain integer widening (e.g. raw u8 image bytes).
    for (std::int64_t i = 0; i < n; ++i) {
      switch (dtype_) {
        case DType::kI8: dst[i] = static_cast<float>(data<std::int8_t>()[i]); break;
        case DType::kU8: dst[i] = static_cast<float>(data<std::uint8_t>()[i]); break;
        case DType::kI32: dst[i] = static_cast<float>(data<std::int32_t>()[i]); break;
        case DType::kF32: break;
      }
    }
    return out;
  }
  for (std::int64_t i = 0; i < n; ++i) {
    std::size_t ch = 0;
    if (quant_.per_channel()) {
      ch = static_cast<std::size_t>(channel_of(shape_, quant_.channel_axis, i));
    }
    std::int32_t q = 0;
    switch (dtype_) {
      case DType::kI8: q = data<std::int8_t>()[i]; break;
      case DType::kU8: q = data<std::uint8_t>()[i]; break;
      case DType::kI32: q = data<std::int32_t>()[i]; break;
      case DType::kF32: break;
    }
    dst[i] = quant_.scale(ch) * static_cast<float>(q - quant_.zero_point(ch));
  }
  return out;
}

std::vector<float> Tensor::as_f32_vector() const {
  MLX_CHECK(dtype_ == DType::kF32) << "as_f32_vector requires f32";
  const float* p = data<float>();
  return std::vector<float>(p, p + num_elements());
}

}  // namespace mlexray
