#include "src/tensor/tensor_stats.h"

#include <cmath>
#include <limits>

namespace mlexray {

TensorSummary summarize(const Tensor& tensor) {
  Tensor f = tensor.to_f32();
  const float* p = f.data<float>();
  TensorSummary s;
  s.count = f.num_elements();
  if (s.count == 0) return s;
  s.min = std::numeric_limits<float>::infinity();
  s.max = -std::numeric_limits<float>::infinity();
  double sum = 0.0;
  double sum_sq = 0.0;
  for (std::int64_t i = 0; i < s.count; ++i) {
    s.min = std::min(s.min, p[i]);
    s.max = std::max(s.max, p[i]);
    sum += p[i];
    sum_sq += static_cast<double>(p[i]) * p[i];
  }
  s.mean = sum / static_cast<double>(s.count);
  double var = sum_sq / static_cast<double>(s.count) - s.mean * s.mean;
  s.stddev = std::sqrt(std::max(0.0, var));
  return s;
}

namespace {

void check_comparable(const Tensor& a, const Tensor& b) {
  MLX_CHECK_EQ(a.num_elements(), b.num_elements())
      << "tensor size mismatch " << a.shape().to_string() << " vs "
      << b.shape().to_string();
}

}  // namespace

double rmse(const Tensor& a, const Tensor& b) {
  check_comparable(a, b);
  Tensor fa = a.to_f32();
  Tensor fb = b.to_f32();
  const float* pa = fa.data<float>();
  const float* pb = fb.data<float>();
  const std::int64_t n = fa.num_elements();
  if (n == 0) return 0.0;
  double sum_sq = 0.0;
  for (std::int64_t i = 0; i < n; ++i) {
    double d = static_cast<double>(pa[i]) - pb[i];
    sum_sq += d * d;
  }
  return std::sqrt(sum_sq / static_cast<double>(n));
}

double normalized_rmse(const Tensor& test, const Tensor& reference) {
  double err = rmse(test, reference);
  TensorSummary ref = summarize(reference);
  double range = static_cast<double>(ref.max) - ref.min;
  if (range <= 0.0) {
    return err == 0.0 ? 0.0 : std::numeric_limits<double>::infinity();
  }
  return err / range;
}

double linf_error(const Tensor& a, const Tensor& b) {
  check_comparable(a, b);
  Tensor fa = a.to_f32();
  Tensor fb = b.to_f32();
  const float* pa = fa.data<float>();
  const float* pb = fb.data<float>();
  double worst = 0.0;
  for (std::int64_t i = 0; i < fa.num_elements(); ++i) {
    worst = std::max(worst, std::abs(static_cast<double>(pa[i]) - pb[i]));
  }
  return worst;
}

double cosine_distance(const Tensor& a, const Tensor& b) {
  check_comparable(a, b);
  Tensor fa = a.to_f32();
  Tensor fb = b.to_f32();
  const float* pa = fa.data<float>();
  const float* pb = fb.data<float>();
  double dot = 0.0;
  double na = 0.0;
  double nb = 0.0;
  for (std::int64_t i = 0; i < fa.num_elements(); ++i) {
    dot += static_cast<double>(pa[i]) * pb[i];
    na += static_cast<double>(pa[i]) * pa[i];
    nb += static_cast<double>(pb[i]) * pb[i];
  }
  if (na == 0.0 || nb == 0.0) return (na == nb) ? 0.0 : 1.0;
  return 1.0 - dot / (std::sqrt(na) * std::sqrt(nb));
}

bool all_close(const Tensor& a, const Tensor& b, double tolerance) {
  if (a.num_elements() != b.num_elements()) return false;
  return linf_error(a, b) <= tolerance;
}

}  // namespace mlexray
