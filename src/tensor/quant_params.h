// Affine quantization parameters, per-tensor or per-channel.
//
//   real = scale * (quantized - zero_point)            (per-tensor)
//   real[c] = scale[c] * (quantized[c] - zero_point[c]) (per-channel, axis 0)
//
// Matches the schemes discussed in the paper's §2: asymmetric per-tensor
// (Eqn 1/2), symmetric (zero_point == 0), and per-channel weight scales.
#pragma once

#include <cstdint>
#include <vector>

#include "src/common/error.h"

namespace mlexray {

struct QuantParams {
  // Empty scales <=> tensor is not quantized.
  std::vector<float> scales;
  std::vector<std::int32_t> zero_points;
  int channel_axis = 0;  // only meaningful when per_channel()

  bool quantized() const { return !scales.empty(); }
  bool per_channel() const { return scales.size() > 1; }

  static QuantParams per_tensor(float scale, std::int32_t zero_point) {
    QuantParams q;
    q.scales = {scale};
    q.zero_points = {zero_point};
    return q;
  }

  static QuantParams per_channel_params(std::vector<float> scales,
                                        std::vector<std::int32_t> zero_points,
                                        int axis) {
    MLX_CHECK_EQ(scales.size(), zero_points.size());
    QuantParams q;
    q.scales = std::move(scales);
    q.zero_points = std::move(zero_points);
    q.channel_axis = axis;
    return q;
  }

  float scale(std::size_t channel = 0) const {
    MLX_CHECK(quantized());
    return per_channel() ? scales.at(channel) : scales[0];
  }
  std::int32_t zero_point(std::size_t channel = 0) const {
    MLX_CHECK(quantized());
    return per_channel() ? zero_points.at(channel) : zero_points[0];
  }
};

}  // namespace mlexray
