#include "src/tensor/alloc_stats.h"

namespace mlexray {

AllocStats& AllocStats::instance() {
  static AllocStats stats;
  return stats;
}

void AllocStats::add(std::size_t bytes) {
  if (bytes > 0) events_.fetch_add(1);
  std::size_t now = current_.fetch_add(bytes) + bytes;
  std::size_t prev_peak = peak_.load();
  while (now > prev_peak && !peak_.compare_exchange_weak(prev_peak, now)) {
  }
}

void AllocStats::remove(std::size_t bytes) { current_.fetch_sub(bytes); }

void AllocStats::reset_peak() { peak_.store(current_.load()); }

ScopedPeakTracker::ScopedPeakTracker()
    : start_current_(AllocStats::instance().current_bytes()) {
  AllocStats::instance().reset_peak();
}

std::size_t ScopedPeakTracker::peak_delta_bytes() const {
  std::size_t peak = AllocStats::instance().peak_bytes();
  return peak > start_current_ ? peak - start_current_ : 0;
}

}  // namespace mlexray
