// Tensor shape: a small fixed-capacity dimension vector.
//
// Convention throughout the runtime: activations are NHWC
// (batch, height, width, channels); convolution weights are OHWI
// (out_channels, kh, kw, in_channels); depthwise weights are 1HWC-multiplied.
#pragma once

#include <array>
#include <cstdint>
#include <initializer_list>
#include <string>

#include "src/common/error.h"

namespace mlexray {

class Shape {
 public:
  static constexpr int kMaxRank = 5;

  Shape() = default;
  Shape(std::initializer_list<std::int64_t> dims) {
    MLX_CHECK_LE(dims.size(), static_cast<std::size_t>(kMaxRank));
    for (std::int64_t d : dims) dims_[rank_++] = d;
  }

  int rank() const { return rank_; }
  std::int64_t dim(int i) const {
    MLX_CHECK(i >= 0 && i < rank_) << "dim index " << i << " rank " << rank_;
    return dims_[i];
  }
  std::int64_t operator[](int i) const { return dim(i); }
  void set_dim(int i, std::int64_t v) {
    MLX_CHECK(i >= 0 && i < rank_);
    dims_[i] = v;
  }

  std::int64_t num_elements() const {
    std::int64_t n = 1;
    for (int i = 0; i < rank_; ++i) n *= dims_[i];
    return n;
  }

  bool operator==(const Shape& other) const {
    if (rank_ != other.rank_) return false;
    for (int i = 0; i < rank_; ++i) {
      if (dims_[i] != other.dims_[i]) return false;
    }
    return true;
  }
  bool operator!=(const Shape& other) const { return !(*this == other); }

  std::string to_string() const {
    std::string s = "[";
    for (int i = 0; i < rank_; ++i) {
      if (i > 0) s += "x";
      s += std::to_string(dims_[i]);
    }
    return s + "]";
  }

  // NHWC accessors (valid for rank-4 shapes).
  std::int64_t batch() const { return dim(0); }
  std::int64_t height() const { return dim(1); }
  std::int64_t width() const { return dim(2); }
  std::int64_t channels() const { return dim(rank_ - 1); }

 private:
  std::array<std::int64_t, kMaxRank> dims_{};
  int rank_ = 0;
};

}  // namespace mlexray
