#include "src/common/string_util.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <sstream>

namespace mlexray {

std::vector<std::string> split(std::string_view text, char sep) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == sep) {
      parts.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return parts;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string to_lower(std::string_view text) {
  std::string out(text);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

std::string trim(std::string_view text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) ++begin;
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1]))) --end;
  return std::string(text.substr(begin, end - begin));
}

std::string format_float(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
  return std::string(buf);
}

std::string render_table(const std::vector<std::string>& header,
                         const std::vector<std::vector<std::string>>& rows) {
  std::vector<std::size_t> widths(header.size(), 0);
  auto grow = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size() && i < widths.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  };
  grow(header);
  for (const auto& row : rows) grow(row);

  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& row) {
    out << "|";
    for (std::size_t i = 0; i < widths.size(); ++i) {
      std::string cell = i < row.size() ? row[i] : "";
      out << " " << cell << std::string(widths[i] - cell.size(), ' ') << " |";
    }
    out << "\n";
  };
  emit(header);
  out << "|";
  for (std::size_t width : widths) out << std::string(width + 2, '-') << "|";
  out << "\n";
  for (const auto& row : rows) emit(row);
  return out.str();
}

}  // namespace mlexray
