// Non-owning callable reference.
//
// The kernel hot path hands loop bodies to ThreadPool::parallel_for on every
// node of every invoke; std::function would heap-allocate for any capture
// larger than its small-buffer (GCC: 16 bytes), which kernel lambdas always
// exceed. FunctionRef stores a type-erased pointer to the caller's callable
// instead — zero allocation, trivially copyable. The referenced callable must
// outlive the call, which parallel_for guarantees (it blocks until all chunks
// finish).
#pragma once

#include <type_traits>
#include <utility>

namespace mlexray {

template <typename Signature>
class FunctionRef;

template <typename R, typename... Args>
class FunctionRef<R(Args...)> {
 public:
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::remove_cvref_t<F>, FunctionRef> &&
                std::is_invocable_r_v<R, F&, Args...>>>
  FunctionRef(F&& f)  // NOLINT: implicit by design, mirrors std::function_ref
      : obj_(const_cast<void*>(static_cast<const void*>(std::addressof(f)))),
        call_([](void* obj, Args... args) -> R {
          return (*static_cast<std::remove_reference_t<F>*>(obj))(
              std::forward<Args>(args)...);
        }) {}

  R operator()(Args... args) const {
    return call_(obj_, std::forward<Args>(args)...);
  }

 private:
  void* obj_;
  R (*call_)(void*, Args...);
};

}  // namespace mlexray
