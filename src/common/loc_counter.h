// Line-of-code accounting for the Table-1 reproduction.
//
// The paper's Table 1 compares how many lines of instrumentation ("Inst") and
// assertion ("Asrt") code a developer writes with vs without ML-EXray. The
// examples/loc_study/ sources carry marker comments delimiting those regions:
//
//   // [mlx-inst-begin] ... // [mlx-inst-end]
//   // [mlx-asrt-begin] ... // [mlx-asrt-end]
//
// count_marked_loc() counts non-blank, non-comment lines inside each region.
#pragma once

#include <filesystem>
#include <string>

namespace mlexray {

struct LocCount {
  int instrumentation = 0;
  int assertion = 0;
  int total() const { return instrumentation + assertion; }
};

// Counts marked regions in one source file. Throws if markers are unbalanced.
LocCount count_marked_loc(const std::string& source_text);
LocCount count_marked_loc_file(const std::filesystem::path& path);

// True for lines that count as code (non-blank, not a pure comment line).
bool is_code_line(const std::string& line);

}  // namespace mlexray
