#include "src/common/loc_counter.h"

#include "src/common/error.h"
#include "src/common/file_io.h"
#include "src/common/string_util.h"

namespace mlexray {

bool is_code_line(const std::string& line) {
  std::string t = trim(line);
  if (t.empty()) return false;
  if (starts_with(t, "//") || starts_with(t, "#")) return false;
  return true;
}

LocCount count_marked_loc(const std::string& source_text) {
  LocCount count;
  enum class Region { kNone, kInst, kAsrt } region = Region::kNone;
  for (const std::string& line : split(source_text, '\n')) {
    std::string t = trim(line);
    if (t.find("[mlx-inst-begin]") != std::string::npos) {
      MLX_CHECK(region == Region::kNone) << "nested marker region";
      region = Region::kInst;
      continue;
    }
    if (t.find("[mlx-asrt-begin]") != std::string::npos) {
      MLX_CHECK(region == Region::kNone) << "nested marker region";
      region = Region::kAsrt;
      continue;
    }
    if (t.find("[mlx-inst-end]") != std::string::npos) {
      MLX_CHECK(region == Region::kInst) << "unbalanced inst marker";
      region = Region::kNone;
      continue;
    }
    if (t.find("[mlx-asrt-end]") != std::string::npos) {
      MLX_CHECK(region == Region::kAsrt) << "unbalanced asrt marker";
      region = Region::kNone;
      continue;
    }
    if (region == Region::kNone || !is_code_line(line)) continue;
    if (region == Region::kInst) ++count.instrumentation;
    if (region == Region::kAsrt) ++count.assertion;
  }
  MLX_CHECK(region == Region::kNone) << "unterminated marker region";
  return count;
}

LocCount count_marked_loc_file(const std::filesystem::path& path) {
  return count_marked_loc(read_text_file(path));
}

}  // namespace mlexray
