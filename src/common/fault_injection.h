// Fault injection: named fault points for exercising failure paths that
// production traffic cannot reach on demand.
//
// A fault *site* is a string name compiled into the runtime at the places
// failures originate (kernel entry, the session's plan walk, plan prepare,
// the trace spooler's write loop). Tests *arm* a site with a FaultSpec —
// throw an MlxError, stall the step for a fixed delay, or poke a NaN into
// the step's output — then drive ordinary serving traffic through it and
// assert the containment story: statuses surface on the right lease,
// poisoned sessions never re-pool, the engine keeps serving.
//
// Hot-path cost when nothing is armed is a single relaxed atomic load
// (fault::enabled()); sites are expected to guard with it:
//
//   if (fault::enabled() && fault::check(fault_sites::kInvokeOutput)) {
//     /* a kNanPoke fired: corrupt the payload the site owns */
//   }
//
// check() handles kThrow (throws MlxError from the fault point) and kDelay
// (sleeps) internally; kNanPoke is returned to the caller because only the
// site knows which buffer to corrupt. Arm/disarm and trigger bookkeeping are
// mutex-protected so concurrent serving threads and a chaos-driver thread
// can race freely (the chaos test runs this under TSan).
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

namespace mlexray {
namespace fault {

enum class Kind {
  kThrow,    // throw MlxError from the fault point
  kDelay,    // sleep delay_ms at the fault point (deadline testing)
  kNanPoke,  // report "fired" so the site corrupts its payload with NaN
};

struct Spec {
  Kind kind = Kind::kThrow;
  int delay_ms = 0;             // kDelay only
  std::uint64_t skip = 0;       // let this many hits pass before firing
  std::int64_t max_fires = -1;  // stop firing after this many (-1 = forever)
  std::string message = "injected fault";  // kThrow's MlxError text
};

// True iff any site is armed. Relaxed load; sites use it to keep the
// disarmed steady state allocation- and lock-free.
bool enabled();

// The fault point. Counts a hit for `site`; if an armed spec elects to fire:
// kThrow throws MlxError(spec.message + site), kDelay sleeps, kNanPoke
// returns true. Returns false otherwise.
bool check(const char* site);

// Arms `site` with `spec`, replacing any previous arming (hit/fire counters
// reset). Thread-safe.
void arm(const std::string& site, Spec spec);
void disarm(const std::string& site);
void disarm_all();

// Observability for tests: hits = times the (armed) site was reached,
// fires = times it actually fired. Both reset at arm(); zero for unknown
// sites.
std::uint64_t hit_count(const std::string& site);
std::uint64_t fire_count(const std::string& site);

}  // namespace fault

// Canonical site names. Keep in one place so tests and wired code never
// drift on spelling.
namespace fault_sites {
// Before each prepared step of Session::try_invoke/invoke (throw/delay).
inline constexpr const char* kInvokeStep = "invoke.step";
// After each prepared step, owning the step's output tensor (NaN poke).
inline constexpr const char* kInvokeOutput = "invoke.output";
// Entry of the f32 GEMM kernel — a real kernel-level failure origin.
inline constexpr const char* kKernelGemm = "kernel.gemm";
// ExecutionPlan construction, before prepare hooks run (load-failure tests).
inline constexpr const char* kPlanPrepare = "plan.prepare";
// TraceBuffer spool worker, before each batch write.
inline constexpr const char* kSpoolWrite = "spool.write";
}  // namespace fault_sites

}  // namespace mlexray
