// Small string helpers used across the library (formatting of reports,
// trace keys, table rendering in the benchmark harnesses).
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace mlexray {

std::vector<std::string> split(std::string_view text, char sep);
std::string join(const std::vector<std::string>& parts, std::string_view sep);
std::string to_lower(std::string_view text);
bool starts_with(std::string_view text, std::string_view prefix);
bool ends_with(std::string_view text, std::string_view suffix);
std::string trim(std::string_view text);

// Fixed-precision float formatting ("3.142" for format_float(pi, 3)).
std::string format_float(double value, int digits);

// Renders an ASCII table with a header row; used by the bench harnesses to
// print the paper's tables.
std::string render_table(const std::vector<std::string>& header,
                         const std::vector<std::vector<std::string>>& rows);

}  // namespace mlexray
