// Deterministic pseudo-random number generation (PCG32).
//
// Every stochastic component in the repo (dataset synthesis, weight init,
// training shuffles) draws from a Pcg32 seeded explicitly, so all experiments
// are bit-reproducible across runs and machines.
#pragma once

#include <cstdint>
#include <vector>

#include "src/common/error.h"

namespace mlexray {

// PCG-XSH-RR 64/32 generator (O'Neill 2014). Small, fast, well distributed.
class Pcg32 {
 public:
  explicit Pcg32(std::uint64_t seed, std::uint64_t stream = 0x14057b7ef767814fULL);

  // Uniform 32-bit value.
  std::uint32_t next_u32();

  // Uniform in [0, bound), bias-free via rejection.
  std::uint32_t next_below(std::uint32_t bound);

  // Uniform double in [0, 1).
  double next_double();

  // Uniform float in [lo, hi).
  float uniform(float lo, float hi);

  // Standard normal via Box-Muller (cached second value).
  float normal();
  float normal(float mean, float stddev);

  // Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& values) {
    for (std::size_t i = values.size(); i > 1; --i) {
      std::size_t j = next_below(static_cast<std::uint32_t>(i));
      std::swap(values[i - 1], values[j]);
    }
  }

  // Derive an independent child generator (for per-worker determinism).
  Pcg32 split();

 private:
  std::uint64_t state_;
  std::uint64_t inc_;
  bool has_cached_normal_ = false;
  float cached_normal_ = 0.0f;
};

}  // namespace mlexray
