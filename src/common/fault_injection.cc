#include "src/common/fault_injection.h"

#include <chrono>
#include <mutex>
#include <thread>
#include <vector>

#include "src/common/error.h"

namespace mlexray {
namespace fault {

namespace {

struct Site {
  std::string name;
  Spec spec;
  std::uint64_t hits = 0;
  std::uint64_t fires = 0;
};

// Number of armed sites; the fast-path gate. Written only under g_mu.
std::atomic<int> g_armed{0};

std::mutex& mu() {
  static std::mutex* m = new std::mutex;
  return *m;
}

std::vector<Site>& sites() {
  static std::vector<Site>* s = new std::vector<Site>;
  return *s;
}

Site* find_locked(const std::string& name) {
  for (Site& s : sites()) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

}  // namespace

bool enabled() { return g_armed.load(std::memory_order_relaxed) != 0; }

bool check(const char* site) {
  if (!enabled()) return false;
  Kind kind;
  int delay_ms = 0;
  std::string message;
  {
    std::lock_guard<std::mutex> lock(mu());
    Site* s = find_locked(site);
    if (s == nullptr) return false;
    const std::uint64_t hit = s->hits++;
    if (hit < s->spec.skip) return false;
    if (s->spec.max_fires >= 0 &&
        s->fires >= static_cast<std::uint64_t>(s->spec.max_fires)) {
      return false;
    }
    ++s->fires;
    kind = s->spec.kind;
    delay_ms = s->spec.delay_ms;
    if (kind == Kind::kThrow) message = s->spec.message + " at " + site;
  }
  // Act outside the lock: a throw must not leave it held via stack unwind
  // ordering surprises, and a sleep must not serialize other sites.
  switch (kind) {
    case Kind::kThrow:
      throw MlxError(message);
    case Kind::kDelay:
      std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
      return false;
    case Kind::kNanPoke:
      return true;
  }
  return false;
}

void arm(const std::string& site, Spec spec) {
  std::lock_guard<std::mutex> lock(mu());
  if (Site* s = find_locked(site)) {
    s->spec = std::move(spec);
    s->hits = 0;
    s->fires = 0;
    return;
  }
  sites().push_back(Site{site, std::move(spec), 0, 0});
  g_armed.store(static_cast<int>(sites().size()), std::memory_order_relaxed);
}

void disarm(const std::string& site) {
  std::lock_guard<std::mutex> lock(mu());
  auto& v = sites();
  for (auto it = v.begin(); it != v.end(); ++it) {
    if (it->name == site) {
      v.erase(it);
      break;
    }
  }
  g_armed.store(static_cast<int>(v.size()), std::memory_order_relaxed);
}

void disarm_all() {
  std::lock_guard<std::mutex> lock(mu());
  sites().clear();
  g_armed.store(0, std::memory_order_relaxed);
}

std::uint64_t hit_count(const std::string& site) {
  std::lock_guard<std::mutex> lock(mu());
  const Site* s = find_locked(site);
  return s != nullptr ? s->hits : 0;
}

std::uint64_t fire_count(const std::string& site) {
  std::lock_guard<std::mutex> lock(mu());
  const Site* s = find_locked(site);
  return s != nullptr ? s->fires : 0;
}

}  // namespace fault
}  // namespace mlexray
