// Error handling primitives for the mlexray codebase.
//
// Contract violations and unrecoverable runtime failures throw MlxError via
// the MLX_CHECK family; recoverable outcomes (e.g. assertion results in the
// validation framework) are modelled as data, never exceptions.
//
// Usage:  MLX_CHECK(n > 0) << "need a positive count, got " << n;
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>

namespace mlexray {

// Exception type thrown on broken invariants and invalid arguments.
class MlxError : public std::runtime_error {
 public:
  explicit MlxError(const std::string& what) : std::runtime_error(what) {}
};

namespace internal {

// Stream-style message builder: collects context then throws from its
// destructor at the end of the failing statement.
class CheckFailStream {
 public:
  CheckFailStream(const char* file, int line, const char* condition) {
    stream_ << file << ":" << line << ": check failed: " << condition << " ";
  }
  CheckFailStream(const CheckFailStream&) = delete;
  CheckFailStream& operator=(const CheckFailStream&) = delete;
  [[noreturn]] ~CheckFailStream() noexcept(false) {
    throw MlxError(stream_.str());
  }
  template <typename T>
  CheckFailStream& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace mlexray

// glog-style: the else branch builds a throwing stream only on failure.
// (Parenthesized constructor calls keep the expansion safe inside other
// function-like macros such as gtest's EXPECT_NO_THROW.)
#define MLX_CHECK(cond) \
  if (cond) {           \
  } else                \
    (::mlexray::internal::CheckFailStream(__FILE__, __LINE__, #cond))

// Arguments are evaluated exactly once (they may have side effects).
#define MLX_CHECK_BINOP(a, b, op)                                          \
  if (const auto mlx_check_pair_ = ::std::pair((a), (b));                  \
      mlx_check_pair_.first op mlx_check_pair_.second) {                   \
  } else                                                                   \
    (::mlexray::internal::CheckFailStream(__FILE__, __LINE__,              \
                                          #a " " #op " " #b))              \
        << "(" << mlx_check_pair_.first << " vs " << mlx_check_pair_.second \
        << ") "

#define MLX_CHECK_EQ(a, b) MLX_CHECK_BINOP(a, b, ==)
#define MLX_CHECK_NE(a, b) MLX_CHECK_BINOP(a, b, !=)
#define MLX_CHECK_LT(a, b) MLX_CHECK_BINOP(a, b, <)
#define MLX_CHECK_LE(a, b) MLX_CHECK_BINOP(a, b, <=)
#define MLX_CHECK_GT(a, b) MLX_CHECK_BINOP(a, b, >)
#define MLX_CHECK_GE(a, b) MLX_CHECK_BINOP(a, b, >=)

// Unconditional failure with a streamed message.
#define MLX_FAIL() \
  (::mlexray::internal::CheckFailStream(__FILE__, __LINE__, "failure"))
