#include "src/common/rng.h"

#include <cmath>

namespace mlexray {

Pcg32::Pcg32(std::uint64_t seed, std::uint64_t stream)
    : state_(0), inc_((stream << 1u) | 1u) {
  next_u32();
  state_ += seed;
  next_u32();
}

std::uint32_t Pcg32::next_u32() {
  std::uint64_t old = state_;
  state_ = old * 6364136223846793005ULL + inc_;
  auto xorshifted = static_cast<std::uint32_t>(((old >> 18u) ^ old) >> 27u);
  auto rot = static_cast<std::uint32_t>(old >> 59u);
  return (xorshifted >> rot) | (xorshifted << ((32u - rot) & 31u));
}

std::uint32_t Pcg32::next_below(std::uint32_t bound) {
  MLX_CHECK_GT(bound, 0u);
  // Lemire-style rejection keeps the distribution exactly uniform.
  std::uint32_t threshold = (0u - bound) % bound;
  for (;;) {
    std::uint32_t r = next_u32();
    if (r >= threshold) return r % bound;
  }
}

double Pcg32::next_double() {
  return static_cast<double>(next_u32()) * (1.0 / 4294967296.0);
}

float Pcg32::uniform(float lo, float hi) {
  return lo + static_cast<float>(next_double()) * (hi - lo);
}

float Pcg32::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box-Muller on two uniforms; guard the log against u1 == 0.
  double u1 = 0.0;
  while (u1 <= 1e-12) u1 = next_double();
  double u2 = next_double();
  double radius = std::sqrt(-2.0 * std::log(u1));
  double angle = 2.0 * 3.14159265358979323846 * u2;
  cached_normal_ = static_cast<float>(radius * std::sin(angle));
  has_cached_normal_ = true;
  return static_cast<float>(radius * std::cos(angle));
}

float Pcg32::normal(float mean, float stddev) {
  return mean + stddev * normal();
}

Pcg32 Pcg32::split() {
  std::uint64_t child_seed =
      (static_cast<std::uint64_t>(next_u32()) << 32) | next_u32();
  std::uint64_t child_stream =
      (static_cast<std::uint64_t>(next_u32()) << 32) | next_u32();
  return Pcg32(child_seed, child_stream);
}

}  // namespace mlexray
