#include "src/common/file_io.h"

#include <cstdlib>
#include <cstring>
#include <fstream>

namespace mlexray {

void BinaryWriter::write_u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) bytes_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void BinaryWriter::write_u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) bytes_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void BinaryWriter::write_f32(float v) {
  std::uint32_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  write_u32(bits);
}

void BinaryWriter::write_f64(double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  write_u64(bits);
}

void BinaryWriter::write_string(const std::string& s) {
  write_u32(static_cast<std::uint32_t>(s.size()));
  write_bytes(s.data(), s.size());
}

void BinaryWriter::write_bytes(const void* data, std::size_t size) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  bytes_.insert(bytes_.end(), p, p + size);
}

void BinaryWriter::write_f32_array(const std::vector<float>& values) {
  write_u64(values.size());
  write_bytes(values.data(), values.size() * sizeof(float));
}

void BinaryWriter::write_i32_array(const std::vector<std::int32_t>& values) {
  write_u64(values.size());
  write_bytes(values.data(), values.size() * sizeof(std::int32_t));
}

std::uint8_t BinaryReader::read_u8() {
  require(1);
  return bytes_[cursor_++];
}

std::uint32_t BinaryReader::read_u32() {
  require(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(bytes_[cursor_++]) << (8 * i);
  return v;
}

std::uint64_t BinaryReader::read_u64() {
  require(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(bytes_[cursor_++]) << (8 * i);
  return v;
}

float BinaryReader::read_f32() {
  std::uint32_t bits = read_u32();
  float v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

double BinaryReader::read_f64() {
  std::uint64_t bits = read_u64();
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::string BinaryReader::read_string() {
  std::uint32_t size = read_u32();
  require(size);
  std::string s(reinterpret_cast<const char*>(bytes_.data() + cursor_), size);
  cursor_ += size;
  return s;
}

void BinaryReader::read_bytes(void* out, std::size_t size) {
  require(size);
  std::memcpy(out, bytes_.data() + cursor_, size);
  cursor_ += size;
}

std::vector<float> BinaryReader::read_f32_array() {
  std::uint64_t n = read_u64();
  std::vector<float> values(n);
  read_bytes(values.data(), n * sizeof(float));
  return values;
}

std::vector<std::int32_t> BinaryReader::read_i32_array() {
  std::uint64_t n = read_u64();
  std::vector<std::int32_t> values(n);
  read_bytes(values.data(), n * sizeof(std::int32_t));
  return values;
}

void write_file(const std::filesystem::path& path,
                const std::vector<std::uint8_t>& bytes) {
  if (path.has_parent_path()) {
    std::filesystem::create_directories(path.parent_path());
  }
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  MLX_CHECK(out.good()) << "cannot open for write: " << path;
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  MLX_CHECK(out.good()) << "write failed: " << path;
}

std::vector<std::uint8_t> read_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  MLX_CHECK(in.good()) << "cannot open for read: " << path;
  auto size = static_cast<std::size_t>(in.tellg());
  in.seekg(0);
  std::vector<std::uint8_t> bytes(size);
  in.read(reinterpret_cast<char*>(bytes.data()),
          static_cast<std::streamsize>(size));
  MLX_CHECK(in.good()) << "read failed: " << path;
  return bytes;
}

void write_text_file(const std::filesystem::path& path,
                     const std::string& text) {
  std::vector<std::uint8_t> bytes(text.begin(), text.end());
  write_file(path, bytes);
}

std::string read_text_file(const std::filesystem::path& path) {
  auto bytes = read_file(path);
  return std::string(bytes.begin(), bytes.end());
}

std::filesystem::path cache_dir() {
  if (const char* env = std::getenv("MLEXRAY_CACHE_DIR")) {
    return std::filesystem::path(env);
  }
  return std::filesystem::path("mlexray_cache");
}

}  // namespace mlexray
