// A small fixed-size thread pool with a parallel_for helper.
//
// Used by the optimized kernel resolver to mirror the multi-threaded TFLite
// interpreter configuration the paper benchmarks (4 threads on a Pixel 4).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace mlexray {

class ThreadPool {
 public:
  // num_threads == 0 means hardware concurrency (at least 1).
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  // Runs fn(begin..end) split across workers; blocks until all chunks finish.
  // fn receives a half-open index range [chunk_begin, chunk_end).
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t, std::size_t)>& fn);

  // Process-wide pool sized for this host; lazily constructed.
  static ThreadPool& shared();

 private:
  void enqueue(std::function<void()> task);
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool shutting_down_ = false;
};

}  // namespace mlexray
