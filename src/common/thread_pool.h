// A small fixed-size thread pool with an allocation-free parallel_for.
//
// Used by the optimized kernel resolver to mirror the multi-threaded TFLite
// interpreter configuration the paper benchmarks (4 threads on a Pixel 4).
//
// parallel_for is designed for the interpreter's steady-state invoke path:
// the loop body is passed as a non-owning FunctionRef (no std::function
// heap allocation) and chunks are handed out through an atomic counter (no
// per-chunk task objects). The calling thread participates as worker 0, so a
// pool of N threads gives N+1-way parallelism.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "src/common/function_ref.h"

namespace mlexray {

class ThreadPool {
 public:
  // Spawns exactly num_threads worker threads. The calling thread of a
  // parallel_for always participates as well, so num_threads == 0 is valid:
  // every parallel_for then runs inline with zero scheduling overhead.
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }
  // Number of threads a parallel_for can use (workers + the caller).
  std::size_t parallelism() const { return workers_.size() + 1; }

  // Runs fn over [begin, end) split into chunks of at least min_chunk
  // elements; blocks until all chunks finish. fn receives a half-open index
  // range [chunk_begin, chunk_end). Chunks are claimed dynamically, so uneven
  // per-element cost balances across threads. Allocation-free. Nested calls
  // from inside a worker run the whole range inline on that worker.
  void parallel_for(std::size_t begin, std::size_t end,
                    FunctionRef<void(std::size_t, std::size_t)> fn,
                    std::size_t min_chunk = 1);

  // As parallel_for, but fn also receives the executing worker's index in
  // [0, parallelism()); index 0 is the calling thread. Kernels use the index
  // to address pre-planned per-worker scratch slices.
  void parallel_for_workers(
      std::size_t begin, std::size_t end,
      FunctionRef<void(std::size_t, std::size_t, std::size_t)> fn,
      std::size_t min_chunk = 1);

  // Process-wide pool sized for this host (hardware_concurrency - 1 workers,
  // since the submitting thread works too); lazily constructed. On a
  // single-core host it has no workers and parallel_for degrades gracefully
  // to inline execution instead of ping-ponging one CPU between threads.
  static ThreadPool& shared();

 private:
  using WorkerFn = FunctionRef<void(std::size_t, std::size_t, std::size_t)>;

  void worker_loop(std::size_t worker_index);
  // Claims chunks via next_ and runs fn on each until the range is
  // exhausted. fn/end/chunk are the caller's consistent snapshot of the job
  // (workers capture theirs under mutex_; the submitter uses its own
  // arguments).
  void run_chunks(const WorkerFn& fn, std::size_t end, std::size_t chunk,
                  std::size_t worker_index);

  std::vector<std::thread> workers_;

  // Serializes concurrent parallel_for calls from different caller threads
  // (the pool runs one job at a time).
  std::mutex submit_mutex_;

  // Job description; written and read only under mutex_ (the submitter also
  // reads its own writes lock-free). next_ is the only cross-thread shared
  // state touched outside the lock while a job runs.
  const WorkerFn* job_fn_ = nullptr;
  std::size_t job_end_ = 0;
  std::size_t job_chunk_ = 1;
  bool job_live_ = false;
  std::uint64_t generation_ = 0;
  std::atomic<std::size_t> next_{0};
  std::atomic<int> in_flight_{0};

  std::mutex mutex_;
  std::condition_variable cv_;       // wakes workers for a new job/shutdown
  std::condition_variable done_cv_;  // signals the submitter on completion
  bool shutting_down_ = false;
};

}  // namespace mlexray
