// A small fixed-size thread pool with an allocation-free parallel_for and
// multi-job submission.
//
// Used by the optimized kernel resolver to mirror the multi-threaded TFLite
// interpreter configuration the paper benchmarks (4 threads on a Pixel 4),
// and by the serving Engine, where many sessions fan work onto one bounded
// worker set concurrently.
//
// parallel_for is designed for the interpreter's steady-state invoke path:
// the loop body is passed as a non-owning FunctionRef (no std::function
// heap allocation) and chunks are handed out through an atomic counter (no
// per-chunk task objects). The calling thread participates as worker 0, so a
// pool of N threads gives up to N+1-way parallelism.
//
// Composability: the pool runs up to kMaxConcurrentJobs jobs at once. Each
// submission owns a fixed job slot; idle workers join whichever live job
// still has unclaimed chunks and a free participant slot, so two sessions
// (or two models sharing one engine pool) fanning out at the same time
// proceed in parallel instead of serializing behind a process-wide submit
// lock. Every job carries its own participant cap (max_participants,
// including the submitting thread), which is how `num_threads = k` is
// enforced as a hard limit rather than a hint. If every slot is busy the
// submitter simply runs its range inline — correctness never depends on a
// slot being free.
//
// Worker identity is per pool: a worker of pool A submitting to pool B
// participates in B's job as a normal submitter (B's workers help, A's
// worker drives); only a worker submitting to its *own* pool runs the range
// inline, which is what prevents self-deadlock without collapsing unrelated
// pools onto one thread.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <mutex>
#include <thread>
#include <vector>

#include "src/common/function_ref.h"

namespace mlexray {

class ThreadPool {
 public:
  // Concurrent jobs the pool can run before submitters fall back to inline
  // execution. Sized for "many sessions x one engine pool"; a fixed array
  // keeps submission allocation-free.
  static constexpr std::size_t kMaxConcurrentJobs = 16;

  // Spawns exactly num_threads worker threads. The calling thread of a
  // parallel_for always participates as well, so num_threads == 0 is valid:
  // every parallel_for then runs inline with zero scheduling overhead.
  explicit ThreadPool(std::size_t num_threads);

  // Worker count for a pool owned on behalf of a `num_threads` request:
  // at most num_threads - 1 (the submitter is always participant 0), and
  // never more than the host's spare cores (hardware_concurrency - 1).
  // num_threads is a *cap*, not a promise of width — workers beyond the
  // core count cannot add throughput, only context-switch overhead, so a
  // 1-core host gets 0 workers and fully inline execution. Model, Trainer,
  // and Engine size their owned pools through this; tests that need a
  // specific width pass it to the constructor directly.
  static std::size_t workers_for(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }
  // Most threads a single job can use (workers + the caller). A job's
  // max_participants caps below this; concurrent jobs share the same
  // workers, so a loaded pool hands each job fewer.
  std::size_t parallelism() const { return workers_.size() + 1; }

  // Runs fn over [begin, end) split into chunks of at least min_chunk
  // elements; blocks until all chunks finish. fn receives a half-open index
  // range [chunk_begin, chunk_end). Chunks are claimed dynamically, so uneven
  // per-element cost balances across threads. Allocation-free. Nested calls
  // from inside one of *this pool's own* workers run the whole range inline
  // on that worker; submitting from another pool's worker participates
  // normally. max_participants (including the calling thread) caps how many
  // threads may touch this job; 0 means "no cap" (up to parallelism()).
  void parallel_for(std::size_t begin, std::size_t end,
                    FunctionRef<void(std::size_t, std::size_t)> fn,
                    std::size_t min_chunk = 1, std::size_t max_participants = 0);

  // As parallel_for, but fn also receives the executing participant's index,
  // dense in [0, p) where p = min(max_participants or parallelism(),
  // chunk count); index 0 is the calling thread. Kernels use the index to
  // address per-worker scratch slices, which they must therefore size from
  // the same cap (see PoolRef::parallelism / KernelContext::worker_count).
  void parallel_for_workers(
      std::size_t begin, std::size_t end,
      FunctionRef<void(std::size_t, std::size_t, std::size_t)> fn,
      std::size_t min_chunk = 1, std::size_t max_participants = 0);

 private:
  using WorkerFn = FunctionRef<void(std::size_t, std::size_t, std::size_t)>;

  // One in-flight parallel_for. All fields except `next` are guarded by
  // mutex_; `next` is the lock-free chunk cursor participants hammer while
  // the job runs, kept on its own cache line so concurrent jobs don't
  // false-share claim traffic.
  struct Job {
    const WorkerFn* fn = nullptr;
    std::size_t end = 0;
    std::size_t chunk = 1;
    std::size_t max_participants = 0;  // includes the submitter
    std::size_t joined = 0;            // participant slots handed out
    int in_flight = 0;                 // workers currently running chunks
    bool live = false;                 // still accepting joiners
    bool in_use = false;               // slot claimed by a submitter
    alignas(64) std::atomic<std::size_t> next{0};
  };

  void worker_loop();
  // A live job this thread could still usefully join, or nullptr. Requires
  // mutex_ held.
  Job* find_joinable_locked();
  // Claims chunks via `next` and runs fn on each until the range is
  // exhausted. fn/end/chunk are the participant's consistent snapshot of the
  // job (workers capture theirs under mutex_; the submitter uses its own
  // arguments).
  static void run_chunks(std::atomic<std::size_t>& next, const WorkerFn& fn,
                         std::size_t end, std::size_t chunk,
                         std::size_t worker_index);

  std::vector<std::thread> workers_;
  std::vector<Job> jobs_;  // fixed kMaxConcurrentJobs slots, never resized

  std::mutex mutex_;
  std::condition_variable cv_;       // wakes workers for new jobs/shutdown
  std::condition_variable done_cv_;  // signals submitters on job completion
  bool shutting_down_ = false;
};

// A non-owning, capped view of a ThreadPool — the type kernels and plan
// contexts carry. It pairs the pool with the participant budget its owner
// (Model, Trainer, Engine) granted, so `num_threads = k` flows to every
// parallel_for as a hard max_participants cap instead of being forgotten at
// the call site. A null PoolRef runs everything inline; parallelism() is
// what per-worker scratch must be sized from (it reflects the cap, and
// worker indices handed to parallel_for_workers bodies are always below it).
class PoolRef {
 public:
  PoolRef() = default;
  // cap == 0 means "no cap" (the pool's full parallelism). Implicit from a
  // bare pool pointer so tests and single-owner call sites stay terse.
  PoolRef(ThreadPool* pool, std::size_t cap = 0)  // NOLINT: implicit
      : pool_(pool), cap_(cap) {}

  explicit operator bool() const { return pool_ != nullptr; }
  ThreadPool* get() const { return pool_; }
  std::size_t cap() const { return cap_; }

  // Threads a job submitted through this ref may use, cap applied; 1 when
  // null. The upper bound (inclusive) of worker indices + 1.
  std::size_t parallelism() const {
    if (pool_ == nullptr) return 1;
    const std::size_t p = pool_->parallelism();
    return cap_ != 0 && cap_ < p ? cap_ : p;
  }

  void parallel_for(std::size_t begin, std::size_t end,
                    FunctionRef<void(std::size_t, std::size_t)> fn,
                    std::size_t min_chunk = 1) const {
    if (pool_ != nullptr) {
      pool_->parallel_for(begin, end, fn, min_chunk, cap_);
    } else if (begin < end) {
      fn(begin, end);
    }
  }

  void parallel_for_workers(
      std::size_t begin, std::size_t end,
      FunctionRef<void(std::size_t, std::size_t, std::size_t)> fn,
      std::size_t min_chunk = 1) const {
    if (pool_ != nullptr) {
      pool_->parallel_for_workers(begin, end, fn, min_chunk, cap_);
    } else if (begin < end) {
      fn(begin, end, 0);
    }
  }

 private:
  ThreadPool* pool_ = nullptr;
  std::size_t cap_ = 0;
};

}  // namespace mlexray
