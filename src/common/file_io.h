// Little-endian binary (de)serialization helpers plus whole-file IO.
//
// Used by the checkpoint format (.ckpt), the converted flat model format
// (.efb) and the ML-EXray trace log format (.mlxtrace).
#pragma once

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "src/common/error.h"

namespace mlexray {

// Append-only byte buffer with typed little-endian writers.
class BinaryWriter {
 public:
  void write_u8(std::uint8_t v) { bytes_.push_back(v); }
  void write_u32(std::uint32_t v);
  void write_u64(std::uint64_t v);
  void write_i32(std::int32_t v) { write_u32(static_cast<std::uint32_t>(v)); }
  void write_i64(std::int64_t v) { write_u64(static_cast<std::uint64_t>(v)); }
  void write_f32(float v);
  void write_f64(double v);
  void write_string(const std::string& s);
  void write_bytes(const void* data, std::size_t size);
  void write_f32_array(const std::vector<float>& values);
  void write_i32_array(const std::vector<std::int32_t>& values);

  const std::vector<std::uint8_t>& bytes() const { return bytes_; }
  std::size_t size() const { return bytes_.size(); }

 private:
  std::vector<std::uint8_t> bytes_;
};

// Cursor-based reader over a byte buffer; bounds-checked.
class BinaryReader {
 public:
  explicit BinaryReader(std::vector<std::uint8_t> bytes)
      : bytes_(std::move(bytes)) {}

  std::uint8_t read_u8();
  std::uint32_t read_u32();
  std::uint64_t read_u64();
  std::int32_t read_i32() { return static_cast<std::int32_t>(read_u32()); }
  std::int64_t read_i64() { return static_cast<std::int64_t>(read_u64()); }
  float read_f32();
  double read_f64();
  std::string read_string();
  void read_bytes(void* out, std::size_t size);
  std::vector<float> read_f32_array();
  std::vector<std::int32_t> read_i32_array();

  bool at_end() const { return cursor_ == bytes_.size(); }
  std::size_t remaining() const { return bytes_.size() - cursor_; }

 private:
  void require(std::size_t n) const {
    MLX_CHECK_LE(cursor_ + n, bytes_.size()) << "binary read out of bounds";
  }
  std::vector<std::uint8_t> bytes_;
  std::size_t cursor_ = 0;
};

// Whole-file helpers. Throw MlxError on IO failure.
void write_file(const std::filesystem::path& path,
                const std::vector<std::uint8_t>& bytes);
std::vector<std::uint8_t> read_file(const std::filesystem::path& path);
void write_text_file(const std::filesystem::path& path,
                     const std::string& text);
std::string read_text_file(const std::filesystem::path& path);

// Root directory for cached artifacts (trained checkpoints, traces). Honors
// the MLEXRAY_CACHE_DIR environment variable; defaults to ./mlexray_cache.
std::filesystem::path cache_dir();

}  // namespace mlexray
