#include "src/common/thread_pool.h"

#include <algorithm>

namespace mlexray {

namespace {
// The pool this thread belongs to (nullptr on non-pool threads). Identity is
// per pool, not a process-wide flag: a worker of pool A submitting to pool B
// must participate in B's job normally (B's workers can help; A's worker
// always completes the range itself, so there is no circular wait), while a
// worker submitting to its own pool runs inline — its pool-mates may all be
// busy on the very job that called it.
thread_local const ThreadPool* t_pool_of_worker = nullptr;
}  // namespace

ThreadPool::ThreadPool(std::size_t num_threads) : jobs_(kMaxConcurrentJobs) {
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

std::size_t ThreadPool::workers_for(int num_threads) {
  if (num_threads <= 1) return 0;
  const std::size_t hw = std::max(1u, std::thread::hardware_concurrency());
  return std::min(static_cast<std::size_t>(num_threads) - 1, hw - 1);
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::run_chunks(std::atomic<std::size_t>& next, const WorkerFn& fn,
                            std::size_t end, std::size_t chunk,
                            std::size_t worker_index) {
  for (;;) {
    const std::size_t lo = next.fetch_add(chunk, std::memory_order_relaxed);
    if (lo >= end) return;
    fn(lo, std::min(end, lo + chunk), worker_index);
  }
}

ThreadPool::Job* ThreadPool::find_joinable_locked() {
  for (Job& job : jobs_) {
    // Joinable: accepting participants, a dense index still free under the
    // job's cap, and unclaimed chunks remain (a fully-claimed range makes
    // joining useless — the worker would spin once on `next` and leave).
    if (job.in_use && job.live && job.joined < job.max_participants &&
        job.next.load(std::memory_order_relaxed) < job.end) {
      return &job;
    }
  }
  return nullptr;
}

void ThreadPool::worker_loop() {
  t_pool_of_worker = this;
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    Job* job = find_joinable_locked();
    if (job == nullptr) {
      cv_.wait(lock, [&] {
        return shutting_down_ || find_joinable_locked() != nullptr;
      });
      if (shutting_down_) return;
      job = find_joinable_locked();
      if (job == nullptr) continue;  // lost the race to other workers
    }
    // Claim a dense participant index and commit (in_flight) while still
    // holding the lock: the submitter cannot retire the job and reuse the
    // slot once this worker has latched it, so the captured fn/end/chunk can
    // never be a stale/fresh mix.
    const std::size_t slot = job->joined++;
    ++job->in_flight;
    const WorkerFn* fn = job->fn;
    const std::size_t end = job->end;
    const std::size_t chunk = job->chunk;
    std::atomic<std::size_t>* next = &job->next;
    lock.unlock();
    run_chunks(*next, *fn, end, chunk, slot);
    lock.lock();
    --job->in_flight;
    // The submitter only waits after flipping live off under this mutex, so
    // a decrement it must see always notifies. notify_all: several
    // submitters may be parked on done_cv_ for different jobs.
    if (job->in_flight == 0 && !job->live) done_cv_.notify_all();
  }
}

void ThreadPool::parallel_for_workers(
    std::size_t begin, std::size_t end,
    FunctionRef<void(std::size_t, std::size_t, std::size_t)> fn,
    std::size_t min_chunk, std::size_t max_participants) {
  if (begin >= end) return;
  min_chunk = std::max<std::size_t>(1, min_chunk);
  const std::size_t total = end - begin;
  const std::size_t max_chunks = (total + min_chunk - 1) / min_chunk;
  std::size_t limit = parallelism();
  if (max_participants != 0) limit = std::min(limit, max_participants);
  if (t_pool_of_worker == this || max_chunks <= 1 || limit <= 1 ||
      workers_.empty()) {
    fn(begin, end, 0);
    return;
  }
  const std::size_t participants = std::min(limit, max_chunks);
  // ~4 chunks per participant: dynamic claiming then balances uneven rows
  // without the scheduling overhead of element-granular chunks.
  const std::size_t chunk =
      std::max(min_chunk, total / (participants * 4) + 1);

  Job* job = nullptr;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (Job& candidate : jobs_) {
      if (!candidate.in_use) {
        job = &candidate;
        break;
      }
    }
    if (job != nullptr) {
      job->in_use = true;
      job->live = true;
      job->fn = &fn;
      job->end = end;
      job->chunk = chunk;
      job->max_participants = participants;
      job->joined = 1;  // the submitter is participant 0
      job->in_flight = 0;
      job->next.store(begin, std::memory_order_relaxed);
    }
  }
  if (job == nullptr) {
    // Every slot is busy: the pool is saturated with other jobs anyway, so
    // run inline rather than queueing behind them.
    fn(begin, end, 0);
    return;
  }
  cv_.notify_all();
  run_chunks(job->next, fn, end, chunk, /*worker_index=*/0);
  {
    std::unique_lock<std::mutex> lock(mutex_);
    // The submitter only returns once the range is fully claimed, so late
    // joiners would find nothing; stop admitting them and wait out the ones
    // already running. Retiring the slot in the same lock hold that
    // satisfied the wait means fn may safely die with this frame.
    job->live = false;
    done_cv_.wait(lock, [&] { return job->in_flight == 0; });
    job->fn = nullptr;
    job->in_use = false;
  }
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              FunctionRef<void(std::size_t, std::size_t)> fn,
                              std::size_t min_chunk,
                              std::size_t max_participants) {
  parallel_for_workers(
      begin, end,
      [&fn](std::size_t lo, std::size_t hi, std::size_t) { fn(lo, hi); },
      min_chunk, max_participants);
}

}  // namespace mlexray
