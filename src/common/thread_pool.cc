#include "src/common/thread_pool.h"

#include <algorithm>

namespace mlexray {

namespace {
// True on threads owned by a pool; nested parallel_for calls from a worker
// run inline instead of deadlocking on the (busy) pool.
thread_local bool t_is_pool_worker = false;
}  // namespace

ThreadPool::ThreadPool(std::size_t num_threads) {
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::run_chunks(const WorkerFn& fn, std::size_t end,
                            std::size_t chunk, std::size_t worker_index) {
  for (;;) {
    const std::size_t lo = next_.fetch_add(chunk, std::memory_order_relaxed);
    if (lo >= end) return;
    fn(lo, std::min(end, lo + chunk), worker_index);
  }
}

void ThreadPool::worker_loop(std::size_t worker_index) {
  t_is_pool_worker = true;
  std::uint64_t seen_generation = 0;
  for (;;) {
    const WorkerFn* fn = nullptr;
    std::size_t end = 0;
    std::size_t chunk = 1;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock,
               [&] { return shutting_down_ || generation_ != seen_generation; });
      if (shutting_down_) return;
      seen_generation = generation_;
      // A job this worker slept through may already be complete (the
      // submitter finished it alone); latching it now would race the next
      // submission's reset of next_. job_live_ is cleared under this same
      // mutex before the submitter returns, so the check is exact.
      if (!job_live_) continue;
      // Capture the job and commit to it (in_flight_) while still holding
      // the lock: the submitter cannot observe in_flight_ == 0 and move on
      // to a new job once this worker has latched the current one, so the
      // captured fn/end/chunk can never be a stale/fresh mix.
      fn = job_fn_;
      end = job_end_;
      chunk = job_chunk_;
      in_flight_.fetch_add(1, std::memory_order_relaxed);
    }
    run_chunks(*fn, end, chunk, worker_index + 1);
    if (in_flight_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      // Possibly the last worker out: wake the submitter. Acquiring the lock
      // before notifying pairs with the submitter's predicate re-check.
      std::lock_guard<std::mutex> lock(mutex_);
      done_cv_.notify_all();
    }
  }
}

void ThreadPool::parallel_for_workers(
    std::size_t begin, std::size_t end,
    FunctionRef<void(std::size_t, std::size_t, std::size_t)> fn,
    std::size_t min_chunk) {
  if (begin >= end) return;
  min_chunk = std::max<std::size_t>(1, min_chunk);
  const std::size_t total = end - begin;
  const std::size_t max_chunks = (total + min_chunk - 1) / min_chunk;
  if (t_is_pool_worker || max_chunks <= 1 || workers_.empty()) {
    fn(begin, end, 0);
    return;
  }
  const std::size_t participants = std::min(parallelism(), max_chunks);
  // ~4 chunks per participant: dynamic claiming then balances uneven rows
  // without the scheduling overhead of element-granular chunks.
  const std::size_t chunk =
      std::max(min_chunk, total / (participants * 4) + 1);

  // One job at a time; a second submitting thread waits its turn here.
  std::lock_guard<std::mutex> submit_lock(submit_mutex_);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    job_fn_ = &fn;
    job_chunk_ = chunk;
    job_end_ = end;
    job_live_ = true;
    next_.store(begin, std::memory_order_relaxed);
    ++generation_;
  }
  cv_.notify_all();
  run_chunks(fn, end, chunk, /*worker_index=*/0);
  std::unique_lock<std::mutex> lock(mutex_);
  done_cv_.wait(lock, [&] {
    return in_flight_.load(std::memory_order_acquire) == 0;
  });
  // Retire the job in the same lock hold that satisfied the wait: a worker
  // waking later sees job_live_ == false and goes back to sleep instead of
  // latching a dead job. fn may now safely die with this frame.
  job_live_ = false;
  job_fn_ = nullptr;
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              FunctionRef<void(std::size_t, std::size_t)> fn,
                              std::size_t min_chunk) {
  parallel_for_workers(
      begin, end,
      [&fn](std::size_t lo, std::size_t hi, std::size_t) { fn(lo, hi); },
      min_chunk);
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool(
      std::max<std::size_t>(1, std::thread::hardware_concurrency()) - 1);
  return pool;
}

}  // namespace mlexray
