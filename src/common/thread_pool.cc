#include "src/common/thread_pool.h"

#include <algorithm>
#include <atomic>

namespace mlexray {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::enqueue(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    tasks_.push(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return shutting_down_ || !tasks_.empty(); });
      if (shutting_down_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

void ThreadPool::parallel_for(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t)>& fn) {
  if (begin >= end) return;
  const std::size_t total = end - begin;
  const std::size_t chunks = std::min(total, workers_.size());
  if (chunks <= 1) {
    fn(begin, end);
    return;
  }
  std::atomic<std::size_t> remaining(chunks);
  std::mutex done_mutex;
  std::condition_variable done_cv;
  const std::size_t chunk_size = (total + chunks - 1) / chunks;
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t lo = begin + c * chunk_size;
    const std::size_t hi = std::min(end, lo + chunk_size);
    if (lo >= hi) {
      remaining.fetch_sub(1);
      continue;
    }
    enqueue([&, lo, hi] {
      fn(lo, hi);
      // Decrement under the lock: otherwise the waiter can observe zero and
      // destroy done_mutex/done_cv while this worker still touches them.
      std::lock_guard<std::mutex> lock(done_mutex);
      if (remaining.fetch_sub(1) == 1) done_cv.notify_all();
    });
  }
  std::unique_lock<std::mutex> lock(done_mutex);
  done_cv.wait(lock, [&] { return remaining.load() == 0; });
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool;
  return pool;
}

}  // namespace mlexray
