// Image preprocessing: the error-prone stage the paper's §2 catalogues.
//
// All functions operate on HWC tensors. Raw "sensor" images are u8 RGB in
// [0,255]; the pipeline converts to float, resizes, optionally reorders
// channels, and normalizes to the model's expected range.
//
// run_image_pipeline() executes a pipeline that honours a model's InputSpec
// except for one injected PreprocBug — exactly how the Fig-4 experiments
// reproduce real deployment mistakes (bilinear-vs-area resize, RGB/BGR swap,
// [0,1]-vs-[-1,1] normalization, 90-degree rotation).
#pragma once

#include "src/graph/input_spec.h"
#include "src/tensor/tensor.h"

namespace mlexray {

// u8 [H,W,C] -> f32 [H,W,C] in [0,255].
Tensor image_u8_to_f32(const Tensor& image);

// Bilinear resampling (the aliasing-prone default the paper warns about).
Tensor resize_bilinear(const Tensor& f32_hwc, int out_h, int out_w);

// Area-averaging downsampler (anti-aliased; what most training pipelines use).
Tensor resize_area_average(const Tensor& f32_hwc, int out_h, int out_w);

// Swaps the R and B channels (RGB <-> BGR).
Tensor swap_red_blue(const Tensor& f32_hwc);

// Rotates 90 degrees clockwise.
Tensor rotate90_clockwise(const Tensor& f32_hwc);

// Maps [0,255] values to [lo,hi].
Tensor normalize_image(const Tensor& f32_hwc, float lo, float hi);

// [H,W,C] -> [1,H,W,C].
Tensor add_batch_dim(const Tensor& f32_hwc);

// Deployment bug taxonomy (paper §2 / Fig 4a).
enum class PreprocBug {
  kNone = 0,
  kWrongResize,         // bilinear where the model expects area-average (or vice versa)
  kWrongChannelOrder,   // BGR where the model expects RGB (or vice versa)
  kWrongNormalization,  // [0,1] where the model expects [-1,1] (or vice versa)
  kRotated90,           // disoriented capture
};

std::string preproc_bug_name(PreprocBug bug);

struct ImagePipelineConfig {
  InputSpec spec;                     // the model's (often undocumented) assumptions
  PreprocBug bug = PreprocBug::kNone; // one injected deviation
};

// Full sensor-to-tensor pipeline: u8 RGB [H,W,3] -> f32 [1,h,w,3].
Tensor run_image_pipeline(const Tensor& sensor_u8_hwc,
                          const ImagePipelineConfig& config);

}  // namespace mlexray
