// Text preprocessing: tokenization, vocabulary lookup, case folding.
//
// The paper's appendix shows NNLM producing drastically different embeddings
// for raw vs lower-cased text while task accuracy stays identical — the
// textbook example of per-layer drift that is NOT a deployment bug. The
// case_fold knob reproduces that experiment.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "src/tensor/tensor.h"

namespace mlexray {

class Vocabulary {
 public:
  static constexpr std::int32_t kPad = 0;
  static constexpr std::int32_t kUnknown = 1;

  // Builds a vocabulary from corpus tokens (most-frequent first), capped at
  // max_size entries including PAD/UNK.
  static Vocabulary build(const std::vector<std::string>& tokens,
                          std::size_t max_size);

  std::int32_t lookup(const std::string& token) const;
  std::size_t size() const { return index_.size() + 2; }

 private:
  std::map<std::string, std::int32_t> index_;
};

// Splits on any non-alphanumeric character.
std::vector<std::string> tokenize(const std::string& text);

struct TextPipelineConfig {
  int max_len = 32;
  bool case_fold = true;  // training-time assumption
};

// Text -> [1, max_len] i32 token ids (padded/truncated).
Tensor encode_text(const std::string& text, const Vocabulary& vocab,
                   const TextPipelineConfig& config);

}  // namespace mlexray
