#include "src/preprocess/audio.h"

#include <cmath>

namespace mlexray {

void fft_inplace(std::vector<std::complex<float>>& data) {
  const std::size_t n = data.size();
  MLX_CHECK(n > 0 && (n & (n - 1)) == 0) << "FFT size must be a power of two";
  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(data[i], data[j]);
  }
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double angle = -2.0 * 3.14159265358979323846 / static_cast<double>(len);
    const std::complex<float> wlen(static_cast<float>(std::cos(angle)),
                                   static_cast<float>(std::sin(angle)));
    for (std::size_t i = 0; i < n; i += len) {
      std::complex<float> w(1.0f, 0.0f);
      for (std::size_t k = 0; k < len / 2; ++k) {
        std::complex<float> u = data[i + k];
        std::complex<float> v = data[i + k + len / 2] * w;
        data[i + k] = u + v;
        data[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
}

std::vector<float> magnitude_spectrum(const std::vector<float>& frame) {
  std::vector<std::complex<float>> buf(frame.size());
  for (std::size_t i = 0; i < frame.size(); ++i) buf[i] = {frame[i], 0.0f};
  fft_inplace(buf);
  std::vector<float> mags(frame.size() / 2);
  for (std::size_t i = 0; i < mags.size(); ++i) mags[i] = std::abs(buf[i]);
  return mags;
}

Tensor spectrogram(const std::vector<float>& waveform,
                   const SpectrogramConfig& config) {
  MLX_CHECK_GT(config.frame_size, 0);
  MLX_CHECK_GT(config.hop, 0);
  const int bins = config.frame_size / 2;
  const int frames =
      waveform.size() >= static_cast<std::size_t>(config.frame_size)
          ? 1 + static_cast<int>((waveform.size() - config.frame_size) /
                                 static_cast<std::size_t>(config.hop))
          : 0;
  MLX_CHECK_GT(frames, 0) << "waveform shorter than one frame";
  Tensor out = Tensor::f32(Shape{1, frames, bins, 1});
  float* dst = out.data<float>();
  std::vector<float> frame(static_cast<std::size_t>(config.frame_size));
  for (int f = 0; f < frames; ++f) {
    const std::size_t start = static_cast<std::size_t>(f) * config.hop;
    for (int i = 0; i < config.frame_size; ++i) {
      // Hann window.
      float w = 0.5f - 0.5f * std::cos(2.0f * 3.14159265f * i /
                                       static_cast<float>(config.frame_size - 1));
      frame[static_cast<std::size_t>(i)] = waveform[start + i] * w;
    }
    std::vector<float> mags = magnitude_spectrum(frame);
    for (int b = 0; b < bins; ++b) {
      float v = mags[static_cast<std::size_t>(b)];
      if (config.scale == SpectrogramScale::kLog) {
        v = std::log1p(v);
      }
      dst[(static_cast<std::int64_t>(f) * bins + b)] = v;
    }
  }
  return out;
}

Tensor run_audio_pipeline(const std::vector<float>& waveform,
                          const AudioPipelineConfig& config) {
  SpectrogramConfig spec = config.spec;
  if (config.bug == AudioBug::kWrongScale) {
    spec.scale = spec.scale == SpectrogramScale::kLog
                     ? SpectrogramScale::kLinear
                     : SpectrogramScale::kLog;
  }
  return spectrogram(waveform, spec);
}

}  // namespace mlexray
