#include "src/preprocess/image.h"

#include <cmath>

namespace mlexray {

Tensor image_u8_to_f32(const Tensor& image) {
  MLX_CHECK(image.dtype() == DType::kU8);
  return image.to_f32();
}

Tensor resize_bilinear(const Tensor& f32_hwc, int out_h, int out_w) {
  const Shape& is = f32_hwc.shape();
  MLX_CHECK_EQ(is.rank(), 3);
  const std::int64_t ih = is.dim(0), iw = is.dim(1), ch = is.dim(2);
  Tensor out = Tensor::f32(Shape{out_h, out_w, ch});
  const float* src = f32_hwc.data<float>();
  float* dst = out.data<float>();
  // Half-pixel centers (matches modern TF/OpenCV behaviour).
  const float sy = static_cast<float>(ih) / static_cast<float>(out_h);
  const float sx = static_cast<float>(iw) / static_cast<float>(out_w);
  for (int oy = 0; oy < out_h; ++oy) {
    float fy = (static_cast<float>(oy) + 0.5f) * sy - 0.5f;
    std::int64_t y0 = static_cast<std::int64_t>(std::floor(fy));
    float wy = fy - static_cast<float>(y0);
    std::int64_t y1 = std::min(y0 + 1, ih - 1);
    y0 = std::max<std::int64_t>(y0, 0);
    for (int ox = 0; ox < out_w; ++ox) {
      float fx = (static_cast<float>(ox) + 0.5f) * sx - 0.5f;
      std::int64_t x0 = static_cast<std::int64_t>(std::floor(fx));
      float wx = fx - static_cast<float>(x0);
      std::int64_t x1 = std::min(x0 + 1, iw - 1);
      x0 = std::max<std::int64_t>(x0, 0);
      for (std::int64_t c = 0; c < ch; ++c) {
        float v00 = src[(y0 * iw + x0) * ch + c];
        float v01 = src[(y0 * iw + x1) * ch + c];
        float v10 = src[(y1 * iw + x0) * ch + c];
        float v11 = src[(y1 * iw + x1) * ch + c];
        float top = v00 + (v01 - v00) * wx;
        float bot = v10 + (v11 - v10) * wx;
        dst[(static_cast<std::int64_t>(oy) * out_w + ox) * ch + c] =
            top + (bot - top) * wy;
      }
    }
  }
  return out;
}

Tensor resize_area_average(const Tensor& f32_hwc, int out_h, int out_w) {
  const Shape& is = f32_hwc.shape();
  MLX_CHECK_EQ(is.rank(), 3);
  const std::int64_t ih = is.dim(0), iw = is.dim(1), ch = is.dim(2);
  Tensor out = Tensor::f32(Shape{out_h, out_w, ch});
  const float* src = f32_hwc.data<float>();
  float* dst = out.data<float>();
  const double sy = static_cast<double>(ih) / out_h;
  const double sx = static_cast<double>(iw) / out_w;
  for (int oy = 0; oy < out_h; ++oy) {
    const double y_lo = oy * sy;
    const double y_hi = (oy + 1) * sy;
    for (int ox = 0; ox < out_w; ++ox) {
      const double x_lo = ox * sx;
      const double x_hi = (ox + 1) * sx;
      for (std::int64_t c = 0; c < ch; ++c) {
        double sum = 0.0;
        double area = 0.0;
        for (std::int64_t y = static_cast<std::int64_t>(std::floor(y_lo));
             y < static_cast<std::int64_t>(std::ceil(y_hi)) && y < ih; ++y) {
          double hy = std::min<double>(y + 1, y_hi) - std::max<double>(y, y_lo);
          if (hy <= 0) continue;
          for (std::int64_t x = static_cast<std::int64_t>(std::floor(x_lo));
               x < static_cast<std::int64_t>(std::ceil(x_hi)) && x < iw; ++x) {
            double wx = std::min<double>(x + 1, x_hi) - std::max<double>(x, x_lo);
            if (wx <= 0) continue;
            sum += src[(y * iw + x) * ch + c] * hy * wx;
            area += hy * wx;
          }
        }
        dst[(static_cast<std::int64_t>(oy) * out_w + ox) * ch + c] =
            area > 0 ? static_cast<float>(sum / area) : 0.0f;
      }
    }
  }
  return out;
}

Tensor swap_red_blue(const Tensor& f32_hwc) {
  const Shape& is = f32_hwc.shape();
  MLX_CHECK_EQ(is.rank(), 3);
  MLX_CHECK_GE(is.dim(2), 3);
  Tensor out = f32_hwc;
  float* p = out.data<float>();
  const std::int64_t pixels = is.dim(0) * is.dim(1);
  const std::int64_t ch = is.dim(2);
  for (std::int64_t i = 0; i < pixels; ++i) {
    std::swap(p[i * ch + 0], p[i * ch + 2]);
  }
  return out;
}

Tensor rotate90_clockwise(const Tensor& f32_hwc) {
  const Shape& is = f32_hwc.shape();
  MLX_CHECK_EQ(is.rank(), 3);
  const std::int64_t h = is.dim(0), w = is.dim(1), ch = is.dim(2);
  Tensor out = Tensor::f32(Shape{w, h, ch});
  const float* src = f32_hwc.data<float>();
  float* dst = out.data<float>();
  for (std::int64_t y = 0; y < h; ++y) {
    for (std::int64_t x = 0; x < w; ++x) {
      // (y, x) -> (x, h-1-y)
      for (std::int64_t c = 0; c < ch; ++c) {
        dst[(x * h + (h - 1 - y)) * ch + c] = src[(y * w + x) * ch + c];
      }
    }
  }
  return out;
}

Tensor normalize_image(const Tensor& f32_hwc, float lo, float hi) {
  Tensor out = f32_hwc;
  float* p = out.data<float>();
  const float scale = (hi - lo) / 255.0f;
  for (std::int64_t i = 0; i < out.num_elements(); ++i) {
    p[i] = p[i] * scale + lo;
  }
  return out;
}

Tensor add_batch_dim(const Tensor& f32_hwc) {
  const Shape& is = f32_hwc.shape();
  MLX_CHECK_EQ(is.rank(), 3);
  Tensor out = Tensor::f32(Shape{1, is.dim(0), is.dim(1), is.dim(2)});
  std::memcpy(out.raw_data(), f32_hwc.raw_data(), f32_hwc.byte_size());
  return out;
}

std::string preproc_bug_name(PreprocBug bug) {
  switch (bug) {
    case PreprocBug::kNone: return "none";
    case PreprocBug::kWrongResize: return "resize";
    case PreprocBug::kWrongChannelOrder: return "channel";
    case PreprocBug::kWrongNormalization: return "normalization";
    case PreprocBug::kRotated90: return "rotation";
  }
  MLX_FAIL() << "unknown bug";
}

Tensor run_image_pipeline(const Tensor& sensor_u8_hwc,
                          const ImagePipelineConfig& config) {
  const InputSpec& spec = config.spec;
  Tensor img = image_u8_to_f32(sensor_u8_hwc);

  if (config.bug == PreprocBug::kRotated90) {
    img = rotate90_clockwise(img);
  }

  ResizeMethod method = spec.resize;
  if (config.bug == PreprocBug::kWrongResize) {
    method = method == ResizeMethod::kAreaAverage ? ResizeMethod::kBilinear
                                                  : ResizeMethod::kAreaAverage;
  }
  img = method == ResizeMethod::kAreaAverage
            ? resize_area_average(img, spec.height, spec.width)
            : resize_bilinear(img, spec.height, spec.width);

  // Sensor data is RGB; convert when the model expects BGR. The channel bug
  // is delivering the *other* order.
  bool want_bgr = spec.channel_order == ChannelOrder::kBGR;
  if (config.bug == PreprocBug::kWrongChannelOrder) want_bgr = !want_bgr;
  if (want_bgr) img = swap_red_blue(img);

  float lo = spec.range_lo;
  float hi = spec.range_hi;
  if (config.bug == PreprocBug::kWrongNormalization) {
    // The classic mix-up: [0,1] delivered where [-1,1] is expected (and
    // vice versa) — recognition "somewhat works" on a washed-out image.
    if (lo < 0.0f) {
      lo = 0.0f;  // expected [-1,1], deliver [0,1]
    } else {
      lo = -1.0f;
      hi = 1.0f;  // expected [0,1], deliver [-1,1]
    }
  }
  img = normalize_image(img, lo, hi);
  return add_batch_dim(img);
}

}  // namespace mlexray
