// Audio preprocessing: FFT + spectrogram feature generation.
//
// The paper notes audio models move most feature work (FFT, log compression)
// into preprocessing outside the model graph, where the app team cannot see
// the training-time choices. The Fig-4c bug is a mismatching spectrogram
// normalization: the model was trained on log-compressed spectrograms but
// the app ships linear magnitudes (or vice versa).
#pragma once

#include <complex>
#include <vector>

#include "src/tensor/tensor.h"

namespace mlexray {

// In-place radix-2 Cooley-Tukey FFT; size must be a power of two.
void fft_inplace(std::vector<std::complex<float>>& data);

// Magnitude spectrum of a real frame (first n/2 bins).
std::vector<float> magnitude_spectrum(const std::vector<float>& frame);

enum class SpectrogramScale { kLog = 0, kLinear = 1 };

struct SpectrogramConfig {
  int frame_size = 128;  // power of two
  int hop = 64;
  SpectrogramScale scale = SpectrogramScale::kLog;
};

// Hann-windowed STFT magnitude spectrogram: [1, frames, bins, 1].
Tensor spectrogram(const std::vector<float>& waveform,
                   const SpectrogramConfig& config);

enum class AudioBug {
  kNone = 0,
  kWrongScale,  // linear magnitudes where the model expects log (or vice versa)
};

struct AudioPipelineConfig {
  SpectrogramConfig spec;  // training-time assumptions
  AudioBug bug = AudioBug::kNone;
};

Tensor run_audio_pipeline(const std::vector<float>& waveform,
                          const AudioPipelineConfig& config);

}  // namespace mlexray
