#include "src/preprocess/text.h"

#include <algorithm>
#include <cctype>

#include "src/common/string_util.h"

namespace mlexray {

Vocabulary Vocabulary::build(const std::vector<std::string>& tokens,
                             std::size_t max_size) {
  MLX_CHECK_GT(max_size, 2u);
  std::map<std::string, std::size_t> counts;
  for (const std::string& t : tokens) ++counts[t];
  std::vector<std::pair<std::string, std::size_t>> ranked(counts.begin(),
                                                          counts.end());
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  Vocabulary vocab;
  std::int32_t next_id = 2;  // 0 = PAD, 1 = UNK
  for (const auto& [token, count] : ranked) {
    if (vocab.index_.size() + 2 >= max_size) break;
    vocab.index_[token] = next_id++;
  }
  return vocab;
}

std::int32_t Vocabulary::lookup(const std::string& token) const {
  auto it = index_.find(token);
  return it == index_.end() ? kUnknown : it->second;
}

std::vector<std::string> tokenize(const std::string& text) {
  std::vector<std::string> tokens;
  std::string current;
  for (char c : text) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      current.push_back(c);
    } else if (!current.empty()) {
      tokens.push_back(current);
      current.clear();
    }
  }
  if (!current.empty()) tokens.push_back(current);
  return tokens;
}

Tensor encode_text(const std::string& text, const Vocabulary& vocab,
                   const TextPipelineConfig& config) {
  std::string processed = config.case_fold ? to_lower(text) : text;
  std::vector<std::string> tokens = tokenize(processed);
  Tensor out = Tensor::i32(Shape{1, config.max_len});
  std::int32_t* p = out.data<std::int32_t>();
  for (int i = 0; i < config.max_len; ++i) {
    p[i] = i < static_cast<int>(tokens.size())
               ? vocab.lookup(tokens[static_cast<std::size_t>(i)])
               : Vocabulary::kPad;
  }
  return out;
}

}  // namespace mlexray
