#include "src/kernels/dwconv.h"

#include <algorithm>
#include <atomic>
#include <cstring>

#if defined(__AVX2__)
#include <immintrin.h>
#endif

#include "src/kernels/activation.h"
#include "src/kernels/fixed_point.h"

namespace mlexray {
namespace {

std::atomic<std::uint64_t> g_dw_pack_events{0};
std::atomic<int> g_tier_override{0};  // DwConvTier

// Stencil windows this large get the inline-bounds fallback instead of the
// per-pixel tap-pointer table (nothing in the model zoo comes close).
constexpr std::int64_t kMaxTaps = 64;

enum class Tier { kAvx2, kGeneric, kScalar };

Tier best_tier() {
#if defined(__AVX2__)
  return Tier::kAvx2;
#elif defined(__GNUC__) || defined(__clang__)
  return Tier::kGeneric;
#else
  return Tier::kScalar;
#endif
}

Tier resolve_tier() {
  switch (g_tier_override.load(std::memory_order_relaxed)) {
    case static_cast<int>(DwConvTier::kScalar):
      return Tier::kScalar;
    case static_cast<int>(DwConvTier::kGenericVector):
#if defined(__GNUC__) || defined(__clang__)
      return Tier::kGeneric;
#else
      return Tier::kScalar;
#endif
    default:
      return best_tier();
  }
}

// Per-pixel table of tap source pointers (channel 0 of the input pixel each
// filter tap reads); nullptr marks an out-of-bounds tap.
template <typename T>
inline void build_tap_src(const DwConvShape& s, const T* x, std::int64_t n,
                          std::int64_t oy, std::int64_t ox, const T** src) {
  std::int64_t t = 0;
  for (int fy = 0; fy < s.kh; ++fy) {
    const std::int64_t iy = oy * s.stride_h - s.pad_h + fy;
    const bool row_ok = iy >= 0 && iy < s.in_h;
    const T* row = row_ok ? x + (n * s.in_h + iy) * s.in_w * s.in_ch : nullptr;
    for (int fx = 0; fx < s.kw; ++fx) {
      const std::int64_t ix = ox * s.stride_w - s.pad_w + fx;
      src[t++] = (row_ok && ix >= 0 && ix < s.in_w) ? row + ix * s.in_ch
                                                    : nullptr;
    }
  }
}

// --- int8 epilogue ----------------------------------------------------------

inline void requant_store_i8(const PackedDwI8& p, std::int64_t c,
                             std::int32_t acc, std::int8_t* yp) {
  const auto ch = static_cast<std::size_t>(c);
  acc += p.acc_init[ch];
  const std::int32_t scaled =
      multiply_by_quantized_multiplier(acc, p.multipliers[ch], p.shifts[ch]);
  const std::int32_t q =
      std::clamp(scaled + p.out_zp, p.act_min, p.act_max);
  yp[c] = static_cast<std::int8_t>(q);
}

// Raw (no zero-point subtraction) dot product for one output channel from a
// tap table; out-of-bounds taps contribute in_zp * w, matching the full-tap
// weight sum folded into acc_init.
inline std::int32_t chan_acc_i8(const PackedDwI8& p, std::int64_t taps,
                                std::int64_t out_ch,
                                const std::int8_t* const* tap,
                                std::int64_t ic, std::int64_t oc) {
  std::int32_t acc = 0;
  for (std::int64_t t = 0; t < taps; ++t) {
    const std::int32_t xq = tap[t] != nullptr ? tap[t][ic] : p.in_zp;
    acc += xq * p.weights[t * out_ch + oc];
  }
  return acc;
}

// Scalar tier / depth-multiplier path / vector tails.
inline void pixel_i8_scalar(const DwConvShape& s, const PackedDwI8& p,
                            const std::int8_t* const* tap, std::int8_t* yp) {
  const std::int64_t taps = static_cast<std::int64_t>(s.kh) * s.kw;
  for (std::int64_t oc = 0; oc < s.out_ch; ++oc) {
    requant_store_i8(
        p, oc, chan_acc_i8(p, taps, s.out_ch, tap, oc / s.depth_mult, oc), yp);
  }
}

#if defined(__GNUC__) || defined(__clang__)

// Generic SIMD via GCC vector extensions: 16 channels per block, int8
// activations widened to int16, pre-widened int16 weights, exact int16
// products (|int8 * int8| <= 2^14) widened into two 8-lane int32
// accumulators. Integer math is exact, so this is bit-identical to the
// scalar tier in any accumulation order.
using v16s8_u = std::int8_t __attribute__((vector_size(16), aligned(1)));
using v16s16 = std::int16_t __attribute__((vector_size(32)));
using v16s16_u = std::int16_t __attribute__((vector_size(32), aligned(2)));
using v8s16 = std::int16_t __attribute__((vector_size(16)));
using v8s32 = std::int32_t __attribute__((vector_size(32)));

inline v16s16 dw_widen_i8x16(const std::int8_t* p) {
  v16s8_u v;
  __builtin_memcpy(&v, p, sizeof(v));
  return __builtin_convertvector(v, v16s16);
}

// Vectorized requant for 8 consecutive channels, bit-identical to
// requant_store_i8 per lane (the conformance grid compares the vector tiers
// against the fully scalar tier byte for byte). Shared by the generic and
// AVX2 int8 pixels, whose epilogue otherwise rivals the stencil loop in
// cost for small windows.
inline void requant_store_i8_v8(const PackedDwI8& p, std::int64_t c,
                                const std::int32_t* lanes, std::int8_t* yp) {
  v8s32_fx acc, init, mu, sh;
  __builtin_memcpy(&acc, lanes, sizeof(acc));
  __builtin_memcpy(&init, p.acc_init + c, sizeof(init));
  __builtin_memcpy(&mu, p.multipliers + c, sizeof(mu));
  __builtin_memcpy(&sh, p.shifts + c, sizeof(sh));
  requant_clamp_store_i8_v8(acc + init, mu, -sh, p.out_zp, p.act_min,
                            p.act_max, yp + c);
}

inline void pixel_i8_generic(const DwConvShape& s, const PackedDwI8& p,
                             const std::int8_t* const* tap, std::int8_t* yp) {
  const std::int64_t taps = static_cast<std::int64_t>(s.kh) * s.kw;
  const std::int64_t ch = s.out_ch;
  const v16s16 zp_v = (v16s16){} + static_cast<std::int16_t>(p.in_zp);
  std::int64_t c = 0;
  for (; c + kDwLanesI8 <= ch; c += kDwLanesI8) {
    v8s32 acc_lo{};
    v8s32 acc_hi{};
    for (std::int64_t t = 0; t < taps; ++t) {
      const v16s16 xv =
          tap[t] != nullptr ? dw_widen_i8x16(tap[t] + c) : zp_v;
      v16s16_u wv;
      __builtin_memcpy(&wv, p.weights + t * ch + c, sizeof(wv));
      const v16s16 prod = xv * wv;  // exact in int16
      const v8s16 lo =
          __builtin_shufflevector(prod, prod, 0, 1, 2, 3, 4, 5, 6, 7);
      const v8s16 hi =
          __builtin_shufflevector(prod, prod, 8, 9, 10, 11, 12, 13, 14, 15);
      acc_lo += __builtin_convertvector(lo, v8s32);
      acc_hi += __builtin_convertvector(hi, v8s32);
    }
    std::int32_t lanes[kDwLanesI8];
    __builtin_memcpy(lanes, &acc_lo, sizeof(acc_lo));
    __builtin_memcpy(lanes + 8, &acc_hi, sizeof(acc_hi));
    requant_store_i8_v8(p, c, lanes, yp);
    requant_store_i8_v8(p, c + 8, lanes + 8, yp);
  }
  for (; c < ch; ++c) {
    requant_store_i8(p, c, chan_acc_i8(p, taps, ch, tap, c, c), yp);
  }
}

#endif  // __GNUC__ || __clang__

#if defined(__AVX2__)

// AVX2 tier: same shape as the generic tier, but the widening loads/product
// splits are spelled with intrinsics (vpmovsxbw + vpmullw + vpmovsxwd) so
// the block never leaves the ymm registers regardless of the vectorizer's
// mood. The channel order stays linear (no in-lane unpack scramble), so the
// scalar requant epilogue indexes channels directly.
inline void pixel_i8_avx2(const DwConvShape& s, const PackedDwI8& p,
                          const std::int8_t* const* tap, std::int8_t* yp) {
  const std::int64_t taps = static_cast<std::int64_t>(s.kh) * s.kw;
  const std::int64_t ch = s.out_ch;
  const __m256i zp_v = _mm256_set1_epi16(static_cast<short>(p.in_zp));
  std::int64_t c = 0;
  for (; c + kDwLanesI8 <= ch; c += kDwLanesI8) {
    __m256i acc_lo = _mm256_setzero_si256();
    __m256i acc_hi = _mm256_setzero_si256();
    for (std::int64_t t = 0; t < taps; ++t) {
      const __m256i xv =
          tap[t] != nullptr
              ? _mm256_cvtepi8_epi16(_mm_loadu_si128(
                    reinterpret_cast<const __m128i*>(tap[t] + c)))
              : zp_v;
      const __m256i wv = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(p.weights + t * ch + c));
      const __m256i prod = _mm256_mullo_epi16(xv, wv);  // exact in int16
      acc_lo = _mm256_add_epi32(
          acc_lo, _mm256_cvtepi16_epi32(_mm256_castsi256_si128(prod)));
      acc_hi = _mm256_add_epi32(
          acc_hi, _mm256_cvtepi16_epi32(_mm256_extracti128_si256(prod, 1)));
    }
    alignas(32) std::int32_t lanes[kDwLanesI8];
    _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc_lo);
    _mm256_store_si256(reinterpret_cast<__m256i*>(lanes + 8), acc_hi);
    requant_store_i8_v8(p, c, lanes, yp);
    requant_store_i8_v8(p, c + 8, lanes + 8, yp);
  }
  for (; c < ch; ++c) {
    requant_store_i8(p, c, chan_acc_i8(p, taps, ch, tap, c, c), yp);
  }
}

#endif  // __AVX2__

// Inline-bounds fallback for windows too large for the tap table.
inline void pixel_i8_huge(const DwConvShape& s, const PackedDwI8& p,
                          const std::int8_t* x, std::int64_t n,
                          std::int64_t oy, std::int64_t ox, std::int8_t* yp) {
  for (std::int64_t oc = 0; oc < s.out_ch; ++oc) {
    const std::int64_t ic = oc / s.depth_mult;
    std::int32_t acc = 0;
    for (int fy = 0; fy < s.kh; ++fy) {
      const std::int64_t iy = oy * s.stride_h - s.pad_h + fy;
      for (int fx = 0; fx < s.kw; ++fx) {
        const std::int64_t ix = ox * s.stride_w - s.pad_w + fx;
        const bool ok = iy >= 0 && iy < s.in_h && ix >= 0 && ix < s.in_w;
        const std::int32_t xq =
            ok ? x[((n * s.in_h + iy) * s.in_w + ix) * s.in_ch + ic] : p.in_zp;
        acc += xq * p.weights[(static_cast<std::int64_t>(fy) * s.kw + fx) *
                                  s.out_ch +
                              oc];
      }
    }
    requant_store_i8(p, oc, acc, yp);
  }
}

// --- f32 pixels -------------------------------------------------------------
//
// Accumulation per channel is bias-first, taps in (fy, fx) order with
// out-of-bounds taps skipped — exactly the reference kernel's order, scalar
// and vector lanes alike, so all tiers produce bit-identical floats (only
// the lane width differs, never the per-channel operation sequence).

inline void pixel_f32_scalar(const DwConvShape& s, const PackedDwF32& p,
                             Activation act, const float* const* tap,
                             float* yp) {
  const std::int64_t taps = static_cast<std::int64_t>(s.kh) * s.kw;
  for (std::int64_t oc = 0; oc < s.out_ch; ++oc) {
    const std::int64_t ic = oc / s.depth_mult;
    float acc = p.bias[oc];
    for (std::int64_t t = 0; t < taps; ++t) {
      if (tap[t] != nullptr) acc += tap[t][ic] * p.weights[t * s.out_ch + oc];
    }
    yp[oc] = apply_activation_f32(acc, act);
  }
}

#if defined(__GNUC__) || defined(__clang__)

using v8f_u = float __attribute__((vector_size(32), aligned(4)));

inline void pixel_f32_vector(const DwConvShape& s, const PackedDwF32& p,
                             Activation act, const float* const* tap,
                             float* yp) {
  const std::int64_t taps = static_cast<std::int64_t>(s.kh) * s.kw;
  const std::int64_t ch = s.out_ch;
  std::int64_t c = 0;
  for (; c + kDwLanesF32 <= ch; c += kDwLanesF32) {
    v8f_u acc;
    __builtin_memcpy(&acc, p.bias + c, sizeof(acc));
    for (std::int64_t t = 0; t < taps; ++t) {
      if (tap[t] == nullptr) continue;
      v8f_u xv, wv;
      __builtin_memcpy(&xv, tap[t] + c, sizeof(xv));
      __builtin_memcpy(&wv, p.weights + t * ch + c, sizeof(wv));
      acc += xv * wv;
    }
    float lanes[kDwLanesF32];
    __builtin_memcpy(lanes, &acc, sizeof(acc));
    for (std::int64_t j = 0; j < kDwLanesF32; ++j) {
      yp[c + j] = apply_activation_f32(lanes[j], act);
    }
  }
  for (; c < ch; ++c) {
    float acc = p.bias[c];
    for (std::int64_t t = 0; t < taps; ++t) {
      if (tap[t] != nullptr) acc += tap[t][c] * p.weights[t * ch + c];
    }
    yp[c] = apply_activation_f32(acc, act);
  }
}

#endif  // __GNUC__ || __clang__

inline void pixel_f32_huge(const DwConvShape& s, const PackedDwF32& p,
                           Activation act, const float* x, std::int64_t n,
                           std::int64_t oy, std::int64_t ox, float* yp) {
  for (std::int64_t oc = 0; oc < s.out_ch; ++oc) {
    const std::int64_t ic = oc / s.depth_mult;
    float acc = p.bias[oc];
    for (int fy = 0; fy < s.kh; ++fy) {
      const std::int64_t iy = oy * s.stride_h - s.pad_h + fy;
      if (iy < 0 || iy >= s.in_h) continue;
      for (int fx = 0; fx < s.kw; ++fx) {
        const std::int64_t ix = ox * s.stride_w - s.pad_w + fx;
        if (ix < 0 || ix >= s.in_w) continue;
        acc += x[((n * s.in_h + iy) * s.in_w + ix) * s.in_ch + ic] *
               p.weights[(static_cast<std::int64_t>(fy) * s.kw + fx) *
                             s.out_ch +
                         oc];
      }
    }
    yp[oc] = apply_activation_f32(acc, act);
  }
}

}  // namespace

void pack_dw_weights_i8(std::int64_t taps, std::int64_t ch,
                        const std::int8_t* w, std::int16_t* out,
                        std::int32_t* w_sums) {
  for (std::int64_t c = 0; c < ch; ++c) w_sums[c] = 0;
  for (std::int64_t t = 0; t < taps; ++t) {
    for (std::int64_t c = 0; c < ch; ++c) {
      const std::int8_t v = w[t * ch + c];
      out[t * ch + c] = v;
      w_sums[c] += v;
    }
  }
  g_dw_pack_events.fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t dwconv_pack_events() {
  return g_dw_pack_events.load(std::memory_order_relaxed);
}

void set_dwconv_tier_for_testing(DwConvTier tier) {
  g_tier_override.store(static_cast<int>(tier), std::memory_order_relaxed);
}

const char* dwconv_best_tier_name() {
  switch (best_tier()) {
    case Tier::kAvx2: return "avx2";
    case Tier::kGeneric: return "generic-vector";
    case Tier::kScalar: return "scalar";
  }
  return "scalar";
}

void dwconv2d_i8(const DwConvShape& s, const std::int8_t* x,
                 const PackedDwI8& p, std::int8_t* y, PoolRef pool) {
  const Tier tier = resolve_tier();
  const std::int64_t taps = static_cast<std::int64_t>(s.kh) * s.kw;
  const std::int64_t rows = s.batch * s.out_h;
  auto body = [&](std::size_t lo, std::size_t hi) {
    const std::int8_t* tap_src[kMaxTaps];
    for (std::size_t row = lo; row < hi; ++row) {
      const std::int64_t n = static_cast<std::int64_t>(row) / s.out_h;
      const std::int64_t oy = static_cast<std::int64_t>(row) % s.out_h;
      for (std::int64_t ox = 0; ox < s.out_w; ++ox) {
        std::int8_t* yp =
            y + ((n * s.out_h + oy) * s.out_w + ox) * s.out_ch;
        if (taps > kMaxTaps) {
          pixel_i8_huge(s, p, x, n, oy, ox, yp);
          continue;
        }
        build_tap_src(s, x, n, oy, ox, tap_src);
        if (s.depth_mult != 1 || tier == Tier::kScalar) {
          pixel_i8_scalar(s, p, tap_src, yp);
          continue;
        }
#if defined(__AVX2__)
        if (tier == Tier::kAvx2) {
          pixel_i8_avx2(s, p, tap_src, yp);
        } else {
          pixel_i8_generic(s, p, tap_src, yp);
        }
#elif defined(__GNUC__) || defined(__clang__)
        pixel_i8_generic(s, p, tap_src, yp);
#else
        pixel_i8_scalar(s, p, tap_src, yp);
#endif
      }
    }
  };
  if (pool && rows >= 8) {
    pool.parallel_for(0, static_cast<std::size_t>(rows), body,
                       /*min_chunk=*/2);
  } else {
    body(0, static_cast<std::size_t>(rows));
  }
}

void dwconv2d_f32(const DwConvShape& s, const float* x, const PackedDwF32& p,
                  Activation act, float* y, PoolRef pool) {
  const Tier tier = resolve_tier();
  const std::int64_t taps = static_cast<std::int64_t>(s.kh) * s.kw;
  const std::int64_t rows = s.batch * s.out_h;
  auto body = [&](std::size_t lo, std::size_t hi) {
    const float* tap_src[kMaxTaps];
    for (std::size_t row = lo; row < hi; ++row) {
      const std::int64_t n = static_cast<std::int64_t>(row) / s.out_h;
      const std::int64_t oy = static_cast<std::int64_t>(row) % s.out_h;
      for (std::int64_t ox = 0; ox < s.out_w; ++ox) {
        float* yp = y + ((n * s.out_h + oy) * s.out_w + ox) * s.out_ch;
        if (taps > kMaxTaps) {
          pixel_f32_huge(s, p, act, x, n, oy, ox, yp);
          continue;
        }
        build_tap_src(s, x, n, oy, ox, tap_src);
        if (s.depth_mult != 1 || tier == Tier::kScalar) {
          pixel_f32_scalar(s, p, act, tap_src, yp);
          continue;
        }
#if defined(__GNUC__) || defined(__clang__)
        pixel_f32_vector(s, p, act, tap_src, yp);
#else
        pixel_f32_scalar(s, p, act, tap_src, yp);
#endif
      }
    }
  };
  if (pool && rows >= 8) {
    pool.parallel_for(0, static_cast<std::size_t>(rows), body,
                       /*min_chunk=*/2);
  } else {
    body(0, static_cast<std::size_t>(rows));
  }
}

}  // namespace mlexray
