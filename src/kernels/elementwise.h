// Vectorized int8 elementwise / reduction kernel family with plan-time
// Q31 requant prep.
//
// mobilenet_v3's squeeze-excite block (Add residuals, the [N,1,1,C]-broadcast
// Mul gate, global Mean, standalone Logistic/HardSwish) used to fall through
// to the double-math reference kernels, which is why v3 int8 trailed f32 end
// to end even after the conv/dwconv/FC tier-up. This family finishes the
// integer-only story on the dwconv pattern:
//
//  - Plan-time prepare hooks fold the per-tensor scales/zero-points into Q31
//    multipliers + shifts (and, for the LUT activations, the full 256-entry
//    int8 table) stored in PreparedStorage. Steady-state invoke does integer
//    math only: no doubles, no lround, no per-call table builds.
//  - Add/Sub use the standard left-shift-20 decomposition (each operand is
//    rescaled to a common 2^20-scaled grid with its own Q31 multiplier, the
//    sum requantized with a third); Mul requantizes the raw zero-point-free
//    product; Mean requantizes the exact integer sum with a multiplier that
//    folds the 1/(H*W) average — one fixed-point rounding, never a
//    round-the-mean-then-rescale double trip.
//  - Every tier funnels through the shared 8-lane
//    multiply_by_quantized_multiplier_v8 epilogue (fixed_point.h), so int8
//    results are bit-identical across AVX2 / generic-vector / scalar — the
//    forced-tier conformance grid (tests/test_elementwise_grid.cc) asserts
//    that instead of assuming it. Output multipliers >= 1 (possible for Mul
//    under adversarial scale choices) take a scalar positive-shift path on
//    every tier, keeping the cross-tier contract.
//
// `elementwise_pack_events()` counts every Q31 table / LUT build (prepare-time
// and per-call fallback alike), mirroring `dwconv_pack_events()`: the grid
// snapshots it after plan construction and asserts steady-state invoke never
// builds again.
#pragma once

#include <cstdint>

#include "src/kernels/shared_kernels.h"

namespace mlexray {

// Test hook: force the compute tier for subsequent invocations so the
// conformance grid can assert cross-tier bit-exactness. kAuto restores the
// best compiled-in tier; tiers below the best available degrade gracefully.
enum class ElementwiseTier { kAuto = 0, kGenericVector = 1, kScalar = 2 };
void set_elementwise_tier_for_testing(ElementwiseTier tier);

// Name of the tier kAuto resolves to on this build ("avx2",
// "generic-vector", or "scalar"); surfaced by benches.
const char* elementwise_best_tier_name();

// Monotonic count of elementwise Q31-table / activation-LUT builds
// (prepare-time and per-call fallback). Plan-prepared kernels make this
// stand still across invokes; the conformance grid asserts it.
std::uint64_t elementwise_pack_events();

// Registers the optimized int8 kernels (Add/Sub/Mul/Mean + the LUT
// activations Logistic/HardSwish/Tanh) with their prepare hooks.
void register_elementwise_i8_kernels(KernelMap& map);

}  // namespace mlexray
