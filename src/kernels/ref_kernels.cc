#include "src/kernels/ref_kernels.h"

#include <cmath>
#include <cstring>

#include "src/kernels/activation.h"
#include "src/kernels/conv_utils.h"

namespace mlexray {
namespace {

// ---------------------------------------------------------------------------
// Float reference kernels: naive loops, no blocking, no threading.
// ---------------------------------------------------------------------------

void conv2d_f32(const KernelContext& ctx) {
  const Tensor& in = ctx.input(0);
  const Node& node = *ctx.node;
  const Tensor& filter = node.weights[0];  // OHWI
  const float* bias = node.weights[1].data<float>();
  const Shape& is = in.shape();
  const Shape& fs = filter.shape();
  const Shape& os = ctx.output->shape();
  const int kh = static_cast<int>(fs.dim(1));
  const int kw = static_cast<int>(fs.dim(2));
  const std::int64_t in_ch = is.dim(3);
  const std::int64_t pad_h = node.attrs.padding == Padding::kSame
                                 ? same_pad_before(is.dim(1), kh, node.attrs.stride_h, os.dim(1))
                                 : 0;
  const std::int64_t pad_w = node.attrs.padding == Padding::kSame
                                 ? same_pad_before(is.dim(2), kw, node.attrs.stride_w, os.dim(2))
                                 : 0;
  const float* x = in.data<float>();
  const float* w = filter.data<float>();
  float* y = ctx.output->data<float>();
  for (std::int64_t n = 0; n < os.dim(0); ++n) {
    for (std::int64_t oy = 0; oy < os.dim(1); ++oy) {
      for (std::int64_t ox = 0; ox < os.dim(2); ++ox) {
        for (std::int64_t oc = 0; oc < os.dim(3); ++oc) {
          float acc = bias[oc];
          for (int fy = 0; fy < kh; ++fy) {
            const std::int64_t iy = oy * node.attrs.stride_h - pad_h + fy;
            if (iy < 0 || iy >= is.dim(1)) continue;
            for (int fx = 0; fx < kw; ++fx) {
              const std::int64_t ix = ox * node.attrs.stride_w - pad_w + fx;
              if (ix < 0 || ix >= is.dim(2)) continue;
              const float* xp = x + ((n * is.dim(1) + iy) * is.dim(2) + ix) * in_ch;
              const float* wp = w + ((oc * kh + fy) * kw + fx) * in_ch;
              for (std::int64_t ic = 0; ic < in_ch; ++ic) acc += xp[ic] * wp[ic];
            }
          }
          y[((n * os.dim(1) + oy) * os.dim(2) + ox) * os.dim(3) + oc] =
              apply_activation_f32(acc, node.attrs.activation);
        }
      }
    }
  }
}

void dwconv2d_f32(const KernelContext& ctx) {
  const Tensor& in = ctx.input(0);
  const Node& node = *ctx.node;
  const Tensor& filter = node.weights[0];  // [1, kh, kw, ch * depth_mult]
  const float* bias = node.weights[1].data<float>();
  const Shape& is = in.shape();
  const Shape& fs = filter.shape();
  const Shape& os = ctx.output->shape();
  const int kh = static_cast<int>(fs.dim(1));
  const int kw = static_cast<int>(fs.dim(2));
  const std::int64_t in_ch = is.dim(3);
  const std::int64_t ch = fs.dim(3);         // output channels
  const std::int64_t dm = ch / in_ch;        // depth multiplier
  const std::int64_t pad_h = node.attrs.padding == Padding::kSame
                                 ? same_pad_before(is.dim(1), kh, node.attrs.stride_h, os.dim(1))
                                 : 0;
  const std::int64_t pad_w = node.attrs.padding == Padding::kSame
                                 ? same_pad_before(is.dim(2), kw, node.attrs.stride_w, os.dim(2))
                                 : 0;
  const float* x = in.data<float>();
  const float* w = filter.data<float>();
  float* y = ctx.output->data<float>();
  for (std::int64_t n = 0; n < os.dim(0); ++n) {
    for (std::int64_t oy = 0; oy < os.dim(1); ++oy) {
      for (std::int64_t ox = 0; ox < os.dim(2); ++ox) {
        for (std::int64_t c = 0; c < ch; ++c) {
          float acc = bias[c];
          for (int fy = 0; fy < kh; ++fy) {
            const std::int64_t iy = oy * node.attrs.stride_h - pad_h + fy;
            if (iy < 0 || iy >= is.dim(1)) continue;
            for (int fx = 0; fx < kw; ++fx) {
              const std::int64_t ix = ox * node.attrs.stride_w - pad_w + fx;
              if (ix < 0 || ix >= is.dim(2)) continue;
              acc += x[((n * is.dim(1) + iy) * is.dim(2) + ix) * in_ch +
                       c / dm] *
                     w[(fy * kw + fx) * ch + c];
            }
          }
          y[((n * os.dim(1) + oy) * os.dim(2) + ox) * ch + c] =
              apply_activation_f32(acc, node.attrs.activation);
        }
      }
    }
  }
}

// The reference kernels exist to be the predictable baseline the optimized
// path is validated against. GCC's fold-left reduction vectorization would
// split this dot product's multiply from its add (no FMA contraction) while
// the scalar/contracted forms fuse them, making ref-vs-opt parity depend on
// the vectorizer's mood. Pin the loop to plain scalar code with the same
// contraction setting as the command line.
#if defined(__GNUC__) && !defined(__clang__)
__attribute__((
    optimize("no-tree-vectorize,no-tree-slp-vectorize,fp-contract=fast")))
#endif
void fc_f32(const KernelContext& ctx) {
  const Tensor& in = ctx.input(0);
  const Node& node = *ctx.node;
  const Tensor& weight = node.weights[0];  // [out, in]
  const float* bias = node.weights[1].data<float>();
  const std::int64_t batch = in.shape().dim(0);
  const std::int64_t in_dim = weight.shape().dim(1);
  const std::int64_t out_dim = weight.shape().dim(0);
  const float* x = in.data<float>();
  const float* w = weight.data<float>();
  float* y = ctx.output->data<float>();
  for (std::int64_t n = 0; n < batch; ++n) {
    for (std::int64_t o = 0; o < out_dim; ++o) {
      float acc = bias[o];
      for (std::int64_t i = 0; i < in_dim; ++i) {
        acc += x[n * in_dim + i] * w[o * in_dim + i];
      }
      y[n * out_dim + o] = apply_activation_f32(acc, node.attrs.activation);
    }
  }
}

template <bool kIsMax>
void pool_f32(const KernelContext& ctx) {
  const Tensor& in = ctx.input(0);
  const Node& node = *ctx.node;
  const Shape& is = in.shape();
  const Shape& os = ctx.output->shape();
  const int fh = node.attrs.filter_h;
  const int fw = node.attrs.filter_w;
  const std::int64_t ch = is.dim(3);
  const std::int64_t pad_h = node.attrs.padding == Padding::kSame
                                 ? same_pad_before(is.dim(1), fh, node.attrs.stride_h, os.dim(1))
                                 : 0;
  const std::int64_t pad_w = node.attrs.padding == Padding::kSame
                                 ? same_pad_before(is.dim(2), fw, node.attrs.stride_w, os.dim(2))
                                 : 0;
  const float* x = in.data<float>();
  float* y = ctx.output->data<float>();
  for (std::int64_t n = 0; n < os.dim(0); ++n) {
    for (std::int64_t oy = 0; oy < os.dim(1); ++oy) {
      for (std::int64_t ox = 0; ox < os.dim(2); ++ox) {
        for (std::int64_t c = 0; c < ch; ++c) {
          float best = -3.4e38f;
          float sum = 0.0f;
          int count = 0;
          for (int fy = 0; fy < fh; ++fy) {
            const std::int64_t iy = oy * node.attrs.stride_h - pad_h + fy;
            if (iy < 0 || iy >= is.dim(1)) continue;
            for (int fx = 0; fx < fw; ++fx) {
              const std::int64_t ix = ox * node.attrs.stride_w - pad_w + fx;
              if (ix < 0 || ix >= is.dim(2)) continue;
              float v = x[((n * is.dim(1) + iy) * is.dim(2) + ix) * ch + c];
              best = std::max(best, v);
              sum += v;
              ++count;
            }
          }
          y[((n * os.dim(1) + oy) * os.dim(2) + ox) * ch + c] =
              kIsMax ? best : (count > 0 ? sum / static_cast<float>(count) : 0.0f);
        }
      }
    }
  }
}

void mean_f32(const KernelContext& ctx) {
  const Tensor& in = ctx.input(0);
  const Shape& is = in.shape();
  const std::int64_t hw = is.dim(1) * is.dim(2);
  const std::int64_t ch = is.dim(3);
  const float* x = in.data<float>();
  float* y = ctx.output->data<float>();
  for (std::int64_t n = 0; n < is.dim(0); ++n) {
    for (std::int64_t c = 0; c < ch; ++c) {
      float sum = 0.0f;
      for (std::int64_t p = 0; p < hw; ++p) sum += x[(n * hw + p) * ch + c];
      y[n * ch + c] = sum / static_cast<float>(hw);
    }
  }
}

// Element-at-a-time pad (intentionally naive; the optimized resolver uses
// row memcpy, reproducing the paper's Pad latency gap in Table 4).
template <typename T>
void pad_naive(const KernelContext& ctx) {
  const Tensor& in = ctx.input(0);
  const Node& node = *ctx.node;
  const Shape& is = in.shape();
  const Shape& os = ctx.output->shape();
  T pad_value = 0;
  if constexpr (std::is_same_v<T, std::int8_t>) {
    if (ctx.output->quant().quantized()) {
      pad_value = static_cast<T>(ctx.output->quant().zero_point());
    }
  }
  T* y = ctx.output->data<T>();
  for (std::int64_t i = 0; i < os.num_elements(); ++i) y[i] = pad_value;
  const T* x = in.data<T>();
  for (std::int64_t n = 0; n < is.dim(0); ++n) {
    for (std::int64_t h = 0; h < is.dim(1); ++h) {
      for (std::int64_t w = 0; w < is.dim(2); ++w) {
        for (std::int64_t c = 0; c < is.dim(3); ++c) {
          y[((n * os.dim(1) + h + node.attrs.pad_top) * os.dim(2) + w +
             node.attrs.pad_left) * os.dim(3) + c] =
              x[((n * is.dim(1) + h) * is.dim(2) + w) * is.dim(3) + c];
        }
      }
    }
  }
}

// Shared add/sub body: same-shape, or b = [N,1,1,C] broadcasting over
// a = [N,H,W,C] (same broadcast rule as mul).
template <bool kIsSub>
void addsub_f32(const KernelContext& ctx) {
  const Tensor& a = ctx.input(0);
  const Tensor& b = ctx.input(1);
  const Shape& as = a.shape();
  const float* pa = a.data<float>();
  const float* pb = b.data<float>();
  float* y = ctx.output->data<float>();
  const Activation act = ctx.node->attrs.activation;
  auto emit = [&](std::int64_t out_idx, std::int64_t b_idx) {
    const float v =
        kIsSub ? pa[out_idx] - pb[b_idx] : pa[out_idx] + pb[b_idx];
    y[out_idx] = apply_activation_f32(v, act);
  };
  if (as == b.shape()) {
    for (std::int64_t i = 0; i < a.num_elements(); ++i) emit(i, i);
    return;
  }
  const std::int64_t hw = as.dim(1) * as.dim(2);
  const std::int64_t ch = as.dim(3);
  for (std::int64_t n = 0; n < as.dim(0); ++n) {
    for (std::int64_t p = 0; p < hw; ++p) {
      for (std::int64_t c = 0; c < ch; ++c) {
        emit((n * hw + p) * ch + c, n * ch + c);
      }
    }
  }
}

void add_f32(const KernelContext& ctx) { addsub_f32<false>(ctx); }
void sub_f32(const KernelContext& ctx) { addsub_f32<true>(ctx); }

void mul_f32(const KernelContext& ctx) {
  const Tensor& a = ctx.input(0);
  const Tensor& b = ctx.input(1);
  const Shape& as = a.shape();
  const Shape& bs = b.shape();
  const float* pa = a.data<float>();
  const float* pb = b.data<float>();
  float* y = ctx.output->data<float>();
  if (as == bs) {
    for (std::int64_t i = 0; i < a.num_elements(); ++i) y[i] = pa[i] * pb[i];
    return;
  }
  // b broadcast [N,1,1,C] over a [N,H,W,C] (squeeze-excite gate).
  const std::int64_t hw = as.dim(1) * as.dim(2);
  const std::int64_t ch = as.dim(3);
  for (std::int64_t n = 0; n < as.dim(0); ++n) {
    for (std::int64_t p = 0; p < hw; ++p) {
      for (std::int64_t c = 0; c < ch; ++c) {
        y[(n * hw + p) * ch + c] = pa[(n * hw + p) * ch + c] * pb[n * ch + c];
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Quantized (int8) reference kernels: double-precision requantization.
// ---------------------------------------------------------------------------

void conv2d_i8_ref(const KernelContext& ctx) {
  const Tensor& in = ctx.input(0);
  const Node& node = *ctx.node;
  const Tensor& filter = node.weights[0];
  const Tensor& bias = node.weights[1];
  Tensor& out = *ctx.output;
  const Shape& is = in.shape();
  const Shape& fs = filter.shape();
  const Shape& os = out.shape();
  const int kh = static_cast<int>(fs.dim(1));
  const int kw = static_cast<int>(fs.dim(2));
  const std::int64_t in_ch = is.dim(3);
  const std::int64_t pad_h = node.attrs.padding == Padding::kSame
                                 ? same_pad_before(is.dim(1), kh, node.attrs.stride_h, os.dim(1))
                                 : 0;
  const std::int64_t pad_w = node.attrs.padding == Padding::kSame
                                 ? same_pad_before(is.dim(2), kw, node.attrs.stride_w, os.dim(2))
                                 : 0;
  const std::int32_t in_zp = in.quant().zero_point();
  const std::int32_t out_zp = out.quant().zero_point();
  RequantScales rq =
      prepare_requant(in.quant(), filter.quant(), out.quant(), os.dim(3));
  QuantActivationRange range = quant_activation_range(
      node.attrs.activation, out.quant().scale(), out_zp);
  const std::int8_t* x = in.data<std::int8_t>();
  const std::int8_t* w = filter.data<std::int8_t>();
  const std::int32_t* b = bias.data<std::int32_t>();
  std::int8_t* y = out.data<std::int8_t>();
  for (std::int64_t n = 0; n < os.dim(0); ++n) {
    for (std::int64_t oy = 0; oy < os.dim(1); ++oy) {
      for (std::int64_t ox = 0; ox < os.dim(2); ++ox) {
        for (std::int64_t oc = 0; oc < os.dim(3); ++oc) {
          std::int32_t acc = b[oc];
          for (int fy = 0; fy < kh; ++fy) {
            const std::int64_t iy = oy * node.attrs.stride_h - pad_h + fy;
            if (iy < 0 || iy >= is.dim(1)) continue;
            for (int fx = 0; fx < kw; ++fx) {
              const std::int64_t ix = ox * node.attrs.stride_w - pad_w + fx;
              if (ix < 0 || ix >= is.dim(2)) continue;
              const std::int8_t* xp =
                  x + ((n * is.dim(1) + iy) * is.dim(2) + ix) * in_ch;
              const std::int8_t* wp = w + ((oc * kh + fy) * kw + fx) * in_ch;
              for (std::int64_t ic = 0; ic < in_ch; ++ic) {
                acc += (static_cast<std::int32_t>(xp[ic]) - in_zp) *
                       static_cast<std::int32_t>(wp[ic]);
              }
            }
          }
          auto scaled = static_cast<std::int32_t>(std::lround(
              static_cast<double>(acc) * rq.real[static_cast<std::size_t>(oc)]));
          std::int32_t q = scaled + out_zp;
          q = std::clamp(q, range.min, range.max);
          y[((n * os.dim(1) + oy) * os.dim(2) + ox) * os.dim(3) + oc] =
              static_cast<std::int8_t>(q);
        }
      }
    }
  }
}

void dwconv2d_i8_ref(const KernelContext& ctx) {
  const Tensor& in = ctx.input(0);
  const Node& node = *ctx.node;
  const Tensor& filter = node.weights[0];
  const Tensor& bias = node.weights[1];
  Tensor& out = *ctx.output;
  const Shape& is = in.shape();
  const Shape& fs = filter.shape();
  const Shape& os = out.shape();
  const int kh = static_cast<int>(fs.dim(1));
  const int kw = static_cast<int>(fs.dim(2));
  const std::int64_t in_ch = is.dim(3);
  const std::int64_t ch = fs.dim(3);   // output channels
  const std::int64_t dm = ch / in_ch;  // depth multiplier
  const std::int64_t pad_h = node.attrs.padding == Padding::kSame
                                 ? same_pad_before(is.dim(1), kh, node.attrs.stride_h, os.dim(1))
                                 : 0;
  const std::int64_t pad_w = node.attrs.padding == Padding::kSame
                                 ? same_pad_before(is.dim(2), kw, node.attrs.stride_w, os.dim(2))
                                 : 0;
  const std::int32_t in_zp = in.quant().zero_point();
  const std::int32_t out_zp = out.quant().zero_point();
  RequantScales rq = prepare_requant(in.quant(), filter.quant(), out.quant(), ch);
  QuantActivationRange range = quant_activation_range(
      node.attrs.activation, out.quant().scale(), out_zp);
  const std::int8_t* x = in.data<std::int8_t>();
  const std::int8_t* w = filter.data<std::int8_t>();
  const std::int32_t* b = bias.data<std::int32_t>();
  std::int8_t* y = out.data<std::int8_t>();
  for (std::int64_t n = 0; n < os.dim(0); ++n) {
    for (std::int64_t oy = 0; oy < os.dim(1); ++oy) {
      for (std::int64_t ox = 0; ox < os.dim(2); ++ox) {
        for (std::int64_t c = 0; c < ch; ++c) {
          std::int32_t acc = b[c];
          for (int fy = 0; fy < kh; ++fy) {
            const std::int64_t iy = oy * node.attrs.stride_h - pad_h + fy;
            if (iy < 0 || iy >= is.dim(1)) continue;
            for (int fx = 0; fx < kw; ++fx) {
              const std::int64_t ix = ox * node.attrs.stride_w - pad_w + fx;
              if (ix < 0 || ix >= is.dim(2)) continue;
              acc += (static_cast<std::int32_t>(
                          x[((n * is.dim(1) + iy) * is.dim(2) + ix) * in_ch +
                            c / dm]) -
                      in_zp) *
                     static_cast<std::int32_t>(w[(fy * kw + fx) * ch + c]);
            }
          }
          auto scaled = static_cast<std::int32_t>(std::lround(
              static_cast<double>(acc) * rq.real[static_cast<std::size_t>(c)]));
          std::int32_t q = std::clamp(scaled + out_zp, range.min, range.max);
          y[((n * os.dim(1) + oy) * os.dim(2) + ox) * ch + c] =
              static_cast<std::int8_t>(q);
        }
      }
    }
  }
}

void fc_i8_ref(const KernelContext& ctx) {
  const Tensor& in = ctx.input(0);
  const Node& node = *ctx.node;
  const Tensor& weight = node.weights[0];
  const Tensor& bias = node.weights[1];
  Tensor& out = *ctx.output;
  const std::int64_t batch = in.shape().dim(0);
  const std::int64_t in_dim = weight.shape().dim(1);
  const std::int64_t out_dim = weight.shape().dim(0);
  const std::int32_t in_zp = in.quant().zero_point();
  const std::int32_t out_zp = out.quant().zero_point();
  RequantScales rq =
      prepare_requant(in.quant(), weight.quant(), out.quant(), out_dim);
  QuantActivationRange range = quant_activation_range(
      node.attrs.activation, out.quant().scale(), out_zp);
  const std::int8_t* x = in.data<std::int8_t>();
  const std::int8_t* w = weight.data<std::int8_t>();
  const std::int32_t* b = bias.data<std::int32_t>();
  std::int8_t* y = out.data<std::int8_t>();
  for (std::int64_t n = 0; n < batch; ++n) {
    for (std::int64_t o = 0; o < out_dim; ++o) {
      std::int32_t acc = b[o];
      for (std::int64_t i = 0; i < in_dim; ++i) {
        acc += (static_cast<std::int32_t>(x[n * in_dim + i]) - in_zp) *
               static_cast<std::int32_t>(w[o * in_dim + i]);
      }
      auto scaled = static_cast<std::int32_t>(std::lround(
          static_cast<double>(acc) * rq.real[static_cast<std::size_t>(o)]));
      std::int32_t q = std::clamp(scaled + out_zp, range.min, range.max);
      y[n * out_dim + o] = static_cast<std::int8_t>(q);
    }
  }
}

// Correct int8 average pool: accumulate (q - zp_in), average with rounding,
// rescale to the output quantization.
void avgpool_i8_correct(const KernelContext& ctx) {
  const Tensor& in = ctx.input(0);
  const Node& node = *ctx.node;
  Tensor& out = *ctx.output;
  const Shape& is = in.shape();
  const Shape& os = out.shape();
  const int fh = node.attrs.filter_h;
  const int fw = node.attrs.filter_w;
  const std::int64_t ch = is.dim(3);
  const std::int64_t pad_h = node.attrs.padding == Padding::kSame
                                 ? same_pad_before(is.dim(1), fh, node.attrs.stride_h, os.dim(1))
                                 : 0;
  const std::int64_t pad_w = node.attrs.padding == Padding::kSame
                                 ? same_pad_before(is.dim(2), fw, node.attrs.stride_w, os.dim(2))
                                 : 0;
  const float in_scale = in.quant().scale();
  const std::int32_t in_zp = in.quant().zero_point();
  const float out_scale = out.quant().scale();
  const std::int32_t out_zp = out.quant().zero_point();
  const double rescale = static_cast<double>(in_scale) / out_scale;
  const std::int8_t* x = in.data<std::int8_t>();
  std::int8_t* y = out.data<std::int8_t>();
  for (std::int64_t n = 0; n < os.dim(0); ++n) {
    for (std::int64_t oy = 0; oy < os.dim(1); ++oy) {
      for (std::int64_t ox = 0; ox < os.dim(2); ++ox) {
        for (std::int64_t c = 0; c < ch; ++c) {
          std::int32_t sum = 0;
          int count = 0;
          for (int fy = 0; fy < fh; ++fy) {
            const std::int64_t iy = oy * node.attrs.stride_h - pad_h + fy;
            if (iy < 0 || iy >= is.dim(1)) continue;
            for (int fx = 0; fx < fw; ++fx) {
              const std::int64_t ix = ox * node.attrs.stride_w - pad_w + fx;
              if (ix < 0 || ix >= is.dim(2)) continue;
              sum += x[((n * is.dim(1) + iy) * is.dim(2) + ix) * ch + c] - in_zp;
              ++count;
            }
          }
          double mean = count > 0 ? static_cast<double>(sum) / count : 0.0;
          auto q = static_cast<std::int32_t>(std::lround(mean * rescale)) + out_zp;
          y[((n * os.dim(1) + oy) * os.dim(2) + ox) * ch + c] =
              clamp_to_i8(q);
        }
      }
    }
  }
}

// Bug emulation (see DESIGN.md §2): the as-shipped reference AveragePool2D
// applies a wrong fixed right-shift instead of dividing by the window size
// and drops the zero point, collapsing outputs toward a constant — the
// failure signature the paper observed on MobileNetV3's squeeze-excite
// pools (0% accuracy, rMSE peaks at every SE pool layer).
void avgpool_i8_buggy(const KernelContext& ctx) {
  const Tensor& in = ctx.input(0);
  const Node& node = *ctx.node;
  Tensor& out = *ctx.output;
  const Shape& is = in.shape();
  const Shape& os = out.shape();
  const int fh = node.attrs.filter_h;
  const int fw = node.attrs.filter_w;
  const std::int64_t ch = is.dim(3);
  const std::int8_t* x = in.data<std::int8_t>();
  std::int8_t* y = out.data<std::int8_t>();
  for (std::int64_t n = 0; n < os.dim(0); ++n) {
    for (std::int64_t oy = 0; oy < os.dim(1); ++oy) {
      for (std::int64_t ox = 0; ox < os.dim(2); ++ox) {
        for (std::int64_t c = 0; c < ch; ++c) {
          std::int32_t sum = 0;
          for (int fy = 0; fy < fh; ++fy) {
            const std::int64_t iy = oy * node.attrs.stride_h + fy;
            if (iy >= is.dim(1)) continue;
            for (int fx = 0; fx < fw; ++fx) {
              const std::int64_t ix = ox * node.attrs.stride_w + fx;
              if (ix >= is.dim(2)) continue;
              // BUG: raw quantized values, zero point not subtracted.
              sum += x[((n * is.dim(1) + iy) * is.dim(2) + ix) * ch + c];
            }
          }
          // BUG: fixed >>2 instead of dividing by the true window count.
          // Small (2x2) windows happen to survive; the global squeeze-excite
          // pools saturate to ±127 — the "invalid or constant output"
          // signature the paper traced to MobileNetV3's SE pools (§4.4).
          y[((n * os.dim(1) + oy) * os.dim(2) + ox) * ch + c] =
              clamp_to_i8(sum >> 2);
        }
      }
    }
  }
}

void maxpool_i8(const KernelContext& ctx) {
  const Tensor& in = ctx.input(0);
  const Node& node = *ctx.node;
  Tensor& out = *ctx.output;
  const Shape& is = in.shape();
  const Shape& os = out.shape();
  const int fh = node.attrs.filter_h;
  const int fw = node.attrs.filter_w;
  const std::int64_t ch = is.dim(3);
  const std::int64_t pad_h = node.attrs.padding == Padding::kSame
                                 ? same_pad_before(is.dim(1), fh, node.attrs.stride_h, os.dim(1))
                                 : 0;
  const std::int64_t pad_w = node.attrs.padding == Padding::kSame
                                 ? same_pad_before(is.dim(2), fw, node.attrs.stride_w, os.dim(2))
                                 : 0;
  const std::int8_t* x = in.data<std::int8_t>();
  std::int8_t* y = out.data<std::int8_t>();
  for (std::int64_t n = 0; n < os.dim(0); ++n) {
    for (std::int64_t oy = 0; oy < os.dim(1); ++oy) {
      for (std::int64_t ox = 0; ox < os.dim(2); ++ox) {
        for (std::int64_t c = 0; c < ch; ++c) {
          std::int8_t best = -128;
          for (int fy = 0; fy < fh; ++fy) {
            const std::int64_t iy = oy * node.attrs.stride_h - pad_h + fy;
            if (iy < 0 || iy >= is.dim(1)) continue;
            for (int fx = 0; fx < fw; ++fx) {
              const std::int64_t ix = ox * node.attrs.stride_w - pad_w + fx;
              if (ix < 0 || ix >= is.dim(2)) continue;
              best = std::max(best, x[((n * is.dim(1) + iy) * is.dim(2) + ix) * ch + c]);
            }
          }
          y[((n * os.dim(1) + oy) * os.dim(2) + ox) * ch + c] = best;
        }
      }
    }
  }
}

void mean_i8(const KernelContext& ctx) {
  const Tensor& in = ctx.input(0);
  Tensor& out = *ctx.output;
  const Shape& is = in.shape();
  const std::int64_t hw = is.dim(1) * is.dim(2);
  const std::int64_t ch = is.dim(3);
  const float in_scale = in.quant().scale();
  const std::int32_t in_zp = in.quant().zero_point();
  const float out_scale = out.quant().scale();
  const std::int32_t out_zp = out.quant().zero_point();
  const double rescale = static_cast<double>(in_scale) / out_scale;
  const std::int8_t* x = in.data<std::int8_t>();
  std::int8_t* y = out.data<std::int8_t>();
  for (std::int64_t n = 0; n < is.dim(0); ++n) {
    for (std::int64_t c = 0; c < ch; ++c) {
      std::int64_t sum = 0;
      for (std::int64_t p = 0; p < hw; ++p) sum += x[(n * hw + p) * ch + c] - in_zp;
      double mean = static_cast<double>(sum) / static_cast<double>(hw);
      y[n * ch + c] = clamp_to_i8(
          static_cast<std::int32_t>(std::lround(mean * rescale)) + out_zp);
    }
  }
}

template <bool kIsSub>
void addsub_i8(const KernelContext& ctx) {
  const Tensor& a = ctx.input(0);
  const Tensor& b = ctx.input(1);
  Tensor& out = *ctx.output;
  const Shape& as = a.shape();
  const float sa = a.quant().scale();
  const float sb = b.quant().scale();
  const float so = out.quant().scale();
  const std::int32_t za = a.quant().zero_point();
  const std::int32_t zb = b.quant().zero_point();
  const std::int32_t zo = out.quant().zero_point();
  QuantActivationRange range =
      quant_activation_range(ctx.node->attrs.activation, so, zo);
  const std::int8_t* pa = a.data<std::int8_t>();
  const std::int8_t* pb = b.data<std::int8_t>();
  std::int8_t* y = out.data<std::int8_t>();
  auto emit = [&](std::int64_t out_idx, std::int64_t b_idx) {
    const double bterm = static_cast<double>(sb) * (pb[b_idx] - zb);
    const double real =
        static_cast<double>(sa) * (pa[out_idx] - za) + (kIsSub ? -bterm : bterm);
    auto q = static_cast<std::int32_t>(std::lround(real / so)) + zo;
    y[out_idx] = static_cast<std::int8_t>(std::clamp(q, range.min, range.max));
  };
  if (as == b.shape()) {
    for (std::int64_t i = 0; i < out.num_elements(); ++i) emit(i, i);
    return;
  }
  const std::int64_t hw = as.dim(1) * as.dim(2);
  const std::int64_t ch = as.dim(3);
  for (std::int64_t n = 0; n < as.dim(0); ++n) {
    for (std::int64_t p = 0; p < hw; ++p) {
      for (std::int64_t c = 0; c < ch; ++c) {
        emit((n * hw + p) * ch + c, n * ch + c);
      }
    }
  }
}

void add_i8(const KernelContext& ctx) { addsub_i8<false>(ctx); }
void sub_i8(const KernelContext& ctx) { addsub_i8<true>(ctx); }

void mul_i8(const KernelContext& ctx) {
  const Tensor& a = ctx.input(0);
  const Tensor& b = ctx.input(1);
  Tensor& out = *ctx.output;
  const Shape& as = a.shape();
  const Shape& bs = b.shape();
  const float sa = a.quant().scale();
  const float sb = b.quant().scale();
  const float so = out.quant().scale();
  const std::int32_t za = a.quant().zero_point();
  const std::int32_t zb = b.quant().zero_point();
  const std::int32_t zo = out.quant().zero_point();
  const double rescale = static_cast<double>(sa) * sb / so;
  const std::int8_t* pa = a.data<std::int8_t>();
  const std::int8_t* pb = b.data<std::int8_t>();
  std::int8_t* y = out.data<std::int8_t>();
  auto emit = [&](std::int64_t out_idx, std::int64_t b_idx) {
    std::int32_t prod = (static_cast<std::int32_t>(pa[out_idx]) - za) *
                        (static_cast<std::int32_t>(pb[b_idx]) - zb);
    auto q = static_cast<std::int32_t>(std::lround(prod * rescale)) + zo;
    y[out_idx] = clamp_to_i8(q);
  };
  if (as == bs) {
    for (std::int64_t i = 0; i < out.num_elements(); ++i) emit(i, i);
    return;
  }
  const std::int64_t hw = as.dim(1) * as.dim(2);
  const std::int64_t ch = as.dim(3);
  for (std::int64_t n = 0; n < as.dim(0); ++n) {
    for (std::int64_t p = 0; p < hw; ++p) {
      for (std::int64_t c = 0; c < ch; ++c) {
        emit((n * hw + p) * ch + c, n * ch + c);
      }
    }
  }
}

void avgpool_f32(const KernelContext& ctx) { pool_f32<false>(ctx); }
void maxpool_f32(const KernelContext& ctx) { pool_f32<true>(ctx); }

}  // namespace

void register_ref_float_kernels(KernelMap& map) {
  map[{OpType::kConv2D, false}] = conv2d_f32;
  map[{OpType::kDepthwiseConv2D, false}] = dwconv2d_f32;
  map[{OpType::kFullyConnected, false}] = fc_f32;
  map[{OpType::kAvgPool2D, false}] = avgpool_f32;
  map[{OpType::kMaxPool2D, false}] = maxpool_f32;
  map[{OpType::kMean, false}] = mean_f32;
  map[{OpType::kPad, false}] = pad_naive<float>;
  map[{OpType::kAdd, false}] = add_f32;
  map[{OpType::kSub, false}] = sub_f32;
  map[{OpType::kMul, false}] = mul_f32;
}

void register_ref_quant_kernels(KernelMap& map, bool emulate_avgpool_bug) {
  map[{OpType::kConv2D, true}] = conv2d_i8_ref;
  map[{OpType::kDepthwiseConv2D, true}] = dwconv2d_i8_ref;
  map[{OpType::kFullyConnected, true}] = fc_i8_ref;
  map[{OpType::kAvgPool2D, true}] =
      emulate_avgpool_bug ? avgpool_i8_buggy : avgpool_i8_correct;
  map[{OpType::kMaxPool2D, true}] = maxpool_i8;
  map[{OpType::kMean, true}] = mean_i8;
  map[{OpType::kPad, true}] = pad_naive<std::int8_t>;
  map[{OpType::kAdd, true}] = add_i8;
  map[{OpType::kSub, true}] = sub_i8;
  map[{OpType::kMul, true}] = mul_i8;
}

}  // namespace mlexray
