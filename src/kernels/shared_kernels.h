// Kernels whose implementation is identical in the reference and optimized
// resolvers (structural/elementwise ops where there is nothing to optimize
// at this scale): reshape, concat, embedding, upsample, batch-norm,
// quantize/dequantize, softmax and the standalone activations.
#pragma once

#include <map>

#include "src/kernels/kernel.h"

namespace mlexray {

// Lookup key for kernel registration: op type + compute class.
struct KernelKey {
  OpType type;
  bool quantized;
  auto operator<=>(const KernelKey&) const = default;
};

using KernelMap = std::map<KernelKey, KernelEntry>;

// Registers the shared kernels into `map` (float and int8 variants).
void register_shared_kernels(KernelMap& map);

}  // namespace mlexray
