// Shared convolution/pooling geometry and quantized-multiplier preparation.
#pragma once

#include <cstdint>
#include <vector>

#include "src/kernels/fixed_point.h"
#include "src/kernels/kernel.h"
#include "src/tensor/tensor.h"

namespace mlexray {

// TF-style SAME padding: total padding that centers the receptive field.
inline std::int64_t same_pad_before(std::int64_t in, int filter, int stride,
                                    std::int64_t out) {
  std::int64_t needed = (out - 1) * stride + filter - in;
  if (needed < 0) needed = 0;
  return needed / 2;
}

// Per-output-channel requantization factors for a quantized conv/fc node:
// effective_scale[c] = in_scale * w_scale[c] / out_scale.
struct RequantScales {
  std::vector<double> real;                 // reference kernels use doubles
  std::vector<std::int32_t> multipliers;    // optimized kernels use Q31 ints
  std::vector<int> shifts;
};

inline RequantScales prepare_requant(const QuantParams& in_q,
                                     const QuantParams& w_q,
                                     const QuantParams& out_q,
                                     std::int64_t out_channels) {
  RequantScales r;
  r.real.resize(static_cast<std::size_t>(out_channels));
  r.multipliers.resize(static_cast<std::size_t>(out_channels));
  r.shifts.resize(static_cast<std::size_t>(out_channels));
  for (std::int64_t c = 0; c < out_channels; ++c) {
    auto ch = static_cast<std::size_t>(c);
    double scale = static_cast<double>(in_q.scale()) *
                   w_q.scale(w_q.per_channel() ? ch : 0) / out_q.scale();
    r.real[ch] = scale;
    quantize_multiplier(scale, &r.multipliers[ch], &r.shifts[ch]);
  }
  return r;
}

// Arena-backed view of the Q31 requantization factors, for the optimized
// kernels' steady-state path: the tables live in the interpreter's scratch
// arena instead of per-call std::vectors, so repeated invokes do not touch
// the heap. Valid until the node finishes executing.
struct RequantView {
  const std::int32_t* multipliers = nullptr;
  const int* shifts = nullptr;
};

// Writes the Q31 tables into caller-provided arrays (scratch or plan-owned
// prepared storage).
inline void fill_requant_tables(const QuantParams& in_q, const QuantParams& w_q,
                                const QuantParams& out_q,
                                std::int64_t out_channels,
                                std::int32_t* multipliers, int* shifts) {
  for (std::int64_t c = 0; c < out_channels; ++c) {
    auto ch = static_cast<std::size_t>(c);
    double scale = static_cast<double>(in_q.scale()) *
                   w_q.scale(w_q.per_channel() ? ch : 0) / out_q.scale();
    quantize_multiplier(scale, &multipliers[ch], &shifts[ch]);
  }
}

inline RequantView prepare_requant_scratch(const KernelContext& ctx,
                                           const QuantParams& in_q,
                                           const QuantParams& w_q,
                                           const QuantParams& out_q,
                                           std::int64_t out_channels) {
  auto* multipliers = ctx.scratch<std::int32_t>(out_channels);
  auto* shifts = ctx.scratch<int>(out_channels);
  fill_requant_tables(in_q, w_q, out_q, out_channels, multipliers, shifts);
  return {multipliers, shifts};
}

}  // namespace mlexray
