// Kernel invocation interface.
//
// A kernel computes one node's output from its activation inputs. Constant
// weights live on the node; quantization parameters travel on the tensors
// (inputs carry theirs, the interpreter pre-sets the output tensor's params
// from node.output_quant before dispatch).
#pragma once

#include <functional>

#include "src/common/thread_pool.h"
#include "src/graph/node.h"

namespace mlexray {

struct KernelContext {
  const Node* node = nullptr;
  std::vector<const Tensor*> inputs;  // activation inputs, in op order
  Tensor* output = nullptr;           // allocated by the interpreter
  ThreadPool* pool = nullptr;         // null => single-threaded execution

  const Tensor& input(std::size_t i) const {
    MLX_CHECK_LT(i, inputs.size());
    return *inputs[i];
  }
};

using KernelFn = std::function<void(const KernelContext&)>;

}  // namespace mlexray
