// Kernel invocation interface.
//
// A kernel computes one node's output from its activation inputs. Constant
// weights live on the node; quantization parameters travel on the tensors
// (inputs carry theirs, the interpreter pre-sets the output tensor's params
// from node.output_quant before dispatch).
//
// Contexts are prepared once per node by the ExecutionPlan (inputs/output
// pre-wired, arena attached) and reused verbatim on every invoke. Kernel
// temporaries come from ctx.scratch<T>(): arena-backed, valid until the node
// finishes, heap-free in steady state. One-time results (packed weight
// panels, requantization tables) go into ctx.prepared, the plan-owned
// storage a kernel's optional prepare hook fills at plan construction.
#pragma once

#include <functional>

#include "src/common/thread_pool.h"
#include "src/graph/node.h"
#include "src/kernels/prepared_storage.h"
#include "src/tensor/scratch_arena.h"

namespace mlexray {

struct KernelContext {
  const Node* node = nullptr;
  std::vector<const Tensor*> inputs;  // activation inputs, in op order
  Tensor* output = nullptr;           // allocated by the interpreter
  PoolRef pool;                       // null => single-threaded execution
  ScratchArena* arena = nullptr;      // per-interpreter scratch storage
  // Plan-owned storage filled once by the kernel's prepare hook; null when
  // the kernel runs outside a plan (e.g. the trainer's forward pass), in
  // which case invoke falls back to per-call scratch work.
  PreparedStorage* prepared = nullptr;

  const Tensor& input(std::size_t i) const {
    MLX_CHECK_LT(i, inputs.size());
    return *inputs[i];
  }

  // Arena-backed scratch, reset between nodes. Call only from the kernel's
  // entry thread, before fanning out to the pool.
  template <typename T>
  T* scratch(std::int64_t count) const {
    MLX_CHECK(arena != nullptr) << "kernel context has no scratch arena";
    return arena->allocate_array<T>(static_cast<std::size_t>(count));
  }

  // Worker slots a parallel_for_workers body may observe (>= 1). Reflects
  // the *executing* context's pool and participant cap — size per-worker
  // scratch from this at invoke time, never from a pool seen at prepare
  // time (the trainer and a serving session can execute the same kernel
  // with different pools and caps).
  std::size_t worker_count() const { return pool.parallelism(); }
};

using KernelFn = std::function<void(const KernelContext&)>;

// A registered kernel: the per-invoke entry point plus an optional prepare
// hook the ExecutionPlan runs exactly once at construction. Prepare hooks
// see the same wired context as invoke (shapes, weights, quant params are
// final by then; activation *data* is not) and stash their results in
// ctx.prepared.
struct KernelEntry {
  KernelFn invoke;
  KernelFn prepare;  // empty for kernels with no one-time work

  KernelEntry() = default;
  KernelEntry(KernelFn invoke_fn)  // NOLINT: implicit for plain kernels
      : invoke(std::move(invoke_fn)) {}
  // Raw-pointer overload so `map[key] = some_kernel;` keeps working (a free
  // function would otherwise need two user-defined conversions).
  KernelEntry(void (*invoke_fn)(const KernelContext&))  // NOLINT: implicit
      : invoke(invoke_fn) {}
  KernelEntry(KernelFn invoke_fn, KernelFn prepare_fn)
      : invoke(std::move(invoke_fn)), prepare(std::move(prepare_fn)) {}
};

}  // namespace mlexray
