// Kernel invocation interface.
//
// A kernel computes one node's output from its activation inputs. Constant
// weights live on the node; quantization parameters travel on the tensors
// (inputs carry theirs, the interpreter pre-sets the output tensor's params
// from node.output_quant before dispatch).
//
// Contexts are prepared once per node by the ExecutionPlan (inputs/output
// pre-wired, arena attached) and reused verbatim on every invoke. Kernel
// temporaries come from ctx.scratch<T>(): arena-backed, valid until the node
// finishes, heap-free in steady state.
#pragma once

#include <functional>

#include "src/common/thread_pool.h"
#include "src/graph/node.h"
#include "src/tensor/scratch_arena.h"

namespace mlexray {

struct KernelContext {
  const Node* node = nullptr;
  std::vector<const Tensor*> inputs;  // activation inputs, in op order
  Tensor* output = nullptr;           // allocated by the interpreter
  ThreadPool* pool = nullptr;         // null => single-threaded execution
  ScratchArena* arena = nullptr;      // per-interpreter scratch storage

  const Tensor& input(std::size_t i) const {
    MLX_CHECK_LT(i, inputs.size());
    return *inputs[i];
  }

  // Arena-backed scratch, reset between nodes. Call only from the kernel's
  // entry thread, before fanning out to the pool.
  template <typename T>
  T* scratch(std::int64_t count) const {
    MLX_CHECK(arena != nullptr) << "kernel context has no scratch arena";
    return arena->allocate_array<T>(static_cast<std::size_t>(count));
  }

  // Worker slots a parallel_for_workers body may observe (>= 1).
  std::size_t worker_count() const {
    return pool != nullptr ? pool->parallelism() : 1;
  }
};

using KernelFn = std::function<void(const KernelContext&)>;

}  // namespace mlexray
