#include "src/kernels/opt_kernels.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>

#include "src/kernels/activation.h"
#include "src/kernels/conv_utils.h"
#include "src/kernels/dwconv.h"
#include "src/kernels/elementwise.h"
#include "src/kernels/gemm.h"

namespace mlexray {
namespace {

// Shared geometry for the conv-family kernels.
struct ConvShape {
  int kh, kw;
  std::int64_t in_ch, out_ch, patch;
  std::int64_t pad_h, pad_w;
};

ConvShape conv_shape(const Node& node, const Shape& is, const Shape& fs,
                     const Shape& os) {
  ConvShape s;
  s.kh = static_cast<int>(fs.dim(1));
  s.kw = static_cast<int>(fs.dim(2));
  s.in_ch = is.dim(3);
  s.out_ch = os.dim(3);
  s.patch = static_cast<std::int64_t>(s.kh) * s.kw * s.in_ch;
  s.pad_h = node.attrs.padding == Padding::kSame
                ? same_pad_before(is.dim(1), s.kh, node.attrs.stride_h, os.dim(1))
                : 0;
  s.pad_w = node.attrs.padding == Padding::kSame
                ? same_pad_before(is.dim(2), s.kw, node.attrs.stride_w, os.dim(2))
                : 0;
  return s;
}

// im2col: one row per output pixel, columns ordered (fy, fx, ic) to match the
// OHWI filter layout, so the conv becomes a row-major NT GEMM. Out-of-bounds
// taps are filled with `pad_value` (0.0f for float, the input zero point for
// int8, both of which contribute exactly zero to the accumulator). The col
// buffer comes from the interpreter's scratch arena — no heap traffic after
// the first invoke.
template <typename T>
void im2col(const KernelContext& ctx, const ConvShape& s, const Shape& is,
            const Shape& os, const T* x, std::int64_t batch_index, T* col,
            T pad_value) {
  const Node& node = *ctx.node;
  const std::int64_t out_w = os.dim(2);
  auto pack_rows = [&](std::size_t lo, std::size_t hi) {
    for (std::size_t r = lo; r < hi; ++r) {
      const std::int64_t oy = static_cast<std::int64_t>(r) / out_w;
      const std::int64_t ox = static_cast<std::int64_t>(r) % out_w;
      T* row = col + static_cast<std::int64_t>(r) * s.patch;
      for (int fy = 0; fy < s.kh; ++fy) {
        const std::int64_t iy = oy * node.attrs.stride_h - s.pad_h + fy;
        for (int fx = 0; fx < s.kw; ++fx) {
          const std::int64_t ix = ox * node.attrs.stride_w - s.pad_w + fx;
          T* dst = row + (static_cast<std::int64_t>(fy) * s.kw + fx) * s.in_ch;
          if (iy < 0 || iy >= is.dim(1) || ix < 0 || ix >= is.dim(2)) {
            if (pad_value == T{0}) {
              std::memset(dst, 0, static_cast<std::size_t>(s.in_ch) * sizeof(T));
            } else {
              std::fill(dst, dst + s.in_ch, pad_value);
            }
          } else {
            const T* src =
                x + ((batch_index * is.dim(1) + iy) * is.dim(2) + ix) * s.in_ch;
            std::memcpy(dst, src, static_cast<std::size_t>(s.in_ch) * sizeof(T));
          }
        }
      }
    }
  };
  const auto rows = static_cast<std::size_t>(os.dim(1) * os.dim(2));
  if (ctx.pool && rows >= 64) {
    ctx.pool.parallel_for(0, rows, pack_rows, /*min_chunk=*/8);
  } else {
    pack_rows(0, rows);
  }
}

// ---------------------------------------------------------------------------
// Prepare hooks: plan-time weight prepacking + requantization tables.
//
// Conv/FC weights are constants, so the GEMM B-panel layouts (and, for int8,
// the Q31 requantization tables and clamp range) are built exactly once at
// plan construction into plan-owned PreparedStorage. Steady-state invoke
// then performs no packing and no table rebuilding at all. When a kernel
// runs without a plan (ctx.prepared == nullptr, e.g. the trainer's forward
// pass) the invoke hooks below fall back to the per-call paths.
// ---------------------------------------------------------------------------

// Prepared-storage roots (POD).
struct PreparedGemmF32 {
  PackedBF32 packed;
};

struct PreparedRequant {
  const std::int32_t* multipliers = nullptr;
  const int* shifts = nullptr;
  std::int32_t act_min = -128;
  std::int32_t act_max = 127;
};

struct PreparedGemmI8 {
  PackedBI8 packed;
  PreparedRequant rq;
};

// Packs a weight matrix [n x k] (k-contiguous rows, the layout both conv
// OHWI filters and FC [out, in] weights already have) into f32 panels.
PackedBF32 pack_weights_f32(PreparedStorage& storage, std::int64_t n,
                            std::int64_t k, const float* w) {
  PackedBF32 packed;
  packed.panel_count = n / kGemmNrF32;
  if (packed.panel_count > 0) {
    float* panels = storage.allocate_array<float>(
        static_cast<std::size_t>(packed_b_f32_floats(n, k)));
    pack_b_f32(n, k, w, k, panels);
    packed.panels = panels;
  }
  return packed;
}

PackedBI8 pack_weights_i8(PreparedStorage& storage, std::int64_t n,
                          std::int64_t k, const std::int8_t* w) {
  PackedBI8 packed;
  // The pair-interleaved layout pads the last panel's columns, so every n
  // gets packed panels (no edge path).
  std::int8_t* panels = storage.allocate_array<std::int8_t>(
      static_cast<std::size_t>(packed_b_i8_bytes(n, k)));
  auto* col_sums =
      storage.allocate_array<std::int32_t>(static_cast<std::size_t>(n));
  pack_b_i8(n, k, w, k, panels, col_sums);
  packed.panels = panels;
  packed.col_sums = col_sums;
  return packed;
}

// Per-output-channel Q31 multiplier/shift tables plus the fused activation
// clamp range — everything the int8 GEMM epilogue needs, fixed at Prepare.
PreparedRequant prepare_requant_tables(PreparedStorage& storage,
                                       const Node& node,
                                       const QuantParams& in_q,
                                       const QuantParams& w_q,
                                       const QuantParams& out_q,
                                       std::int64_t out_channels) {
  auto* multipliers = storage.allocate_array<std::int32_t>(
      static_cast<std::size_t>(out_channels));
  auto* shifts =
      storage.allocate_array<int>(static_cast<std::size_t>(out_channels));
  fill_requant_tables(in_q, w_q, out_q, out_channels, multipliers, shifts);
  QuantActivationRange range = quant_activation_range(
      node.attrs.activation, out_q.scale(), out_q.zero_point());
  return {multipliers, shifts, range.min, range.max};
}

void conv2d_f32_prepare(const KernelContext& ctx) {
  const Tensor& filter = ctx.node->weights[0];
  const Shape& fs = filter.shape();
  const std::int64_t patch = fs.dim(1) * fs.dim(2) * fs.dim(3);
  auto* root = ctx.prepared->allocate_array<PreparedGemmF32>(1);
  root->packed =
      pack_weights_f32(*ctx.prepared, fs.dim(0), patch, filter.data<float>());
  ctx.prepared->set_root(root);
}

void fc_f32_prepare(const KernelContext& ctx) {
  const Tensor& weight = ctx.node->weights[0];
  auto* root = ctx.prepared->allocate_array<PreparedGemmF32>(1);
  root->packed = pack_weights_f32(*ctx.prepared, weight.shape().dim(0),
                                  weight.shape().dim(1),
                                  weight.data<float>());
  ctx.prepared->set_root(root);
}

void conv2d_i8_prepare(const KernelContext& ctx) {
  const Node& node = *ctx.node;
  const Tensor& filter = node.weights[0];
  const Shape& fs = filter.shape();
  const std::int64_t out_ch = fs.dim(0);
  const std::int64_t patch = fs.dim(1) * fs.dim(2) * fs.dim(3);
  auto* root = ctx.prepared->allocate_array<PreparedGemmI8>(1);
  root->packed = pack_weights_i8(*ctx.prepared, out_ch, patch,
                                 filter.data<std::int8_t>());
  root->rq = prepare_requant_tables(*ctx.prepared, node,
                                    ctx.input(0).quant(), filter.quant(),
                                    ctx.output->quant(), out_ch);
  ctx.prepared->set_root(root);
}

void fc_i8_prepare(const KernelContext& ctx) {
  const Node& node = *ctx.node;
  const Tensor& weight = node.weights[0];
  const std::int64_t out_dim = weight.shape().dim(0);
  auto* root = ctx.prepared->allocate_array<PreparedGemmI8>(1);
  root->packed = pack_weights_i8(*ctx.prepared, out_dim,
                                 weight.shape().dim(1),
                                 weight.data<std::int8_t>());
  root->rq = prepare_requant_tables(*ctx.prepared, node,
                                    ctx.input(0).quant(), weight.quant(),
                                    ctx.output->quant(), out_dim);
  ctx.prepared->set_root(root);
}

// Requant-tables-only prepare for the bug-emulation depthwise kernel below
// (the correct path uses the packed dwconv prepare hooks instead).
void dwconv2d_i8_requant_prepare(const KernelContext& ctx) {
  const Node& node = *ctx.node;
  const Tensor& filter = node.weights[0];
  auto* root = ctx.prepared->allocate_array<PreparedRequant>(1);
  *root = prepare_requant_tables(*ctx.prepared, node, ctx.input(0).quant(),
                                 filter.quant(), ctx.output->quant(),
                                 filter.shape().dim(3));
  ctx.prepared->set_root(root);
}

// ---------------------------------------------------------------------------
// Depthwise conv: plan-time channel-panel packing (src/kernels/dwconv.h).
// ---------------------------------------------------------------------------

struct PreparedDwI8 {
  PackedDwI8 packed;
};

DwConvShape dw_shape(const Node& node, const Shape& is, const Shape& fs,
                     const Shape& os) {
  DwConvShape s;
  s.batch = os.dim(0);
  s.in_h = is.dim(1);
  s.in_w = is.dim(2);
  s.in_ch = is.dim(3);
  s.out_h = os.dim(1);
  s.out_w = os.dim(2);
  s.out_ch = os.dim(3);
  s.kh = static_cast<int>(fs.dim(1));
  s.kw = static_cast<int>(fs.dim(2));
  s.stride_h = node.attrs.stride_h;
  s.stride_w = node.attrs.stride_w;
  s.pad_h = node.attrs.padding == Padding::kSame
                ? same_pad_before(is.dim(1), s.kh, s.stride_h, os.dim(1))
                : 0;
  s.pad_w = node.attrs.padding == Padding::kSame
                ? same_pad_before(is.dim(2), s.kw, s.stride_w, os.dim(2))
                : 0;
  s.depth_mult = s.out_ch / s.in_ch;
  return s;
}

// Builds everything the int8 inner loop consumes: pre-widened int16 weight
// panels, the fused per-channel accumulator bias (bias - in_zp * w_sum), the
// Q31 requant tables, and the activation clamp range.
PackedDwI8 build_packed_dw_i8(const Node& node, const QuantParams& in_q,
                              const QuantParams& out_q, std::int16_t* w16,
                              std::int32_t* acc_init,
                              std::int32_t* multipliers, int* shifts) {
  const Tensor& filter = node.weights[0];
  const Shape& fs = filter.shape();
  const std::int64_t taps = fs.dim(1) * fs.dim(2);
  const std::int64_t out_ch = fs.dim(3);
  // acc_init doubles as the w_sums destination, then folds bias and zp.
  pack_dw_weights_i8(taps, out_ch, filter.data<std::int8_t>(), w16, acc_init);
  const std::int32_t in_zp = in_q.zero_point();
  const std::int32_t* bias = node.weights[1].data<std::int32_t>();
  for (std::int64_t c = 0; c < out_ch; ++c) {
    acc_init[c] = bias[c] - in_zp * acc_init[c];
  }
  fill_requant_tables(in_q, filter.quant(), out_q, out_ch, multipliers,
                      shifts);
  QuantActivationRange range = quant_activation_range(
      node.attrs.activation, out_q.scale(), out_q.zero_point());
  PackedDwI8 packed;
  packed.weights = w16;
  packed.acc_init = acc_init;
  packed.multipliers = multipliers;
  packed.shifts = shifts;
  packed.in_zp = in_zp;
  packed.out_zp = out_q.zero_point();
  packed.act_min = range.min;
  packed.act_max = range.max;
  return packed;
}

void dwconv2d_i8_pack_prepare(const KernelContext& ctx) {
  const Node& node = *ctx.node;
  const Shape& fs = node.weights[0].shape();
  const std::int64_t taps = fs.dim(1) * fs.dim(2);
  const std::int64_t out_ch = fs.dim(3);
  PreparedStorage& storage = *ctx.prepared;
  auto* root = storage.allocate_array<PreparedDwI8>(1);
  auto* w16 = storage.allocate_array<std::int16_t>(
      static_cast<std::size_t>(taps * out_ch));
  auto* acc_init =
      storage.allocate_array<std::int32_t>(static_cast<std::size_t>(out_ch));
  auto* multipliers =
      storage.allocate_array<std::int32_t>(static_cast<std::size_t>(out_ch));
  auto* shifts =
      storage.allocate_array<int>(static_cast<std::size_t>(out_ch));
  root->packed =
      build_packed_dw_i8(node, ctx.input(0).quant(), ctx.output->quant(), w16,
                         acc_init, multipliers, shifts);
  ctx.prepared->set_root(root);
}

// ---------------------------------------------------------------------------
// Float optimized kernels.
// ---------------------------------------------------------------------------

void conv2d_f32_opt(const KernelContext& ctx) {
  const Tensor& in = ctx.input(0);
  const Node& node = *ctx.node;
  const Tensor& filter = node.weights[0];
  const float* bias = node.weights[1].data<float>();
  const Shape& is = in.shape();
  const Shape& os = ctx.output->shape();
  const ConvShape s = conv_shape(node, is, filter.shape(), os);
  const float* x = in.data<float>();
  const float* w = filter.data<float>();
  float* y = ctx.output->data<float>();
  const std::int64_t rows = os.dim(1) * os.dim(2);
  const std::int64_t batch = os.dim(0);
  // All batch images go into one col matrix so the whole conv is a single
  // GEMM (B gets packed once, row partitioning sees batch * rows rows).
  float* col = ctx.scratch<float>(batch * rows * s.patch);
  for (std::int64_t n = 0; n < batch; ++n) {
    im2col(ctx, s, is, os, x, n, col + n * rows * s.patch, 0.0f);
  }
  const PreparedGemmF32* prep =
      ctx.prepared != nullptr ? ctx.prepared->root<PreparedGemmF32>() : nullptr;
  gemm_f32_nt(batch * rows, s.out_ch, s.patch, col, s.patch, w, s.patch, bias,
              node.attrs.activation, y, s.out_ch, ctx.pool, ctx.arena,
              prep != nullptr ? &prep->packed : nullptr);
}

// Depthwise conv: channel-vectorized kernel family (src/kernels/dwconv.h).
// The f32 filter is panel-shaped as stored, so there is no prepare hook and
// no copy — the kernel streams the node's weights directly. Accumulation
// per channel stays in the reference kernel's order (bias first, taps in
// (fy, fx) order, skipped when out of bounds), so float results match the
// reference kernel bitwise.
void dwconv2d_f32_opt(const KernelContext& ctx) {
  const Tensor& in = ctx.input(0);
  const Node& node = *ctx.node;
  const Tensor& filter = node.weights[0];
  const DwConvShape s =
      dw_shape(node, in.shape(), filter.shape(), ctx.output->shape());
  // The filter is used in place (already panel-shaped), so the plan and
  // no-plan paths are identical.
  const PackedDwF32 packed{filter.data<float>(),
                           node.weights[1].data<float>()};
  dwconv2d_f32(s, in.data<float>(), packed, node.attrs.activation,
               ctx.output->data<float>(), ctx.pool);
}

void fc_f32_opt(const KernelContext& ctx) {
  const Tensor& in = ctx.input(0);
  const Node& node = *ctx.node;
  const Tensor& weight = node.weights[0];
  const float* bias = node.weights[1].data<float>();
  const std::int64_t batch = in.shape().dim(0);
  const std::int64_t in_dim = weight.shape().dim(1);
  const std::int64_t out_dim = weight.shape().dim(0);
  const PreparedGemmF32* prep =
      ctx.prepared != nullptr ? ctx.prepared->root<PreparedGemmF32>() : nullptr;
  gemm_f32_nt(batch, out_dim, in_dim, in.data<float>(), in_dim,
              weight.data<float>(), in_dim, bias, node.attrs.activation,
              ctx.output->data<float>(), out_dim, ctx.pool, ctx.arena,
              prep != nullptr ? &prep->packed : nullptr);
}

// Pad with whole-row memcpy (contrast with the reference element loop).
template <typename T>
void pad_fast(const KernelContext& ctx) {
  const Tensor& in = ctx.input(0);
  const Node& node = *ctx.node;
  const Shape& is = in.shape();
  const Shape& os = ctx.output->shape();
  T pad_value = 0;
  if constexpr (std::is_same_v<T, std::int8_t>) {
    if (ctx.output->quant().quantized()) {
      pad_value = static_cast<T>(ctx.output->quant().zero_point());
    }
  }
  T* y = ctx.output->data<T>();
  const T* x = in.data<T>();
  const std::int64_t ch = is.dim(3);
  const std::size_t in_row_bytes = static_cast<std::size_t>(is.dim(2) * ch) * sizeof(T);
  std::fill(y, y + os.num_elements(), pad_value);
  for (std::int64_t n = 0; n < is.dim(0); ++n) {
    for (std::int64_t h = 0; h < is.dim(1); ++h) {
      T* dst = y + (((n * os.dim(1) + h + node.attrs.pad_top) * os.dim(2)) +
                    node.attrs.pad_left) * ch;
      const T* src = x + (n * is.dim(1) + h) * is.dim(2) * ch;
      std::memcpy(dst, src, in_row_bytes);
    }
  }
}

// ---------------------------------------------------------------------------
// Quantized optimized kernels: integer-only fixed-point requantization.
// ---------------------------------------------------------------------------

void conv2d_i8_opt(const KernelContext& ctx) {
  const Tensor& in = ctx.input(0);
  const Node& node = *ctx.node;
  const Tensor& filter = node.weights[0];
  const Tensor& bias = node.weights[1];
  Tensor& out = *ctx.output;
  const Shape& is = in.shape();
  const Shape& os = out.shape();
  const ConvShape s = conv_shape(node, is, filter.shape(), os);
  const auto in_zp = static_cast<std::int8_t>(in.quant().zero_point());
  const std::int32_t out_zp = out.quant().zero_point();
  const PreparedGemmI8* prep =
      ctx.prepared != nullptr ? ctx.prepared->root<PreparedGemmI8>() : nullptr;
  GemmQuant q;
  q.a_zero_point = in.quant().zero_point();
  q.bias = bias.data<std::int32_t>();
  q.out_zero_point = out_zp;
  if (prep != nullptr) {
    q.multipliers = prep->rq.multipliers;
    q.shifts = prep->rq.shifts;
    q.act_min = prep->rq.act_min;
    q.act_max = prep->rq.act_max;
  } else {
    RequantView rq = prepare_requant_scratch(ctx, in.quant(), filter.quant(),
                                             out.quant(), s.out_ch);
    QuantActivationRange range = quant_activation_range(
        node.attrs.activation, out.quant().scale(), out_zp);
    q.multipliers = rq.multipliers;
    q.shifts = rq.shifts;
    q.act_min = range.min;
    q.act_max = range.max;
  }
  const std::int8_t* x = in.data<std::int8_t>();
  const std::int8_t* w = filter.data<std::int8_t>();
  std::int8_t* y = out.data<std::int8_t>();
  const std::int64_t rows = os.dim(1) * os.dim(2);
  const std::int64_t batch = os.dim(0);
  // Padded taps hold the input zero point, so (tap - zp) * w contributes 0 —
  // identical to the reference kernel's skipped out-of-bounds taps.
  auto* col = ctx.scratch<std::int8_t>(batch * rows * s.patch);
  for (std::int64_t n = 0; n < batch; ++n) {
    im2col(ctx, s, is, os, x, n, col + n * rows * s.patch, in_zp);
  }
  gemm_i8_nt(batch * rows, s.out_ch, s.patch, col, s.patch, w, s.patch, q, y,
             s.out_ch, ctx.pool, prep != nullptr ? &prep->packed : nullptr);
}

// Correct int8 path: raw widening dot product over the plan-packed int16
// panels, per-channel Q31 requant — bit-identical across the AVX2 /
// generic-vector / scalar tiers (integer math is exact and order-free).
void dwconv2d_i8_opt(const KernelContext& ctx) {
  const Tensor& in = ctx.input(0);
  const Node& node = *ctx.node;
  const Tensor& filter = node.weights[0];
  const Shape& fs = filter.shape();
  Tensor& out = *ctx.output;
  const DwConvShape s = dw_shape(node, in.shape(), fs, out.shape());
  PackedDwI8 packed;
  const PreparedDwI8* prep =
      ctx.prepared != nullptr ? ctx.prepared->root<PreparedDwI8>() : nullptr;
  if (prep != nullptr) {
    packed = prep->packed;
  } else {
    // No plan: build the panels and tables in per-call scratch.
    const std::int64_t taps = fs.dim(1) * fs.dim(2);
    auto* w16 = ctx.scratch<std::int16_t>(taps * s.out_ch);
    auto* acc_init = ctx.scratch<std::int32_t>(s.out_ch);
    auto* multipliers = ctx.scratch<std::int32_t>(s.out_ch);
    auto* shifts = ctx.scratch<int>(s.out_ch);
    packed = build_packed_dw_i8(node, in.quant(), out.quant(), w16, acc_init,
                                multipliers, shifts);
  }
  dwconv2d_i8(s, in.data<std::int8_t>(), packed, out.data<std::int8_t>(),
              ctx.pool);
}

// Re-creates the production defect the paper's Fig 6 localises, in the
// specialized 3x3 fast path only (as in the production kernels the paper
// debugged): the accumulator is held in int16 and the requantization shift
// is applied with the wrong sign, pinning outputs to the clamp rails from
// the first 3x3 DepthwiseConv2D layer onward. 1x1 depthwise ops (e.g.
// folded scale/shift layers) take the generic path and are unaffected.
// Stays on the PR-2 scalar loops so the emulation is byte-for-byte what it
// was when the Fig 5/6 harnesses were calibrated against it.
void dwconv2d_i8_buggy(const KernelContext& ctx) {
  const Tensor& in = ctx.input(0);
  const Node& node = *ctx.node;
  const Tensor& filter = node.weights[0];
  const Tensor& bias = node.weights[1];
  Tensor& out = *ctx.output;
  const Shape& is = in.shape();
  const Shape& os = out.shape();
  const ConvShape s = conv_shape(node, is, filter.shape(), os);
  const std::int64_t ch = s.out_ch;
  const std::int64_t dm = s.out_ch / s.in_ch;
  const std::int32_t in_zp = in.quant().zero_point();
  const std::int32_t out_zp = out.quant().zero_point();
  PreparedRequant rq;
  if (const PreparedRequant* prep =
          ctx.prepared != nullptr ? ctx.prepared->root<PreparedRequant>()
                                  : nullptr) {
    rq = *prep;
  } else {
    RequantView view = prepare_requant_scratch(ctx, in.quant(),
                                               filter.quant(), out.quant(),
                                               ch);
    QuantActivationRange range = quant_activation_range(
        node.attrs.activation, out.quant().scale(), out_zp);
    rq = {view.multipliers, view.shifts, range.min, range.max};
  }
  QuantActivationRange range{rq.act_min, rq.act_max};
  const std::int8_t* x = in.data<std::int8_t>();
  const std::int8_t* w = filter.data<std::int8_t>();
  const std::int32_t* b = bias.data<std::int32_t>();
  std::int8_t* y = out.data<std::int8_t>();
  // The defect lives in the specialized 3x3 fast path only.
  const bool fast_path_bug = s.kh == 3 && s.kw == 3;
  const std::int64_t rows = os.dim(0) * os.dim(1);
  auto body = [&](std::size_t lo, std::size_t hi) {
    for (std::size_t row = lo; row < hi; ++row) {
      const std::int64_t n = static_cast<std::int64_t>(row) / os.dim(1);
      const std::int64_t oy = static_cast<std::int64_t>(row) % os.dim(1);
      for (std::int64_t ox = 0; ox < os.dim(2); ++ox) {
        std::int8_t* yp = y + ((n * os.dim(1) + oy) * os.dim(2) + ox) * ch;
        for (std::int64_t c = 0; c < ch; ++c) {
          std::int32_t acc32 = 0;
          std::int16_t acc16 = 0;
          for (int fy = 0; fy < s.kh; ++fy) {
            const std::int64_t iy = oy * node.attrs.stride_h - s.pad_h + fy;
            if (iy < 0 || iy >= is.dim(1)) continue;
            for (int fx = 0; fx < s.kw; ++fx) {
              const std::int64_t ix = ox * node.attrs.stride_w - s.pad_w + fx;
              if (ix < 0 || ix >= is.dim(2)) continue;
              const std::int32_t x_q =
                  x[((n * is.dim(1) + iy) * is.dim(2) + ix) * s.in_ch +
                    c / dm];
              const std::int32_t w_q = w[(fy * s.kw + fx) * ch + c];
              if (fast_path_bug) {
                // BUG part 1: int16 accumulator wraps on real activations.
                acc16 = static_cast<std::int16_t>(acc16 + (x_q - in_zp) * w_q);
              } else {
                acc32 += (x_q - in_zp) * w_q;
              }
            }
          }
          std::int32_t scaled;
          if (fast_path_bug) {
            // BUG part 2: the requantization applies the power-of-two shift
            // with the wrong sign (an exponent-overflow defect), so every
            // non-trivial accumulator saturates to a clamp rail — the
            // "invalid or constant output" signature of §4.4.
            acc16 = static_cast<std::int16_t>(acc16 + b[c]);
            const int wrong_shift = -rq.shifts[static_cast<std::size_t>(c)];
            std::int64_t wide =
                static_cast<std::int64_t>(saturating_rounding_doubling_high_mul(
                    acc16, rq.multipliers[static_cast<std::size_t>(c)]))
                << std::min(wrong_shift, 30);
            scaled = static_cast<std::int32_t>(std::clamp<std::int64_t>(
                wide, std::numeric_limits<std::int32_t>::min(),
                std::numeric_limits<std::int32_t>::max()));
          } else {
            scaled = multiply_by_quantized_multiplier(
                acc32 + b[c], rq.multipliers[static_cast<std::size_t>(c)],
                rq.shifts[static_cast<std::size_t>(c)]);
          }
          std::int32_t q = std::clamp(scaled + out_zp, range.min, range.max);
          yp[c] = static_cast<std::int8_t>(q);
        }
      }
    }
  };
  if (ctx.pool && rows >= 8) {
    ctx.pool.parallel_for(0, static_cast<std::size_t>(rows), body,
                           /*min_chunk=*/2);
  } else {
    body(0, static_cast<std::size_t>(rows));
  }
}

void fc_i8_opt(const KernelContext& ctx) {
  const Tensor& in = ctx.input(0);
  const Node& node = *ctx.node;
  const Tensor& weight = node.weights[0];
  const Tensor& bias = node.weights[1];
  Tensor& out = *ctx.output;
  const std::int64_t batch = in.shape().dim(0);
  const std::int64_t in_dim = weight.shape().dim(1);
  const std::int64_t out_dim = weight.shape().dim(0);
  const PreparedGemmI8* prep =
      ctx.prepared != nullptr ? ctx.prepared->root<PreparedGemmI8>() : nullptr;
  GemmQuant q;
  q.a_zero_point = in.quant().zero_point();
  q.bias = bias.data<std::int32_t>();
  q.out_zero_point = out.quant().zero_point();
  if (prep != nullptr) {
    q.multipliers = prep->rq.multipliers;
    q.shifts = prep->rq.shifts;
    q.act_min = prep->rq.act_min;
    q.act_max = prep->rq.act_max;
  } else {
    RequantView rq = prepare_requant_scratch(ctx, in.quant(), weight.quant(),
                                             out.quant(), out_dim);
    QuantActivationRange range = quant_activation_range(
        node.attrs.activation, out.quant().scale(), out.quant().zero_point());
    q.multipliers = rq.multipliers;
    q.shifts = rq.shifts;
    q.act_min = range.min;
    q.act_max = range.max;
  }
  gemm_i8_nt(batch, out_dim, in_dim, in.data<std::int8_t>(), in_dim,
             weight.data<std::int8_t>(), in_dim, q, out.data<std::int8_t>(),
             out_dim, ctx.pool, prep != nullptr ? &prep->packed : nullptr);
}

// Integer-only average pool (sum + rounded integer division); assumes the
// quantizer keeps input and output scales identical for pools, which it does.
void avgpool_i8_opt(const KernelContext& ctx) {
  const Tensor& in = ctx.input(0);
  const Node& node = *ctx.node;
  Tensor& out = *ctx.output;
  const Shape& is = in.shape();
  const Shape& os = out.shape();
  const int fh = node.attrs.filter_h;
  const int fw = node.attrs.filter_w;
  const std::int64_t ch = is.dim(3);
  const std::int64_t pad_h = node.attrs.padding == Padding::kSame
                                 ? same_pad_before(is.dim(1), fh, node.attrs.stride_h, os.dim(1))
                                 : 0;
  const std::int64_t pad_w = node.attrs.padding == Padding::kSame
                                 ? same_pad_before(is.dim(2), fw, node.attrs.stride_w, os.dim(2))
                                 : 0;
  const std::int8_t* x = in.data<std::int8_t>();
  std::int8_t* y = out.data<std::int8_t>();
  for (std::int64_t n = 0; n < os.dim(0); ++n) {
    for (std::int64_t oy = 0; oy < os.dim(1); ++oy) {
      for (std::int64_t ox = 0; ox < os.dim(2); ++ox) {
        for (std::int64_t c = 0; c < ch; ++c) {
          std::int32_t sum = 0;
          int count = 0;
          for (int fy = 0; fy < fh; ++fy) {
            const std::int64_t iy = oy * node.attrs.stride_h - pad_h + fy;
            if (iy < 0 || iy >= is.dim(1)) continue;
            for (int fx = 0; fx < fw; ++fx) {
              const std::int64_t ix = ox * node.attrs.stride_w - pad_w + fx;
              if (ix < 0 || ix >= is.dim(2)) continue;
              sum += x[((n * is.dim(1) + iy) * is.dim(2) + ix) * ch + c];
              ++count;
            }
          }
          // Rounded division toward nearest.
          std::int32_t q = count > 0
                               ? (sum >= 0 ? (sum + count / 2) / count
                                           : (sum - count / 2) / count)
                               : 0;
          y[((n * os.dim(1) + oy) * os.dim(2) + ox) * ch + c] = clamp_to_i8(q);
        }
      }
    }
  }
}

// --- Quantize / Dequantize (the e2e int8 path's endpoints) ------------------
//
// The shared scalar kernels (shared_kernels.cc) stay as the reference; these
// vectorized variants override them in the optimized resolver. Rounding
// matches the reference's std::lround (half away from zero) bit-for-bit:
// q = trunc(y) nudged by 1 when |y - trunc(y)| >= 0.5 — both trunc and the
// fractional part are exact in f32 (Sterbenz), so the only semantic
// difference is saturation for |real/scale| >= 2^31, where the reference's
// long->int32 narrowing wraps and these kernels clamp (the sane behavior;
// tests/test_kernels.cc asserts exact opt-vs-ref parity at odd lengths on
// the representable range).

// Exact std::lround(y) for |y| < 2^31, branch-free enough to vectorize.
inline std::int32_t lround_away_f32(float y) {
  auto t = static_cast<std::int32_t>(y);  // trunc toward zero
  const float frac = y - static_cast<float>(t);
  if (frac >= 0.5f) return t + 1;
  if (frac <= -0.5f) return t - 1;
  return t;
}

void quantize_i8_opt(const KernelContext& ctx) {
  const Tensor& in = ctx.input(0);
  Tensor& out = *ctx.output;
  const float scale = out.quant().scale();
  const std::int32_t zp = out.quant().zero_point();
  const float* src = in.data<float>();
  std::int8_t* dst = out.data<std::int8_t>();
  const std::int64_t n = in.num_elements();
  std::int64_t i = 0;
#if defined(__GNUC__) || defined(__clang__)
  using v8f = float __attribute__((vector_size(32), aligned(4)));
  using v8i = std::int32_t __attribute__((vector_size(32), aligned(4)));
  using v8b = std::int8_t __attribute__((vector_size(8), aligned(1)));
  const v8f vscale = (v8f){} + scale;
  // |q| is clamped to [-128, 127] after the zero-point shift, so clamping
  // the real-valued quotient to +-512 first changes nothing and keeps the
  // trunc convert in int32 range.
  const v8f vlo = (v8f){} - 512.0f;
  const v8f vhi = (v8f){} + 512.0f;
  const v8f vhalf = (v8f){} + 0.5f;
  const v8f vneg_half = (v8f){} - 0.5f;
  const v8i vzp = (v8i){} + zp;
  const v8i vqmin = (v8i){} - 128;
  const v8i vqmax = (v8i){} + 127;
  for (; i + 8 <= n; i += 8) {
    v8f y;
    __builtin_memcpy(&y, src + i, sizeof(y));
    y /= vscale;
    y = y > vhi ? vhi : y;
    y = y < vlo ? vlo : y;
    v8i t = __builtin_convertvector(y, v8i);
    const v8f frac = y - __builtin_convertvector(t, v8f);
    // Vector comparisons yield -1/0 lanes: subtracting (frac >= 0.5) adds 1
    // where true, adding (frac <= -0.5) subtracts 1 — lround's half-away.
    v8i q = t - (v8i)(frac >= vhalf) + (v8i)(frac <= vneg_half) + vzp;
    q = q > vqmax ? vqmax : q;
    q = q < vqmin ? vqmin : q;
    const v8b packed = __builtin_convertvector(q, v8b);
    __builtin_memcpy(dst + i, &packed, sizeof(packed));
  }
#endif
  for (; i < n; ++i) {
    float y = src[i] / scale;
    y = std::clamp(y, -512.0f, 512.0f);
    const std::int32_t q = lround_away_f32(y) + zp;
    dst[i] = static_cast<std::int8_t>(std::clamp<std::int32_t>(q, -128, 127));
  }
}

void dequantize_i8_opt(const KernelContext& ctx) {
  const Tensor& in = ctx.input(0);
  const float scale = in.quant().scale();
  const std::int32_t zp = in.quant().zero_point();
  const std::int8_t* src = in.data<std::int8_t>();
  float* dst = ctx.output->data<float>();
  const std::int64_t n = in.num_elements();
  std::int64_t i = 0;
#if defined(__GNUC__) || defined(__clang__)
  using v8f = float __attribute__((vector_size(32), aligned(4)));
  using v8i = std::int32_t __attribute__((vector_size(32), aligned(4)));
  using v8b = std::int8_t __attribute__((vector_size(8), aligned(1)));
  const v8i vzp = (v8i){} + zp;
  const v8f vscale = (v8f){} + scale;
  for (; i + 8 <= n; i += 8) {
    v8b b;
    __builtin_memcpy(&b, src + i, sizeof(b));
    const v8i q = __builtin_convertvector(b, v8i) - vzp;
    // Same per-element arithmetic as the reference (int subtract, convert,
    // one multiply) — bit-exact.
    const v8f f = __builtin_convertvector(q, v8f) * vscale;
    __builtin_memcpy(dst + i, &f, sizeof(f));
  }
#endif
  for (; i < n; ++i) {
    dst[i] = scale * static_cast<float>(src[i] - zp);
  }
}

}  // namespace

void register_opt_float_kernels(KernelMap& map) {
  map[{OpType::kConv2D, false}] = {conv2d_f32_opt, conv2d_f32_prepare};
  map[{OpType::kDepthwiseConv2D, false}] = dwconv2d_f32_opt;
  map[{OpType::kFullyConnected, false}] = {fc_f32_opt, fc_f32_prepare};
  map[{OpType::kPad, false}] = pad_fast<float>;
}

void register_opt_quant_kernels(KernelMap& map, bool emulate_dwconv_bug) {
  map[{OpType::kConv2D, true}] = {conv2d_i8_opt, conv2d_i8_prepare};
  if (emulate_dwconv_bug) {
    map[{OpType::kDepthwiseConv2D, true}] = {dwconv2d_i8_buggy,
                                             dwconv2d_i8_requant_prepare};
  } else {
    map[{OpType::kDepthwiseConv2D, true}] = {dwconv2d_i8_opt,
                                             dwconv2d_i8_pack_prepare};
  }
  map[{OpType::kFullyConnected, true}] = {fc_i8_opt, fc_i8_prepare};
  map[{OpType::kAvgPool2D, true}] = avgpool_i8_opt;
  map[{OpType::kPad, true}] = pad_fast<std::int8_t>;
  map[{OpType::kQuantize, true}] = quantize_i8_opt;
  map[{OpType::kDequantize, true}] = dequantize_i8_opt;
  // Int8 elementwise/reduction family (Add/Sub/Mul/Mean + LUT activations):
  // plan-time Q31 prep, tiered vector epilogue (src/kernels/elementwise.h).
  register_elementwise_i8_kernels(map);
}

}  // namespace mlexray
