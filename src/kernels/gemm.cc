#include "src/kernels/gemm.h"

#include <algorithm>
#include <atomic>
#include <cstring>

#if defined(__AVX2__) || defined(__AVX512F__)
#include <immintrin.h>
#endif

#include "src/kernels/activation.h"
#include "src/kernels/fixed_point.h"

namespace mlexray {
namespace {

// Register tile extents. The float tile is MR x 8: with B packed
// 8-interleaved the inner j loop vectorizes to one 8-wide FMA per row on
// AVX2 (or two 4-wide mul/adds on plain SSE), and the MR * 8 accumulators
// stay in vector registers. MR is a template parameter so short matrices
// (fully-connected with batch 1) still get fully unrolled code. The int8
// tile keeps NR = 4: its accumulators are 32-bit so 4 columns fill an xmm
// lane after widening.
constexpr std::int64_t kMr = 4;
constexpr std::int64_t kNrF = kGemmNrF32;
constexpr std::int64_t kNrI = kGemmNrI8;

std::atomic<std::uint64_t> g_b_pack_events{0};

// Below this many multiply-accumulates the parallel_for rendezvous costs more
// than the arithmetic; run on the calling thread.
constexpr std::int64_t kMinFlopsForPool = 64 * 1024;

// MR x kNrF tile over a packed B panel: bp holds k groups of kNrF column
// values, contiguous per k step. SIMD runs across the kNrF output columns, so
// each output's per-element accumulation order (bias first, k ascending) is
// exactly the reference kernels' — results agree with the reference path to
// within FMA-contraction rounding. Accumulators are named vector variables,
// not arrays: GCC reliably keeps them in ymm registers, where an indexed
// array spills to the stack and throughput drops ~6x.
#if defined(__GNUC__) || defined(__clang__)
#define MLX_GEMM_VECTOR_TILE 1
using v8f = float __attribute__((vector_size(32)));
// Unaligned-load flavour for B panels and bias columns.
using v8f_u = float __attribute__((vector_size(32), aligned(4)));

template <int MR>
inline void tile_f32_packed(std::int64_t k, const float* a, std::int64_t lda,
                            const float* bp, const float* bias, Activation act,
                            float* c, std::int64_t ldc) {
  const v8f bias_v = *reinterpret_cast<const v8f_u*>(bias);
  v8f acc0 = bias_v, acc1 = bias_v, acc2 = bias_v, acc3 = bias_v;
  const float* a0 = a;
  const float* a1 = a + (MR > 1 ? lda : 0);
  const float* a2 = a + (MR > 2 ? 2 * lda : 0);
  const float* a3 = a + (MR > 3 ? 3 * lda : 0);
  (void)a1; (void)a2; (void)a3;
  (void)acc1; (void)acc2; (void)acc3;
  for (std::int64_t kk = 0; kk < k; ++kk) {
    const v8f bv = *reinterpret_cast<const v8f_u*>(bp + kk * kNrF);
    acc0 += a0[kk] * bv;
    if constexpr (MR > 1) acc1 += a1[kk] * bv;
    if constexpr (MR > 2) acc2 += a2[kk] * bv;
    if constexpr (MR > 3) acc3 += a3[kk] * bv;
  }
  float out[MR][kNrF];
  __builtin_memcpy(out[0], &acc0, sizeof(v8f));
  if constexpr (MR > 1) __builtin_memcpy(out[1], &acc1, sizeof(v8f));
  if constexpr (MR > 2) __builtin_memcpy(out[2], &acc2, sizeof(v8f));
  if constexpr (MR > 3) __builtin_memcpy(out[3], &acc3, sizeof(v8f));
  for (int i = 0; i < MR; ++i) {
    for (std::int64_t j = 0; j < kNrF; ++j) {
      c[i * ldc + j] = apply_activation_f32(out[i][j], act);
    }
  }
}
#else
template <int MR>
inline void tile_f32_packed(std::int64_t k, const float* a, std::int64_t lda,
                            const float* bp, const float* bias, Activation act,
                            float* c, std::int64_t ldc) {
  float acc[MR][kNrF];
  const float* ar[MR];
  for (int i = 0; i < MR; ++i) {
    ar[i] = a + i * lda;
    for (std::int64_t j = 0; j < kNrF; ++j) acc[i][j] = bias[j];
  }
  for (std::int64_t kk = 0; kk < k; ++kk) {
    const float* bv = bp + kk * kNrF;
    for (int i = 0; i < MR; ++i) {
      const float av = ar[i][kk];
      for (std::int64_t j = 0; j < kNrF; ++j) acc[i][j] += av * bv[j];
    }
  }
  for (int i = 0; i < MR; ++i) {
    for (std::int64_t j = 0; j < kNrF; ++j) {
      c[i * ldc + j] = apply_activation_f32(acc[i][j], act);
    }
  }
}
#endif

// Generic tile over unpacked B (any mr <= kMr, nr <= kNrF). Used for the
// matrix-vector shapes that skip packing and for the n edge.
inline void tile_f32_edge(std::int64_t mr, std::int64_t nr, std::int64_t k,
                          const float* a, std::int64_t lda, const float* b,
                          std::int64_t ldb, const float* bias, Activation act,
                          float* c, std::int64_t ldc) {
  float acc[kMr][kNrF];
  for (std::int64_t i = 0; i < mr; ++i) {
    for (std::int64_t j = 0; j < nr; ++j) acc[i][j] = bias[j];
  }
  for (std::int64_t kk = 0; kk < k; ++kk) {
    for (std::int64_t i = 0; i < mr; ++i) {
      const float av = a[i * lda + kk];
      for (std::int64_t j = 0; j < nr; ++j) acc[i][j] += av * b[j * ldb + kk];
    }
  }
  for (std::int64_t i = 0; i < mr; ++i) {
    for (std::int64_t j = 0; j < nr; ++j) {
      c[i * ldc + j] = apply_activation_f32(acc[i][j], act);
    }
  }
}

// Unpacked full-width tile for m too small to amortize packing (e.g.
// fully-connected with batch 1): B rows are walked directly, with the four
// accumulator chains per row giving ILP that a naive dot product lacks.
template <int MR>
inline void tile_f32_rows(std::int64_t k, const float* a, std::int64_t lda,
                          const float* b, std::int64_t ldb, const float* bias,
                          Activation act, float* c, std::int64_t ldc) {
  float acc[MR][kNrI];
  const float* ar[MR];
  for (int i = 0; i < MR; ++i) {
    ar[i] = a + i * lda;
    for (std::int64_t j = 0; j < kNrI; ++j) acc[i][j] = bias[j];
  }
  const float* b0 = b;
  const float* b1 = b + ldb;
  const float* b2 = b + 2 * ldb;
  const float* b3 = b + 3 * ldb;
  for (std::int64_t kk = 0; kk < k; ++kk) {
    const float bv0 = b0[kk], bv1 = b1[kk], bv2 = b2[kk], bv3 = b3[kk];
    for (int i = 0; i < MR; ++i) {
      const float av = ar[i][kk];
      acc[i][0] += av * bv0;
      acc[i][1] += av * bv1;
      acc[i][2] += av * bv2;
      acc[i][3] += av * bv3;
    }
  }
  for (int i = 0; i < MR; ++i) {
    for (std::int64_t j = 0; j < kNrI; ++j) {
      c[i * ldc + j] = apply_activation_f32(acc[i][j], act);
    }
  }
}

// Matrix-vector fast path (m == 1, the batch-1 fully-connected shape): eight
// independent accumulator chains hide the FMA latency a single dot-product
// chain serializes on. Order per output is still bias-first, k-ascending.
// The auto-vectorizer must stay away: it fuses the chains into vector lanes
// fed by insert-loads from eight strided streams, which measures >2x slower
// than the plain scalar chains. fp-contract is restated because the optimize
// attribute resets it, and FMA contraction must match the reference kernels'
// for bitwise parity.
#if defined(__GNUC__) && !defined(__clang__)
__attribute__((
    optimize("no-tree-vectorize,no-tree-slp-vectorize,fp-contract=fast")))
#endif
inline void tile_f32_1x8(std::int64_t k, const float* a, const float* b,
                         std::int64_t ldb, const float* bias, Activation act,
                         float* c) {
  float acc0 = bias[0], acc1 = bias[1], acc2 = bias[2], acc3 = bias[3];
  float acc4 = bias[4], acc5 = bias[5], acc6 = bias[6], acc7 = bias[7];
  const float* b0 = b;
  const float* b1 = b + ldb;
  const float* b2 = b + 2 * ldb;
  const float* b3 = b + 3 * ldb;
  const float* b4 = b + 4 * ldb;
  const float* b5 = b + 5 * ldb;
  const float* b6 = b + 6 * ldb;
  const float* b7 = b + 7 * ldb;
  for (std::int64_t kk = 0; kk < k; ++kk) {
    const float av = a[kk];
    acc0 += av * b0[kk];
    acc1 += av * b1[kk];
    acc2 += av * b2[kk];
    acc3 += av * b3[kk];
    acc4 += av * b4[kk];
    acc5 += av * b5[kk];
    acc6 += av * b6[kk];
    acc7 += av * b7[kk];
  }
  c[0] = apply_activation_f32(acc0, act);
  c[1] = apply_activation_f32(acc1, act);
  c[2] = apply_activation_f32(acc2, act);
  c[3] = apply_activation_f32(acc3, act);
  c[4] = apply_activation_f32(acc4, act);
  c[5] = apply_activation_f32(acc5, act);
  c[6] = apply_activation_f32(acc6, act);
  c[7] = apply_activation_f32(acc7, act);
}

template <int MR>
inline void tile_i8(std::int64_t k, const std::int8_t* a, std::int64_t lda,
                    const std::int8_t* b, std::int64_t ldb, std::int32_t a_zp,
                    std::int32_t acc[kMr][kNrI]) {
  const std::int8_t* ar[MR];
  for (int i = 0; i < MR; ++i) ar[i] = a + i * lda;
  const std::int8_t* b0 = b;
  const std::int8_t* b1 = b + ldb;
  const std::int8_t* b2 = b + 2 * ldb;
  const std::int8_t* b3 = b + 3 * ldb;
  for (std::int64_t kk = 0; kk < k; ++kk) {
    const std::int32_t bv0 = b0[kk], bv1 = b1[kk];
    const std::int32_t bv2 = b2[kk], bv3 = b3[kk];
    for (int i = 0; i < MR; ++i) {
      const std::int32_t av = ar[i][kk] - a_zp;
      acc[i][0] += av * bv0;
      acc[i][1] += av * bv1;
      acc[i][2] += av * bv2;
      acc[i][3] += av * bv3;
    }
  }
}

inline void tile_i8_edge(std::int64_t mr, std::int64_t nr, std::int64_t k,
                         const std::int8_t* a, std::int64_t lda,
                         const std::int8_t* b, std::int64_t ldb,
                         std::int32_t a_zp, std::int32_t acc[kMr][kNrI]) {
  for (std::int64_t kk = 0; kk < k; ++kk) {
    for (std::int64_t i = 0; i < mr; ++i) {
      const std::int32_t av = a[i * lda + kk] - a_zp;
      for (std::int64_t j = 0; j < nr; ++j) {
        acc[i][j] += av * static_cast<std::int32_t>(b[j * ldb + kk]);
      }
    }
  }
}

// Widening dot-product microkernels over a prepacked int8 panel: MR rows of
// A against the panel's kNrI contiguous column runs. Integer accumulation is
// exact and order-free, so unlike the float tiles SIMD runs *along k*: each
// vector lane holds a partial sum that is folded at the end. Products stay
// raw (no zero-point subtraction) — the caller corrects with the prepacked
// column sums in the epilogue.
//
// Tiered by ISA: the x86 variants widen int8 to int16 and use the fused
// multiply-pairs-and-add (vpmaddwd) — one instruction retires 32 (zmm) or 16
// (ymm) multiply-accumulates, which the compiler will not synthesize from
// scalar source (it auto-vectorizes the int32 form through the slower
// vpmulld). The generic GNU-vector variant covers other ISAs; plain scalar
// covers other compilers. Overflow: an int8*int8 product is at most 2^14 and
// a vpmaddwd pair at most 2^15, so int32 lane partials are safe until
// k > 2^16 pairs — far beyond any shape this runtime sees.
#if defined(__AVX512BW__) && defined(__AVX512F__) && defined(__AVX512VL__)

template <int MR>
inline void tile_i8_packed(std::int64_t k, const std::int8_t* a,
                           std::int64_t lda, const std::int8_t* bp,
                           std::int32_t acc[][kNrI]) {
  __m512i vacc[MR][kNrI];
  for (int i = 0; i < MR; ++i) {
    for (int j = 0; j < kNrI; ++j) vacc[i][j] = _mm512_setzero_si512();
  }
  std::int64_t kk = 0;
  for (; kk + 32 <= k; kk += 32) {
    __m512i bv[kNrI];
    for (int j = 0; j < kNrI; ++j) {
      bv[j] = _mm512_cvtepi8_epi16(_mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(bp + j * k + kk)));
    }
    for (int i = 0; i < MR; ++i) {
      const __m512i av = _mm512_cvtepi8_epi16(_mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(a + i * lda + kk)));
      for (int j = 0; j < kNrI; ++j) {
        vacc[i][j] =
            _mm512_add_epi32(vacc[i][j], _mm512_madd_epi16(av, bv[j]));
      }
    }
  }
  if (kk < k) {
    // Masked final block: lanes past k load as 0 and contribute 0 to the
    // dot product, so no scalar tail remains (k % 32 would otherwise cost
    // more than the vector body on shapes like k = 144).
    const __mmask32 mask =
        static_cast<__mmask32>((1ULL << (k - kk)) - 1ULL);
    __m512i bv[kNrI];
    for (int j = 0; j < kNrI; ++j) {
      bv[j] = _mm512_cvtepi8_epi16(
          _mm256_maskz_loadu_epi8(mask, bp + j * k + kk));
    }
    for (int i = 0; i < MR; ++i) {
      const __m512i av =
          _mm512_cvtepi8_epi16(_mm256_maskz_loadu_epi8(mask, a + i * lda + kk));
      for (int j = 0; j < kNrI; ++j) {
        vacc[i][j] =
            _mm512_add_epi32(vacc[i][j], _mm512_madd_epi16(av, bv[j]));
      }
    }
  }
  for (int i = 0; i < MR; ++i) {
    for (int j = 0; j < kNrI; ++j) {
      acc[i][j] += _mm512_reduce_add_epi32(vacc[i][j]);
    }
  }
}

// MR up to kMr in one call: 16 zmm accumulators + 5 live sources fit the 32
// AVX-512 registers.
inline void panel_i8_packed(std::int64_t mr, std::int64_t k,
                            const std::int8_t* a, std::int64_t lda,
                            const std::int8_t* bp,
                            std::int32_t acc[kMr][kNrI]) {
  switch (mr) {
    case 4: tile_i8_packed<4>(k, a, lda, bp, acc); break;
    case 3: tile_i8_packed<3>(k, a, lda, bp, acc); break;
    case 2: tile_i8_packed<2>(k, a, lda, bp, acc); break;
    default: tile_i8_packed<1>(k, a, lda, bp, acc); break;
  }
}

#elif defined(__AVX2__)

template <int MR>  // 1 or 2: 8 ymm accumulators + 6 sources fit 16 registers
inline void tile_i8_packed(std::int64_t k, const std::int8_t* a,
                           std::int64_t lda, const std::int8_t* bp,
                           std::int32_t acc[][kNrI]) {
  __m256i vacc[MR][kNrI];
  for (int i = 0; i < MR; ++i) {
    for (int j = 0; j < kNrI; ++j) vacc[i][j] = _mm256_setzero_si256();
  }
  std::int64_t kk = 0;
  for (; kk + 16 <= k; kk += 16) {
    __m256i bv[kNrI];
    for (int j = 0; j < kNrI; ++j) {
      bv[j] = _mm256_cvtepi8_epi16(_mm_loadu_si128(
          reinterpret_cast<const __m128i*>(bp + j * k + kk)));
    }
    for (int i = 0; i < MR; ++i) {
      const __m256i av = _mm256_cvtepi8_epi16(_mm_loadu_si128(
          reinterpret_cast<const __m128i*>(a + i * lda + kk)));
      for (int j = 0; j < kNrI; ++j) {
        vacc[i][j] =
            _mm256_add_epi32(vacc[i][j], _mm256_madd_epi16(av, bv[j]));
      }
    }
  }
  for (int i = 0; i < MR; ++i) {
    for (int j = 0; j < kNrI; ++j) {
      const __m128i lo = _mm256_castsi256_si128(vacc[i][j]);
      const __m128i hi = _mm256_extracti128_si256(vacc[i][j], 1);
      __m128i sum = _mm_add_epi32(lo, hi);
      sum = _mm_hadd_epi32(sum, sum);
      sum = _mm_hadd_epi32(sum, sum);
      acc[i][j] += _mm_cvtsi128_si32(sum);
    }
  }
  for (; kk < k; ++kk) {
    for (int i = 0; i < MR; ++i) {
      const std::int32_t av = a[i * lda + kk];
      for (int j = 0; j < kNrI; ++j) {
        acc[i][j] += av * static_cast<std::int32_t>(bp[j * k + kk]);
      }
    }
  }
}

inline void panel_i8_packed(std::int64_t mr, std::int64_t k,
                            const std::int8_t* a, std::int64_t lda,
                            const std::int8_t* bp,
                            std::int32_t acc[kMr][kNrI]) {
  std::int64_t i = 0;
  for (; i + 2 <= mr; i += 2) {
    tile_i8_packed<2>(k, a + i * lda, lda, bp, &acc[i]);
  }
  if (i < mr) tile_i8_packed<1>(k, a + i * lda, lda, bp, &acc[i]);
}

#elif defined(__GNUC__) || defined(__clang__)

// Generic SIMD via GCC vector extensions (NEON etc.): int16 multiplies over
// 16-lane blocks, widened into 8-lane int32 accumulators.
using v16s8 = std::int8_t __attribute__((vector_size(16), aligned(1)));
using v16s16 = std::int16_t __attribute__((vector_size(32)));
using v8s16 = std::int16_t __attribute__((vector_size(16)));
using v8s32 = std::int32_t __attribute__((vector_size(32)));

inline v16s16 widen_i8x16(const std::int8_t* p) {
  v16s8 v;
  __builtin_memcpy(&v, p, sizeof(v));
  return __builtin_convertvector(v, v16s16);
}

inline v8s32 madd_i16(v16s16 x, v16s16 y) {
  const v16s16 prod = x * y;  // exact: |int8*int8| <= 2^14
  const v8s16 lo = __builtin_shufflevector(prod, prod, 0, 1, 2, 3, 4, 5, 6, 7);
  const v8s16 hi =
      __builtin_shufflevector(prod, prod, 8, 9, 10, 11, 12, 13, 14, 15);
  return __builtin_convertvector(lo, v8s32) + __builtin_convertvector(hi, v8s32);
}

inline std::int32_t fold_v8s32(v8s32 v) {
  std::int32_t lanes[8];
  __builtin_memcpy(lanes, &v, sizeof(v));
  return lanes[0] + lanes[1] + lanes[2] + lanes[3] + lanes[4] + lanes[5] +
         lanes[6] + lanes[7];
}

template <int MR>  // 1 or 2
inline void tile_i8_packed(std::int64_t k, const std::int8_t* a,
                           std::int64_t lda, const std::int8_t* bp,
                           std::int32_t acc[][kNrI]) {
  v8s32 vacc[2][kNrI] = {};
  std::int64_t kk = 0;
  for (; kk + 16 <= k; kk += 16) {
    v16s16 bv[kNrI];
    for (int j = 0; j < kNrI; ++j) bv[j] = widen_i8x16(bp + j * k + kk);
    for (int i = 0; i < MR; ++i) {
      const v16s16 av = widen_i8x16(a + i * lda + kk);
      for (int j = 0; j < kNrI; ++j) vacc[i][j] += madd_i16(av, bv[j]);
    }
  }
  for (int i = 0; i < MR; ++i) {
    for (int j = 0; j < kNrI; ++j) acc[i][j] += fold_v8s32(vacc[i][j]);
  }
  for (; kk < k; ++kk) {
    for (int i = 0; i < MR; ++i) {
      const std::int32_t av = a[i * lda + kk];
      for (int j = 0; j < kNrI; ++j) {
        acc[i][j] += av * static_cast<std::int32_t>(bp[j * k + kk]);
      }
    }
  }
}

inline void panel_i8_packed(std::int64_t mr, std::int64_t k,
                            const std::int8_t* a, std::int64_t lda,
                            const std::int8_t* bp,
                            std::int32_t acc[kMr][kNrI]) {
  std::int64_t i = 0;
  for (; i + 2 <= mr; i += 2) {
    tile_i8_packed<2>(k, a + i * lda, lda, bp, &acc[i]);
  }
  if (i < mr) tile_i8_packed<1>(k, a + i * lda, lda, bp, &acc[i]);
}

#else

// Scalar fallback: the register-blocked tile over the packed column runs
// (zero a_zp — correction happens in the epilogue).
inline void panel_i8_packed(std::int64_t mr, std::int64_t k,
                            const std::int8_t* a, std::int64_t lda,
                            const std::int8_t* bp,
                            std::int32_t acc[kMr][kNrI]) {
  switch (mr) {
    case 4: tile_i8<4>(k, a, lda, bp, k, 0, acc); break;
    case 3: tile_i8<3>(k, a, lda, bp, k, 0, acc); break;
    case 2: tile_i8<2>(k, a, lda, bp, k, 0, acc); break;
    default: tile_i8<1>(k, a, lda, bp, k, 0, acc); break;
  }
}

#endif

}  // namespace

std::int64_t packed_b_f32_floats(std::int64_t n, std::int64_t k) {
  return (n / kNrF) * k * kNrF;
}

void pack_b_f32(std::int64_t n, std::int64_t k, const float* b,
                std::int64_t ldb, float* panels) {
  const std::int64_t panel_count = n / kNrF;
  for (std::int64_t panel = 0; panel < panel_count; ++panel) {
    const float* bsrc = b + panel * kNrF * ldb;
    float* pdst = panels + panel * k * kNrF;
    for (std::int64_t kk = 0; kk < k; ++kk) {
      for (std::int64_t j = 0; j < kNrF; ++j) {
        pdst[kk * kNrF + j] = bsrc[j * ldb + kk];
      }
    }
  }
}

std::int64_t packed_b_i8_bytes(std::int64_t n, std::int64_t k) {
  return (n / kNrI) * kNrI * k;
}

void pack_b_i8(std::int64_t n, std::int64_t k, const std::int8_t* b,
               std::int64_t ldb, std::int8_t* panels,
               std::int32_t* col_sums) {
  const std::int64_t packed_cols = (n / kNrI) * kNrI;
  for (std::int64_t j = 0; j < packed_cols; ++j) {
    std::memcpy(panels + j * k, b + j * ldb, static_cast<std::size_t>(k));
  }
  for (std::int64_t j = 0; j < n; ++j) {
    std::int32_t sum = 0;
    const std::int8_t* row = b + j * ldb;
    for (std::int64_t kk = 0; kk < k; ++kk) sum += row[kk];
    col_sums[j] = sum;
  }
}

std::uint64_t gemm_b_pack_events() {
  return g_b_pack_events.load(std::memory_order_relaxed);
}

void gemm_f32_nt(std::int64_t m, std::int64_t n, std::int64_t k,
                 const float* a, std::int64_t lda, const float* b,
                 std::int64_t ldb, const float* bias, Activation act, float* c,
                 std::int64_t ldc, ThreadPool* pool, ScratchArena* arena,
                 const PackedBF32* packed) {
  if (m <= 0 || n <= 0) return;
  // Prepacked panels (plan-time weight packing) skip the per-call repack
  // entirely. Otherwise repack B once per call when enough rows reuse it
  // (the n * k copy is wasted on matrix-vector shapes like batch-1
  // fully-connected).
  const float* panels = nullptr;
  if (packed != nullptr && packed->panel_count > 0) {
    panels = packed->panels;
  } else if (arena != nullptr && n >= kNrF && m >= 8) {
    float* p = arena->allocate_array<float>(packed_b_f32_floats(n, k));
    pack_b_f32(n, k, b, ldb, p);
    panels = p;
    g_b_pack_events.fetch_add(1, std::memory_order_relaxed);
  }
  const std::int64_t m_tiles = (m + kMr - 1) / kMr;
  auto row_block = [&](std::size_t tile_lo, std::size_t tile_hi) {
    for (std::size_t t = tile_lo; t < tile_hi; ++t) {
      const std::int64_t i0 = static_cast<std::int64_t>(t) * kMr;
      const std::int64_t mr = std::min(kMr, m - i0);
      const float* at = a + i0 * lda;
      float* ct = c + i0 * ldc;
      std::int64_t j0 = 0;
      if (panels != nullptr) {
        for (; j0 + kNrF <= n; j0 += kNrF) {
          const float* bp = panels + (j0 / kNrF) * k * kNrF;
          switch (mr) {
            case 4: tile_f32_packed<4>(k, at, lda, bp, bias + j0, act, ct + j0, ldc); break;
            case 3: tile_f32_packed<3>(k, at, lda, bp, bias + j0, act, ct + j0, ldc); break;
            case 2: tile_f32_packed<2>(k, at, lda, bp, bias + j0, act, ct + j0, ldc); break;
            default: tile_f32_packed<1>(k, at, lda, bp, bias + j0, act, ct + j0, ldc); break;
          }
        }
      } else if (mr == 1) {
        for (; j0 + kNrF <= n; j0 += kNrF) {
          tile_f32_1x8(k, at, b + j0 * ldb, ldb, bias + j0, act, ct + j0);
        }
      } else {
        for (; j0 + kNrI <= n; j0 += kNrI) {
          const float* bt = b + j0 * ldb;
          switch (mr) {
            case 4: tile_f32_rows<4>(k, at, lda, bt, ldb, bias + j0, act, ct + j0, ldc); break;
            case 3: tile_f32_rows<3>(k, at, lda, bt, ldb, bias + j0, act, ct + j0, ldc); break;
            case 2: tile_f32_rows<2>(k, at, lda, bt, ldb, bias + j0, act, ct + j0, ldc); break;
            default: tile_f32_rows<1>(k, at, lda, bt, ldb, bias + j0, act, ct + j0, ldc); break;
          }
        }
      }
      for (; j0 < n; j0 += kNrF) {
        tile_f32_edge(mr, std::min(kNrF, n - j0), k, at, lda, b + j0 * ldb,
                      ldb, bias + j0, act, ct + j0, ldc);
      }
    }
  };
  if (pool != nullptr && m_tiles > 1 && m * n * k >= kMinFlopsForPool) {
    pool->parallel_for(0, static_cast<std::size_t>(m_tiles), row_block);
  } else {
    row_block(0, static_cast<std::size_t>(m_tiles));
  }
}

void gemm_i8_nt(std::int64_t m, std::int64_t n, std::int64_t k,
                const std::int8_t* a, std::int64_t lda, const std::int8_t* b,
                std::int64_t ldb, const GemmQuant& q, std::int8_t* c,
                std::int64_t ldc, ThreadPool* pool, const PackedBI8* packed) {
  if (m <= 0 || n <= 0) return;
  const bool use_packed = packed != nullptr && packed->col_sums != nullptr;
  const std::int64_t m_tiles = (m + kMr - 1) / kMr;
  auto row_block = [&](std::size_t tile_lo, std::size_t tile_hi) {
    for (std::size_t t = tile_lo; t < tile_hi; ++t) {
      const std::int64_t i0 = static_cast<std::int64_t>(t) * kMr;
      const std::int64_t mr = std::min(kMr, m - i0);
      const std::int8_t* at = a + i0 * lda;
      std::int8_t* ct = c + i0 * ldc;
      for (std::int64_t j0 = 0; j0 < n; j0 += kNrI) {
        const std::int64_t nr = std::min(kNrI, n - j0);
        std::int32_t acc[kMr][kNrI] = {};
        // The packed path accumulates *raw* products (SIMD along k, zero
        // point folded in below via the prepacked column sums); the unpacked
        // path subtracts the zero point per element as before. Integer math
        // is exact, so both orders produce identical accumulators.
        bool raw = false;
        if (use_packed && nr == kNrI && j0 / kNrI < packed->panel_count) {
          panel_i8_packed(mr, k, at, lda, packed->panels + j0 * k, acc);
          raw = true;
        } else if (use_packed) {
          // Edge columns: unpacked rows, but still raw accumulation so the
          // epilogue below is uniform across the row.
          tile_i8_edge(mr, nr, k, at, lda, b + j0 * ldb, ldb, /*a_zp=*/0,
                       acc);
          raw = true;
        } else if (nr == kNrI) {
          const std::int8_t* bt = b + j0 * ldb;
          switch (mr) {
            case 4: tile_i8<4>(k, at, lda, bt, ldb, q.a_zero_point, acc); break;
            case 3: tile_i8<3>(k, at, lda, bt, ldb, q.a_zero_point, acc); break;
            case 2: tile_i8<2>(k, at, lda, bt, ldb, q.a_zero_point, acc); break;
            default: tile_i8<1>(k, at, lda, bt, ldb, q.a_zero_point, acc); break;
          }
        } else {
          tile_i8_edge(mr, nr, k, at, lda, b + j0 * ldb, ldb, q.a_zero_point,
                       acc);
        }
        for (std::int64_t i = 0; i < mr; ++i) {
          for (std::int64_t j = 0; j < nr; ++j) {
            const std::size_t col = static_cast<std::size_t>(j0 + j);
            std::int32_t sum = acc[i][j];
            if (raw) sum -= q.a_zero_point * packed->col_sums[col];
            std::int32_t scaled = multiply_by_quantized_multiplier(
                sum + q.bias[col], q.multipliers[col], q.shifts[col]);
            std::int32_t v = scaled + q.out_zero_point;
            v = std::clamp(v, q.act_min, q.act_max);
            ct[i * ldc + j0 + j] = static_cast<std::int8_t>(v);
          }
        }
      }
    }
  };
  if (pool != nullptr && m_tiles > 1 && m * n * k >= kMinFlopsForPool) {
    pool->parallel_for(0, static_cast<std::size_t>(m_tiles), row_block);
  } else {
    row_block(0, static_cast<std::size_t>(m_tiles));
  }
}

}  // namespace mlexray
