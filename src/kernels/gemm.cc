#include "src/kernels/gemm.h"

#include <algorithm>
#include <atomic>
#include <cstring>

#if defined(__AVX2__) || defined(__AVX512F__)
#include <immintrin.h>
#endif

#include <cstdint>

#include "src/common/fault_injection.h"
#include "src/kernels/activation.h"
#include "src/kernels/fixed_point.h"

namespace mlexray {
namespace {

// Register tile extents. The float tile is MR x 8: with B packed
// 8-interleaved the inner j loop vectorizes to one 8-wide FMA per row on
// AVX2 (or two 4-wide mul/adds on plain SSE), and the MR * 8 accumulators
// stay in vector registers. MR is a template parameter so short matrices
// (fully-connected with batch 1) still get fully unrolled code. The packed
// int8 tile is MR x 16: one int32 accumulator lane per output column across
// the pair-interleaved panel; the unpacked fallback keeps the scalar 4x4
// register blocking.
constexpr std::int64_t kMr = 4;
constexpr std::int64_t kNrF = kGemmNrF32;
// Unpacked int8 register tile width (raw B rows, no-plan fallback); the
// *packed* int8 panel width is kGemmNrI8 (16).
constexpr std::int64_t kNrI = 4;
constexpr std::int64_t kNrIP = kGemmNrI8;

std::atomic<std::uint64_t> g_b_pack_events{0};

// Below this many multiply-accumulates the parallel_for rendezvous costs more
// than the arithmetic; run on the calling thread.
constexpr std::int64_t kMinFlopsForPool = 64 * 1024;

// MR x kNrF tile over a packed B panel: bp holds k groups of kNrF column
// values, contiguous per k step. SIMD runs across the kNrF output columns, so
// each output's per-element accumulation order (bias first, k ascending) is
// exactly the reference kernels' — results agree with the reference path to
// within FMA-contraction rounding. Accumulators are named vector variables,
// not arrays: GCC reliably keeps them in ymm registers, where an indexed
// array spills to the stack and throughput drops ~6x.
#if defined(__GNUC__) || defined(__clang__)
#define MLX_GEMM_VECTOR_TILE 1
using v8f = float __attribute__((vector_size(32)));
// Unaligned-load flavour for B panels and bias columns.
using v8f_u = float __attribute__((vector_size(32), aligned(4)));

template <int MR>
inline void tile_f32_packed(std::int64_t k, const float* a, std::int64_t lda,
                            const float* bp, const float* bias, Activation act,
                            float* c, std::int64_t ldc) {
  const v8f bias_v = *reinterpret_cast<const v8f_u*>(bias);
  v8f acc0 = bias_v, acc1 = bias_v, acc2 = bias_v, acc3 = bias_v;
  const float* a0 = a;
  const float* a1 = a + (MR > 1 ? lda : 0);
  const float* a2 = a + (MR > 2 ? 2 * lda : 0);
  const float* a3 = a + (MR > 3 ? 3 * lda : 0);
  (void)a1; (void)a2; (void)a3;
  (void)acc1; (void)acc2; (void)acc3;
  for (std::int64_t kk = 0; kk < k; ++kk) {
    const v8f bv = *reinterpret_cast<const v8f_u*>(bp + kk * kNrF);
    acc0 += a0[kk] * bv;
    if constexpr (MR > 1) acc1 += a1[kk] * bv;
    if constexpr (MR > 2) acc2 += a2[kk] * bv;
    if constexpr (MR > 3) acc3 += a3[kk] * bv;
  }
  float out[MR][kNrF];
  __builtin_memcpy(out[0], &acc0, sizeof(v8f));
  if constexpr (MR > 1) __builtin_memcpy(out[1], &acc1, sizeof(v8f));
  if constexpr (MR > 2) __builtin_memcpy(out[2], &acc2, sizeof(v8f));
  if constexpr (MR > 3) __builtin_memcpy(out[3], &acc3, sizeof(v8f));
  for (int i = 0; i < MR; ++i) {
    for (std::int64_t j = 0; j < kNrF; ++j) {
      c[i * ldc + j] = apply_activation_f32(out[i][j], act);
    }
  }
}
#else
template <int MR>
inline void tile_f32_packed(std::int64_t k, const float* a, std::int64_t lda,
                            const float* bp, const float* bias, Activation act,
                            float* c, std::int64_t ldc) {
  float acc[MR][kNrF];
  const float* ar[MR];
  for (int i = 0; i < MR; ++i) {
    ar[i] = a + i * lda;
    for (std::int64_t j = 0; j < kNrF; ++j) acc[i][j] = bias[j];
  }
  for (std::int64_t kk = 0; kk < k; ++kk) {
    const float* bv = bp + kk * kNrF;
    for (int i = 0; i < MR; ++i) {
      const float av = ar[i][kk];
      for (std::int64_t j = 0; j < kNrF; ++j) acc[i][j] += av * bv[j];
    }
  }
  for (int i = 0; i < MR; ++i) {
    for (std::int64_t j = 0; j < kNrF; ++j) {
      c[i * ldc + j] = apply_activation_f32(acc[i][j], act);
    }
  }
}
#endif

// Generic tile over unpacked B (any mr <= kMr, nr <= kNrF). Used for the
// matrix-vector shapes that skip packing and for the n edge.
inline void tile_f32_edge(std::int64_t mr, std::int64_t nr, std::int64_t k,
                          const float* a, std::int64_t lda, const float* b,
                          std::int64_t ldb, const float* bias, Activation act,
                          float* c, std::int64_t ldc) {
  float acc[kMr][kNrF];
  for (std::int64_t i = 0; i < mr; ++i) {
    for (std::int64_t j = 0; j < nr; ++j) acc[i][j] = bias[j];
  }
  for (std::int64_t kk = 0; kk < k; ++kk) {
    for (std::int64_t i = 0; i < mr; ++i) {
      const float av = a[i * lda + kk];
      for (std::int64_t j = 0; j < nr; ++j) acc[i][j] += av * b[j * ldb + kk];
    }
  }
  for (std::int64_t i = 0; i < mr; ++i) {
    for (std::int64_t j = 0; j < nr; ++j) {
      c[i * ldc + j] = apply_activation_f32(acc[i][j], act);
    }
  }
}

// Unpacked full-width tile for m too small to amortize packing (e.g.
// fully-connected with batch 1): B rows are walked directly, with the four
// accumulator chains per row giving ILP that a naive dot product lacks.
template <int MR>
inline void tile_f32_rows(std::int64_t k, const float* a, std::int64_t lda,
                          const float* b, std::int64_t ldb, const float* bias,
                          Activation act, float* c, std::int64_t ldc) {
  float acc[MR][kNrI];
  const float* ar[MR];
  for (int i = 0; i < MR; ++i) {
    ar[i] = a + i * lda;
    for (std::int64_t j = 0; j < kNrI; ++j) acc[i][j] = bias[j];
  }
  const float* b0 = b;
  const float* b1 = b + ldb;
  const float* b2 = b + 2 * ldb;
  const float* b3 = b + 3 * ldb;
  for (std::int64_t kk = 0; kk < k; ++kk) {
    const float bv0 = b0[kk], bv1 = b1[kk], bv2 = b2[kk], bv3 = b3[kk];
    for (int i = 0; i < MR; ++i) {
      const float av = ar[i][kk];
      acc[i][0] += av * bv0;
      acc[i][1] += av * bv1;
      acc[i][2] += av * bv2;
      acc[i][3] += av * bv3;
    }
  }
  for (int i = 0; i < MR; ++i) {
    for (std::int64_t j = 0; j < kNrI; ++j) {
      c[i * ldc + j] = apply_activation_f32(acc[i][j], act);
    }
  }
}

// Matrix-vector fast path (m == 1, the batch-1 fully-connected shape): eight
// independent accumulator chains hide the FMA latency a single dot-product
// chain serializes on. Order per output is still bias-first, k-ascending.
// The auto-vectorizer must stay away: it fuses the chains into vector lanes
// fed by insert-loads from eight strided streams, which measures >2x slower
// than the plain scalar chains. fp-contract is restated because the optimize
// attribute resets it, and FMA contraction must match the reference kernels'
// for bitwise parity.
#if defined(__GNUC__) && !defined(__clang__)
__attribute__((
    optimize("no-tree-vectorize,no-tree-slp-vectorize,fp-contract=fast")))
#endif
inline void tile_f32_1x8(std::int64_t k, const float* a, const float* b,
                         std::int64_t ldb, const float* bias, Activation act,
                         float* c) {
  float acc0 = bias[0], acc1 = bias[1], acc2 = bias[2], acc3 = bias[3];
  float acc4 = bias[4], acc5 = bias[5], acc6 = bias[6], acc7 = bias[7];
  const float* b0 = b;
  const float* b1 = b + ldb;
  const float* b2 = b + 2 * ldb;
  const float* b3 = b + 3 * ldb;
  const float* b4 = b + 4 * ldb;
  const float* b5 = b + 5 * ldb;
  const float* b6 = b + 6 * ldb;
  const float* b7 = b + 7 * ldb;
  for (std::int64_t kk = 0; kk < k; ++kk) {
    const float av = a[kk];
    acc0 += av * b0[kk];
    acc1 += av * b1[kk];
    acc2 += av * b2[kk];
    acc3 += av * b3[kk];
    acc4 += av * b4[kk];
    acc5 += av * b5[kk];
    acc6 += av * b6[kk];
    acc7 += av * b7[kk];
  }
  c[0] = apply_activation_f32(acc0, act);
  c[1] = apply_activation_f32(acc1, act);
  c[2] = apply_activation_f32(acc2, act);
  c[3] = apply_activation_f32(acc3, act);
  c[4] = apply_activation_f32(acc4, act);
  c[5] = apply_activation_f32(acc5, act);
  c[6] = apply_activation_f32(acc6, act);
  c[7] = apply_activation_f32(acc7, act);
}

template <int MR>
inline void tile_i8(std::int64_t k, const std::int8_t* a, std::int64_t lda,
                    const std::int8_t* b, std::int64_t ldb, std::int32_t a_zp,
                    std::int32_t acc[kMr][kNrI]) {
  const std::int8_t* ar[MR];
  for (int i = 0; i < MR; ++i) ar[i] = a + i * lda;
  const std::int8_t* b0 = b;
  const std::int8_t* b1 = b + ldb;
  const std::int8_t* b2 = b + 2 * ldb;
  const std::int8_t* b3 = b + 3 * ldb;
  for (std::int64_t kk = 0; kk < k; ++kk) {
    const std::int32_t bv0 = b0[kk], bv1 = b1[kk];
    const std::int32_t bv2 = b2[kk], bv3 = b3[kk];
    for (int i = 0; i < MR; ++i) {
      const std::int32_t av = ar[i][kk] - a_zp;
      acc[i][0] += av * bv0;
      acc[i][1] += av * bv1;
      acc[i][2] += av * bv2;
      acc[i][3] += av * bv3;
    }
  }
}

inline void tile_i8_edge(std::int64_t mr, std::int64_t nr, std::int64_t k,
                         const std::int8_t* a, std::int64_t lda,
                         const std::int8_t* b, std::int64_t ldb,
                         std::int32_t a_zp, std::int32_t acc[kMr][kNrI]) {
  for (std::int64_t kk = 0; kk < k; ++kk) {
    for (std::int64_t i = 0; i < mr; ++i) {
      const std::int32_t av = a[i * lda + kk] - a_zp;
      for (std::int64_t j = 0; j < nr; ++j) {
        acc[i][j] += av * static_cast<std::int32_t>(b[j * ldb + kk]);
      }
    }
  }
}

// Pair-broadcast microkernels over a prepacked int8 panel: MR rows of A
// against one pair-interleaved panel of kNrIP (16) output columns. The
// panel's k2-major layout puts 16 columns x 2 consecutive k values (int16)
// in each 64-byte group — exactly one vpmaddwd B operand — and the matching
// A operand is a broadcast 32-bit (a[2k], a[2k+1]) pair, so a single
// instruction retires 32 multiply-accumulates with *one int32 accumulator
// lane per output column*: no horizontal reduction anywhere, which is what
// makes small-k GEMMs (MobileNet's 1x1 pointwise convs, k = channels) fast
// rather than reduce-bound. Column padding is zero-filled at pack time, so
// the last panel needs no scalar edge and an odd k pairs the final element
// with an explicit zero on the A side (never reading a[k]).
//
// Tiered by ISA: AVX-512BW (one 64-byte madd per k pair), AVX2 (two
// 32-byte madds), generic GNU vectors (exact int16 products widened and
// summed per pair), plain scalar. Integer accumulation is exact and
// order-free, so all tiers are bit-identical. Overflow: an int8*int8
// product is at most 2^14 and a pair at most 2^15, so int32 lanes are safe
// until k > 2^16 — far beyond any shape this runtime sees.

// The broadcast A operand: two consecutive activations as packed int16s.
// `full == false` zeroes the high half for the odd-k tail.
inline std::int32_t a_pair_i8(const std::int8_t* a, std::int64_t kk,
                              bool full) {
  const auto lo = static_cast<std::int32_t>(a[kk]);
  const std::int32_t hi = full ? static_cast<std::int32_t>(a[kk + 1]) : 0;
  return (lo & 0xFFFF) | (hi << 16);
}

#if defined(__AVX512BW__) && defined(__AVX512F__)

template <int MR>
inline void tile_i8_pairs(std::int64_t k, const std::int8_t* a,
                          std::int64_t lda, const std::int16_t* bp,
                          std::int32_t acc_out[][kNrIP]) {
  __m512i acc[MR];
  for (int i = 0; i < MR; ++i) acc[i] = _mm512_setzero_si512();
  const std::int64_t k2 = k / 2;
  for (std::int64_t p = 0; p < k2; ++p) {
    const __m512i bv = _mm512_loadu_si512(bp + p * 2 * kNrIP);
    for (int i = 0; i < MR; ++i) {
      const __m512i av =
          _mm512_set1_epi32(a_pair_i8(a + i * lda, 2 * p, true));
      acc[i] = _mm512_add_epi32(acc[i], _mm512_madd_epi16(av, bv));
    }
  }
  if (k & 1) {
    const __m512i bv = _mm512_loadu_si512(bp + k2 * 2 * kNrIP);
    for (int i = 0; i < MR; ++i) {
      const __m512i av =
          _mm512_set1_epi32(a_pair_i8(a + i * lda, k - 1, false));
      acc[i] = _mm512_add_epi32(acc[i], _mm512_madd_epi16(av, bv));
    }
  }
  for (int i = 0; i < MR; ++i) {
    _mm512_storeu_si512(acc_out[i], acc[i]);
  }
}

#elif defined(__AVX2__)

template <int MR>
inline void tile_i8_pairs(std::int64_t k, const std::int8_t* a,
                          std::int64_t lda, const std::int16_t* bp,
                          std::int32_t acc_out[][kNrIP]) {
  __m256i acc[MR][2];
  for (int i = 0; i < MR; ++i) {
    acc[i][0] = _mm256_setzero_si256();
    acc[i][1] = _mm256_setzero_si256();
  }
  const std::int64_t k2 = k / 2;
  auto step = [&](std::int64_t p, bool full, std::int64_t kk) {
    const __m256i bv0 = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(bp + p * 2 * kNrIP));
    const __m256i bv1 = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(bp + p * 2 * kNrIP + kNrIP));
    for (int i = 0; i < MR; ++i) {
      const __m256i av = _mm256_set1_epi32(a_pair_i8(a + i * lda, kk, full));
      acc[i][0] = _mm256_add_epi32(acc[i][0], _mm256_madd_epi16(av, bv0));
      acc[i][1] = _mm256_add_epi32(acc[i][1], _mm256_madd_epi16(av, bv1));
    }
  };
  for (std::int64_t p = 0; p < k2; ++p) step(p, true, 2 * p);
  if (k & 1) step(k2, false, k - 1);
  for (int i = 0; i < MR; ++i) {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc_out[i]), acc[i][0]);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc_out[i] + 8),
                        acc[i][1]);
  }
}

#elif defined(__GNUC__) || defined(__clang__)

// Generic SIMD via GCC vector extensions (NEON etc.): exact int16 products
// per pair (|int8 * int8| <= 2^14), widened per column and summed into the
// 8-lane int32 accumulator each 16-int16 block owns.
using v16s16_p = std::int16_t __attribute__((vector_size(32), aligned(2)));
using v8s16_p = std::int16_t __attribute__((vector_size(16)));
using v8s32_p = std::int32_t __attribute__((vector_size(32)));

template <int MR>
inline void tile_i8_pairs(std::int64_t k, const std::int8_t* a,
                          std::int64_t lda, const std::int16_t* bp,
                          std::int32_t acc_out[][kNrIP]) {
  v8s32_p acc[MR][2] = {};
  const std::int64_t k2 = k / 2;
  auto step = [&](std::int64_t p, bool full, std::int64_t kk) {
    v16s16_p bv[2];
    __builtin_memcpy(&bv[0], bp + p * 2 * kNrIP, sizeof(bv[0]));
    __builtin_memcpy(&bv[1], bp + p * 2 * kNrIP + kNrIP, sizeof(bv[1]));
    for (int i = 0; i < MR; ++i) {
      const auto lo = static_cast<std::int16_t>(a[i * lda + kk]);
      const std::int16_t hi =
          full ? static_cast<std::int16_t>(a[i * lda + kk + 1])
               : std::int16_t{0};
      const v16s16_p vlo = (v16s16_p){} + lo;
      const v16s16_p vhi = (v16s16_p){} + hi;
      const v16s16_p av = __builtin_shufflevector(
          vlo, vhi, 0, 16, 1, 17, 2, 18, 3, 19, 4, 20, 5, 21, 6, 22, 7, 23);
      for (int h = 0; h < 2; ++h) {
        const v16s16_p prod = av * bv[h];  // exact in int16
        const v8s16_p even = __builtin_shufflevector(prod, prod, 0, 2, 4, 6,
                                                     8, 10, 12, 14);
        const v8s16_p odd = __builtin_shufflevector(prod, prod, 1, 3, 5, 7,
                                                    9, 11, 13, 15);
        acc[i][h] += __builtin_convertvector(even, v8s32_p) +
                     __builtin_convertvector(odd, v8s32_p);
      }
    }
  };
  for (std::int64_t p = 0; p < k2; ++p) step(p, true, 2 * p);
  if (k & 1) step(k2, false, k - 1);
  for (int i = 0; i < MR; ++i) {
    __builtin_memcpy(acc_out[i], &acc[i][0], sizeof(acc[i][0]));
    __builtin_memcpy(acc_out[i] + 8, &acc[i][1], sizeof(acc[i][1]));
  }
}

#else

template <int MR>
inline void tile_i8_pairs(std::int64_t k, const std::int8_t* a,
                          std::int64_t lda, const std::int16_t* bp,
                          std::int32_t acc_out[][kNrIP]) {
  for (int i = 0; i < MR; ++i) {
    for (std::int64_t j = 0; j < kNrIP; ++j) acc_out[i][j] = 0;
  }
  const std::int64_t k2 = k / 2;
  for (int i = 0; i < MR; ++i) {
    for (std::int64_t p = 0; p < k2; ++p) {
      const std::int32_t a0 = a[i * lda + 2 * p];
      const std::int32_t a1 = a[i * lda + 2 * p + 1];
      const std::int16_t* bq = bp + p * 2 * kNrIP;
      for (std::int64_t j = 0; j < kNrIP; ++j) {
        acc_out[i][j] += a0 * bq[2 * j] + a1 * bq[2 * j + 1];
      }
    }
    if (k & 1) {
      const std::int32_t a0 = a[i * lda + k - 1];
      const std::int16_t* bq = bp + k2 * 2 * kNrIP;
      for (std::int64_t j = 0; j < kNrIP; ++j) {
        acc_out[i][j] += a0 * bq[2 * j];
      }
    }
  }
}

#endif

inline void panel_i8_pairs(std::int64_t mr, std::int64_t k,
                           const std::int8_t* a, std::int64_t lda,
                           const std::int16_t* bp,
                           std::int32_t acc[kMr][kNrIP]) {
  switch (mr) {
    case 4: tile_i8_pairs<4>(k, a, lda, bp, acc); break;
    case 3: tile_i8_pairs<3>(k, a, lda, bp, acc); break;
    case 2: tile_i8_pairs<2>(k, a, lda, bp, acc); break;
    default: tile_i8_pairs<1>(k, a, lda, bp, acc); break;
  }
}

// k-major int8 matvec: raw dot products of one A row against nc B rows (B
// rows in NT layout *are* k-contiguous, i.e. already the k-major panel the
// shape wants). The pair-interleaved panels above are column-major per k
// pair, which is perfect when 4 A rows amortize each 64-byte panel load but
// leaves m==1 issuing one madd per 16 columns per k pair — memory-bound on
// the panel. Here the A chunk is widened once and reused across 4 columns,
// each column owning a full-width accumulator that is horizontally reduced
// once at the end (k is large for matvec shapes — FC layers — so one hsum
// per column is noise; it's the small-k pointwise convs that must avoid
// reduction, and those keep the panel path via m > 1).
//
// Accumulation is raw (no zero-point subtraction), matching the packed
// path's accumulators exactly — the caller applies the identical col_sums
// epilogue, so packed-vs-matvec results are bit-identical by construction.

#if defined(__AVX512BW__) && defined(__AVX512F__)

inline void matvec_i8_kmajor(std::int64_t nc, std::int64_t k,
                             const std::int8_t* a, const std::int8_t* b,
                             std::int64_t ldb, std::int32_t* acc_out) {
  std::int64_t j = 0;
  for (; j + 4 <= nc; j += 4) {
    const std::int8_t* b0 = b + j * ldb;
    const std::int8_t* b1 = b0 + ldb;
    const std::int8_t* b2 = b1 + ldb;
    const std::int8_t* b3 = b2 + ldb;
    __m512i acc0 = _mm512_setzero_si512();
    __m512i acc1 = _mm512_setzero_si512();
    __m512i acc2 = _mm512_setzero_si512();
    __m512i acc3 = _mm512_setzero_si512();
    std::int64_t kk = 0;
    for (; kk + 32 <= k; kk += 32) {
      // One 32-wide A widen feeds four 512-bit madds; per-lane pair sums
      // are <= 2^15, so int32 lanes are safe to k > 2^18.
      const __m512i av = _mm512_cvtepi8_epi16(
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + kk)));
      acc0 = _mm512_add_epi32(
          acc0, _mm512_madd_epi16(av, _mm512_cvtepi8_epi16(_mm256_loadu_si256(
                    reinterpret_cast<const __m256i*>(b0 + kk)))));
      acc1 = _mm512_add_epi32(
          acc1, _mm512_madd_epi16(av, _mm512_cvtepi8_epi16(_mm256_loadu_si256(
                    reinterpret_cast<const __m256i*>(b1 + kk)))));
      acc2 = _mm512_add_epi32(
          acc2, _mm512_madd_epi16(av, _mm512_cvtepi8_epi16(_mm256_loadu_si256(
                    reinterpret_cast<const __m256i*>(b2 + kk)))));
      acc3 = _mm512_add_epi32(
          acc3, _mm512_madd_epi16(av, _mm512_cvtepi8_epi16(_mm256_loadu_si256(
                    reinterpret_cast<const __m256i*>(b3 + kk)))));
    }
    std::int32_t r0 = _mm512_reduce_add_epi32(acc0);
    std::int32_t r1 = _mm512_reduce_add_epi32(acc1);
    std::int32_t r2 = _mm512_reduce_add_epi32(acc2);
    std::int32_t r3 = _mm512_reduce_add_epi32(acc3);
    for (; kk < k; ++kk) {
      const std::int32_t av = a[kk];
      r0 += av * b0[kk];
      r1 += av * b1[kk];
      r2 += av * b2[kk];
      r3 += av * b3[kk];
    }
    acc_out[j] = r0;
    acc_out[j + 1] = r1;
    acc_out[j + 2] = r2;
    acc_out[j + 3] = r3;
  }
  for (; j < nc; ++j) {
    const std::int8_t* bj = b + j * ldb;
    std::int32_t r = 0;
    for (std::int64_t kk = 0; kk < k; ++kk) {
      r += static_cast<std::int32_t>(a[kk]) *
           static_cast<std::int32_t>(bj[kk]);
    }
    acc_out[j] = r;
  }
}

#elif defined(__AVX2__)

inline std::int32_t hsum_epi32(__m256i v) {
  const __m128i lo = _mm256_castsi256_si128(v);
  const __m128i hi = _mm256_extracti128_si256(v, 1);
  __m128i s = _mm_add_epi32(lo, hi);
  s = _mm_add_epi32(s, _mm_shuffle_epi32(s, _MM_SHUFFLE(1, 0, 3, 2)));
  s = _mm_add_epi32(s, _mm_shuffle_epi32(s, _MM_SHUFFLE(2, 3, 0, 1)));
  return _mm_cvtsi128_si32(s);
}

inline void matvec_i8_kmajor(std::int64_t nc, std::int64_t k,
                             const std::int8_t* a, const std::int8_t* b,
                             std::int64_t ldb, std::int32_t* acc_out) {
  std::int64_t j = 0;
  for (; j + 4 <= nc; j += 4) {
    const std::int8_t* b0 = b + j * ldb;
    const std::int8_t* b1 = b0 + ldb;
    const std::int8_t* b2 = b1 + ldb;
    const std::int8_t* b3 = b2 + ldb;
    __m256i acc0 = _mm256_setzero_si256();
    __m256i acc1 = _mm256_setzero_si256();
    __m256i acc2 = _mm256_setzero_si256();
    __m256i acc3 = _mm256_setzero_si256();
    std::int64_t kk = 0;
    for (; kk + 16 <= k; kk += 16) {
      // One A widen (int8 -> int16) feeds four madds; per-lane pair sums
      // are <= 2^15, so int32 lanes are safe to k > 2^18.
      const __m256i av = _mm256_cvtepi8_epi16(
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + kk)));
      acc0 = _mm256_add_epi32(
          acc0, _mm256_madd_epi16(av, _mm256_cvtepi8_epi16(_mm_loadu_si128(
                    reinterpret_cast<const __m128i*>(b0 + kk)))));
      acc1 = _mm256_add_epi32(
          acc1, _mm256_madd_epi16(av, _mm256_cvtepi8_epi16(_mm_loadu_si128(
                    reinterpret_cast<const __m128i*>(b1 + kk)))));
      acc2 = _mm256_add_epi32(
          acc2, _mm256_madd_epi16(av, _mm256_cvtepi8_epi16(_mm_loadu_si128(
                    reinterpret_cast<const __m128i*>(b2 + kk)))));
      acc3 = _mm256_add_epi32(
          acc3, _mm256_madd_epi16(av, _mm256_cvtepi8_epi16(_mm_loadu_si128(
                    reinterpret_cast<const __m128i*>(b3 + kk)))));
    }
    std::int32_t r0 = hsum_epi32(acc0);
    std::int32_t r1 = hsum_epi32(acc1);
    std::int32_t r2 = hsum_epi32(acc2);
    std::int32_t r3 = hsum_epi32(acc3);
    for (; kk < k; ++kk) {
      const std::int32_t av = a[kk];
      r0 += av * b0[kk];
      r1 += av * b1[kk];
      r2 += av * b2[kk];
      r3 += av * b3[kk];
    }
    acc_out[j] = r0;
    acc_out[j + 1] = r1;
    acc_out[j + 2] = r2;
    acc_out[j + 3] = r3;
  }
  for (; j < nc; ++j) {
    const std::int8_t* bj = b + j * ldb;
    std::int32_t r = 0;
    for (std::int64_t kk = 0; kk < k; ++kk) {
      r += static_cast<std::int32_t>(a[kk]) *
           static_cast<std::int32_t>(bj[kk]);
    }
    acc_out[j] = r;
  }
}

#else

// Portable tier: 4 independent column chains so the compiler can keep four
// scalar (or auto-vectorized) accumulators live. Integer math is exact, so
// this is bit-identical to the SIMD tier.
inline void matvec_i8_kmajor(std::int64_t nc, std::int64_t k,
                             const std::int8_t* a, const std::int8_t* b,
                             std::int64_t ldb, std::int32_t* acc_out) {
  std::int64_t j = 0;
  for (; j + 4 <= nc; j += 4) {
    const std::int8_t* b0 = b + j * ldb;
    const std::int8_t* b1 = b0 + ldb;
    const std::int8_t* b2 = b1 + ldb;
    const std::int8_t* b3 = b2 + ldb;
    std::int32_t r0 = 0, r1 = 0, r2 = 0, r3 = 0;
    for (std::int64_t kk = 0; kk < k; ++kk) {
      const std::int32_t av = a[kk];
      r0 += av * b0[kk];
      r1 += av * b1[kk];
      r2 += av * b2[kk];
      r3 += av * b3[kk];
    }
    acc_out[j] = r0;
    acc_out[j + 1] = r1;
    acc_out[j + 2] = r2;
    acc_out[j + 3] = r3;
  }
  for (; j < nc; ++j) {
    const std::int8_t* bj = b + j * ldb;
    std::int32_t r = 0;
    for (std::int64_t kk = 0; kk < k; ++kk) {
      r += static_cast<std::int32_t>(a[kk]) *
           static_cast<std::int32_t>(bj[kk]);
    }
    acc_out[j] = r;
  }
}

#endif

}  // namespace

std::int64_t packed_b_f32_floats(std::int64_t n, std::int64_t k) {
  return (n / kNrF) * k * kNrF;
}

void pack_b_f32(std::int64_t n, std::int64_t k, const float* b,
                std::int64_t ldb, float* panels) {
  const std::int64_t panel_count = n / kNrF;
  for (std::int64_t panel = 0; panel < panel_count; ++panel) {
    const float* bsrc = b + panel * kNrF * ldb;
    float* pdst = panels + panel * k * kNrF;
    for (std::int64_t kk = 0; kk < k; ++kk) {
      for (std::int64_t j = 0; j < kNrF; ++j) {
        pdst[kk * kNrF + j] = bsrc[j * ldb + kk];
      }
    }
  }
}

namespace {
std::int64_t packed_b_i8_panel_count(std::int64_t n) {
  return (n + kNrIP - 1) / kNrIP;
}
}  // namespace

std::int64_t packed_b_i8_bytes(std::int64_t n, std::int64_t k) {
  const std::int64_t k2 = (k + 1) / 2;
  return packed_b_i8_panel_count(n) * k2 * 2 * kNrIP *
         static_cast<std::int64_t>(sizeof(std::int16_t));
}

void pack_b_i8(std::int64_t n, std::int64_t k, const std::int8_t* b,
               std::int64_t ldb, std::int8_t* panels,
               std::int32_t* col_sums) {
  // Pair-interleaved, pre-widened int16 panels (see gemm.h): panel p holds,
  // for each k pair, columns [16p, 16p + 16) x 2 consecutive k entries.
  // Columns past n and the odd-k tail are zeros, so the microkernel never
  // needs an edge path and padding contributes exactly nothing.
  auto* p16 = reinterpret_cast<std::int16_t*>(panels);
  const std::int64_t k2 = (k + 1) / 2;
  for (std::int64_t panel = 0; panel < packed_b_i8_panel_count(n); ++panel) {
    std::int16_t* dst = p16 + panel * k2 * 2 * kNrIP;
    for (std::int64_t p = 0; p < k2; ++p) {
      for (std::int64_t j = 0; j < kNrIP; ++j) {
        const std::int64_t col = panel * kNrIP + j;
        for (std::int64_t e = 0; e < 2; ++e) {
          const std::int64_t kk = 2 * p + e;
          dst[(p * kNrIP + j) * 2 + e] =
              (col < n && kk < k) ? b[col * ldb + kk] : std::int16_t{0};
        }
      }
    }
  }
  for (std::int64_t j = 0; j < n; ++j) {
    std::int32_t sum = 0;
    const std::int8_t* row = b + j * ldb;
    for (std::int64_t kk = 0; kk < k; ++kk) sum += row[kk];
    col_sums[j] = sum;
  }
}

std::uint64_t gemm_b_pack_events() {
  return g_b_pack_events.load(std::memory_order_relaxed);
}

void gemm_f32_nt(std::int64_t m, std::int64_t n, std::int64_t k,
                 const float* a, std::int64_t lda, const float* b,
                 std::int64_t ldb, const float* bias, Activation act, float* c,
                 std::int64_t ldc, PoolRef pool, ScratchArena* arena,
                 const PackedBF32* packed) {
  if (m <= 0 || n <= 0) return;
  // Kernel-level fault point: lets tests originate an MLX_CHECK-style
  // failure inside a real kernel (not just the plan walk) and assert it is
  // contained at the session boundary.
  if (fault::enabled()) fault::check(fault_sites::kKernelGemm);
  // Prepacked panels (plan-time weight packing) skip the per-call repack
  // entirely. Otherwise repack B once per call when enough rows reuse it
  // (the n * k copy is wasted on matrix-vector shapes like batch-1
  // fully-connected).
  const float* panels = nullptr;
  if (packed != nullptr && packed->panel_count > 0) {
    panels = packed->panels;
  } else if (arena != nullptr && n >= kNrF && m >= 8) {
    float* p = arena->allocate_array<float>(packed_b_f32_floats(n, k));
    pack_b_f32(n, k, b, ldb, p);
    panels = p;
    g_b_pack_events.fetch_add(1, std::memory_order_relaxed);
  }
  const std::int64_t m_tiles = (m + kMr - 1) / kMr;
  auto row_block = [&](std::size_t tile_lo, std::size_t tile_hi) {
    for (std::size_t t = tile_lo; t < tile_hi; ++t) {
      const std::int64_t i0 = static_cast<std::int64_t>(t) * kMr;
      const std::int64_t mr = std::min(kMr, m - i0);
      const float* at = a + i0 * lda;
      float* ct = c + i0 * ldc;
      std::int64_t j0 = 0;
      if (panels != nullptr) {
        for (; j0 + kNrF <= n; j0 += kNrF) {
          const float* bp = panels + (j0 / kNrF) * k * kNrF;
          switch (mr) {
            case 4: tile_f32_packed<4>(k, at, lda, bp, bias + j0, act, ct + j0, ldc); break;
            case 3: tile_f32_packed<3>(k, at, lda, bp, bias + j0, act, ct + j0, ldc); break;
            case 2: tile_f32_packed<2>(k, at, lda, bp, bias + j0, act, ct + j0, ldc); break;
            default: tile_f32_packed<1>(k, at, lda, bp, bias + j0, act, ct + j0, ldc); break;
          }
        }
      } else if (mr == 1) {
        for (; j0 + kNrF <= n; j0 += kNrF) {
          tile_f32_1x8(k, at, b + j0 * ldb, ldb, bias + j0, act, ct + j0);
        }
      } else {
        for (; j0 + kNrI <= n; j0 += kNrI) {
          const float* bt = b + j0 * ldb;
          switch (mr) {
            case 4: tile_f32_rows<4>(k, at, lda, bt, ldb, bias + j0, act, ct + j0, ldc); break;
            case 3: tile_f32_rows<3>(k, at, lda, bt, ldb, bias + j0, act, ct + j0, ldc); break;
            case 2: tile_f32_rows<2>(k, at, lda, bt, ldb, bias + j0, act, ct + j0, ldc); break;
            default: tile_f32_rows<1>(k, at, lda, bt, ldb, bias + j0, act, ct + j0, ldc); break;
          }
        }
      }
      for (; j0 < n; j0 += kNrF) {
        tile_f32_edge(mr, std::min(kNrF, n - j0), k, at, lda, b + j0 * ldb,
                      ldb, bias + j0, act, ct + j0, ldc);
      }
    }
  };
  if (pool && m_tiles > 1 && m * n * k >= kMinFlopsForPool) {
    pool.parallel_for(0, static_cast<std::size_t>(m_tiles), row_block);
  } else {
    row_block(0, static_cast<std::size_t>(m_tiles));
  }
}

void gemm_i8_nt(std::int64_t m, std::int64_t n, std::int64_t k,
                const std::int8_t* a, std::int64_t lda, const std::int8_t* b,
                std::int64_t ldb, const GemmQuant& q, std::int8_t* c,
                std::int64_t ldc, PoolRef pool, const PackedBI8* packed) {
  if (m <= 0 || n <= 0) return;
  const bool use_packed = packed != nullptr && packed->panels != nullptr &&
                          packed->col_sums != nullptr;
  // Shape dispatch: m == 1 (batch-1 FC / 1x1-output convs) walks raw
  // k-major B rows instead of the pair-interleaved panels — with a single A
  // row the panel walk has no load reuse and regressed matvec latency ~2.7x
  // (see ROADMAP note). Same raw accumulators + identical col_sums
  // epilogue, so the result is bit-exact vs the panel path (the
  // matvec-vs-packed parity test pins this).
  if (use_packed && m == 1 && b != nullptr) {
    constexpr std::int64_t kMvCols = 64;
    std::int32_t acc[kMvCols];
    for (std::int64_t j0 = 0; j0 < n; j0 += kMvCols) {
      const std::int64_t nc = std::min(kMvCols, n - j0);
      matvec_i8_kmajor(nc, k, a, b + j0 * ldb, ldb, acc);
      std::int64_t j = 0;
#if defined(__GNUC__) || defined(__clang__)
      const v8s32_fx zp_a = (v8s32_fx){} + q.a_zero_point;
      for (; j + 8 <= nc; j += 8) {
        const std::size_t col = static_cast<std::size_t>(j0 + j);
        v8s32_fx accv, cs, bs, mu, sh;
        __builtin_memcpy(&accv, acc + j, sizeof(accv));
        __builtin_memcpy(&cs, packed->col_sums + col, sizeof(cs));
        __builtin_memcpy(&bs, q.bias + col, sizeof(bs));
        __builtin_memcpy(&mu, q.multipliers + col, sizeof(mu));
        __builtin_memcpy(&sh, q.shifts + col, sizeof(sh));
        requant_clamp_store_i8_v8(accv - zp_a * cs + bs, mu, -sh,
                                  q.out_zero_point, q.act_min, q.act_max,
                                  c + j0 + j);
      }
#endif
      for (; j < nc; ++j) {
        const std::size_t col = static_cast<std::size_t>(j0 + j);
        const std::int32_t sum =
            acc[j] - q.a_zero_point * packed->col_sums[col];
        std::int32_t scaled = multiply_by_quantized_multiplier(
            sum + q.bias[col], q.multipliers[col], q.shifts[col]);
        std::int32_t v = scaled + q.out_zero_point;
        v = std::clamp(v, q.act_min, q.act_max);
        c[j0 + j] = static_cast<std::int8_t>(v);
      }
    }
    return;
  }
  const std::int64_t m_tiles = (m + kMr - 1) / kMr;
  const std::int64_t k2 = (k + 1) / 2;
  // Packed path: pair-broadcast microkernel over the pair-interleaved
  // panels. Accumulation is *raw* (no per-element zero-point subtraction);
  // the epilogue corrects with the prepacked column sums. Integer math is
  // exact, so this produces accumulators identical to the unpacked path's.
  auto row_block_packed = [&](std::size_t tile_lo, std::size_t tile_hi) {
    const auto* p16 = reinterpret_cast<const std::int16_t*>(packed->panels);
    for (std::size_t t = tile_lo; t < tile_hi; ++t) {
      const std::int64_t i0 = static_cast<std::int64_t>(t) * kMr;
      const std::int64_t mr = std::min(kMr, m - i0);
      const std::int8_t* at = a + i0 * lda;
      std::int8_t* ct = c + i0 * ldc;
      for (std::int64_t j0 = 0; j0 < n; j0 += kNrIP) {
        const std::int64_t nr = std::min(kNrIP, n - j0);
        std::int32_t acc[kMr][kNrIP];
        panel_i8_pairs(mr, k, at, lda, p16 + (j0 / kNrIP) * k2 * 2 * kNrIP,
                       acc);
        for (std::int64_t i = 0; i < mr; ++i) {
          std::int64_t j = 0;
#if defined(__GNUC__) || defined(__clang__)
          // Vectorized requant epilogue (requant_clamp_store_i8_v8 is the
          // shared fixed_point.h helper, bit-identical to the scalar loop
          // below — the prepacked-vs-scalar parity tests compare the two
          // paths byte for byte). On small-k GEMMs the epilogue costs as
          // much as the dot products, so this matters.
          const v8s32_fx zp_a = (v8s32_fx){} + q.a_zero_point;
          for (; j + 8 <= nr; j += 8) {
            const std::size_t col = static_cast<std::size_t>(j0 + j);
            v8s32_fx accv, cs, bs, mu, sh;
            __builtin_memcpy(&accv, &acc[i][j], sizeof(accv));
            __builtin_memcpy(&cs, packed->col_sums + col, sizeof(cs));
            __builtin_memcpy(&bs, q.bias + col, sizeof(bs));
            __builtin_memcpy(&mu, q.multipliers + col, sizeof(mu));
            __builtin_memcpy(&sh, q.shifts + col, sizeof(sh));
            requant_clamp_store_i8_v8(accv - zp_a * cs + bs, mu, -sh,
                                      q.out_zero_point, q.act_min, q.act_max,
                                      ct + i * ldc + j0 + j);
          }
#endif
          for (; j < nr; ++j) {
            const std::size_t col = static_cast<std::size_t>(j0 + j);
            const std::int32_t sum =
                acc[i][j] - q.a_zero_point * packed->col_sums[col];
            std::int32_t scaled = multiply_by_quantized_multiplier(
                sum + q.bias[col], q.multipliers[col], q.shifts[col]);
            std::int32_t v = scaled + q.out_zero_point;
            v = std::clamp(v, q.act_min, q.act_max);
            ct[i * ldc + j0 + j] = static_cast<std::int8_t>(v);
          }
        }
      }
    }
  };
  // Unpacked fallback (no plan): scalar register-blocked tiles over raw B
  // rows with per-element zero-point subtraction.
  auto row_block = [&](std::size_t tile_lo, std::size_t tile_hi) {
    if (use_packed) {
      row_block_packed(tile_lo, tile_hi);
      return;
    }
    for (std::size_t t = tile_lo; t < tile_hi; ++t) {
      const std::int64_t i0 = static_cast<std::int64_t>(t) * kMr;
      const std::int64_t mr = std::min(kMr, m - i0);
      const std::int8_t* at = a + i0 * lda;
      std::int8_t* ct = c + i0 * ldc;
      for (std::int64_t j0 = 0; j0 < n; j0 += kNrI) {
        const std::int64_t nr = std::min(kNrI, n - j0);
        std::int32_t acc[kMr][kNrI] = {};
        if (nr == kNrI) {
          const std::int8_t* bt = b + j0 * ldb;
          switch (mr) {
            case 4: tile_i8<4>(k, at, lda, bt, ldb, q.a_zero_point, acc); break;
            case 3: tile_i8<3>(k, at, lda, bt, ldb, q.a_zero_point, acc); break;
            case 2: tile_i8<2>(k, at, lda, bt, ldb, q.a_zero_point, acc); break;
            default: tile_i8<1>(k, at, lda, bt, ldb, q.a_zero_point, acc); break;
          }
        } else {
          tile_i8_edge(mr, nr, k, at, lda, b + j0 * ldb, ldb, q.a_zero_point,
                       acc);
        }
        for (std::int64_t i = 0; i < mr; ++i) {
          for (std::int64_t j = 0; j < nr; ++j) {
            const std::size_t col = static_cast<std::size_t>(j0 + j);
            std::int32_t scaled = multiply_by_quantized_multiplier(
                acc[i][j] + q.bias[col], q.multipliers[col], q.shifts[col]);
            std::int32_t v = scaled + q.out_zero_point;
            v = std::clamp(v, q.act_min, q.act_max);
            ct[i * ldc + j0 + j] = static_cast<std::int8_t>(v);
          }
        }
      }
    }
  };
  if (pool && m_tiles > 1 && m * n * k >= kMinFlopsForPool) {
    pool.parallel_for(0, static_cast<std::size_t>(m_tiles), row_block);
  } else {
    row_block(0, static_cast<std::size_t>(m_tiles));
  }
}

}  // namespace mlexray
