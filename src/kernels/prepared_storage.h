// Plan-owned per-step storage written once by a kernel's prepare hook.
//
// The Prepare/Invoke split gives kernels a place to do one-time work (packed
// weight panels, requantization tables); the results must live somewhere that
// (a) survives across invokes, unlike the scratch arena which is reset per
// node, and (b) is owned by the ExecutionPlan, so a model's prepared bytes
// are accounted per interpreter. PreparedStorage is that place: a bump-style
// owner of 64-byte-aligned buffers, plus a typed "root" pointer through which
// the invoke hook finds its descriptor again.
//
// All allocation happens inside the prepare hook at plan construction;
// steady-state invoke only reads. Buffers register with AllocStats so packed
// weights show up in the same memory accounting as tensors and arena blocks.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <vector>

#include "src/tensor/alloc_stats.h"

namespace mlexray {

class PreparedStorage {
 public:
  PreparedStorage() = default;
  PreparedStorage(const PreparedStorage&) = delete;
  PreparedStorage& operator=(const PreparedStorage&) = delete;

  ~PreparedStorage() {
    if (bytes_ != 0) AllocStats::instance().remove(bytes_);
  }

  // Uninitialized storage for `count` trivially-destructible Ts, aligned to
  // kAlign, owned until the plan is destroyed.
  template <typename T>
  T* allocate_array(std::size_t count) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "prepared storage holds POD data only");
    const std::size_t bytes = count * sizeof(T);
    void* p = ::operator new(bytes ? bytes : 1, std::align_val_t(kAlign));
    buffers_.emplace_back(p);
    bytes_ += bytes;
    AllocStats::instance().add(bytes);
    return static_cast<T*>(p);
  }

  // The kernel's descriptor object: prepare stores it, invoke reads it back.
  // Each kernel pairs its own prepare/invoke hooks, so the cast is safe by
  // construction. Allocate the descriptor itself from this storage.
  void set_root(const void* p) { root_ = p; }
  template <typename T>
  const T* root() const {
    return static_cast<const T*>(root_);
  }

  bool empty() const { return buffers_.empty(); }
  std::size_t bytes() const { return bytes_; }

  static constexpr std::size_t kAlign = 64;

 private:
  struct AlignedFree {
    void operator()(void* p) const {
      ::operator delete(p, std::align_val_t(kAlign));
    }
  };

  std::vector<std::unique_ptr<void, AlignedFree>> buffers_;
  const void* root_ = nullptr;
  std::size_t bytes_ = 0;
};

}  // namespace mlexray
